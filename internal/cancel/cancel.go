// Package cancel provides the cooperative-interruption primitive shared
// by the interpreter and the VM: an atomic flag an engine raises (from a
// deadline timer, a Ctrl-C handler, or the evaluation daemon's request
// watchdog) and execution engines poll at loop back-edges. Cooperative
// checks at back-edges are the classical safepoint placement: every
// non-terminating MATLAB program must take a back-edge, so a raised
// flag aborts `while 1; end` within one loop iteration while straight-
// line code pays nothing.
package cancel

import "sync/atomic"

// Flag is a raisable, clearable interruption flag. The zero value is
// ready to use (not raised). All methods are safe for concurrent use.
type Flag struct {
	raised atomic.Bool
}

// Raise requests interruption: the next back-edge check in any
// execution running against this flag returns ErrInterrupted.
func (f *Flag) Raise() { f.raised.Store(true) }

// Clear lowers the flag so subsequent executions run normally.
func (f *Flag) Clear() { f.raised.Store(false) }

// Raised reports whether interruption has been requested. It is a
// single atomic load, cheap enough for loop back-edges.
func (f *Flag) Raised() bool { return f.raised.Load() }

// Err is the sentinel returned by interrupted executions. Callers
// distinguish a deadline kill from a program error with errors.Is.
type interruptErr struct{}

func (interruptErr) Error() string { return "execution interrupted" }

// ErrInterrupted reports that execution was aborted at a back-edge
// because the engine's cancel flag was raised.
var ErrInterrupted error = interruptErr{}

// Checker is implemented by hosts (engines) that expose a cancel flag;
// the interpreter and VM discover it by type assertion so hosts without
// one (tests, tools) keep working unchanged.
type Checker interface {
	CancelFlag() *Flag
}
