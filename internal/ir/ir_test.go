package ir

import (
	"strings"
	"testing"
)

func TestAddAux(t *testing.T) {
	p := &Prog{}
	at1 := p.AddAux(1, 2, 3)
	at2 := p.AddAux(4, 5)
	if at1 != 0 || at2 != 3 {
		t.Fatalf("aux offsets %d %d", at1, at2)
	}
	if len(p.Aux) != 5 || p.Aux[3] != 4 {
		t.Fatalf("aux pool %v", p.Aux)
	}
}

func TestOpNames(t *testing.T) {
	// every opcode in the instruction set must have a display name
	for op := OpNop; op <= OpVStSlot; op++ {
		s := op.String()
		if strings.HasPrefix(s, "op") && s != "op" {
			// fallback formatting means a missing entry
			if _, ok := opNames[op]; !ok {
				t.Errorf("opcode %d has no name", op)
			}
		}
	}
	if OpFAdd.String() != "fadd" || OpGEMV.String() != "gemv" {
		t.Error("spot-check names")
	}
}

func TestBankString(t *testing.T) {
	for b, want := range map[Bank]string{BankF: "f", BankI: "i", BankC: "c", BankV: "v", BankNone: "-"} {
		if b.String() != want {
			t.Errorf("%d prints %q", b, b.String())
		}
	}
}

func TestDisasm(t *testing.T) {
	p := &Prog{
		Name: "demo",
		NumF: 2,
		Ins: []Instr{
			{Op: OpFConst, A: 0, Imm: 3.5},
			{Op: OpFAdd, A: 1, B: 0, C: 0},
			{Op: OpRet},
		},
	}
	d := p.Disasm()
	for _, want := range []string{"func demo:", "fconst", "fadd", "ret", "imm=3.5"} {
		if !strings.Contains(d, want) {
			t.Errorf("disasm lacks %q:\n%s", want, d)
		}
	}
}
