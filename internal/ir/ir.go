// Package ir defines MaJIC's typed linear intermediate representation —
// the analog of the ICODE register language the original system adopted
// from tcc (paper §4). Instructions operate on four virtual register
// banks: F (float64 scalars, also 0/1 logicals), I (int64 scalars: loop
// counters and subscripts), C (complex128 scalars) and V (boxed
// *mat.Value arrays). Typed instructions are the fast path the JIT's
// code selection emits for inferred types; the G* ("generic") opcodes
// are the boxed fallback path used when inference yields ⊤ — the same
// split as the paper's inlined scalar operations versus MATLAB C
// library calls.
package ir

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Bank identifies a register bank.
type Bank uint8

const (
	BankF Bank = iota
	BankI
	BankC
	BankV
	BankNone
)

func (b Bank) String() string {
	return [...]string{"f", "i", "c", "v", "-"}[b]
}

// Op is an instruction opcode.
type Op uint16

// Instruction operand conventions: A is the destination (or first
// operand for stores/branches), B and C are sources, D is the extra
// operand 2-D array ops and a few others need. Imm carries float
// immediates; branch targets live in C (or A for OpJmp).
const (
	OpNop Op = iota

	// control flow
	OpJmp      // pc = A
	OpRet      // return
	OpBrTrueF  // if F[A] != 0: pc = C
	OpBrFalseF // if F[A] == 0: pc = C
	OpBrFalseV // if !V[A].IsTrue(): pc = C
	OpBrTrueV  // if V[A].IsTrue(): pc = C
	OpBrFLt    // if F[A] <  F[B]: pc = C
	OpBrFLe    // if F[A] <= F[B]: pc = C
	OpBrFEq    // if F[A] == F[B]: pc = C
	OpBrFNe    // if F[A] != F[B]: pc = C
	OpBrFNLt   // if !(F[A] < F[B]): pc = C (NaN-correct negation)
	OpBrFNLe   // if !(F[A] <= F[B]): pc = C
	OpBrILt    // if I[A] <  I[B]: pc = C
	OpBrILe    // if I[A] <= I[B]: pc = C
	OpBrIEq    // if I[A] == I[B]: pc = C
	OpBrINe    // if I[A] != I[B]: pc = C

	// moves and constants
	OpFMov     // F[A] = F[B]
	OpIMov     // I[A] = I[B]
	OpCMov     // C[A] = C[B]
	OpVMov     // V[A] = V[B] (aliasing move)
	OpVMovSwap // V[A], V[B] = V[B], V[A] (assignment of a fresh temp: the
	// destination takes the value and the temp register inherits the old
	// buffer, which OpVEnsure can then recycle — pre-allocated
	// temporaries without an allocation per loop iteration)
	OpVClone // V[A] = V[B].Clone() (value-semantics copy)
	OpFConst // F[A] = Imm
	OpIConst // I[A] = int64(Imm)
	OpCConst // C[A] = cpool[B]

	// conversions
	OpItoF   // F[A] = float64(I[B])
	OpFtoI   // I[A] = int64(F[B]) (value known integral)
	OpFtoC   // C[A] = complex(F[B], 0)
	OpItoC   // C[A] = complex(float64(I[B]), 0)
	OpBoxF   // V[A] = scalar(F[B])
	OpBoxI   // V[A] = int scalar(I[B])
	OpBoxC   // V[A] = complex scalar(C[B])
	OpUnboxF // F[A] = V[B] as real scalar (checked)
	OpUnboxI // I[A] = V[B] as integer scalar (checked)
	OpUnboxC // C[A] = V[B] as complex scalar (checked)

	// F arithmetic (scalar doubles; also 0/1 logicals)
	OpFAdd  // F[A] = F[B] + F[C]
	OpFSub  // F[A] = F[B] - F[C]
	OpFMul  // F[A] = F[B] * F[C]
	OpFDiv  // F[A] = F[B] / F[C]
	OpFNeg  // F[A] = -F[B]
	OpFPow  // F[A] = pow(F[B], F[C])
	OpFMod  // F[A] = matlab mod(F[B], F[C])
	OpFRem  // F[A] = matlab rem(F[B], F[C])
	OpFMath // F[A] = mathfn[C](F[B])
	OpFAnd  // F[A] = F[B] != 0 && F[C] != 0
	OpFOr   // F[A] = F[B] != 0 || F[C] != 0
	OpFNot  // F[A] = F[B] == 0

	// F comparisons producing 0/1
	OpFCmpEq // F[A] = F[B] == F[C]
	OpFCmpNe
	OpFCmpLt
	OpFCmpLe

	// I arithmetic (int64 scalars)
	OpIAdd
	OpISub
	OpIMul
	OpINeg
	OpIMod // matlab mod on integers
	OpICmpEq
	OpICmpNe // I comparisons produce F 0/1 for uniformity
	OpICmpLt
	OpICmpLe

	// C arithmetic (complex128 scalars)
	OpCAdd
	OpCSub
	OpCMul
	OpCDiv
	OpCNeg
	OpCPow
	OpCAbs  // F[A] = |C[B]|
	OpCMath // C[A] = cmathfn[C](C[B])
	OpCCmpEq
	OpCCmpNe
	OpCReal // F[A] = real(C[B])
	OpCImag // F[A] = imag(C[B])
	OpCConj // C[A] = conj(C[B])

	// typed array access; subscripts are 1-based
	// Checked forms take F subscripts and validate positive integers,
	// bounds (loads) and growth (stores). Unchecked forms take I
	// subscripts proven in-bounds by range ∧ shape analysis — the
	// subscript-check removal of §2.4.
	OpFLd1  // F[A] = V[B](F[C]) checked linear load
	OpFLd1U // F[A] = V[B] at I[C] unchecked
	OpFLd2  // F[A] = V[B](F[C], F[D]) checked
	OpFLd2U // F[A] = V[B] at (I[C], I[D]) unchecked
	OpFSt1  // V[A](F[B]) = F[C] checked store with growth
	OpFSt1U // V[A] at I[B] = F[C] unchecked
	OpFSt2  // V[A](F[B], F[C]) = F[D] checked
	OpFSt2U // V[A] at (I[B], I[C]) = F[D] unchecked

	// array management
	OpVNewZeros   // V[A] = zeros(I[B], I[C]) fast typed allocation
	OpVEnsure     // V[A]: reuse as zeros(I[B], I[C]) if owned & matching, else allocate (pre-allocated temporaries)
	OpVEnsureOwn  // V[A] = V[A].Clone() if shared (call-by-value copy for written parameters)
	OpVRows       // I[A] = V[B].Rows()
	OpVCols       // I[A] = V[B].Cols()
	OpVNumel      // I[A] = V[B].Numel()
	OpVMarkShared // V[A].MarkShared() (aliasing assignment B = A)

	// generic boxed operations (the MATLAB C library path)
	OpGBin     // V[A] = binop[D](V[B], V[C])
	OpGUn      // V[A] = unop[D](V[B])
	OpGIndex   // V[A] = V[B](args); aux at C: [n, argreg...]
	OpGAssign  // V[A](args) = V[D]; aux at C: [n, argreg...]; result back in V[A]
	OpGColon   // V[A] = V[B]:V[C]:V[D]
	OpGCat     // V[A] = [rows]; aux at B: [nrows, ncols1, regs..., ncols2, regs...]
	OpGBuiltin // builtin call; aux at A: [builtinID, nout, dst..., nargs, arg...]
	OpCallUser // user function call; aux at A: [fnID, nout, dst..., nargs, arg...]
	OpGEMV     // V[A] = Imm*V[B]*V[C] + beta*V[D] (beta = 0 when D < 0, else ±1 encoded in aux via BetaNeg bit)
	OpVConst   // V[A] = vpool[B] (boxed constant: string or colon marker)
	OpVDisplay // display V[A] as name vpool[B] (echo of unsuppressed statements)

	// elementwise fusion: a maximal tree of elementwise operators runs as
	// one loop over the output with no intermediate arrays. The aux block
	// at B holds a postfix micro-op program (layout documented at
	// FuseLoadV below); scalar leaves are staged into a fixed slot file by
	// OpVFuseArgF immediately before the kernel so register allocation
	// sees ordinary F-register uses.
	OpVFused    // V[A] = eval of fused micro-op program; aux at B: [nv, vreg..., nslots, nops, (code,arg)...]
	OpVFuseArgF // fuse slot A = F[B] (stages a scalar operand for the next OpVFused)

	// spill support: the linear-scan allocator rewrites spilled virtual
	// registers into slot loads/stores around each use (the Figure 7
	// "no regalloc" ablation spills everything).
	OpFLdSlot // F[A] = fslots[B]
	OpFStSlot // fslots[A] = F[B]
	OpILdSlot
	OpIStSlot
	OpCLdSlot
	OpCStSlot
	OpVLdSlot
	OpVStSlot
)

var opNames = map[Op]string{
	OpNop: "nop", OpJmp: "jmp", OpRet: "ret",
	OpBrTrueF: "brtrue.f", OpBrFalseF: "brfalse.f", OpBrFalseV: "brfalse.v", OpBrTrueV: "brtrue.v",
	OpBrFLt: "br.flt", OpBrFLe: "br.fle", OpBrFEq: "br.feq", OpBrFNe: "br.fne",
	OpBrFNLt: "br.fnlt", OpBrFNLe: "br.fnle",
	OpBrILt: "br.ilt", OpBrILe: "br.ile", OpBrIEq: "br.ieq", OpBrINe: "br.ine",
	OpFMov: "fmov", OpIMov: "imov", OpCMov: "cmov", OpVMov: "vmov",
	OpVMovSwap: "vmovswap", OpVClone: "vclone",
	OpFConst: "fconst", OpIConst: "iconst", OpCConst: "cconst",
	OpItoF: "itof", OpFtoI: "ftoi", OpFtoC: "ftoc", OpItoC: "itoc",
	OpBoxF: "box.f", OpBoxI: "box.i", OpBoxC: "box.c",
	OpUnboxF: "unbox.f", OpUnboxI: "unbox.i", OpUnboxC: "unbox.c",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFNeg: "fneg",
	OpFPow: "fpow", OpFMod: "fmod", OpFRem: "frem", OpFMath: "fmath",
	OpFAnd: "fand", OpFOr: "for", OpFNot: "fnot",
	OpFCmpEq: "fcmp.eq", OpFCmpNe: "fcmp.ne", OpFCmpLt: "fcmp.lt", OpFCmpLe: "fcmp.le",
	OpIAdd: "iadd", OpISub: "isub", OpIMul: "imul", OpINeg: "ineg", OpIMod: "imod",
	OpICmpEq: "icmp.eq", OpICmpNe: "icmp.ne", OpICmpLt: "icmp.lt", OpICmpLe: "icmp.le",
	OpCAdd: "cadd", OpCSub: "csub", OpCMul: "cmul", OpCDiv: "cdiv", OpCNeg: "cneg",
	OpCPow: "cpow", OpCAbs: "cabs", OpCMath: "cmath", OpCCmpEq: "ccmp.eq", OpCCmpNe: "ccmp.ne",
	OpCReal: "creal", OpCImag: "cimag", OpCConj: "cconj",
	OpFLd1: "fld1", OpFLd1U: "fld1u", OpFLd2: "fld2", OpFLd2U: "fld2u",
	OpFSt1: "fst1", OpFSt1U: "fst1u", OpFSt2: "fst2", OpFSt2U: "fst2u",
	OpVNewZeros: "vnew", OpVEnsure: "vensure", OpVEnsureOwn: "vown",
	OpVRows: "vrows", OpVCols: "vcols", OpVNumel: "vnumel", OpVMarkShared: "vshare",
	OpGBin: "gbin", OpGUn: "gun", OpGIndex: "gindex", OpGAssign: "gassign",
	OpVConst: "vconst", OpVDisplay: "vdisplay",
	OpGColon: "gcolon", OpGCat: "gcat", OpGBuiltin: "gbuiltin", OpCallUser: "call",
	OpGEMV:   "gemv",
	OpVFused: "vfused", OpVFuseArgF: "vfusearg.f",
	OpFLdSlot: "fldslot", OpFStSlot: "fstslot", OpILdSlot: "ildslot", OpIStSlot: "istslot",
	OpCLdSlot: "cldslot", OpCStSlot: "cstslot", OpVLdSlot: "vldslot", OpVStSlot: "vstslot",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op%d", uint16(o))
}

// Fingerprint hashes the IR's codec-relevant shape: the opcode table
// (numbering and mnemonics), the fuse micro-op codes, and the bank
// count. A serialized program is only meaningful to a build whose IR
// assigns the same numbers to the same operations — opcodes are
// iota-assigned, so inserting an opcode renumbers everything after it.
// The persistence layer stamps snapshots with this fingerprint and
// rejects (falls back to a cold start on) snapshots written by a build
// with a different IR, instead of misdecoding instructions.
func Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "banks=%d ops=%d", int(BankNone)+1, len(opNames))
	for o := Op(0); int(o) < len(opNames); o++ {
		fmt.Fprintf(h, "|%d=%s", uint16(o), opNames[o])
	}
	fmt.Fprintf(h, "|fuse=%d..%d lim=%d/%d",
		FuseLoadV, FuseMath, MaxFuseOperands, MaxFuseOps)
	return h.Sum64()
}

// Instr is one IR instruction.
type Instr struct {
	Op         Op
	A, B, C, D int32
	Imm        float64
}

func (in Instr) String() string {
	return fmt.Sprintf("%-9s a=%d b=%d c=%d d=%d imm=%g", in.Op, in.A, in.B, in.C, in.D, in.Imm)
}

// ParamBinding says where a function argument lands on entry: the bank
// and register, so the VM unboxes typed scalar parameters once. Slot
// marks a spilled parameter whose Reg indexes the bank's spill slots.
type ParamBinding struct {
	Bank Bank
	Reg  int32
	Slot bool
}

// MathFn identifies scalar math functions for OpFMath/OpCMath.
type MathFn int32

// Fuse micro-op codes for OpVFused. The aux block at Instr.B is
//
//	[nv, vreg_0..vreg_{nv-1}, nslots, nops, (code_0,arg_0)...(code_{nops-1},arg_{nops-1})]
//
// and describes a postfix (stack) program evaluated once per output
// element. FuseLoadV pushes element i of V operand arg (broadcast when
// the operand is 1×1); FuseLoadSF/FuseLoadSI push the scalar staged in
// fuse slot arg by a preceding OpVFuseArgF (SI marks the value as
// integer-kinded for MATLAB's Int/Real result-kind refinement). The
// binary codes pop y then x and push x∘y; FuseNeg and FuseMath (arg =
// MathFns index) are unary. Postfix order is exactly the generic
// evaluation order, so shape errors and NaN/Inf propagation match the
// unfused path operator for operator.
const (
	FuseLoadV  int32 = iota // push V operand arg's element (or its scalar broadcast)
	FuseLoadSF              // push staged real scalar from fuse slot arg
	FuseLoadSI              // push staged integer-valued scalar from fuse slot arg
	FuseAdd
	FuseSub
	FuseMul
	FuseDiv
	FusePow
	FuseNeg
	FuseMath // apply MathFns[arg]
)

// Limits on a single fused kernel: operand count doubles as the fuse
// slot file size the VM preallocates, and the op cap bounds the stack.
const (
	MaxFuseOperands = 16
	MaxFuseOps      = 32
)

// VConstDesc describes one boxed constant.
type VConstDesc struct {
	Str     string
	IsColon bool
}

// Prog is a compiled function body.
type Prog struct {
	Name string
	Ins  []Instr

	// Register file sizes per bank (physical registers after
	// allocation; virtual count before).
	NumF, NumI, NumC, NumV int32
	// Spill slot counts per bank.
	SlotsF, SlotsI, SlotsC, SlotsV int32

	CPool    []complex128
	Aux      []int32
	MathFns  []string // names for OpFMath/OpCMath C-index
	Builtins []string // names for OpGBuiltin
	Calls    []string // user function names for OpCallUser

	// VPoolStrs describes boxed constants for OpVConst: string literals
	// and the ':' subscript marker.
	VPoolStrs []VConstDesc

	Params  []ParamBinding
	OutRegs []int32 // V registers holding outputs at OpRet
	// OutBanks/OutSrc: outputs may live in scalar banks; the epilogue
	// boxes them. OutRegs refer post-boxing V registers.

	// Stats for the harness.
	Allocated bool // register allocation done
}

// AddAux appends words to the aux pool, returning the starting index.
func (p *Prog) AddAux(words ...int32) int32 {
	at := int32(len(p.Aux))
	p.Aux = append(p.Aux, words...)
	return at
}

// Disasm renders the program for debugging and golden tests.
func (p *Prog) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s: f=%d i=%d c=%d v=%d (slots %d/%d/%d/%d)\n",
		p.Name, p.NumF, p.NumI, p.NumC, p.NumV, p.SlotsF, p.SlotsI, p.SlotsC, p.SlotsV)
	for i, in := range p.Ins {
		fmt.Fprintf(&b, "%4d  %s\n", i, in.String())
	}
	return b.String()
}
