package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// EventKind names a tiering lifecycle transition.
type EventKind string

const (
	// EventPromotion: a hot signature crossed the call threshold and a
	// native specialisation was installed.
	EventPromotion EventKind = "promotion"
	// EventEviction: the bounded repository discarded a compiled entry.
	EventEviction EventKind = "eviction"
	// EventSnapshotLoad: the persistence layer warm-started entries.
	EventSnapshotLoad EventKind = "snapshot_load"
	// EventSnapshotFlush: the write-behind writer flushed a snapshot.
	EventSnapshotFlush EventKind = "snapshot_flush"
	// EventDeopt: an OSR transfer was abandoned; Cause says which guard
	// failed (see the Cause* constants).
	EventDeopt EventKind = "deopt"
	// EventOSRCompile: a hot loop requested an OSR specialisation.
	EventOSRCompile EventKind = "osr_compile"
	// EventOSRTransfer: interpreter state moved onto compiled code
	// mid-loop.
	EventOSRTransfer EventKind = "osr_transfer"
	// EventReplication: a repository entry compiled on a cluster peer
	// was applied locally (Cause "peer-apply", Detail names the origin
	// node).
	EventReplication EventKind = "replication"
)

// Deopt causes — one per guard in core.osrTransfer, so every deopt in
// the journal names the specific check that rejected the transfer.
const (
	CauseGeneration      = "generation-mismatch" // code generation advanced under the loop
	CauseBindingGuard    = "binding-guard"       // loop variable bindings didn't match the compiled frame
	CauseRangeGuard      = "range-guard"         // runtime values escaped the inferred ranges
	CauseBudgetExhausted = "budget-exhausted"    // repeated deopts disabled OSR for the site
)

// Event is one journal entry. Func/Sig identify the compiled unit,
// Cause explains the transition, Gen is the repository generation
// involved, Detail is free-form context (victim signature, entry
// counts, loop id).
type Event struct {
	Seq          int64     `json:"seq"`
	TimeUnixNano int64     `json:"time_unix_nano"`
	Kind         EventKind `json:"kind"`
	Func         string    `json:"func,omitempty"`
	Sig          string    `json:"sig,omitempty"`
	Cause        string    `json:"cause,omitempty"`
	Gen          uint64    `json:"gen,omitempty"`
	Detail       string    `json:"detail,omitempty"`
}

// Journal is a bounded ring of tiering events. Nil-receiver-safe like
// Tracer, and events only fire on slow paths (promotion, eviction,
// snapshot I/O, deopt) — never per iteration — so it adds nothing to
// fused or VM fast paths.
type Journal struct {
	cap int

	mu     sync.Mutex
	seq    int64
	events []Event
	head   int
}

// DefaultJournalCapacity bounds journals created with capacity <= 0.
const DefaultJournalCapacity = 4096

// NewJournal returns a journal holding at most capacity events (<= 0
// means DefaultJournalCapacity); when full the oldest entry is
// overwritten.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{cap: capacity}
}

// Record appends an event, stamping Seq and TimeUnixNano.
func (j *Journal) Record(ev Event) {
	if j == nil {
		return
	}
	ev.TimeUnixNano = time.Now().UnixNano()
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	if len(j.events) < j.cap {
		j.events = append(j.events, ev)
	} else {
		j.events[j.head] = ev
		j.head = (j.head + 1) % j.cap
	}
	j.mu.Unlock()
}

// Events returns the retained entries, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.events))
	out = append(out, j.events[j.head:]...)
	out = append(out, j.events[:j.head]...)
	return out
}

// Len reports how many entries are retained.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Total reports how many events were ever recorded (Seq high-water).
func (j *Journal) Total() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// String renders one event as a log line — the `majic -jit-log` format.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %s", e.Seq,
		time.Unix(0, e.TimeUnixNano).Format("15:04:05.000"), e.Kind)
	if e.Func != "" {
		fmt.Fprintf(&b, " %s", e.Func)
	}
	if e.Sig != "" {
		fmt.Fprintf(&b, " sig=%s", e.Sig)
	}
	if e.Cause != "" {
		fmt.Fprintf(&b, " cause=%s", e.Cause)
	}
	if e.Gen != 0 {
		fmt.Fprintf(&b, " gen=%d", e.Gen)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	return b.String()
}

// WriteText prints the retained events oldest-first, one line each.
func (j *Journal) WriteText(w io.Writer) error {
	for _, e := range j.Events() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
