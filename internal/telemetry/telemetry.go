// Package telemetry is the JIT flight recorder: one process-wide
// surface unifying the runtime's scattered Stats structs (repository,
// compile queue, parallel pool, tiering profile, persistence, server
// routes) behind a single metric model, plus two event streams the flat
// counters cannot answer — per-eval trace spans ("why was *this* eval
// slow?") and a cause-attributed tiering journal ("why did *this* loop
// deopt?").
//
// Three pieces:
//
//   - Registry: named Collectors emit Samples (counter/gauge/histogram)
//     at scrape time. Subsystems keep their cheap atomic Stats structs
//     and adapt them into samples when asked, so recording stays exactly
//     as it was — the registry adds no hot-path work at all. The
//     registry renders both the samples themselves (for tests and JSON
//     surfaces) and the Prometheus text exposition format (see
//     prometheus.go), served by majicd at /metrics.prom.
//
//   - Tracer: a bounded ring of Chrome trace-event spans (trace.go),
//     written by the phase timers the engine already keeps for the
//     paper's Figure 6 decomposition — the span durations are the very
//     same measurements that feed core.PhaseTimes, so span-tree totals
//     reconcile with the figure by construction. Load a dump in
//     chrome://tracing or Perfetto.
//
//   - Journal: a bounded ring of tiering events (journal.go) — each
//     promotion, eviction, snapshot load/flush, and deopt, with its
//     cause (generation mismatch vs binding guard vs range guard vs
//     budget exhausted), function, signature, and timestamp.
//
// Neutrality contract: every instrument is opt-in (nil Tracer) or rides
// an existing slow path (journal events fire on promotions, deopts,
// evictions, snapshot writes — never per element, never per iteration),
// and no VM or fused fast path gains a branch. Paper-mode outputs are
// byte-for-byte unchanged with telemetry attached.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a metric sample.
type Kind uint8

const (
	// KindCounter is a monotonically nondecreasing count.
	KindCounter Kind = iota
	// KindGauge is a point-in-time level that may go down.
	KindGauge
	// KindHistogram is a bucketed distribution (cumulative buckets).
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Label is one name=value pair on a sample. Labels are ordered — the
// emitting collector fixes the order, the exposition preserves it.
type Label struct {
	Key   string
	Value string
}

// Bucket is one cumulative histogram bucket: the count of observations
// with value <= UpperBound.
type Bucket struct {
	UpperBound float64 // +Inf allowed
	Count      uint64
}

// Sample is one metric observation at scrape time.
type Sample struct {
	// Name is the full metric name (Prometheus conventions: snake_case,
	// counters end in _total, units spelled out).
	Name string
	// Help is the one-line metric description (HELP text).
	Help string
	Kind Kind
	// Labels qualify the sample (may be nil). Samples sharing a Name
	// must share a Kind and should share Help.
	Labels []Label
	// Value carries counter and gauge readings.
	Value float64
	// Buckets/Sum/Count carry histogram readings (Kind == KindHistogram);
	// Buckets must be cumulative and should end with +Inf.
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Collector emits samples when the registry is scraped. Implementations
// must be safe for concurrent use — scrapes can race recording.
type Collector interface {
	Collect(emit func(Sample))
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(emit func(Sample))

// Collect implements Collector.
func (f CollectorFunc) Collect(emit func(Sample)) { f(emit) }

// Registry is a named set of collectors: the unified telemetry surface
// one process (a CLI run, a majicd daemon) exposes. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	order      []string
	collectors map[string]Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{collectors: make(map[string]Collector)}
}

// Register installs a collector under a name, replacing any previous
// collector with the same name (sessions re-registering on reconnect
// must not accumulate duplicates). Nil-receiver-safe: registering on a
// nil registry is a no-op, so subsystems can wire telemetry
// unconditionally.
func (r *Registry) Register(name string, c Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.collectors[name]; !ok {
		r.order = append(r.order, name)
	}
	r.collectors[name] = c
}

// RegisterFunc installs a CollectorFunc under a name.
func (r *Registry) RegisterFunc(name string, f func(emit func(Sample))) {
	r.Register(name, CollectorFunc(f))
}

// Unregister removes a named collector (session teardown).
func (r *Registry) Unregister(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.collectors[name]; !ok {
		return
	}
	delete(r.collectors, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// Gather scrapes every collector (in registration order) and returns
// the samples grouped by metric name: all samples of one name are
// adjacent, names in first-seen order. Samples with the same name and
// identical label sets are summed (counters/gauges) so several sessions
// emitting the same metric aggregate instead of colliding.
func (r *Registry) Gather() []Sample {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	cs := make([]Collector, 0, len(r.order))
	for _, name := range r.order {
		cs = append(cs, r.collectors[name])
	}
	r.mu.RUnlock()

	var raw []Sample
	for _, c := range cs {
		c.Collect(func(s Sample) { raw = append(raw, s) })
	}
	return mergeSamples(raw)
}

// mergeSamples groups samples by name (first-seen name order, stable
// within a name) and sums duplicate (name, labels) counter/gauge pairs.
func mergeSamples(raw []Sample) []Sample {
	type key struct {
		name   string
		labels string
	}
	nameOrder := make([]string, 0, len(raw))
	seenName := make(map[string]bool)
	byName := make(map[string][]Sample)
	index := make(map[key]int) // into byName[name]

	for _, s := range raw {
		if s.Name == "" {
			continue
		}
		if !seenName[s.Name] {
			seenName[s.Name] = true
			nameOrder = append(nameOrder, s.Name)
		}
		k := key{s.Name, labelKey(s.Labels)}
		if i, ok := index[k]; ok && s.Kind != KindHistogram {
			byName[s.Name][i].Value += s.Value
			continue
		}
		byName[s.Name] = append(byName[s.Name], s)
		index[k] = len(byName[s.Name]) - 1
	}

	out := make([]Sample, 0, len(raw))
	for _, name := range nameOrder {
		out = append(out, byName[name]...)
	}
	return out
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// --- emit helpers --------------------------------------------------------------

// EmitCounter is the collector-side shorthand for a labelless counter.
func EmitCounter(emit func(Sample), name, help string, v float64) {
	emit(Sample{Name: name, Help: help, Kind: KindCounter, Value: v})
}

// EmitGauge is the collector-side shorthand for a labelless gauge.
func EmitGauge(emit func(Sample), name, help string, v float64) {
	emit(Sample{Name: name, Help: help, Kind: KindGauge, Value: v})
}

// EmitCounterL emits one labelled counter sample.
func EmitCounterL(emit func(Sample), name, help string, v float64, labels ...Label) {
	emit(Sample{Name: name, Help: help, Kind: KindCounter, Value: v, Labels: labels})
}

// EmitGaugeL emits one labelled gauge sample.
func EmitGaugeL(emit func(Sample), name, help string, v float64, labels ...Label) {
	emit(Sample{Name: name, Help: help, Kind: KindGauge, Value: v, Labels: labels})
}

// SortLabels orders a label list by key (exposition determinism for
// collectors that build labels from maps).
func SortLabels(labels []Label) {
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
}
