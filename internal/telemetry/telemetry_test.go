package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGatherOrderAndMerge(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("b", func(emit func(Sample)) {
		EmitCounter(emit, "majic_evals_total", "evals", 3)
		EmitGauge(emit, "majic_sessions", "sessions", 2)
	})
	r.RegisterFunc("a", func(emit func(Sample)) {
		EmitCounter(emit, "majic_evals_total", "evals", 4)
	})
	got := r.Gather()
	if len(got) != 2 {
		t.Fatalf("Gather() = %d samples, want 2 (merged): %+v", len(got), got)
	}
	if got[0].Name != "majic_evals_total" || got[0].Value != 7 {
		t.Fatalf("merged counter = %+v, want majic_evals_total=7", got[0])
	}
	if got[1].Name != "majic_sessions" || got[1].Value != 2 {
		t.Fatalf("gauge = %+v", got[1])
	}
}

func TestRegistryLabelsNotMerged(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("x", func(emit func(Sample)) {
		EmitCounterL(emit, "majic_route_total", "h", 1, Label{"route", "eval"})
		EmitCounterL(emit, "majic_route_total", "h", 5, Label{"route", "create"})
		EmitCounterL(emit, "majic_route_total", "h", 2, Label{"route", "eval"})
	})
	got := r.Gather()
	if len(got) != 2 {
		t.Fatalf("Gather() = %d samples, want 2: %+v", len(got), got)
	}
	if got[0].Value != 3 || got[1].Value != 5 {
		t.Fatalf("label merge wrong: %+v", got)
	}
}

func TestRegistryReplaceAndUnregister(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("s", func(emit func(Sample)) { EmitCounter(emit, "c_total", "", 1) })
	r.RegisterFunc("s", func(emit func(Sample)) { EmitCounter(emit, "c_total", "", 9) })
	if got := r.Gather(); len(got) != 1 || got[0].Value != 9 {
		t.Fatalf("replace failed: %+v", got)
	}
	r.Unregister("s")
	if got := r.Gather(); len(got) != 0 {
		t.Fatalf("unregister failed: %+v", got)
	}
}

func TestNilReceiversSafe(t *testing.T) {
	var r *Registry
	r.Register("x", CollectorFunc(func(func(Sample)) {}))
	r.Unregister("x")
	if r.Gather() != nil {
		t.Fatal("nil registry Gather should be nil")
	}
	var tr *Tracer
	tr.Span(CatEval, "e", 0, time.Now(), time.Millisecond)
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer should be inert")
	}
	var j *Journal
	j.Record(Event{Kind: EventDeopt})
	if j.Events() != nil || j.Len() != 0 || j.Total() != 0 {
		t.Fatal("nil journal should be inert")
	}
}

func TestWritePrometheusValidates(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("core", func(emit func(Sample)) {
		EmitCounter(emit, "majic_repo_hits_total", "repository locator hits", 12)
		EmitGaugeL(emit, "majic_queue_depth", "queue depth", 3, Label{"pool", `a"b\c`})
		emit(Sample{
			Name: "majic_eval_latency_seconds",
			Help: "eval latency",
			Kind: KindHistogram,
			Buckets: []Bucket{
				{UpperBound: 0.001, Count: 2},
				{UpperBound: 0.01, Count: 5},
				{UpperBound: math.Inf(1), Count: 7},
			},
			Sum:   0.042,
			Count: 7,
		})
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	n, err := ValidatePrometheus(out)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	if n != 7 { // 1 counter + 1 gauge + 3 buckets + sum + count
		t.Fatalf("sample lines = %d, want 7\n%s", n, out)
	}
	for _, want := range []string{
		"# TYPE majic_repo_hits_total counter",
		"majic_repo_hits_total 12",
		`majic_queue_depth{pool="a\"b\\c"} 3`,
		`majic_eval_latency_seconds_bucket{le="+Inf"} 7`,
		"majic_eval_latency_seconds_sum 0.042",
		"majic_eval_latency_seconds_count 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWritePrometheusAddsInfBucket(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("h", func(emit func(Sample)) {
		emit(Sample{Name: "h_hist", Kind: KindHistogram,
			Buckets: []Bucket{{UpperBound: 1, Count: 3}}, Sum: 1.5, Count: 4})
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `h_hist_bucket{le="+Inf"} 4`) {
		t.Fatalf("missing synthesized +Inf bucket:\n%s", b.String())
	}
	if _, err := ValidatePrometheus(b.String()); err != nil {
		t.Fatal(err)
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	for _, bad := range []string{
		"no_type_header 1",
		"# TYPE m wrongtype\nm 1",
		"# TYPE m counter\nm{unclosed=\"x} 1",
		"# TYPE m counter\nm notanumber",
		"# TYPE m counter\n# TYPE m counter\nm 1",
	} {
		if _, err := ValidatePrometheus(bad); err == nil {
			t.Errorf("ValidatePrometheus(%q) accepted invalid payload", bad)
		}
	}
}

func TestTracerRingAndTotals(t *testing.T) {
	tr := NewTracer(4)
	base := time.Now()
	for i := 0; i < 6; i++ {
		tr.Span(CatExec, "run", 1, base.Add(time.Duration(i)*time.Millisecond), 2*time.Millisecond)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", tr.Dropped())
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events not oldest-first: %+v", evs)
		}
	}
	if got := tr.CatTotals()[CatExec]; got != 8*time.Millisecond {
		t.Fatalf("CatTotals[exec] = %v, want 8ms", got)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.SpanArgs(CatEval, "eval", 3, time.Now(), 5*time.Millisecond, map[string]any{"src": "x=1"})
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"cat":"eval"`, `"tid":3`, `"src":"x=1"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON missing %q:\n%s", want, out)
		}
	}
	empty := NewTracer(1)
	b.Reset()
	if err := empty.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"traceEvents":[]`) {
		t.Fatalf("empty tracer should emit an empty array:\n%s", b.String())
	}
}

func TestJournalRingSeqAndCauses(t *testing.T) {
	j := NewJournal(3)
	causes := []string{CauseGeneration, CauseBindingGuard, CauseRangeGuard, CauseBudgetExhausted}
	for _, c := range causes {
		j.Record(Event{Kind: EventDeopt, Func: "hotloop", Sig: "(f64)", Cause: c})
	}
	if j.Len() != 3 || j.Total() != 4 {
		t.Fatalf("Len=%d Total=%d, want 3/4", j.Len(), j.Total())
	}
	evs := j.Events()
	if evs[0].Cause != CauseBindingGuard || evs[2].Cause != CauseBudgetExhausted {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	for i, ev := range evs {
		if ev.Seq != int64(i+2) {
			t.Fatalf("seq not monotonic: %+v", evs)
		}
		if ev.TimeUnixNano == 0 || ev.Cause == "" {
			t.Fatalf("event missing stamp or cause: %+v", ev)
		}
	}
}

// Concurrency smoke for -race: scrapes racing registration, spans and
// journal events racing reads.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(128)
	j := NewJournal(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.RegisterFunc("g", func(emit func(Sample)) {
					EmitCounter(emit, "c_total", "", 1)
				})
				tr.Span(CatQueue, "job", g, time.Now(), time.Microsecond)
				j.Record(Event{Kind: EventPromotion, Func: "f", Cause: "hot-signature"})
				_ = r.Gather()
				_ = tr.Events()
				_ = j.Events()
			}
		}(g)
	}
	wg.Wait()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePrometheus(b.String()); err != nil {
		t.Fatal(err)
	}
}
