package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Span categories. Each maps to one stage of the pipeline the paper's
// Figure 6 decomposes; the engine emits them with the very same
// durations it adds to core.PhaseTimes, so a trace's per-category
// totals reconcile with the figure exactly.
const (
	CatEval     = "eval"     // whole EvalString call
	CatParse    = "parse"    // front-end parse
	CatDisambig = "disambig" // MAGICA-style disambiguation
	CatTypeInf  = "typeinf"  // type/shape inference
	CatCodegen  = "codegen"  // code generation / specialisation
	CatQueue    = "queue"    // compile-queue wait (ticket.Wait)
	CatCompile  = "compile"  // background compile job execution
	CatExec     = "exec"     // program execution
	CatTierUp   = "tierup"   // tier promotion compile
	CatOSR      = "osr"      // on-stack replacement compile/transfer
)

// TraceEvent is one Chrome trace-event ("X" complete event): load the
// dump in chrome://tracing or Perfetto. Timestamps and durations are
// microseconds; TS is relative to the tracer's start so traces from
// different runs line up at zero.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer collects trace spans into a bounded ring. All methods are safe
// on a nil receiver and from concurrent goroutines, so instrumentation
// sites never branch on "is tracing on?" — a nil tracer costs one
// predictable nil check inside the call.
type Tracer struct {
	start time.Time
	cap   int

	mu     sync.Mutex
	events []TraceEvent
	head   int // next overwrite position once the ring is full

	dropped atomic.Int64 // events overwritten after the ring filled
}

// DefaultTraceCapacity bounds tracers created with capacity <= 0.
const DefaultTraceCapacity = 1 << 16

// NewTracer returns a tracer holding at most capacity spans (<= 0 means
// DefaultTraceCapacity). When full it overwrites the oldest span and
// counts the loss — a long-lived daemon keeps the most recent window,
// which is the one an operator debugging "why is it slow *now*" wants.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{start: time.Now(), cap: capacity}
}

// Span records one completed span. begin is the span's wall-clock start
// and d its duration — pass the same time.Since value the caller feeds
// into its PhaseTimes atomic, never a second measurement. tid picks the
// lane (engine id for eval-thread spans, compile-worker index for queue
// jobs).
func (t *Tracer) Span(cat, name string, tid int, begin time.Time, d time.Duration) {
	t.span(cat, name, tid, begin, d, nil)
}

// SpanArgs is Span with key/value detail attached to the event.
func (t *Tracer) SpanArgs(cat, name string, tid int, begin time.Time, d time.Duration, args map[string]any) {
	t.span(cat, name, tid, begin, d, args)
}

func (t *Tracer) span(cat, name string, tid int, begin time.Time, d time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	ev := TraceEvent{
		Name: name,
		Cat:  cat,
		Ph:   "X",
		TS:   begin.Sub(t.start).Microseconds(),
		Dur:  d.Microseconds(),
		TID:  tid,
		Args: args,
	}
	t.mu.Lock()
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
	} else {
		t.events[t.head] = ev
		t.head = (t.head + 1) % t.cap
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// Events returns the recorded spans, oldest first.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// Dropped reports how many spans were overwritten after the ring filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// CatTotals sums span durations per category — the reconciliation
// surface for the PhaseTimes guard test.
func (t *Tracer) CatTotals() map[string]time.Duration {
	totals := make(map[string]time.Duration)
	for _, ev := range t.Events() {
		totals[ev.Cat] += time.Duration(ev.Dur) * time.Microsecond
	}
	return totals
}

// WriteJSON emits the spans as a Chrome trace-event file:
// {"traceEvents":[...],"displayTimeUnit":"ms"}.
func (t *Tracer) WriteJSON(w io.Writer) error {
	type dump struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		Dropped         int64        `json:"droppedEventCount,omitempty"`
	}
	events := t.Events()
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(dump{TraceEvents: events, DisplayTimeUnit: "ms", Dropped: t.Dropped()})
}

// WriteFile dumps the spans as a Chrome trace-event file at path — the
// -trace=FILE exit path shared by the CLIs.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
