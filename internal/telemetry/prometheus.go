package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per metric
// family, then the family's samples; histograms expand into cumulative
// _bucket{le=...} series plus _sum and _count. majicd serves this at
// /metrics.prom.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastName string
	for _, s := range r.Gather() {
		if s.Name != lastName {
			if s.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.Name, s.Kind)
			lastName = s.Name
		}
		writeSample(bw, s)
	}
	return bw.Flush()
}

func writeSample(w io.Writer, s Sample) {
	switch s.Kind {
	case KindHistogram:
		// Cumulative buckets; guarantee a trailing +Inf so the series is
		// well-formed even if the collector omitted it.
		hasInf := false
		for _, b := range s.Buckets {
			writeLine(w, s.Name+"_bucket", append(append([]Label(nil), s.Labels...),
				Label{Key: "le", Value: formatLe(b.UpperBound)}), float64(b.Count))
			if math.IsInf(b.UpperBound, 1) {
				hasInf = true
			}
		}
		if !hasInf {
			writeLine(w, s.Name+"_bucket", append(append([]Label(nil), s.Labels...),
				Label{Key: "le", Value: "+Inf"}), float64(s.Count))
		}
		writeLine(w, s.Name+"_sum", s.Labels, s.Sum)
		writeLine(w, s.Name+"_count", s.Labels, float64(s.Count))
	default:
		writeLine(w, s.Name, s.Labels, s.Value)
	}
}

func writeLine(w io.Writer, name string, labels []Label, v float64) {
	if len(labels) == 0 {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	fmt.Fprintf(w, "%s %s\n", b.String(), formatValue(v))
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// --- validation ----------------------------------------------------------------

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)( [0-9]+)?$`)
)

// ValidatePrometheus checks a text-exposition payload for well-
// formedness: every non-comment line must parse as a sample, every
// sample's base name must have a preceding TYPE line, and TYPE/HELP
// lines must name valid metrics. It returns the number of sample lines,
// so callers can also assert the payload is non-trivial. This is the
// CI gate for /metrics.prom — a scrape that Prometheus would reject
// must fail the build, not page an operator later.
func ValidatePrometheus(payload string) (samples int, err error) {
	typed := make(map[string]string)
	for ln, line := range strings.Split(payload, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return samples, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !metricNameRe.MatchString(fields[2]) {
				return samples, fmt.Errorf("line %d: bad metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return samples, fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := typed[fields[2]]; dup {
					return samples, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fields[2])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		m := sampleLineRe.FindStringSubmatch(line)
		if m == nil {
			return samples, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
		if _, ok := typed[m[1]]; !ok {
			if _, ok := typed[base]; !ok {
				return samples, fmt.Errorf("line %d: sample %q has no TYPE header", lineNo, m[1])
			}
		}
		samples++
	}
	return samples, nil
}
