// Package interp is the baseline tree-walking interpreter: the stand-in
// for the stock MATLAB interpreter whose runtimes define ti in the
// paper's speedup measurements. It deliberately has the overheads the
// paper attributes to interpretation — a dynamic (map-based) symbol
// table consulted on every variable access, boxed values, per-operation
// kind dispatch, and subscript checks on every array access.
package interp

import (
	"fmt"
	"math"

	"repro/internal/ast"
	"repro/internal/builtins"
	"repro/internal/cancel"
	"repro/internal/mat"
)

// Host is the engine-side interface the interpreter uses to resolve and
// invoke user functions. In the MaJIC configuration CallFunction defers
// to the code repository (which may run compiled code); in the pure
// interpreter configuration it interprets recursively.
type Host interface {
	// LookupFunction resolves a user-defined function by name (nil if
	// not found).
	LookupFunction(name string) *ast.Function
	// CallFunction invokes a user-defined function.
	CallFunction(name string, args []*mat.Value, nout int) ([]*mat.Value, error)
	// Context returns the shared builtin context (RNG, output).
	Context() *builtins.Context
}

// Interp evaluates MATLAB ASTs.
type Interp struct {
	host Host
	// cancel is the host's interruption flag (nil when the host has
	// none). It is polled at loop back-edges so a raised flag aborts
	// non-terminating programs within one iteration.
	cancel *cancel.Flag
}

// New returns an interpreter bound to host.
func New(host Host) *Interp {
	in := &Interp{host: host}
	if c, ok := host.(cancel.Checker); ok {
		in.cancel = c.CancelFlag()
	}
	return in
}

// checkCancel is the back-edge safepoint: it returns ErrInterrupted
// when the host's cancel flag is raised.
func (in *Interp) checkCancel() error {
	if in.cancel != nil && in.cancel.Raised() {
		return cancel.ErrInterrupted
	}
	return nil
}

// Env is a dynamic symbol table: one per workspace or function frame.
type Env struct {
	vars    map[string]*mat.Value
	globals map[string]*mat.Value // engine-wide global workspace
	isGlob  map[string]bool
	// frame is the tiered-execution state of this activation (nil for
	// untiered calls and the interactive workspace): loop safepoints
	// feed its back-edge counter and may transfer the activation into
	// compiled code (see osr.go).
	frame *Frame
}

// NewEnv returns an empty environment sharing the given global space.
func NewEnv(globals map[string]*mat.Value) *Env {
	return &Env{vars: make(map[string]*mat.Value), globals: globals, isGlob: make(map[string]bool)}
}

// Lookup returns the value bound to name.
func (e *Env) Lookup(name string) (*mat.Value, bool) {
	if e.isGlob[name] {
		v, ok := e.globals[name]
		return v, ok
	}
	v, ok := e.vars[name]
	return v, ok
}

// Bind sets name to v.
func (e *Env) Bind(name string, v *mat.Value) {
	if e.isGlob[name] {
		e.globals[name] = v
		return
	}
	e.vars[name] = v
}

// Names returns the bound variable names (for the REPL's whos).
func (e *Env) Names() []string {
	out := make([]string, 0, len(e.vars))
	for n := range e.vars {
		out = append(out, n)
	}
	return out
}

// control-flow signal for break/continue/return unwinding.
type ctl uint8

const (
	ctlNone ctl = iota
	ctlBreak
	ctlContinue
	ctlReturn
	// ctlOSR unwinds an activation whose loop transferred to compiled
	// code: the frame already holds the function's outputs.
	ctlOSR
)

// posErr annotates a runtime error with a source position once.
func posErr(p ast.Pos, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*positioned); ok {
		return err
	}
	return &positioned{pos: p, err: err}
}

type positioned struct {
	pos ast.Pos
	err error
}

func (e *positioned) Error() string { return fmt.Sprintf("%s: %s", e.pos, e.err.Error()) }
func (e *positioned) Unwrap() error { return e.err }

// ExecStmts executes a statement list in env.
func (in *Interp) ExecStmts(stmts []ast.Stmt, env *Env) error {
	c, err := in.execBlock(stmts, env)
	if err != nil {
		return err
	}
	if c == ctlBreak || c == ctlContinue {
		return fmt.Errorf("break/continue outside a loop")
	}
	return nil
}

func (in *Interp) execBlock(stmts []ast.Stmt, env *Env) (ctl, error) {
	for _, s := range stmts {
		c, err := in.execStmt(s, env)
		if err != nil || c != ctlNone {
			return c, err
		}
	}
	return ctlNone, nil
}

func (in *Interp) execStmt(s ast.Stmt, env *Env) (ctl, error) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		v, err := in.eval(x.X, env)
		if err != nil {
			return ctlNone, posErr(x.P, err)
		}
		if v != nil {
			// Expression statements bind ans, like MATLAB. The value may
			// alias a variable (bare `x;`), so mark it for copy-on-write.
			v.MarkShared()
			env.Bind("ans", v)
			// Echo unless suppressed; void-style builtin calls (disp,
			// fprintf, ...) return empties that MATLAB does not echo.
			_, isCall := x.X.(*ast.Call)
			if x.Display && !(isCall && v.IsEmpty()) {
				fmt.Fprintf(in.host.Context().Out, "ans =\n%s\n", v.String())
			}
		}
		return ctlNone, nil

	case *ast.Assign:
		return ctlNone, posErr(x.P, in.execAssign(x, env))

	case *ast.If:
		for i, cond := range x.Conds {
			v, err := in.eval(cond, env)
			if err != nil {
				return ctlNone, posErr(cond.Pos(), err)
			}
			if v.IsTrue() {
				return in.execBlock(x.Blocks[i], env)
			}
		}
		if x.Else != nil {
			return in.execBlock(x.Else, env)
		}
		return ctlNone, nil

	case *ast.While:
		for {
			if err := in.checkCancel(); err != nil {
				return ctlNone, posErr(x.Cond.Pos(), err)
			}
			// Back-edge safepoint: same site as the cancel poll. A hot
			// tiered activation may transfer into compiled code here —
			// at the header, before the condition, so the continuation
			// (which starts with this while) re-evaluates it.
			if fr := env.frame; fr != nil && fr.tick(x) {
				c, err := fr.offer(x, env, nil)
				if err != nil || c == ctlOSR {
					return c, err
				}
			}
			v, err := in.eval(x.Cond, env)
			if err != nil {
				return ctlNone, posErr(x.Cond.Pos(), err)
			}
			if !v.IsTrue() {
				return ctlNone, nil
			}
			c, err := in.execBlock(x.Body, env)
			if err != nil {
				return ctlNone, err
			}
			if c == ctlBreak {
				return ctlNone, nil
			}
			if c == ctlReturn || c == ctlOSR {
				return c, nil
			}
		}

	case *ast.For:
		return in.execFor(x, env)

	case *ast.Switch:
		subj, err := in.eval(x.Subject, env)
		if err != nil {
			return ctlNone, posErr(x.P, err)
		}
		for i, cv := range x.CaseVals {
			v, err := in.eval(cv, env)
			if err != nil {
				return ctlNone, posErr(cv.Pos(), err)
			}
			match, err := switchMatch(subj, v)
			if err != nil {
				return ctlNone, posErr(cv.Pos(), err)
			}
			if match {
				return in.execBlock(x.CaseBlks[i], env)
			}
		}
		if x.Otherwise != nil {
			return in.execBlock(x.Otherwise, env)
		}
		return ctlNone, nil

	case *ast.Break:
		return ctlBreak, nil
	case *ast.Continue:
		return ctlContinue, nil
	case *ast.Return:
		return ctlReturn, nil

	case *ast.Global:
		for _, n := range x.Names {
			env.isGlob[n] = true
			if _, ok := env.globals[n]; !ok {
				env.globals[n] = mat.Empty()
			}
		}
		return ctlNone, nil

	case *ast.Clear:
		if len(x.Names) == 0 {
			for k := range env.vars {
				delete(env.vars, k)
			}
			for k := range env.isGlob {
				delete(env.isGlob, k)
			}
		} else {
			for _, n := range x.Names {
				delete(env.vars, n)
				delete(env.isGlob, n)
			}
		}
		return ctlNone, nil
	}
	return ctlNone, fmt.Errorf("unsupported statement %T", s)
}

func switchMatch(subj, cv *mat.Value) (bool, error) {
	if subj.Kind() == mat.Char || cv.Kind() == mat.Char {
		return subj.Kind() == cv.Kind() && subj.Text() == cv.Text(), nil
	}
	if !cv.IsScalar() || !subj.IsScalar() {
		return false, nil
	}
	return subj.At(0, 0) == cv.At(0, 0), nil
}

func (in *Interp) execFor(x *ast.For, env *Env) (ctl, error) {
	// Fast path: a literal range iterates without materializing.
	if r, ok := x.Iter.(*ast.Range); ok {
		lo, err := in.evalScalar(r.Lo, env)
		if err != nil {
			return ctlNone, posErr(r.P, err)
		}
		step := 1.0
		if r.Step != nil {
			step, err = in.evalScalar(r.Step, env)
			if err != nil {
				return ctlNone, posErr(r.P, err)
			}
		}
		hi, err := in.evalScalar(r.Hi, env)
		if err != nil {
			return ctlNone, posErr(r.P, err)
		}
		if step == 0 || (step > 0 && lo > hi) || (step < 0 && lo < hi) {
			return ctlNone, nil
		}
		// Iterate v = lo + k*step for k = 0..n, using the same count and
		// value formula as mat.Colon so interpreted and compiled runs
		// agree bit for bit.
		n := int(math.Floor((hi-lo)/step + 1e-10))
		for k := 0; k <= n; k++ {
			if err := in.checkCancel(); err != nil {
				return ctlNone, posErr(x.P, err)
			}
			// Back-edge safepoint (same site as the cancel poll). The
			// transfer point is the top of iteration k, before the loop
			// variable is bound: a continuation resumes with iterations
			// k..n, re-deriving v = lo + j*step exactly as below.
			if fr := env.frame; fr != nil && fr.tick(x) {
				c, err := fr.offer(x, env, &ForOSR{Var: x.Var, Lo: lo, Step: step, K: k, N: n})
				if err != nil || c == ctlOSR {
					return c, err
				}
			}
			v := lo + float64(k)*step
			env.Bind(x.Var, mat.Scalar(v))
			c, err := in.execBlock(x.Body, env)
			if err != nil {
				return ctlNone, err
			}
			if c == ctlBreak {
				return ctlNone, nil
			}
			if c == ctlReturn || c == ctlOSR {
				return c, nil
			}
		}
		return ctlNone, nil
	}
	iter, err := in.eval(x.Iter, env)
	if err != nil {
		return ctlNone, posErr(x.P, err)
	}
	// General form: iterate over columns.
	for c := 0; c < iter.Cols(); c++ {
		if err := in.checkCancel(); err != nil {
			return ctlNone, posErr(x.P, err)
		}
		// Column iteration counts toward hotness (promotion) but never
		// transfers: the materialized iterator has no compact induction
		// state to hand to a continuation.
		if fr := env.frame; fr != nil {
			fr.tick(x)
			fr.deny(x)
		}
		col := mat.NewKind(iter.Kind(), iter.Rows(), 1)
		for r := 0; r < iter.Rows(); r++ {
			col.SetAt(r, 0, iter.At(r, c))
			if iter.Im() != nil {
				col.Im()[r] = iter.ImAt(r, c)
			}
		}
		env.Bind(x.Var, col)
		cl, err := in.execBlock(x.Body, env)
		if err != nil {
			return ctlNone, err
		}
		if cl == ctlBreak {
			return ctlNone, nil
		}
		if cl == ctlReturn || cl == ctlOSR {
			return cl, nil
		}
	}
	return ctlNone, nil
}

func (in *Interp) evalScalar(e ast.Expr, env *Env) (float64, error) {
	v, err := in.eval(e, env)
	if err != nil {
		return 0, err
	}
	return v.Scalar()
}

func (in *Interp) execAssign(x *ast.Assign, env *Env) error {
	if len(x.LHS) == 1 {
		switch lhs := x.LHS[0].(type) {
		case *ast.Ident:
			v, err := in.eval(x.RHS, env)
			if err != nil {
				return err
			}
			if v == nil {
				return fmt.Errorf("expression returned no value")
			}
			if _, aliases := x.RHS.(*ast.Ident); aliases {
				v.MarkShared()
			}
			env.Bind(lhs.Name, v)
			in.maybeDisplay(x, lhs.Name, v, env)
			return nil
		case *ast.Call:
			v, err := in.eval(x.RHS, env)
			if err != nil {
				return err
			}
			if err := in.indexedAssign(lhs, v, env); err != nil {
				return err
			}
			if cur, ok := env.Lookup(lhs.Name); ok {
				in.maybeDisplay(x, lhs.Name, cur, env)
			}
			return nil
		default:
			return fmt.Errorf("invalid assignment target")
		}
	}
	// Multi-assignment: RHS must be a function call.
	call, ok := x.RHS.(*ast.Call)
	if !ok {
		return fmt.Errorf("multi-assignment requires a function call on the right-hand side")
	}
	vals, err := in.evalCallN(call, env, len(x.LHS))
	if err != nil {
		return err
	}
	if len(vals) < len(x.LHS) {
		return fmt.Errorf("%s: not enough output arguments", call.Name)
	}
	for i, l := range x.LHS {
		switch lhs := l.(type) {
		case *ast.Ident:
			env.Bind(lhs.Name, vals[i])
			in.maybeDisplay(x, lhs.Name, vals[i], env)
		case *ast.Call:
			if err := in.indexedAssign(lhs, vals[i], env); err != nil {
				return err
			}
		default:
			return fmt.Errorf("invalid assignment target")
		}
	}
	return nil
}

func (in *Interp) maybeDisplay(x *ast.Assign, name string, v *mat.Value, env *Env) {
	if x.Display {
		fmt.Fprintf(in.host.Context().Out, "%s =\n%s\n", name, v.String())
	}
}

// indexedAssign performs A(subs...) = rhs, creating A when undefined.
func (in *Interp) indexedAssign(lhs *ast.Call, rhs *mat.Value, env *Env) error {
	base, ok := env.Lookup(lhs.Name)
	if !ok {
		base = mat.Empty()
	} else if base.IsShared() {
		// Copy-on-write: the array is reachable through another binding
		// (B = A, a function argument, ...), so mutate a private copy.
		base = base.Clone()
	}
	subs, err := in.evalSubscripts(lhs.Args, base, env)
	if err != nil {
		return err
	}
	switch len(subs) {
	case 1:
		if err := mat.Assign1(base, subs[0], rhs); err != nil {
			return err
		}
	case 2:
		if err := mat.Assign2(base, subs[0], subs[1], rhs); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unsupported number of subscripts (%d)", len(subs))
	}
	env.Bind(lhs.Name, base)
	return nil
}

// evalSubscripts evaluates an index argument list against base (for the
// 'end' value).
func (in *Interp) evalSubscripts(args []ast.Expr, base *mat.Value, env *Env) ([]mat.Subscript, error) {
	subs := make([]mat.Subscript, len(args))
	for i, a := range args {
		if _, isColon := a.(*ast.Colon); isColon {
			subs[i] = mat.Subscript{Colon: true}
			continue
		}
		v, err := in.evalWithEnd(a, base, i, len(args), env)
		if err != nil {
			return nil, err
		}
		s, err := mat.ResolveSubscript(v)
		if err != nil {
			return nil, err
		}
		// Remember the subscript's shape for result-orientation rules.
		s.ShapeRows, s.ShapeCols = v.Rows(), v.Cols()
		subs[i] = s
	}
	return subs, nil
}

// evalWithEnd evaluates an expression in which 'end' refers to base's
// extent along the given dimension.
func (in *Interp) evalWithEnd(e ast.Expr, base *mat.Value, dim, ndims int, env *Env) (*mat.Value, error) {
	endVal := func(d int) float64 {
		if ndims == 1 {
			return float64(base.Numel())
		}
		if d == 0 {
			return float64(base.Rows())
		}
		return float64(base.Cols())
	}
	return in.evalCtx(e, env, &evalCtx{endVal: endVal})
}

type evalCtx struct {
	endVal func(dim int) float64
}
