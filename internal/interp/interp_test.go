package interp

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/builtins"
	"repro/internal/mat"
	"repro/internal/parser"
)

// host is a minimal Host for direct interpreter tests.
type host struct {
	ctx   *builtins.Context
	funcs map[string]*ast.Function
	in    *Interp
	glob  map[string]*mat.Value
}

func newHost(t *testing.T, src string) *host {
	t.Helper()
	h := &host{ctx: builtins.NewContext(), funcs: map[string]*ast.Function{}, glob: map[string]*mat.Value{}}
	h.in = New(h)
	if src != "" {
		file, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range file.Funcs {
			h.funcs[f.Name] = f
		}
	}
	return h
}

func (h *host) LookupFunction(name string) *ast.Function { return h.funcs[name] }
func (h *host) Context() *builtins.Context               { return h.ctx }
func (h *host) CallFunction(name string, args []*mat.Value, nout int) ([]*mat.Value, error) {
	fn := h.funcs[name]
	if fn == nil {
		return nil, mat.Errorf("no function %q", name)
	}
	return h.in.CallFunction(fn, args, nout, h.glob)
}

func (h *host) run(t *testing.T, src string) *Env {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(h.glob)
	if err := h.in.ExecStmts(file.Stmts, env); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestEnvBindings(t *testing.T) {
	glob := map[string]*mat.Value{}
	e := NewEnv(glob)
	if _, ok := e.Lookup("x"); ok {
		t.Fatal("empty env")
	}
	e.Bind("x", mat.Scalar(1))
	if v, ok := e.Lookup("x"); !ok || v.MustScalar() != 1 {
		t.Fatal("bind/lookup")
	}
	if names := e.Names(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("names: %v", names)
	}
}

func TestGlobalIndirection(t *testing.T) {
	glob := map[string]*mat.Value{}
	e := NewEnv(glob)
	e.isGlob["g"] = true
	e.Bind("g", mat.Scalar(7))
	if glob["g"].MustScalar() != 7 {
		t.Fatal("global binding must write the global space")
	}
	e2 := NewEnv(glob)
	e2.isGlob["g"] = true
	if v, ok := e2.Lookup("g"); !ok || v.MustScalar() != 7 {
		t.Fatal("second frame must see the global")
	}
}

func TestDirectExecution(t *testing.T) {
	h := newHost(t, "")
	env := h.run(t, "a = 2; b = a^10;")
	v, _ := env.Lookup("b")
	if v.MustScalar() != 1024 {
		t.Fatalf("b = %v", v)
	}
}

func TestBreakOutsideLoopErrors(t *testing.T) {
	h := newHost(t, "")
	file, err := parser.Parse("break;")
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(h.glob)
	if err := h.in.ExecStmts(file.Stmts, env); err == nil {
		t.Fatal("break outside a loop must error")
	}
}

func TestCallFunctionOutputs(t *testing.T) {
	h := newHost(t, `
function [a, b, c] = three(x)
  a = x;
  b = x * 2;
  c = x * 3;
end`)
	outs, err := h.CallFunction("three", []*mat.Value{mat.Scalar(5)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 || outs[2].MustScalar() != 15 {
		t.Fatalf("outs: %v", outs)
	}
	// fewer outputs requested
	outs, err = h.CallFunction("three", []*mat.Value{mat.Scalar(5)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("nout=1 gave %d outputs", len(outs))
	}
	// too many inputs
	if _, err := h.CallFunction("three", []*mat.Value{mat.Scalar(1), mat.Scalar(2)}, 1); err == nil {
		t.Fatal("too many inputs must error")
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	h := newHost(t, "")
	file, err := parser.Parse("x = 1;\ny = undefined_thing;")
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(h.glob)
	execErr := h.in.ExecStmts(file.Stmts, env)
	if execErr == nil {
		t.Fatal("expected error")
	}
	if got := execErr.Error(); got == "" || got[0] != '2' {
		t.Errorf("error lacks line position: %q", got)
	}
}

func TestEvalBinOpShim(t *testing.T) {
	out, err := EvalBinOp(ast.OpMul, mat.Scalar(6), mat.Scalar(7))
	if err != nil || out.MustScalar() != 42 {
		t.Fatalf("EvalBinOp: %v %v", out, err)
	}
}
