package interp

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/builtins"
	"repro/internal/mat"
)

// eval evaluates an expression to a single value.
func (in *Interp) eval(e ast.Expr, env *Env) (*mat.Value, error) {
	return in.evalCtx(e, env, nil)
}

func (in *Interp) evalCtx(e ast.Expr, env *Env, ctx *evalCtx) (*mat.Value, error) {
	switch x := e.(type) {
	case *ast.NumberLit:
		if x.Imag {
			return mat.ComplexScalar(complex(0, x.Value)), nil
		}
		if x.IsInt {
			return mat.IntScalar(x.Value), nil
		}
		return mat.Scalar(x.Value), nil

	case *ast.StringLit:
		return mat.FromString(x.Value), nil

	case *ast.Ident:
		if v, ok := env.Lookup(x.Name); ok {
			return v, nil
		}
		// Not a variable: builtin constant/function, then user function.
		if b := builtins.Lookup(x.Name); b != nil {
			vals, err := builtins.Call(in.host.Context(), b, nil, 1)
			if err != nil {
				return nil, err
			}
			return vals[0], nil
		}
		if in.host.LookupFunction(x.Name) != nil {
			vals, err := in.host.CallFunction(x.Name, nil, 1)
			if err != nil {
				return nil, err
			}
			if len(vals) == 0 {
				return nil, fmt.Errorf("%s: function returned no value", x.Name)
			}
			return vals[0], nil
		}
		return nil, fmt.Errorf("undefined function or variable %q", x.Name)

	case *ast.Binary:
		return in.evalBinary(x, env, ctx)

	case *ast.Unary:
		v, err := in.evalCtx(x.X, env, ctx)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case ast.OpNeg:
			return mat.Neg(v)
		case ast.OpPos:
			return mat.UPlus(v)
		case ast.OpNot:
			return mat.Not(v)
		}
		return nil, fmt.Errorf("unknown unary operator")

	case *ast.Transpose:
		v, err := in.evalCtx(x.X, env, ctx)
		if err != nil {
			return nil, err
		}
		if x.Conjugate {
			return mat.Transpose(v)
		}
		return mat.DotTranspose(v)

	case *ast.Range:
		lo, err := in.evalCtx(x.Lo, env, ctx)
		if err != nil {
			return nil, err
		}
		step := mat.Scalar(1)
		if x.Step != nil {
			step, err = in.evalCtx(x.Step, env, ctx)
			if err != nil {
				return nil, err
			}
		}
		hi, err := in.evalCtx(x.Hi, env, ctx)
		if err != nil {
			return nil, err
		}
		return mat.Colon(lo, step, hi)

	case *ast.Colon:
		return nil, fmt.Errorf("':' is only valid inside subscripts")

	case *ast.End:
		if ctx == nil || ctx.endVal == nil {
			return nil, fmt.Errorf("'end' is only valid inside subscripts")
		}
		return mat.IntScalar(ctx.endVal(x.Dim)), nil

	case *ast.Call:
		vals, err := in.evalCallCtx(x, env, 1, ctx)
		if err != nil {
			return nil, err
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("%s: no value returned", x.Name)
		}
		return vals[0], nil

	case *ast.Matrix:
		parts := make([][]*mat.Value, len(x.Rows))
		for i, row := range x.Rows {
			parts[i] = make([]*mat.Value, len(row))
			for j, elem := range row {
				v, err := in.evalCtx(elem, env, ctx)
				if err != nil {
					return nil, err
				}
				parts[i][j] = v
			}
		}
		return mat.Cat(parts)
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

func (in *Interp) evalBinary(x *ast.Binary, env *Env, ctx *evalCtx) (*mat.Value, error) {
	// Short-circuit forms evaluate scalars lazily.
	if x.Op == ast.OpAndAnd || x.Op == ast.OpOrOr {
		l, err := in.evalCtx(x.L, env, ctx)
		if err != nil {
			return nil, err
		}
		lt := l.IsTrue()
		if x.Op == ast.OpAndAnd && !lt {
			return mat.BoolScalar(false), nil
		}
		if x.Op == ast.OpOrOr && lt {
			return mat.BoolScalar(true), nil
		}
		r, err := in.evalCtx(x.R, env, ctx)
		if err != nil {
			return nil, err
		}
		return mat.BoolScalar(r.IsTrue()), nil
	}
	l, err := in.evalCtx(x.L, env, ctx)
	if err != nil {
		return nil, err
	}
	r, err := in.evalCtx(x.R, env, ctx)
	if err != nil {
		return nil, err
	}
	return builtins.EvalBinOp(x.Op, l, r)
}

// EvalBinOp applies a (non-short-circuit) binary operator to boxed
// values (shared dispatcher in package builtins).
func EvalBinOp(op ast.BinOp, l, r *mat.Value) (*mat.Value, error) {
	return builtins.EvalBinOp(op, l, r)
}

// evalCallN evaluates a call expression requesting nout outputs.
func (in *Interp) evalCallN(x *ast.Call, env *Env, nout int) ([]*mat.Value, error) {
	return in.evalCallCtx(x, env, nout, nil)
}

// evalCallCtx resolves the name(args) ambiguity at runtime, exactly as
// the MATLAB interpreter does: variable indexing first, then builtins,
// then user functions.
func (in *Interp) evalCallCtx(x *ast.Call, env *Env, nout int, ctx *evalCtx) ([]*mat.Value, error) {
	if base, ok := env.Lookup(x.Name); ok {
		// Indexing.
		subs, err := in.evalSubscripts(x.Args, base, env)
		if err != nil {
			return nil, err
		}
		var v *mat.Value
		switch len(subs) {
		case 0:
			base.MarkShared()
			v = base
		case 1:
			v, err = mat.Index1(base, subs[0])
		case 2:
			v, err = mat.Index2(base, subs[0], subs[1])
		default:
			err = fmt.Errorf("unsupported number of subscripts (%d)", len(subs))
		}
		if err != nil {
			return nil, err
		}
		return []*mat.Value{v}, nil
	}
	// Function call: evaluate arguments (no 'end' context inside).
	args := make([]*mat.Value, len(x.Args))
	for i, a := range x.Args {
		if _, isColon := a.(*ast.Colon); isColon {
			return nil, fmt.Errorf("%s is not a variable; ':' subscript is invalid here", x.Name)
		}
		v, err := in.evalCtx(a, env, ctx)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	if b := builtins.Lookup(x.Name); b != nil {
		return builtins.Call(in.host.Context(), b, args, nout)
	}
	if in.host.LookupFunction(x.Name) != nil {
		return in.host.CallFunction(x.Name, args, nout)
	}
	return nil, fmt.Errorf("undefined function or variable %q", x.Name)
}

// CallFunction interprets a user function body with call-by-value
// argument binding in a fresh frame.
func (in *Interp) CallFunction(fn *ast.Function, args []*mat.Value, nout int, globals map[string]*mat.Value) ([]*mat.Value, error) {
	if len(args) > len(fn.Ins) {
		return nil, tooManyArgs(fn)
	}
	env := NewEnv(globals)
	for i, a := range args {
		// Call-by-value: the callee sees a private copy. Like MATLAB's
		// refcounted arrays, the copy is deferred: the value is marked
		// shared and cloned only if the callee writes into it.
		a.MarkShared()
		env.Bind(fn.Ins[i], a)
	}
	env.Bind("nargin", mat.IntScalar(float64(len(args))))
	env.Bind("nargout", mat.IntScalar(float64(nout)))
	if err := in.ExecStmts(fn.Body, env); err != nil {
		return nil, err
	}
	return collectOuts(fn, env, nout)
}

func tooManyArgs(fn *ast.Function) error {
	return fmt.Errorf("%s: too many input arguments", fn.Name)
}

func errLooseBreak() error {
	return fmt.Errorf("break/continue outside a loop")
}

// collectOuts extracts a finished activation's output values from its
// environment.
func collectOuts(fn *ast.Function, env *Env, nout int) ([]*mat.Value, error) {
	if nout < 1 {
		nout = 1
	}
	outs := make([]*mat.Value, 0, nout)
	for i := 0; i < len(fn.Outs) && i < nout; i++ {
		v, ok := env.Lookup(fn.Outs[i])
		if !ok {
			if i == 0 && nout == 1 {
				// A function whose single output was never assigned is an
				// error only if the caller uses the value; return empty.
				outs = append(outs, mat.Empty())
				continue
			}
			return nil, fmt.Errorf("%s: output argument %q not assigned", fn.Name, fn.Outs[i])
		}
		outs = append(outs, v)
	}
	if len(fn.Outs) == 0 {
		outs = append(outs, mat.Empty())
	}
	for _, v := range outs {
		// Returned values may alias callee locals that were arguments.
		v.MarkShared()
	}
	return outs, nil
}
