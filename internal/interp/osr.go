// Tiered-execution support: the interpreter's half of profile-guided
// recompilation with on-stack replacement. The engine attaches a Frame
// to a function activation; the loop safepoints that already poll the
// cancel flag then also bump the frame's back-edge counter (one atomic
// add — no new work on untiered activations beyond a nil check), and a
// hot activation offers its host the chance to transfer mid-loop into
// compiled code.
package interp

import (
	"sort"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/mat"
)

// OSRResult is the host's answer to a transfer offer.
type OSRResult uint8

const (
	// OSRNo: no compiled continuation yet (or a guard failed); keep
	// interpreting and offer again at the next back-edge.
	OSRNo OSRResult = iota
	// OSRNever: this site can never transfer (nested loop, globals,
	// uncompilable continuation); stop offering it.
	OSRNever
	// OSRDone: the continuation ran to function return; outs are the
	// function's return values.
	OSRDone
)

// OSRHost is implemented by the engine when tiered execution is on.
type OSRHost interface {
	// TryOSR is offered a hot activation at a loop back-edge safepoint.
	// loop is the statement whose back-edge fired; env is the live
	// frame; forState is non-nil for counted-range for loops and
	// carries the induction state at the safepoint. On OSRDone the
	// returned values are the function's outputs (the continuation ran
	// to return) and the interpreter unwinds the activation.
	TryOSR(fr *Frame, loop ast.Stmt, env *Env, forState *ForOSR) ([]*mat.Value, OSRResult, error)
}

// ForOSR is the induction state of a counted-range for loop at a
// back-edge safepoint: the interpreter is about to run iteration K of
// `for Var = Lo : Step : Hi`, whose trip count is N+1 (K and N use the
// interpreter's own integer induction variable, so a continuation that
// re-derives Var as Lo + k*Step reproduces the interpreted values bit
// for bit).
type ForOSR struct {
	Var      string
	Lo, Step float64
	K, N     int
}

// Frame is the tiered state of one function activation. It is created
// by the engine per call (single goroutine); only BackEdges is shared
// with the profile store.
type Frame struct {
	Fn   *ast.Function
	Nout int
	Host OSRHost
	// Gen is the repository generation the activation started under;
	// OSR entries compiled at another generation must not transfer in.
	Gen uint64
	// Threshold is the back-edge count after which the activation is
	// hot; <= 0 disables OSR (counters still feed the profile).
	Threshold int64
	// BackEdges is the shared profile counter (may be nil).
	BackEdges *atomic.Int64
	// Prof is the engine's per-signature profile record, carried
	// opaquely so the interpreter stays decoupled from the profile
	// package.
	Prof any

	count   int64
	denied  map[ast.Stmt]bool
	osrOuts []*mat.Value
}

// tick counts one back-edge and reports whether the activation is hot
// enough to offer the host a transfer at this loop.
func (fr *Frame) tick(loop ast.Stmt) bool {
	fr.count++
	if fr.BackEdges != nil {
		fr.BackEdges.Add(1)
	}
	return fr.Host != nil && fr.Threshold > 0 && fr.count >= fr.Threshold && !fr.denied[loop]
}

// deny stops further transfer offers for a loop this activation.
func (fr *Frame) deny(loop ast.Stmt) {
	if fr.denied == nil {
		fr.denied = make(map[ast.Stmt]bool)
	}
	fr.denied[loop] = true
}

// offer runs one transfer attempt and translates the host's answer
// into the interpreter's control signal.
func (fr *Frame) offer(loop ast.Stmt, env *Env, fs *ForOSR) (ctl, error) {
	outs, res, err := fr.Host.TryOSR(fr, loop, env, fs)
	if err != nil {
		return ctlNone, err
	}
	switch res {
	case OSRDone:
		fr.osrOuts = outs
		return ctlOSR, nil
	case OSRNever:
		fr.deny(loop)
	}
	return ctlNone, nil
}

// LiveVars returns the frame-local variable names, sorted — the OSR
// frame-materialization order.
func (e *Env) LiveVars() []string {
	out := make([]string, 0, len(e.vars))
	for n := range e.vars {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasGlobals reports whether any name in this frame is bound to the
// global workspace (such frames never transfer: compiled code has no
// global-workspace access).
func (e *Env) HasGlobals() bool {
	for _, g := range e.isGlob {
		if g {
			return true
		}
	}
	return false
}

// CallFunctionTiered is CallFunction with a tiered-execution frame
// attached: loop safepoints feed fr's counters, and a hot loop may
// transfer the activation into compiled code mid-run, in which case the
// compiled continuation's outputs are returned.
func (in *Interp) CallFunctionTiered(fn *ast.Function, args []*mat.Value, nout int, globals map[string]*mat.Value, fr *Frame) ([]*mat.Value, error) {
	if len(args) > len(fn.Ins) {
		return nil, tooManyArgs(fn)
	}
	env := NewEnv(globals)
	env.frame = fr
	for i, a := range args {
		a.MarkShared()
		env.Bind(fn.Ins[i], a)
	}
	env.Bind("nargin", mat.IntScalar(float64(len(args))))
	env.Bind("nargout", mat.IntScalar(float64(nout)))
	c, err := in.execBlock(fn.Body, env)
	if err != nil {
		return nil, err
	}
	if c == ctlOSR {
		// The compiled continuation already ran to the function's
		// return and produced the outputs.
		return fr.osrOuts, nil
	}
	if c == ctlBreak || c == ctlContinue {
		return nil, errLooseBreak()
	}
	return collectOuts(fn, env, nout)
}
