package mat

import (
	"math"
	"strings"
	"testing"
)

func denseFrom(rows, cols int, colMajor []float64) *Value {
	v := New(rows, cols)
	copy(v.re, colMajor)
	return v
}

func bitsEqual(t *testing.T, what string, got, want *Value) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	g, err := got.Dense()
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	w, err := want.Dense()
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	for i := range w.re {
		if math.Float64bits(g.re[i]) != math.Float64bits(w.re[i]) {
			t.Fatalf("%s: element %d = %v (%#x), want %v (%#x)",
				what, i, g.re[i], math.Float64bits(g.re[i]), w.re[i], math.Float64bits(w.re[i]))
		}
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	d := denseFrom(2, 3, []float64{1, 0, 0, 2, 3, 0})
	s, err := d.Sparse()
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsSparse() || s.Kind() != Real {
		t.Fatalf("Sparse() not a sparse Real value")
	}
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (exact zeros dropped)", s.NNZ())
	}
	if got := s.Density(); got != 0.5 {
		t.Fatalf("Density = %v, want 0.5", got)
	}
	bitsEqual(t, "round trip", s, d)
	// Already-sparse returns the same value; dense on dense likewise.
	if s2, _ := s.Sparse(); s2 != s {
		t.Fatal("Sparse() on sparse must return the receiver")
	}
	if d2, _ := d.Dense(); d2 != d {
		t.Fatal("Dense() on dense must return the receiver")
	}
}

func TestSparseCloneSharesPayload(t *testing.T) {
	s, _ := denseFrom(2, 2, []float64{1, 0, 0, 2}).Sparse()
	c := s.Clone()
	if !c.IsSparse() || c.sp != s.sp {
		t.Fatal("Clone must share the immutable CSR payload")
	}
}

func TestSparseAt(t *testing.T) {
	s, _ := denseFrom(3, 3, []float64{1, 0, 0, 0, 5, 0, 2, 0, 9}).Sparse()
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := []float64{1, 0, 0, 0, 5, 0, 2, 0, 9}[c*3+r]
			if got := s.At(r, c); got != want {
				t.Fatalf("At(%d,%d) = %v, want %v", r, c, got, want)
			}
		}
	}
}

func TestSparseFromTripletsSumsDuplicates(t *testing.T) {
	// (0,0) appears twice and sums; (1,1) sums to exact zero and is
	// dropped (MATLAB sparse(i,j,s) semantics).
	s, err := SparseFromTriplets(2, 2, []int{0, 1, 0, 1}, []int{0, 1, 0, 1}, []float64{1, 2, 3, -2})
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", s.NNZ())
	}
	if got := s.At(0, 0); got != 4 {
		t.Fatalf("summed entry = %v, want 4", got)
	}
	if _, err := SparseFromTriplets(2, 2, []int{2}, []int{0}, []float64{1}); err == nil {
		t.Fatal("out-of-bounds triplet must error")
	}
}

func TestSparseFromDiagsKeepsStoredZeros(t *testing.T) {
	// A band value of zero stays stored (unlike sparse(), which drops
	// exact zeros) so 0*NaN reaches results exactly as in dense code.
	d, err := SparseFromDiags(3, 3, [][]float64{{0, 0, 0}, {5, 5, 5}}, []int{-1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.NNZ() != 5 { // 3 diagonal + 2 subdiagonal entries, zeros stored
		t.Fatalf("NNZ = %d, want 5", d.NNZ())
	}
	if _, err := SparseFromDiags(3, 3, [][]float64{{1, 1, 1}, {2, 2, 2}}, []int{0, 0}); err == nil {
		t.Fatal("duplicate offsets must error")
	}
}

func TestSparseAddSubBitwiseVsDense(t *testing.T) {
	// Includes a negative-zero producer: 0 + (-0) and 0 - 0 differ in
	// sign bit, and the merge applies the operator against explicit 0.0
	// for unmatched entries, so sparse must match dense bit-for-bit.
	ad := denseFrom(2, 2, []float64{1, 0, -2, 0.5})
	bd := denseFrom(2, 2, []float64{-1, 3, 2, 0.25})
	as, _ := ad.Sparse()
	bs, _ := bd.Sparse()
	for _, sub := range []bool{false, true} {
		op, name := Add, "sparse+sparse"
		if sub {
			op, name = Sub, "sparse-sparse"
		}
		want, err := op(ad, bd)
		if err != nil {
			t.Fatal(err)
		}
		got, err := op(as, bs)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, name, got, want)
	}
	// Matching entries that sum to zero stay stored: 1 + (-1) = 0 must
	// remain in the pattern (the pattern is wide enough that the result
	// density stays under the cutoff).
	x, _ := denseFrom(1, 10, []float64{1, 0, 0, 0, 0, 0, 0, 0, 0, 0}).Sparse()
	y, _ := denseFrom(1, 10, []float64{-1, 2, 0, 0, 0, 0, 0, 0, 0, 0}).Sparse()
	sum, err := Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.IsSparse() || sum.NNZ() != 2 {
		t.Fatalf("computed zero must stay stored: sparse=%v nnz=%d", sum.IsSparse(), sum.NNZ())
	}
}

func TestSparseElemMulAndNeg(t *testing.T) {
	// b is fully nonzero: the pattern intersection is exactly a's
	// pattern, so every dense element is reproduced (a negative stored
	// value against a *dropped* zero would give +0 sparse vs -0 dense —
	// the documented implicit-zero divergence — so none appears here).
	ad := denseFrom(2, 2, []float64{1, 0, -2, 4})
	bd := denseFrom(2, 2, []float64{3, 5, 7, 0.5})
	as, _ := ad.Sparse()
	bs, _ := bd.Sparse()
	want, _ := ElemMul(ad, bd)
	got, err := ElemMul(as, bs)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "sparse .* sparse", got, want)

	// Scalar scale keeps the representation sparse below the threshold.
	sc, err := ElemMul(Scalar(2), as)
	if err != nil {
		t.Fatal(err)
	}
	wantSc, _ := ElemMul(Scalar(2), ad)
	bitsEqual(t, "scalar .* sparse", sc, wantSc)

	// Unary minus on a low-density operand (1/4 < cutoff) stays sparse.
	lo, _ := denseFrom(2, 2, []float64{1, 0, 0, 0}).Sparse()
	ng, err := Neg(lo)
	if err != nil {
		t.Fatal(err)
	}
	if !ng.IsSparse() {
		t.Fatal("unary minus must stay sparse")
	}
	if got := ng.At(0, 0); got != -1 {
		t.Fatalf("-a stored entry = %v, want -1", got)
	}
	// Implicit zeros stay +0 (the documented MATLAB-faithful divergence
	// from dense negation's -0).
	if bits := math.Float64bits(ng.At(1, 0)); bits != 0 {
		t.Fatalf("-a implicit zero = %#x, want +0", bits)
	}
}

func TestSparseMulMatchesDenseBitwise(t *testing.T) {
	// Fully stored CSR (no dropped zeros) against the dense product:
	// SpMV mirrors Dgemv's accumulation order, so the result is
	// bit-identical, including the matrix RHS through SpMM.
	ad := denseFrom(3, 3, []float64{2, -1, 0.5, 1, 3, -2, 4, 0.25, 7})
	as, _ := ad.Sparse()
	xd := denseFrom(3, 1, []float64{0.3, -1.7, 2.9})
	want, _ := Mul(ad, xd)
	got, err := Mul(as, xd)
	if err != nil {
		t.Fatal(err)
	}
	if got.IsSparse() {
		t.Fatal("sparse * dense vector must produce a dense result")
	}
	bitsEqual(t, "SpMV", got, want)

	bd := denseFrom(3, 2, []float64{1, 2, 3, 4, 5, 6})
	wantM, _ := Mul(ad, bd)
	gotM, err := Mul(as, bd)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "SpMM", gotM, wantM)

	// dense * sparse routes through the transpose identity.
	rd := denseFrom(1, 3, []float64{1, -2, 3})
	wantR, _ := Mul(rd, ad)
	gotR, err := Mul(rd, as)
	if err != nil {
		t.Fatal(err)
	}
	if gotR.Rows() != 1 || gotR.Cols() != 3 {
		t.Fatalf("dense * sparse shape %dx%d", gotR.Rows(), gotR.Cols())
	}
	for i := range wantR.re {
		if math.Abs(gotR.re[i]-wantR.re[i]) > 1e-12 {
			t.Fatalf("dense*sparse[%d] = %v, want %v", i, gotR.re[i], wantR.re[i])
		}
	}
}

func TestSparseTransposeCached(t *testing.T) {
	s, _ := denseFrom(2, 3, []float64{1, 0, 2, 3, 0, 4}).Sparse()
	st, err := Transpose(s)
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsSparse() || st.Rows() != 3 || st.Cols() != 2 {
		t.Fatalf("transpose shape/representation wrong")
	}
	d, _ := s.Dense()
	wd, _ := Transpose(d)
	bitsEqual(t, "sparse transpose", st, wd)
	// A'' returns the original payload via the cache back-pointer.
	stt, err := Transpose(st)
	if err != nil {
		t.Fatal(err)
	}
	if stt.sp != s.sp {
		t.Fatal("double transpose must return the cached original payload")
	}
}

func TestSparseThresholdDensifiesResults(t *testing.T) {
	defer SetSparseThreshold(0.5)
	SetSparseThreshold(0.1)
	// Operator result at density 0.5 > 0.1: densifies.
	a, _ := denseFrom(2, 2, []float64{1, 0, 2, 0}).Sparse()
	sum, err := Add(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if sum.IsSparse() {
		t.Fatal("result above the density cutoff must densify")
	}
	// Constructors are exempt: speye(2) has density 0.5 and stays sparse.
	if !SparseEye(2, 2).IsSparse() {
		t.Fatal("constructors must not densify")
	}
	// Threshold 1 keeps everything sparse.
	SetSparseThreshold(1)
	sum2, err := Add(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !sum2.IsSparse() {
		t.Fatal("threshold 1 must keep results sparse")
	}
}

func TestSparseDenseGuard(t *testing.T) {
	// 2^14 x 2^14 = 2^28 elements exceeds the guard: Dense() must refuse
	// rather than allocate 2 GB, and finishSparse must fall back to the
	// sparse representation.
	big := SparseEye(1<<14, 1<<14)
	if _, err := big.Dense(); err == nil || !strings.Contains(err.Error(), "refusing to densify") {
		t.Fatalf("dense guard: err = %v", err)
	}
	defer SetSparseThreshold(0.5)
	SetSparseThreshold(0)
	sum, err := Add(big, big)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.IsSparse() {
		t.Fatal("guard-refused densification must keep the sparse form")
	}
}

func TestSparseDiagMatchesDense(t *testing.T) {
	ad := denseFrom(3, 3, []float64{1, 0, 0, 0, 0, 5, 2, 0, 9})
	as, _ := ad.Sparse()
	d := SparseDiag(as)
	if d.IsSparse() || d.Rows() != 3 || d.Cols() != 1 {
		t.Fatalf("SparseDiag shape/representation wrong")
	}
	for i, want := range []float64{1, 0, 9} {
		if d.re[i] != want {
			t.Fatalf("diag[%d] = %v, want %v", i, d.re[i], want)
		}
	}
}

func TestSparseTriSolveDispatch(t *testing.T) {
	// Lower bidiagonal system: solve and multiply back.
	l, err := SparseFromDiags(4, 4, [][]float64{{-1, -1, -1, -1}, {2, 2, 2, 2}}, []int{-1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if SparseTriangularity(l) != 1 { // sparse.Lower
		t.Fatalf("triangularity = %v, want Lower", SparseTriangularity(l))
	}
	b := denseFrom(4, 1, []float64{2, 1, 1, 1})
	x, err := SparseTriSolve(l, b)
	if err != nil {
		t.Fatal(err)
	}
	back, _ := Mul(l, x)
	for i := range b.re {
		if math.Abs(back.re[i]-b.re[i]) > 1e-12 {
			t.Fatalf("L*x[%d] = %v, want %v", i, back.re[i], b.re[i])
		}
	}
	// Singular diagonal surfaces as a runtime error.
	sing, _ := SparseFromDiags(2, 2, [][]float64{{0, 1}}, []int{0})
	if _, err := SparseTriSolve(sing, denseFrom(2, 1, []float64{1, 1})); err == nil {
		t.Fatal("singular triangular solve must error")
	}
}

func TestSparseStringFormat(t *testing.T) {
	s, _ := denseFrom(2, 2, []float64{1, 0, 0, 3}).Sparse()
	out := s.String()
	if !strings.Contains(out, "(1,1)") || !strings.Contains(out, "(2,2)") {
		t.Fatalf("sparse display missing entries: %q", out)
	}
	if z := SparseZeros(2, 2).String(); !strings.Contains(z, "All zero sparse") {
		t.Fatalf("all-zero display: %q", z)
	}
}

func TestSparseIndexedAssignDensifies(t *testing.T) {
	// Indexed assignment has no sparse fast path: the value densifies in
	// place (after copy-on-write), keeping the result correct.
	s, _ := denseFrom(2, 2, []float64{1, 0, 0, 4}).Sparse()
	if err := s.densifyInPlace(); err != nil {
		t.Fatal(err)
	}
	if s.IsSparse() || s.At(1, 1) != 4 {
		t.Fatal("densifyInPlace must swap representation and keep values")
	}
}
