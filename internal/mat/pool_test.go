package mat

import (
	"sync"
	"testing"
)

func TestPoolClass(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, -1},
		{1, 0},  // below the minimum class, rounded up to 64
		{64, 0}, // exactly 2^6
		{65, 1}, // needs the 128 class
		{100, 1},
		{1 << 20, maxPoolBits - minPoolBits},
		{1<<20 + 1, -1}, // beyond the largest pooled class
	}
	for _, c := range cases {
		if got := getClass(c.n); got != c.want {
			t.Errorf("getClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestPoolRoundtrip: a recycled buffer satisfies the next same-class
// draw, and every draw has full length with enough capacity.
func TestPoolRoundtrip(t *testing.T) {
	EnablePool()
	v := NewRealUninit(10, 100)
	re := v.Re()
	if len(re) != 1000 {
		t.Fatalf("buffer length %d, want 1000", len(re))
	}
	for i := range re {
		re[i] = float64(i)
	}
	before := ReadPoolStats()
	Recycle(v)
	after := ReadPoolStats()
	if after.Recycles != before.Recycles+1 {
		t.Fatalf("recycle not counted: %+v -> %+v", before, after)
	}
	// Under the race detector sync.Pool drops Put/Get pairs at random to
	// provoke races, so retry the roundtrip a bounded number of times.
	hit := false
	for i := 0; i < 100 && !hit; i++ {
		w := NewRealUninit(30, 30) // 900 elements: same 1024 class
		if len(w.Re()) != 900 {
			t.Fatalf("recycled draw length %d, want 900", len(w.Re()))
		}
		hit = ReadPoolStats().Hits > before.Hits
		Recycle(w)
	}
	if !hit {
		t.Errorf("recycled buffer never reused: %+v -> %+v", before, ReadPoolStats())
	}
}

// TestRecycleGuards: shared and complex values must never enter the
// pool — their buffers may still be reachable.
func TestRecycleGuards(t *testing.T) {
	EnablePool()
	before := ReadPoolStats()
	sh := NewRealUninit(16, 16)
	sh.MarkShared()
	Recycle(sh)
	z := NewKind(Complex, 16, 16)
	Recycle(z)
	Recycle(nil)
	small := New(2, 2) // below the smallest class
	Recycle(small)
	if got := ReadPoolStats(); got.Recycles != before.Recycles {
		t.Errorf("guarded value entered the pool: %+v -> %+v", before, got)
	}
}

// TestPoolConcurrent hammers the pool from many goroutines — the race
// detector's coverage for recycled buffers crossing goroutines.
func TestPoolConcurrent(t *testing.T) {
	EnablePool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := 60 + (g*31+i*7)%500
				v := NewRealUninit(1, n)
				re := v.Re()
				for k := range re {
					re[k] = float64(g)
				}
				for k := range re {
					if re[k] != float64(g) {
						t.Errorf("buffer shared across goroutines: got %g, want %d", re[k], g)
						return
					}
				}
				Recycle(v)
			}
		}(g)
	}
	wg.Wait()
}
