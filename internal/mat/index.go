package mat

import "math"

// This file implements MATLAB subscripting: bounds-checked reads, writes
// with resize-on-overflow, colon and vector subscripts, and the paper's
// array "oversizing" policy — on growth, about 10% extra capacity is
// allocated so that subsequent growth does not reallocate. Large arrays
// are never oversized.

// oversizeLimit is the element count above which arrays are never
// oversized (the paper: "Large arrays are never oversized").
const oversizeLimit = 1 << 20

// OversizeEnabled is the ablation switch for the paper's array
// oversizing policy. It exists for the benchmark harness (measuring the
// cost of repeated exact-size reallocation); it is process-global and
// not safe to toggle while engines are running concurrently.
var OversizeEnabled = true

// growCap returns the capacity to allocate for a requested element count.
func growCap(n int) int {
	if !OversizeEnabled || n >= oversizeLimit {
		return n
	}
	extra := n / 10
	if extra < 4 {
		extra = 4
	}
	return n + extra
}

// Subscript is one resolved subscript: either Colon (the ':' magic) or a
// list of 1-based indices. ShapeRows/ShapeCols record the shape of the
// subscript expression, which determines result orientation.
type Subscript struct {
	Colon     bool
	Idx       []int // 1-based
	ShapeRows int
	ShapeCols int
}

// ResolveSubscript converts a subscript value into index form, validating
// that every entry is a positive integer. extent is the dimension length
// used to resolve 'end' (already substituted by the caller); it is not
// used here but kept for interface symmetry.
func ResolveSubscript(v *Value) (Subscript, error) {
	if v.sp != nil {
		d, err := v.Dense()
		if err != nil {
			return Subscript{}, err
		}
		v = d
	}
	n := v.rows * v.cols
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		x := v.re[i] // MATLAB silently ignores imaginary parts of subscripts
		if x != math.Trunc(x) || x < 1 || math.IsInf(x, 0) || math.IsNaN(x) {
			return Subscript{}, Errorf("subscript indices must be positive integers (got %g)", x)
		}
		idx[i] = int(x)
	}
	return Subscript{Idx: idx}, nil
}

// Index1 implements A(s) with one subscript. A colon subscript returns
// A(:) (all elements as a column). Linear indices follow column-major
// order. The shape of the result follows MATLAB: if the subscript is a
// matrix, the result has its shape; if A is a row vector and the
// subscript a vector, the result is a row vector.
func Index1(a *Value, s Subscript) (*Value, error) {
	n := a.rows * a.cols
	if s.Colon {
		if a.sp != nil {
			d, err := a.Dense()
			if err != nil {
				return nil, err
			}
			a = d
		}
		out := NewKind(a.kind, n, 1)
		copy(out.re, a.re[:n])
		if a.im != nil {
			copy(out.im, a.im[:n])
		}
		return out, nil
	}
	// MATLAB orientation rule: the result takes the subscript's shape,
	// except that a vector subscript into a vector A takes A's orientation.
	rows, cols := s.ShapeRows, s.ShapeCols
	if rows*cols != len(s.Idx) {
		rows, cols = len(s.Idx), 1
	}
	vecSub := rows == 1 || cols == 1
	if vecSub && a.rows == 1 && a.cols != 1 {
		rows, cols = 1, len(s.Idx)
	} else if vecSub && a.cols == 1 && a.rows != 1 {
		rows, cols = len(s.Idx), 1
	}
	out := NewKind(a.kind, rows, cols)
	for i, ix := range s.Idx {
		if ix > n {
			return nil, Errorf("index exceeds matrix dimensions (index %d, numel %d)", ix, n)
		}
		if a.sp != nil {
			// Per-element lookup: reads never densify a sparse operand.
			out.re[i] = a.sp.linear(ix - 1)
			continue
		}
		out.re[i] = a.re[ix-1]
		if a.im != nil {
			out.im[i] = a.im[ix-1]
		}
	}
	return out, nil
}

// Index2 implements A(r,c) with two subscripts.
func Index2(a *Value, rs, cs Subscript) (*Value, error) {
	ridx, err := expand(rs, a.rows)
	if err != nil {
		return nil, err
	}
	cidx, err := expand(cs, a.cols)
	if err != nil {
		return nil, err
	}
	for _, r := range ridx {
		if r > a.rows {
			return nil, Errorf("index exceeds matrix dimensions (row %d of %d)", r, a.rows)
		}
	}
	for _, c := range cidx {
		if c > a.cols {
			return nil, Errorf("index exceeds matrix dimensions (column %d of %d)", c, a.cols)
		}
	}
	out := NewKind(a.kind, len(ridx), len(cidx))
	for j, c := range cidx {
		for i, r := range ridx {
			if a.sp != nil {
				out.re[j*len(ridx)+i] = a.sp.at(r-1, c-1)
				continue
			}
			out.re[j*len(ridx)+i] = a.re[(c-1)*a.rows+(r-1)]
			if a.im != nil {
				out.im[j*len(ridx)+i] = a.im[(c-1)*a.rows+(r-1)]
			}
		}
	}
	return out, nil
}

func expand(s Subscript, extent int) ([]int, error) {
	if !s.Colon {
		return s.Idx, nil
	}
	idx := make([]int, extent)
	for i := range idx {
		idx[i] = i + 1
	}
	return idx, nil
}

// Assign1 implements A(s) = rhs with one subscript, growing A on index
// overflow per MATLAB semantics: a vector (or empty) A grows along its
// orientation; growing a true matrix by linear index is an error.
func Assign1(a *Value, s Subscript, rhs *Value) error {
	// Indexed stores mutate in place: a sparse destination densifies
	// first (copy-on-write has already unshared it), and a sparse rhs
	// densifies so the element copies below can read it.
	if err := a.densifyInPlace(); err != nil {
		return err
	}
	if rhs.sp != nil {
		d, err := rhs.Dense()
		if err != nil {
			return err
		}
		rhs = d
	}
	if s.Colon {
		n := a.rows * a.cols
		if rhs.IsScalar() {
			a.promoteFor(rhs)
			for i := 0; i < n; i++ {
				a.re[i] = rhs.re[0]
				if a.im != nil {
					a.im[i] = rhs.imAtOrZero(0)
				}
			}
			return nil
		}
		if rhs.rows*rhs.cols != n {
			return Errorf("A(:) = B requires numel(B) == numel(A)")
		}
		a.promoteFor(rhs)
		copy(a.re[:n], rhs.re[:n])
		if a.im != nil {
			for i := 0; i < n; i++ {
				a.im[i] = rhs.imAtOrZero(i)
			}
		}
		return nil
	}
	if !rhs.IsScalar() && rhs.rows*rhs.cols != len(s.Idx) {
		return Errorf("in an assignment A(I) = B, the number of elements in B and I must be the same")
	}
	maxIdx := 0
	for _, ix := range s.Idx {
		if ix > maxIdx {
			maxIdx = ix
		}
	}
	if maxIdx > a.rows*a.cols {
		if err := a.growLinear(maxIdx); err != nil {
			return err
		}
	}
	a.promoteFor(rhs)
	for i, ix := range s.Idx {
		if rhs.IsScalar() {
			a.re[ix-1] = rhs.re[0]
			if a.im != nil {
				a.im[ix-1] = rhs.imAtOrZero(0)
			}
		} else {
			a.re[ix-1] = rhs.re[i]
			if a.im != nil {
				a.im[ix-1] = rhs.imAtOrZero(i)
			}
		}
	}
	return nil
}

// Assign2 implements A(r,c) = rhs, growing A when subscripts exceed the
// current dimensions.
func Assign2(a *Value, rs, cs Subscript, rhs *Value) error {
	if err := a.densifyInPlace(); err != nil {
		return err
	}
	if rhs.sp != nil {
		d, err := rhs.Dense()
		if err != nil {
			return err
		}
		rhs = d
	}
	maxR, maxC := 0, 0
	ridx, err := expand(rs, a.rows)
	if err != nil {
		return err
	}
	cidx, err := expand(cs, a.cols)
	if err != nil {
		return err
	}
	for _, r := range ridx {
		if r > maxR {
			maxR = r
		}
	}
	for _, c := range cidx {
		if c > maxC {
			maxC = c
		}
	}
	if maxR > a.rows || maxC > a.cols {
		nr, nc := a.rows, a.cols
		if maxR > nr {
			nr = maxR
		}
		if maxC > nc {
			nc = maxC
		}
		a.Grow(nr, nc)
	}
	if !rhs.IsScalar() && (rhs.rows != len(ridx) || rhs.cols != len(cidx)) {
		if rhs.rows*rhs.cols == len(ridx)*len(cidx) && (len(ridx) == 1 || len(cidx) == 1) && rhs.IsVector() {
			// vector-shaped rhs assigned into a vector slice: allowed
		} else {
			return Errorf("subscripted assignment dimension mismatch")
		}
	}
	a.promoteFor(rhs)
	k := 0
	for j, c := range cidx {
		for i, r := range ridx {
			at := (c-1)*a.rows + (r - 1)
			if rhs.IsScalar() {
				a.re[at] = rhs.re[0]
				if a.im != nil {
					a.im[at] = rhs.imAtOrZero(0)
				}
			} else {
				var src int
				if rhs.rows == len(ridx) && rhs.cols == len(cidx) {
					src = j*rhs.rows + i
				} else {
					src = k
				}
				a.re[at] = rhs.re[src]
				if a.im != nil {
					a.im[at] = rhs.imAtOrZero(src)
				}
			}
			k++
		}
	}
	return nil
}

// promoteFor widens a's kind so it can store rhs without loss: storing a
// complex value into a real array converts the array; storing a real into
// an int/bool array widens it to real when needed.
func (a *Value) promoteFor(rhs *Value) {
	if rhs.kind == Complex && a.im == nil {
		a.im = make([]float64, len(a.re))
		a.kind = Complex
	}
	if a.kind == Bool || a.kind == Int {
		if rhs.kind > a.kind && rhs.kind != Char {
			a.kind = rhs.kind
		}
	}
	if a.kind == Char && rhs.kind != Char {
		a.kind = Real
	}
}

// growLinear grows a vector (or empty value) to hold n elements.
func (a *Value) growLinear(n int) error {
	switch {
	case a.IsEmpty():
		a.rows, a.cols = 1, 0
		a.Grow(1, n)
	case a.rows == 1:
		a.Grow(1, n)
	case a.cols == 1:
		a.Grow(n, 1)
	default:
		return Errorf("in an assignment A(I) = B, a matrix A cannot be resized by a linear index")
	}
	return nil
}

// Grow resizes a to nr x nc (never shrinking a dimension), preserving
// content and zero-filling new cells. This is where oversizing applies:
// when fresh storage is needed, growCap adds ~10% headroom, so a
// subsequent growth along the same column layout reuses the allocation.
// The oversized array always reports its exact dimensions.
func (a *Value) Grow(nr, nc int) {
	if nr < a.rows {
		nr = a.rows
	}
	if nc < a.cols {
		nc = a.cols
	}
	if nr == a.rows && nc == a.cols {
		return
	}
	need := nr * nc
	if nr == a.rows && len(a.re) >= need {
		// Column count grows with unchanged row count: column-major layout
		// is already compatible; just zero the new tail and extend.
		tail := a.re[a.rows*a.cols : need]
		for i := range tail {
			tail[i] = 0
		}
		if a.im != nil {
			tailIm := a.im[a.rows*a.cols : need]
			for i := range tailIm {
				tailIm[i] = 0
			}
		}
		a.cols = nc
		return
	}
	re := a.re
	im := a.im
	newRe := make([]float64, growCap(need))
	var newIm []float64
	if im != nil {
		newIm = make([]float64, growCap(need))
	}
	for c := 0; c < a.cols; c++ {
		copy(newRe[c*nr:c*nr+a.rows], re[c*a.rows:(c+1)*a.rows])
		if im != nil {
			copy(newIm[c*nr:c*nr+a.rows], im[c*a.rows:(c+1)*a.rows])
		}
	}
	// Keep the oversized headroom in the slice length so the cheap
	// grow-by-columns fast path above can reuse it without reallocating.
	a.re = newRe
	if im != nil {
		a.im = newIm
	}
	a.rows, a.cols = nr, nc
}

// FastGet1 is the unchecked linear load used by compiled code after
// subscript-check removal (0-based index, caller guarantees bounds).
func (a *Value) FastGet1(i int) float64 { return a.re[i] }

// FastSet1 is the unchecked linear store (0-based).
func (a *Value) FastSet1(i int, x float64) { a.re[i] = x }

// CheckedGet1 is the checked linear load used by compiled code when
// subscript checks could not be removed (1-based index, validates
// integrality and bounds as MATLAB mandates).
func (a *Value) CheckedGet1(x float64) (float64, error) {
	if x != math.Trunc(x) || x < 1 {
		return 0, Errorf("subscript indices must be positive integers (got %g)", x)
	}
	i := int(x)
	if i > a.rows*a.cols {
		return 0, Errorf("index exceeds matrix dimensions (index %d, numel %d)", i, a.rows*a.cols)
	}
	if a.sp != nil {
		return a.sp.linear(i - 1), nil
	}
	return a.re[i-1], nil
}

// CheckedSet1 is the checked linear store with growth semantics.
func (a *Value) CheckedSet1(x float64, val float64) error {
	if x != math.Trunc(x) || x < 1 {
		return Errorf("subscript indices must be positive integers (got %g)", x)
	}
	if err := a.densifyInPlace(); err != nil {
		return err
	}
	i := int(x)
	if i > a.rows*a.cols {
		if err := a.growLinear(i); err != nil {
			return err
		}
	}
	a.re[i-1] = val
	return nil
}

// CheckedGet2 is the checked 2-D load (1-based subscripts).
func (a *Value) CheckedGet2(xr, xc float64) (float64, error) {
	if xr != math.Trunc(xr) || xr < 1 || xc != math.Trunc(xc) || xc < 1 {
		return 0, Errorf("subscript indices must be positive integers")
	}
	r, c := int(xr), int(xc)
	if r > a.rows || c > a.cols {
		return 0, Errorf("index exceeds matrix dimensions (%d,%d of %dx%d)", r, c, a.rows, a.cols)
	}
	if a.sp != nil {
		return a.sp.at(r-1, c-1), nil
	}
	return a.re[(c-1)*a.rows+(r-1)], nil
}

// CheckedSet2 is the checked 2-D store with growth semantics.
func (a *Value) CheckedSet2(xr, xc float64, val float64) error {
	if xr != math.Trunc(xr) || xr < 1 || xc != math.Trunc(xc) || xc < 1 {
		return Errorf("subscript indices must be positive integers")
	}
	if err := a.densifyInPlace(); err != nil {
		return err
	}
	r, c := int(xr), int(xc)
	if r > a.rows || c > a.cols {
		a.Grow(max(r, a.rows), max(c, a.cols))
	}
	a.re[(c-1)*a.rows+(r-1)] = val
	return nil
}

// FastGet2 is the unchecked 2-D load (0-based).
func (a *Value) FastGet2(r, c int) float64 { return a.re[c*a.rows+r] }

// FastSet2 is the unchecked 2-D store (0-based).
func (a *Value) FastSet2(r, c int, x float64) { a.re[c*a.rows+r] = x }
