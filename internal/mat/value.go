// Package mat implements the runtime value system of the MaJIC
// reproduction: two-dimensional, column-major MATLAB matrices with the
// intrinsic kinds bool, int, real, complex and char, together with the
// polymorphic generic operator library that interpreted and unspecialized
// ("mcc"-tier) code dispatches through.
//
// The package plays the role of the MATLAB C library (mxArray plus the
// mlf* operator functions) in the original system: every operation checks
// kinds and shapes dynamically, boxes its result, and implements MATLAB's
// resize-on-store semantics, including the ~10% oversizing policy the
// paper describes for repeatedly growing arrays.
package mat

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// Kind is the intrinsic kind of a Value. The ordering mirrors the paper's
// intrinsic lattice: bool ⊑ int ⊑ real ⊑ complex, with char (string) on a
// separate arm.
type Kind uint8

const (
	Bool Kind = iota
	Int
	Real
	Complex
	Char
)

// String returns the MATLAB-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case Bool:
		return "logical"
	case Int:
		return "int"
	case Real:
		return "double"
	case Complex:
		return "complex"
	case Char:
		return "char"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsNumeric reports whether values of the kind participate in arithmetic
// without conversion through char codes.
func (k Kind) IsNumeric() bool { return k != Char }

// Value is a two-dimensional MATLAB array. Data is stored column-major in
// re (and im for complex values). The backing slices may be longer than
// rows*cols: the extra capacity is the oversizing headroom used to make
// repeated growth cheap. All observable behaviour (Size, indexing,
// display) uses the exact rows/cols, never the oversized capacity.
//
// Char values store character codes in re, exactly as MATLAB stores char
// arrays; String() reassembles the text.
type Value struct {
	kind Kind
	rows int
	cols int
	re   []float64
	im   []float64 // non-nil iff kind == Complex
	// sp is the CSR payload of a sparse value (kind Real, re/im nil).
	// Dense code paths never see it: operators either dispatch to the
	// sparse implementations in sparse.go or densify first. sparseData
	// is immutable, so sp may be shared between values (Clone is O(1)).
	sp *sparseData
	// shared marks a value that may be reachable through more than one
	// binding (B = A, function arguments, returned values). In-place
	// mutation paths (indexed assignment) clone shared values first —
	// MATLAB's copy-on-write semantics. Accessed atomically: with the
	// async compilation service, one argument value can flow into
	// concurrent invocations, each of which marks it shared on entry.
	shared uint32
}

// MarkShared flags the value as reachable through multiple bindings.
func (v *Value) MarkShared() { atomic.StoreUint32(&v.shared, 1) }

// IsShared reports whether in-place mutation must copy first.
func (v *Value) IsShared() bool { return atomic.LoadUint32(&v.shared) != 0 }

// Error is the error type reported by runtime operations. It mirrors
// MATLAB's interpreter errors ("Index exceeds matrix dimensions." and
// friends) and is distinguishable from Go-level bugs.
type Error struct{ Msg string }

func (e *Error) Error() string { return e.Msg }

// Errorf builds a runtime *Error.
func Errorf(format string, args ...any) *Error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// --- Constructors ---------------------------------------------------------

// New returns an all-zero real matrix of the given dimensions.
func New(rows, cols int) *Value {
	if rows < 0 || cols < 0 {
		rows, cols = 0, 0
	}
	return &Value{kind: Real, rows: rows, cols: cols, re: make([]float64, rows*cols)}
}

// NewKind returns an all-zero matrix of the given kind and dimensions.
func NewKind(k Kind, rows, cols int) *Value {
	v := New(rows, cols)
	v.kind = k
	if k == Complex {
		v.im = make([]float64, rows*cols)
	}
	return v
}

// Scalar returns a 1x1 real value.
func Scalar(x float64) *Value {
	return &Value{kind: Real, rows: 1, cols: 1, re: []float64{x}}
}

// IntScalar returns a 1x1 value of kind Int. The payload is stored as a
// float64, as MATLAB does for all numeric data; Int records the static
// knowledge that the value is integral.
func IntScalar(x float64) *Value {
	return &Value{kind: Int, rows: 1, cols: 1, re: []float64{x}}
}

// BoolScalar returns a 1x1 logical value.
func BoolScalar(b bool) *Value {
	x := 0.0
	if b {
		x = 1.0
	}
	return &Value{kind: Bool, rows: 1, cols: 1, re: []float64{x}}
}

// ComplexScalar returns a 1x1 complex value.
func ComplexScalar(z complex128) *Value {
	return &Value{kind: Complex, rows: 1, cols: 1, re: []float64{real(z)}, im: []float64{imag(z)}}
}

// FromString returns a 1xN char row vector holding s.
func FromString(s string) *Value {
	runes := []rune(s)
	v := &Value{kind: Char, rows: 1, cols: len(runes), re: make([]float64, len(runes))}
	if len(runes) == 0 {
		v.rows = 0
	}
	for i, r := range runes {
		v.re[i] = float64(r)
	}
	return v
}

// FromSlice builds a rows x cols real matrix from row-major data (the
// natural literal order), converting to the internal column-major layout.
func FromSlice(rows, cols int, rowMajor []float64) *Value {
	if len(rowMajor) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice: %d elements for %dx%d", len(rowMajor), rows, cols))
	}
	v := New(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v.re[c*rows+r] = rowMajor[r*cols+c]
		}
	}
	return v
}

// FromColMajor wraps column-major data directly (no copy).
func FromColMajor(kind Kind, rows, cols int, re, im []float64) *Value {
	if len(re) < rows*cols {
		panic("mat: FromColMajor: short data")
	}
	return &Value{kind: kind, rows: rows, cols: cols, re: re, im: im}
}

// Empty returns the 0x0 empty matrix.
func Empty() *Value { return &Value{kind: Real} }

// --- Basic accessors ------------------------------------------------------

// Kind returns the intrinsic kind.
func (v *Value) Kind() Kind { return v.kind }

// SetNumericKind stamps a non-complex kind on a non-complex value. The
// fused elementwise kernel computes its result kind by replaying the
// operator chain's promotion rules after its single loop; this lets it
// apply that kind without another pass over the data.
func (v *Value) SetNumericKind(k Kind) {
	if v.im == nil && k != Complex {
		v.kind = k
	}
}

// Rows returns the exact number of rows (never the oversized capacity).
func (v *Value) Rows() int { return v.rows }

// Cols returns the exact number of columns.
func (v *Value) Cols() int { return v.cols }

// Numel returns rows*cols.
func (v *Value) Numel() int { return v.rows * v.cols }

// IsEmpty reports whether the value has no elements.
func (v *Value) IsEmpty() bool { return v.rows == 0 || v.cols == 0 }

// IsScalar reports whether the value is 1x1.
func (v *Value) IsScalar() bool { return v.rows == 1 && v.cols == 1 }

// IsVector reports whether the value is 1xN or Nx1 with N >= 1.
func (v *Value) IsVector() bool {
	return (v.rows == 1 && v.cols >= 1) || (v.cols == 1 && v.rows >= 1)
}

// IsRowVector reports whether the value is 1xN.
func (v *Value) IsRowVector() bool { return v.rows == 1 }

// Re returns the real payload, exactly rows*cols elements, column-major.
// The returned slice aliases the value. Sparse values have no dense
// payload; reaching here with one means a densify guard is missing.
func (v *Value) Re() []float64 {
	if v.sp != nil {
		panic("mat: Re() on a sparse value (missing densify guard)")
	}
	return v.re[:v.rows*v.cols]
}

// Im returns the imaginary payload (nil for non-complex values).
func (v *Value) Im() []float64 {
	if v.im == nil {
		return nil
	}
	return v.im[:v.rows*v.cols]
}

// Cap returns the allocated capacity in elements; used by tests to verify
// the oversizing policy. Observable semantics never depend on it.
func (v *Value) Cap() int { return len(v.re) }

// Scalar returns the value of a 1x1 numeric matrix as a float64 (real
// part) and reports an error otherwise.
func (v *Value) Scalar() (float64, error) {
	if !v.IsScalar() {
		return 0, Errorf("expected a scalar, got %dx%d", v.rows, v.cols)
	}
	if v.sp != nil {
		return v.sp.linear(0), nil
	}
	return v.re[0], nil
}

// MustScalar is Scalar for contexts where the shape was already checked.
func (v *Value) MustScalar() float64 {
	if v.sp != nil {
		return v.sp.linear(0)
	}
	return v.re[0]
}

// ComplexAt returns element i (0-based linear) as a complex128.
func (v *Value) ComplexAt(i int) complex128 {
	if v.im != nil {
		return complex(v.re[i], v.im[i])
	}
	return complex(v.re[i], 0)
}

// At returns the real part of the 0-based (r,c) element. Sparse values
// answer by binary search in the row.
func (v *Value) At(r, c int) float64 {
	if v.sp != nil {
		return v.sp.at(r, c)
	}
	return v.re[c*v.rows+r]
}

// SetAt stores x at the 0-based (r,c) element (real part).
func (v *Value) SetAt(r, c int, x float64) { v.re[c*v.rows+r] = x }

// ImAt returns the imaginary part of the 0-based (r,c) element.
func (v *Value) ImAt(r, c int) float64 {
	if v.im == nil {
		return 0
	}
	return v.im[c*v.rows+r]
}

// String renders the value for display; char values render as text.
func (v *Value) String() string {
	if v.kind == Char {
		return v.Text()
	}
	if v.sp != nil {
		return v.sparseString()
	}
	if v.IsEmpty() {
		return "[]"
	}
	if v.IsScalar() {
		return formatElem(v.re[0], v.imAtOrZero(0), v.kind)
	}
	var b strings.Builder
	for r := 0; r < v.rows; r++ {
		if r > 0 {
			b.WriteByte('\n')
		}
		for c := 0; c < v.cols; c++ {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(formatElem(v.At(r, c), v.ImAt(r, c), v.kind))
		}
	}
	return b.String()
}

func (v *Value) imAtOrZero(i int) float64 {
	if v.im == nil {
		return 0
	}
	return v.im[i]
}

func formatElem(re, im float64, k Kind) string {
	if k == Complex {
		if im >= 0 {
			return fmt.Sprintf("%g+%gi", re, im)
		}
		return fmt.Sprintf("%g-%gi", re, -im)
	}
	return fmt.Sprintf("%g", re)
}

// Text returns the character content of a char value.
func (v *Value) Text() string {
	var b strings.Builder
	for r := 0; r < v.rows; r++ {
		if r > 0 {
			b.WriteByte('\n')
		}
		for c := 0; c < v.cols; c++ {
			b.WriteRune(rune(v.At(r, c)))
		}
	}
	return b.String()
}

// Clone returns a deep copy (call-by-value semantics for function calls).
// Sparse payloads are immutable, so a sparse clone shares sp — O(1).
func (v *Value) Clone() *Value {
	if v.sp != nil {
		return &Value{kind: v.kind, rows: v.rows, cols: v.cols, sp: v.sp}
	}
	n := v.rows * v.cols
	out := &Value{kind: v.kind, rows: v.rows, cols: v.cols, re: make([]float64, n)}
	copy(out.re, v.re[:n])
	if v.im != nil {
		out.im = make([]float64, n)
		copy(out.im, v.im[:n])
	}
	return out
}

// IsTrue implements MATLAB truthiness: non-empty and all elements nonzero
// (for complex values, nonzero modulus).
func (v *Value) IsTrue() bool {
	n := v.rows * v.cols
	if n == 0 {
		return false
	}
	if v.sp != nil {
		if len(v.sp.val) < n {
			return false // at least one implicit zero
		}
		for _, x := range v.sp.val {
			if x == 0 {
				return false
			}
		}
		return true
	}
	for i := 0; i < n; i++ {
		if v.re[i] == 0 && (v.im == nil || v.im[i] == 0) {
			return false
		}
	}
	return true
}

// AllIntegral reports whether every element is a real integral value (used
// to refine Real results back to Int and for subscript validation).
func (v *Value) AllIntegral() bool {
	if v.sp != nil {
		// Implicit zeros are integral; only stored entries need scanning.
		for _, x := range v.sp.val {
			if x != math.Trunc(x) || math.IsInf(x, 0) || math.IsNaN(x) {
				return false
			}
		}
		return true
	}
	if v.im != nil {
		for _, x := range v.Im() {
			if x != 0 {
				return false
			}
		}
	}
	for _, x := range v.Re() {
		if x != math.Trunc(x) || math.IsInf(x, 0) || math.IsNaN(x) {
			return false
		}
	}
	return true
}

// HasImag reports whether any element has a nonzero imaginary part.
func (v *Value) HasImag() bool {
	if v.im == nil {
		return false
	}
	for _, x := range v.Im() {
		if x != 0 {
			return true
		}
	}
	return false
}

// ToComplex returns a value of kind Complex with the same content. If v is
// already complex it is returned unchanged.
func (v *Value) ToComplex() *Value {
	if v.kind == Complex {
		return v
	}
	n := v.rows * v.cols
	out := &Value{kind: Complex, rows: v.rows, cols: v.cols, re: make([]float64, n), im: make([]float64, n)}
	copy(out.re, v.re[:n])
	return out
}

// Demote returns v with the cheapest kind that represents its content: a
// complex value with an all-zero imaginary part demotes to Real, and a
// Real value does not silently demote further (matching MATLAB, which
// keeps doubles as doubles). MATLAB demotes complex results with zero
// imaginary part in most elementwise operations.
func (v *Value) Demote() *Value {
	if v.kind != Complex {
		return v
	}
	for _, x := range v.Im() {
		if x != 0 {
			return v
		}
	}
	out := &Value{kind: Real, rows: v.rows, cols: v.cols, re: v.re}
	return out
}

// SameShape reports whether a and b have identical dimensions.
func SameShape(a, b *Value) bool { return a.rows == b.rows && a.cols == b.cols }

// PromoteKind returns the common arithmetic kind of two operands: char
// promotes to real (MATLAB arithmetic on chars uses their codes), and the
// numeric kinds follow the lattice order.
func PromoteKind(a, b Kind) Kind {
	ak, bk := a, b
	if ak == Char {
		ak = Real
	}
	if bk == Char {
		bk = Real
	}
	if ak < bk {
		return bk
	}
	return ak
}
