package mat

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size-classed recycling pool for real element buffers. The fused
// elementwise kernel (and the generic operators' real fast path)
// allocate one full-size result per statement; inside a loop the same
// handful of sizes recurs every iteration, so recycling the displaced
// destination buffers makes steady-state allocation cost near zero.
//
// The pool is process-wide and opt-in (core.Options.FuseElemwise turns
// it on) so the synchronous paper-mode measurements are unchanged, and
// it is built on sync.Pool so concurrent engines sharing the process
// need no extra locking. Buffers are binned by power-of-two capacity:
// a Get for n elements draws from the class whose buffers are
// guaranteed to hold n, so a recycled buffer is never too small.

const (
	minPoolBits = 6  // smallest pooled class: 64 elements
	maxPoolBits = 20 // largest pooled class: 1M elements (matches oversizeLimit)
)

var (
	poolOn   atomic.Bool
	pools    [maxPoolBits - minPoolBits + 1]sync.Pool
	poolGets atomic.Uint64
	poolHits atomic.Uint64
	poolPuts atomic.Uint64
)

// EnablePool turns the recycling buffer pool on for the whole process.
// There is deliberately no way to turn it off again: engines created
// with fusion enabled may hold pooled buffers for their lifetime.
func EnablePool() { poolOn.Store(true) }

// PoolEnabled reports whether the recycling pool is active.
func PoolEnabled() bool { return poolOn.Load() }

// PoolStats is cumulative pool traffic, for tests and profiling.
type PoolStats struct {
	Gets     uint64 `json:"gets"`     // allocation requests routed through the pool
	Hits     uint64 `json:"hits"`     // requests satisfied by a recycled buffer
	Recycles uint64 `json:"recycles"` // buffers returned to the pool
}

// ReadPoolStats returns a snapshot of the counters.
func ReadPoolStats() PoolStats {
	return PoolStats{Gets: poolGets.Load(), Hits: poolHits.Load(), Recycles: poolPuts.Load()}
}

// getClass maps a requested element count to the pool class whose
// buffers all have capacity >= n, or -1 when the size is not pooled.
func getClass(n int) int {
	if n <= 0 {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minPoolBits {
		b = minPoolBits
	}
	if b > maxPoolBits {
		return -1
	}
	return b - minPoolBits
}

// getBuf returns a []float64 of length n with arbitrary contents,
// recycled when possible. Callers must overwrite every element.
func getBuf(n int) []float64 {
	if poolOn.Load() {
		if c := getClass(n); c >= 0 {
			poolGets.Add(1)
			if p, _ := pools[c].Get().(*[]float64); p != nil && cap(*p) >= n {
				poolHits.Add(1)
				return (*p)[:n]
			}
			// Round fresh allocations up to the class capacity so Recycle
			// bins them into the same class they were drawn for.
			return make([]float64, n, 1<<(c+minPoolBits))
		}
	}
	return make([]float64, n)
}

// NewRealUninit returns a Real rows x cols value whose elements are NOT
// zeroed — only for callers that overwrite every element (elementwise
// loops, the fused kernel). With the pool enabled the backing store may
// be a recycled buffer.
func NewRealUninit(rows, cols int) *Value {
	return &Value{kind: Real, rows: rows, cols: cols, re: getBuf(rows * cols)}
}

// Recycle offers v's backing buffer to the pool. The caller asserts v
// is dead: its sole owner has dropped it (a displaced destination, a
// consumed temporary). Shared values, complex values and values the
// pool is not managing are ignored, so calling it conservatively is
// always safe — the same ownership condition OpVEnsure uses for its
// in-place buffer reuse.
func Recycle(v *Value) {
	if v == nil || v.im != nil || v.sp != nil || !poolOn.Load() || v.IsShared() {
		return
	}
	buf := v.re
	c := bits.Len(uint(cap(buf))) - 1 // floor(log2 cap): every draw from this class fits
	if c < minPoolBits {
		return
	}
	if c > maxPoolBits {
		c = maxPoolBits
	}
	buf = buf[:0]
	poolPuts.Add(1)
	pools[c-minPoolBits].Put(&buf)
}
