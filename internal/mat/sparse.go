package mat

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/sparse"
)

// This file implements the CSR sparse storage form of Value — the
// second representation the sparsity-aware code selection dispatches
// over. A sparse value has kind Real, re/im nil, and sp non-nil; its
// rows/cols fields stay authoritative for shape. sparseData is
// immutable after construction (only the caches mutate, atomically), so
// sparse values can share it freely: Clone is O(1), and the cached
// transpose is reused by every alias (qmr's per-iteration A'*q).
//
// Representation rules (documented in DESIGN.md §15):
//   - Construction (sparse/speye/spdiags) always yields sparse,
//     regardless of density. sparse() drops exact zeros (MATLAB
//     semantics); spdiags keeps band zeros stored so 0*NaN reaches
//     results exactly as in the dense path.
//   - Sparse-preserving operators (+, -, .* , ./ by scalar, unary
//     minus, transpose) keep sparse results but auto-densify when the
//     result density exceeds SparseThreshold.
//   - Every other operator densifies its sparse operands through
//     Dense(), which enforces a memory guard instead of attempting an
//     impossible allocation.

// sparseData is the immutable CSR payload: row i's entries are
// k in [rowPtr[i], rowPtr[i+1]), colIdx strictly ascending per row.
type sparseData struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []float64

	// trans caches the materialized transpose; the back-pointer set at
	// creation makes A'' free and keeps one pair alive.
	trans atomic.Pointer[sparseData]
	// tri caches the structural triangularity: 0 unknown, else
	// 1 + sparse.Triangularity.
	tri atomic.Int32
}

// denseGuardLimit is the element-count ceiling for densification: above
// it, Dense() reports an error instead of attempting the allocation
// (an n=10^6 operand would need 8 TB dense).
const denseGuardLimit = 1 << 27

// sparseThresholdBits holds the -sparse-threshold density cutoff
// (float64 bits). Results of sparse-preserving operators denser than
// this auto-densify. Process-global, like OversizeEnabled.
var sparseThresholdBits atomic.Uint64

func init() { sparseThresholdBits.Store(math.Float64bits(0.5)) }

// SetSparseThreshold sets the density above which sparse operator
// results auto-densify (constructors are exempt). Values are clamped to
// [0, 1]; 1 keeps every result sparse.
func SetSparseThreshold(d float64) {
	if d < 0 {
		d = 0
	}
	if d > 1 {
		d = 1
	}
	sparseThresholdBits.Store(math.Float64bits(d))
}

// SparseThresholdValue returns the current density cutoff.
func SparseThresholdValue() float64 {
	return math.Float64frombits(sparseThresholdBits.Load())
}

// IsSparse reports whether the value uses the CSR storage form.
func (v *Value) IsSparse() bool { return v.sp != nil }

// NNZ returns the stored-entry count of a sparse value, or the nonzero
// count of a dense one.
func (v *Value) NNZ() int {
	if v.sp != nil {
		return len(v.sp.val)
	}
	n := 0
	for _, x := range v.Re() {
		if x != 0 {
			n++
		}
	}
	if v.im != nil {
		for i, x := range v.Im() {
			if x != 0 && v.re[i] == 0 {
				n++
			}
		}
	}
	return n
}

// Density returns stored entries / numel for sparse values and 1 for
// dense values (the representation is fully stored).
func (v *Value) Density() float64 {
	n := v.rows * v.cols
	if n == 0 {
		return 0
	}
	if v.sp == nil {
		return 1
	}
	return float64(len(v.sp.val)) / float64(n)
}

// newSparse wraps a sparseData in a Value.
func newSparse(d *sparseData) *Value {
	return &Value{kind: Real, rows: d.rows, cols: d.cols, sp: d}
}

// NewSparseCSR builds a sparse value from canonical CSR arrays (colIdx
// strictly ascending per row). The slices are adopted, not copied.
func NewSparseCSR(rows, cols int, rowPtr, colIdx []int, val []float64) (*Value, error) {
	if rows < 0 || cols < 0 || len(rowPtr) != rows+1 || len(colIdx) != len(val) {
		return nil, Errorf("sparse: malformed CSR arrays")
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, Errorf("sparse: malformed CSR row pointers")
		}
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if colIdx[k] < 0 || colIdx[k] >= cols {
				return nil, Errorf("sparse: column index out of range")
			}
			if k > rowPtr[i] && colIdx[k] <= colIdx[k-1] {
				return nil, Errorf("sparse: column indices must be strictly ascending per row")
			}
		}
	}
	if rowPtr[rows] != len(val) {
		return nil, Errorf("sparse: malformed CSR arrays")
	}
	return newSparse(&sparseData{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}), nil
}

// SparseZeros returns an all-zero sparse rows x cols value.
func SparseZeros(rows, cols int) *Value {
	if rows < 0 || cols < 0 {
		rows, cols = 0, 0
	}
	return newSparse(&sparseData{rows: rows, cols: cols, rowPtr: make([]int, rows+1)})
}

// SparseEye returns the sparse rows x cols identity.
func SparseEye(rows, cols int) *Value {
	n := rows
	if cols < n {
		n = cols
	}
	if n < 0 {
		n = 0
	}
	d := &sparseData{rows: rows, cols: cols, rowPtr: make([]int, rows+1), colIdx: make([]int, n), val: make([]float64, n)}
	for i := 0; i < n; i++ {
		d.colIdx[i] = i
		d.val[i] = 1
	}
	for i := 0; i < rows; i++ {
		k := 0
		if i < n {
			k = i + 1
		} else {
			k = n
		}
		d.rowPtr[i+1] = k
	}
	return newSparse(d)
}

// SparseFromTriplets builds a sparse value from 0-based (row, col, v)
// triplets, summing duplicates and dropping exact-zero results (MATLAB
// sparse(i,j,s) semantics).
func SparseFromTriplets(rows, cols int, ri, ci []int, vs []float64) (*Value, error) {
	if len(ri) != len(ci) || len(ci) != len(vs) {
		return nil, Errorf("sparse: triplet vectors must have the same length")
	}
	for k := range ri {
		if ri[k] < 0 || ri[k] >= rows || ci[k] < 0 || ci[k] >= cols {
			return nil, Errorf("sparse: index out of bounds (%d,%d of %dx%d)", ri[k]+1, ci[k]+1, rows, cols)
		}
	}
	ord := make([]int, len(ri))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool {
		if ri[ord[a]] != ri[ord[b]] {
			return ri[ord[a]] < ri[ord[b]]
		}
		return ci[ord[a]] < ci[ord[b]]
	})
	d := &sparseData{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for at := 0; at < len(ord); {
		r, c := ri[ord[at]], ci[ord[at]]
		s := 0.0
		for at < len(ord) && ri[ord[at]] == r && ci[ord[at]] == c {
			s += vs[ord[at]]
			at++
		}
		if s != 0 {
			d.colIdx = append(d.colIdx, c)
			d.val = append(d.val, s)
			d.rowPtr[r+1]++
		}
	}
	for i := 0; i < rows; i++ {
		d.rowPtr[i+1] += d.rowPtr[i]
	}
	return newSparse(d), nil
}

// SparseFromDiags builds an m x n sparse value from diagonals: diags[k]
// holds the full-length column of values for offset offsets[k], indexed
// by the *column* position of each element (the MATLAB spdiags
// convention for square operands: A(i, j) on diagonal j-i = d takes
// element j of the diagonal column). Zeros inside the band stay stored.
func SparseFromDiags(m, n int, diags [][]float64, offsets []int) (*Value, error) {
	if len(diags) != len(offsets) {
		return nil, Errorf("spdiags: one offset per diagonal column required")
	}
	ord := make([]int, len(offsets))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return offsets[ord[a]] < offsets[ord[b]] })
	for i := 1; i < len(ord); i++ {
		if offsets[ord[i]] == offsets[ord[i-1]] {
			return nil, Errorf("spdiags: duplicate diagonal offset %d", offsets[ord[i]])
		}
	}
	d := &sparseData{rows: m, cols: n, rowPtr: make([]int, m+1)}
	for i := 0; i < m; i++ {
		for _, k := range ord {
			j := i + offsets[k]
			if j < 0 || j >= n {
				continue
			}
			if j >= len(diags[k]) {
				return nil, Errorf("spdiags: diagonal column too short (%d elements, need %d)", len(diags[k]), j+1)
			}
			d.colIdx = append(d.colIdx, j)
			d.val = append(d.val, diags[k][j])
		}
		d.rowPtr[i+1] = len(d.colIdx)
	}
	return newSparse(d), nil
}

// Sparse returns the CSR form of the value, dropping exact zeros
// (MATLAB sparse() semantics). Already-sparse values return themselves.
// Complex and char values are rejected: the sparse form is real-only.
func (v *Value) Sparse() (*Value, error) {
	if v.sp != nil {
		return v, nil
	}
	if v.kind == Complex || v.kind == Char {
		return nil, Errorf("sparse: %s operands are not supported", v.kind)
	}
	d := &sparseData{rows: v.rows, cols: v.cols, rowPtr: make([]int, v.rows+1)}
	nnz := 0
	for i := 0; i < v.rows; i++ {
		for j := 0; j < v.cols; j++ {
			if v.re[j*v.rows+i] != 0 {
				nnz++
			}
		}
	}
	d.colIdx = make([]int, 0, nnz)
	d.val = make([]float64, 0, nnz)
	for i := 0; i < v.rows; i++ {
		for j := 0; j < v.cols; j++ {
			if x := v.re[j*v.rows+i]; x != 0 {
				d.colIdx = append(d.colIdx, j)
				d.val = append(d.val, x)
			}
		}
		d.rowPtr[i+1] = len(d.colIdx)
	}
	return newSparse(d), nil
}

// Dense returns a fully stored copy of a sparse value (dense values
// return themselves). Densification above denseGuardLimit elements is
// refused with a runtime error rather than attempting the allocation.
func (v *Value) Dense() (*Value, error) {
	if v.sp == nil {
		return v, nil
	}
	re, err := v.sp.dense()
	if err != nil {
		return nil, err
	}
	return &Value{kind: Real, rows: v.rows, cols: v.cols, re: re}, nil
}

func (d *sparseData) dense() ([]float64, error) {
	n := d.rows * d.cols
	if n > denseGuardLimit {
		return nil, Errorf("sparse: refusing to densify a %dx%d matrix (%d elements exceeds the densification guard; raise -sparse-threshold or restructure with sparse-aware operations)", d.rows, d.cols, n)
	}
	re := make([]float64, n)
	for i := 0; i < d.rows; i++ {
		for k := d.rowPtr[i]; k < d.rowPtr[i+1]; k++ {
			re[d.colIdx[k]*d.rows+i] = d.val[k]
		}
	}
	return re, nil
}

// densifyInPlace swaps the value to dense storage in place. Mutation
// paths (indexed assignment) call it after copy-on-write has made the
// value unshared, so aliases never observe the representation change
// mid-flight.
func (v *Value) densifyInPlace() error {
	if v.sp == nil {
		return nil
	}
	re, err := v.sp.dense()
	if err != nil {
		return err
	}
	v.re = re
	v.sp = nil
	return nil
}

// dense2 densifies whichever of a pair of operands is sparse, for
// operators with no sparse implementation.
func dense2(a, b *Value) (*Value, *Value, error) {
	var err error
	if a, err = a.Dense(); err != nil {
		return nil, nil, err
	}
	if b, err = b.Dense(); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// sparseAt returns the (r, c) element via binary search in the row.
func (d *sparseData) at(r, c int) float64 {
	lo, hi := d.rowPtr[r], d.rowPtr[r+1]
	idx := d.colIdx[lo:hi]
	i := sort.SearchInts(idx, c)
	if i < len(idx) && idx[i] == c {
		return d.val[lo+i]
	}
	return 0
}

// sparseLinear returns the 0-based linear (column-major) element.
func (d *sparseData) linear(i int) float64 {
	return d.at(i%d.rows, i/d.rows)
}

// transposed returns the CSR transpose, cached on the payload. The
// cache holds a back-pointer so A” returns the original arrays.
func (d *sparseData) transposed() *sparseData {
	if t := d.trans.Load(); t != nil {
		return t
	}
	tr, tc, tv := sparse.Transpose(d.rows, d.cols, d.rowPtr, d.colIdx, d.val)
	t := &sparseData{rows: d.cols, cols: d.rows, rowPtr: tr, colIdx: tc, val: tv}
	t.trans.Store(d)
	// Racing stores build identical payloads; first one wins.
	d.trans.CompareAndSwap(nil, t)
	return d.trans.Load()
}

// Triangularity classifies the stored pattern, cached on the payload.
func (d *sparseData) triangularity() sparse.Triangularity {
	if t := d.tri.Load(); t != 0 {
		return sparse.Triangularity(t - 1)
	}
	t := sparse.Classify(d.rows, d.rowPtr, d.colIdx)
	d.tri.Store(int32(t) + 1)
	return t
}

// finishSparse applies the density cutoff to a sparse operator result:
// results denser than SparseThreshold densify (unless the guard
// refuses, in which case the sparse form is kept — it is always the
// safe representation).
func finishSparse(v *Value) *Value {
	if v.sp == nil {
		return v
	}
	if v.Density() > SparseThresholdValue() {
		if d, err := v.Dense(); err == nil {
			return d
		}
	}
	return v
}

// --- Sparse operator implementations --------------------------------------

// sparseMergeOp implements + and - for two same-shaped sparse operands
// by row merge. Unmatched entries still apply the operator against an
// explicit 0.0 so IEEE edge cases (-0, NaN) match the dense result
// exactly; computed zeros stay stored for the same reason.
func sparseMergeOp(a, b *sparseData, f func(x, y float64) float64) *sparseData {
	out := &sparseData{rows: a.rows, cols: a.cols, rowPtr: make([]int, a.rows+1)}
	out.colIdx = make([]int, 0, len(a.val)+len(b.val))
	out.val = make([]float64, 0, len(a.val)+len(b.val))
	for i := 0; i < a.rows; i++ {
		ka, ea := a.rowPtr[i], a.rowPtr[i+1]
		kb, eb := b.rowPtr[i], b.rowPtr[i+1]
		for ka < ea || kb < eb {
			switch {
			case kb >= eb || (ka < ea && a.colIdx[ka] < b.colIdx[kb]):
				out.colIdx = append(out.colIdx, a.colIdx[ka])
				out.val = append(out.val, f(a.val[ka], 0))
				ka++
			case ka >= ea || b.colIdx[kb] < a.colIdx[ka]:
				out.colIdx = append(out.colIdx, b.colIdx[kb])
				out.val = append(out.val, f(0, b.val[kb]))
				kb++
			default:
				out.colIdx = append(out.colIdx, a.colIdx[ka])
				out.val = append(out.val, f(a.val[ka], b.val[kb]))
				ka++
				kb++
			}
		}
		out.rowPtr[i+1] = len(out.colIdx)
	}
	return out
}

// sparseAddSub handles + / - when at least one operand is sparse.
// Sparse results only arise from sparse+sparse with equal shapes; any
// other combination (scalar broadcast, dense operand) produces a dense
// result anyway, so the sparse operand densifies first.
func sparseAddSub(a, b *Value, sub bool) (*Value, error) {
	if a.sp != nil && b.sp != nil && SameShape(a, b) {
		f := func(x, y float64) float64 { return x + y }
		if sub {
			f = func(x, y float64) float64 { return x - y }
		}
		return finishSparse(newSparse(sparseMergeOp(a.sp, b.sp, f))), nil
	}
	a, b, err := dense2(a, b)
	if err != nil {
		return nil, err
	}
	if sub {
		return Sub(a, b)
	}
	return Add(a, b)
}

// mapStored applies f to every stored entry (pattern unchanged).
// Stored zeros are mapped too — never skipped.
func mapStored(d *sparseData, f func(x float64) float64) *sparseData {
	out := &sparseData{rows: d.rows, cols: d.cols, rowPtr: d.rowPtr, colIdx: d.colIdx, val: make([]float64, len(d.val))}
	for i, x := range d.val {
		out.val[i] = f(x)
	}
	return out
}

// sparseElemMul handles .* with at least one sparse operand. The result
// keeps the sparse pattern: implicit zeros annihilate (0*NaN at an
// unstored position yields an implicit 0 — MATLAB's sparse semantics,
// the documented divergence from the densified path). Stored entries
// always multiply through.
func sparseElemMul(a, b *Value) (*Value, error) {
	// Normalize: a sparse.
	if a.sp == nil {
		a, b = b, a
	}
	switch {
	case b.IsScalar() && b.sp == nil:
		if b.kind == Complex || b.kind == Char {
			break
		}
		s := b.re[0]
		return finishSparse(newSparse(mapStored(a.sp, func(x float64) float64 { return x * s }))), nil
	case b.sp != nil && b.IsScalar():
		s := b.sp.linear(0)
		if a.IsScalar() {
			// scalar .* scalar: result is 1x1 sparse
			return finishSparse(newSparse(mapStored(a.sp, func(x float64) float64 { return x * s }))), nil
		}
		return finishSparse(newSparse(mapStored(a.sp, func(x float64) float64 { return x * s }))), nil
	case a.IsScalar() && !b.IsScalar():
		// sparse scalar .* matrix: broadcast the scalar over b.
		s := a.sp.linear(0)
		if b.sp != nil {
			return finishSparse(newSparse(mapStored(b.sp, func(x float64) float64 { return s * x }))), nil
		}
		return ElemMul(Scalar(s), b)
	case b.sp != nil && SameShape(a, b):
		// Intersection of patterns.
		out := &sparseData{rows: a.rows, cols: a.cols, rowPtr: make([]int, a.rows+1)}
		for i := 0; i < a.rows; i++ {
			ka, ea := a.sp.rowPtr[i], a.sp.rowPtr[i+1]
			kb, eb := b.sp.rowPtr[i], b.sp.rowPtr[i+1]
			for ka < ea && kb < eb {
				switch {
				case a.sp.colIdx[ka] < b.sp.colIdx[kb]:
					ka++
				case b.sp.colIdx[kb] < a.sp.colIdx[ka]:
					kb++
				default:
					out.colIdx = append(out.colIdx, a.sp.colIdx[ka])
					out.val = append(out.val, a.sp.val[ka]*b.sp.val[kb])
					ka++
					kb++
				}
			}
			out.rowPtr[i+1] = len(out.colIdx)
		}
		return finishSparse(newSparse(out)), nil
	case b.sp == nil && SameShape(a, b) && b.kind != Complex && b.kind != Char:
		// sparse .* dense: keep a's pattern.
		d := a.sp
		out := &sparseData{rows: d.rows, cols: d.cols, rowPtr: d.rowPtr, colIdx: d.colIdx, val: make([]float64, len(d.val))}
		at := 0
		for i := 0; i < d.rows; i++ {
			for k := d.rowPtr[i]; k < d.rowPtr[i+1]; k++ {
				out.val[at] = d.val[k] * b.re[d.colIdx[k]*b.rows+i]
				at++
			}
		}
		return finishSparse(newSparse(out)), nil
	}
	a2, b2, err := dense2(a, b)
	if err != nil {
		return nil, err
	}
	return ElemMul(a2, b2)
}

// sparseElemDiv handles ./ with a sparse dividend and scalar divisor
// (stored entries divide through, implicit zeros stay implicit —
// MATLAB's rule). Every other combination densifies.
func sparseElemDiv(a, b *Value) (*Value, error) {
	if b.IsScalar() && b.sp != nil {
		if bd, err := b.Dense(); err == nil {
			b = bd
		}
	}
	if a.sp != nil && b.IsScalar() && b.sp == nil && b.kind != Complex && b.kind != Char {
		s := b.re[0]
		return finishSparse(newSparse(mapStored(a.sp, func(x float64) float64 { return x / s }))), nil
	}
	a2, b2, err := dense2(a, b)
	if err != nil {
		return nil, err
	}
	return ElemDiv(a2, b2)
}

// sparseNeg negates the stored entries (implicit zeros keep +0, the
// MATLAB-faithful divergence from dense -0).
func sparseNeg(a *Value) (*Value, error) {
	return finishSparse(newSparse(mapStored(a.sp, func(x float64) float64 { return -x }))), nil
}

// sparseTranspose returns the cached transpose ('. and .' coincide:
// sparse values are real).
func sparseTranspose(a *Value) (*Value, error) {
	return newSparse(a.sp.transposed()), nil
}

// sparseMul handles * with at least one sparse operand. Sparse * dense
// vector is the SpMV kernel; sparse * dense matrix is SpMM; dense *
// sparse runs through the transpose identity (A*B = (B'*A')'), so the
// row-vector-times-operator shape stays fast; sparse * sparse densifies
// the right operand (the product of two sparse operands is not kept
// sparse). Results are always dense — the product of a sparse operator
// with a dense vector is dense.
func sparseMul(a, b *Value) (*Value, error) {
	if a.IsScalar() || b.IsScalar() {
		return sparseElemMul(a, b)
	}
	if a.cols != b.rows {
		return nil, Errorf("inner matrix dimensions must agree: %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	if a.sp == nil {
		// dense * sparse: (B' * A')'.
		bt, err := sparseTranspose(b)
		if err != nil {
			return nil, err
		}
		at, err := Transpose(a)
		if err != nil {
			return nil, err
		}
		xt, err := sparseMul(bt, at)
		if err != nil {
			return nil, err
		}
		return Transpose(xt)
	}
	if b.sp != nil {
		bd, err := b.Dense()
		if err != nil {
			return nil, err
		}
		b = bd
	}
	if b.kind == Complex || b.kind == Char {
		return nil, Errorf("sparse: %s operands are not supported in sparse products", b.kind)
	}
	d := a.sp
	out := NewRealUninit(a.rows, b.cols)
	if b.cols == 1 {
		sparse.SpMV(d.rows, d.rowPtr, d.colIdx, d.val, 1, b.re[:b.rows], 0, out.re[:a.rows])
	} else {
		sparse.SpMM(d.rows, d.rowPtr, d.colIdx, d.val, b.re[:b.rows*b.cols], b.rows, b.cols, out.re[:a.rows*b.cols], a.rows)
	}
	return out, nil
}

// SparseSpMVInto computes y = alpha*A*x + beta'*y for a sparse A with a
// caller-prepared y (the VM's fused gemv instruction does its own beta
// prologue and calls with beta = 1, exactly as it calls blas.Dgemv).
func SparseSpMVInto(a *Value, alpha float64, x []float64, beta float64, y []float64) {
	d := a.sp
	sparse.SpMV(d.rows, d.rowPtr, d.colIdx, d.val, alpha, x, beta, y)
}

// SparseCSR exposes the raw CSR arrays of a sparse value for kernel
// callers (the VM's gemv fast path, the bench comparator, nnz). The
// slices are the live immutable storage: callers must not mutate them.
func SparseCSR(v *Value) (rows, cols int, rowPtr, colIdx []int, val []float64) {
	if v.sp == nil {
		panic("mat: SparseCSR on a dense value")
	}
	return v.sp.rows, v.sp.cols, v.sp.rowPtr, v.sp.colIdx, v.sp.val
}

// SparseVals returns the stored-entry values of a sparse value
// (read-only view; includes explicitly stored zeros).
func SparseVals(v *Value) []float64 {
	if v.sp == nil {
		return nil
	}
	return v.sp.val
}

// SparseTriangularity exposes the cached structural classification for
// the mldivide dispatch (General for dense values).
func SparseTriangularity(v *Value) sparse.Triangularity {
	if v.sp == nil {
		return sparse.General
	}
	return v.sp.triangularity()
}

// SparseTriSolve solves A x = b for a structurally triangular sparse A
// and dense b (one or more columns), returning a dense result. The
// caller has already checked SparseTriangularity.
func SparseTriSolve(a, b *Value) (*Value, error) {
	lower := a.sp.triangularity() != sparse.Upper // Diagonal solves as lower
	out := New(a.rows, b.cols)
	for j := 0; j < b.cols; j++ {
		col, err := sparse.TriSolve(a.rows, a.sp.rowPtr, a.sp.colIdx, a.sp.val, lower, b.re[j*b.rows:(j+1)*b.rows])
		if err != nil {
			return nil, Errorf("sparse: %v", err)
		}
		copy(out.re[j*a.rows:(j+1)*a.rows], col)
	}
	return out, nil
}

// SparseDiag extracts the main diagonal of a sparse matrix into a dense
// n x 1 vector without densifying the operand — O(nnz) and bit-exact
// (entries are copied, never recomputed).
func SparseDiag(v *Value) *Value {
	n := v.rows
	if v.cols < n {
		n = v.cols
	}
	out := New(n, 1)
	d := v.sp
	for i := 0; i < n; i++ {
		out.re[i] = d.at(i, i)
	}
	return out
}

// sparseString renders a sparse value the way MATLAB displays sparse
// matrices: one "(i,j)  v" line per stored entry, column-major order.
func (v *Value) sparseString() string {
	if len(v.sp.val) == 0 {
		return fmt.Sprintf("All zero sparse: %dx%d", v.rows, v.cols)
	}
	t := v.sp.transposed() // column-major enumeration = row-major of Aᵀ
	var b strings.Builder
	for j := 0; j < t.rows; j++ {
		for k := t.rowPtr[j]; k < t.rowPtr[j+1]; k++ {
			if b.Len() > 0 {
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "  (%d,%d)\t%g", t.colIdx[k]+1, j+1, t.val[k])
		}
	}
	return b.String()
}
