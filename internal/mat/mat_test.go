package mat

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func wantScalar(t *testing.T, v *Value, want float64) {
	t.Helper()
	got, err := v.Scalar()
	if err != nil {
		t.Fatalf("not a scalar: %v", err)
	}
	if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
		t.Fatalf("got %g, want %g", got, want)
	}
}

func TestConstructors(t *testing.T) {
	v := New(2, 3)
	if v.Rows() != 2 || v.Cols() != 3 || v.Numel() != 6 || v.Kind() != Real {
		t.Fatalf("New: %v", v)
	}
	s := Scalar(3.5)
	if !s.IsScalar() || s.MustScalar() != 3.5 {
		t.Fatal("Scalar")
	}
	b := BoolScalar(true)
	if b.Kind() != Bool || !b.IsTrue() {
		t.Fatal("BoolScalar")
	}
	z := ComplexScalar(2 + 3i)
	if z.Kind() != Complex || z.ComplexAt(0) != 2+3i {
		t.Fatal("ComplexScalar")
	}
	str := FromString("abc")
	if str.Kind() != Char || str.Text() != "abc" || str.Cols() != 3 {
		t.Fatal("FromString")
	}
	if !Empty().IsEmpty() {
		t.Fatal("Empty")
	}
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromSlice is row-major input")
	}
	// column-major storage
	if m.Re()[1] != 3 {
		t.Fatal("storage must be column-major")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 1) != 44 {
		t.Fatalf("Add: %v", sum)
	}
	d, _ := Sub(b, a)
	if d.At(0, 0) != 9 {
		t.Fatal("Sub")
	}
	p, _ := ElemMul(a, b)
	if p.At(1, 0) != 90 {
		t.Fatal("ElemMul")
	}
	q, _ := ElemDiv(b, a)
	if q.At(1, 1) != 10 {
		t.Fatal("ElemDiv")
	}
	// scalar broadcasting
	s, _ := Add(a, Scalar(100))
	if s.At(0, 1) != 102 {
		t.Fatal("broadcast add")
	}
	// shape mismatch errors
	if _, err := Add(a, New(3, 3)); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	for i := 0; i < 4; i++ {
		if c.Re()[i] != want.Re()[i] {
			t.Fatalf("Mul: got %v want %v", c, want)
		}
	}
	if _, err := Mul(a, a); err == nil {
		t.Fatal("inner dimension mismatch must error")
	}
	// scalar falls back to elementwise
	s, _ := Mul(Scalar(2), b)
	if s.At(2, 1) != 24 {
		t.Fatal("scalar*matrix")
	}
	// complex product
	z1 := ComplexScalar(1 + 1i)
	z2 := ComplexScalar(1 - 1i)
	zp, _ := Mul(z1, z2)
	wantScalar(t, zp, 2)
}

func TestPow(t *testing.T) {
	wantScalar(t, must(Pow(Scalar(2), Scalar(10))), 1024)
	wantScalar(t, must(Pow(Scalar(-2), Scalar(3))), -8)
	// negative base with fractional exponent promotes to complex
	z := must(Pow(Scalar(-4), Scalar(0.5)))
	if z.Kind() != Complex || math.Abs(z.Im()[0]-2) > 1e-12 {
		t.Fatalf("(-4)^0.5 = %v", z)
	}
	// matrix power by squaring
	a := FromSlice(2, 2, []float64{1, 1, 1, 0}) // Fibonacci matrix
	p := must(Pow(a, Scalar(10)))
	if p.At(0, 0) != 89 { // F(11)
		t.Fatalf("A^10: %v", p)
	}
	// A^0 = I
	p0 := must(Pow(a, Scalar(0)))
	if p0.At(0, 0) != 1 || p0.At(0, 1) != 0 {
		t.Fatal("A^0 must be identity")
	}
}

func must(v *Value, err error) *Value {
	if err != nil {
		panic(err)
	}
	return v
}

func TestTranspose(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := must(Transpose(a))
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 {
		t.Fatalf("transpose: %v", at)
	}
	z := ComplexScalar(1 + 2i)
	if must(Transpose(z)).ComplexAt(0) != 1-2i {
		t.Fatal("' must conjugate")
	}
	if must(DotTranspose(z)).ComplexAt(0) != 1+2i {
		t.Fatal(".' must not conjugate")
	}
}

func TestCompare(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{2, 2, 2})
	lt := must(Compare(CmpLt, a, b))
	if lt.Kind() != Bool || lt.Re()[0] != 1 || lt.Re()[1] != 0 || lt.Re()[2] != 0 {
		t.Fatalf("lt: %v", lt)
	}
	// NaN compares false with everything except ~=
	n := Scalar(math.NaN())
	if must(Compare(CmpEq, n, n)).IsTrue() {
		t.Fatal("NaN == NaN must be false")
	}
	if !must(Compare(CmpNe, n, n)).IsTrue() {
		t.Fatal("NaN ~= NaN must be true")
	}
	if must(Compare(CmpLt, n, Scalar(1))).IsTrue() {
		t.Fatal("NaN < 1 must be false")
	}
	// complex equality uses both parts
	if must(Compare(CmpEq, ComplexScalar(1+2i), ComplexScalar(1+2i))).Re()[0] != 1 {
		t.Fatal("complex eq")
	}
	if must(Compare(CmpEq, ComplexScalar(1+2i), ComplexScalar(1-2i))).Re()[0] != 0 {
		t.Fatal("complex ne")
	}
	// ordering disregards imaginary parts (paper's observation)
	if must(Compare(CmpLt, ComplexScalar(1+5i), ComplexScalar(2))).Re()[0] != 1 {
		t.Fatal("complex ordering uses real parts")
	}
}

func TestColon(t *testing.T) {
	v := must(Colon(Scalar(1), Scalar(1), Scalar(5)))
	if v.Rows() != 1 || v.Cols() != 5 || v.Re()[4] != 5 {
		t.Fatalf("1:5 = %v", v)
	}
	v = must(Colon(Scalar(5), Scalar(-2), Scalar(0)))
	if v.Cols() != 3 || v.Re()[2] != 1 {
		t.Fatalf("5:-2:0 = %v", v)
	}
	v = must(Colon(Scalar(1), Scalar(1), Scalar(0)))
	if !v.IsEmpty() || v.Rows() != 1 {
		t.Fatalf("1:0 must be 1x0, got %dx%d", v.Rows(), v.Cols())
	}
	v = must(Colon(Scalar(0), Scalar(0.1), Scalar(1)))
	if v.Cols() != 11 {
		t.Fatalf("0:0.1:1 has %d elements, want 11", v.Cols())
	}
	// zero step → empty
	v = must(Colon(Scalar(1), Scalar(0), Scalar(5)))
	if !v.IsEmpty() {
		t.Fatal("zero step must be empty")
	}
}

func TestCat(t *testing.T) {
	a := Scalar(1)
	b := Scalar(2)
	row := must(HorzCat([]*Value{a, b}))
	if row.Rows() != 1 || row.Cols() != 2 {
		t.Fatal("horzcat scalars")
	}
	col := must(VertCat([]*Value{row.Clone(), row.Clone()}))
	if col.Rows() != 2 || col.Cols() != 2 {
		t.Fatal("vertcat rows")
	}
	// [A; 2A] stacking respects columns
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	m2, _ := ElemMul(m, Scalar(2))
	st := must(VertCat([]*Value{m, m2}))
	if st.Rows() != 4 || st.At(3, 1) != 8 {
		t.Fatalf("stack: %v", st)
	}
	// empties drop out
	e := must(HorzCat([]*Value{Empty(), Scalar(7)}))
	wantScalar(t, e, 7)
	// mismatched rows error
	if _, err := HorzCat([]*Value{New(2, 1), New(3, 1)}); err == nil {
		t.Fatal("row mismatch must error")
	}
	// single-element bracket must not alias its operand
	orig := FromSlice(1, 2, []float64{1, 2})
	wrapped := must(VertCat([]*Value{orig}))
	wrapped.Re()[0] = 99
	if orig.Re()[0] == 99 {
		t.Fatal("[x] aliases x")
	}
}

func TestIndexRead(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	// linear indexing is column-major
	v, err := a.CheckedGet1(3)
	if err != nil || v != 2 {
		t.Fatalf("A(3) = %g (%v)", v, err)
	}
	if _, err := a.CheckedGet1(7); err == nil {
		t.Fatal("out of bounds must error")
	}
	if _, err := a.CheckedGet1(0); err == nil {
		t.Fatal("zero subscript must error")
	}
	if _, err := a.CheckedGet1(1.5); err == nil {
		t.Fatal("fractional subscript must error")
	}
	x, err := a.CheckedGet2(2, 3)
	if err != nil || x != 6 {
		t.Fatalf("A(2,3) = %g (%v)", x, err)
	}
	// subscript vectors
	sub, _ := ResolveSubscript(FromSlice(1, 2, []float64{1, 3}))
	sub.ShapeRows, sub.ShapeCols = 1, 2
	got, err := Index1(a, sub)
	if err != nil || got.Re()[0] != 1 || got.Re()[1] != 2 {
		t.Fatalf("A([1 3]) = %v (%v)", got, err)
	}
	// colon subscript flattens
	all, _ := Index1(a, Subscript{Colon: true})
	if all.Rows() != 6 || all.Cols() != 1 {
		t.Fatal("A(:) must be a column")
	}
	// 2-D with colon
	colSub, _ := ResolveSubscript(Scalar(2))
	colSub.ShapeRows, colSub.ShapeCols = 1, 1
	col, err := Index2(a, Subscript{Colon: true}, colSub)
	if err != nil || col.Rows() != 2 || col.Re()[0] != 2 || col.Re()[1] != 5 {
		t.Fatalf("A(:,2) = %v (%v)", col, err)
	}
}

func TestStoreGrowth(t *testing.T) {
	// linear growth of a row vector
	v := FromSlice(1, 2, []float64{1, 2})
	if err := v.CheckedSet1(5, 9); err != nil {
		t.Fatal(err)
	}
	if v.Rows() != 1 || v.Cols() != 5 || v.Re()[4] != 9 || v.Re()[2] != 0 {
		t.Fatalf("grown: %v", v)
	}
	// 2-D growth preserves content
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err := a.CheckedSet2(3, 4, 7); err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 3 || a.Cols() != 4 || a.At(0, 1) != 2 || a.At(2, 3) != 7 || a.At(2, 0) != 0 {
		t.Fatalf("2-D grown: %v", a)
	}
	// linear index overflow on a true matrix is an error
	m := New(2, 2)
	if err := m.CheckedSet1(5, 1); err == nil {
		t.Fatal("linear growth of a matrix must error")
	}
	// growing an empty creates a row vector
	e := Empty()
	if err := e.CheckedSet1(3, 5); err != nil {
		t.Fatal(err)
	}
	if e.Rows() != 1 || e.Cols() != 3 {
		t.Fatalf("empty growth: %dx%d", e.Rows(), e.Cols())
	}
}

func TestOversizing(t *testing.T) {
	// repeated append-style growth must not reallocate every time
	v := New(1, 1)
	reallocs := 0
	lastCap := v.Cap()
	for i := 2; i <= 1000; i++ {
		if err := v.CheckedSet1(float64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
		if v.Cap() != lastCap {
			reallocs++
			lastCap = v.Cap()
		}
	}
	if reallocs >= 900 {
		t.Fatalf("oversizing ineffective: %d reallocations for 999 appends", reallocs)
	}
	// the oversized array reports exact dimensions (paper: "The
	// oversized array, when queried, returns accurate size information")
	if v.Cols() != 1000 || v.Numel() != 1000 {
		t.Fatalf("size must be exact: %dx%d", v.Rows(), v.Cols())
	}
	if v.Cap() < v.Numel() {
		t.Fatal("capacity below size")
	}
	// huge arrays are never oversized
	big := New(1, oversizeLimit)
	if big.Cap() != oversizeLimit {
		t.Fatalf("large array was oversized: cap %d", big.Cap())
	}
}

func TestAssignSemantics(t *testing.T) {
	// A(:) = scalar fills in place
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err := Assign1(a, Subscript{Colon: true}, Scalar(9)); err != nil {
		t.Fatal(err)
	}
	for _, x := range a.Re() {
		if x != 9 {
			t.Fatal("fill failed")
		}
	}
	// vector rhs must match subscript count
	b := New(1, 4)
	sub, _ := ResolveSubscript(FromSlice(1, 2, []float64{1, 3}))
	if err := Assign1(b, sub, FromSlice(1, 2, []float64{5, 6})); err != nil {
		t.Fatal(err)
	}
	if b.Re()[0] != 5 || b.Re()[2] != 6 {
		t.Fatalf("vector assign: %v", b)
	}
	if err := Assign1(b, sub, FromSlice(1, 3, []float64{1, 2, 3})); err == nil {
		t.Fatal("count mismatch must error")
	}
	// complex rhs promotes the array
	c := New(1, 2)
	s1, _ := ResolveSubscript(Scalar(1))
	if err := Assign1(c, s1, ComplexScalar(2i)); err != nil {
		t.Fatal(err)
	}
	if c.Kind() != Complex || c.Im()[0] != 2 {
		t.Fatalf("promotion: %v", c)
	}
}

func TestCopyOnWriteFlag(t *testing.T) {
	v := Scalar(1)
	if v.IsShared() {
		t.Fatal("fresh values are unshared")
	}
	v.MarkShared()
	if !v.IsShared() {
		t.Fatal("MarkShared")
	}
	c := v.Clone()
	if c.IsShared() {
		t.Fatal("clones are unshared")
	}
}

func TestTruthiness(t *testing.T) {
	if Empty().IsTrue() {
		t.Fatal("[] is false")
	}
	if !Scalar(5).IsTrue() || Scalar(0).IsTrue() {
		t.Fatal("scalar truth")
	}
	if FromSlice(1, 3, []float64{1, 0, 1}).IsTrue() {
		t.Fatal("all() semantics: any zero → false")
	}
	if !FromSlice(1, 3, []float64{1, 2, 3}).IsTrue() {
		t.Fatal("all nonzero → true")
	}
	if !ComplexScalar(1i).IsTrue() {
		t.Fatal("nonzero imaginary counts")
	}
}

func TestLogicalOps(t *testing.T) {
	a := FromSlice(1, 4, []float64{0, 0, 1, 1})
	b := FromSlice(1, 4, []float64{0, 1, 0, 1})
	and := must(And(a, b))
	or := must(Or(a, b))
	not := must(Not(a))
	wantRow := func(v *Value, want []float64) {
		t.Helper()
		for i, w := range want {
			if v.Re()[i] != w {
				t.Fatalf("%v, want %v", v.Re(), want)
			}
		}
	}
	wantRow(and, []float64{0, 0, 0, 1})
	wantRow(or, []float64{0, 1, 1, 1})
	wantRow(not, []float64{1, 1, 0, 0})
}

func TestDemote(t *testing.T) {
	z := NewKind(Complex, 1, 2)
	z.Re()[0] = 1
	z.Re()[1] = 2
	d := z.Demote()
	if d.Kind() != Real {
		t.Fatal("zero-imag complex must demote")
	}
	z.Im()[1] = 3
	if z.Demote().Kind() != Complex {
		t.Fatal("nonzero-imag complex must not demote")
	}
}

// --- property-based tests ------------------------------------------------------

func randValue(r *rand.Rand, maxDim int) *Value {
	rows := 1 + r.Intn(maxDim)
	cols := 1 + r.Intn(maxDim)
	v := New(rows, cols)
	for i := range v.Re() {
		v.Re()[i] = math.Round(100*(r.Float64()*2-1)) / 10
	}
	return v
}

func propCfg(seed int64, maxDim int) *quick.Config {
	r := rand.New(rand.NewSource(seed))
	return &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randValue(r, maxDim))
			}
		},
	}
}

// Add is commutative.
func TestPropAddCommutative(t *testing.T) {
	f := func(ai, bi interface{}) bool {
		a := ai.(*Value)
		b := bi.(*Value)
		if !SameShape(a, b) {
			return true
		}
		x, err1 := Add(a, b)
		y, err2 := Add(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range x.Re() {
			if x.Re()[i] != y.Re()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, propCfg(1, 4)); err != nil {
		t.Error(err)
	}
}

// (A')' == A.
func TestPropDoubleTranspose(t *testing.T) {
	f := func(ai interface{}) bool {
		a := ai.(*Value)
		tt := must(Transpose(must(Transpose(a))))
		if !SameShape(a, tt) {
			return false
		}
		for i := range a.Re() {
			if a.Re()[i] != tt.Re()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, propCfg(2, 5)); err != nil {
		t.Error(err)
	}
}

// (A*B)' == B'*A'.
func TestPropTransposeProduct(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		m, k, n := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a := New(m, k)
		b := New(k, n)
		for i := range a.Re() {
			a.Re()[i] = float64(r.Intn(11) - 5)
		}
		for i := range b.Re() {
			b.Re()[i] = float64(r.Intn(11) - 5)
		}
		lhs := must(Transpose(must(Mul(a, b))))
		rhs := must(Mul(must(Transpose(b)), must(Transpose(a))))
		for i := range lhs.Re() {
			if lhs.Re()[i] != rhs.Re()[i] {
				t.Fatalf("(AB)' != B'A' at case %d", i)
			}
		}
	}
}

// Clone is deep: mutating the clone never touches the original.
func TestPropCloneIndependence(t *testing.T) {
	f := func(ai interface{}) bool {
		a := ai.(*Value)
		c := a.Clone()
		before := append([]float64(nil), a.Re()...)
		for i := range c.Re() {
			c.Re()[i] = -999
		}
		for i := range a.Re() {
			if a.Re()[i] != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, propCfg(4, 5)); err != nil {
		t.Error(err)
	}
}

// Growth preserves all previously stored elements and zero-fills.
func TestPropGrowthPreserves(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		rows, cols := 1+r.Intn(5), 1+r.Intn(5)
		a := New(rows, cols)
		for i := range a.Re() {
			a.Re()[i] = r.Float64()
		}
		orig := a.Clone()
		nr, nc := rows+r.Intn(5), cols+r.Intn(5)
		a.Grow(nr, nc)
		if a.Rows() != nr || a.Cols() != nc {
			t.Fatalf("grow to %dx%d gave %dx%d", nr, nc, a.Rows(), a.Cols())
		}
		for c := 0; c < nc; c++ {
			for rr := 0; rr < nr; rr++ {
				want := 0.0
				if rr < rows && c < cols {
					want = orig.At(rr, c)
				}
				if a.At(rr, c) != want {
					t.Fatalf("grow corrupted (%d,%d): got %g want %g", rr, c, a.At(rr, c), want)
				}
			}
		}
	}
}

// Index1 then Assign1 round-trips.
func TestPropIndexAssignRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(8)
		v := New(1, n)
		for i := range v.Re() {
			v.Re()[i] = r.Float64()
		}
		idx := 1 + r.Intn(n)
		x := r.Float64()
		if err := v.CheckedSet1(float64(idx), x); err != nil {
			t.Fatal(err)
		}
		got, err := v.CheckedGet1(float64(idx))
		if err != nil || got != x {
			t.Fatalf("round trip failed: %g != %g (%v)", got, x, err)
		}
	}
}
