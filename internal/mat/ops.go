package mat

import (
	"math"
	"math/cmplx"
	"sync/atomic"

	"repro/internal/blas"
	"repro/internal/parallel"
)

// This file implements the polymorphic generic operators — the analog of
// the mlfPlus/mlfTimes/... functions of the MATLAB C library that the
// paper's unoptimized code falls back to. Every operator dispatches on
// kinds and shapes at runtime and allocates a boxed result.

// BinKind classifies the scalar/matrix combination of a binary op.
func binShape(a, b *Value) (rows, cols int, err error) {
	switch {
	case a.IsScalar():
		return b.rows, b.cols, nil
	case b.IsScalar():
		return a.rows, a.cols, nil
	case SameShape(a, b):
		return a.rows, a.cols, nil
	default:
		return 0, 0, Errorf("matrix dimensions must agree: %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
}

// elemGrain is the minimum per-chunk element count for parallel
// elementwise loops; below it parallel.For runs the loop inline.
const elemGrain = 1 << 14

// elementwise applies fr (real) or fc (complex) pointwise with scalar
// broadcasting. Each output element depends only on its own index, so
// the loops chunk-parallelize over disjoint ranges with byte-identical
// results for every thread count; the integrality scan AND-merges
// per-chunk flags (order-independent).
func elementwise(a, b *Value, fr func(x, y float64) float64, fc func(x, y complex128) complex128) (*Value, error) {
	if a.sp != nil || b.sp != nil {
		// Defensive: sparse-capable operators dispatch before reaching
		// here; anything else works on densified copies.
		var derr error
		if a, b, derr = dense2(a, b); derr != nil {
			return nil, derr
		}
	}
	rows, cols, err := binShape(a, b)
	if err != nil {
		return nil, err
	}
	k := PromoteKind(a.kind, b.kind)
	n := rows * cols
	if k == Complex {
		out := NewKind(Complex, rows, cols)
		parallel.For(0, n, elemGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z := fc(bcastC(a, i), bcastC(b, i))
				out.re[i] = real(z)
				out.im[i] = imag(z)
			}
		})
		return out.Demote(), nil
	}
	out := NewRealUninit(rows, cols)
	if k == Int || k == Bool {
		// int-preserving ops stay integral when inputs are; callers that
		// need exactness (e.g. plus on ints) keep Int kind. Integrality is
		// tracked inside the main loop rather than by re-scanning the
		// finished result.
		var notInt atomic.Bool
		parallel.For(0, n, elemGrain, func(lo, hi int) {
			allInt := true
			for i := lo; i < hi; i++ {
				z := fr(bcastR(a, i), bcastR(b, i))
				out.re[i] = z
				if z != math.Trunc(z) || math.IsInf(z, 0) {
					allInt = false
				}
			}
			if !allInt {
				notInt.Store(true)
			}
		})
		if !notInt.Load() {
			out.kind = Int
		}
		return out, nil
	}
	parallel.For(0, n, elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.re[i] = fr(bcastR(a, i), bcastR(b, i))
		}
	})
	return out, nil
}

func bcastR(v *Value, i int) float64 {
	if v.rows*v.cols == 1 {
		return v.re[0]
	}
	return v.re[i]
}

func bcastC(v *Value, i int) complex128 {
	if v.rows*v.cols == 1 {
		return v.ComplexAt(0)
	}
	return v.ComplexAt(i)
}

// Add implements a+b.
func Add(a, b *Value) (*Value, error) {
	if a.sp != nil || b.sp != nil {
		return sparseAddSub(a, b, false)
	}
	return elementwise(a, b,
		func(x, y float64) float64 { return x + y },
		func(x, y complex128) complex128 { return x + y })
}

// Sub implements a-b.
func Sub(a, b *Value) (*Value, error) {
	if a.sp != nil || b.sp != nil {
		return sparseAddSub(a, b, true)
	}
	return elementwise(a, b,
		func(x, y float64) float64 { return x - y },
		func(x, y complex128) complex128 { return x - y })
}

// ElemMul implements a.*b.
func ElemMul(a, b *Value) (*Value, error) {
	if a.sp != nil || b.sp != nil {
		return sparseElemMul(a, b)
	}
	return elementwise(a, b,
		func(x, y float64) float64 { return x * y },
		func(x, y complex128) complex128 { return x * y })
}

// ElemDiv implements a./b.
func ElemDiv(a, b *Value) (*Value, error) {
	if a.sp != nil || b.sp != nil {
		return sparseElemDiv(a, b)
	}
	return elementwise(a, b,
		func(x, y float64) float64 { return x / y },
		func(x, y complex128) complex128 { return x / y })
}

// ElemLDiv implements a.\b.
func ElemLDiv(a, b *Value) (*Value, error) { return ElemDiv(b, a) }

// Neg implements -a.
func Neg(a *Value) (*Value, error) {
	if a.sp != nil {
		return sparseNeg(a)
	}
	n := a.rows * a.cols
	if a.kind == Complex {
		out := NewKind(Complex, a.rows, a.cols)
		for i := 0; i < n; i++ {
			out.re[i] = -a.re[i]
			out.im[i] = -a.im[i]
		}
		return out, nil
	}
	out := NewKind(a.numKind(), a.rows, a.cols)
	for i := 0; i < n; i++ {
		out.re[i] = -a.re[i]
	}
	return out, nil
}

func (v *Value) numKind() Kind {
	if v.kind == Char || v.kind == Bool {
		return Real
	}
	return v.kind
}

// UPlus implements +a (numeric identity; converts char/bool to double).
// The result is a fresh value so callers can mutate it freely.
func UPlus(a *Value) (*Value, error) {
	out := a.Clone()
	if a.kind == Char || a.kind == Bool {
		out.kind = Real
	}
	return out, nil
}

// Mul implements the matrix product a*b, with scalar broadcasting when
// either operand is 1x1. Inner dimensions must agree otherwise.
func Mul(a, b *Value) (*Value, error) {
	if a.sp != nil || b.sp != nil {
		return sparseMul(a, b)
	}
	if a.IsScalar() || b.IsScalar() {
		return ElemMul(a, b)
	}
	if a.cols != b.rows {
		return nil, Errorf("inner matrix dimensions must agree: %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	if a.kind == Complex || b.kind == Complex {
		ac, bc := a.ToComplex(), b.ToComplex()
		out := NewKind(Complex, a.rows, b.cols)
		// No bkj == 0 quick-skip: 0*NaN and 0*Inf contributions from A
		// must reach the result (IEEE semantics), as in blas.Dgemm.
		for j := 0; j < b.cols; j++ {
			for k := 0; k < a.cols; k++ {
				bkj := complex(bc.re[j*b.rows+k], bc.im[j*b.rows+k])
				for i := 0; i < a.rows; i++ {
					z := complex(ac.re[k*a.rows+i], ac.im[k*a.rows+i]) * bkj
					out.re[j*a.rows+i] += real(z)
					out.im[j*a.rows+i] += imag(z)
				}
			}
		}
		return out.Demote(), nil
	}
	// The real product runs on the blocked, parallel dgemm. beta == 0
	// stores, so the uninitialized (possibly pool-recycled) result
	// buffer is never read.
	out := NewRealUninit(a.rows, b.cols)
	blas.Dgemm(a.rows, b.cols, a.cols, 1, a.re, a.rows, b.re, b.rows, 0, out.re, a.rows)
	return out, nil
}

// Div implements a/b (mrdivide). Scalar b reduces to elementwise; the
// general case solves x*b = a via transposition: a/b = (b' \ a')'.
func Div(a, b *Value, solve func(A, B *Value) (*Value, error)) (*Value, error) {
	if b.IsScalar() {
		return ElemDiv(a, b)
	}
	bt, err := Transpose(b)
	if err != nil {
		return nil, err
	}
	at, err := Transpose(a)
	if err != nil {
		return nil, err
	}
	xt, err := solve(bt, at)
	if err != nil {
		return nil, err
	}
	return Transpose(xt)
}

// Pow implements a^b for the cases MaJIC handles: scalar^scalar (complex
// result when needed), matrix^integer-scalar (repeated squaring), and
// scalar^matrix is rejected.
func Pow(a, b *Value) (*Value, error) {
	if a.sp != nil || b.sp != nil {
		var err error
		if a, b, err = dense2(a, b); err != nil {
			return nil, err
		}
	}
	if a.IsScalar() && b.IsScalar() {
		return scalarPow(a, b)
	}
	if b.IsScalar() {
		if a.rows != a.cols {
			return nil, Errorf("matrix power requires a square matrix")
		}
		p := b.re[0]
		if p != math.Trunc(p) || p < 0 {
			return nil, Errorf("matrix power supports nonnegative integer exponents only")
		}
		result, err := Eye(a.rows)
		if err != nil {
			return nil, err
		}
		base := a
		n := int(p)
		for n > 0 {
			if n&1 == 1 {
				result, err = Mul(result, base)
				if err != nil {
					return nil, err
				}
			}
			base, err = Mul(base, base)
			if err != nil {
				return nil, err
			}
			n >>= 1
		}
		return result, nil
	}
	return nil, Errorf("unsupported operands for ^")
}

func scalarPow(a, b *Value) (*Value, error) {
	if a.kind == Complex || b.kind == Complex {
		z := cmplx.Pow(a.ComplexAt(0), b.ComplexAt(0))
		return ComplexScalar(z).Demote(), nil
	}
	x, y := a.re[0], b.re[0]
	if x < 0 && y != math.Trunc(y) {
		z := cmplx.Pow(complex(x, 0), complex(y, 0))
		return ComplexScalar(z).Demote(), nil
	}
	return Scalar(math.Pow(x, y)), nil
}

// ElemPow implements a.^b.
func ElemPow(a, b *Value) (*Value, error) {
	if a.sp != nil || b.sp != nil {
		var derr error
		if a, b, derr = dense2(a, b); derr != nil {
			return nil, derr
		}
	}
	rows, cols, err := binShape(a, b)
	if err != nil {
		return nil, err
	}
	// A negative base with a fractional exponent produces complex output.
	needComplex := a.kind == Complex || b.kind == Complex
	if !needComplex {
		n := rows * cols
		for i := 0; i < n && !needComplex; i++ {
			x, y := bcastR(a, i), bcastR(b, i)
			if x < 0 && y != math.Trunc(y) {
				needComplex = true
			}
		}
	}
	if needComplex {
		out := NewKind(Complex, rows, cols)
		n := rows * cols
		for i := 0; i < n; i++ {
			z := cmplx.Pow(bcastC(a, i), bcastC(b, i))
			out.re[i] = real(z)
			out.im[i] = imag(z)
		}
		return out.Demote(), nil
	}
	return elementwise(a, b, math.Pow,
		func(x, y complex128) complex128 { return cmplx.Pow(x, y) })
}

// Transpose implements a' for real values and the conjugate transpose for
// complex values (MATLAB's ').
func Transpose(a *Value) (*Value, error) {
	if a.sp != nil {
		return sparseTranspose(a)
	}
	out := NewKind(a.kind, a.cols, a.rows)
	for c := 0; c < a.cols; c++ {
		for r := 0; r < a.rows; r++ {
			out.re[r*a.cols+c] = a.re[c*a.rows+r]
		}
	}
	if a.im != nil {
		for c := 0; c < a.cols; c++ {
			for r := 0; r < a.rows; r++ {
				out.im[r*a.cols+c] = -a.im[c*a.rows+r]
			}
		}
	}
	return out, nil
}

// DotTranspose implements a.' (no conjugation).
func DotTranspose(a *Value) (*Value, error) {
	out, err := Transpose(a)
	if err != nil {
		return nil, err
	}
	if out.im != nil {
		for i := range out.im {
			out.im[i] = -out.im[i]
		}
	}
	return out, nil
}

// CmpOp enumerates relational operators.
type CmpOp uint8

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// Compare implements the relational operators, which per MATLAB (and the
// paper's speculator hint) disregard imaginary parts for ordering but use
// them for equality.
func Compare(op CmpOp, a, b *Value) (*Value, error) {
	if a.sp != nil || b.sp != nil {
		var derr error
		if a, b, derr = dense2(a, b); derr != nil {
			return nil, derr
		}
	}
	rows, cols, err := binShape(a, b)
	if err != nil {
		return nil, err
	}
	out := NewKind(Bool, rows, cols)
	n := rows * cols
	for i := 0; i < n; i++ {
		var t bool
		switch op {
		case CmpEq, CmpNe:
			eq := bcastR(a, i) == bcastR(b, i) && imOrZero(a, i) == imOrZero(b, i)
			t = eq == (op == CmpEq)
		case CmpLt:
			t = bcastR(a, i) < bcastR(b, i)
		case CmpLe:
			t = bcastR(a, i) <= bcastR(b, i)
		case CmpGt:
			t = bcastR(a, i) > bcastR(b, i)
		case CmpGe:
			t = bcastR(a, i) >= bcastR(b, i)
		}
		if t {
			out.re[i] = 1
		}
	}
	return out, nil
}

func imOrZero(v *Value, i int) float64 {
	if v.im == nil {
		return 0
	}
	if v.rows*v.cols == 1 {
		return v.im[0]
	}
	return v.im[i]
}

// And implements a&b (elementwise logical and).
func And(a, b *Value) (*Value, error) {
	return logical(a, b, func(x, y bool) bool { return x && y })
}

// Or implements a|b.
func Or(a, b *Value) (*Value, error) {
	return logical(a, b, func(x, y bool) bool { return x || y })
}

func logical(a, b *Value, f func(x, y bool) bool) (*Value, error) {
	if a.sp != nil || b.sp != nil {
		var derr error
		if a, b, derr = dense2(a, b); derr != nil {
			return nil, derr
		}
	}
	rows, cols, err := binShape(a, b)
	if err != nil {
		return nil, err
	}
	out := NewKind(Bool, rows, cols)
	n := rows * cols
	for i := 0; i < n; i++ {
		if f(truthy(a, i), truthy(b, i)) {
			out.re[i] = 1
		}
	}
	return out, nil
}

func truthy(v *Value, i int) bool {
	return bcastR(v, i) != 0 || imOrZero(v, i) != 0
}

// Not implements ~a.
func Not(a *Value) (*Value, error) {
	if a.sp != nil {
		var err error
		if a, err = a.Dense(); err != nil {
			return nil, err
		}
	}
	out := NewKind(Bool, a.rows, a.cols)
	n := a.rows * a.cols
	for i := 0; i < n; i++ {
		if !truthy(a, i) {
			out.re[i] = 1
		}
	}
	return out, nil
}

// Colon implements lo:step:hi. Per the paper's speculator discussion,
// MATLAB silently uses only the real part of the first element of each
// operand. A zero step or an empty traversal yields a 1x0 empty row.
func Colon(lo, step, hi *Value) (*Value, error) {
	for _, v := range []**Value{&lo, &step, &hi} {
		if (*v).sp != nil {
			d, err := (*v).Dense()
			if err != nil {
				return nil, err
			}
			*v = d
		}
	}
	if lo.IsEmpty() || step.IsEmpty() || hi.IsEmpty() {
		return &Value{kind: Real, rows: 1, cols: 0, re: nil}, nil
	}
	a, s, b := lo.re[0], step.re[0], hi.re[0]
	if s == 0 || (s > 0 && a > b) || (s < 0 && a < b) {
		return &Value{kind: Real, rows: 1, cols: 0, re: nil}, nil
	}
	n := int(math.Floor((b-a)/s + 1e-10)) // tolerate FP wobble at the endpoint
	if n < 0 {
		n = 0
	}
	out := New(1, n+1)
	allInt := true
	for i := 0; i <= n; i++ {
		x := a + float64(i)*s
		out.re[i] = x
		if x != math.Trunc(x) || math.IsInf(x, 0) {
			allInt = false
		}
	}
	if allInt {
		out.kind = Int
	}
	return out, nil
}

// Eye returns the n x n identity.
func Eye(n int) (*Value, error) {
	if n < 0 {
		return nil, Errorf("eye: negative dimension")
	}
	out := New(n, n)
	for i := 0; i < n; i++ {
		out.re[i*n+i] = 1
	}
	return out, nil
}

// Cat concatenates a bracket expression [rows of row-lists]. parts holds
// one slice of values per literal row. Per MATLAB, elements of a literal
// row must have equal row counts; rows must have equal total column
// counts. Empty parts are dropped.
func Cat(parts [][]*Value) (*Value, error) {
	// Build each bracket row by horizontal concatenation, then stack.
	var rows []*Value
	for _, row := range parts {
		h, err := HorzCat(row)
		if err != nil {
			return nil, err
		}
		if h.IsEmpty() && h.rows == 0 {
			continue
		}
		rows = append(rows, h)
	}
	return VertCat(rows)
}

// HorzCat concatenates values left to right. Sparse elements densify:
// concatenation results are dense (the static sparsity bit agrees).
func HorzCat(vs []*Value) (*Value, error) {
	var nonEmpty []*Value
	for _, v := range vs {
		if v.sp != nil {
			d, err := v.Dense()
			if err != nil {
				return nil, err
			}
			v = d
		}
		if !v.IsEmpty() {
			nonEmpty = append(nonEmpty, v)
		}
	}
	if len(nonEmpty) == 0 {
		return Empty(), nil
	}
	rows := nonEmpty[0].rows
	cols := 0
	kind := nonEmpty[0].kind
	for _, v := range nonEmpty {
		if v.rows != rows {
			return nil, Errorf("horizontal concatenation: row counts differ (%d vs %d)", rows, v.rows)
		}
		cols += v.cols
		kind = catKind(kind, v.kind)
	}
	out := NewKind(kind, rows, cols)
	at := 0
	for _, v := range nonEmpty {
		n := v.rows * v.cols
		copy(out.re[at:at+n], v.re[:n])
		if out.im != nil && v.im != nil {
			copy(out.im[at:at+n], v.im[:n])
		}
		at += n
	}
	return out, nil
}

// VertCat concatenates values top to bottom (sparse elements densify,
// as in HorzCat).
func VertCat(vs []*Value) (*Value, error) {
	var nonEmpty []*Value
	for _, v := range vs {
		if v.sp != nil {
			d, err := v.Dense()
			if err != nil {
				return nil, err
			}
			v = d
		}
		if !v.IsEmpty() {
			nonEmpty = append(nonEmpty, v)
		}
	}
	if len(nonEmpty) == 0 {
		return Empty(), nil
	}
	if len(nonEmpty) == 1 {
		// Copy so [x] never aliases x.
		return nonEmpty[0].Clone(), nil
	}
	cols := nonEmpty[0].cols
	rows := 0
	kind := nonEmpty[0].kind
	for _, v := range nonEmpty {
		if v.cols != cols {
			return nil, Errorf("vertical concatenation: column counts differ (%d vs %d)", cols, v.cols)
		}
		rows += v.rows
		kind = catKind(kind, v.kind)
	}
	out := NewKind(kind, rows, cols)
	rowAt := 0
	for _, v := range nonEmpty {
		for c := 0; c < cols; c++ {
			copy(out.re[c*rows+rowAt:c*rows+rowAt+v.rows], v.re[c*v.rows:(c+1)*v.rows])
			if out.im != nil && v.im != nil {
				copy(out.im[c*rows+rowAt:c*rows+rowAt+v.rows], v.im[c*v.rows:(c+1)*v.rows])
			}
		}
		rowAt += v.rows
	}
	return out, nil
}

// catKind gives concatenation's result kind: any complex → complex; char
// with numeric → char (MATLAB concatenates into char); otherwise promote.
func catKind(a, b Kind) Kind {
	if a == Complex || b == Complex {
		return Complex
	}
	if a == Char || b == Char {
		return Char
	}
	return PromoteKind(a, b)
}
