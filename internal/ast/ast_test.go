package ast_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWalkVisitsEverything(t *testing.T) {
	f := parse(t, `
function y = f(x)
  for i = 1:x
    if i > 2
      y = i + sin(x);
    else
      y = [1 2; 3 4];
    end
  end
  while y < 10
    y = y + 1;
  end
  switch x
  case 1
    y = 0;
  otherwise
    y = -1;
  end
end`)
	counts := map[string]int{}
	ast.Walk(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.For:
			counts["for"]++
		case *ast.If:
			counts["if"]++
		case *ast.While:
			counts["while"]++
		case *ast.Switch:
			counts["switch"]++
		case *ast.Matrix:
			counts["matrix"]++
		case *ast.Binary:
			counts["binary"]++
		case *ast.Call:
			counts["call"]++
		case *ast.Ident:
			counts["ident"]++
		}
		return true
	})
	for _, k := range []string{"for", "if", "while", "switch", "matrix"} {
		if counts[k] != 1 {
			t.Errorf("%s visited %d times", k, counts[k])
		}
	}
	if counts["binary"] < 4 || counts["ident"] < 5 || counts["call"] < 1 {
		t.Errorf("counts: %v", counts)
	}
	// early termination
	seen := 0
	ast.Walk(f, func(n ast.Node) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Errorf("walk with false visited %d nodes", seen)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := parse(t, `
function y = f(x)
  v = [1 2 3];
  for i = 1:3
    v(i) = x * i;
  end
  y = sum(v);
end`)
	fn := f.Funcs[0]
	clone := ast.CloneFunction(fn)
	// renaming every identifier in the clone must not affect the original
	ast.WalkStmts(clone.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			x.Name = "zz_" + x.Name
		case *ast.Call:
			x.Name = "zz_" + x.Name
		}
		return true
	})
	tainted := false
	ast.WalkStmts(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if strings.HasPrefix(x.Name, "zz_") {
				tainted = true
			}
		case *ast.Call:
			if strings.HasPrefix(x.Name, "zz_") {
				tainted = true
			}
		}
		return true
	})
	if tainted {
		t.Fatal("clone shares nodes with the original")
	}
	// print equality before mutation (structure preserved)
	f2 := parse(t, `
function y = g(a, b)
  y = a^2 + b';
end`)
	c2 := ast.CloneFunction(f2.Funcs[0])
	if ast.Print(c2) != ast.Print(f2.Funcs[0]) {
		t.Error("clone prints differently")
	}
}

func TestOperatorStringers(t *testing.T) {
	ops := map[ast.BinOp]string{
		ast.OpAdd: "+", ast.OpSub: "-", ast.OpMul: "*", ast.OpDiv: "/",
		ast.OpLDiv: "\\", ast.OpPow: "^", ast.OpEMul: ".*", ast.OpEDiv: "./",
		ast.OpELDiv: ".\\", ast.OpEPow: ".^", ast.OpEq: "==", ast.OpNe: "~=",
		ast.OpLt: "<", ast.OpLe: "<=", ast.OpGt: ">", ast.OpGe: ">=",
		ast.OpAnd: "&", ast.OpOr: "|", ast.OpAndAnd: "&&", ast.OpOrOr: "||",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d prints %q, want %q", op, op.String(), want)
		}
	}
	if !ast.OpLt.IsRelational() || ast.OpAdd.IsRelational() {
		t.Error("IsRelational")
	}
	if !ast.OpAndAnd.IsLogical() || ast.OpMul.IsLogical() {
		t.Error("IsLogical")
	}
}

func TestPrintStatements(t *testing.T) {
	src := `
function [a, b] = f(x)
  global g
  clear tmp
  a = x;
  b = 'str''s';
  if a > 0
    break;
  else
    continue;
  end
  return;
end`
	f := parse(t, src)
	printed := ast.Print(f)
	for _, want := range []string{
		"function [a, b] = f(x)", "global g", "clear tmp", "'str''s'",
		"break;", "continue;", "return;", "else",
	} {
		if !strings.Contains(printed, want) {
			t.Errorf("printed output lacks %q:\n%s", want, printed)
		}
	}
}
