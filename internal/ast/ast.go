// Package ast defines the abstract syntax tree the MaJIC pipeline
// operates on: the parser produces it, the disambiguator and type
// inference annotate it, the inliner rewrites it, and both the
// interpreter and the code generators consume it.
package ast

import "fmt"

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Node is the interface implemented by every AST node.
type Node interface {
	Pos() Pos
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// --- Expressions ----------------------------------------------------------

// NumberLit is a numeric literal. Imag marks imaginary literals (2i).
type NumberLit struct {
	P     Pos
	Value float64
	Imag  bool
	// IsInt records whether the literal was written as an integer, which
	// seeds the intrinsic type lattice at int rather than real.
	IsInt bool
}

// StringLit is a single-quoted character literal.
type StringLit struct {
	P     Pos
	Value string
}

// Ident is a name use. Its meaning (variable, builtin, user function) is
// resolved by the disambiguator and recorded in the symbol table, not in
// the node.
type Ident struct {
	P    Pos
	Name string
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul    // *
	OpDiv    // /
	OpLDiv   // \
	OpPow    // ^
	OpEMul   // .*
	OpEDiv   // ./
	OpELDiv  // .\
	OpEPow   // .^
	OpEq     // ==
	OpNe     // ~=
	OpLt     // <
	OpLe     // <=
	OpGt     // >
	OpGe     // >=
	OpAnd    // &
	OpOr     // |
	OpAndAnd // &&
	OpOrOr   // ||
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpLDiv: "\\",
	OpPow: "^", OpEMul: ".*", OpEDiv: "./", OpELDiv: ".\\", OpEPow: ".^",
	OpEq: "==", OpNe: "~=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&", OpOr: "|", OpAndAnd: "&&", OpOrOr: "||",
}

// String returns the MATLAB spelling of the operator.
func (op BinOp) String() string { return binOpNames[op] }

// IsRelational reports whether op is a comparison.
func (op BinOp) IsRelational() bool { return op >= OpEq && op <= OpGe }

// IsLogical reports whether op is a logical connective.
func (op BinOp) IsLogical() bool { return op >= OpAnd && op <= OpOrOr }

// Binary is a binary operation.
type Binary struct {
	P    Pos
	Op   BinOp
	L, R Expr
}

// UnOp enumerates unary operators.
type UnOp uint8

const (
	OpNeg UnOp = iota // -
	OpPos             // +
	OpNot             // ~
)

func (op UnOp) String() string { return [...]string{"-", "+", "~"}[op] }

// Unary is a unary operation.
type Unary struct {
	P  Pos
	Op UnOp
	X  Expr
}

// Transpose is x' (conjugate) or x.' (plain).
type Transpose struct {
	P         Pos
	X         Expr
	Conjugate bool
}

// Range is lo:hi or lo:step:hi. Step is nil for the two-operand form.
type Range struct {
	P        Pos
	Lo, Step Expr
	Hi       Expr
}

// Colon is the bare ':' subscript magic.
type Colon struct {
	P Pos
}

// End is the 'end' keyword inside a subscript. Dim and NumDims record
// which dimension it refers to (filled by the parser).
type End struct {
	P       Pos
	Dim     int // 0-based subscript position
	NumDims int // total number of subscripts in the enclosing index
}

// Call is the syntactically ambiguous form name(args) or name alone when
// name is not a variable: indexing, builtin call, or user function call.
// The disambiguator decides; Kind records the decision.
type CallKind uint8

const (
	CallUnresolved CallKind = iota
	CallIndex               // variable indexing A(i,j)
	CallBuiltin             // builtin function
	CallUser                // user-defined function
	CallAmbiguous           // defer to runtime (rare; the paper defers these)
)

func (k CallKind) String() string {
	return [...]string{"unresolved", "index", "builtin", "user", "ambiguous"}[k]
}

// Call represents name, name(...), or expr(...) uses.
type Call struct {
	P    Pos
	Name string // callee/array name
	Args []Expr
	Kind CallKind
	// NArgsOut is set for calls in multi-assignment contexts.
	NArgsOut int
}

// Matrix is a bracketed literal [rows; of; elements].
type Matrix struct {
	P    Pos
	Rows [][]Expr
}

// --- Statements -----------------------------------------------------------

// ExprStmt evaluates an expression; Display controls echo of the result
// (no trailing semicolon in the source).
type ExprStmt struct {
	P       Pos
	X       Expr
	Display bool
}

// Assign is lhs = rhs, where lhs is an Ident or an indexing Call.
// For multi-assignment [a,b] = f(...), LHS has several entries.
type Assign struct {
	P       Pos
	LHS     []Expr // Ident or Call (indexed assignment)
	RHS     Expr
	Display bool
}

// If is an if/elseif/else chain; Conds and Blocks are parallel, with an
// optional trailing Else block.
type If struct {
	P      Pos
	Conds  []Expr
	Blocks [][]Stmt
	Else   []Stmt
}

// While is a while loop.
type While struct {
	P    Pos
	Cond Expr
	Body []Stmt
}

// For is for Var = Iter, body, end. Iter is typically a Range; per
// MATLAB, a matrix iterates over columns.
type For struct {
	P    Pos
	Var  string
	Iter Expr
	Body []Stmt
}

// Switch is a switch/case/otherwise statement.
type Switch struct {
	P         Pos
	Subject   Expr
	CaseVals  []Expr
	CaseBlks  [][]Stmt
	Otherwise []Stmt
}

// Break is the break statement.
type Break struct{ P Pos }

// Continue is the continue statement.
type Continue struct{ P Pos }

// Return is the return statement.
type Return struct{ P Pos }

// Global declares global variables (parsed; the engine gives each its
// own binding in the global workspace).
type Global struct {
	P     Pos
	Names []string
}

// Clear resets the workspace (names empty) or specific variables.
type Clear struct {
	P     Pos
	Names []string
}

// --- Functions ------------------------------------------------------------

// Function is one function definition: function [outs] = name(ins).
type Function struct {
	P    Pos
	Name string
	Ins  []string
	Outs []string
	Body []Stmt
	// Source records the original text (used by the repository for
	// change detection) and LineCount the size for the inlining cap.
	Source    string
	LineCount int
}

// File is a parsed source file: either a script (Stmts non-empty) or a
// list of function definitions (first is the primary, rest are local
// subfunctions).
type File struct {
	P     Pos
	Stmts []Stmt
	Funcs []*Function
}

// --- interface plumbing ----------------------------------------------------

func (n *NumberLit) Pos() Pos { return n.P }
func (n *StringLit) Pos() Pos { return n.P }
func (n *Ident) Pos() Pos     { return n.P }
func (n *Binary) Pos() Pos    { return n.P }
func (n *Unary) Pos() Pos     { return n.P }
func (n *Transpose) Pos() Pos { return n.P }
func (n *Range) Pos() Pos     { return n.P }
func (n *Colon) Pos() Pos     { return n.P }
func (n *End) Pos() Pos       { return n.P }
func (n *Call) Pos() Pos      { return n.P }
func (n *Matrix) Pos() Pos    { return n.P }

func (n *NumberLit) exprNode() {}
func (n *StringLit) exprNode() {}
func (n *Ident) exprNode()     {}
func (n *Binary) exprNode()    {}
func (n *Unary) exprNode()     {}
func (n *Transpose) exprNode() {}
func (n *Range) exprNode()     {}
func (n *Colon) exprNode()     {}
func (n *End) exprNode()       {}
func (n *Call) exprNode()      {}
func (n *Matrix) exprNode()    {}

func (n *ExprStmt) Pos() Pos { return n.P }
func (n *Assign) Pos() Pos   { return n.P }
func (n *If) Pos() Pos       { return n.P }
func (n *While) Pos() Pos    { return n.P }
func (n *For) Pos() Pos      { return n.P }
func (n *Switch) Pos() Pos   { return n.P }
func (n *Break) Pos() Pos    { return n.P }
func (n *Continue) Pos() Pos { return n.P }
func (n *Return) Pos() Pos   { return n.P }
func (n *Global) Pos() Pos   { return n.P }
func (n *Clear) Pos() Pos    { return n.P }
func (n *Function) Pos() Pos { return n.P }
func (n *File) Pos() Pos     { return n.P }

func (n *ExprStmt) stmtNode() {}
func (n *Assign) stmtNode()   {}
func (n *If) stmtNode()       {}
func (n *While) stmtNode()    {}
func (n *For) stmtNode()      {}
func (n *Switch) stmtNode()   {}
func (n *Break) stmtNode()    {}
func (n *Continue) stmtNode() {}
func (n *Return) stmtNode()   {}
func (n *Global) stmtNode()   {}
func (n *Clear) stmtNode()    {}
