package ast

import (
	"fmt"
	"strings"
)

// Print renders a node back to MATLAB-like source text. It is used by
// the majicc dump mode and by tests that round-trip the parser.
func Print(n Node) string {
	var b strings.Builder
	fprint(&b, n, 0)
	return b.String()
}

// PrintStmts renders a statement list.
func PrintStmts(stmts []Stmt) string {
	var b strings.Builder
	for _, s := range stmts {
		fprint(&b, s, 0)
	}
	return b.String()
}

func ind(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func fprint(b *strings.Builder, n Node, depth int) {
	switch x := n.(type) {
	case *File:
		for _, s := range x.Stmts {
			fprint(b, s, depth)
		}
		for _, f := range x.Funcs {
			fprint(b, f, depth)
		}
	case *Function:
		ind(b, depth)
		b.WriteString("function ")
		switch len(x.Outs) {
		case 0:
		case 1:
			fmt.Fprintf(b, "%s = ", x.Outs[0])
		default:
			fmt.Fprintf(b, "[%s] = ", strings.Join(x.Outs, ", "))
		}
		fmt.Fprintf(b, "%s(%s)\n", x.Name, strings.Join(x.Ins, ", "))
		for _, s := range x.Body {
			fprint(b, s, depth+1)
		}
		ind(b, depth)
		b.WriteString("end\n")
	case *ExprStmt:
		ind(b, depth)
		b.WriteString(ExprString(x.X))
		if !x.Display {
			b.WriteString(";")
		}
		b.WriteString("\n")
	case *Assign:
		ind(b, depth)
		if len(x.LHS) == 1 {
			b.WriteString(ExprString(x.LHS[0]))
		} else {
			parts := make([]string, len(x.LHS))
			for i, l := range x.LHS {
				parts[i] = ExprString(l)
			}
			fmt.Fprintf(b, "[%s]", strings.Join(parts, ", "))
		}
		b.WriteString(" = ")
		b.WriteString(ExprString(x.RHS))
		if !x.Display {
			b.WriteString(";")
		}
		b.WriteString("\n")
	case *If:
		for i, c := range x.Conds {
			ind(b, depth)
			if i == 0 {
				b.WriteString("if ")
			} else {
				b.WriteString("elseif ")
			}
			b.WriteString(ExprString(c))
			b.WriteString("\n")
			for _, s := range x.Blocks[i] {
				fprint(b, s, depth+1)
			}
		}
		if x.Else != nil {
			ind(b, depth)
			b.WriteString("else\n")
			for _, s := range x.Else {
				fprint(b, s, depth+1)
			}
		}
		ind(b, depth)
		b.WriteString("end\n")
	case *While:
		ind(b, depth)
		fmt.Fprintf(b, "while %s\n", ExprString(x.Cond))
		for _, s := range x.Body {
			fprint(b, s, depth+1)
		}
		ind(b, depth)
		b.WriteString("end\n")
	case *For:
		ind(b, depth)
		fmt.Fprintf(b, "for %s = %s\n", x.Var, ExprString(x.Iter))
		for _, s := range x.Body {
			fprint(b, s, depth+1)
		}
		ind(b, depth)
		b.WriteString("end\n")
	case *Switch:
		ind(b, depth)
		fmt.Fprintf(b, "switch %s\n", ExprString(x.Subject))
		for i, c := range x.CaseVals {
			ind(b, depth+1)
			fmt.Fprintf(b, "case %s\n", ExprString(c))
			for _, s := range x.CaseBlks[i] {
				fprint(b, s, depth+2)
			}
		}
		if x.Otherwise != nil {
			ind(b, depth+1)
			b.WriteString("otherwise\n")
			for _, s := range x.Otherwise {
				fprint(b, s, depth+2)
			}
		}
		ind(b, depth)
		b.WriteString("end\n")
	case *Break:
		ind(b, depth)
		b.WriteString("break;\n")
	case *Continue:
		ind(b, depth)
		b.WriteString("continue;\n")
	case *Return:
		ind(b, depth)
		b.WriteString("return;\n")
	case *Global:
		ind(b, depth)
		fmt.Fprintf(b, "global %s;\n", strings.Join(x.Names, " "))
	case *Clear:
		ind(b, depth)
		if len(x.Names) == 0 {
			b.WriteString("clear;\n")
		} else {
			fmt.Fprintf(b, "clear %s;\n", strings.Join(x.Names, " "))
		}
	default:
		if e, ok := n.(Expr); ok {
			b.WriteString(ExprString(e))
		}
	}
}

// ExprString renders an expression with full parenthesization of
// subexpressions, which keeps the printer trivially correct.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *NumberLit:
		s := trimFloat(x.Value)
		if x.Imag {
			s += "i"
		}
		return s
	case *StringLit:
		return "'" + strings.ReplaceAll(x.Value, "'", "''") + "'"
	case *Ident:
		return x.Name
	case *Binary:
		return "(" + ExprString(x.L) + " " + x.Op.String() + " " + ExprString(x.R) + ")"
	case *Unary:
		return "(" + x.Op.String() + ExprString(x.X) + ")"
	case *Transpose:
		if x.Conjugate {
			return ExprString(x.X) + "'"
		}
		return ExprString(x.X) + ".'"
	case *Range:
		if x.Step != nil {
			return "(" + ExprString(x.Lo) + ":" + ExprString(x.Step) + ":" + ExprString(x.Hi) + ")"
		}
		return "(" + ExprString(x.Lo) + ":" + ExprString(x.Hi) + ")"
	case *Colon:
		return ":"
	case *End:
		return "end"
	case *Call:
		if len(x.Args) == 0 && x.Kind != CallUser && x.Kind != CallBuiltin {
			return x.Name
		}
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = ExprString(a)
		}
		return x.Name + "(" + strings.Join(parts, ", ") + ")"
	case *Matrix:
		rows := make([]string, len(x.Rows))
		for i, row := range x.Rows {
			parts := make([]string, len(row))
			for j, e := range row {
				parts[j] = ExprString(e)
			}
			rows[i] = strings.Join(parts, ", ")
		}
		return "[" + strings.Join(rows, "; ") + "]"
	}
	return fmt.Sprintf("<?expr %T>", e)
}

func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
