package ast

// CloneExpr returns a deep copy of an expression tree.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *NumberLit:
		c := *x
		return &c
	case *StringLit:
		c := *x
		return &c
	case *Ident:
		c := *x
		return &c
	case *Binary:
		return &Binary{P: x.P, Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *Unary:
		return &Unary{P: x.P, Op: x.Op, X: CloneExpr(x.X)}
	case *Transpose:
		return &Transpose{P: x.P, X: CloneExpr(x.X), Conjugate: x.Conjugate}
	case *Range:
		r := &Range{P: x.P, Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi)}
		if x.Step != nil {
			r.Step = CloneExpr(x.Step)
		}
		return r
	case *Colon:
		c := *x
		return &c
	case *End:
		c := *x
		return &c
	case *Call:
		c := &Call{P: x.P, Name: x.Name, Kind: x.Kind, NArgsOut: x.NArgsOut}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *Matrix:
		m := &Matrix{P: x.P}
		for _, row := range x.Rows {
			nr := make([]Expr, len(row))
			for i, e := range row {
				nr[i] = CloneExpr(e)
			}
			m.Rows = append(m.Rows, nr)
		}
		return m
	}
	panic("ast: CloneExpr: unknown node")
}

// CloneStmt returns a deep copy of a statement tree.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *ExprStmt:
		return &ExprStmt{P: x.P, X: CloneExpr(x.X), Display: x.Display}
	case *Assign:
		a := &Assign{P: x.P, RHS: CloneExpr(x.RHS), Display: x.Display}
		for _, l := range x.LHS {
			a.LHS = append(a.LHS, CloneExpr(l))
		}
		return a
	case *If:
		n := &If{P: x.P}
		for i, c := range x.Conds {
			n.Conds = append(n.Conds, CloneExpr(c))
			n.Blocks = append(n.Blocks, CloneStmts(x.Blocks[i]))
		}
		if x.Else != nil {
			n.Else = CloneStmts(x.Else)
		}
		return n
	case *While:
		return &While{P: x.P, Cond: CloneExpr(x.Cond), Body: CloneStmts(x.Body)}
	case *For:
		return &For{P: x.P, Var: x.Var, Iter: CloneExpr(x.Iter), Body: CloneStmts(x.Body)}
	case *Switch:
		n := &Switch{P: x.P, Subject: CloneExpr(x.Subject)}
		for i, c := range x.CaseVals {
			n.CaseVals = append(n.CaseVals, CloneExpr(c))
			n.CaseBlks = append(n.CaseBlks, CloneStmts(x.CaseBlks[i]))
		}
		if x.Otherwise != nil {
			n.Otherwise = CloneStmts(x.Otherwise)
		}
		return n
	case *Break:
		c := *x
		return &c
	case *Continue:
		c := *x
		return &c
	case *Return:
		c := *x
		return &c
	case *Global:
		c := *x
		c.Names = append([]string(nil), x.Names...)
		return &c
	case *Clear:
		c := *x
		c.Names = append([]string(nil), x.Names...)
		return &c
	}
	panic("ast: CloneStmt: unknown node")
}

// CloneStmts deep-copies a statement list.
func CloneStmts(list []Stmt) []Stmt {
	out := make([]Stmt, len(list))
	for i, s := range list {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneFunction deep-copies a function definition.
func CloneFunction(f *Function) *Function {
	return &Function{
		P:         f.P,
		Name:      f.Name,
		Ins:       append([]string(nil), f.Ins...),
		Outs:      append([]string(nil), f.Outs...),
		Body:      CloneStmts(f.Body),
		Source:    f.Source,
		LineCount: f.LineCount,
	}
}
