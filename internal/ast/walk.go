package ast

// Walk traverses the tree rooted at n in depth-first pre-order, calling
// f for each node. If f returns false the node's children are skipped.
func Walk(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	case *Binary:
		Walk(x.L, f)
		Walk(x.R, f)
	case *Unary:
		Walk(x.X, f)
	case *Transpose:
		Walk(x.X, f)
	case *Range:
		Walk(x.Lo, f)
		if x.Step != nil {
			Walk(x.Step, f)
		}
		Walk(x.Hi, f)
	case *Call:
		for _, a := range x.Args {
			Walk(a, f)
		}
	case *Matrix:
		for _, row := range x.Rows {
			for _, e := range row {
				Walk(e, f)
			}
		}
	case *ExprStmt:
		Walk(x.X, f)
	case *Assign:
		for _, l := range x.LHS {
			Walk(l, f)
		}
		Walk(x.RHS, f)
	case *If:
		for i, c := range x.Conds {
			Walk(c, f)
			WalkStmts(x.Blocks[i], f)
		}
		WalkStmts(x.Else, f)
	case *While:
		Walk(x.Cond, f)
		WalkStmts(x.Body, f)
	case *For:
		Walk(x.Iter, f)
		WalkStmts(x.Body, f)
	case *Switch:
		Walk(x.Subject, f)
		for i, c := range x.CaseVals {
			Walk(c, f)
			WalkStmts(x.CaseBlks[i], f)
		}
		WalkStmts(x.Otherwise, f)
	case *Function:
		WalkStmts(x.Body, f)
	case *File:
		WalkStmts(x.Stmts, f)
		for _, fn := range x.Funcs {
			Walk(fn, f)
		}
	}
}

// WalkStmts walks each statement in order.
func WalkStmts(stmts []Stmt, f func(Node) bool) {
	for _, s := range stmts {
		Walk(s, f)
	}
}
