package sparse

import (
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/parallel"
)

// lcg is a tiny deterministic generator so the fixtures are stable
// across runs and platforms.
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(uint64(*r)>>11) / float64(1<<53)
}

// randomCSR builds an m x n CSR matrix with roughly density*m*n stored
// entries (colIdx strictly ascending per row), values in [-1, 1).
func randomCSR(m, n int, density float64, r *lcg) (rowPtr, colIdx []int, val []float64) {
	rowPtr = make([]int, m+1)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if r.next() < density {
				colIdx = append(colIdx, j)
				val = append(val, 2*r.next()-1)
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return
}

// denseToCSR stores EVERY element of a column-major dense matrix,
// zeros included, so SpMV must reproduce Dgemv bit-for-bit.
func denseToCSR(m, n int, a []float64) (rowPtr, colIdx []int, val []float64) {
	rowPtr = make([]int, m+1)
	colIdx = make([]int, 0, m*n)
	val = make([]float64, 0, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			colIdx = append(colIdx, j)
			val = append(val, a[j*m+i])
		}
		rowPtr[i+1] = len(colIdx)
	}
	return
}

func withThreads(t *testing.T, n int, f func()) {
	t.Helper()
	old := parallel.DefaultThreads()
	parallel.SetDefaultThreads(n)
	defer parallel.SetDefaultThreads(old)
	f()
}

func TestSpMVMatchesDenseGemvBitwise(t *testing.T) {
	r := lcg(7)
	const m, n = 57, 43
	a := make([]float64, m*n)
	for i := range a {
		a[i] = 2*r.next() - 1
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 2*r.next() - 1
	}
	y0 := make([]float64, m)
	for i := range y0 {
		y0[i] = 2*r.next() - 1
	}
	rowPtr, colIdx, val := denseToCSR(m, n, a)

	for _, alpha := range []float64{0, 1, -2.5} {
		for _, beta := range []float64{0, 1, 0.5} {
			want := append([]float64(nil), y0...)
			blas.Dgemv(false, m, n, alpha, a, m, x, beta, want)
			got := append([]float64(nil), y0...)
			SpMV(m, rowPtr, colIdx, val, alpha, x, beta, got)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("alpha=%v beta=%v: y[%d] = %v, Dgemv %v", alpha, beta, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSpMVBitIdenticalAcrossThreads(t *testing.T) {
	r := lcg(11)
	const m, n = 3000, 3000
	rowPtr, colIdx, val := randomCSR(m, n, 0.01, &r)
	x := make([]float64, n)
	for i := range x {
		x[i] = 2*r.next() - 1
	}
	var ref []float64
	for _, th := range []int{1, 2, 4, 7} {
		withThreads(t, th, func() {
			y := make([]float64, m)
			SpMV(m, rowPtr, colIdx, val, 1.5, x, 0, y)
			if ref == nil {
				ref = y
				return
			}
			for i := range y {
				if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("threads=%d: y[%d] = %v, want %v", th, i, y[i], ref[i])
				}
			}
		})
	}
}

func TestSpMVStoredZeroPropagatesNaNInf(t *testing.T) {
	// Row 0 stores an explicit zero at column 0; row 1 does not store
	// column 0 at all. x[0] = NaN must poison row 0 (0*NaN = NaN) and
	// leave row 1 untouched — MATLAB's stored-vs-implicit zero rule.
	rowPtr := []int{0, 2, 3}
	colIdx := []int{0, 1, 1}
	val := []float64{0, 2, 2}
	x := []float64{math.NaN(), 3}
	y := make([]float64, 2)
	SpMV(2, rowPtr, colIdx, val, 1, x, 0, y)
	if !math.IsNaN(y[0]) {
		t.Fatalf("stored zero * NaN: y[0] = %v, want NaN", y[0])
	}
	if y[1] != 6 {
		t.Fatalf("implicit zero must not see NaN: y[1] = %v, want 6", y[1])
	}

	x[0] = math.Inf(1)
	SpMV(2, rowPtr, colIdx, val, 1, x, 0, y)
	if !math.IsNaN(y[0]) { // 0*Inf = NaN
		t.Fatalf("stored zero * Inf: y[0] = %v, want NaN", y[0])
	}
	if y[1] != 6 {
		t.Fatalf("implicit zero must not see Inf: y[1] = %v, want 6", y[1])
	}
}

func TestSpMMMatchesColumnwiseSpMV(t *testing.T) {
	r := lcg(23)
	const m, n, p = 64, 48, 5
	rowPtr, colIdx, val := randomCSR(m, n, 0.1, &r)
	b := make([]float64, n*p)
	for i := range b {
		b[i] = 2*r.next() - 1
	}
	c := make([]float64, m*p)
	SpMM(m, rowPtr, colIdx, val, b, n, p, c, m)
	for j := 0; j < p; j++ {
		y := make([]float64, m)
		SpMV(m, rowPtr, colIdx, val, 1, b[j*n:(j+1)*n], 0, y)
		for i := range y {
			if math.Float64bits(c[j*m+i]) != math.Float64bits(y[i]) {
				t.Fatalf("C[%d,%d] = %v, columnwise SpMV %v", i, j, c[j*m+i], y[i])
			}
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	r := lcg(31)
	const m, n = 37, 53
	rowPtr, colIdx, val := randomCSR(m, n, 0.15, &r)
	tp, tc, tv := Transpose(m, n, rowPtr, colIdx, val)
	// Canonical form: strictly ascending colIdx per transposed row.
	for i := 0; i < n; i++ {
		for k := tp[i] + 1; k < tp[i+1]; k++ {
			if tc[k] <= tc[k-1] {
				t.Fatalf("transpose row %d: colIdx not strictly ascending", i)
			}
		}
	}
	bp, bc, bv := Transpose(n, m, tp, tc, tv)
	if len(bc) != len(colIdx) {
		t.Fatalf("double transpose nnz = %d, want %d", len(bc), len(colIdx))
	}
	for i := range rowPtr {
		if bp[i] != rowPtr[i] {
			t.Fatalf("double transpose rowPtr[%d] = %d, want %d", i, bp[i], rowPtr[i])
		}
	}
	for k := range colIdx {
		if bc[k] != colIdx[k] || bv[k] != val[k] {
			t.Fatalf("double transpose entry %d = (%d,%v), want (%d,%v)", k, bc[k], bv[k], colIdx[k], val[k])
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name   string
		rowPtr []int
		colIdx []int
		want   Triangularity
	}{
		{"diagonal", []int{0, 1, 2}, []int{0, 1}, Diagonal},
		{"lower", []int{0, 1, 3}, []int{0, 0, 1}, Lower},
		{"upper", []int{0, 2, 3}, []int{0, 1, 1}, Upper},
		{"general", []int{0, 2, 4}, []int{0, 1, 0, 1}, General},
		// A stored zero below the diagonal still counts as structure.
		{"empty rows", []int{0, 0, 0}, nil, Diagonal},
	}
	for _, c := range cases {
		if got := Classify(len(c.rowPtr)-1, c.rowPtr, c.colIdx); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

// bandedLower builds a unit-ish lower banded system (diag 4, subdiags
// -1) in CSR.
func bandedLower(n, band int) (rowPtr, colIdx []int, val []float64) {
	rowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		for j := i - band; j <= i; j++ {
			if j < 0 {
				continue
			}
			colIdx = append(colIdx, j)
			if j == i {
				val = append(val, 4)
			} else {
				val = append(val, -1)
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return
}

// blockDiagLower builds a block-diagonal lower system (nb blocks of
// size bs) — each block is independent, so the level schedule is wide
// and the parallel path actually engages.
func blockDiagLower(nb, bs int) (rowPtr, colIdx []int, val []float64) {
	n := nb * bs
	rowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		base := (i / bs) * bs
		for j := base; j <= i; j++ {
			colIdx = append(colIdx, j)
			if j == i {
				val = append(val, 3)
			} else {
				val = append(val, -0.5)
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return
}

func refSolveLower(n int, rowPtr, colIdx []int, val []float64, b []float64) []float64 {
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		var diag float64
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if colIdx[k] == i {
				diag = val[k]
				continue
			}
			sum -= val[k] * x[colIdx[k]]
		}
		x[i] = sum / diag
	}
	return x
}

func TestTriSolveLowerMatchesReference(t *testing.T) {
	r := lcg(41)
	const n = 500
	rowPtr, colIdx, val := bandedLower(n, 3)
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*r.next() - 1
	}
	want := refSolveLower(n, rowPtr, colIdx, val, b)
	got, err := TriSolve(n, rowPtr, colIdx, val, true, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("x[%d] = %v, reference %v", i, got[i], want[i])
		}
	}
}

func TestTriSolveUpper(t *testing.T) {
	// Transpose of a lower banded system: solve A' x = b backward and
	// verify by multiplying back.
	const n = 200
	lp, lc, lv := bandedLower(n, 2)
	rowPtr, colIdx, val := Transpose(n, n, lp, lc, lv)
	r := lcg(43)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = 2*r.next() - 1
	}
	b := make([]float64, n)
	SpMV(n, rowPtr, colIdx, val, 1, xTrue, 0, b)
	x, err := TriSolve(n, rowPtr, colIdx, val, false, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestTriSolveBitIdenticalAcrossThreads(t *testing.T) {
	// Block-diagonal: the level schedule is n/bs levels of width bs, so
	// threads > 1 takes the parallel sweep; the result must still match
	// the serial substitution bit-for-bit.
	rowPtr, colIdx, val := blockDiagLower(400, 4)
	n := 400 * 4
	r := lcg(47)
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*r.next() - 1
	}
	var ref []float64
	for _, th := range []int{1, 2, 5} {
		withThreads(t, th, func() {
			x, err := TriSolve(n, rowPtr, colIdx, val, true, b)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = x
				return
			}
			for i := range x {
				if math.Float64bits(x[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("threads=%d: x[%d] = %v, want %v", th, i, x[i], ref[i])
				}
			}
		})
	}
}

func TestTriSolveSingular(t *testing.T) {
	// Zero stored diagonal.
	if _, err := TriSolve(2, []int{0, 1, 2}, []int{0, 1}, []float64{1, 0}, true, []float64{1, 1}); err != ErrSingular {
		t.Errorf("zero diagonal: err = %v, want ErrSingular", err)
	}
	// Missing diagonal.
	if _, err := TriSolve(2, []int{0, 1, 2}, []int{0, 0}, []float64{1, 1}, true, []float64{1, 1}); err != ErrSingular {
		t.Errorf("missing diagonal: err = %v, want ErrSingular", err)
	}
	// Entry on the wrong side of a "lower" solve.
	if _, err := TriSolve(2, []int{0, 2, 3}, []int{0, 1, 1}, []float64{1, 5, 1}, true, []float64{1, 1}); err != ErrSingular {
		t.Errorf("wrong-side entry: err = %v, want ErrSingular", err)
	}
}
