// Package sparse provides the CSR kernel substrate for the sparse value
// representation in internal/mat: sparse matrix-vector product, sparse
// matrix-dense matrix product, structurally triangular solves, and CSR
// transposition. It plays the role blas plays for the dense layer — raw
// slices in, raw slices out, no boxed values — and obeys the same two
// invariants the dense kernels pinned:
//
//   - Results are byte-for-byte identical for every thread count. SpMV
//     partitions rows and each y element accumulates its stored entries
//     in ascending column order, exactly the per-element order
//     blas.Dgemv uses (beta prologue, then += (alpha*x[j])*a_ij with j
//     ascending), so a fully stored CSR row reproduces the dense gemv
//     result bitwise. The triangular solves are level-scheduled: rows
//     within a dependency level are independent, so scheduling cannot
//     change any value.
//   - Stored entries are never skipped, even when the stored value is
//     zero: 0*NaN and 0*Inf contributions must reach the result (IEEE
//     semantics — the same rule that removed the quick-skips from
//     Dgemm/Dgemv). Implicit (unstored) zeros contribute nothing, which
//     is MATLAB's sparse semantics and the one documented divergence
//     from the densified path when x carries NaN/Inf at unstored
//     columns.
//
// A CSR matrix is (m, rowPtr, colIdx, val): rowPtr has m+1 entries,
// row i's entries are k in [rowPtr[i], rowPtr[i+1]), and colIdx is
// strictly ascending within each row (the canonical form internal/mat
// maintains).
package sparse

import (
	"errors"

	"repro/internal/parallel"
)

// ErrSingular reports a zero or missing diagonal in a triangular solve.
var ErrSingular = errors.New("sparse: matrix is singular to working precision")

// spmvGrainFlops matches the dense gemv grain: below ~2^15 flops per
// chunk a partition is not worth scheduling.
const spmvGrainFlops = 1 << 15

// SpMV computes y = alpha*A*x + beta*y for an m-row CSR matrix A.
//
// The per-element accumulation mirrors blas.Dgemv exactly: beta == 0
// stores (never reads y, so y may hold garbage on entry), beta == 1
// starts from y[i] unchanged, any other beta scales y[i] first; then
// each stored entry adds (alpha*x[j]) * a_ij in ascending column
// order. alpha == 0 follows the BLAS convention: A and x are not
// referenced, only the beta prologue applies.
func SpMV(m int, rowPtr, colIdx []int, val []float64, alpha float64, x []float64, beta float64, y []float64) {
	if alpha == 0 {
		for i := 0; i < m; i++ {
			if beta == 0 {
				y[i] = 0
			} else {
				y[i] *= beta
			}
		}
		return
	}
	nnz := rowPtr[m]
	avg := 0
	if m > 0 {
		avg = nnz / m
	}
	grain := 1 + spmvGrainFlops/(2*avg+1)
	parallel.For(0, m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var acc float64
			switch beta {
			case 0:
				acc = 0
			case 1:
				acc = y[i]
			default:
				acc = y[i] * beta
			}
			for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
				t := alpha * x[colIdx[k]]
				acc += t * val[k]
			}
			y[i] = acc
		}
	})
}

// SpMM computes the dense product C = A*B for an m-row CSR matrix A and
// a dense column-major n x p matrix B (ldb >= n), storing into the
// column-major m x p matrix C (ldc >= m). C is fully stored (never
// read), and each element accumulates row i's stored entries in
// ascending column order — the independent-dot-product structure makes
// the result identical for every thread count.
func SpMM(m int, rowPtr, colIdx []int, val []float64, b []float64, ldb, p int, c []float64, ldc int) {
	nnz := rowPtr[m]
	avg := 0
	if m > 0 {
		avg = nnz / m
	}
	grain := 1 + spmvGrainFlops/(2*avg*p+1)
	parallel.For(0, m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < p; j++ {
				col := b[j*ldb:]
				var acc float64
				for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
					acc += val[k] * col[colIdx[k]]
				}
				c[j*ldc+i] = acc
			}
		}
	})
}

// Transpose returns the CSR form of the transpose of the m x n CSR
// matrix A, via a counting sort over columns. Because rows are
// scattered in ascending order, each transposed row's colIdx comes out
// strictly ascending — the canonical form is preserved.
func Transpose(m, n int, rowPtr, colIdx []int, val []float64) (tRowPtr, tColIdx []int, tVal []float64) {
	nnz := rowPtr[m]
	tRowPtr = make([]int, n+1)
	tColIdx = make([]int, nnz)
	tVal = make([]float64, nnz)
	for k := 0; k < nnz; k++ {
		tRowPtr[colIdx[k]+1]++
	}
	for j := 0; j < n; j++ {
		tRowPtr[j+1] += tRowPtr[j]
	}
	next := make([]int, n)
	copy(next, tRowPtr[:n])
	for i := 0; i < m; i++ {
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			j := colIdx[k]
			at := next[j]
			next[j]++
			tColIdx[at] = i
			tVal[at] = val[k]
		}
	}
	return tRowPtr, tColIdx, tVal
}

// Triangularity classifies the structural shape of a CSR matrix by its
// stored pattern (stored zeros count as structure, matching MATLAB's
// istriu/istril on sparse operands).
type Triangularity int

const (
	// General has stored entries on both sides of the diagonal.
	General Triangularity = iota
	// Lower has no stored entries above the diagonal.
	Lower
	// Upper has no stored entries below the diagonal.
	Upper
	// Diagonal has stored entries only on the diagonal.
	Diagonal
)

// Classify scans the pattern once and reports its triangularity.
func Classify(m int, rowPtr, colIdx []int) Triangularity {
	hasLo, hasUp := false, false
	for i := 0; i < m; i++ {
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if colIdx[k] < i {
				hasLo = true
			} else if colIdx[k] > i {
				hasUp = true
			}
		}
		if hasLo && hasUp {
			return General
		}
	}
	switch {
	case hasLo:
		return Lower
	case hasUp:
		return Upper
	default:
		return Diagonal
	}
}

// triGrainRows is the minimum rows per chunk inside one solver level;
// levels narrower than ~2 chunks run inline (banded systems degenerate
// to a fully serial sweep, which is the correct schedule for them).
const triGrainRows = 256

// TriSolve solves A x = b for a structurally triangular n x n CSR
// matrix A (lower true: forward substitution in ascending row order;
// false: backward). The diagonal entry of every row must be stored and
// nonzero, or ErrSingular is returned. b is not modified.
//
// Parallelism is by level scheduling: level(i) = 1 + max level of the
// rows i depends on, so all rows within a level are independent and
// solve concurrently. Each x[i] is produced by the identical
// ascending-column accumulation regardless of the schedule, so results
// are byte-for-byte identical at every thread count.
func TriSolve(n int, rowPtr, colIdx []int, val []float64, lower bool, b []float64) ([]float64, error) {
	x := make([]float64, n)
	// Dependency levels. For banded matrices every row depends on the
	// previous one and maxLevel == n: skip straight to the serial sweep.
	level := make([]int, n)
	maxLevel := 0
	wide := false
	for ii := 0; ii < n; ii++ {
		i := ii
		if !lower {
			i = n - 1 - ii
		}
		lv := 0
		diagAt := -1
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			j := colIdx[k]
			switch {
			case j == i:
				diagAt = k
			case lower && j < i, !lower && j > i:
				if level[j] > lv {
					lv = level[j]
				}
			default:
				return nil, ErrSingular // entry on the wrong side: not triangular
			}
		}
		if diagAt < 0 || val[diagAt] == 0 {
			return nil, ErrSingular
		}
		level[i] = lv + 1
		if lv+1 > maxLevel {
			maxLevel = lv + 1
		}
	}
	if maxLevel*2 < n {
		wide = true
	}

	solveRow := func(i int) {
		var diag float64
		sum := b[i]
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			j := colIdx[k]
			if j == i {
				diag = val[k]
				continue
			}
			sum -= val[k] * x[j]
		}
		x[i] = sum / diag
	}

	if !wide || parallel.DefaultThreads() == 1 {
		// Serial substitution in dependency order.
		if lower {
			for i := 0; i < n; i++ {
				solveRow(i)
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				solveRow(i)
			}
		}
		return x, nil
	}

	// Bucket rows by level (buckets keep ascending row order) and sweep
	// the levels in dependency order, each level row-parallel.
	count := make([]int, maxLevel+1)
	for i := 0; i < n; i++ {
		count[level[i]]++
	}
	start := make([]int, maxLevel+2)
	for l := 1; l <= maxLevel; l++ {
		start[l+1] = start[l] + count[l]
	}
	order := make([]int, n)
	next := make([]int, maxLevel+1)
	copy(next[1:], start[1:maxLevel+1])
	for i := 0; i < n; i++ {
		l := level[i]
		order[next[l]] = i
		next[l]++
	}
	for l := 1; l <= maxLevel; l++ {
		rows := order[start[l]:start[l+1]]
		parallel.For(0, len(rows), triGrainRows, func(lo, hi int) {
			for _, i := range rows[lo:hi] {
				solveRow(i)
			}
		})
	}
	return x, nil
}
