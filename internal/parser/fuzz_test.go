package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser random token soup: it must
// return an error or an AST, never crash. (Go's native fuzzing is
// unavailable offline, so this is a deterministic mini-fuzzer.)
func TestParserNeverPanics(t *testing.T) {
	pieces := []string{
		"x", "y", "foo", "if", "else", "elseif", "end", "for", "while",
		"function", "return", "break", "continue", "switch", "case",
		"otherwise", "global", "clear",
		"1", "2.5", "1e3", "3i", "'str'", "'it''s'",
		"+", "-", "*", "/", "\\", "^", ".*", "./", ".^", "'", ".'",
		"==", "~=", "<", "<=", ">", ">=", "&", "|", "&&", "||", "~",
		"(", ")", "[", "]", ",", ";", ":", "=", "\n", " ", "...",
		"%comment", "@",
	}
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3000; trial++ {
		var b strings.Builder
		n := 1 + r.Intn(30)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
			if r.Intn(3) == 0 {
				b.WriteByte(' ')
			}
		}
		src := b.String()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("parser panicked on %q: %v", src, rec)
				}
			}()
			_, _ = Parse(src) // error or AST; both fine
		}()
	}
}

// TestParserNeverPanicsOnBytes pushes raw byte noise through.
func TestParserNeverPanicsOnBytes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := r.Intn(60)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(r.Intn(128))
		}
		src := string(buf)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("parser panicked on %q: %v", src, rec)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestParseExprNeverPanics covers the expression entry point too.
func TestParseExprNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	pieces := []string{"x", "1", "(", ")", "[", "]", "+", "*", ":", "end", "'s'", "'", ",", "-"}
	for trial := 0; trial < 3000; trial++ {
		var b strings.Builder
		for i := 0; i < 1+r.Intn(12); i++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
		}
		src := b.String()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("ParseExpr panicked on %q: %v", src, rec)
				}
			}()
			_, _ = ParseExpr(src)
		}()
	}
}
