package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func parseExprString(t *testing.T, src string) string {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return ast.ExprString(e)
}

// Golden-style precedence tests: the printer fully parenthesizes, so
// the output pins the parse tree.
func TestPrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2*3":     "(1 + (2 * 3))",
		"(1 + 2)*3":   "((1 + 2) * 3)",
		"2^3^2":       "((2 ^ 3) ^ 2)", // left-assoc in MATLAB
		"-2^2":        "(-(2 ^ 2))",
		"2^-3":        "(2 ^ (-3))",
		"a < b + 1":   "(a < (b + 1))",
		"a & b | c":   "((a & b) | c)",
		"~a & b":      "((~a) & b)",
		"a && b || c": "((a && b) || c)",
		"1:2:10":      "(1:2:10)",
		"1:n+1":       "(1:(n + 1))",
		"a*b'":        "(a * b')",
		"a'*b":        "(a' * b)",
		"2*a(1)":      "(2 * a(1))",
		"x == y ~= z": "((x == y) ~= z)",
		"a/b*c":       "((a / b) * c)",
		"a\\b":        "(a \\ b)",
		"a.^2.'":      "(a .^ 2.')",
		"3 - - 2":     "(3 - (-2))",
		"x(end)":      "x(end)",
		"x(end-1)":    "x((end - 1))",
		"A(2, :)":     "A(2, :)",
		"f(g(h(1)))":  "f(g(h(1)))",
		"[1 2; 3 4]":  "[1, 2; 3, 4]",
		"[1 -2]":      "[1, (-2)]",
		"[1 - 2]":     "[(1 - 2)]",
		"[1-2]":       "[(1 - 2)]",
		"[a' b]":      "[a', b]",
		"[x, -y]":     "[x, (-y)]",
		"2.5e2 + .25": "(250 + 0.25)",
		"x.*y + z":    "((x .* y) + z)",
	}
	for src, want := range cases {
		if got := parseExprString(t, src); got != want {
			t.Errorf("%q parsed as %s, want %s", src, got, want)
		}
	}
}

func TestImaginaryLiterals(t *testing.T) {
	e, err := ParseExpr("2 + 3i")
	if err != nil {
		t.Fatal(err)
	}
	bin := e.(*ast.Binary)
	im := bin.R.(*ast.NumberLit)
	if !im.Imag || im.Value != 3 {
		t.Fatalf("3i parsed as %+v", im)
	}
}

func TestIntLiteralFlag(t *testing.T) {
	n := func(src string) *ast.NumberLit {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		return e.(*ast.NumberLit)
	}
	if !n("42").IsInt {
		t.Error("42 must be an int literal")
	}
	if n("42.0").IsInt {
		t.Error("42.0 must not be an int literal")
	}
	if n("1e3").IsInt {
		t.Error("1e3 must not be an int literal")
	}
}

func TestStatements(t *testing.T) {
	src := `
x = 1;
y = 2
if x > 0
  z = 1;
elseif x < 0
  z = 2;
else
  z = 3;
end
while x < 10, x = x + 1; end
for i = 1:10
  s = i;
end
switch x
case 1
  a = 1;
otherwise
  a = 2;
end
break
continue
return
global g1 g2
clear x y
`
	// break/continue outside loops parse fine; execution rejects them.
	file, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Stmts) != 11 {
		t.Fatalf("got %d statements", len(file.Stmts))
	}
	if a, ok := file.Stmts[0].(*ast.Assign); !ok || a.Display {
		t.Error("x = 1; must be a suppressed assignment")
	}
	if a, ok := file.Stmts[1].(*ast.Assign); !ok || !a.Display {
		t.Error("y = 2 without semicolon must display")
	}
	g := file.Stmts[9].(*ast.Global)
	if len(g.Names) != 2 || g.Names[0] != "g1" {
		t.Errorf("global: %+v", g)
	}
}

func TestFunctions(t *testing.T) {
	src := `
function y = f(x)
  y = x;
end

function [a, b] = two(p, q)
  a = p;
  b = q;
end

function noout(x)
  disp(x);
end

function r = noargs
  r = 1;
end
`
	file, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Funcs) != 4 {
		t.Fatalf("got %d functions", len(file.Funcs))
	}
	f := file.Funcs[0]
	if f.Name != "f" || len(f.Ins) != 1 || len(f.Outs) != 1 {
		t.Errorf("f: %+v", f)
	}
	two := file.Funcs[1]
	if len(two.Outs) != 2 || two.Outs[1] != "b" {
		t.Errorf("two: %+v", two)
	}
	if len(file.Funcs[2].Outs) != 0 {
		t.Error("noout must have no outputs")
	}
	if file.Funcs[3].Name != "noargs" || len(file.Funcs[3].Ins) != 0 {
		t.Errorf("noargs: %+v", file.Funcs[3])
	}
}

func TestFunctionsWithoutEnd(t *testing.T) {
	// classic MATLAB files separate functions without closing 'end'
	src := `
function y = a(x)
  y = x + 1;

function y = b(x)
  y = x + 2;
`
	file, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Funcs) != 2 || file.Funcs[1].Name != "b" {
		t.Fatalf("funcs: %d", len(file.Funcs))
	}
}

func TestMultiAssign(t *testing.T) {
	file, err := Parse("[a, b] = size(x);")
	if err != nil {
		t.Fatal(err)
	}
	as := file.Stmts[0].(*ast.Assign)
	if len(as.LHS) != 2 {
		t.Fatalf("LHS: %d", len(as.LHS))
	}
	call := as.RHS.(*ast.Call)
	if call.NArgsOut != 2 {
		t.Errorf("NArgsOut = %d", call.NArgsOut)
	}
	// indexed target in multi-assignment
	file, err = Parse("[v(1), w] = size(x);")
	if err != nil {
		t.Fatal(err)
	}
	as = file.Stmts[0].(*ast.Assign)
	if _, ok := as.LHS[0].(*ast.Call); !ok {
		t.Error("v(1) target must parse as a Call")
	}
	// matrix literal on its own is NOT a multi-assignment
	file, err = Parse("[1, 2] == 3;")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := file.Stmts[0].(*ast.ExprStmt); !ok {
		t.Error("[1,2] == 3 must be an expression statement")
	}
}

func TestEndResolution(t *testing.T) {
	e, err := ParseExpr("A(end, end-1)")
	if err != nil {
		t.Fatal(err)
	}
	call := e.(*ast.Call)
	end0 := call.Args[0].(*ast.End)
	if end0.Dim != 0 || end0.NumDims != 2 {
		t.Errorf("first end: dim=%d ndims=%d", end0.Dim, end0.NumDims)
	}
	bin := call.Args[1].(*ast.Binary)
	end1 := bin.L.(*ast.End)
	if end1.Dim != 1 || end1.NumDims != 2 {
		t.Errorf("second end: dim=%d ndims=%d", end1.Dim, end1.NumDims)
	}
	// nested: inner end belongs to the inner call
	e, err = ParseExpr("A(B(end))")
	if err != nil {
		t.Fatal(err)
	}
	inner := e.(*ast.Call).Args[0].(*ast.Call)
	ie := inner.Args[0].(*ast.End)
	if ie.NumDims != 1 {
		t.Errorf("inner end ndims=%d", ie.NumDims)
	}
}

func TestMatrixRows(t *testing.T) {
	e, err := ParseExpr("[1 2 3; 4 5 6]")
	if err != nil {
		t.Fatal(err)
	}
	m := e.(*ast.Matrix)
	if len(m.Rows) != 2 || len(m.Rows[0]) != 3 {
		t.Fatalf("rows: %d x %d", len(m.Rows), len(m.Rows[0]))
	}
	// newline inside brackets separates rows
	file, err := Parse("A = [1 2\n3 4];")
	if err != nil {
		t.Fatal(err)
	}
	m = file.Stmts[0].(*ast.Assign).RHS.(*ast.Matrix)
	if len(m.Rows) != 2 {
		t.Fatalf("newline row split: %d rows", len(m.Rows))
	}
	// empty matrix
	e, err = ParseExpr("[]")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.(*ast.Matrix).Rows) != 0 {
		t.Error("[] must have no rows")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"x = ;",
		"if x",            // unterminated
		"for i = 1:3",     // unterminated
		"x = (1 + 2;",     // unbalanced
		"x = [1, 2;",      // unterminated literal
		"1 = x;",          // bad lvalue
		"function = f(x)", // malformed
		"x = a b;",        // juxtaposition outside brackets
		"end",             // stray end
		"else",            // stray else
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCommandsWithCommas(t *testing.T) {
	// MATLAB allows comma-terminated clauses
	src := "for p = 1:3, x = p; end"
	file, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := file.Stmts[0].(*ast.For)
	if f.Var != "p" || len(f.Body) != 1 {
		t.Errorf("for: %+v", f)
	}
}

func TestRoundTripBenchStyle(t *testing.T) {
	// A representative chunk of benchmark-style code must round-trip
	// through the printer and reparse to the same rendering.
	src := `
function s = demo(n)
  U = zeros(n, n);
  for i = 2:n-1
    for j = 2:n-1
      U(i,j) = 0.25*(U(i-1,j) + U(i+1,j) + U(i,j-1) + U(i,j+1));
    end
  end
  s = 0;
  while s < 10 && n > 0
    s = s + U(1,1) + 1;
  end
end
`
	f1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.Print(f1)
	f2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of printed source failed: %v\n%s", err, printed)
	}
	if p2 := ast.Print(f2); p2 != printed {
		t.Errorf("print not stable:\n%s\nvs\n%s", printed, p2)
	}
	if !strings.Contains(printed, "function s = demo(n)") {
		t.Errorf("header lost:\n%s", printed)
	}
}
