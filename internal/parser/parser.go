// Package parser implements a recursive-descent parser for the MATLAB
// subset MaJIC supports. It produces the AST of package ast and follows
// MATLAB's operator precedence, the space-sensitivity rules inside
// matrix literals, and the 'end' subscript magic.
package parser

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/lexer"
)

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

type parser struct {
	toks []lexer.Token
	pos  int
	// matrixDepth > 0 while parsing a [...] literal (space separates
	// elements); parenDepth tracks nesting of () inside the literal,
	// where space is insignificant again.
	matrixDepth int
	parenDepth  []int
	// endDims carries the subscript context for the 'end' keyword.
	endDims []endCtx
}

type endCtx struct {
	dim     int
	numDims int // filled when the subscript list is complete; -1 = unknown yet
}

// Parse parses a full source file (script statements and/or functions).
func Parse(src string) (*ast.File, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	file := &ast.File{P: ast.Pos{Line: 1, Col: 1}}
	p.skipTerms()
	for !p.at(lexer.EOF) {
		if p.atKeyword("function") {
			fn, err := p.function(src)
			if err != nil {
				return nil, err
			}
			file.Funcs = append(file.Funcs, fn)
		} else {
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			if s != nil {
				file.Stmts = append(file.Stmts, s)
			}
		}
		p.skipTerms()
	}
	return file, nil
}

// ParseExpr parses a single expression (REPL convenience).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipTerms()
	if !p.at(lexer.EOF) {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *parser) next() lexer.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) peekAt(off int) lexer.Token {
	i := p.pos + off
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[i]
}

func (p *parser) at(k lexer.Kind) bool { return p.cur().Kind == k }

func (p *parser) atKeyword(words ...string) bool {
	if p.cur().Kind != lexer.Keyword {
		return false
	}
	for _, w := range words {
		if p.cur().Text == w {
			return true
		}
	}
	return false
}

func (p *parser) eat(k lexer.Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return lexer.Token{}, p.errf("expected %s, got %s", k, p.cur())
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) posOf(t lexer.Token) ast.Pos { return ast.Pos{Line: t.Line, Col: t.Col} }

// skipTerms consumes statement terminators (newlines, semicolons, commas).
func (p *parser) skipTerms() {
	for p.at(lexer.Newline) || p.at(lexer.Semicolon) || p.at(lexer.Comma) {
		p.pos++
	}
}

// --- functions --------------------------------------------------------------

func (p *parser) function(fullSrc string) (*ast.Function, error) {
	start := p.cur()
	p.next() // 'function'
	fn := &ast.Function{P: p.posOf(start)}

	// Forms:
	//   function name
	//   function name(ins)
	//   function out = name(ins)
	//   function [o1,o2] = name(ins)
	if p.at(lexer.LBracket) {
		p.next()
		for !p.at(lexer.RBracket) {
			t, err := p.expect(lexer.Ident)
			if err != nil {
				return nil, err
			}
			fn.Outs = append(fn.Outs, t.Text)
			p.eat(lexer.Comma)
		}
		p.next() // ]
		if _, err := p.expect(lexer.Assign); err != nil {
			return nil, err
		}
		t, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		fn.Name = t.Text
	} else {
		t, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		if p.at(lexer.Assign) {
			fn.Outs = []string{t.Text}
			p.next()
			t2, err := p.expect(lexer.Ident)
			if err != nil {
				return nil, err
			}
			fn.Name = t2.Text
		} else {
			fn.Name = t.Text
		}
	}
	if p.eat(lexer.LParen) {
		for !p.at(lexer.RParen) {
			t, err := p.expect(lexer.Ident)
			if err != nil {
				return nil, err
			}
			fn.Ins = append(fn.Ins, t.Text)
			p.eat(lexer.Comma)
		}
		p.next() // )
	}
	p.skipTerms()
	body, err := p.block("end", "function")
	if err != nil {
		return nil, err
	}
	fn.Body = body
	// Functions may be terminated by 'end' or by the next 'function' /
	// EOF (classic MATLAB files have no closing end).
	if p.atKeyword("end") {
		p.next()
	}
	fn.LineCount = countFunctionLines(body)
	fn.Source = fullSrc
	return fn, nil
}

// countFunctionLines approximates the paper's "lines of code" inlining
// metric by counting statements recursively.
func countFunctionLines(body []ast.Stmt) int {
	n := 0
	ast.WalkStmts(body, func(node ast.Node) bool {
		if _, ok := node.(ast.Stmt); ok {
			n++
		}
		return true
	})
	return n
}

// block parses statements until one of the stop keywords is at the front
// (not consumed). stops are keyword texts; "function" and EOF always stop.
func (p *parser) block(stops ...string) ([]ast.Stmt, error) {
	var out []ast.Stmt
	p.skipTerms()
	for {
		if p.at(lexer.EOF) || p.atKeyword(stops...) || p.atKeyword("function") {
			return out, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
		p.skipTerms()
	}
}

// --- statements --------------------------------------------------------------

func (p *parser) statement() (ast.Stmt, error) {
	t := p.cur()
	if t.Kind == lexer.Keyword {
		switch t.Text {
		case "if":
			return p.ifStmt()
		case "while":
			return p.whileStmt()
		case "for":
			return p.forStmt()
		case "switch":
			return p.switchStmt()
		case "break":
			p.next()
			p.eatSemi()
			return &ast.Break{P: p.posOf(t)}, nil
		case "continue":
			p.next()
			p.eatSemi()
			return &ast.Continue{P: p.posOf(t)}, nil
		case "return":
			p.next()
			p.eatSemi()
			return &ast.Return{P: p.posOf(t)}, nil
		case "global":
			p.next()
			var names []string
			for p.at(lexer.Ident) {
				names = append(names, p.next().Text)
				p.eat(lexer.Comma)
			}
			p.eatSemi()
			return &ast.Global{P: p.posOf(t), Names: names}, nil
		case "clear":
			p.next()
			var names []string
			for p.at(lexer.Ident) {
				names = append(names, p.next().Text)
				p.eat(lexer.Comma)
			}
			p.eatSemi()
			return &ast.Clear{P: p.posOf(t), Names: names}, nil
		case "end", "else", "elseif", "case", "otherwise":
			return nil, p.errf("unexpected %q", t.Text)
		}
	}
	return p.simpleStmt()
}

// eatSemi consumes one optional statement terminator, recording display
// suppression. Returns true if a semicolon was present.
func (p *parser) eatSemi() bool {
	if p.at(lexer.Semicolon) {
		p.pos++
		return true
	}
	return false
}

// simpleStmt parses assignment or expression statements.
func (p *parser) simpleStmt() (ast.Stmt, error) {
	start := p.cur()

	// Multi-assignment: [a, b] = f(...). Distinguish from a matrix-literal
	// expression statement by scanning for `] =` at bracket depth 0.
	if p.at(lexer.LBracket) && p.isMultiAssign() {
		return p.multiAssign()
	}

	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.at(lexer.Assign) {
		if !isAssignable(e) {
			return nil, p.errf("invalid assignment target")
		}
		p.next()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		display := !p.eatSemi()
		if display {
			if err := p.requireTerm(); err != nil {
				return nil, err
			}
		}
		return &ast.Assign{P: p.posOf(start), LHS: []ast.Expr{e}, RHS: rhs, Display: display}, nil
	}
	display := !p.eatSemi()
	if display {
		if err := p.requireTerm(); err != nil {
			return nil, err
		}
	}
	return &ast.ExprStmt{P: p.posOf(start), X: e, Display: display}, nil
}

// requireTerm checks that a simple statement is properly terminated:
// MATLAB rejects juxtapositions like "x = a b".
func (p *parser) requireTerm() error {
	switch p.cur().Kind {
	case lexer.Newline, lexer.Semicolon, lexer.Comma, lexer.EOF:
		return nil
	case lexer.Keyword:
		switch p.cur().Text {
		case "end", "else", "elseif", "case", "otherwise", "function":
			return nil
		}
	}
	return p.errf("unexpected %s after statement", p.cur())
}

func isAssignable(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return true
	case *ast.Call:
		// A(i) = ... — indexing assignment; the callee must be a name.
		return x.Name != ""
	}
	return false
}

// isMultiAssign looks ahead from a '[' for the pattern [ ... ] = that is
// not ==.
func (p *parser) isMultiAssign() bool {
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		switch p.toks[i].Kind {
		case lexer.LBracket, lexer.LParen:
			depth++
		case lexer.RBracket, lexer.RParen:
			depth--
			if depth == 0 {
				return p.toks[i+1].Kind == lexer.Assign
			}
		case lexer.Newline, lexer.EOF:
			return false
		}
	}
	return false
}

func (p *parser) multiAssign() (ast.Stmt, error) {
	start := p.cur()
	p.next() // [
	var lhs []ast.Expr
	for !p.at(lexer.RBracket) {
		e, err := p.postfixExpr()
		if err != nil {
			return nil, err
		}
		if !isAssignable(e) {
			return nil, p.errf("invalid assignment target in multi-assignment")
		}
		lhs = append(lhs, e)
		p.eat(lexer.Comma)
	}
	p.next() // ]
	if _, err := p.expect(lexer.Assign); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if call, ok := rhs.(*ast.Call); ok {
		call.NArgsOut = len(lhs)
	}
	display := !p.eatSemi()
	return &ast.Assign{P: p.posOf(start), LHS: lhs, RHS: rhs, Display: display}, nil
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	start := p.next() // if
	node := &ast.If{P: p.posOf(start)}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	node.Conds = append(node.Conds, cond)
	blk, err := p.block("end", "else", "elseif")
	if err != nil {
		return nil, err
	}
	node.Blocks = append(node.Blocks, blk)
	for p.atKeyword("elseif") {
		p.next()
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		b, err := p.block("end", "else", "elseif")
		if err != nil {
			return nil, err
		}
		node.Conds = append(node.Conds, c)
		node.Blocks = append(node.Blocks, b)
	}
	if p.atKeyword("else") {
		p.next()
		b, err := p.block("end")
		if err != nil {
			return nil, err
		}
		if b == nil {
			b = []ast.Stmt{}
		}
		node.Else = b
	}
	if !p.atKeyword("end") {
		return nil, p.errf("expected 'end' to close if")
	}
	p.next()
	p.eatSemi()
	return node, nil
}

func (p *parser) whileStmt() (ast.Stmt, error) {
	start := p.next() // while
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block("end")
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("end") {
		return nil, p.errf("expected 'end' to close while")
	}
	p.next()
	p.eatSemi()
	return &ast.While{P: p.posOf(start), Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (ast.Stmt, error) {
	start := p.next() // for
	v, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Assign); err != nil {
		return nil, err
	}
	iter, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block("end")
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("end") {
		return nil, p.errf("expected 'end' to close for")
	}
	p.next()
	p.eatSemi()
	return &ast.For{P: p.posOf(start), Var: v.Text, Iter: iter, Body: body}, nil
}

func (p *parser) switchStmt() (ast.Stmt, error) {
	start := p.next() // switch
	subj, err := p.expr()
	if err != nil {
		return nil, err
	}
	node := &ast.Switch{P: p.posOf(start), Subject: subj}
	p.skipTerms()
	for p.atKeyword("case") {
		p.next()
		cv, err := p.expr()
		if err != nil {
			return nil, err
		}
		blk, err := p.block("end", "case", "otherwise")
		if err != nil {
			return nil, err
		}
		node.CaseVals = append(node.CaseVals, cv)
		node.CaseBlks = append(node.CaseBlks, blk)
	}
	if p.atKeyword("otherwise") {
		p.next()
		blk, err := p.block("end")
		if err != nil {
			return nil, err
		}
		if blk == nil {
			blk = []ast.Stmt{}
		}
		node.Otherwise = blk
	}
	if !p.atKeyword("end") {
		return nil, p.errf("expected 'end' to close switch")
	}
	p.next()
	p.eatSemi()
	return node, nil
}

// --- expressions -------------------------------------------------------------
//
// Precedence (low to high), per MATLAB:
//   ||  &&  |  &  relational  :  + -  * / \ .* ./ .\  unary  ^ .^ ' .'

func (p *parser) expr() (ast.Expr, error) { return p.orOr() }

func (p *parser) binaryLevel(sub func() (ast.Expr, error), ops map[lexer.Kind]ast.BinOp) (ast.Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := ops[p.cur().Kind]
		if !ok {
			return l, nil
		}
		t := p.next()
		r, err := sub()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{P: p.posOf(t), Op: op, L: l, R: r}
	}
}

func (p *parser) orOr() (ast.Expr, error) {
	return p.binaryLevel(p.andAnd, map[lexer.Kind]ast.BinOp{lexer.OrOr: ast.OpOrOr})
}

func (p *parser) andAnd() (ast.Expr, error) {
	return p.binaryLevel(p.orExpr, map[lexer.Kind]ast.BinOp{lexer.AndAnd: ast.OpAndAnd})
}

func (p *parser) orExpr() (ast.Expr, error) {
	return p.binaryLevel(p.andExpr, map[lexer.Kind]ast.BinOp{lexer.Or: ast.OpOr})
}

func (p *parser) andExpr() (ast.Expr, error) {
	return p.binaryLevel(p.relational, map[lexer.Kind]ast.BinOp{lexer.And: ast.OpAnd})
}

func (p *parser) relational() (ast.Expr, error) {
	return p.binaryLevel(p.rangeExpr, map[lexer.Kind]ast.BinOp{
		lexer.Eq: ast.OpEq, lexer.Ne: ast.OpNe, lexer.Lt: ast.OpLt,
		lexer.Le: ast.OpLe, lexer.Gt: ast.OpGt, lexer.Ge: ast.OpGe,
	})
}

// rangeExpr parses a:b and a:s:b. The colon here is the range operator;
// the bare-colon subscript case is handled in argument parsing.
func (p *parser) rangeExpr() (ast.Expr, error) {
	lo, err := p.additive()
	if err != nil {
		return nil, err
	}
	if !p.at(lexer.Colon) {
		return lo, nil
	}
	t := p.next()
	mid, err := p.additive()
	if err != nil {
		return nil, err
	}
	if p.at(lexer.Colon) {
		p.next()
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &ast.Range{P: p.posOf(t), Lo: lo, Step: mid, Hi: hi}, nil
	}
	return &ast.Range{P: p.posOf(t), Lo: lo, Hi: mid}, nil
}

func (p *parser) additive() (ast.Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		if k != lexer.Plus && k != lexer.Minus {
			return l, nil
		}
		// Inside a matrix literal, `space +/- nonspace` means a new
		// element (unary sign), not a binary operator.
		if p.inMatrix() && p.cur().SpaceBefore && !p.peekAt(1).SpaceBefore {
			return l, nil
		}
		t := p.next()
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		op := ast.OpAdd
		if k == lexer.Minus {
			op = ast.OpSub
		}
		l = &ast.Binary{P: p.posOf(t), Op: op, L: l, R: r}
	}
}

func (p *parser) multiplicative() (ast.Expr, error) {
	return p.binaryLevel(p.unary, map[lexer.Kind]ast.BinOp{
		lexer.Star: ast.OpMul, lexer.Slash: ast.OpDiv, lexer.BSlash: ast.OpLDiv,
		lexer.DotStar: ast.OpEMul, lexer.DotSlash: ast.OpEDiv, lexer.DotBSlash: ast.OpELDiv,
	})
}

func (p *parser) unary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.Minus:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{P: p.posOf(t), Op: ast.OpNeg, X: x}, nil
	case lexer.Plus:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{P: p.posOf(t), Op: ast.OpPos, X: x}, nil
	case lexer.Not:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{P: p.posOf(t), Op: ast.OpNot, X: x}, nil
	}
	return p.power()
}

// power parses ^ and .^ which bind tighter than unary minus and are
// left-associative in MATLAB; the exponent may itself carry unary signs
// (2^-3 is legal).
func (p *parser) power() (ast.Expr, error) {
	l, err := p.postfixExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		if k != lexer.Caret && k != lexer.DotCaret {
			return l, nil
		}
		t := p.next()
		// allow signed exponent
		var r ast.Expr
		if p.at(lexer.Minus) || p.at(lexer.Plus) {
			st := p.next()
			x, err := p.postfixExpr()
			if err != nil {
				return nil, err
			}
			op := ast.OpPos
			if st.Kind == lexer.Minus {
				op = ast.OpNeg
			}
			r = &ast.Unary{P: p.posOf(st), Op: op, X: x}
		} else {
			x, err := p.postfixExpr()
			if err != nil {
				return nil, err
			}
			r = x
		}
		op := ast.OpPow
		if k == lexer.DotCaret {
			op = ast.OpEPow
		}
		l = &ast.Binary{P: p.posOf(t), Op: op, L: l, R: r}
	}
}

// postfixExpr parses a primary followed by transpose and call/index
// suffixes.
func (p *parser) postfixExpr() (ast.Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(lexer.Quote):
			t := p.next()
			e = &ast.Transpose{P: p.posOf(t), X: e, Conjugate: true}
		case p.at(lexer.DotQuote):
			t := p.next()
			e = &ast.Transpose{P: p.posOf(t), X: e, Conjugate: false}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.Number:
		p.next()
		imag := strings.HasSuffix(t.Text, "i") || strings.HasSuffix(t.Text, "j")
		isInt := !imag && !strings.ContainsAny(t.Text, ".eE")
		return &ast.NumberLit{P: p.posOf(t), Value: t.Num, Imag: imag, IsInt: isInt}, nil
	case lexer.Str:
		p.next()
		return &ast.StringLit{P: p.posOf(t), Value: t.Text}, nil
	case lexer.Ident:
		p.next()
		if p.at(lexer.LParen) {
			args, err := p.argList(t)
			if err != nil {
				return nil, err
			}
			return &ast.Call{P: p.posOf(t), Name: t.Text, Args: args}, nil
		}
		return &ast.Ident{P: p.posOf(t), Name: t.Text}, nil
	case lexer.LParen:
		p.next()
		p.pushParen()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.popParen()
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return e, nil
	case lexer.LBracket:
		return p.matrixLit()
	case lexer.Keyword:
		if t.Text == "end" && len(p.endDims) > 0 {
			p.next()
			ctx := p.endDims[len(p.endDims)-1]
			return &ast.End{P: p.posOf(t), Dim: ctx.dim, NumDims: ctx.numDims}, nil
		}
	}
	return nil, p.errf("unexpected %s in expression", t)
}

// argList parses the parenthesized argument/subscript list after a name.
// Bare ':' arguments become Colon nodes; 'end' is legal inside.
func (p *parser) argList(nameTok lexer.Token) ([]ast.Expr, error) {
	p.next() // (
	p.pushParen()
	defer p.popParen()
	var args []ast.Expr
	if p.at(lexer.RParen) {
		p.next()
		return args, nil
	}
	for {
		p.endDims = append(p.endDims, endCtx{dim: len(args), numDims: -1})
		var a ast.Expr
		var err error
		if p.at(lexer.Colon) && (p.peekAt(1).Kind == lexer.Comma || p.peekAt(1).Kind == lexer.RParen) {
			t := p.next()
			a = &ast.Colon{P: p.posOf(t)}
		} else {
			a, err = p.expr()
		}
		p.endDims = p.endDims[:len(p.endDims)-1]
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.eat(lexer.Comma) {
			continue
		}
		break
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	// Fill NumDims on End nodes now that the arity is known.
	for i, a := range args {
		dim := i
		ast.Walk(a, func(n ast.Node) bool {
			if e, ok := n.(*ast.End); ok && e.NumDims == -1 {
				e.Dim = dim
				e.NumDims = len(args)
			}
			// Do not descend into nested calls: their own arg parsing
			// already resolved their End nodes.
			_, isCall := n.(*ast.Call)
			return !isCall || n == a
		})
	}
	return args, nil
}

// matrixLit parses [ ... ; ... ]. Inside, space and comma separate
// elements, semicolon and newline separate rows.
func (p *parser) matrixLit() (ast.Expr, error) {
	t := p.next() // [
	p.matrixDepth++
	defer func() { p.matrixDepth-- }()
	m := &ast.Matrix{P: p.posOf(t)}
	var row []ast.Expr
	flushRow := func() {
		if len(row) > 0 {
			m.Rows = append(m.Rows, row)
			row = nil
		}
	}
	for {
		switch {
		case p.at(lexer.RBracket):
			p.next()
			flushRow()
			return m, nil
		case p.at(lexer.EOF):
			return nil, p.errf("unterminated matrix literal")
		case p.at(lexer.Semicolon) || p.at(lexer.Newline):
			p.next()
			flushRow()
		case p.at(lexer.Comma):
			p.next()
		default:
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
		}
	}
}

// inMatrix reports whether we are directly inside a matrix literal (not
// inside parentheses nested within it).
func (p *parser) inMatrix() bool {
	if p.matrixDepth == 0 {
		return false
	}
	return len(p.parenDepth) == 0 || p.parenDepth[len(p.parenDepth)-1] < p.matrixDepth
}

func (p *parser) pushParen() { p.parenDepth = append(p.parenDepth, p.matrixDepth) }
func (p *parser) popParen()  { p.parenDepth = p.parenDepth[:len(p.parenDepth)-1] }
