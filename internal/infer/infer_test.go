package infer

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/disambig"
	"repro/internal/parser"
	"repro/internal/types"
)

func inferFn(t *testing.T, src string, params map[string]types.Type) (*Result, *ast.Function) {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := file.Funcs[0]
	g := cfg.Build(fn.Body)
	known := map[string]bool{}
	for _, f := range file.Funcs {
		known[f.Name] = true
	}
	disambig.Analyze(g, fn.Ins, disambig.ResolverFunc(func(n string) bool { return known[n] }))
	if params == nil {
		params = map[string]types.Type{}
		for _, p := range fn.Ins {
			params[p] = types.Top
		}
	}
	return Forward(g, params, Opts{}), fn
}

func TestPolyExampleSignatures(t *testing.T) {
	// The paper's Figure 3: poly compiled under different signatures.
	src := `
function p = poly(x)
  p = x^5 + 3*x + 2;
end`
	// int scalar constant: constant propagation gives a constant result
	_, ok := func() (float64, bool) {
		res, _ := inferFn(t, src, map[string]types.Type{
			"x": types.ScalarOf(types.IInt, types.Const(3)),
		})
		return res.Vars["p"].R.IsConst()
	}()
	if !ok {
		t.Error("poly(3) must infer a constant result (254)")
	}
	res, _ := inferFn(t, src, map[string]types.Type{
		"x": types.ScalarOf(types.IInt, types.Const(3)),
	})
	if v, _ := res.Vars["p"].R.IsConst(); v != 254 {
		t.Errorf("poly(3) inferred %v, want 254", res.Vars["p"].R)
	}

	// int scalar: result stays an int scalar
	res, _ = inferFn(t, src, map[string]types.Type{
		"x": types.ScalarOf(types.IInt, types.RangeTop),
	})
	if p := res.Vars["p"]; !types.LeqI(p.I, types.IInt) || !p.IsScalar() {
		t.Errorf("poly(int) inferred %v", p)
	}

	// real scalar
	res, _ = inferFn(t, src, map[string]types.Type{
		"x": types.ScalarOf(types.IReal, types.RangeTop),
	})
	if p := res.Vars["p"]; !types.LeqI(p.I, types.IReal) || !p.IsScalar() {
		t.Errorf("poly(real) inferred %v", p)
	}

	// complex matrix: generic
	res, _ = inferFn(t, src, map[string]types.Type{
		"x": types.MatrixOf(types.ICplx),
	})
	if p := res.Vars["p"]; !types.LeqI(types.ICplx, p.I) && p.I != types.ICplx {
		t.Errorf("poly(cplx matrix) inferred %v", p)
	}
}

func TestExactShapeInference(t *testing.T) {
	// zeros(m, n) with constant m, n has an exact shape (paper §2.4).
	src := `
function A = f()
  m = 10;
  n = 20;
  A = zeros(m, n);
end`
	res, _ := inferFn(t, src, nil)
	r, c, ok := res.Vars["A"].ExactShape()
	if !ok || r != 10 || c != 20 {
		t.Errorf("A inferred %v", res.Vars["A"])
	}
}

func TestShapeFromIndexedAssign(t *testing.T) {
	// A(i) = ... raises the guaranteed minimum shape via the index's
	// range (paper: "the range of the index can determine the shape").
	src := `
function v = f()
  v = zeros(1, 1);
  for i = 1:50
    v(i) = i;
  end
end`
	res, _ := inferFn(t, src, nil)
	v := res.Vars["v"]
	if v.MaxShape.C.Inf || v.MaxShape.C.N < 50 {
		t.Errorf("v upper shape %v", v.MaxShape)
	}
	if v.MinShape.R.N != 1 {
		t.Errorf("v must stay a row vector: %v", v)
	}
}

func TestLoopVarRange(t *testing.T) {
	src := `
function s = f()
  s = 0;
  for i = 2:99
    s = s + i;
  end
end`
	res, _ := inferFn(t, src, nil)
	found := false
	for name, ty := range res.Vars {
		if name == "i" {
			found = true
			if ty.R.Lo != 2 || ty.R.Hi != 99 || !types.LeqI(ty.I, types.IInt) {
				t.Errorf("loop var type %v", ty)
			}
		}
	}
	if !found {
		t.Fatal("loop variable not typed")
	}
}

func TestRangeWidening(t *testing.T) {
	// growing accumulator must widen, not loop forever, and must stay
	// sound (hi → +Inf)
	src := `
function s = f(n)
  s = 0;
  k = 0;
  while k < n
    s = s + 1;
    k = k + 1;
  end
end`
	res, _ := inferFn(t, src, map[string]types.Type{
		"n": types.ScalarOf(types.IInt, types.RangeTop),
	})
	s := res.Vars["s"]
	if s.R.Lo > 0 {
		t.Errorf("s range %v must include 0", s.R)
	}
	if s.R.Hi < 1e300 {
		t.Errorf("s range %v should be widened above any finite bound", s.R)
	}
}

func TestComplexPropagation(t *testing.T) {
	src := `
function z = f(n)
  z = 0*i;
  for k = 1:n
    z = z*z + 1;
  end
end`
	res, _ := inferFn(t, src, map[string]types.Type{
		"n": types.ScalarOf(types.IInt, types.RangeTop),
	})
	if z := res.Vars["z"]; !types.LeqI(z.I, types.ICplx) || types.LeqI(z.I, types.IReal) {
		t.Errorf("z inferred %v, want complex", z)
	}
}

func TestEigConservative(t *testing.T) {
	src := `
function e = f(A)
  e = eig(A);
end`
	res, _ := inferFn(t, src, map[string]types.Type{"A": types.MatrixOf(types.IReal)})
	if e := res.Vars["e"]; e.I != types.ICplx {
		t.Errorf("eig result %v, want complex (paper §3.6 mei)", e)
	}
}

func TestSubscriptRemovalInfo(t *testing.T) {
	// with constant bounds the subscript annotations prove in-boundedness
	src := `
function s = f()
  A = zeros(10, 10);
  s = 0;
  for i = 2:9
    for j = 2:9
      s = s + A(i, j);
    end
  end
end`
	res, fn := inferFn(t, src, nil)
	var call *ast.Call
	ast.WalkStmts(fn.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.Call); ok && c.Name == "A" && c.Kind == ast.CallIndex {
			call = c
		}
		return true
	})
	if call == nil {
		t.Fatal("A(i,j) not found")
	}
	base := res.Bases[call]
	r, c, ok := base.ExactShape()
	if !ok || r != 10 || c != 10 {
		t.Fatalf("base type %v", base)
	}
	iAnn := res.TypeOf(call.Args[0])
	if iAnn.R.Lo < 1 || iAnn.R.Hi > 10 {
		t.Errorf("subscript range %v cannot prove bounds", iAnn.R)
	}
}

func TestRuleDatabaseSize(t *testing.T) {
	// the paper reports "about 250 rules"; ours must be of that order
	n := DefaultCalc.NumRules()
	if n < 120 {
		t.Errorf("only %d rules registered", n)
	}
	t.Logf("type calculator has %d forward rules", n)
}

func TestDefaultRuleIsTop(t *testing.T) {
	got := DefaultCalc.Forward("no_such_operator", []types.Type{types.Top})
	if !types.Leq(types.Top, got) {
		t.Errorf("default rule returned %v, want ⊤", got)
	}
}

// --- speculator ---------------------------------------------------------------

func speculate(t *testing.T, src string) types.Signature {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := file.Funcs[0]
	g := cfg.Build(fn.Body)
	disambig.Analyze(g, fn.Ins, nil)
	return Speculate(fn, g, Opts{})
}

func TestSpeculatorColonHint(t *testing.T) {
	sig := speculate(t, `
function s = f(n)
  s = 0;
  for i = 1:n
    s = s + i;
  end
end`)
	if !sig[0].IsScalar() || !types.LeqI(sig[0].I, types.IInt) {
		t.Errorf("colon operand guessed %v, want int scalar", sig[0])
	}
}

func TestSpeculatorRelationalHint(t *testing.T) {
	sig := speculate(t, `
function y = f(x)
  if x > 0
    y = 1;
  else
    y = 2;
  end
end`)
	if !sig[0].IsScalar() || !types.LeqI(sig[0].I, types.IReal) {
		t.Errorf("relational operand guessed %v, want real scalar", sig[0])
	}
}

func TestSpeculatorSubscriptHint(t *testing.T) {
	sig := speculate(t, `
function y = f(k)
  A = zeros(10, 10);
  y = A(k, k);
end`)
	if !sig[0].IsScalar() || !types.LeqI(sig[0].I, types.IInt) {
		t.Errorf("subscript guessed %v, want int scalar", sig[0])
	}
}

func TestSpeculatorConstructorHint(t *testing.T) {
	sig := speculate(t, `
function A = f(n)
  A = zeros(n, n);
end`)
	if !sig[0].IsScalar() || !types.LeqI(sig[0].I, types.IInt) {
		t.Errorf("zeros argument guessed %v, want int scalar", sig[0])
	}
}

func TestSpeculatorIndexedBaseHint(t *testing.T) {
	// F77-style indexed parameter → real matrix guess (icn-style)
	sig := speculate(t, `
function s = f(A)
  n = size(A, 1);
  s = 0;
  for i = 1:n
    s = s + A(i, i);
  end
end`)
	if !types.LeqI(sig[0].I, types.IReal) || sig[0].MaybeScalar() == false && sig[0].I == types.ITop {
		t.Errorf("indexed base guessed %v, want real matrix", sig[0])
	}
	if sig[0].I == types.ITop {
		t.Errorf("base stayed ⊤")
	}
}

func TestSpeculatorNoHintsIsTop(t *testing.T) {
	// qmr-style: a parameter used only in whole-matrix operations gets
	// no specific guess — the safe generic signature.
	sig := speculate(t, `
function y = f(A, x)
  y = A*x;
end`)
	if sig[0].I != types.ITop {
		t.Errorf("A guessed %v, want ⊤ (speculation miss)", sig[0])
	}
}

func TestSpeculativeSignatureIsSafeForTypicalCalls(t *testing.T) {
	// the guessed signature must accept a typical integer invocation
	sig := speculate(t, `
function s = f(n)
  s = 0;
  for i = 1:n
    s = s + i;
  end
end`)
	actual := types.Signature{types.ScalarOf(types.IInt, types.Const(100))}
	if !sig.Safe(actual) {
		t.Errorf("speculative signature %v rejects f(100)", sig)
	}
}
