package infer

import (
	"math"

	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/types"
)

// Opts configures an inference run. The two Disable switches implement
// the Figure 7 ablations: without range propagation every range is ⊤
// (disabling subscript-check removal and constant propagation); without
// minimum-shape propagation every lower shape bound is ⊥ (disabling
// exact shapes, hence unrolling and much check removal).
type Opts struct {
	NoRanges    bool
	NoMinShapes bool
	// AllTop forces every annotation to ⊤: the mcc-style batch
	// compilation that removes interpretation but performs no type
	// specialization at all.
	AllTop bool
	// MaxIter caps per-block revisits before widening (the paper "caps
	// the number of iterations" to keep JIT inference fast).
	MaxIter int
	// UserFnType resolves the result type of a (non-inlined) call to a
	// user function; nil means ⊤ (generic boxed call).
	UserFnType func(name string, args []types.Type) types.Type
}

func (o Opts) maxIter() int {
	if o.MaxIter <= 0 {
		return 4
	}
	return o.MaxIter
}

// Result carries the inference output: one conservative type annotation
// per expression node (the paper's set S), plus the per-variable joined
// type that drives code generation's storage-class choice.
type Result struct {
	Annots map[ast.Node]types.Type
	Vars   map[string]types.Type
	// Bases records the base array type at each indexing site (read or
	// write), used by code generation for subscript-check removal.
	Bases map[*ast.Call]types.Type
	// RuleApplications counts calculator invocations (statistics).
	RuleApplications int
}

// TypeOf returns the annotation for an expression (⊤ if missing).
func (r *Result) TypeOf(e ast.Expr) types.Type {
	if t, ok := r.Annots[e]; ok {
		return t
	}
	return types.Top
}

type inferencer struct {
	opts  Opts
	calc  *Calculator
	res   *Result
	graph *cfg.Graph
}

type tenv map[string]types.Type

func (e tenv) clone() tenv {
	out := make(tenv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func joinEnv(dst, src tenv) {
	for k, v := range src {
		if old, ok := dst[k]; ok {
			dst[k] = types.Join(old, v)
		} else {
			dst[k] = v
		}
	}
}

func envLeq(a, b tenv) bool {
	for k, v := range a {
		bv, ok := b[k]
		if !ok || !types.Leq(v, bv) {
			return false
		}
	}
	return true
}

// Forward runs JIT-style forward type inference over a function body.
// params maps parameter names to their signature types (exact types in
// JIT mode, speculative guesses in speculative mode).
func Forward(g *cfg.Graph, params map[string]types.Type, opts Opts) *Result {
	inf := &inferencer{
		opts:  opts,
		calc:  DefaultCalc,
		res:   &Result{Annots: make(map[ast.Node]types.Type), Vars: make(map[string]types.Type)},
		graph: g,
	}
	entry := tenv{}
	for k, v := range params {
		entry[k] = inf.sanitize(v)
		inf.noteVar(k, entry[k])
	}

	out := make([]tenv, len(g.Blocks))
	visits := make([]int, len(g.Blocks))
	work := []*cfg.Block{g.Entry}
	inWork := map[int]bool{g.Entry.ID: true}

	computeIn := func(blk *cfg.Block) tenv {
		var in tenv
		if blk == g.Entry {
			in = entry.clone()
		}
		for _, p := range blk.Preds {
			if out[p.ID] == nil {
				continue
			}
			if in == nil {
				in = out[p.ID].clone()
			} else {
				joinEnv(in, out[p.ID])
			}
		}
		if in == nil {
			in = tenv{}
		}
		return in
	}

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.ID] = false
		in := computeIn(blk)
		newOut := inf.transfer(blk, in)
		visits[blk.ID]++
		if old := out[blk.ID]; old != nil {
			if envLeq(newOut, old) && envLeq(old, newOut) {
				continue
			}
			if visits[blk.ID] > inf.opts.maxIter() {
				for k, v := range newOut {
					// Only widen against a previous binding; a variable
					// first appearing in this out-set has nothing to
					// widen against.
					if o, ok := old[k]; ok {
						newOut[k] = types.Widen(o, v)
					}
				}
			}
			if visits[blk.ID] > 8*inf.opts.maxIter() {
				// Safety valve against transfer non-monotonicity (rule
				// ordering is most-restrictive-first, which is not
				// monotone): force monotone growth by joining with the
				// previous out-set.
				for k, v := range newOut {
					if o, ok := old[k]; ok {
						newOut[k] = types.Join(o, v)
					}
				}
			}
		}
		out[blk.ID] = newOut
		for _, s := range blk.Succs {
			if !inWork[s.ID] {
				work = append(work, s)
				inWork[s.ID] = true
			}
		}
	}
	return inf.res
}

// sanitize applies the ablation switches to a type. Disabling minimum
// shapes drops the guaranteed lower bounds of arrays (no exact shapes,
// no unrolling, far less subscript-check removal) but keeps scalars
// scalar — the paper's ablation removes one analysis, it does not
// untype the whole program.
func (inf *inferencer) sanitize(t types.Type) types.Type {
	if t.IsBottom() {
		return t
	}
	if inf.opts.AllTop {
		return types.Top
	}
	if inf.opts.NoRanges {
		t.R = types.RangeTop
	}
	if inf.opts.NoMinShapes && !t.IsScalar() {
		t.MinShape = types.ShapeBot
	}
	return t
}

func (inf *inferencer) noteVar(name string, t types.Type) {
	if old, ok := inf.res.Vars[name]; ok {
		inf.res.Vars[name] = types.Join(old, t)
	} else {
		inf.res.Vars[name] = t
	}
}

// annotate records (joins) an expression annotation.
func (inf *inferencer) annotate(e ast.Expr, t types.Type) types.Type {
	t = inf.sanitize(t)
	if old, ok := inf.res.Annots[e]; ok {
		t = types.Join(old, t)
	}
	inf.res.Annots[e] = t
	return t
}

func (inf *inferencer) transfer(blk *cfg.Block, env tenv) tenv {
	if blk.ForHead != nil {
		t := inf.loopVarType(blk.ForHead, env)
		// The head assigns the variable on the body edge only; on the
		// exit edge the value left by the last body iteration survives
		// (MATLAB: a body reassignment of the loop variable sticks
		// after the loop). One out-set serves both edges, so join.
		if old, ok := env[blk.ForHead.Var]; ok {
			t = types.Join(t, old)
		}
		env[blk.ForHead.Var] = t
		inf.noteVar(blk.ForHead.Var, t)
	}
	for _, s := range blk.Stmts {
		switch x := s.(type) {
		case *ast.ExprStmt:
			t := inf.expr(x.X, env)
			env["ans"] = t
			inf.noteVar("ans", t)
		case *ast.Assign:
			inf.assign(x, env)
		case *ast.Global:
			for _, n := range x.Names {
				env[n] = types.Top
				inf.noteVar(n, types.Top)
			}
		case *ast.Clear:
			if len(x.Names) == 0 {
				for k := range env {
					delete(env, k)
				}
			} else {
				for _, n := range x.Names {
					delete(env, n)
				}
			}
		}
	}
	if blk.Cond != nil {
		inf.expr(blk.Cond, env)
	}
	return env
}

// loopVarType types the loop variable from the iteration expression.
func (inf *inferencer) loopVarType(f *ast.For, env tenv) types.Type {
	if r, ok := f.Iter.(*ast.Range); ok {
		lo := inf.expr(r.Lo, env)
		step := types.ScalarOf(types.IInt, types.Const(1))
		if r.Step != nil {
			step = inf.expr(r.Step, env)
		}
		hi := inf.expr(r.Hi, env)
		inf.annotate(r, inf.calc.Forward(":", []types.Type{lo, step, hi}))
		i := types.IInt
		if !intLike(lo) || !intLike(step) || !intLike(hi) {
			i = types.IReal
		}
		if !types.LeqI(i, types.IReal) || lo.R.IsBot() || hi.R.IsBot() {
			return types.ScalarOf(types.IReal, types.RangeTop)
		}
		// The loop variable ranges over [lo, hi] (or [hi, lo] for
		// negative steps) — the hull covers both directions.
		return types.ScalarOf(i, types.JoinR(lo.R, hi.R))
	}
	t := inf.expr(f.Iter, env)
	// Iterating a matrix binds one column per iteration.
	if t.IsScalar() {
		return t
	}
	return types.Type{
		I:        t.I,
		MinShape: types.Shape{R: t.MinShape.R, C: types.Fin(1)},
		MaxShape: types.Shape{R: t.MaxShape.R, C: types.Fin(1)},
		R:        t.R,
	}
}

func (inf *inferencer) assign(x *ast.Assign, env tenv) {
	// Multi-assignment from a builtin/user call.
	if len(x.LHS) > 1 {
		call, ok := x.RHS.(*ast.Call)
		if !ok {
			return
		}
		outs := inf.callN(call, env, len(x.LHS))
		for i, l := range x.LHS {
			t := types.Top
			if i < len(outs) {
				t = outs[i]
			}
			inf.bindLHS(l, t, env)
		}
		return
	}
	t := inf.expr(x.RHS, env)
	inf.bindLHS(x.LHS[0], t, env)
}

func (inf *inferencer) bindLHS(l ast.Expr, t types.Type, env tenv) {
	switch lhs := l.(type) {
	case *ast.Ident:
		t = inf.sanitize(t)
		env[lhs.Name] = t
		inf.noteVar(lhs.Name, t)
	case *ast.Call:
		// Indexed assignment A(subs) = t: update A's type.
		old, defined := env[lhs.Name]
		if !defined {
			old = types.Type{I: types.IBottom, MinShape: types.ShapeBot, MaxShape: types.ShapeBot, R: types.RangeBot}
		}
		subTypes := inf.subscripts(lhs, old, env)
		nt := indexedAssignType(old, subTypes, t, lhs.Args)
		nt = inf.sanitize(nt)
		env[lhs.Name] = nt
		inf.noteVar(lhs.Name, nt)
		inf.annotate(lhs, nt)
	}
}

// subscripts types each subscript of an indexing expression, resolving
// 'end' against the base type's shape bounds.
func (inf *inferencer) subscripts(call *ast.Call, base types.Type, env tenv) []types.Type {
	out := make([]types.Type, len(call.Args))
	for i, a := range call.Args {
		if _, isColon := a.(*ast.Colon); isColon {
			out[i] = types.Type{} // marker; consumers check the node kind
			continue
		}
		out[i] = inf.exprWithEnd(a, base, i, len(call.Args), env)
	}
	return out
}

func (inf *inferencer) exprWithEnd(e ast.Expr, base types.Type, dim, ndims int, env tenv) types.Type {
	// 'end' nodes inside e take their value range from base's bounds.
	// We stash the context on the inferencer via a small closure-based
	// walk: End nodes are leaf expressions, so a pre-pass annotates them.
	ast.Walk(e, func(n ast.Node) bool {
		if en, ok := n.(*ast.End); ok {
			var minE, maxE types.Extent
			if ndims == 1 {
				if n, ok := base.MinShape.Numel(); ok {
					minE = types.Fin(n)
				} else {
					minE = types.Fin(0)
				}
				if n, ok := base.MaxShape.Numel(); ok {
					maxE = types.Fin(n)
				} else {
					maxE = types.InfExt
				}
			} else if en.Dim == 0 {
				minE, maxE = base.MinShape.R, base.MaxShape.R
			} else {
				minE, maxE = base.MinShape.C, base.MaxShape.C
			}
			hi := math.Inf(1)
			if !maxE.Inf {
				hi = float64(maxE.N)
			}
			inf.res.Annots[en] = inf.sanitize(types.ScalarOf(types.IInt, types.MkRange(float64(minE.N), hi)))
		}
		_, isCall := n.(*ast.Call)
		return !isCall || n == e
	})
	return inf.expr(e, env)
}

// indexedAssignType computes the post-assignment type of the base
// array: MATLAB growth semantics mean the shape's upper bound extends
// to the subscripts' upper bounds, and — the paper's §2.4 observation —
// the subscript ranges' lower bounds raise the guaranteed minimum shape.
func indexedAssignType(old types.Type, subs []types.Type, rhs types.Type, args []ast.Expr) types.Type {
	i := old.I
	if i == types.IBottom {
		i = rhs.I
	} else {
		i = types.JoinI(i, rhs.I)
	}
	if i == types.IBool && rhs.I == types.IBool {
		i = types.IBool
	}
	r := types.JoinR(old.R, rhs.R)
	if old.R.IsBot() {
		// New or empty array: zero-fill contributes 0 to the range.
		r = types.JoinR(rhs.R, types.Const(0))
	}
	minS, maxS := old.MinShape, old.MaxShape

	extFromSub := func(t types.Type, isColon bool, oldMin, oldMax types.Extent) (types.Extent, types.Extent) {
		if isColon {
			return oldMin, oldMax
		}
		lo, hi := t.R.Lo, t.R.Hi
		minE := oldMin
		if !t.R.IsBot() && !math.IsInf(lo, -1) && lo >= 1 {
			g := types.Fin(int(math.Ceil(lo - 1e-9)))
			if types.LeqE(minE, g) {
				minE = g
			}
		}
		maxE := oldMax
		if t.R.IsBot() || math.IsInf(hi, 1) {
			maxE = types.InfExt
		} else {
			h := types.Fin(int(hi))
			if types.LeqE(maxE, h) {
				maxE = h
			}
		}
		return minE, maxE
	}

	switch len(subs) {
	case 1:
		_, isColon := args[0].(*ast.Colon)
		if isColon {
			// A(:) = v never changes the shape.
			break
		}
		// Linear store: a vector grows along its orientation. Without
		// orientation knowledge only weak bounds survive; for row/column
		// vectors we extend the free dimension.
		minE, maxE := extFromSub(subs[0], false, types.Fin(0), types.Fin(0))
		switch {
		case old.MaxShape.R.N == 1 && !old.MaxShape.R.Inf:
			// row vector (or new array: MATLAB creates 1 x n)
			if old.MinShape.R.N <= 1 {
				newMinC := minE
				if types.LeqE(newMinC, old.MinShape.C) {
					newMinC = old.MinShape.C
				}
				newMaxC := types.JoinS(types.Shape{C: maxE}, types.Shape{C: old.MaxShape.C}).C
				minS = types.Shape{R: types.Fin(1), C: newMinC}
				maxS = types.Shape{R: types.Fin(1), C: newMaxC}
			}
		case old.MaxShape.C.N == 1 && !old.MaxShape.C.Inf:
			newMinR := minE
			if types.LeqE(newMinR, old.MinShape.R) {
				newMinR = old.MinShape.R
			}
			newMaxR := types.JoinS(types.Shape{R: maxE}, types.Shape{R: old.MaxShape.R}).R
			minS = types.Shape{R: newMinR, C: types.Fin(1)}
			maxS = types.Shape{R: newMaxR, C: types.Fin(1)}
		default:
			// Unknown orientation: numel ≥ subscript lower bound is not
			// representable per-dimension; keep weak bounds.
			minS = types.MeetS(old.MinShape, types.ShapeBot)
			maxS = types.ShapeTop
		}
	case 2:
		_, c0 := args[0].(*ast.Colon)
		_, c1 := args[1].(*ast.Colon)
		minR, maxR := extFromSub(subs[0], c0, old.MinShape.R, old.MaxShape.R)
		minC, maxC := extFromSub(subs[1], c1, old.MinShape.C, old.MaxShape.C)
		minS = types.Shape{R: extMax(old.MinShape.R, minR), C: extMax(old.MinShape.C, minC)}
		maxS = types.Shape{R: extMax(old.MaxShape.R, maxR), C: extMax(old.MaxShape.C, maxC)}
	}
	return types.Type{I: i, MinShape: minS, MaxShape: maxS, R: r}
}

// extMax returns the larger extent: after a store both the old extent
// and the subscript's reach hold, for guarantees and bounds alike.
func extMax(a, b types.Extent) types.Extent {
	if types.LeqE(a, b) {
		return b
	}
	return a
}
