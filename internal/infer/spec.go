package infer

import (
	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/types"
)

// Speculate implements MaJIC's type speculator (paper §2.5): with no
// knowledge of the calling context it guesses the likely parameter
// types by back-propagating type hints from the function body — the
// backward mode of the type calculator. Speculative inference
// alternates backward (hint collection) and forward (body re-typing)
// passes until the guessed signature converges.
//
// The hint rules are the paper's list:
//   - operands of the colon operator are almost always integer scalars;
//   - operands of relational operators (and if/while conditions) are
//     real scalars;
//   - if one argument of a bracket [x1 x2 ...] is provably scalar, the
//     others probably are too;
//   - non-colon subscripts in A(idx) / A(i,j) are likely scalars
//     (Fortran-77-style indexing);
//   - arguments of zeros/ones/rand/eye/randn (and the second argument
//     of size) are likely integer scalars.
//
// Parameters that attract no hints stay ⊤: the generated code falls
// back to generic boxed operations for them — safe for any invocation,
// but slower, which is exactly the speculation-failure mode Table 2 of
// the paper quantifies (qmr, mei).
func Speculate(fn *ast.Function, g *cfg.Graph, opts Opts) types.Signature {
	guesses := make(map[string]types.Type, len(fn.Ins))
	for _, p := range fn.Ins {
		guesses[p] = types.Top
	}
	const maxPasses = 3
	for pass := 0; pass < maxPasses; pass++ {
		// Forward pass with the current guesses: produces the body
		// annotations the bracket rule needs.
		params := make(map[string]types.Type, len(guesses))
		for k, v := range guesses {
			params[k] = v
		}
		res := Forward(g, params, opts)

		// Backward pass: collect hints.
		h := &hinter{res: res, hints: map[string]types.Type{}}
		for _, p := range fn.Ins {
			h.params = append(h.params, p)
		}
		h.collectStmts(fn.Body)

		changed := false
		for _, p := range fn.Ins {
			nt, ok := h.hints[p]
			if !ok {
				continue
			}
			if guesses[p] != nt {
				guesses[p] = nt
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	sig := make(types.Signature, len(fn.Ins))
	for i, p := range fn.Ins {
		sig[i] = guesses[p]
	}
	return sig
}

// hinter walks the body applying backward rules.
type hinter struct {
	res    *Result
	params []string
	hints  map[string]types.Type
}

func (h *hinter) isParam(name string) bool {
	for _, p := range h.params {
		if p == name {
			return true
		}
	}
	return false
}

var (
	intScalarGuess  = types.ScalarOf(types.IInt, types.RangeTop)
	realScalarGuess = types.ScalarOf(types.IReal, types.RangeTop)
)

// constrain back-propagates a guessed type onto an expression: this is
// the calculator's backward mode. Guesses flow through identifiers and
// simple arithmetic (whose operands share the scalar/intrinsic nature
// of the result).
func (h *hinter) constrain(e ast.Expr, guess types.Type, depth int) {
	if depth > 4 {
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		if !h.isParam(x.Name) {
			return
		}
		if old, ok := h.hints[x.Name]; ok {
			h.hints[x.Name] = types.Join(old, guess)
		} else {
			h.hints[x.Name] = guess
		}
	case *ast.Binary:
		switch x.Op {
		case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpEMul:
			h.constrain(x.L, guess, depth+1)
			h.constrain(x.R, guess, depth+1)
		case ast.OpDiv, ast.OpEDiv:
			g := guess
			g.I = types.JoinI(g.I, types.IReal)
			h.constrain(x.L, g, depth+1)
			h.constrain(x.R, g, depth+1)
		}
	case *ast.Unary:
		if x.Op == ast.OpNeg || x.Op == ast.OpPos {
			h.constrain(x.X, guess, depth+1)
		}
	}
}

func (h *hinter) collectStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ast.ExprStmt:
			h.collectExpr(x.X)
		case *ast.Assign:
			for _, l := range x.LHS {
				if call, ok := l.(*ast.Call); ok {
					h.subscriptHints(call)
					// A store through scalar (F77-style) subscripts almost
					// always stores a real scalar element.
					if allScalarSubs(call) {
						h.constrain(x.RHS, realScalarGuess, 0)
					}
				}
			}
			h.collectExpr(x.RHS)
		case *ast.If:
			for i, c := range x.Conds {
				// Condition of an if: relational-operand rule applies to
				// the condition as a whole ("holds even stronger").
				h.constrain(c, realScalarGuess, 0)
				h.collectExpr(c)
				h.collectStmts(x.Blocks[i])
			}
			h.collectStmts(x.Else)
		case *ast.While:
			h.constrain(x.Cond, realScalarGuess, 0)
			h.collectExpr(x.Cond)
			h.collectStmts(x.Body)
		case *ast.For:
			h.collectExpr(x.Iter)
			h.collectStmts(x.Body)
		case *ast.Switch:
			h.collectExpr(x.Subject)
			for i, c := range x.CaseVals {
				h.collectExpr(c)
				h.collectStmts(x.CaseBlks[i])
			}
			h.collectStmts(x.Otherwise)
		}
	}
}

// builtins whose arguments are likely integer scalars.
var intArgBuiltins = map[string]bool{
	"zeros": true, "ones": true, "rand": true, "randn": true, "eye": true,
	"linspace": false, // only the third argument; handled specially
}

func (h *hinter) collectExpr(e ast.Expr) {
	ast.Walk(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Range:
			// colon operand rule
			h.constrain(x.Lo, intScalarGuess, 0)
			if x.Step != nil {
				h.constrain(x.Step, intScalarGuess, 0)
			}
			h.constrain(x.Hi, intScalarGuess, 0)
		case *ast.Binary:
			if x.Op.IsRelational() {
				// relational-operand rule (imaginary parts disregarded,
				// vector comparisons rare)
				h.constrain(x.L, realScalarGuess, 0)
				h.constrain(x.R, realScalarGuess, 0)
			}
		case *ast.Call:
			switch x.Kind {
			case ast.CallIndex:
				h.subscriptHints(x)
			case ast.CallBuiltin:
				if intArgBuiltins[x.Name] {
					for _, a := range x.Args {
						h.constrain(a, intScalarGuess, 0)
					}
				}
				if x.Name == "size" && len(x.Args) == 2 {
					h.constrain(x.Args[1], intScalarGuess, 0)
				}
				if x.Name == "linspace" && len(x.Args) == 3 {
					h.constrain(x.Args[2], intScalarGuess, 0)
				}
			}
		case *ast.Matrix:
			// bracket rule: if one element is provably scalar, the
			// others probably are too.
			anyScalarElem := false
			for _, row := range x.Rows {
				for _, elem := range row {
					if h.res.TypeOf(elem).IsScalar() {
						anyScalarElem = true
					}
				}
			}
			if anyScalarElem {
				for _, row := range x.Rows {
					for _, elem := range row {
						h.constrain(elem, realScalarGuess, 0)
					}
				}
			}
		}
		return true
	})
}

// allScalarSubs reports whether every subscript is a plain expression
// (no colon, no range) — F77-style indexing.
func allScalarSubs(call *ast.Call) bool {
	if len(call.Args) == 0 {
		return false
	}
	for _, a := range call.Args {
		switch a.(type) {
		case *ast.Colon, *ast.Range:
			return false
		}
	}
	return true
}

// subscriptHints applies the F77-style indexing rule: a subscript that
// is a plain expression or variable (not a colon and not a range) is
// likely an integer scalar — and the indexed array itself is likely a
// plain real matrix (programs that index elementwise in Fortran-77
// style almost always hold real numeric data there).
func (h *hinter) subscriptHints(call *ast.Call) {
	allF77 := len(call.Args) > 0
	for _, a := range call.Args {
		switch a.(type) {
		case *ast.Colon, *ast.Range:
			// F90-style indexing: no scalar hint.
			allF77 = false
		default:
			h.constrain(a, intScalarGuess, 0)
		}
	}
	if allF77 && h.isParam(call.Name) {
		base := types.MatrixOf(types.IReal)
		if old, ok := h.hints[call.Name]; ok {
			base = types.Join(old, base)
		}
		h.hints[call.Name] = base
	}
}
