package infer

import (
	"math"

	"repro/internal/ast"
	"repro/internal/types"
)

// expr types an expression, annotating every node.
func (inf *inferencer) expr(e ast.Expr, env tenv) types.Type {
	switch x := e.(type) {
	case *ast.NumberLit:
		var t types.Type
		switch {
		case x.Imag:
			t = types.ScalarOf(types.ICplx, types.RangeTop)
		case x.IsInt:
			t = types.ScalarOf(types.IInt, types.Const(x.Value))
		default:
			t = types.ScalarOf(types.IReal, types.Const(x.Value))
		}
		return inf.annotate(e, t)

	case *ast.StringLit:
		n := len(x.Value)
		return inf.annotate(e, types.Exact(types.IStrg, 1, n, types.RangeTop))

	case *ast.Ident:
		if t, ok := env[x.Name]; ok {
			return inf.annotate(e, t)
		}
		// Builtin constant or niladic call resolved by the
		// disambiguator; type it through the calculator.
		inf.res.RuleApplications++
		return inf.annotate(e, inf.calc.Forward(x.Name, nil))

	case *ast.Binary:
		l := inf.expr(x.L, env)
		r := inf.expr(x.R, env)
		inf.res.RuleApplications++
		return inf.annotate(e, inf.calc.Forward(x.Op.String(), []types.Type{l, r}))

	case *ast.Unary:
		v := inf.expr(x.X, env)
		inf.res.RuleApplications++
		return inf.annotate(e, inf.calc.Forward("u"+x.Op.String(), []types.Type{v}))

	case *ast.Transpose:
		v := inf.expr(x.X, env)
		inf.res.RuleApplications++
		return inf.annotate(e, inf.calc.Forward("'", []types.Type{v}))

	case *ast.Range:
		lo := inf.expr(x.Lo, env)
		step := types.ScalarOf(types.IInt, types.Const(1))
		if x.Step != nil {
			step = inf.expr(x.Step, env)
		}
		hi := inf.expr(x.Hi, env)
		inf.res.RuleApplications++
		return inf.annotate(e, inf.calc.Forward(":", []types.Type{lo, step, hi}))

	case *ast.End:
		// Annotated by exprWithEnd before evaluation; fall back to a
		// generic positive integer.
		if t, ok := inf.res.Annots[e]; ok {
			return t
		}
		return inf.annotate(e, types.ScalarOf(types.IInt, types.MkRange(0, math.Inf(1))))

	case *ast.Colon:
		return types.Top

	case *ast.Call:
		ts := inf.callN(x, env, 1)
		if len(ts) == 0 {
			return inf.annotate(e, types.Top)
		}
		return inf.annotate(e, ts[0])

	case *ast.Matrix:
		return inf.annotate(e, inf.matrix(x, env))
	}
	return inf.annotate(e, types.Top)
}

// callN types a call expression with nout outputs, dispatching on the
// disambiguator's classification.
func (inf *inferencer) callN(x *ast.Call, env tenv, nout int) []types.Type {
	switch x.Kind {
	case ast.CallIndex:
		base, ok := env[x.Name]
		if !ok {
			base = types.Top
		}
		subs := inf.subscripts(x, base, env)
		t := inf.annotate(x, indexReadType(base, subs, x.Args))
		inf.noteBase(x, base)
		return []types.Type{t}

	case ast.CallBuiltin:
		args := make([]types.Type, len(x.Args))
		for i, a := range x.Args {
			args[i] = inf.expr(a, env)
		}
		inf.res.RuleApplications++
		var first types.Type
		if nout >= 2 {
			// Multi-output forms change the first output's meaning
			// ([r,c] = size(A) returns scalars, not the size vector).
			first = builtinFirstOutN(x.Name, args, inf.calc)
		} else {
			first = inf.calc.Forward(x.Name, args)
		}
		first = inf.sanitize(first)
		outs := make([]types.Type, nout)
		outs[0] = first
		for i := 1; i < nout; i++ {
			outs[i] = inf.sanitize(builtinExtraOut(x.Name, i, args))
		}
		inf.annotate(x, first)
		return outs

	case ast.CallUser:
		args := make([]types.Type, len(x.Args))
		for i, a := range x.Args {
			args[i] = inf.expr(a, env)
		}
		t := types.Top
		if inf.opts.UserFnType != nil {
			t = inf.opts.UserFnType(x.Name, args)
		}
		t = inf.sanitize(t)
		inf.annotate(x, t)
		outs := make([]types.Type, nout)
		outs[0] = t
		for i := 1; i < nout; i++ {
			outs[i] = types.Top
		}
		return outs
	}
	// Ambiguous/unresolved: evaluate args for annotations, result ⊤.
	for _, a := range x.Args {
		if _, isColon := a.(*ast.Colon); !isColon {
			inf.expr(a, env)
		}
	}
	inf.annotate(x, types.Top)
	return []types.Type{types.Top}
}

// baseTypes records the base array type at each indexing site, keyed by
// the Call node; the code generator uses it for subscript-check removal.
func (inf *inferencer) noteBase(x *ast.Call, base types.Type) {
	if inf.res.Bases == nil {
		inf.res.Bases = make(map[*ast.Call]types.Type)
	}
	if old, ok := inf.res.Bases[x]; ok {
		base = types.Join(old, base)
	}
	inf.res.Bases[x] = inf.sanitize(base)
}

// builtinFirstOutN types the first output of a builtin called in a
// multi-output context.
func builtinFirstOutN(name string, args []types.Type, calc *Calculator) types.Type {
	switch name {
	case "size":
		// [r, c] = size(A): r is the row count.
		if len(args) == 1 {
			if r, _, ok := args[0].ExactShape(); ok {
				return types.ScalarOf(types.IInt, types.Const(float64(r)))
			}
			return types.ScalarOf(types.IInt, types.MkRange(0, math.Inf(1)))
		}
	case "max", "min", "sort", "lu", "find":
		return calc.Forward(name, args)
	}
	return types.Top
}

// builtinExtraOut types the second and later outputs of multi-output
// builtins (size, max, min, sort, lu).
func builtinExtraOut(name string, i int, args []types.Type) types.Type {
	switch name {
	case "size":
		return types.ScalarOf(types.IInt, types.MkRange(0, math.Inf(1)))
	case "max", "min":
		// index output
		return types.ScalarOf(types.IInt, types.MkRange(1, math.Inf(1)))
	case "sort":
		if len(args) == 1 {
			return types.Type{I: types.IInt, MinShape: args[0].MinShape, MaxShape: args[0].MaxShape, R: types.MkRange(1, math.Inf(1))}
		}
	case "lu":
		if len(args) == 1 {
			return types.Type{I: types.IReal, MinShape: args[0].MinShape, MaxShape: args[0].MaxShape, R: types.RangeTop}
		}
	}
	return types.Top
}

// indexReadType types A(subs...) reads.
func indexReadType(base types.Type, subs []types.Type, args []ast.Expr) types.Type {
	elemI := base.I
	r := base.R
	if elemI == types.IStrg {
		r = types.RangeTop
	}
	mk := func(minS, maxS types.Shape) types.Type {
		return types.Type{I: elemI, MinShape: minS, MaxShape: maxS, R: r}
	}
	subShape := func(i int) (types.Shape, types.Shape, bool) {
		if _, isColon := args[i].(*ast.Colon); isColon {
			return types.Shape{}, types.Shape{}, false
		}
		return subs[i].MinShape, subs[i].MaxShape, true
	}
	switch len(subs) {
	case 1:
		if minS, maxS, ok := subShape(0); ok {
			if subs[0].IsScalar() {
				return mk(types.ScalarShape, types.ScalarShape)
			}
			// The result takes the subscript's shape, except that a
			// vector subscript into a vector base takes the base's
			// orientation; stay conservative unless orientation is known.
			minN, okMin := minS.Numel()
			maxN, okMax := maxS.Numel()
			minE, maxE := types.Fin(0), types.InfExt
			if okMin {
				minE = types.Fin(minN)
			}
			if okMax {
				maxE = types.Fin(maxN)
			}
			switch {
			case !base.MaxShape.R.Inf && base.MaxShape.R.N <= 1:
				// base is a row vector → row result
				return mk(types.Shape{R: types.Fin(1), C: minE}, types.Shape{R: types.Fin(1), C: maxE})
			case !base.MaxShape.C.Inf && base.MaxShape.C.N <= 1:
				// base is a column vector → column result
				return mk(types.Shape{R: minE, C: types.Fin(1)}, types.Shape{R: maxE, C: types.Fin(1)})
			default:
				return mk(types.ShapeBot, types.Shape{R: maxE, C: maxE})
			}
		}
		// A(:) is numel x 1.
		minN, okMin := base.MinShape.Numel()
		maxN, okMax := base.MaxShape.Numel()
		minE, maxE := types.Fin(0), types.InfExt
		if okMin {
			minE = types.Fin(minN)
		}
		if okMax {
			maxE = types.Fin(maxN)
		}
		return mk(types.Shape{R: minE, C: types.Fin(1)}, types.Shape{R: maxE, C: types.Fin(1)})
	case 2:
		rowMin, rowMax := types.Fin(1), types.Fin(1)
		colMin, colMax := types.Fin(1), types.Fin(1)
		if minS, maxS, ok := subShape(0); ok {
			if !subs[0].IsScalar() {
				rn, rok := minS.Numel()
				xn, xok := maxS.Numel()
				rowMin, rowMax = types.Fin(0), types.InfExt
				if rok {
					rowMin = types.Fin(rn)
				}
				if xok {
					rowMax = types.Fin(xn)
				}
			}
		} else {
			rowMin, rowMax = base.MinShape.R, base.MaxShape.R
		}
		if minS, maxS, ok := subShape(1); ok {
			if !subs[1].IsScalar() {
				cn, cok := minS.Numel()
				xn, xok := maxS.Numel()
				colMin, colMax = types.Fin(0), types.InfExt
				if cok {
					colMin = types.Fin(cn)
				}
				if xok {
					colMax = types.Fin(xn)
				}
			}
		} else {
			colMin, colMax = base.MinShape.C, base.MaxShape.C
		}
		return mk(types.Shape{R: rowMin, C: colMin}, types.Shape{R: rowMax, C: colMax})
	}
	return types.Type{I: elemI, MinShape: types.ShapeBot, MaxShape: types.ShapeTop, R: r}
}

// matrix types a bracket literal.
func (inf *inferencer) matrix(x *ast.Matrix, env tenv) types.Type {
	if len(x.Rows) == 0 {
		return types.Exact(types.IReal, 0, 0, types.RangeBot)
	}
	i := types.IBottom
	r := types.RangeBot
	totRows, totRowsOK := 0, true
	var totCols int
	totColsOK := true
	firstRow := true
	for _, row := range x.Rows {
		rowRows, rowRowsOK := 0, true
		rowCols, rowColsOK := 0, true
		for _, elem := range row {
			t := inf.expr(elem, env)
			i = types.JoinI(i, t.I)
			r = types.JoinR(r, numericRange(t))
			if er, ec, ok := t.ExactShape(); ok {
				if rowRows == 0 {
					rowRows = er
				}
				if er != rowRows {
					rowRowsOK = false
				}
				rowCols += ec
			} else {
				rowRowsOK, rowColsOK = false, false
			}
		}
		if rowRowsOK {
			totRows += rowRows
		} else {
			totRowsOK = false
		}
		if rowColsOK {
			if firstRow {
				totCols = rowCols
			} else if totCols != rowCols {
				totColsOK = false
			}
		} else {
			totColsOK = false
		}
		firstRow = false
	}
	if i == types.IBottom {
		i = types.IReal
	}
	if totRowsOK && totColsOK {
		s := types.Shape{R: types.Fin(totRows), C: types.Fin(totCols)}
		return types.Type{I: i, MinShape: s, MaxShape: s, R: r}
	}
	return types.Type{I: i, MinShape: types.ShapeBot, MaxShape: types.ShapeTop, R: r}
}
