package infer

import "repro/internal/types"

// sparseAdjust computes the sparsity bit of a forward-rule result. The
// static rules over-approximate the runtime representation rules in
// internal/mat: Sp=true means the operator MAY return a sparse value
// when the listed operands are sparse; every operator not listed here
// densifies its sparse operands at runtime, so its result is provably
// dense (Sp=false — the zero value the rule bodies already produce).
//
// The unmatched-name default in Forward returns types.Top, which
// carries Sp=true, so operators with no rules stay conservative.
func sparseAdjust(name string, args []types.Type, out types.Type) types.Type {
	arg := func(i int) bool { return i < len(args) && args[i].Sp }
	switch name {
	case "+", "-":
		// Sparse result only when both operands are sparse (a dense or
		// broadcast-scalar operand makes the sum dense).
		out.Sp = arg(0) && arg(1)
	case ".*", "*":
		// Either operand sparse can keep the result sparse (pattern
		// intersection / scalar scaling); true matrix products return
		// dense, but the scalar case is not always statically separable.
		out.Sp = arg(0) || arg(1)
	case "./":
		out.Sp = arg(0) // sparse ./ scalar stays sparse
	case ".\\":
		out.Sp = arg(1) // b ./ a with roles swapped
	case "/":
		out.Sp = arg(0) // a / scalar reduces to ./
	case "\\":
		out.Sp = arg(1) // scalar \ b reduces to b ./ scalar
	case "u-", "u+", "'", ".'":
		out.Sp = arg(0)
	case "sparse", "speye", "spdiags":
		out.Sp = true
	}
	return out
}
