package infer

import (
	"math"

	"repro/internal/types"
)

// newCalculator builds the forward rule database. Rule ordering within a
// name follows the paper: most restrictive (best-performing code) first,
// ending just above the implicit ⊤ default. The "*" entries, for
// example, successively cover integer scalar multiply, real scalar
// multiply, complex scalar multiply, scalar×matrix, matrix product
// (dgemv/dgemm territory), and finally the generic complex fallback —
// the exact progression §2.3.1 lists.
func newCalculator() *Calculator {
	c := &Calculator{forward: map[string][]Rule{}}

	reg := func(name, desc string, pre func([]types.Type) bool, app func([]types.Type) types.Type) {
		c.add(name, desc, pre, app)
	}

	// ---- elementwise arithmetic ------------------------------------------
	type ewOp struct {
		name  string
		floor types.Intrinsic // minimum result intrinsic
		rng   func(a, b types.Range) types.Range
	}
	for _, op := range []ewOp{
		{"+", types.IBool, addR},
		{"-", types.IBool, subR},
		{".*", types.IBool, mulR},
		{"./", types.IReal, divR},
		{".\\", types.IReal, func(a, b types.Range) types.Range { return divR(b, a) }},
	} {
		op := op
		reg(op.name, "int scalar "+op.name, func(a []types.Type) bool {
			return len(a) == 2 && isIntScalar(a[0]) && isIntScalar(a[1]) && op.floor != types.IReal
		}, func(a []types.Type) types.Type {
			return types.ScalarOf(types.IInt, op.rng(a[0].R, a[1].R))
		})
		reg(op.name, "real scalar "+op.name, func(a []types.Type) bool {
			return len(a) == 2 && isRealScalar(a[0]) && isRealScalar(a[1])
		}, func(a []types.Type) types.Type {
			return types.ScalarOf(types.IReal, op.rng(a[0].R, a[1].R))
		})
		reg(op.name, "complex scalar "+op.name, func(a []types.Type) bool {
			return len(a) == 2 && a[0].IsScalar() && a[1].IsScalar() &&
				types.LeqI(a[0].I, types.ICplx) && types.LeqI(a[1].I, types.ICplx)
		}, func(a []types.Type) types.Type {
			return types.ScalarOf(types.ICplx, types.RangeTop)
		})
		reg(op.name, "elementwise "+op.name, func(a []types.Type) bool {
			return len(a) == 2 && types.LeqI(a[0].I, types.ICplx) && types.LeqI(a[1].I, types.ICplx)
		}, func(a []types.Type) types.Type {
			minS, maxS := elemShape(a[0], a[1])
			i := arithI(a[0].I, a[1].I, op.floor)
			r := types.RangeTop
			if types.LeqI(i, types.IReal) {
				r = op.rng(numericRange(a[0]), numericRange(a[1]))
			}
			if op.floor == types.IReal && i == types.IInt {
				i = types.IReal
			}
			return types.Type{I: i, MinShape: minS, MaxShape: maxS, R: r}
		})
	}
	// Integer-preservation fix for + - .*: int op int stays int.
	// (Division is never integer-preserving; handled by floor above.)

	// ---- * (matrix product) ----------------------------------------------
	reg("*", "integer scalar multiply", func(a []types.Type) bool {
		return len(a) == 2 && isIntScalar(a[0]) && isIntScalar(a[1])
	}, func(a []types.Type) types.Type {
		return types.ScalarOf(types.IInt, mulR(a[0].R, a[1].R))
	})
	reg("*", "real scalar multiply", func(a []types.Type) bool {
		return len(a) == 2 && isRealScalar(a[0]) && isRealScalar(a[1])
	}, func(a []types.Type) types.Type {
		return types.ScalarOf(types.IReal, mulR(a[0].R, a[1].R))
	})
	reg("*", "complex scalar multiply", func(a []types.Type) bool {
		return len(a) == 2 && a[0].IsScalar() && a[1].IsScalar() &&
			types.LeqI(a[0].I, types.ICplx) && types.LeqI(a[1].I, types.ICplx)
	}, func(a []types.Type) types.Type {
		return types.ScalarOf(types.ICplx, types.RangeTop)
	})
	reg("*", "scalar × matrix", func(a []types.Type) bool {
		return len(a) == 2 && a[0].IsScalar() && types.LeqI(a[0].I, types.ICplx) && types.LeqI(a[1].I, types.ICplx)
	}, func(a []types.Type) types.Type {
		i := arithI(a[0].I, a[1].I, types.IBool)
		r := types.RangeTop
		if types.LeqI(i, types.IReal) {
			r = mulR(numericRange(a[0]), numericRange(a[1]))
		}
		return types.Type{I: i, MinShape: a[1].MinShape, MaxShape: a[1].MaxShape, R: r}
	})
	reg("*", "matrix × scalar", func(a []types.Type) bool {
		return len(a) == 2 && a[1].IsScalar() && types.LeqI(a[0].I, types.ICplx) && types.LeqI(a[1].I, types.ICplx)
	}, func(a []types.Type) types.Type {
		i := arithI(a[0].I, a[1].I, types.IBool)
		r := types.RangeTop
		if types.LeqI(i, types.IReal) {
			r = mulR(numericRange(a[0]), numericRange(a[1]))
		}
		return types.Type{I: i, MinShape: a[0].MinShape, MaxShape: a[0].MaxShape, R: r}
	})
	reg("*", "real matrix product (dgemv/dgemm)", func(a []types.Type) bool {
		return len(a) == 2 && types.LeqI(a[0].I, types.IReal) && types.LeqI(a[1].I, types.IReal)
	}, func(a []types.Type) types.Type {
		return matMulShape(a[0], a[1], types.IReal)
	})
	reg("*", "generic complex matrix product", func(a []types.Type) bool {
		return len(a) == 2 && types.LeqI(a[0].I, types.ICplx) && types.LeqI(a[1].I, types.ICplx)
	}, func(a []types.Type) types.Type {
		return matMulShape(a[0], a[1], types.ICplx)
	})

	// ---- / and \ -----------------------------------------------------------
	reg("/", "scalar divide", func(a []types.Type) bool {
		return len(a) == 2 && isRealScalar(a[0]) && isRealScalar(a[1])
	}, func(a []types.Type) types.Type {
		return types.ScalarOf(types.IReal, divR(a[0].R, a[1].R))
	})
	reg("/", "complex scalar divide", func(a []types.Type) bool {
		return len(a) == 2 && a[0].IsScalar() && a[1].IsScalar() &&
			types.LeqI(a[0].I, types.ICplx) && types.LeqI(a[1].I, types.ICplx)
	}, func(a []types.Type) types.Type {
		return types.ScalarOf(types.ICplx, types.RangeTop)
	})
	reg("/", "matrix / scalar", func(a []types.Type) bool {
		return len(a) == 2 && a[1].IsScalar() && types.LeqI(a[0].I, types.ICplx) && types.LeqI(a[1].I, types.ICplx)
	}, func(a []types.Type) types.Type {
		i := arithI(a[0].I, a[1].I, types.IReal)
		r := types.RangeTop
		if types.LeqI(i, types.IReal) {
			r = divR(numericRange(a[0]), numericRange(a[1]))
		}
		return types.Type{I: i, MinShape: a[0].MinShape, MaxShape: a[0].MaxShape, R: r}
	})
	reg("/", "mrdivide", allNumericLeq(types.ICplx), func(a []types.Type) types.Type {
		return types.MatrixOf(types.IReal)
	})
	reg("\\", "scalar left divide", func(a []types.Type) bool {
		return len(a) == 2 && isRealScalar(a[0]) && isRealScalar(a[1])
	}, func(a []types.Type) types.Type {
		return types.ScalarOf(types.IReal, divR(a[1].R, a[0].R))
	})
	reg("\\", "linear solve A\\b", func(a []types.Type) bool {
		return len(a) == 2 && types.LeqI(a[0].I, types.IReal) && types.LeqI(a[1].I, types.IReal)
	}, func(a []types.Type) types.Type {
		// x has A's column count as rows and b's column count as cols.
		return types.Type{
			I:        types.IReal,
			MinShape: types.Shape{R: a[0].MinShape.C, C: a[1].MinShape.C},
			MaxShape: types.Shape{R: a[0].MaxShape.C, C: a[1].MaxShape.C},
			R:        types.RangeTop,
		}
	})

	// ---- powers -------------------------------------------------------------
	reg("^", "int scalar power", func(a []types.Type) bool {
		return len(a) == 2 && isIntScalar(a[0]) && isIntScalar(a[1]) && a[1].R.Lo >= 0 && !a[1].R.IsBot()
	}, func(a []types.Type) types.Type {
		return types.ScalarOf(types.IInt, powR(a[0].R, a[1].R))
	})
	reg("^", "real scalar power (nonnegative base)", func(a []types.Type) bool {
		return len(a) == 2 && isRealScalar(a[0]) && isRealScalar(a[1]) && a[0].R.Lo >= 0 && !a[0].R.IsBot()
	}, func(a []types.Type) types.Type {
		return types.ScalarOf(types.IReal, powR(a[0].R, a[1].R))
	})
	reg("^", "real scalar power (integer exponent)", func(a []types.Type) bool {
		if len(a) != 2 || !isRealScalar(a[0]) || !isIntScalar(a[1]) {
			return false
		}
		return true
	}, func(a []types.Type) types.Type {
		return types.ScalarOf(types.IReal, powR(a[0].R, a[1].R))
	})
	reg("^", "scalar power (complex result possible)", func(a []types.Type) bool {
		return len(a) == 2 && a[0].IsScalar() && a[1].IsScalar()
	}, func(a []types.Type) types.Type {
		return types.ScalarOf(types.ICplx, types.RangeTop)
	})
	// .^ mirrors ^ elementwise.
	reg(".^", "int scalar elementwise power", func(a []types.Type) bool {
		return len(a) == 2 && isIntScalar(a[0]) && isIntScalar(a[1]) && a[1].R.Lo >= 0 && !a[1].R.IsBot()
	}, func(a []types.Type) types.Type {
		return types.ScalarOf(types.IInt, powR(a[0].R, a[1].R))
	})
	reg(".^", "real scalar elementwise power", func(a []types.Type) bool {
		return len(a) == 2 && isRealScalar(a[0]) && isRealScalar(a[1]) &&
			((a[0].R.Lo >= 0 && !a[0].R.IsBot()) || isIntScalar(a[1]))
	}, func(a []types.Type) types.Type {
		return types.ScalarOf(types.IReal, powR(a[0].R, a[1].R))
	})
	reg(".^", "elementwise real power", func(a []types.Type) bool {
		return len(a) == 2 && types.LeqI(a[0].I, types.IReal) && types.LeqI(a[1].I, types.IReal) &&
			((a[0].R.Lo >= 0 && !a[0].R.IsBot()) || (intLike(a[1]) && a[1].R.Lo >= 0 && !a[1].R.IsBot()))
	}, func(a []types.Type) types.Type {
		minS, maxS := elemShape(a[0], a[1])
		return types.Type{I: types.IReal, MinShape: minS, MaxShape: maxS, R: powR(numericRange(a[0]), numericRange(a[1]))}
	})
	reg(".^", "elementwise power (complex possible)", nArgs(2), func(a []types.Type) types.Type {
		minS, maxS := elemShape(a[0], a[1])
		return types.Type{I: types.ICplx, MinShape: minS, MaxShape: maxS, R: types.RangeTop}
	})

	// ---- relational / logical ----------------------------------------------
	for _, name := range []string{"==", "~=", "<", "<=", ">", ">="} {
		reg(name, "scalar compare", func(a []types.Type) bool {
			return len(a) == 2 && a[0].IsScalar() && a[1].IsScalar()
		}, func(a []types.Type) types.Type {
			return boolResult(types.ScalarShape, types.ScalarShape)
		})
		reg(name, "elementwise compare", nArgs(2), func(a []types.Type) types.Type {
			minS, maxS := elemShape(a[0], a[1])
			return boolResult(minS, maxS)
		})
	}
	for _, name := range []string{"&", "|"} {
		reg(name, "scalar logical", func(a []types.Type) bool {
			return len(a) == 2 && a[0].IsScalar() && a[1].IsScalar()
		}, func(a []types.Type) types.Type {
			return boolResult(types.ScalarShape, types.ScalarShape)
		})
		reg(name, "elementwise logical", nArgs(2), func(a []types.Type) types.Type {
			minS, maxS := elemShape(a[0], a[1])
			return boolResult(minS, maxS)
		})
	}
	for _, name := range []string{"&&", "||"} {
		reg(name, "short-circuit logical", nArgs(2), func(a []types.Type) types.Type {
			return boolResult(types.ScalarShape, types.ScalarShape)
		})
	}

	// ---- unary ---------------------------------------------------------------
	reg("u-", "negate int scalar", func(a []types.Type) bool { return isIntScalar(a[0]) },
		func(a []types.Type) types.Type { return types.ScalarOf(types.IInt, negR(a[0].R)) })
	reg("u-", "negate real scalar", func(a []types.Type) bool { return isRealScalar(a[0]) },
		func(a []types.Type) types.Type { return types.ScalarOf(types.IReal, negR(a[0].R)) })
	reg("u-", "negate", nArgs(1), func(a []types.Type) types.Type {
		i := arithI(a[0].I, types.IBottom, types.IBool)
		r := types.RangeTop
		if types.LeqI(i, types.IReal) {
			r = negR(numericRange(a[0]))
		}
		return types.Type{I: i, MinShape: a[0].MinShape, MaxShape: a[0].MaxShape, R: r}
	})
	reg("u+", "unary plus", nArgs(1), func(a []types.Type) types.Type {
		t := a[0]
		t.I = arithI(t.I, types.IBottom, types.IBool)
		return t
	})
	reg("u~", "logical not", nArgs(1), func(a []types.Type) types.Type {
		return boolResult(a[0].MinShape, a[0].MaxShape)
	})
	reg("'", "transpose", nArgs(1), func(a []types.Type) types.Type {
		return types.Type{
			I:        a[0].I,
			MinShape: types.Shape{R: a[0].MinShape.C, C: a[0].MinShape.R},
			MaxShape: types.Shape{R: a[0].MaxShape.C, C: a[0].MaxShape.R},
			R:        a[0].R,
		}
	})

	// ---- colon (range) --------------------------------------------------------
	reg(":", "integer scalar range", func(a []types.Type) bool {
		return len(a) == 3 && isIntScalar(a[0]) && isIntScalar(a[1]) && isIntScalar(a[2])
	}, func(a []types.Type) types.Type {
		return rangeResult(a[0], a[1], a[2], types.IInt)
	})
	reg(":", "real scalar range", func(a []types.Type) bool {
		return len(a) == 3 && isRealScalar(a[0]) && isRealScalar(a[1]) && isRealScalar(a[2])
	}, func(a []types.Type) types.Type {
		return rangeResult(a[0], a[1], a[2], types.IReal)
	})
	reg(":", "range (imaginary parts ignored)", nArgs(3), func(a []types.Type) types.Type {
		return types.Type{I: types.IReal, MinShape: types.Shape{R: types.Fin(1), C: types.Fin(0)},
			MaxShape: types.Shape{R: types.Fin(1), C: types.InfExt}, R: types.RangeTop}
	})

	registerBuiltinRules(c)
	return c
}

func intLike(t types.Type) bool { return types.LeqI(t.I, types.IInt) }

// matMulShape types a true matrix product.
func matMulShape(a, b types.Type, floor types.Intrinsic) types.Type {
	i := arithI(a.I, b.I, floor)
	return types.Type{
		I:        i,
		MinShape: types.Shape{R: a.MinShape.R, C: b.MinShape.C},
		MaxShape: types.Shape{R: a.MaxShape.R, C: b.MaxShape.C},
		R:        types.RangeTop,
	}
}

// rangeResult types lo:step:hi.
func rangeResult(lo, step, hi types.Type, i types.Intrinsic) types.Type {
	minC, maxC := types.Fin(0), types.InfExt
	if lv, ok1 := lo.R.IsConst(); ok1 {
		if sv, ok2 := step.R.IsConst(); ok2 {
			if hv, ok3 := hi.R.IsConst(); ok3 && sv != 0 {
				n := int(math.Floor((hv-lv)/sv+1e-10)) + 1
				if n < 0 {
					n = 0
				}
				minC, maxC = types.Fin(n), types.Fin(n)
			}
		}
	}
	if maxC.Inf && !lo.R.IsBot() && !hi.R.IsBot() && !step.R.IsBot() {
		if sv, ok := step.R.IsConst(); ok && sv == 1 && !math.IsInf(hi.R.Hi, 1) && !math.IsInf(lo.R.Lo, -1) {
			n := int(hi.R.Hi-lo.R.Lo) + 1
			if n < 0 {
				n = 0
			}
			maxC = types.Fin(n)
		}
	}
	r := types.JoinR(numericRange(lo), numericRange(hi))
	return types.Type{
		I:        i,
		MinShape: types.Shape{R: types.Fin(1), C: minC},
		MaxShape: types.Shape{R: types.Fin(1), C: maxC},
		R:        r,
	}
}
