package infer

import (
	"math"

	"repro/internal/types"
)

// registerBuiltinRules adds the forward rules for built-in functions.
// Several encode the "exact shape inference" synergy of §2.4: when the
// value ranges of m and n uniquely determine them, zeros(m,n) gets an
// exact shape; size/length of an exactly-shaped array is a constant.
func registerBuiltinRules(c *Calculator) {
	reg := c.add

	// --- constructors ------------------------------------------------------
	ctor := func(name string, rng types.Range) {
		reg(name, name+" with constant sizes", func(a []types.Type) bool {
			return constShapeArgs(a) != nil
		}, func(a []types.Type) types.Type {
			s := constShapeArgs(a)
			return types.Type{I: types.IReal, MinShape: *s, MaxShape: *s, R: rng}
		})
		reg(name, name+" with bounded sizes", func(a []types.Type) bool {
			return boundedShapeArgs(a) != nil
		}, func(a []types.Type) types.Type {
			s := boundedShapeArgs(a)
			return types.Type{I: types.IReal, MinShape: types.ShapeBot, MaxShape: *s, R: rng}
		})
		reg(name, name+" generic", nArgs0toN(2), func(a []types.Type) types.Type {
			return types.Type{I: types.IReal, MinShape: types.ShapeBot, MaxShape: types.ShapeTop, R: rng}
		})
	}
	ctor("zeros", types.Const(0))
	ctor("ones", types.Const(1))
	ctor("eye", types.MkRange(0, 1))
	ctor("rand", types.MkRange(0, 1))
	ctor("randn", types.RangeTop)

	// --- shape queries -------------------------------------------------------
	reg("size", "size of exactly-shaped array (constant)", func(a []types.Type) bool {
		if len(a) != 2 {
			return false
		}
		_, _, ok := a[0].ExactShape()
		if !ok {
			return false
		}
		_, isC := a[1].R.IsConst()
		return isC
	}, func(a []types.Type) types.Type {
		r, cc, _ := a[0].ExactShape()
		d, _ := a[1].R.IsConst()
		if d == 1 {
			return types.ScalarOf(types.IInt, types.Const(float64(r)))
		}
		if d == 2 {
			return types.ScalarOf(types.IInt, types.Const(float64(cc)))
		}
		return types.ScalarOf(types.IInt, types.Const(1))
	})
	reg("size", "size along a dimension", func(a []types.Type) bool { return len(a) == 2 }, func(a []types.Type) types.Type {
		d, isC := a[1].R.IsConst()
		lo, hi := 0.0, math.Inf(1)
		if isC {
			minE, maxE := extentAlong(a[0], int(d))
			lo = float64(minE.N)
			if !maxE.Inf {
				hi = float64(maxE.N)
			}
		}
		return types.ScalarOf(types.IInt, types.MkRange(lo, hi))
	})
	reg("size", "size vector", nArgs(1), func(a []types.Type) types.Type {
		if r, cc, ok := a[0].ExactShape(); ok {
			lo := math.Min(float64(r), float64(cc))
			hi := math.Max(float64(r), float64(cc))
			return types.Exact(types.IInt, 1, 2, types.MkRange(lo, hi))
		}
		return types.Exact(types.IInt, 1, 2, types.MkRange(0, math.Inf(1)))
	})
	reg("length", "length of exactly-shaped array", func(a []types.Type) bool {
		_, _, ok := a[0].ExactShape()
		return len(a) == 1 && ok
	}, func(a []types.Type) types.Type {
		r, cc, _ := a[0].ExactShape()
		n := r
		if cc > n {
			n = cc
		}
		if r == 0 || cc == 0 {
			n = 0
		}
		return types.ScalarOf(types.IInt, types.Const(float64(n)))
	})
	reg("length", "length", nArgs(1), func(a []types.Type) types.Type {
		lo := 0.0
		hi := math.Inf(1)
		if !a[0].MaxShape.R.Inf && !a[0].MaxShape.C.Inf {
			hi = math.Max(float64(a[0].MaxShape.R.N), float64(a[0].MaxShape.C.N))
		}
		return types.ScalarOf(types.IInt, types.MkRange(lo, hi))
	})
	reg("numel", "numel of exactly-shaped array", func(a []types.Type) bool {
		_, _, ok := a[0].ExactShape()
		return len(a) == 1 && ok
	}, func(a []types.Type) types.Type {
		r, cc, _ := a[0].ExactShape()
		return types.ScalarOf(types.IInt, types.Const(float64(r*cc)))
	})
	reg("numel", "numel", nArgs(1), func(a []types.Type) types.Type {
		return types.ScalarOf(types.IInt, types.MkRange(0, math.Inf(1)))
	})

	// --- predicates ------------------------------------------------------------
	for _, name := range []string{"isempty", "isreal", "isscalar", "any", "all"} {
		name := name
		reg(name, name, nArgs(1), func(a []types.Type) types.Type {
			if name == "any" || name == "all" {
				return boolResult(reduceShape(a[0]))
			}
			return boolResult(types.ScalarShape, types.ScalarShape)
		})
	}

	// --- elementwise math --------------------------------------------------------
	unary := func(name string, app func(t types.Type) types.Type, pre func(t types.Type) bool, desc string) {
		reg(name, desc, func(a []types.Type) bool { return len(a) == 1 && (pre == nil || pre(a[0])) },
			func(a []types.Type) types.Type { return app(a[0]) })
	}
	elemReal := func(t types.Type, r types.Range) types.Type {
		return types.Type{I: types.IReal, MinShape: t.MinShape, MaxShape: t.MaxShape, R: r}
	}
	elemInt := func(t types.Type, r types.Range) types.Type {
		i := types.IInt
		if !types.LeqI(t.I, types.ICplx) {
			i = types.IReal
		}
		return types.Type{I: i, MinShape: t.MinShape, MaxShape: t.MaxShape, R: r}
	}

	unary("abs", func(t types.Type) types.Type { return elemReal(t, absR(numericRange(t))) }, nil, "abs (complex → real)")
	unary("sqrt", func(t types.Type) types.Type {
		return elemReal(t, monoR(t.R, math.Sqrt))
	}, func(t types.Type) bool {
		return types.LeqI(t.I, types.IReal) && !t.R.IsBot() && t.R.Lo >= 0
	}, "sqrt of provably nonnegative reals")
	unary("sqrt", func(t types.Type) types.Type {
		return types.Type{I: types.ICplx, MinShape: t.MinShape, MaxShape: t.MaxShape, R: types.RangeTop}
	}, nil, "sqrt (complex possible)")
	unary("exp", func(t types.Type) types.Type {
		if types.LeqI(t.I, types.IReal) {
			return elemReal(t, monoR(t.R, math.Exp))
		}
		return types.Type{I: types.ICplx, MinShape: t.MinShape, MaxShape: t.MaxShape, R: types.RangeTop}
	}, nil, "exp")
	unary("log", func(t types.Type) types.Type {
		if types.LeqI(t.I, types.IReal) && !t.R.IsBot() && t.R.Lo > 0 {
			return elemReal(t, monoR(t.R, math.Log))
		}
		return types.Type{I: types.ICplx, MinShape: t.MinShape, MaxShape: t.MaxShape, R: types.RangeTop}
	}, nil, "log")
	for _, name := range []string{"sin", "cos"} {
		unary(name, func(t types.Type) types.Type {
			if types.LeqI(t.I, types.IReal) {
				return elemReal(t, types.MkRange(-1, 1))
			}
			return types.Type{I: types.ICplx, MinShape: t.MinShape, MaxShape: t.MaxShape, R: types.RangeTop}
		}, nil, name)
	}
	for _, name := range []string{"tan", "asin", "acos", "atan", "sinh", "cosh", "tanh", "log2", "log10"} {
		unary(name, func(t types.Type) types.Type {
			if types.LeqI(t.I, types.IReal) {
				return elemReal(t, types.RangeTop)
			}
			return types.Type{I: types.ICplx, MinShape: t.MinShape, MaxShape: t.MaxShape, R: types.RangeTop}
		}, nil, name)
	}
	unary("floor", func(t types.Type) types.Type { return elemInt(t, monoR(t.R, math.Floor)) }, nil, "floor")
	unary("ceil", func(t types.Type) types.Type { return elemInt(t, monoR(t.R, math.Ceil)) }, nil, "ceil")
	unary("round", func(t types.Type) types.Type {
		return elemInt(t, monoR(t.R, func(x float64) float64 { return math.Floor(x + 0.5) }))
	}, nil, "round")
	unary("fix", func(t types.Type) types.Type { return elemInt(t, monoR(t.R, math.Trunc)) }, nil, "fix")
	unary("sign", func(t types.Type) types.Type { return elemInt(t, types.MkRange(-1, 1)) }, nil, "sign")
	unary("real", func(t types.Type) types.Type { return elemReal(t, numericRange(t)) }, nil, "real part")
	unary("imag", func(t types.Type) types.Type { return elemReal(t, types.RangeTop) }, nil, "imag part")
	unary("conj", func(t types.Type) types.Type { return t }, nil, "conjugate")
	unary("angle", func(t types.Type) types.Type { return elemReal(t, types.MkRange(-math.Pi, math.Pi)) }, nil, "angle")

	reg("atan2", "atan2", nArgs(2), func(a []types.Type) types.Type {
		minS, maxS := elemShape(a[0], a[1])
		return types.Type{I: types.IReal, MinShape: minS, MaxShape: maxS, R: types.MkRange(-math.Pi, math.Pi)}
	})
	reg("mod", "mod with constant positive modulus", func(a []types.Type) bool {
		if len(a) != 2 {
			return false
		}
		m, ok := a[1].R.IsConst()
		return ok && m > 0
	}, func(a []types.Type) types.Type {
		m, _ := a[1].R.IsConst()
		minS, maxS := elemShape(a[0], a[1])
		i := arithI(a[0].I, a[1].I, types.IBool)
		return types.Type{I: i, MinShape: minS, MaxShape: maxS, R: types.MkRange(0, m)}
	})
	reg("mod", "mod", nArgs(2), func(a []types.Type) types.Type {
		minS, maxS := elemShape(a[0], a[1])
		return types.Type{I: types.IReal, MinShape: minS, MaxShape: maxS, R: types.RangeTop}
	})
	reg("rem", "rem", nArgs(2), func(a []types.Type) types.Type {
		minS, maxS := elemShape(a[0], a[1])
		i := arithI(a[0].I, a[1].I, types.IBool)
		return types.Type{I: i, MinShape: minS, MaxShape: maxS, R: types.RangeTop}
	})

	// --- reductions ----------------------------------------------------------------
	reg("sum", "sum", nArgs(1), func(a []types.Type) types.Type {
		minS, maxS := reduceShape(a[0])
		i := a[0].I
		if i == types.IBool {
			i = types.IInt
		}
		if i == types.IStrg {
			i = types.IReal
		}
		return types.Type{I: i, MinShape: minS, MaxShape: maxS, R: types.RangeTop}
	})
	reg("prod", "prod", nArgs(1), func(a []types.Type) types.Type {
		minS, maxS := reduceShape(a[0])
		return types.Type{I: a[0].I, MinShape: minS, MaxShape: maxS, R: types.RangeTop}
	})
	reg("mean", "mean", nArgs(1), func(a []types.Type) types.Type {
		minS, maxS := reduceShape(a[0])
		return types.Type{I: types.IReal, MinShape: minS, MaxShape: maxS, R: numericRange(a[0])}
	})
	for _, name := range []string{"max", "min"} {
		name := name
		reg(name, name+" of two scalars", func(a []types.Type) bool {
			return len(a) == 2 && a[0].IsScalar() && a[1].IsScalar()
		}, func(a []types.Type) types.Type {
			i := arithI(a[0].I, a[1].I, types.IBool)
			var r types.Range
			if name == "max" {
				r = types.MkRange(math.Max(a[0].R.Lo, a[1].R.Lo), math.Max(a[0].R.Hi, a[1].R.Hi))
			} else {
				r = types.MkRange(math.Min(a[0].R.Lo, a[1].R.Lo), math.Min(a[0].R.Hi, a[1].R.Hi))
			}
			if a[0].R.IsBot() || a[1].R.IsBot() || !types.LeqI(i, types.IReal) {
				r = types.RangeTop
			}
			return types.ScalarOf(i, r)
		})
		reg(name, name+" elementwise", nArgs(2), func(a []types.Type) types.Type {
			minS, maxS := elemShape(a[0], a[1])
			return types.Type{I: arithI(a[0].I, a[1].I, types.IBool), MinShape: minS, MaxShape: maxS, R: types.JoinR(numericRange(a[0]), numericRange(a[1]))}
		})
		reg(name, name+" reduction", nArgs(1), func(a []types.Type) types.Type {
			minS, maxS := reduceShape(a[0])
			i := a[0].I
			if i == types.IStrg {
				i = types.IReal
			}
			return types.Type{I: i, MinShape: minS, MaxShape: maxS, R: numericRange(a[0])}
		})
	}

	// --- vectors / linear algebra ----------------------------------------------------
	reg("norm", "norm", nArgs0toN(2), func(a []types.Type) types.Type {
		return types.ScalarOf(types.IReal, types.MkRange(0, math.Inf(1)))
	})
	reg("dot", "dot", nArgs(2), func(a []types.Type) types.Type {
		return types.ScalarOf(types.IReal, types.RangeTop)
	})
	reg("det", "det", nArgs(1), func(a []types.Type) types.Type {
		return types.ScalarOf(types.IReal, types.RangeTop)
	})
	reg("eig", "eig (complex eigenvalues possible)", nArgs(1), func(a []types.Type) types.Type {
		// A general real matrix can have complex eigenvalues; without
		// knowing symmetry the engine must assume complex — the very
		// conservatism that costs the mei benchmark its performance.
		return types.Type{
			I:        types.ICplx,
			MinShape: types.Shape{R: a[0].MinShape.R, C: types.Fin(1)},
			MaxShape: types.Shape{R: a[0].MaxShape.R, C: types.Fin(1)},
			R:        types.RangeTop,
		}
	})
	reg("inv", "inv", nArgs(1), func(a []types.Type) types.Type {
		return types.Type{I: types.IReal, MinShape: a[0].MinShape, MaxShape: a[0].MaxShape, R: types.RangeTop}
	})
	reg("chol", "chol", nArgs(1), func(a []types.Type) types.Type {
		return types.Type{I: types.IReal, MinShape: a[0].MinShape, MaxShape: a[0].MaxShape, R: types.RangeTop}
	})
	reg("lu", "lu factor", nArgs(1), func(a []types.Type) types.Type {
		return types.Type{I: types.IReal, MinShape: a[0].MinShape, MaxShape: a[0].MaxShape, R: types.RangeTop}
	})
	for _, name := range []string{"diag", "tril", "triu"} {
		name := name
		reg(name, name, nArgs0toN(2), func(a []types.Type) types.Type {
			if name == "diag" {
				return types.Type{I: a[0].I, MinShape: types.ShapeBot, MaxShape: types.ShapeTop, R: numericRange(a[0])}
			}
			return types.Type{I: a[0].I, MinShape: a[0].MinShape, MaxShape: a[0].MaxShape, R: types.JoinR(numericRange(a[0]), types.Const(0))}
		})
	}
	reg("find", "find", nArgs(1), func(a []types.Type) types.Type {
		hi := math.Inf(1)
		if n, ok := a[0].MaxShape.Numel(); ok {
			hi = float64(n)
		}
		return types.Type{I: types.IInt, MinShape: types.ShapeBot, MaxShape: a[0].MaxShape, R: types.MkRange(1, hi)}
	})
	reg("linspace", "linspace with constant count", func(a []types.Type) bool {
		if len(a) != 3 {
			return false
		}
		_, ok := a[2].R.IsConst()
		return ok
	}, func(a []types.Type) types.Type {
		n, _ := a[2].R.IsConst()
		return types.Exact(types.IReal, 1, int(n), types.JoinR(numericRange(a[0]), numericRange(a[1])))
	})
	reg("linspace", "linspace", nArgs0toN(3), func(a []types.Type) types.Type {
		return types.Type{I: types.IReal, MinShape: types.Shape{R: types.Fin(1), C: types.Fin(0)},
			MaxShape: types.Shape{R: types.Fin(1), C: types.InfExt}, R: types.RangeTop}
	})
	reg("reshape", "reshape with constant dims", func(a []types.Type) bool {
		if len(a) != 3 {
			return false
		}
		_, ok1 := a[1].R.IsConst()
		_, ok2 := a[2].R.IsConst()
		return ok1 && ok2
	}, func(a []types.Type) types.Type {
		r, _ := a[1].R.IsConst()
		cc, _ := a[2].R.IsConst()
		s := types.Shape{R: types.Fin(int(r)), C: types.Fin(int(cc))}
		return types.Type{I: a[0].I, MinShape: s, MaxShape: s, R: a[0].R}
	})
	reg("reshape", "reshape", nArgs(3), func(a []types.Type) types.Type {
		return types.Type{I: a[0].I, MinShape: types.ShapeBot, MaxShape: types.ShapeTop, R: a[0].R}
	})
	reg("repmat", "repmat", nArgs(3), func(a []types.Type) types.Type {
		return types.Type{I: a[0].I, MinShape: types.ShapeBot, MaxShape: types.ShapeTop, R: a[0].R}
	})
	reg("sort", "sort", nArgs(1), func(a []types.Type) types.Type {
		return types.Type{I: a[0].I, MinShape: a[0].MinShape, MaxShape: a[0].MaxShape, R: a[0].R}
	})

	// --- sparse representation ----------------------------------------------------------
	// The constructors' Sp=true bit is applied by sparseAdjust (sparse.go);
	// the rule bodies here only compute intrinsic/shape/range.
	ctor("speye", types.MkRange(0, 1))
	reg("sparse", "sparse of a matrix", func(a []types.Type) bool {
		return len(a) == 1 && types.LeqI(a[0].I, types.IReal)
	}, func(a []types.Type) types.Type {
		return types.Type{I: types.IReal, MinShape: a[0].MinShape, MaxShape: a[0].MaxShape, R: numericRange(a[0])}
	})
	reg("sparse", "sparse(m,n) all-zero", func(a []types.Type) bool {
		return len(a) == 2 && constShapeArgs(a) != nil
	}, func(a []types.Type) types.Type {
		s := constShapeArgs(a)
		return types.Type{I: types.IReal, MinShape: *s, MaxShape: *s, R: types.Const(0)}
	})
	reg("sparse", "sparse constructor", anyArgs, func(a []types.Type) types.Type {
		return types.MatrixOf(types.IReal)
	})
	reg("spdiags", "spdiags with constant sizes", func(a []types.Type) bool {
		return len(a) == 4 && constShapeArgs(a[2:]) != nil
	}, func(a []types.Type) types.Type {
		s := constShapeArgs(a[2:])
		return types.Type{I: types.IReal, MinShape: *s, MaxShape: *s, R: types.RangeTop}
	})
	reg("spdiags", "spdiags", nArgs(4), func(a []types.Type) types.Type {
		return types.MatrixOf(types.IReal)
	})
	reg("full", "full", nArgs(1), func(a []types.Type) types.Type {
		i := a[0].I
		if i == types.IStrg || i == types.ITop {
			i = types.IReal
		}
		return types.Type{I: i, MinShape: a[0].MinShape, MaxShape: a[0].MaxShape, R: numericRange(a[0])}
	})
	reg("nnz", "nnz", nArgs(1), func(a []types.Type) types.Type {
		hi := math.Inf(1)
		if n, ok := a[0].MaxShape.Numel(); ok {
			hi = float64(n)
		}
		return types.ScalarOf(types.IInt, types.MkRange(0, hi))
	})
	reg("issparse", "issparse", nArgs(1), func(a []types.Type) types.Type {
		return boolResult(types.ScalarShape, types.ScalarShape)
	})

	// --- strings / io -------------------------------------------------------------------
	reg("sprintf", "sprintf", anyArgs, func(a []types.Type) types.Type { return types.MatrixOf(types.IStrg) })
	reg("num2str", "num2str", nArgs(1), func(a []types.Type) types.Type { return types.MatrixOf(types.IStrg) })
	reg("disp", "disp", nArgs(1), func(a []types.Type) types.Type { return types.Exact(types.IReal, 0, 0, types.RangeBot) })
	reg("fprintf", "fprintf", anyArgs, func(a []types.Type) types.Type {
		return types.ScalarOf(types.IInt, types.MkRange(0, math.Inf(1)))
	})
	reg("error", "error never returns", anyArgs, func(a []types.Type) types.Type { return types.Bottom })
	reg("tic", "tic", nArgs(0), func(a []types.Type) types.Type { return types.Exact(types.IReal, 0, 0, types.RangeBot) })
	reg("toc", "toc", nArgs(0), func(a []types.Type) types.Type { return types.ScalarOf(types.IReal, types.MkRange(0, math.Inf(1))) })

	// --- constants -------------------------------------------------------------------------
	constRule := func(name string, t types.Type) {
		reg(name, "constant "+name, nArgs(0), func(a []types.Type) types.Type { return t })
	}
	constRule("pi", types.ScalarOf(types.IReal, types.Const(math.Pi)))
	constRule("e", types.ScalarOf(types.IReal, types.Const(math.E)))
	constRule("eps", types.ScalarOf(types.IReal, types.Const(2.220446049250313e-16)))
	constRule("Inf", types.ScalarOf(types.IReal, types.MkRange(math.Inf(1), math.Inf(1))))
	constRule("inf", types.ScalarOf(types.IReal, types.MkRange(math.Inf(1), math.Inf(1))))
	constRule("NaN", types.ScalarOf(types.IReal, types.RangeTop))
	constRule("nan", types.ScalarOf(types.IReal, types.RangeTop))
	constRule("i", types.ScalarOf(types.ICplx, types.RangeTop))
	constRule("j", types.ScalarOf(types.ICplx, types.RangeTop))
	constRule("true", types.ScalarOf(types.IBool, types.Const(1)))
	constRule("false", types.ScalarOf(types.IBool, types.Const(0)))
}

func anyArgs([]types.Type) bool { return true }

func nArgs0toN(n int) func([]types.Type) bool {
	return func(a []types.Type) bool { return len(a) <= n }
}

// constShapeArgs decodes constructor size arguments with constant
// ranges into an exact shape; nil when not constant.
func constShapeArgs(a []types.Type) *types.Shape {
	switch len(a) {
	case 0:
		s := types.ScalarShape
		return &s
	case 1:
		if n, ok := a[0].R.IsConst(); ok && a[0].IsScalar() && n == math.Trunc(n) && n >= 0 {
			s := types.Shape{R: types.Fin(int(n)), C: types.Fin(int(n))}
			return &s
		}
	case 2:
		r, ok1 := a[0].R.IsConst()
		c, ok2 := a[1].R.IsConst()
		if ok1 && ok2 && r == math.Trunc(r) && c == math.Trunc(c) && r >= 0 && c >= 0 {
			s := types.Shape{R: types.Fin(int(r)), C: types.Fin(int(c))}
			return &s
		}
	}
	return nil
}

// boundedShapeArgs derives an upper shape bound from bounded size args.
func boundedShapeArgs(a []types.Type) *types.Shape {
	ext := func(t types.Type) (types.Extent, bool) {
		if t.R.IsBot() || math.IsInf(t.R.Hi, 1) {
			return types.InfExt, false
		}
		return types.Fin(int(t.R.Hi)), true
	}
	switch len(a) {
	case 1:
		if e, ok := ext(a[0]); ok {
			s := types.Shape{R: e, C: e}
			return &s
		}
	case 2:
		er, ok1 := ext(a[0])
		ec, ok2 := ext(a[1])
		if ok1 && ok2 {
			s := types.Shape{R: er, C: ec}
			return &s
		}
	}
	return nil
}

// reduceShape gives the shape of a columnwise reduction: vectors (and
// scalars) reduce to a scalar; an m x n matrix reduces to 1 x n.
func reduceShape(t types.Type) (types.Shape, types.Shape) {
	if t.IsScalar() {
		return types.ScalarShape, types.ScalarShape
	}
	isVec := func(s types.Shape) bool {
		return (!s.R.Inf && s.R.N <= 1) || (!s.C.Inf && s.C.N <= 1)
	}
	if isVec(t.MaxShape) {
		return types.ScalarShape, types.ScalarShape
	}
	// Could be a matrix: result is 1 x cols (or scalar for vectors).
	minS := types.Shape{R: types.Fin(1), C: types.Fin(1)}
	maxS := types.Shape{R: types.Fin(1), C: t.MaxShape.C}
	if r, c, ok := t.ExactShape(); ok && r > 1 && c > 0 {
		minS = types.Shape{R: types.Fin(1), C: types.Fin(c)}
		maxS = minS
	}
	return minS, maxS
}

// extentAlong returns the min/max extent of a type along dimension d
// (1 = rows, 2 = cols).
func extentAlong(t types.Type, d int) (types.Extent, types.Extent) {
	if d == 1 {
		return t.MinShape.R, t.MaxShape.R
	}
	return t.MinShape.C, t.MaxShape.C
}
