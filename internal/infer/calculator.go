// Package infer implements MaJIC's type inference (paper §2.3): an
// iterative join-of-all-paths monotonic dataflow framework over the CFG,
// driven by a type calculator — a database of guarded transfer rules
// evaluated most-restrictive-first, with an implicit ⊤ default. The
// calculator runs forward (JIT inference: argument types → result types)
// and backward (the speculator's hint rules: result/usage constraints →
// argument types).
package infer

import (
	"math"

	"repro/internal/types"
)

// Rule is one guarded transfer function. Pre tests the argument types;
// App computes the result. Rules for a name are tried in order until a
// precondition holds (paper: "progress from the most restrictive rules
// to the least restrictive ones").
type Rule struct {
	Name string // operator spelling or builtin name
	Desc string
	Pre  func(a []types.Type) bool
	App  func(a []types.Type) types.Type
}

// Calculator is the rule database. A single shared instance (DefaultCalc)
// serves all compilations; rules are immutable after init.
type Calculator struct {
	forward map[string][]Rule
}

// DefaultCalc is the shared rule database.
var DefaultCalc = newCalculator()

// NumRules reports the number of registered forward rules (the analog
// of the paper's "about 250 rules" statistic).
func (c *Calculator) NumRules() int {
	n := 0
	for _, rs := range c.forward {
		n += len(rs)
	}
	return n
}

// HasRules reports whether any rule is registered under name.
func (c *Calculator) HasRules(name string) bool { return len(c.forward[name]) > 0 }

// Rules returns the registered rule descriptions grouped by operator or
// builtin name, in precedence order (most restrictive first) — the
// paper's rule-database view.
func (c *Calculator) Rules() map[string][]string {
	out := make(map[string][]string, len(c.forward))
	for name, rs := range c.forward {
		descs := make([]string, len(rs))
		for i, r := range rs {
			descs[i] = r.Desc
		}
		out[name] = descs
	}
	return out
}

func (c *Calculator) add(name, desc string, pre func([]types.Type) bool, app func([]types.Type) types.Type) {
	c.forward[name] = append(c.forward[name], Rule{Name: name, Desc: desc, Pre: pre, App: app})
}

// Forward applies the first matching rule for name; with no match it
// returns ⊤ (the implicit default rule that keeps the engine
// conservative for constructs without rules).
func (c *Calculator) Forward(name string, args []types.Type) types.Type {
	for _, r := range c.forward[name] {
		if r.Pre(args) {
			// The rule bodies predate the sparsity dimension; the
			// adjustment layer computes the result's Sp bit from the
			// operator's runtime representation rules (sparse.go).
			return sparseAdjust(name, args, r.App(args))
		}
	}
	return types.Top
}

// --- predicate helpers -------------------------------------------------------

func allScalar(a []types.Type) bool {
	for _, t := range a {
		if !t.IsScalar() {
			return false
		}
	}
	return true
}

func allNumericLeq(top types.Intrinsic) func([]types.Type) bool {
	return func(a []types.Type) bool {
		for _, t := range a {
			if !types.LeqI(t.I, top) {
				return false
			}
		}
		return true
	}
}

func nArgs(n int) func([]types.Type) bool {
	return func(a []types.Type) bool { return len(a) == n }
}

func and(ps ...func([]types.Type) bool) func([]types.Type) bool {
	return func(a []types.Type) bool {
		for _, p := range ps {
			if !p(a) {
				return false
			}
		}
		return true
	}
}

func isIntScalar(t types.Type) bool { return t.IsScalar() && types.LeqI(t.I, types.IInt) }

func isRealScalar(t types.Type) bool { return t.IsScalar() && types.LeqI(t.I, types.IReal) }

// --- interval arithmetic -----------------------------------------------------

func addR(a, b types.Range) types.Range {
	if a.IsBot() || b.IsBot() {
		return types.RangeTop
	}
	return types.MkRange(a.Lo+b.Lo, a.Hi+b.Hi)
}

func subR(a, b types.Range) types.Range {
	if a.IsBot() || b.IsBot() {
		return types.RangeTop
	}
	return types.MkRange(a.Lo-b.Hi, a.Hi-b.Lo)
}

func mulR(a, b types.Range) types.Range {
	if a.IsBot() || b.IsBot() {
		return types.RangeTop
	}
	p := [4]float64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi}
	lo, hi := p[0], p[0]
	for _, x := range p[1:] {
		if x < lo || math.IsNaN(x) {
			lo = x
		}
		if x > hi || math.IsNaN(x) {
			hi = x
		}
	}
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return types.RangeTop
	}
	return types.MkRange(lo, hi)
}

func divR(a, b types.Range) types.Range {
	if a.IsBot() || b.IsBot() || (b.Lo <= 0 && b.Hi >= 0) {
		// denominator interval contains zero: unbounded
		return types.RangeTop
	}
	p := [4]float64{a.Lo / b.Lo, a.Lo / b.Hi, a.Hi / b.Lo, a.Hi / b.Hi}
	lo, hi := p[0], p[0]
	for _, x := range p[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return types.MkRange(lo, hi)
}

func negR(a types.Range) types.Range {
	if a.IsBot() {
		return a
	}
	return types.MkRange(-a.Hi, -a.Lo)
}

func absR(a types.Range) types.Range {
	if a.IsBot() {
		return types.RangeTop
	}
	lo, hi := math.Abs(a.Lo), math.Abs(a.Hi)
	if lo > hi {
		lo, hi = hi, lo
	}
	if a.Lo <= 0 && a.Hi >= 0 {
		lo = 0
	}
	return types.MkRange(lo, hi)
}

func monoR(a types.Range, f func(float64) float64) types.Range {
	if a.IsBot() {
		return types.RangeTop
	}
	return types.MkRange(f(a.Lo), f(a.Hi))
}

// powR handles x^k ranges for the monotone cases; everything else is ⊤.
func powR(a, b types.Range) types.Range {
	if a.IsBot() || b.IsBot() {
		return types.RangeTop
	}
	k, isConst := b.IsConst()
	if !isConst {
		if a.Lo >= 0 && b.Lo >= 0 {
			return types.MkRange(0, math.Inf(1))
		}
		return types.RangeTop
	}
	switch {
	case a.Lo >= 0:
		lo, hi := math.Pow(a.Lo, k), math.Pow(a.Hi, k)
		if lo > hi {
			lo, hi = hi, lo
		}
		return types.MkRange(lo, hi)
	case k == math.Trunc(k) && int64(k)%2 == 0 && k > 0:
		hi := math.Max(math.Pow(a.Lo, k), math.Pow(a.Hi, k))
		return types.MkRange(0, hi)
	case k == math.Trunc(k) && k > 0:
		return types.MkRange(math.Pow(a.Lo, k), math.Pow(a.Hi, k))
	}
	return types.RangeTop
}

// --- shape combination -------------------------------------------------------

// elemShape computes the shape bounds of an elementwise binary result,
// with the paper's rule ordering: the most restrictive cases first.
func elemShape(a, b types.Type) (minS, maxS types.Shape) {
	switch {
	case a.IsScalar() && b.IsScalar():
		return types.ScalarShape, types.ScalarShape
	case a.IsScalar():
		return b.MinShape, b.MaxShape
	case b.IsScalar():
		return a.MinShape, a.MaxShape
	case !a.MaybeScalar() && !b.MaybeScalar():
		// Neither can broadcast: shapes must agree at runtime, so both
		// bounds constrain the result.
		return types.JoinS(a.MinShape, b.MinShape), types.MeetS(a.MaxShape, b.MaxShape)
	default:
		// One side might be a broadcasting scalar: only weak bounds.
		return types.MeetS(a.MinShape, b.MinShape), types.JoinS(a.MaxShape, b.MaxShape)
	}
}

// arithI joins intrinsics under arithmetic: bool promotes to int, char
// to real; floor is the least intrinsic the operator can produce.
func arithI(a, b, floor types.Intrinsic) types.Intrinsic {
	norm := func(i types.Intrinsic) types.Intrinsic {
		switch i {
		case types.IBool:
			return types.IInt
		case types.IStrg:
			return types.IReal
		default:
			return i
		}
	}
	out := types.JoinI(norm(a), norm(b))
	if out == types.ITop {
		return types.ITop
	}
	return types.JoinI(out, floor)
}

func numericRange(t types.Type) types.Range {
	if t.I == types.ICplx || t.I == types.ITop || t.I == types.IStrg {
		return types.RangeTop
	}
	return t.R
}

// boolResult builds a logical result type over the given shape bounds.
func boolResult(minS, maxS types.Shape) types.Type {
	return types.Type{I: types.IBool, MinShape: minS, MaxShape: maxS, R: types.MkRange(0, 1)}
}
