package types

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// genType produces a random lattice element for property tests.
func genType(r *rand.Rand) Type {
	intrinsics := []Intrinsic{IBottom, IBool, IInt, IReal, ICplx, IStrg, ITop}
	i := intrinsics[r.Intn(len(intrinsics))]
	if i == IBottom {
		return Bottom
	}
	ext := func() Extent {
		switch r.Intn(4) {
		case 0:
			return InfExt
		default:
			return Fin(r.Intn(5))
		}
	}
	minS := Shape{ext(), ext()}
	maxS := JoinS(minS, Shape{ext(), ext()}) // keep min ⊑ max
	var rng Range
	switch r.Intn(4) {
	case 0:
		rng = RangeBot
	case 1:
		rng = RangeTop
	case 2:
		v := float64(r.Intn(21) - 10)
		rng = Const(v)
	default:
		lo := float64(r.Intn(21) - 10)
		hi := lo + float64(r.Intn(10))
		rng = MkRange(lo, hi)
	}
	return Type{I: i, MinShape: minS, MaxShape: maxS, R: rng}
}

func quickCfg() *quick.Config {
	r := rand.New(rand.NewSource(7))
	return &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(genType(r))
			}
		},
	}
}

// typeEq compares lattice elements by mutual ⊑ (plain == mis-compares
// the NaN endpoints of ⊥ ranges).
func typeEq(a, b Type) bool { return Leq(a, b) && Leq(b, a) }

func TestJoinCommutative(t *testing.T) {
	f := func(a, b interface{}) bool {
		x, y := a.(Type), b.(Type)
		return typeEq(Join(x, y), Join(y, x))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestJoinIdempotent(t *testing.T) {
	f := func(a interface{}) bool {
		x := a.(Type)
		j := Join(x, x)
		return Leq(x, j) && Leq(j, x)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestJoinUpperBound(t *testing.T) {
	f := func(a, b interface{}) bool {
		x, y := a.(Type), b.(Type)
		j := Join(x, y)
		return Leq(x, j) && Leq(y, j)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestJoinAssociativeOrder(t *testing.T) {
	f := func(a, b, c interface{}) bool {
		x, y, z := a.(Type), b.(Type), c.(Type)
		l := Join(Join(x, y), z)
		r := Join(x, Join(y, z))
		return Leq(l, r) && Leq(r, l)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestLeqPartialOrder(t *testing.T) {
	// reflexive
	f := func(a interface{}) bool { x := a.(Type); return Leq(x, x) }
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error("reflexivity:", err)
	}
	// transitive: a ⊑ a⊔b ⊑ (a⊔b)⊔c
	g := func(a, b, c interface{}) bool {
		x, y, z := a.(Type), b.(Type), c.(Type)
		j1 := Join(x, y)
		j2 := Join(j1, z)
		return Leq(x, j1) && Leq(j1, j2) && Leq(x, j2)
	}
	if err := quick.Check(g, quickCfg()); err != nil {
		t.Error("transitivity:", err)
	}
}

func TestBottomTopLaws(t *testing.T) {
	f := func(a interface{}) bool {
		x := a.(Type)
		if !Leq(Bottom, x) || !Leq(x, Top) {
			return false
		}
		jb := Join(x, Bottom)
		jt := Join(x, Top)
		return Leq(jb, x) && Leq(x, jb) && Leq(jt, Top) && Leq(Top, jt)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestWidenDominates(t *testing.T) {
	// Widen(prev, next) must be ⊒ next (safe acceleration).
	f := func(a, b interface{}) bool {
		prev, next := a.(Type), b.(Type)
		w := Widen(prev, next)
		return Leq(next, w)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestIntrinsicLattice(t *testing.T) {
	// chain: ⊥ ⊑ bool ⊑ int ⊑ real ⊑ cplx ⊑ ⊤ and ⊥ ⊑ strg ⊑ ⊤
	chain := []Intrinsic{IBottom, IBool, IInt, IReal, ICplx, ITop}
	for i := 0; i < len(chain); i++ {
		for j := i; j < len(chain); j++ {
			if !LeqI(chain[i], chain[j]) {
				t.Errorf("LeqI(%v, %v) = false", chain[i], chain[j])
			}
			if i < j && LeqI(chain[j], chain[i]) {
				t.Errorf("LeqI(%v, %v) = true", chain[j], chain[i])
			}
		}
	}
	if !LeqI(IBottom, IStrg) || !LeqI(IStrg, ITop) {
		t.Error("strg arm broken")
	}
	for _, n := range []Intrinsic{IBool, IInt, IReal, ICplx} {
		if LeqI(n, IStrg) || LeqI(IStrg, n) {
			t.Errorf("strg must be incomparable with %v", n)
		}
		if JoinI(n, IStrg) != ITop {
			t.Errorf("join(%v, strg) should be ⊤", n)
		}
	}
}

func TestRangeLattice(t *testing.T) {
	if !LeqR(RangeBot, Const(5)) {
		t.Error("⊥ ⊑ [5,5]")
	}
	if !LeqR(Const(5), MkRange(0, 10)) {
		t.Error("[5,5] ⊑ [0,10]")
	}
	if LeqR(MkRange(0, 10), Const(5)) {
		t.Error("[0,10] ⊄ [5,5]")
	}
	if !LeqR(MkRange(0, 10), RangeTop) {
		t.Error("anything ⊑ ⊤")
	}
	j := JoinR(MkRange(0, 2), MkRange(5, 9))
	if j.Lo != 0 || j.Hi != 9 {
		t.Errorf("hull join got %v", j)
	}
	if v, ok := Const(3.5).IsConst(); !ok || v != 3.5 {
		t.Error("IsConst on degenerate range")
	}
	if _, ok := MkRange(1, 2).IsConst(); ok {
		t.Error("IsConst on non-degenerate range")
	}
}

func TestShapeLattice(t *testing.T) {
	if !LeqS(ShapeBot, ScalarShape) || !LeqS(ScalarShape, ShapeTop) {
		t.Error("shape chain broken")
	}
	a := Shape{Fin(2), Fin(5)}
	b := Shape{Fin(4), Fin(3)}
	if j := JoinS(a, b); j != (Shape{Fin(4), Fin(5)}) {
		t.Errorf("JoinS = %v", j)
	}
	if m := MeetS(a, b); m != (Shape{Fin(2), Fin(3)}) {
		t.Errorf("MeetS = %v", m)
	}
	if LeqS(a, b) || LeqS(b, a) {
		t.Error("incomparable shapes compared")
	}
	if n, ok := a.Numel(); !ok || n != 10 {
		t.Error("Numel")
	}
	if _, ok := ShapeTop.Numel(); ok {
		t.Error("Numel of ⊤ must not be exact")
	}
}

func TestOfValue(t *testing.T) {
	cases := []struct {
		v    *mat.Value
		i    Intrinsic
		r, c int
	}{
		{mat.Scalar(2.5), IReal, 1, 1},
		{mat.Scalar(3), IInt, 1, 1}, // integral real scalar refines to int
		{mat.IntScalar(7), IInt, 1, 1},
		{mat.BoolScalar(true), IBool, 1, 1},
		{mat.ComplexScalar(1 + 2i), ICplx, 1, 1},
		{mat.FromString("hi"), IStrg, 1, 2},
		{mat.New(3, 4), IInt, 3, 4}, // all zeros is integral
	}
	for _, c := range cases {
		ty := OfValue(c.v)
		if ty.I != c.i {
			t.Errorf("OfValue(%v).I = %v, want %v", c.v, ty.I, c.i)
		}
		r, cc, ok := ty.ExactShape()
		if !ok || r != c.r || cc != c.c {
			t.Errorf("OfValue shape = %v", ty)
		}
	}
	// scalar range is the constant
	ty := OfValue(mat.Scalar(4.25))
	if v, ok := ty.R.IsConst(); !ok || v != 4.25 {
		t.Errorf("scalar range = %v", ty.R)
	}
	// huge arrays skip the range scan
	big := mat.New(1000, 1000)
	if !OfValue(big).R.IsTop() {
		t.Error("large array range should be ⊤")
	}
}

func TestSignatureSafety(t *testing.T) {
	intScalar := ScalarOf(IInt, Const(20))
	widened := ScalarOf(IInt, RangeTop)
	realMat := MatrixOf(IReal)
	cplxMat := MatrixOf(ICplx)

	// Q ⊑ T safety (paper §2.2.1): actual subtypes of assumed types.
	if !(Signature{widened}).Safe(Signature{intScalar}) {
		t.Error("const int scalar must be safe for widened int scalar code")
	}
	if (Signature{intScalar}).Safe(Signature{widened}) {
		t.Error("widened invocation unsafe for constant-specialized code")
	}
	if !(Signature{cplxMat}).Safe(Signature{OfValue(mat.Scalar(1.5))}) {
		t.Error("real scalar must be safe for complex-matrix code")
	}
	if (Signature{realMat}).Safe(Signature{OfValue(mat.ComplexScalar(1i))}) {
		t.Error("complex actual unsafe for real-matrix code")
	}
	if (Signature{intScalar}).Safe(Signature{intScalar, intScalar}) {
		t.Error("arity mismatch must be unsafe")
	}
}

func TestSignatureDistance(t *testing.T) {
	q := Signature{OfValue(mat.Scalar(20))}
	exact := Signature{OfValue(mat.Scalar(20))}
	widened := Signature{ScalarOf(IInt, RangeTop)}
	generic := Signature{Top}

	dExact := exact.Distance(q)
	dWide := widened.Distance(q)
	dTop := generic.Distance(q)
	if !(dExact < dWide && dWide < dTop) {
		t.Errorf("distance ordering broken: exact=%d wide=%d top=%d", dExact, dWide, dTop)
	}
	if dExact != 0 {
		t.Errorf("identical signatures should have distance 0, got %d", dExact)
	}
	if dWide < 0 || dTop < 0 {
		t.Error("distances must be nonnegative")
	}
}

func TestSignatureKeyStable(t *testing.T) {
	s := Signature{ScalarOf(IInt, Const(3)), MatrixOf(IReal)}
	if s.Key() != s.Key() {
		t.Error("Key must be deterministic")
	}
	other := Signature{ScalarOf(IInt, Const(4)), MatrixOf(IReal)}
	if s.Key() == other.Key() {
		t.Error("different signatures must have different keys")
	}
}

func TestWidenStabilizes(t *testing.T) {
	// Repeated widening along a growing chain must reach a fixpoint.
	cur := ScalarOf(IInt, Const(0))
	for i := 1; i < 100; i++ {
		next := ScalarOf(IInt, MkRange(0, float64(i)))
		w := Widen(cur, Join(cur, next))
		if i > 2 && !math.IsInf(w.R.Hi, 1) {
			t.Fatalf("widening did not accelerate at step %d: %v", i, w.R)
		}
		if w == cur && i > 3 {
			return // stabilized
		}
		cur = w
	}
	// must have stabilized to an Inf-bounded range
	if !math.IsInf(cur.R.Hi, 1) {
		t.Errorf("final range %v", cur.R)
	}
}
