// Package types implements MaJIC's type system (paper §2.2): the
// Cartesian product T = Li × Ls × Ls × Ll of the intrinsic lattice, the
// shape lattice (tracked twice, as guaranteed lower bounds and
// conservative upper bounds), and the range lattice over real
// intervals. It also implements type signatures and the subtype ("safe
// to execute") and Manhattan-distance relations the code repository
// uses (paper §2.2.1).
package types

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/mat"
)

// Intrinsic is an element of the lattice Li:
//
//	⊥ ⊑ bool ⊑ int ⊑ real ⊑ cplx ⊑ ⊤  and  ⊥ ⊑ strg ⊑ ⊤
type Intrinsic uint8

const (
	IBottom Intrinsic = iota
	IBool
	IInt
	IReal
	ICplx
	IStrg
	ITop
)

// String renders the lattice element.
func (i Intrinsic) String() string {
	return [...]string{"⊥", "bool", "int", "real", "cplx", "strg", "⊤"}[i]
}

// numeric reports membership of the numeric chain.
func (i Intrinsic) numeric() bool { return i >= IBool && i <= ICplx }

// LeqI is the partial order ⊑ of Li.
func LeqI(a, b Intrinsic) bool {
	if a == IBottom || b == ITop || a == b {
		return true
	}
	if a == ITop || b == IBottom {
		return false
	}
	if a == IStrg || b == IStrg {
		return false // strg is comparable only with ⊥/⊤ and itself
	}
	return a <= b // numeric chain
}

// JoinI is the least upper bound in Li.
func JoinI(a, b Intrinsic) Intrinsic {
	switch {
	case LeqI(a, b):
		return b
	case LeqI(b, a):
		return a
	default:
		return ITop // numeric vs strg
	}
}

// levelI is the chain height used by the Manhattan distance.
func levelI(i Intrinsic) int {
	switch i {
	case IBottom:
		return 0
	case IBool:
		return 1
	case IInt:
		return 2
	case IReal:
		return 3
	case ICplx:
		return 4
	case IStrg:
		return 2
	default:
		return 5
	}
}

// Extent is one dimension of a shape descriptor: a natural number or ∞.
type Extent struct {
	N   int
	Inf bool
}

// Fin returns a finite extent.
func Fin(n int) Extent { return Extent{N: n} }

// InfExt is the infinite extent.
var InfExt = Extent{Inf: true}

func (e Extent) String() string {
	if e.Inf {
		return "∞"
	}
	return fmt.Sprintf("%d", e.N)
}

// LeqE compares extents.
func LeqE(a, b Extent) bool {
	if b.Inf {
		return true
	}
	if a.Inf {
		return false
	}
	return a.N <= b.N
}

func minE(a, b Extent) Extent {
	if LeqE(a, b) {
		return a
	}
	return b
}

func maxE(a, b Extent) Extent {
	if LeqE(a, b) {
		return b
	}
	return a
}

// Shape is an element of Ls: a ⟨rows, cols⟩ pair. ⊥s = ⟨0,0⟩ and
// ⊤s = ⟨∞,∞⟩; the order is componentwise (paper §2.2).
type Shape struct {
	R, C Extent
}

// ShapeBot is ⟨0,0⟩.
var ShapeBot = Shape{Fin(0), Fin(0)}

// ShapeTop is ⟨∞,∞⟩.
var ShapeTop = Shape{InfExt, InfExt}

// ScalarShape is ⟨1,1⟩.
var ScalarShape = Shape{Fin(1), Fin(1)}

func (s Shape) String() string { return fmt.Sprintf("<%s,%s>", s.R, s.C) }

// LeqS is the componentwise order of Ls.
func LeqS(a, b Shape) bool { return LeqE(a.R, b.R) && LeqE(a.C, b.C) }

// MeetS is the componentwise minimum (used when joining lower bounds).
func MeetS(a, b Shape) Shape { return Shape{minE(a.R, b.R), minE(a.C, b.C)} }

// JoinS is the componentwise maximum (used when joining upper bounds).
func JoinS(a, b Shape) Shape { return Shape{maxE(a.R, b.R), maxE(a.C, b.C)} }

// Exact reports whether the shape has both extents finite.
func (s Shape) Exact() bool { return !s.R.Inf && !s.C.Inf }

// IsScalar reports a 1x1 shape.
func (s Shape) IsScalar() bool { return s == ScalarShape }

// Numel returns the element count for finite shapes.
func (s Shape) Numel() (int, bool) {
	if !s.Exact() {
		return 0, false
	}
	return s.R.N * s.C.N, true
}

// Range is an element of Ll: a real interval [Lo, Hi]. The bottom
// element is ⟨NaN, NaN⟩ (no value); the top is ⟨-∞, +∞⟩ (paper §2.2).
type Range struct {
	Lo, Hi float64
}

// RangeBot is the empty range.
var RangeBot = Range{math.NaN(), math.NaN()}

// RangeTop is the full real line.
var RangeTop = Range{math.Inf(-1), math.Inf(1)}

// Const returns the degenerate range [x, x] — the constant-propagation
// encoding the paper describes.
func Const(x float64) Range { return Range{x, x} }

// MkRange returns [lo, hi].
func MkRange(lo, hi float64) Range { return Range{lo, hi} }

// IsBot reports the empty range.
func (r Range) IsBot() bool { return math.IsNaN(r.Lo) }

// IsTop reports the full range.
func (r Range) IsTop() bool { return math.IsInf(r.Lo, -1) && math.IsInf(r.Hi, 1) }

// IsConst reports a single-point range and its value.
func (r Range) IsConst() (float64, bool) {
	if !r.IsBot() && r.Lo == r.Hi {
		return r.Lo, true
	}
	return 0, false
}

func (r Range) String() string {
	if r.IsBot() {
		return "⊥l"
	}
	if r.IsTop() {
		return "⊤l"
	}
	return fmt.Sprintf("[%g,%g]", r.Lo, r.Hi)
}

// LeqR is the order of Ll: a ⊑ b iff a = ⊥ or b contains a.
func LeqR(a, b Range) bool {
	if a.IsBot() {
		return true
	}
	if b.IsBot() {
		return false
	}
	return b.Lo <= a.Lo && a.Hi <= b.Hi
}

// JoinR is interval union (convex hull).
func JoinR(a, b Range) Range {
	if a.IsBot() {
		return b
	}
	if b.IsBot() {
		return a
	}
	return Range{math.Min(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)}
}

// Type is the full MaJIC type: T = Li × Ls × Ls × Ll. MinShape is the
// guaranteed lower bound on the shape, MaxShape the conservative upper
// bound; an exact shape has MinShape == MaxShape. The range applies
// only to real-chain values; complex and string types carry ⊤/⊥ ranges.
type Type struct {
	I        Intrinsic
	MinShape Shape
	MaxShape Shape
	R        Range
	// Sp is the sparsity dimension of the lattice: true means the value
	// MAY use the sparse (CSR) storage form, false means it is provably
	// dense. The two-point lattice is dense ⊑ sparse — joins go sparse
	// ("may be sparse"), so typed code compiled for Sp=false never sees
	// a sparse representation at runtime (Leq enforces it).
	Sp bool
}

// Bottom is the least type.
var Bottom = Type{I: IBottom, MinShape: ShapeTop, MaxShape: ShapeBot, R: RangeBot}

// Top is the greatest type (unknown everything, possibly sparse).
var Top = Type{I: ITop, MinShape: ShapeBot, MaxShape: ShapeTop, R: RangeTop, Sp: true}

// IsBottom reports the bottom type.
func (t Type) IsBottom() bool { return t.I == IBottom }

func (t Type) String() string {
	return fmt.Sprintf("{%s min%s max%s %s}", t.I, t.MinShape, t.MaxShape, t.R)
}

// Exact builds a type with an exact shape.
func Exact(i Intrinsic, rows, cols int, r Range) Type {
	s := Shape{Fin(rows), Fin(cols)}
	return Type{I: i, MinShape: s, MaxShape: s, R: r}
}

// ScalarOf builds a 1x1 type.
func ScalarOf(i Intrinsic, r Range) Type { return Exact(i, 1, 1, r) }

// MatrixOf builds a type with unknown (⊤) shape bounds.
func MatrixOf(i Intrinsic) Type {
	return Type{I: i, MinShape: ShapeBot, MaxShape: ShapeTop, R: RangeTop}
}

// Join is the least upper bound in the product lattice. Lower shape
// bounds join by componentwise minimum, upper bounds by maximum, and
// ranges by interval union.
func Join(a, b Type) Type {
	if a.IsBottom() {
		return b
	}
	if b.IsBottom() {
		return a
	}
	return Type{
		I:        JoinI(a.I, b.I),
		MinShape: MeetS(a.MinShape, b.MinShape),
		MaxShape: JoinS(a.MaxShape, b.MaxShape),
		R:        JoinR(a.R, b.R),
		Sp:       a.Sp || b.Sp,
	}
}

// Leq is the subtype order: Q ⊑ T means a value of type Q may safely
// flow where T was assumed (paper §2.2.1's safety condition).
func Leq(q, t Type) bool {
	if q.IsBottom() {
		return true
	}
	if t.IsBottom() {
		return false
	}
	return LeqI(q.I, t.I) &&
		LeqS(t.MinShape, q.MinShape) && // T's guarantee must hold for Q
		LeqS(q.MaxShape, t.MaxShape) &&
		LeqR(q.R, t.R) &&
		(!q.Sp || t.Sp) // a maybe-sparse value may not enter dense-assuming code
}

// ExactShape reports whether the shape is exactly known (min == max and
// finite), returning it.
func (t Type) ExactShape() (rows, cols int, ok bool) {
	if t.MinShape == t.MaxShape && t.MinShape.Exact() {
		return t.MinShape.R.N, t.MinShape.C.N, true
	}
	return 0, 0, false
}

// IsScalar reports a provably 1x1 type.
func (t Type) IsScalar() bool {
	return t.MinShape.IsScalar() && t.MaxShape.IsScalar()
}

// MaybeScalar reports whether the type could be 1x1.
func (t Type) MaybeScalar() bool {
	return LeqS(t.MinShape, ScalarShape) && LeqS(ScalarShape, t.MaxShape)
}

// Widen pushes unstable components to their tops; the inference engine
// applies it after a capped number of loop iterations, keeping fixpoints
// cheap (the paper "caps the number of iterations").
func Widen(prev, next Type) Type {
	out := next
	if !LeqR(next.R, prev.R) {
		// Range still growing: widen the moving endpoints to infinity.
		lo, hi := next.R.Lo, next.R.Hi
		if lo < prev.R.Lo {
			lo = math.Inf(-1)
		}
		if hi > prev.R.Hi {
			hi = math.Inf(1)
		}
		out.R = Range{lo, hi}
	}
	if !LeqS(next.MaxShape, prev.MaxShape) {
		out.MaxShape = JoinS(next.MaxShape, ShapeTop)
	}
	if !LeqS(prev.MinShape, next.MinShape) {
		out.MinShape = MeetS(next.MinShape, ShapeBot)
	}
	return out
}

// OfValue computes the exact runtime type of a value — the source of
// the precise JIT type signatures ("type signature derived directly
// from the input values of the runtime invocation"). Scalars yield
// constant ranges; small arrays yield min/max ranges; large arrays
// yield ⊤ ranges to keep signature computation O(1)-ish.
func OfValue(v *mat.Value) Type {
	const rangeScanLimit = 64
	var i Intrinsic
	switch v.Kind() {
	case mat.Bool:
		i = IBool
	case mat.Int:
		i = IInt
	case mat.Real:
		i = IReal
	case mat.Complex:
		i = ICplx
	case mat.Char:
		i = IStrg
	}
	t := Exact(i, v.Rows(), v.Cols(), RangeTop)
	if v.IsSparse() {
		// No payload scan: sparse values always carry ⊤ ranges, and the
		// dense accessors must not be touched.
		t.Sp = true
		return t
	}
	if i == ICplx || i == IStrg {
		return t
	}
	n := v.Numel()
	if n == 0 {
		t.R = RangeBot
		return t
	}
	if n <= rangeScanLimit {
		re := v.Re()
		lo, hi := re[0], re[0]
		for _, x := range re[1:] {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		t.R = Range{lo, hi}
		if i == IReal && v.AllIntegral() {
			t.I = IInt
		}
	}
	return t
}

// Signature is the tuple of parameter types attached to compiled code.
type Signature []Type

// SignatureOf derives the exact signature of an argument list.
func SignatureOf(args []*mat.Value) Signature {
	sig := make(Signature, len(args))
	for i, a := range args {
		sig[i] = OfValue(a)
	}
	return sig
}

// Safe reports whether an invocation with actual signature q may run
// code compiled under signature t: Qi ⊑ Ti for every parameter.
func (t Signature) Safe(q Signature) bool {
	if len(q) != len(t) {
		return false
	}
	for i := range t {
		if !Leq(q[i], t[i]) {
			return false
		}
	}
	return true
}

// Distance is the Manhattan-like distance the repository's function
// locator uses to pick the best safe candidate: smaller means the
// compiled assumptions are closer to (hence better specialized for) the
// actual argument types.
func (t Signature) Distance(q Signature) int {
	d := 0
	for i := range t {
		d += typeDistance(q[i], t[i])
	}
	return d
}

func typeDistance(q, t Type) int {
	d := levelI(t.I) - levelI(q.I)
	if d < 0 {
		d = -d
	}
	if q.Sp != t.Sp {
		d++
	}
	// Shape looseness: each non-exact bound costs.
	if t.MinShape != t.MaxShape {
		d += 2
	}
	if !t.MaxShape.Exact() {
		d += 2
	}
	// Range looseness.
	if t.R.IsTop() {
		d += 2
	} else if _, c := t.R.IsConst(); !c {
		d++
	}
	if _, qc := q.R.IsConst(); qc {
		if _, tc := t.R.IsConst(); !tc {
			d++
		}
	}
	return d
}

// Key renders a canonical string for use as a cache key.
func (t Signature) Key() string {
	var b strings.Builder
	for i, ty := range t {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s|%s|%s|%s", ty.I, ty.MinShape, ty.MaxShape, ty.R)
		if ty.Sp {
			// Dense keys stay byte-identical to the pre-sparse encoding so
			// dense-only repositories and paper-mode outputs are unchanged.
			b.WriteString("|sp")
		}
	}
	return b.String()
}

func (t Signature) String() string {
	parts := make([]string, len(t))
	for i, ty := range t {
		parts[i] = ty.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
