// Package parallel is the shared data-parallel runtime under the dense
// kernels: a persistent, lazily-started worker pool and a single
// primitive, For, that partitions an index range across workers. The
// blocked dgemm/dgemv kernels (internal/blas), the generic elementwise
// operators (internal/mat) and the fused elementwise programs
// (internal/vm) all schedule through it, so one engine option —
// core.Options.Threads — sizes every dense loop in the process.
//
// Design constraints, in order:
//
//  1. Bit-identity. For only ever partitions an index range into
//     disjoint [lo, hi) chunks; it never changes what a worker computes
//     for an index. Every kernel built on it keeps its per-element
//     operation sequence independent of the partitioning, so results
//     are byte-for-byte identical for every thread count (the
//     serial-vs-parallel differential suite in internal/core enforces
//     this).
//
//  2. Zero overhead when small. Below the caller's grain threshold For
//     degenerates to one inline call on the caller's goroutine — no
//     atomics, no channel sends — so the paper-benchmark operands
//     (hundreds of elements) never pay scheduling cost.
//
//  3. No deadlock under nesting or contention. Completion is tracked
//     per chunk, not per worker: the calling goroutine claims chunks
//     from the same shared counter as the pool workers, so a For call
//     completes even when every pool worker is busy (or the task queue
//     is full) — the caller just runs all chunks itself. Wait edges go
//     strictly from a nesting depth to the next, so cycles cannot form.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the persistent pool. Requests beyond it still
// complete (the caller participates); they just share the capped
// worker set. Deliberately above GOMAXPROCS so thread counts larger
// than the machine (used by the bit-identity tests) still exercise
// real cross-goroutine execution.
const maxWorkers = 64

var (
	// defaultThreads is the process-wide thread count: 0 = unset, which
	// resolves to GOMAXPROCS. core.Engine sets it from Options.Threads;
	// like the internal/mat buffer pool it is process-wide, so the last
	// engine configured with an explicit Threads wins.
	defaultThreads atomic.Int64

	poolOnce sync.Once
	tasks    chan func()
	nworkers atomic.Int64
)

// SetDefaultThreads sets the process-wide thread count used when a
// kernel asks for the default width. n <= 0 resets to "unset"
// (GOMAXPROCS); n == 1 makes every kernel run serially on the caller's
// goroutine, byte-for-byte the pre-parallel behavior.
func SetDefaultThreads(n int) {
	if n < 0 {
		n = 0
	}
	defaultThreads.Store(int64(n))
}

// DefaultThreads returns the resolved process-wide thread count:
// the value set by SetDefaultThreads, or GOMAXPROCS if unset.
func DefaultThreads() int {
	if n := defaultThreads.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Workers returns the number of persistent pool workers started so
// far (zero until the first parallel For); for diagnostics and the
// bench-report headers.
func Workers() int { return int(nworkers.Load()) }

func ensurePool(helpers int) {
	poolOnce.Do(func() {
		tasks = make(chan func(), 4*maxWorkers)
	})
	if helpers > maxWorkers {
		helpers = maxWorkers
	}
	for {
		cur := nworkers.Load()
		if cur >= int64(helpers) {
			return
		}
		if nworkers.CompareAndSwap(cur, cur+1) {
			go func() {
				for f := range tasks {
					f()
				}
			}()
		}
	}
}

// For runs fn over the disjoint chunks of [0, n) using up to threads
// goroutines (the caller plus pool workers). threads <= 0 means the
// process default (DefaultThreads). grain is the minimum chunk size:
// when n <= grain — or threads resolve to 1 — fn(0, n) runs inline on
// the caller's goroutine and For returns with no scheduling work at
// all. Chunk boundaries are multiples of grain (except the final
// chunk), so callers that need aligned blocks can pass their block
// size as the grain.
//
// fn must treat its [lo, hi) range as exclusive property; For
// guarantees every index is covered exactly once. A panic in any chunk
// is re-raised on the calling goroutine after all chunks complete.
func For(threads, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if threads <= 0 {
		threads = DefaultThreads()
	}
	if grain < 1 {
		grain = 1
	}
	if threads == 1 || n <= grain {
		fn(0, n)
		return
	}

	// Chunk size: aim for a few chunks per thread so a slow chunk does
	// not serialize the tail, but never below the grain, and keep chunk
	// boundaries grain-aligned for callers with block structure.
	chunks := (n + grain - 1) / grain
	if max := 4 * threads; chunks > max {
		chunks = max
	}
	per := (n + chunks - 1) / chunks
	per = (per + grain - 1) / grain * grain
	chunks = (n + per - 1) / per

	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		failed atomic.Bool
		pmu    sync.Mutex
		pval   any
	)
	wg.Add(chunks)
	runChunks := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= chunks {
				return
			}
			func() {
				defer wg.Done()
				if failed.Load() {
					return // drain remaining chunks after a panic
				}
				defer func() {
					if r := recover(); r != nil {
						failed.Store(true)
						pmu.Lock()
						if pval == nil {
							pval = r
						}
						pmu.Unlock()
					}
				}()
				lo := i * per
				hi := lo + per
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}()
		}
	}

	helpers := threads - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	ensurePool(helpers)
submit:
	for i := 0; i < helpers; i++ {
		select {
		case tasks <- runChunks:
		default:
			// Queue full (heavy concurrent For traffic): stop — the
			// caller and already-queued workers cover every chunk.
			break submit
		}
	}
	runChunks()
	wg.Wait()
	if failed.Load() {
		panic(pval)
	}
}
