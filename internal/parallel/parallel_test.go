package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// coverage checks that For covers [0, n) exactly once by counting
// visits per index from inside the chunks.
func coverage(t *testing.T, threads, n, grain int) {
	t.Helper()
	if n == 0 {
		For(threads, n, grain, func(lo, hi int) { t.Fatalf("fn called for n=0") })
		return
	}
	seen := make([]int32, n)
	For(threads, n, grain, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			return
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("threads=%d n=%d grain=%d: index %d visited %d times", threads, n, grain, i, c)
		}
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, threads := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 513, 4096, 100003} {
			for _, grain := range []int{1, 8, 512, 100000} {
				coverage(t, threads, n, grain)
			}
		}
	}
}

func TestForSerialFallbackRunsInline(t *testing.T) {
	// n <= grain and threads == 1 must both run exactly one inline call
	// covering the whole range (the zero-overhead contract).
	for _, tc := range []struct{ threads, n, grain int }{
		{8, 100, 100}, // below grain
		{8, 1, 1},
		{1, 1 << 20, 64}, // serial thread count
	} {
		calls := 0
		For(tc.threads, tc.n, tc.grain, func(lo, hi int) {
			calls++
			if lo != 0 || hi != tc.n {
				t.Fatalf("inline call got [%d,%d), want [0,%d)", lo, hi, tc.n)
			}
		})
		if calls != 1 {
			t.Fatalf("threads=%d n=%d grain=%d: %d calls, want 1 inline call", tc.threads, tc.n, tc.grain, calls)
		}
	}
}

func TestForChunksAreGrainAligned(t *testing.T) {
	const n, grain = 10_000, 512
	For(4, n, grain, func(lo, hi int) {
		if lo%grain != 0 {
			t.Errorf("chunk start %d not a multiple of grain %d", lo, grain)
		}
		if hi != n && hi%grain != 0 {
			t.Errorf("chunk end %d not a multiple of grain %d", hi, grain)
		}
	})
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	For(4, 1<<16, 16, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
	t.Fatal("For returned instead of panicking")
}

func TestForNested(t *testing.T) {
	// Nested For calls must complete (chunk-counted completion means no
	// worker-starvation deadlock) and cover the full 2-D range.
	const rows, cols = 97, 61
	var total atomic.Int64
	For(4, rows, 1, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			For(4, cols, 8, func(clo, chi int) {
				total.Add(int64(chi - clo))
			})
		}
	})
	if got := total.Load(); got != rows*cols {
		t.Fatalf("nested coverage %d, want %d", got, rows*cols)
	}
}

func TestForConcurrentCallers(t *testing.T) {
	// Many goroutines issuing For calls at once: the shared pool and
	// task queue must stay correct under contention (race-detector
	// target).
	const callers = 16
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				n := 1000 + g*37 + iter
				var sum atomic.Int64
				For(3, n, 64, func(lo, hi int) {
					s := int64(0)
					for i := lo; i < hi; i++ {
						s += int64(i)
					}
					sum.Add(s)
				})
				want := int64(n) * int64(n-1) / 2
				if sum.Load() != want {
					t.Errorf("caller %d iter %d: sum %d, want %d", g, iter, sum.Load(), want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDefaultThreads(t *testing.T) {
	old := int(defaultThreads.Load())
	defer defaultThreads.Store(int64(old))

	SetDefaultThreads(0)
	if DefaultThreads() < 1 {
		t.Fatalf("unset DefaultThreads = %d, want >= 1 (GOMAXPROCS)", DefaultThreads())
	}
	SetDefaultThreads(3)
	if DefaultThreads() != 3 {
		t.Fatalf("DefaultThreads = %d, want 3", DefaultThreads())
	}
	SetDefaultThreads(-5)
	if DefaultThreads() < 1 {
		t.Fatalf("negative reset: DefaultThreads = %d, want GOMAXPROCS", DefaultThreads())
	}
}

func BenchmarkForOverheadSmall(b *testing.B) {
	// The serial-fallback path: must be almost free.
	var sink float64
	for i := 0; i < b.N; i++ {
		For(8, 256, 4096, func(lo, hi int) {
			s := 0.0
			for j := lo; j < hi; j++ {
				s += float64(j)
			}
			sink = s
		})
	}
	_ = sink
}

func BenchmarkForLarge(b *testing.B) {
	buf := make([]float64, 1<<20)
	for i := 0; i < b.N; i++ {
		For(0, len(buf), 4096, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				buf[j] = float64(j) * 1.5
			}
		})
	}
}
