package builtins

import (
	"math"

	"repro/internal/mat"
)

// reduce applies a columnwise reduction: vectors reduce to a scalar,
// matrices to a 1 x cols row vector, per MATLAB.
func reduce(a *mat.Value, init float64, f func(acc, x float64) float64) *mat.Value {
	if a.IsEmpty() {
		return mat.Scalar(init)
	}
	if a.IsVector() {
		acc := init
		for _, x := range a.Re() {
			acc = f(acc, x)
		}
		return mat.Scalar(acc)
	}
	out := mat.New(1, a.Cols())
	for c := 0; c < a.Cols(); c++ {
		acc := init
		for r := 0; r < a.Rows(); r++ {
			acc = f(acc, a.At(r, c))
		}
		out.Re()[c] = acc
	}
	return out
}

// extremum implements max/min with MATLAB's three call forms:
// m = max(v); [m,i] = max(v); m = max(a,b).
func extremum(name string, better func(a, b float64) bool) Impl {
	return func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		if len(args) == 2 {
			out, err := binMap(args[0], args[1], func(x, y float64) float64 {
				if math.IsNaN(x) {
					return y
				}
				if math.IsNaN(y) {
					return x
				}
				if better(x, y) {
					return x
				}
				return y
			})
			return out, err
		}
		a := args[0]
		if a.IsEmpty() {
			return []*mat.Value{mat.Empty(), mat.Empty()}, nil
		}
		sel := func(col []float64) (float64, int) {
			bi := 0
			bv := col[0]
			for i := 1; i < len(col); i++ {
				if math.IsNaN(bv) || (!math.IsNaN(col[i]) && better(col[i], bv)) {
					bv, bi = col[i], i
				}
			}
			return bv, bi
		}
		if a.IsVector() {
			v, i := sel(a.Re())
			return []*mat.Value{mat.Scalar(v), mat.IntScalar(float64(i + 1))}, nil
		}
		vals := mat.New(1, a.Cols())
		idxs := mat.NewKind(mat.Int, 1, a.Cols())
		for c := 0; c < a.Cols(); c++ {
			col := a.Re()[c*a.Rows() : (c+1)*a.Rows()]
			v, i := sel(col)
			vals.Re()[c] = v
			idxs.Re()[c] = float64(i + 1)
		}
		return []*mat.Value{vals, idxs}, nil
	}
}

func init() {
	register("sum", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		if a.Kind() == mat.Complex {
			return complexSum(a)
		}
		return []*mat.Value{reduce(a, 0, func(acc, x float64) float64 { return acc + x })}, nil
	})
	register("prod", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return []*mat.Value{reduce(args[0], 1, func(acc, x float64) float64 { return acc * x })}, nil
	})
	register("mean", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		s := reduce(a, 0, func(acc, x float64) float64 { return acc + x })
		n := float64(a.Rows())
		if a.IsVector() {
			n = float64(a.Numel())
		}
		return []*mat.Value{scale(s, 1/n)}, nil
	})
	register("max", 1, 2, 2, extremum("max", func(a, b float64) bool { return a > b }))
	register("min", 1, 2, 2, extremum("min", func(a, b float64) bool { return a < b }))

	register("any", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		v := reduce(args[0], 0, func(acc, x float64) float64 {
			if acc != 0 || x != 0 {
				return 1
			}
			return 0
		})
		return []*mat.Value{asBool(v)}, nil
	})
	register("all", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		v := reduce(args[0], 1, func(acc, x float64) float64 {
			if acc != 0 && x != 0 {
				return 1
			}
			return 0
		})
		return []*mat.Value{asBool(v)}, nil
	})
}

func complexSum(a *mat.Value) ([]*mat.Value, error) {
	sumCol := func(re, im []float64) (float64, float64) {
		var sr, si float64
		for i := range re {
			sr += re[i]
			si += im[i]
		}
		return sr, si
	}
	if a.IsVector() {
		sr, si := sumCol(a.Re(), a.Im())
		return []*mat.Value{mat.ComplexScalar(complex(sr, si)).Demote()}, nil
	}
	out := mat.NewKind(mat.Complex, 1, a.Cols())
	for c := 0; c < a.Cols(); c++ {
		sr, si := sumCol(a.Re()[c*a.Rows():(c+1)*a.Rows()], a.Im()[c*a.Rows():(c+1)*a.Rows()])
		out.Re()[c] = sr
		out.Im()[c] = si
	}
	return []*mat.Value{out.Demote()}, nil
}

func scale(v *mat.Value, f float64) *mat.Value {
	out := mat.New(v.Rows(), v.Cols())
	for i, x := range v.Re() {
		out.Re()[i] = x * f
	}
	return out
}

func asBool(v *mat.Value) *mat.Value {
	out := mat.NewKind(mat.Bool, v.Rows(), v.Cols())
	for i, x := range v.Re() {
		if x != 0 {
			out.Re()[i] = 1
		}
	}
	return out
}
