// Package builtins implements MATLAB's built-in functions and constants
// for the MaJIC reproduction. The same implementations back the
// interpreter and compiled code (via the GBUILTIN instruction), exactly
// as the original system links both against the MATLAB C library.
package builtins

import (
	"io"
	"sort"
	"sync"

	"repro/internal/mat"
)

// Context carries the per-engine state builtins need: the deterministic
// random number generator and the output writer. Both the interpreter
// and the VM thread the same Context through, so rand sequences and
// printed output are identical across execution tiers.
type Context struct {
	RNG *RNG
	Out io.Writer
}

// NewContext returns a Context with a deterministically seeded RNG and
// discarded output.
func NewContext() *Context {
	return &Context{RNG: NewRNG(0x9E3779B97F4A7C15), Out: io.Discard}
}

// Impl is the implementation of one builtin: args are the actual
// parameters, nout the number of requested outputs (>= 1 in expression
// contexts). It returns nout values (or fewer if the builtin cannot).
type Impl func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error)

// Builtin describes one builtin function.
type Builtin struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 = variadic
	MaxOuts int
	Impl    Impl
}

var registry = map[string]*Builtin{}

func register(name string, minArgs, maxArgs, maxOuts int, impl Impl) {
	registry[name] = &Builtin{Name: name, MinArgs: minArgs, MaxArgs: maxArgs, MaxOuts: maxOuts, Impl: impl}
}

// Lookup returns the builtin with the given name, or nil.
func Lookup(name string) *Builtin { return registry[name] }

// Names returns all registered builtin names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// sparseAware names the builtins whose implementations handle sparse
// (CSR) arguments directly — metadata queries that never touch the
// payload, the sparse constructors/converters, and diag (which has an
// O(nnz) extraction path). Every other builtin receives densified
// copies from Call, so implementations stay representation-oblivious.
// A name set (not a Builtin field) avoids init-order coupling between
// the per-file register calls.
var sparseAware = map[string]bool{
	"sparse": true, "full": true, "speye": true, "spdiags": true,
	"nnz": true, "issparse": true,
	"size": true, "length": true, "numel": true, "isempty": true,
	"isreal": true, "isscalar": true, "diag": true,
}

// Call invokes a builtin by pointer with argument-count validation.
func Call(ctx *Context, b *Builtin, args []*mat.Value, nout int) ([]*mat.Value, error) {
	if len(args) < b.MinArgs {
		return nil, mat.Errorf("%s: not enough input arguments", b.Name)
	}
	if b.MaxArgs >= 0 && len(args) > b.MaxArgs {
		return nil, mat.Errorf("%s: too many input arguments", b.Name)
	}
	if nout < 1 {
		nout = 1
	}
	if nout > b.MaxOuts {
		return nil, mat.Errorf("%s: too many output arguments", b.Name)
	}
	if !sparseAware[b.Name] {
		var copied []*mat.Value
		for i, a := range args {
			if a != nil && a.IsSparse() {
				d, err := a.Dense()
				if err != nil {
					return nil, err
				}
				if copied == nil {
					copied = append([]*mat.Value(nil), args...)
				}
				copied[i] = d
			}
		}
		if copied != nil {
			args = copied
		}
	}
	return b.Impl(ctx, args, nout)
}

// RNG is the engine's deterministic pseudo-random generator
// (xorshift64*), shared by rand and randn so that interpreter and
// compiled runs of the same program observe identical streams. A mutex
// makes the stream safe to draw from concurrent callers (the async
// compilation service allows concurrent Call on one engine); the
// single-threaded sequence is unchanged.
type RNG struct {
	mu    sync.Mutex
	state uint64
	// cached second normal deviate for Box-Muller
	haveGauss bool
	gauss     float64
}

// NewRNG returns an RNG with the given nonzero seed.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 1
	}
	return &RNG{state: seed}
}

// Seed resets the generator.
func (r *RNG) Seed(seed uint64) {
	if seed == 0 {
		seed = 1
	}
	r.mu.Lock()
	r.state = seed
	r.haveGauss = false
	r.mu.Unlock()
}

// uint64Locked advances the xorshift64* state; r.mu must be held.
func (r *RNG) uint64Locked() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

func (r *RNG) float64Locked() float64 {
	return float64(r.uint64Locked()>>11) / (1 << 53)
}

// Uint64 advances the xorshift64* state.
func (r *RNG) Uint64() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.uint64Locked()
}

// Float64 returns a uniform deviate in [0,1).
func (r *RNG) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.float64Locked()
}

// Normal returns a standard normal deviate (Box-Muller).
func (r *RNG) Normal() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.float64Locked() - 1
		v = 2*r.float64Locked() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := sqrtNeg2LogOverS(s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}
