package builtins

import (
	"math"

	"repro/internal/mat"
)

// Sparse constructors and queries. These builtins are listed in
// sparseAware, so their implementations see sparse arguments as-is and
// must densify any argument whose payload they read.

func init() {
	register("sparse", 1, 6, 1, sparseImpl)
	register("full", 1, 1, 1, fullImpl)
	register("speye", 0, 2, 1, speyeImpl)
	register("spdiags", 4, 4, 1, spdiagsImpl)
	register("nnz", 1, 1, 1, nnzImpl)
	register("issparse", 1, 1, 1, issparseImpl)
}

// denseArgs replaces sparse arguments with densified copies so the
// payload-reading constructor bodies below stay representation-free.
func denseArgs(args []*mat.Value) ([]*mat.Value, error) {
	var copied []*mat.Value
	for i, a := range args {
		if a != nil && a.IsSparse() {
			d, err := a.Dense()
			if err != nil {
				return nil, err
			}
			if copied == nil {
				copied = append([]*mat.Value(nil), args...)
			}
			copied[i] = d
		}
	}
	if copied != nil {
		return copied, nil
	}
	return args, nil
}

func sparseImpl(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
	switch len(args) {
	case 1:
		s, err := args[0].Sparse()
		if err != nil {
			return nil, err
		}
		return []*mat.Value{s}, nil
	case 2:
		args, err := denseArgs(args)
		if err != nil {
			return nil, err
		}
		m, n, err := dims("sparse", args)
		if err != nil {
			return nil, err
		}
		return []*mat.Value{mat.SparseZeros(m, n)}, nil
	case 3, 5, 6:
		// sparse(i, j, s [, m, n [, nzmax]]) — 1-based subscript triplets;
		// a trailing nzmax is accepted and ignored (we size to nnz).
		args, err := denseArgs(args)
		if err != nil {
			return nil, err
		}
		ri, ci, vs, err := tripletArgs(args[0], args[1], args[2])
		if err != nil {
			return nil, err
		}
		var m, n int
		if len(args) >= 5 {
			if m, err = nonNegInt("sparse", args[3].Re()[0]); err != nil {
				return nil, err
			}
			if n, err = nonNegInt("sparse", args[4].Re()[0]); err != nil {
				return nil, err
			}
		} else {
			for _, r := range ri {
				if r+1 > m {
					m = r + 1
				}
			}
			for _, c := range ci {
				if c+1 > n {
					n = c + 1
				}
			}
		}
		for k := range ri {
			if ri[k] >= m || ci[k] >= n {
				return nil, mat.Errorf("sparse: index (%d,%d) out of bounds for %dx%d", ri[k]+1, ci[k]+1, m, n)
			}
		}
		s, err := mat.SparseFromTriplets(m, n, ri, ci, vs)
		if err != nil {
			return nil, err
		}
		return []*mat.Value{s}, nil
	}
	return nil, mat.Errorf("sparse: unsupported argument count %d", len(args))
}

// tripletArgs decodes the (i, j, s) triplet vectors with MATLAB's
// scalar-broadcast convention, converting subscripts to 0-based.
func tripletArgs(iv, jv, sv *mat.Value) (ri, ci []int, vs []float64, err error) {
	for _, v := range []*mat.Value{iv, jv} {
		if v.Kind() == mat.Complex || v.Kind() == mat.Char {
			return nil, nil, nil, mat.Errorf("sparse: subscripts must be real")
		}
	}
	if sv.Kind() == mat.Complex || sv.Kind() == mat.Char {
		return nil, nil, nil, mat.Errorf("sparse: %s values are not supported", sv.Kind())
	}
	n := iv.Numel()
	for _, v := range []*mat.Value{jv, sv} {
		if v.Numel() > n {
			n = v.Numel()
		}
	}
	for _, v := range []*mat.Value{iv, jv, sv} {
		if v.Numel() != n && v.Numel() != 1 {
			return nil, nil, nil, mat.Errorf("sparse: vectors must be the same length")
		}
	}
	sub := func(v *mat.Value, k int) (int, error) {
		x := v.Re()[0]
		if v.Numel() != 1 {
			x = v.Re()[k]
		}
		if x != math.Trunc(x) || x < 1 {
			return 0, mat.Errorf("sparse: subscript %g is not a positive integer", x)
		}
		return int(x) - 1, nil
	}
	ri = make([]int, n)
	ci = make([]int, n)
	vs = make([]float64, n)
	for k := 0; k < n; k++ {
		if ri[k], err = sub(iv, k); err != nil {
			return nil, nil, nil, err
		}
		if ci[k], err = sub(jv, k); err != nil {
			return nil, nil, nil, err
		}
		if sv.Numel() == 1 {
			vs[k] = sv.Re()[0]
		} else {
			vs[k] = sv.Re()[k]
		}
	}
	return ri, ci, vs, nil
}

func fullImpl(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
	d, err := args[0].Dense()
	if err != nil {
		return nil, err
	}
	return []*mat.Value{d}, nil
}

func speyeImpl(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
	args, err := denseArgs(args)
	if err != nil {
		return nil, err
	}
	m, n, err := dims("speye", args)
	if err != nil {
		return nil, err
	}
	return []*mat.Value{mat.SparseEye(m, n)}, nil
}

func spdiagsImpl(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
	args, err := denseArgs(args)
	if err != nil {
		return nil, err
	}
	bm, dv := args[0], args[1]
	m, err := nonNegInt("spdiags", args[2].Re()[0])
	if err != nil {
		return nil, err
	}
	n, err := nonNegInt("spdiags", args[3].Re()[0])
	if err != nil {
		return nil, err
	}
	if bm.Kind() == mat.Complex || bm.Kind() == mat.Char {
		return nil, mat.Errorf("spdiags: %s diagonals are not supported", bm.Kind())
	}
	nd := dv.Numel()
	if bm.Cols() != nd {
		return nil, mat.Errorf("spdiags: B must have one column per diagonal (%d columns, %d offsets)", bm.Cols(), nd)
	}
	want := m
	if n < m {
		want = n
	}
	if bm.Rows() < want {
		return nil, mat.Errorf("spdiags: B has %d rows; need min(m,n)=%d", bm.Rows(), want)
	}
	diags := make([][]float64, nd)
	offsets := make([]int, nd)
	for k := 0; k < nd; k++ {
		off := dv.Re()[k]
		if off != math.Trunc(off) {
			return nil, mat.Errorf("spdiags: diagonal offset %g is not an integer", off)
		}
		offsets[k] = int(off)
		diags[k] = bm.Re()[k*bm.Rows() : k*bm.Rows()+bm.Rows()]
	}
	s, err := mat.SparseFromDiags(m, n, diags, offsets)
	if err != nil {
		return nil, err
	}
	return []*mat.Value{s}, nil
}

func nnzImpl(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
	// MATLAB's nnz counts nonzero VALUES; a sparse matrix may carry
	// explicitly stored zeros (e.g. computed by a merge op), which are
	// excluded here even though NNZ() reports them as stored entries.
	v := args[0]
	if !v.IsSparse() {
		return []*mat.Value{mat.Scalar(float64(v.NNZ()))}, nil
	}
	n := 0
	for _, x := range mat.SparseVals(v) {
		if x != 0 {
			n++
		}
	}
	return []*mat.Value{mat.Scalar(float64(n))}, nil
}

func issparseImpl(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
	return []*mat.Value{mat.BoolScalar(args[0].IsSparse())}, nil
}
