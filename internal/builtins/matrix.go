package builtins

import (
	"math"

	"repro/internal/mat"
)

// dims decodes the (n) / (m,n) argument conventions of the constructors.
func dims(name string, args []*mat.Value) (int, int, error) {
	switch len(args) {
	case 0:
		return 1, 1, nil
	case 1:
		a := args[0]
		if a.IsScalar() {
			n, err := nonNegInt(name, a.Re()[0])
			if err != nil {
				return 0, 0, err
			}
			return n, n, nil
		}
		if a.Numel() == 2 {
			r, err := nonNegInt(name, a.Re()[0])
			if err != nil {
				return 0, 0, err
			}
			c, err := nonNegInt(name, a.Re()[1])
			if err != nil {
				return 0, 0, err
			}
			return r, c, nil
		}
		return 0, 0, mat.Errorf("%s: size argument must be scalar or a 2-element vector", name)
	case 2:
		r, err := nonNegInt(name, args[0].Re()[0])
		if err != nil {
			return 0, 0, err
		}
		c, err := nonNegInt(name, args[1].Re()[0])
		if err != nil {
			return 0, 0, err
		}
		return r, c, nil
	}
	return 0, 0, mat.Errorf("%s: too many size arguments", name)
}

func nonNegInt(name string, x float64) (int, error) {
	// MATLAB warns on non-integer sizes and rounds; we round silently,
	// matching the tolerant behaviour the paper's speculator relies on.
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, mat.Errorf("%s: invalid size %g", name, x)
	}
	n := int(math.Floor(x + 0.5))
	if n < 0 {
		n = 0
	}
	return n, nil
}

func init() {
	register("zeros", 0, 2, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		r, c, err := dims("zeros", args)
		if err != nil {
			return nil, err
		}
		return []*mat.Value{mat.New(r, c)}, nil
	})
	register("ones", 0, 2, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		r, c, err := dims("ones", args)
		if err != nil {
			return nil, err
		}
		v := mat.New(r, c)
		re := v.Re()
		for i := range re {
			re[i] = 1
		}
		return []*mat.Value{v}, nil
	})
	register("eye", 0, 2, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		r, c, err := dims("eye", args)
		if err != nil {
			return nil, err
		}
		v := mat.New(r, c)
		for i := 0; i < r && i < c; i++ {
			v.SetAt(i, i, 1)
		}
		return []*mat.Value{v}, nil
	})
	register("rand", 0, 2, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		r, c, err := dims("rand", args)
		if err != nil {
			return nil, err
		}
		v := mat.New(r, c)
		re := v.Re()
		for i := range re {
			re[i] = ctx.RNG.Float64()
		}
		return []*mat.Value{v}, nil
	})
	register("randn", 0, 2, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		r, c, err := dims("randn", args)
		if err != nil {
			return nil, err
		}
		v := mat.New(r, c)
		re := v.Re()
		for i := range re {
			re[i] = ctx.RNG.Normal()
		}
		return []*mat.Value{v}, nil
	})

	register("size", 1, 2, 2, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		if len(args) == 2 {
			d := args[1].Re()[0]
			switch d {
			case 1:
				return []*mat.Value{mat.IntScalar(float64(a.Rows()))}, nil
			case 2:
				return []*mat.Value{mat.IntScalar(float64(a.Cols()))}, nil
			default:
				return []*mat.Value{mat.IntScalar(1)}, nil
			}
		}
		if nout >= 2 {
			return []*mat.Value{
				mat.IntScalar(float64(a.Rows())),
				mat.IntScalar(float64(a.Cols())),
			}, nil
		}
		v := mat.New(1, 2)
		v.Re()[0] = float64(a.Rows())
		v.Re()[1] = float64(a.Cols())
		return []*mat.Value{v}, nil
	})
	register("length", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		n := a.Rows()
		if a.Cols() > n {
			n = a.Cols()
		}
		if a.IsEmpty() {
			n = 0
		}
		return []*mat.Value{mat.IntScalar(float64(n))}, nil
	})
	register("numel", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return []*mat.Value{mat.IntScalar(float64(args[0].Numel()))}, nil
	})
	register("isempty", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return []*mat.Value{mat.BoolScalar(args[0].IsEmpty())}, nil
	})
	register("isreal", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return []*mat.Value{mat.BoolScalar(args[0].Kind() != mat.Complex)}, nil
	})
	register("isscalar", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return []*mat.Value{mat.BoolScalar(args[0].IsScalar())}, nil
	})

	register("linspace", 2, 3, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a, b := args[0].Re()[0], args[1].Re()[0]
		n := 100
		if len(args) == 3 {
			var err error
			n, err = nonNegInt("linspace", args[2].Re()[0])
			if err != nil {
				return nil, err
			}
		}
		v := mat.New(1, n)
		re := v.Re()
		if n == 1 {
			re[0] = b
		} else {
			for i := 0; i < n; i++ {
				re[i] = a + (b-a)*float64(i)/float64(n-1)
			}
		}
		return []*mat.Value{v}, nil
	})

	register("reshape", 3, 3, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		r, err := nonNegInt("reshape", args[1].Re()[0])
		if err != nil {
			return nil, err
		}
		c, err := nonNegInt("reshape", args[2].Re()[0])
		if err != nil {
			return nil, err
		}
		if r*c != a.Numel() {
			return nil, mat.Errorf("reshape: element counts differ (%d vs %d)", r*c, a.Numel())
		}
		out := mat.NewKind(a.Kind(), r, c)
		copy(out.Re(), a.Re())
		if im := a.Im(); im != nil {
			copy(out.Im(), im)
		}
		return []*mat.Value{out}, nil
	})

	register("repmat", 3, 3, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		m, err := nonNegInt("repmat", args[1].Re()[0])
		if err != nil {
			return nil, err
		}
		n, err := nonNegInt("repmat", args[2].Re()[0])
		if err != nil {
			return nil, err
		}
		out := mat.NewKind(a.Kind(), a.Rows()*m, a.Cols()*n)
		for bc := 0; bc < n; bc++ {
			for br := 0; br < m; br++ {
				for c := 0; c < a.Cols(); c++ {
					for r := 0; r < a.Rows(); r++ {
						out.SetAt(br*a.Rows()+r, bc*a.Cols()+c, a.At(r, c))
					}
				}
			}
		}
		return []*mat.Value{out}, nil
	})

	register("diag", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		if a.IsVector() && !a.IsScalar() {
			d, err := a.Dense() // sparse vector: payload read below
			if err != nil {
				return nil, err
			}
			n := d.Numel()
			out := mat.New(n, n)
			for i := 0; i < n; i++ {
				out.SetAt(i, i, d.Re()[i])
			}
			return []*mat.Value{out}, nil
		}
		if a.IsSparse() {
			// O(nnz) extraction; avoids densifying huge operands (cgopt's
			// Jacobi preconditioner calls diag(A) at n=1e6).
			return []*mat.Value{mat.SparseDiag(a)}, nil
		}
		n := a.Rows()
		if a.Cols() < n {
			n = a.Cols()
		}
		out := mat.New(n, 1)
		for i := 0; i < n; i++ {
			out.Re()[i] = a.At(i, i)
		}
		return []*mat.Value{out}, nil
	})

	register("tril", 1, 2, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return triPart(args, true)
	})
	register("triu", 1, 2, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return triPart(args, false)
	})

	register("find", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		var idx []float64
		n := a.Numel()
		for i := 0; i < n; i++ {
			if a.Re()[i] != 0 || (a.Im() != nil && a.Im()[i] != 0) {
				idx = append(idx, float64(i+1))
			}
		}
		rows, cols := len(idx), 1
		if a.Rows() == 1 && a.Cols() != 1 {
			rows, cols = 1, len(idx)
		}
		out := mat.NewKind(mat.Int, rows, cols)
		copy(out.Re(), idx)
		return []*mat.Value{out}, nil
	})

	register("sort", 1, 1, 2, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		if !a.IsVector() && !a.IsEmpty() && !a.IsScalar() {
			return nil, mat.Errorf("sort: only vectors are supported")
		}
		n := a.Numel()
		type pair struct {
			v float64
			i int
		}
		ps := make([]pair, n)
		for i := 0; i < n; i++ {
			ps[i] = pair{a.Re()[i], i}
		}
		// insertion sort: stable, no extra imports
		for i := 1; i < n; i++ {
			p := ps[i]
			j := i - 1
			for j >= 0 && ps[j].v > p.v {
				ps[j+1] = ps[j]
				j--
			}
			ps[j+1] = p
		}
		out := mat.NewKind(a.Kind(), a.Rows(), a.Cols())
		idx := mat.NewKind(mat.Int, a.Rows(), a.Cols())
		for i, p := range ps {
			out.Re()[i] = p.v
			idx.Re()[i] = float64(p.i + 1)
		}
		return []*mat.Value{out, idx}, nil
	})
}

func triPart(args []*mat.Value, lower bool) ([]*mat.Value, error) {
	a := args[0]
	k := 0
	if len(args) == 2 {
		k = int(args[1].Re()[0])
	}
	out := mat.NewKind(a.Kind(), a.Rows(), a.Cols())
	re, im := out.Re(), out.Im()
	for c := 0; c < a.Cols(); c++ {
		for r := 0; r < a.Rows(); r++ {
			keep := false
			if lower {
				keep = c-r <= k
			} else {
				keep = c-r >= k
			}
			if keep {
				re[c*a.Rows()+r] = a.At(r, c)
				if im != nil {
					im[c*a.Rows()+r] = a.ImAt(r, c)
				}
			}
		}
	}
	return []*mat.Value{out}, nil
}
