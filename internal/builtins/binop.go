package builtins

import (
	"repro/internal/ast"
	"repro/internal/mat"
)

// EvalBinOp applies a (non-short-circuit) binary operator to boxed
// values. The interpreter and the VM's generic instruction path share
// this dispatcher — the analog of the MATLAB C library's polymorphic
// operator entry points.
func EvalBinOp(op ast.BinOp, l, r *mat.Value) (*mat.Value, error) {
	switch op {
	case ast.OpAdd:
		return mat.Add(l, r)
	case ast.OpSub:
		return mat.Sub(l, r)
	case ast.OpMul:
		return mat.Mul(l, r)
	case ast.OpDiv:
		return mat.Div(l, r, MLDivide)
	case ast.OpLDiv:
		return MLDivide(l, r)
	case ast.OpPow:
		return mat.Pow(l, r)
	case ast.OpEMul:
		return mat.ElemMul(l, r)
	case ast.OpEDiv:
		return mat.ElemDiv(l, r)
	case ast.OpELDiv:
		return mat.ElemLDiv(l, r)
	case ast.OpEPow:
		return mat.ElemPow(l, r)
	case ast.OpEq:
		return mat.Compare(mat.CmpEq, l, r)
	case ast.OpNe:
		return mat.Compare(mat.CmpNe, l, r)
	case ast.OpLt:
		return mat.Compare(mat.CmpLt, l, r)
	case ast.OpLe:
		return mat.Compare(mat.CmpLe, l, r)
	case ast.OpGt:
		return mat.Compare(mat.CmpGt, l, r)
	case ast.OpGe:
		return mat.Compare(mat.CmpGe, l, r)
	case ast.OpAnd:
		return mat.And(l, r)
	case ast.OpOr:
		return mat.Or(l, r)
	}
	return nil, mat.Errorf("unknown binary operator %v", op)
}
