package builtins

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func colv(xs ...float64) *mat.Value { return mat.FromSlice(len(xs), 1, xs) }

func TestSparseBuiltinConversions(t *testing.T) {
	d := mat.FromSlice(2, 2, []float64{1, 0, 0, 4})
	s := call1(t, "sparse", d)
	if !s.IsSparse() {
		t.Fatal("sparse(A) must be sparse")
	}
	wantNum(t, call1(t, "nnz", s), 2)
	wantNum(t, call1(t, "issparse", s), 1)
	wantNum(t, call1(t, "issparse", d), 0)
	f := call1(t, "full", s)
	if f.IsSparse() || f.At(1, 1) != 4 {
		t.Fatal("full(sparse(A)) must round-trip dense")
	}
	// sparse on a sparse value is the identity.
	if s2 := call1(t, "sparse", s); !s2.IsSparse() {
		t.Fatal("sparse(sparse(A)) must stay sparse")
	}
	// sparse(m, n): all-zero operator.
	z := call1(t, "sparse", mat.Scalar(2), mat.Scalar(3))
	if !z.IsSparse() || z.Rows() != 2 || z.Cols() != 3 || z.NNZ() != 0 {
		t.Fatal("sparse(2,3) must be an all-zero 2x3 sparse")
	}
}

func TestSparseBuiltinTriplets(t *testing.T) {
	// sparse(i, j, s, m, n) with 1-based indices, duplicate summing.
	s := call1(t, "sparse", colv(1, 2, 1), colv(1, 2, 1), colv(5, 7, 3), mat.Scalar(3), mat.Scalar(3))
	if !s.IsSparse() || s.Rows() != 3 || s.Cols() != 3 {
		t.Fatal("sparse(i,j,s,m,n) shape")
	}
	if got := s.At(0, 0); got != 8 { // 5 + 3 summed
		t.Fatalf("duplicate triplets: A(1,1) = %v, want 8", got)
	}
	if got := s.At(1, 1); got != 7 {
		t.Fatalf("A(2,2) = %v, want 7", got)
	}
	// Scalar value broadcasts across index vectors.
	b := call1(t, "sparse", colv(1, 2), colv(2, 1), mat.Scalar(9), mat.Scalar(2), mat.Scalar(2))
	if b.At(0, 1) != 9 || b.At(1, 0) != 9 {
		t.Fatal("scalar triplet value must broadcast")
	}
	// Int-kind scalars — what integer literals from the language carry —
	// are valid subscripts and values.
	ik := call1(t, "sparse", mat.IntScalar(1), mat.IntScalar(2), mat.IntScalar(5), mat.IntScalar(3), mat.IntScalar(3))
	if !ik.IsSparse() || ik.At(0, 1) != 5 || ik.Rows() != 3 {
		t.Fatal("sparse with Int-kind triplet args")
	}
	// Out-of-range index errors.
	bi := Lookup("sparse")
	if _, err := Call(NewContext(), bi, []*mat.Value{colv(4), colv(1), colv(1), mat.Scalar(3), mat.Scalar(3)}, 1); err == nil {
		t.Fatal("out-of-range triplet index must error")
	}
}

func TestSpeyeAndSpdiagsBuiltins(t *testing.T) {
	e := call1(t, "speye", mat.Scalar(3))
	if !e.IsSparse() || e.NNZ() != 3 || e.At(2, 2) != 1 || e.At(0, 1) != 0 {
		t.Fatal("speye(3)")
	}
	r := call1(t, "speye", mat.Scalar(2), mat.Scalar(4))
	if r.Rows() != 2 || r.Cols() != 4 || r.NNZ() != 2 {
		t.Fatal("speye(2,4)")
	}
	// spdiags(B, d, m, n): tridiagonal 4/-1 operator.
	n := 4
	b := mat.New(n, 3)
	for i := 0; i < n; i++ {
		b.SetAt(i, 0, -1)
		b.SetAt(i, 1, 4)
		b.SetAt(i, 2, -1)
	}
	a := call1(t, "spdiags", b, vec(-1, 0, 1), mat.Scalar(float64(n)), mat.Scalar(float64(n)))
	if !a.IsSparse() || a.NNZ() != 3*n-2 {
		t.Fatalf("spdiags nnz = %d, want %d", a.NNZ(), 3*n-2)
	}
	if a.At(0, 0) != 4 || a.At(1, 0) != -1 || a.At(0, 1) != -1 || a.At(0, 2) != 0 {
		t.Fatal("spdiags band values wrong")
	}
}

func TestNnzCountsNonzeroNotStored(t *testing.T) {
	// spdiags keeps band zeros stored; nnz counts nonzero VALUES, so the
	// two diverge on purpose.
	b := mat.New(3, 2)
	for i := 0; i < 3; i++ {
		b.SetAt(i, 0, 0) // stored zeros on the subdiagonal
		b.SetAt(i, 1, 2)
	}
	a := call1(t, "spdiags", b, vec(-1, 0), mat.Scalar(3), mat.Scalar(3))
	if a.NNZ() != 5 { // 3 diagonal + 2 stored subdiagonal zeros
		t.Fatalf("stored entries = %d, want 5", a.NNZ())
	}
	wantNum(t, call1(t, "nnz", a), 3)
	// Dense operands count nonzeros directly.
	wantNum(t, call1(t, "nnz", mat.FromSlice(1, 4, []float64{0, 1, 0, 2})), 2)
}

func TestSparseDiagAndSize(t *testing.T) {
	// size/length/numel/isempty are sparse-aware — no densification.
	s := call1(t, "speye", mat.Scalar(5))
	wantNum(t, call1(t, "length", s), 5)
	wantNum(t, call1(t, "numel", s), 25)
	wantNum(t, call1(t, "isempty", s), 0)
	d := call1(t, "diag", s)
	if d.IsSparse() || d.Rows() != 5 || d.Cols() != 1 {
		t.Fatal("diag(sparse) must be a dense column")
	}
	for i := 0; i < 5; i++ {
		if d.At(i, 0) != 1 {
			t.Fatal("diag(speye) values")
		}
	}
}

func TestNonAwareBuiltinDensifiesArgs(t *testing.T) {
	// sum is not sparse-aware: the Call choke point densifies the
	// argument, and the caller's boxed value must stay sparse (VM
	// registers are never mutated in place).
	s := call1(t, "sparse", mat.FromSlice(1, 4, []float64{1, 0, 2, 0}))
	wantNum(t, call1(t, "sum", s), 3)
	if !s.IsSparse() {
		t.Fatal("densification must not mutate the caller's value")
	}
}

func TestSparseMldivideTriangular(t *testing.T) {
	// Lower-triangular sparse \ dense dispatches to the sparse
	// triangular kernel; verify by multiplying back.
	n := 5
	b := mat.New(n, 2)
	for i := 0; i < n; i++ {
		b.SetAt(i, 0, -1)
		b.SetAt(i, 1, 2)
	}
	l := call1(t, "spdiags", b, vec(-1, 0), mat.Scalar(float64(n)), mat.Scalar(float64(n)))
	rhs := colv(1, 2, 3, 4, 5)
	x, err := MLDivide(l, rhs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := mat.Mul(l, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(back.At(i, 0)-rhs.At(i, 0)) > 1e-12 {
			t.Fatalf("L*(L\\b) row %d = %v, want %v", i, back.At(i, 0), rhs.At(i, 0))
		}
	}
	// General sparse systems densify and solve via LU: same answer as
	// the dense path.
	g := call1(t, "sparse", mat.FromSlice(2, 2, []float64{4, 1, 1, 3}))
	gd := call1(t, "full", g)
	xs, err := MLDivide(g, colv(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	xd, err := MLDivide(gd, colv(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if xs.At(i, 0) != xd.At(i, 0) {
			t.Fatalf("sparse general mldivide diverged at %d: %v vs %v", i, xs.At(i, 0), xd.At(i, 0))
		}
	}
}
