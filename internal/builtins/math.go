package builtins

import (
	"math"
	"math/cmplx"

	"repro/internal/mat"
)

func sqrtNeg2LogOverS(s float64) float64 {
	return math.Sqrt(-2 * math.Log(s) / s)
}

// mapReal applies f elementwise to a real-ish value; complex inputs go
// through fc. When fc is nil, complex inputs take their absolute values
// first (not used by any registered builtin; kept nil-safe).
func mapElem(a *mat.Value, f func(float64) float64, fc func(complex128) complex128) (*mat.Value, error) {
	n := a.Numel()
	if a.Kind() == mat.Complex {
		if fc == nil {
			return nil, mat.Errorf("complex argument not supported")
		}
		out := mat.NewKind(mat.Complex, a.Rows(), a.Cols())
		re, im := out.Re(), out.Im()
		for i := 0; i < n; i++ {
			z := fc(a.ComplexAt(i))
			re[i] = real(z)
			im[i] = imag(z)
		}
		return out.Demote(), nil
	}
	out := mat.New(a.Rows(), a.Cols())
	re := out.Re()
	src := a.Re()
	for i := 0; i < n; i++ {
		re[i] = f(src[i])
	}
	return out, nil
}

// ScalarMathFunc returns the scalar (float64) implementation of a
// one-argument math builtin, used by the code generator to inline
// elementary math functions on typed scalars. ok is false when the name
// is not an inlinable real scalar function.
func ScalarMathFunc(name string) (func(float64) float64, bool) {
	f, ok := scalarMath[name]
	return f, ok
}

var scalarMath = map[string]func(float64) float64{
	"abs":   math.Abs,
	"sqrt":  math.Sqrt, // only inlined when range analysis proves x >= 0
	"exp":   math.Exp,
	"log":   math.Log,
	"log2":  math.Log2,
	"log10": math.Log10,
	"sin":   math.Sin,
	"cos":   math.Cos,
	"tan":   math.Tan,
	"asin":  math.Asin,
	"acos":  math.Acos,
	"atan":  math.Atan,
	"sinh":  math.Sinh,
	"cosh":  math.Cosh,
	"tanh":  math.Tanh,
	"floor": math.Floor,
	"ceil":  math.Ceil,
	"round": func(x float64) float64 { return math.Floor(x + 0.5) },
	"fix":   math.Trunc,
	"sign": func(x float64) float64 {
		if x > 0 {
			return 1
		}
		if x < 0 {
			return -1
		}
		return x // preserves ±0 and NaN behaviour
	},
}

func registerUnaryMath(name string, f func(float64) float64, fc func(complex128) complex128) {
	register(name, 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		v, err := mapElem(args[0], f, fc)
		if err != nil {
			return nil, mat.Errorf("%s: %s", name, err)
		}
		return []*mat.Value{v}, nil
	})
}

func init() {
	registerUnaryMath("exp", math.Exp, cmplx.Exp)
	registerUnaryMath("log", math.Log, cmplx.Log)
	registerUnaryMath("log2", math.Log2, func(z complex128) complex128 { return cmplx.Log(z) / complex(math.Ln2, 0) })
	registerUnaryMath("log10", math.Log10, cmplx.Log10)
	registerUnaryMath("sin", math.Sin, cmplx.Sin)
	registerUnaryMath("cos", math.Cos, cmplx.Cos)
	registerUnaryMath("tan", math.Tan, cmplx.Tan)
	registerUnaryMath("asin", math.Asin, cmplx.Asin)
	registerUnaryMath("acos", math.Acos, cmplx.Acos)
	registerUnaryMath("atan", math.Atan, cmplx.Atan)
	registerUnaryMath("sinh", math.Sinh, cmplx.Sinh)
	registerUnaryMath("cosh", math.Cosh, cmplx.Cosh)
	registerUnaryMath("tanh", math.Tanh, cmplx.Tanh)
	registerUnaryMath("floor", math.Floor, nil)
	registerUnaryMath("ceil", math.Ceil, nil)
	registerUnaryMath("round", scalarMath["round"], nil)
	registerUnaryMath("fix", math.Trunc, nil)
	registerUnaryMath("sign", scalarMath["sign"], func(z complex128) complex128 {
		if z == 0 {
			return 0
		}
		return z / complex(cmplx.Abs(z), 0)
	})

	// sqrt: negative real input promotes to complex, as in MATLAB.
	register("sqrt", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		if a.Kind() != mat.Complex {
			neg := false
			for _, x := range a.Re() {
				if x < 0 {
					neg = true
					break
				}
			}
			if !neg {
				v, err := mapElem(a, math.Sqrt, nil)
				return []*mat.Value{v}, err
			}
			a = a.ToComplex()
		}
		v, err := mapElem(a, nil, cmplx.Sqrt)
		return []*mat.Value{v}, err
	})

	// abs: complex input yields real magnitudes.
	register("abs", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		out := mat.New(a.Rows(), a.Cols())
		re := out.Re()
		n := a.Numel()
		if a.Kind() == mat.Complex {
			for i := 0; i < n; i++ {
				re[i] = cmplx.Abs(a.ComplexAt(i))
			}
		} else {
			src := a.Re()
			for i := 0; i < n; i++ {
				re[i] = math.Abs(src[i])
			}
		}
		return []*mat.Value{out}, nil
	})

	register("atan2", 2, 2, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		y, x := args[0], args[1]
		rows, cols := y.Rows(), y.Cols()
		if y.IsScalar() {
			rows, cols = x.Rows(), x.Cols()
		}
		out := mat.New(rows, cols)
		re := out.Re()
		for i := range re {
			re[i] = math.Atan2(bval(y, i), bval(x, i))
		}
		return []*mat.Value{out}, nil
	})

	register("mod", 2, 2, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return binMap(args[0], args[1], Mod)
	})
	register("rem", 2, 2, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return binMap(args[0], args[1], Rem)
	})

	register("real", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		out := mat.New(a.Rows(), a.Cols())
		copy(out.Re(), a.Re())
		return []*mat.Value{out}, nil
	})
	register("imag", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		out := mat.New(a.Rows(), a.Cols())
		if im := a.Im(); im != nil {
			copy(out.Re(), im)
		}
		return []*mat.Value{out}, nil
	})
	register("conj", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		if a.Kind() != mat.Complex {
			return []*mat.Value{a.Clone()}, nil
		}
		out := mat.NewKind(mat.Complex, a.Rows(), a.Cols())
		copy(out.Re(), a.Re())
		im := out.Im()
		for i, x := range a.Im() {
			im[i] = -x
		}
		return []*mat.Value{out}, nil
	})
	register("angle", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		out := mat.New(a.Rows(), a.Cols())
		re := out.Re()
		for i := range re {
			re[i] = cmplx.Phase(a.ComplexAt(i))
		}
		return []*mat.Value{out}, nil
	})
}

// Mod is MATLAB's mod (sign follows divisor).
func Mod(x, y float64) float64 {
	if y == 0 {
		return x
	}
	r := math.Mod(x, y)
	if r != 0 && (r < 0) != (y < 0) {
		r += y
	}
	return r
}

// Rem is MATLAB's rem (sign follows dividend).
func Rem(x, y float64) float64 {
	if y == 0 {
		return math.NaN()
	}
	return math.Mod(x, y)
}

func bval(v *mat.Value, i int) float64 {
	if v.IsScalar() {
		return v.Re()[0]
	}
	return v.Re()[i]
}

func binMap(a, b *mat.Value, f func(x, y float64) float64) ([]*mat.Value, error) {
	rows, cols := a.Rows(), a.Cols()
	if a.IsScalar() {
		rows, cols = b.Rows(), b.Cols()
	} else if !b.IsScalar() && (b.Rows() != rows || b.Cols() != cols) {
		return nil, mat.Errorf("matrix dimensions must agree")
	}
	out := mat.New(rows, cols)
	re := out.Re()
	for i := range re {
		re[i] = f(bval(a, i), bval(b, i))
	}
	return []*mat.Value{out}, nil
}
