package builtins

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mat"
)

func callB(t *testing.T, name string, nout int, args ...*mat.Value) []*mat.Value {
	t.Helper()
	b := Lookup(name)
	if b == nil {
		t.Fatalf("builtin %q not registered", name)
	}
	outs, err := Call(NewContext(), b, args, nout)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return outs
}

func call1(t *testing.T, name string, args ...*mat.Value) *mat.Value {
	t.Helper()
	return callB(t, name, 1, args...)[0]
}

func wantNum(t *testing.T, v *mat.Value, want float64) {
	t.Helper()
	got, err := v.Scalar()
	if err != nil {
		t.Fatalf("not scalar: %v", err)
	}
	if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
		t.Fatalf("got %g, want %g", got, want)
	}
}

func vec(xs ...float64) *mat.Value { return mat.FromSlice(1, len(xs), xs) }

func TestConstructors(t *testing.T) {
	z := call1(t, "zeros", mat.Scalar(2), mat.Scalar(3))
	if z.Rows() != 2 || z.Cols() != 3 {
		t.Fatal("zeros(2,3)")
	}
	o := call1(t, "ones", mat.Scalar(2))
	if o.Rows() != 2 || o.Cols() != 2 || o.At(1, 1) != 1 {
		t.Fatal("ones(2)")
	}
	e := call1(t, "eye", mat.Scalar(3))
	if e.At(0, 0) != 1 || e.At(0, 1) != 0 {
		t.Fatal("eye(3)")
	}
	// size vector argument
	z2 := call1(t, "zeros", vec(4, 5))
	if z2.Rows() != 4 || z2.Cols() != 5 {
		t.Fatal("zeros([4 5])")
	}
	// rand within [0,1) and deterministic per context seed
	r1 := call1(t, "rand", mat.Scalar(3))
	for _, x := range r1.Re() {
		if x < 0 || x >= 1 {
			t.Fatal("rand out of range")
		}
	}
}

func TestQueries(t *testing.T) {
	a := mat.New(3, 7)
	wantNum(t, call1(t, "numel", a), 21)
	wantNum(t, call1(t, "length", a), 7)
	wantNum(t, call1(t, "size", a, mat.Scalar(1)), 3)
	wantNum(t, call1(t, "size", a, mat.Scalar(2)), 7)
	sz := call1(t, "size", a)
	if sz.Cols() != 2 || sz.Re()[0] != 3 || sz.Re()[1] != 7 {
		t.Fatal("size vector")
	}
	outs := callB(t, "size", 2, a)
	wantNum(t, outs[0], 3)
	wantNum(t, outs[1], 7)
	wantNum(t, call1(t, "isempty", mat.Empty()), 1)
	wantNum(t, call1(t, "isempty", a), 0)
	wantNum(t, call1(t, "isreal", mat.Scalar(1)), 1)
	wantNum(t, call1(t, "isreal", mat.ComplexScalar(1i)), 0)
	wantNum(t, call1(t, "length", mat.Empty()), 0)
}

func TestReductions(t *testing.T) {
	v := vec(1, 2, 3, 4)
	wantNum(t, call1(t, "sum", v), 10)
	wantNum(t, call1(t, "prod", v), 24)
	wantNum(t, call1(t, "mean", v), 2.5)
	wantNum(t, call1(t, "max", v), 4)
	wantNum(t, call1(t, "min", v), 1)
	// columnwise on matrices
	m := mat.FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	s := call1(t, "sum", m)
	if s.Rows() != 1 || s.Cols() != 3 || s.Re()[0] != 5 {
		t.Fatalf("column sums: %v", s)
	}
	// [m, i] = max(v)
	outs := callB(t, "max", 2, vec(3, 9, 2))
	wantNum(t, outs[0], 9)
	wantNum(t, outs[1], 2)
	// elementwise two-arg forms
	wantNum(t, call1(t, "max", mat.Scalar(3), mat.Scalar(5)), 5)
	mm := call1(t, "min", vec(1, 5), vec(4, 2))
	if mm.Re()[0] != 1 || mm.Re()[1] != 2 {
		t.Fatal("elementwise min")
	}
	// NaN skipped like MATLAB
	wantNum(t, call1(t, "max", vec(1, math.NaN(), 3)), 3)
	wantNum(t, call1(t, "any", vec(0, 0, 2)), 1)
	wantNum(t, call1(t, "all", vec(1, 0)), 0)
	// complex sum
	z := mat.NewKind(mat.Complex, 1, 2)
	z.Re()[0], z.Im()[0] = 1, 2
	z.Re()[1], z.Im()[1] = 3, -1
	zs := call1(t, "sum", z)
	if zs.ComplexAt(0) != 4+1i {
		t.Fatalf("complex sum: %v", zs)
	}
}

func TestMathFunctions(t *testing.T) {
	wantNum(t, call1(t, "abs", mat.Scalar(-3)), 3)
	wantNum(t, call1(t, "abs", mat.ComplexScalar(3+4i)), 5)
	wantNum(t, call1(t, "sqrt", mat.Scalar(16)), 4)
	z := call1(t, "sqrt", mat.Scalar(-9))
	if z.Kind() != mat.Complex || math.Abs(z.Im()[0]-3) > 1e-12 {
		t.Fatalf("sqrt(-9) = %v", z)
	}
	wantNum(t, call1(t, "floor", mat.Scalar(2.9)), 2)
	wantNum(t, call1(t, "ceil", mat.Scalar(2.1)), 3)
	wantNum(t, call1(t, "round", mat.Scalar(2.5)), 3)
	wantNum(t, call1(t, "round", mat.Scalar(-2.5)), -2) // floor(x+0.5)
	wantNum(t, call1(t, "fix", mat.Scalar(-2.7)), -2)
	wantNum(t, call1(t, "sign", mat.Scalar(-7)), -1)
	wantNum(t, call1(t, "mod", mat.Scalar(-1), mat.Scalar(3)), 2)
	wantNum(t, call1(t, "rem", mat.Scalar(-1), mat.Scalar(3)), -1)
	wantNum(t, call1(t, "atan2", mat.Scalar(1), mat.Scalar(1)), math.Pi/4)
	wantNum(t, call1(t, "exp", mat.Scalar(0)), 1)
	wantNum(t, call1(t, "log", mat.Scalar(math.E)), 1)
	// elementwise over vectors
	sq := call1(t, "sqrt", vec(1, 4, 9))
	if sq.Re()[2] != 3 {
		t.Fatal("vector sqrt")
	}
	// complex math
	ez := call1(t, "exp", mat.ComplexScalar(complex(0, math.Pi)))
	if math.Abs(real(ez.ComplexAt(0))+1) > 1e-12 {
		t.Fatalf("exp(i*pi) = %v", ez)
	}
}

func TestComplexParts(t *testing.T) {
	z := mat.ComplexScalar(3 + 4i)
	wantNum(t, call1(t, "real", z), 3)
	wantNum(t, call1(t, "imag", z), 4)
	c := call1(t, "conj", z)
	if c.ComplexAt(0) != 3-4i {
		t.Fatal("conj")
	}
	wantNum(t, call1(t, "angle", mat.ComplexScalar(1i)), math.Pi/2)
	wantNum(t, call1(t, "imag", mat.Scalar(5)), 0)
}

func TestVectorBuiltins(t *testing.T) {
	wantNum(t, call1(t, "dot", vec(1, 2, 3), vec(4, 5, 6)), 32)
	wantNum(t, call1(t, "norm", vec(3, 4)), 5)
	wantNum(t, call1(t, "norm", vec(1, -2, 2), mat.Scalar(1)), 5)
	wantNum(t, call1(t, "norm", vec(1, -7, 2), mat.Scalar(math.Inf(1))), 7)
	f := call1(t, "find", vec(0, 3, 0, 7))
	if f.Numel() != 2 || f.Re()[1] != 4 {
		t.Fatalf("find: %v", f)
	}
	ls := call1(t, "linspace", mat.Scalar(0), mat.Scalar(1), mat.Scalar(5))
	if ls.Cols() != 5 || ls.Re()[1] != 0.25 {
		t.Fatalf("linspace: %v", ls)
	}
	srt := callB(t, "sort", 2, vec(3, 1, 2))
	if srt[0].Re()[0] != 1 || srt[1].Re()[0] != 2 {
		t.Fatalf("sort: %v %v", srt[0], srt[1])
	}
}

func TestMatrixBuiltins(t *testing.T) {
	m := mat.FromSlice(2, 2, []float64{4, 2, 1, 3})
	wantNum(t, call1(t, "det", m), 10)
	d := call1(t, "diag", m)
	if d.Rows() != 2 || d.Re()[0] != 4 || d.Re()[1] != 3 {
		t.Fatalf("diag: %v", d)
	}
	dm := call1(t, "diag", vec(5, 6))
	if dm.Rows() != 2 || dm.At(0, 0) != 5 || dm.At(0, 1) != 0 {
		t.Fatal("diag of vector")
	}
	lo := call1(t, "tril", m, mat.Scalar(-1))
	if lo.At(0, 0) != 0 || lo.At(1, 0) != 1 {
		t.Fatalf("tril: %v", lo)
	}
	hi := call1(t, "triu", m, mat.Scalar(1))
	if hi.At(0, 1) != 2 || hi.At(0, 0) != 0 {
		t.Fatalf("triu: %v", hi)
	}
	rs := call1(t, "reshape", mat.FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6}), mat.Scalar(3), mat.Scalar(2))
	if rs.Rows() != 3 || rs.Cols() != 2 {
		t.Fatal("reshape")
	}
	rp := call1(t, "repmat", vec(1, 2), mat.Scalar(2), mat.Scalar(2))
	if rp.Rows() != 2 || rp.Cols() != 4 || rp.At(1, 3) != 2 {
		t.Fatalf("repmat: %v", rp)
	}
	ev := call1(t, "eig", mat.FromSlice(2, 2, []float64{2, 1, 1, 2}))
	if ev.Rows() != 2 || math.Abs(ev.Re()[0]-1) > 1e-9 {
		t.Fatalf("eig: %v", ev)
	}
	iv := call1(t, "inv", m)
	if math.Abs(iv.At(0, 0)-0.3) > 1e-12 {
		t.Fatalf("inv: %v", iv)
	}
	lu := callB(t, "lu", 3, m)
	if lu[0].At(0, 0) != 1 {
		t.Fatal("lu: L not unit")
	}
}

func TestMLDivide(t *testing.T) {
	a := mat.FromSlice(2, 2, []float64{4, 1, 1, 3})
	b := mat.FromSlice(2, 1, []float64{6, 4})
	x, err := MLDivide(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// verify A*x = b
	ax, _ := mat.Mul(a, x)
	for i := range ax.Re() {
		if math.Abs(ax.Re()[i]-b.Re()[i]) > 1e-10 {
			t.Fatalf("A*x != b: %v", ax)
		}
	}
	// scalar division
	wantNum(t, must(MLDivide(mat.Scalar(2), mat.Scalar(10))), 5)
	// shape errors
	if _, err := MLDivide(a, mat.New(3, 1)); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func must(v *mat.Value, err error) *mat.Value {
	if err != nil {
		panic(err)
	}
	return v
}

func TestStringsAndIO(t *testing.T) {
	ctx := NewContext()
	var sb strings.Builder
	ctx.Out = &sb
	b := Lookup("fprintf")
	if _, err := Call(ctx, b, []*mat.Value{mat.FromString("v=%d w=%5.2f s=%s\\n"), mat.Scalar(42), mat.Scalar(3.14159), mat.FromString("hi")}, 1); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "v=42 w= 3.14 s=hi\n" {
		t.Fatalf("fprintf: %q", got)
	}
	// format recycling over matrix arguments
	sb.Reset()
	if _, err := Call(ctx, b, []*mat.Value{mat.FromString("%d,"), vec(1, 2, 3)}, 1); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "1,2,3," {
		t.Fatalf("recycled fprintf: %q", got)
	}
	sp := call1(t, "sprintf", mat.FromString("x=%g"), mat.Scalar(2.5))
	if sp.Text() != "x=2.5" {
		t.Fatalf("sprintf: %q", sp.Text())
	}
	// error builtin raises
	eb := Lookup("error")
	if _, err := Call(NewContext(), eb, []*mat.Value{mat.FromString("boom %d"), mat.Scalar(3)}, 1); err == nil || !strings.Contains(err.Error(), "boom 3") {
		t.Fatalf("error builtin: %v", err)
	}
}

func TestConstants(t *testing.T) {
	wantNum(t, call1(t, "pi"), math.Pi)
	wantNum(t, call1(t, "eps"), 2.220446049250313e-16)
	if !math.IsInf(call1(t, "Inf").MustScalar(), 1) {
		t.Fatal("Inf")
	}
	if !math.IsNaN(call1(t, "NaN").MustScalar()) {
		t.Fatal("NaN")
	}
	i := call1(t, "i")
	if i.ComplexAt(0) != 1i {
		t.Fatal("i")
	}
	wantNum(t, call1(t, "true"), 1)
	wantNum(t, call1(t, "false"), 0)
}

func TestArgValidation(t *testing.T) {
	if _, err := Call(NewContext(), Lookup("sqrt"), nil, 1); err == nil {
		t.Fatal("sqrt() must require an argument")
	}
	if _, err := Call(NewContext(), Lookup("sqrt"), []*mat.Value{mat.Scalar(1), mat.Scalar(2)}, 1); err == nil {
		t.Fatal("sqrt(a,b) must reject extra arguments")
	}
	if _, err := Call(NewContext(), Lookup("sqrt"), []*mat.Value{mat.Scalar(1)}, 3); err == nil {
		t.Fatal("too many outputs must error")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	// normal deviates have roughly zero mean and unit variance
	r := NewRNG(7)
	var sum, sumSq float64
	n := 20000
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal stats: mean=%g var=%g", mean, variance)
	}
}

func TestEvalBinOpDispatch(t *testing.T) {
	// spot-check the shared dispatcher used by interpreter and VM
	out, err := EvalBinOp(0 /* OpAdd */, mat.Scalar(2), mat.Scalar(3))
	if err != nil {
		t.Fatal(err)
	}
	wantNum(t, out, 5)
}
