package builtins

import (
	"math"

	"repro/internal/blas"
	"repro/internal/linalg"
	"repro/internal/mat"
	"repro/internal/sparse"
)

func init() {
	register("dot", 2, 2, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a, b := args[0], args[1]
		if a.Numel() != b.Numel() {
			return nil, mat.Errorf("dot: vectors must be the same length")
		}
		s := blas.Ddot(a.Numel(), a.Re(), 1, b.Re(), 1)
		return []*mat.Value{mat.Scalar(s)}, nil
	})

	register("norm", 1, 2, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		p := 2.0
		fro := false
		if len(args) == 2 {
			if args[1].Kind() == mat.Char {
				if args[1].Text() == "fro" {
					fro = true
				} else {
					return nil, mat.Errorf("norm: unknown norm %q", args[1].Text())
				}
			} else {
				p = args[1].Re()[0]
			}
		}
		if a.IsVector() || a.IsEmpty() || fro {
			switch {
			case fro || p == 2:
				return []*mat.Value{mat.Scalar(blas.Dnrm2(a.Numel(), a.Re(), 1))}, nil
			case p == 1:
				var s float64
				for _, x := range a.Re() {
					s += math.Abs(x)
				}
				return []*mat.Value{mat.Scalar(s)}, nil
			case math.IsInf(p, 1):
				var s float64
				for _, x := range a.Re() {
					if v := math.Abs(x); v > s {
						s = v
					}
				}
				return []*mat.Value{mat.Scalar(s)}, nil
			default:
				var s float64
				for _, x := range a.Re() {
					s += math.Pow(math.Abs(x), p)
				}
				return []*mat.Value{mat.Scalar(math.Pow(s, 1/p))}, nil
			}
		}
		// Matrix norms: 1 (max column sum), inf (max row sum),
		// 2 (largest singular value via eig of AᵀA).
		switch {
		case p == 1:
			var best float64
			for c := 0; c < a.Cols(); c++ {
				var s float64
				for r := 0; r < a.Rows(); r++ {
					s += math.Abs(a.At(r, c))
				}
				if s > best {
					best = s
				}
			}
			return []*mat.Value{mat.Scalar(best)}, nil
		case math.IsInf(p, 1):
			var best float64
			for r := 0; r < a.Rows(); r++ {
				var s float64
				for c := 0; c < a.Cols(); c++ {
					s += math.Abs(a.At(r, c))
				}
				if s > best {
					best = s
				}
			}
			return []*mat.Value{mat.Scalar(best)}, nil
		case p == 2:
			// AᵀA is symmetric positive semidefinite; its largest
			// eigenvalue is σ_max².
			m, n := a.Rows(), a.Cols()
			ata := make([]float64, n*n)
			blas.Dgemm(n, n, m, 1, transposeOf(a), n, a.Re(), m, 0, ata, n)
			re, _ := linalg.Eig(ata, n)
			var best float64
			for _, x := range re {
				if x > best {
					best = x
				}
			}
			return []*mat.Value{mat.Scalar(math.Sqrt(best))}, nil
		}
		return nil, mat.Errorf("norm: unsupported matrix norm %g", p)
	})

	register("eig", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		if a.Rows() != a.Cols() {
			return nil, mat.Errorf("eig: matrix must be square")
		}
		if a.Kind() == mat.Complex {
			return nil, mat.Errorf("eig: complex matrices are not supported")
		}
		n := a.Rows()
		re, im := linalg.Eig(a.Re(), n)
		anyImag := false
		for _, x := range im {
			if x != 0 {
				anyImag = true
				break
			}
		}
		var out *mat.Value
		if anyImag {
			out = mat.NewKind(mat.Complex, n, 1)
			copy(out.Re(), re)
			copy(out.Im(), im)
		} else {
			out = mat.New(n, 1)
			copy(out.Re(), re)
		}
		return []*mat.Value{out}, nil
	})

	register("inv", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		if a.Rows() != a.Cols() {
			return nil, mat.Errorf("inv: matrix must be square")
		}
		x, err := linalg.Inv(a.Re(), a.Rows())
		if err != nil {
			return nil, mat.Errorf("inv: %v", err)
		}
		out := mat.New(a.Rows(), a.Cols())
		copy(out.Re(), x)
		return []*mat.Value{out}, nil
	})

	register("det", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		if a.Rows() != a.Cols() {
			return nil, mat.Errorf("det: matrix must be square")
		}
		return []*mat.Value{mat.Scalar(linalg.Det(a.Re(), a.Rows()))}, nil
	})

	register("chol", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		if a.Rows() != a.Cols() {
			return nil, mat.Errorf("chol: matrix must be square")
		}
		r, err := linalg.Chol(a.Re(), a.Rows())
		if err != nil {
			return nil, mat.Errorf("chol: %v", err)
		}
		out := mat.New(a.Rows(), a.Cols())
		// linalg.Chol returns R with A = RᵀR stored row-lower; emit the
		// upper-triangular MATLAB convention.
		n := a.Rows()
		for j := 0; j < n; j++ {
			for i := 0; i <= j; i++ {
				out.SetAt(i, j, r[j*n+i])
			}
		}
		return []*mat.Value{out}, nil
	})

	register("lu", 1, 1, 3, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		a := args[0]
		if a.Rows() != a.Cols() {
			return nil, mat.Errorf("lu: matrix must be square")
		}
		n := a.Rows()
		f := make([]float64, n*n)
		copy(f, a.Re())
		piv, _ := linalg.LU(f, n)
		l := mat.New(n, n)
		u := mat.New(n, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if i > j {
					l.SetAt(i, j, f[j*n+i])
				} else {
					u.SetAt(i, j, f[j*n+i])
					if i == j {
						l.SetAt(i, i, 1)
					}
				}
			}
		}
		p := mat.New(n, n)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for k := 0; k < n; k++ {
			if piv[k] != k {
				perm[k], perm[piv[k]] = perm[piv[k]], perm[k]
			}
		}
		for i, pi := range perm {
			p.SetAt(i, pi, 1)
		}
		return []*mat.Value{l, u, p}, nil
	})
}

// transposeOf returns row-major view data (i.e., Aᵀ in column-major).
func transposeOf(a *mat.Value) []float64 {
	m, n := a.Rows(), a.Cols()
	out := make([]float64, m*n)
	for c := 0; c < n; c++ {
		for r := 0; r < m; r++ {
			out[r*n+c] = a.At(r, c)
		}
	}
	return out
}

// MLDivide implements the backslash operator A\b using LU with partial
// pivoting (square systems) — exposed here because both the interpreter
// and compiled code route '\' through it.
func MLDivide(a, b *mat.Value) (*mat.Value, error) {
	if a.IsScalar() {
		return mat.ElemDiv(b, a)
	}
	if a.Kind() == mat.Complex || b.Kind() == mat.Complex {
		return nil, mat.Errorf("mldivide: complex systems are not supported")
	}
	if a.Rows() != a.Cols() {
		return nil, mat.Errorf("mldivide: only square systems are supported")
	}
	if b.Rows() != a.Rows() {
		return nil, mat.Errorf("mldivide: dimension mismatch (%dx%d \\ %dx%d)", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	if b.IsSparse() {
		d, err := b.Dense() // the solvers read b's column-major payload
		if err != nil {
			return nil, err
		}
		b = d
	}
	if a.IsSparse() {
		if mat.SparseTriangularity(a) != sparse.General {
			// Structurally triangular sparse systems take the parallel
			// level-scheduled substitution kernel; the SOR-style M\r
			// preconditioner solves in the iterative tier land here.
			return mat.SparseTriSolve(a, b)
		}
		d, err := a.Dense() // general sparse system: densify, then LU
		if err != nil {
			return nil, err
		}
		a = d
	}
	x, err := linalg.Solve(a.Re(), a.Rows(), b.Re(), b.Cols())
	if err != nil {
		return nil, mat.Errorf("mldivide: %v", err)
	}
	out := mat.New(a.Rows(), b.Cols())
	copy(out.Re(), x)
	return out, nil
}
