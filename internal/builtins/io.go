package builtins

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/mat"
)

func init() {
	// Constants. The builtin i (and j) is the imaginary unit, the very
	// symbol whose ambiguity the paper's Figure 2 and the mandel analysis
	// discuss.
	registerConst("pi", mat.Scalar(math.Pi))
	registerConst("e", mat.Scalar(math.E))
	registerConst("eps", mat.Scalar(2.220446049250313e-16))
	registerConst("Inf", mat.Scalar(math.Inf(1)))
	registerConst("inf", mat.Scalar(math.Inf(1)))
	registerConst("NaN", mat.Scalar(math.NaN()))
	registerConst("nan", mat.Scalar(math.NaN()))
	registerConst("i", mat.ComplexScalar(complex(0, 1)))
	registerConst("j", mat.ComplexScalar(complex(0, 1)))
	registerConst("true", mat.BoolScalar(true))
	registerConst("false", mat.BoolScalar(false))

	register("disp", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		fmt.Fprintln(ctx.Out, args[0].String())
		return []*mat.Value{mat.Empty()}, nil
	})

	register("fprintf", 1, -1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		s, err := formatPrintf(args)
		if err != nil {
			return nil, err
		}
		fmt.Fprint(ctx.Out, s)
		return []*mat.Value{mat.Scalar(float64(len(s)))}, nil
	})

	register("sprintf", 1, -1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		s, err := formatPrintf(args)
		if err != nil {
			return nil, err
		}
		return []*mat.Value{mat.FromString(s)}, nil
	})

	register("num2str", 1, 1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return []*mat.Value{mat.FromString(args[0].String())}, nil
	})

	register("error", 1, -1, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		s, err := formatPrintf(args)
		if err != nil {
			return nil, err
		}
		return nil, mat.Errorf("%s", s)
	})

	// tic/toc: no-op timers kept for source compatibility; the harness
	// measures externally.
	register("tic", 0, 0, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return []*mat.Value{mat.Empty()}, nil
	})
	register("toc", 0, 0, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return []*mat.Value{mat.Scalar(0)}, nil
	})
}

func registerConst(name string, v *mat.Value) {
	register(name, 0, 0, 1, func(ctx *Context, args []*mat.Value, nout int) ([]*mat.Value, error) {
		return []*mat.Value{v}, nil
	})
}

// formatPrintf implements the MATLAB printf subset: %d %i %g %e %f %s %c
// with width/precision flags, plus \n \t \\ escapes. Matrix arguments
// supply elements one at a time; the format recycles while arguments
// remain, as in MATLAB.
func formatPrintf(args []*mat.Value) (string, error) {
	if args[0].Kind() != mat.Char {
		return "", mat.Errorf("fprintf: first argument must be a format string")
	}
	format := args[0].Text()
	// Flatten remaining args into a queue of scalar-or-string items.
	type item struct {
		num float64
		str string
		isS bool
	}
	var queue []item
	for _, a := range args[1:] {
		if a.Kind() == mat.Char {
			queue = append(queue, item{str: a.Text(), isS: true})
			continue
		}
		for _, x := range a.Re() {
			queue = append(queue, item{num: x})
		}
	}
	var b strings.Builder
	qi := 0
	pass := func() error {
		i := 0
		for i < len(format) {
			c := format[i]
			switch c {
			case '\\':
				if i+1 < len(format) {
					switch format[i+1] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case 'r':
						b.WriteByte('\r')
					case '\\':
						b.WriteByte('\\')
					default:
						b.WriteByte(format[i+1])
					}
					i += 2
					continue
				}
				b.WriteByte(c)
				i++
			case '%':
				if i+1 < len(format) && format[i+1] == '%' {
					b.WriteByte('%')
					i += 2
					continue
				}
				j := i + 1
				for j < len(format) && strings.ContainsRune("-+ 0123456789.", rune(format[j])) {
					j++
				}
				if j >= len(format) {
					return mat.Errorf("fprintf: malformed format")
				}
				verb := format[j]
				spec := format[i : j+1]
				if qi >= len(queue) {
					return mat.Errorf("fprintf: not enough arguments for format")
				}
				it := queue[qi]
				qi++
				switch verb {
				case 'd', 'i':
					fmt.Fprintf(&b, strings.Replace(spec, string(verb), "d", 1), int64(it.num))
				case 'f', 'e', 'E', 'g', 'G':
					fmt.Fprintf(&b, spec, it.num)
				case 's':
					if it.isS {
						fmt.Fprintf(&b, spec, it.str)
					} else {
						fmt.Fprintf(&b, spec, fmt.Sprintf("%g", it.num))
					}
				case 'c':
					fmt.Fprintf(&b, strings.Replace(spec, "c", "c", 1), rune(it.num))
				default:
					return mat.Errorf("fprintf: unsupported verb %%%c", verb)
				}
				i = j + 1
			default:
				b.WriteByte(c)
				i++
			}
		}
		return nil
	}
	if err := pass(); err != nil {
		return "", err
	}
	// Recycle the format while numeric arguments remain (MATLAB rule).
	for qi < len(queue) && strings.ContainsRune(format, '%') {
		before := qi
		if err := pass(); err != nil {
			return "", err
		}
		if qi == before {
			break
		}
	}
	return b.String(), nil
}
