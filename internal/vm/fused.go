package vm

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/builtins"
	"repro/internal/ir"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// The kernel runs blocked: the micro-op program is dispatched once per
// block of fuseBlock elements, and each micro-op is one tight float64
// loop over a cache-resident chunk. That keeps dispatch cost at
// ops x (n / fuseBlock) instead of ops x n, while intermediates stay in
// L1 instead of becoming full-size temporaries.
const fuseBlock = 512

// fuseGrainBlocks is the minimum number of blocks per parallel chunk
// (~16k elements); kernels smaller than that run inline on the caller.
const fuseGrainBlocks = 32

// fuseScratch holds one intermediate chunk per postfix stack slot. The
// stack is never deeper than the leaf count, which codegen caps at
// MaxFuseOperands.
type fuseScratch [ir.MaxFuseOperands][fuseBlock]float64

var fuseScratchPool = sync.Pool{New: func() any { return new(fuseScratch) }}

// chunkAllInt reports whether every element of a produced chunk stayed
// integral — the same per-element test the generic elementwise loop
// applies while deciding between an Int and a Real result.
func chunkAllInt(o []float64) bool {
	for _, z := range o {
		if z != math.Trunc(z) || math.IsInf(z, 0) {
			return false
		}
	}
	return true
}

// fusedExec executes one OpVFused kernel: a postfix micro-op program
// over real operands, run as a single loop that writes each output
// element once, with no intermediate arrays. The aux layout is
//
//	[nv, vregs..., nslots, nops, (code, arg) x nops]
//
// Semantics match the generic one-instruction-per-operator chain
// bit-for-bit: shapes are checked in the same innermost-first order
// with the same errors, per-element arithmetic applies the identical
// float64 operations in the identical order, and the result kind is
// reproduced by replaying the operators' promotion rules. Whenever the
// fast path cannot preserve those semantics — an operand is complex or
// undefined, or an element would promote to complex (negative base to
// a fractional power, sqrt of a negative) — the whole kernel falls
// back to interpreting the micro-ops over boxed values through the
// same mat/builtins entry points the generic instructions call.
func fusedExec(c *Compiled, ctx *builtins.Context, aux []int32, at, dst int, V []*mat.Value, slots *[ir.MaxFuseOperands]float64) error {
	nv := int(aux[at])
	vregs := aux[at+1 : at+1+nv]
	nops := int(aux[at+2+nv])
	prog := aux[at+3+nv : at+3+nv+2*nops]

	var ops [ir.MaxFuseOperands]*mat.Value
	boxed := false
	for k := 0; k < nv; k++ {
		v := V[vregs[k]]
		ops[k] = v
		if v == nil || v.Im() != nil || v.IsSparse() {
			// Sparse operands have no dense payload to stream; the boxed
			// interpreter routes them through the representation-aware
			// mat entry points.
			boxed = true
		}
	}
	if boxed {
		return fusedBoxed(c, ctx, prog, ops[:nv], slots, dst, V)
	}

	// Shape simulation, innermost-first like the generic chain, with
	// binShape's broadcasting rules and error text.
	var shR, shC [ir.MaxFuseOps]int
	sp := 0
	for j := 0; j < nops; j++ {
		switch prog[2*j] {
		case ir.FuseLoadV:
			v := ops[prog[2*j+1]]
			shR[sp], shC[sp] = v.Rows(), v.Cols()
			sp++
		case ir.FuseLoadSF, ir.FuseLoadSI:
			shR[sp], shC[sp] = 1, 1
			sp++
		case ir.FuseNeg, ir.FuseMath:
			// shape unchanged
		default: // binary
			xr, xc := shR[sp-2], shC[sp-2]
			yr, yc := shR[sp-1], shC[sp-1]
			switch {
			case xr == 1 && xc == 1:
				shR[sp-2], shC[sp-2] = yr, yc
			case yr == 1 && yc == 1:
				// keep x's shape
			case xr == yr && xc == yc:
				// same shape
			default:
				return mat.Errorf("matrix dimensions must agree: %dx%d vs %dx%d", xr, xc, yr, yc)
			}
			sp--
		}
	}
	rows, cols := shR[0], shC[0]
	n := rows * cols

	// canAbort: the program contains an op whose real path can promote
	// to complex mid-loop (.^ with a negative base and fractional
	// exponent, sqrt of a negative). needAcc: which binary ops might
	// produce an Int/Bool-kinded result and so must track whether every
	// element stays integral — the same in-loop test mat.elementwise
	// applies. maybe[] is a conservative "could be Int or Bool" lattice
	// over the postfix stack; tracking an accumulator that turns out
	// unnecessary is harmless because the final kind replay uses exact
	// kinds.
	canAbort := false
	var maybe [ir.MaxFuseOps]bool
	var needAcc [ir.MaxFuseOps]bool
	sp = 0
	for j := 0; j < nops; j++ {
		switch prog[2*j] {
		case ir.FuseLoadV:
			k := ops[prog[2*j+1]].Kind()
			maybe[sp] = k == mat.Int || k == mat.Bool
			sp++
		case ir.FuseLoadSF:
			maybe[sp] = false
			sp++
		case ir.FuseLoadSI:
			maybe[sp] = true
			sp++
		case ir.FuseNeg:
			// numKind keeps Int, turns Bool into Real: leave the flag.
		case ir.FuseMath:
			maybe[sp-1] = false
			if c.fuseSqrt[prog[2*j+1]] {
				canAbort = true
			}
		default:
			needAcc[j] = maybe[sp-2] && maybe[sp-1]
			maybe[sp-2] = needAcc[j]
			sp--
			if prog[2*j] == ir.FusePow {
				canAbort = true
			}
		}
	}

	// Destination: reuse the displaced value's buffer when this frame
	// is its sole owner and the shape matches. Writing in place over an
	// operand's own buffer is safe for a pure elementwise loop (element
	// i is fully read before it is written) — except when the kernel
	// can abort, because the boxed fallback must recompute from intact
	// operands.
	old := V[dst]
	var out *mat.Value
	if old != nil && !old.IsShared() && old.Im() == nil && !old.IsSparse() && old.Rows() == rows && old.Cols() == cols {
		reuse := true
		if canAbort {
			for k := 0; k < nv; k++ {
				if ops[k] == old {
					reuse = false
					break
				}
			}
		}
		if reuse {
			out = old
		}
	}
	if out == nil {
		out = mat.NewRealUninit(rows, cols)
	}
	outRe := out.Re()

	var data [ir.MaxFuseOperands][]float64
	var stride [ir.MaxFuseOperands]int
	for k := 0; k < nv; k++ {
		data[k] = ops[k].Re()
		if !ops[k].IsScalar() {
			stride[k] = 1
		}
	}

	var allInt [ir.MaxFuseOps]bool
	for j := 0; j < nops; j++ {
		allInt[j] = true
	}

	// Blocked interpretation, chunk-parallel over block ranges. Vector
	// loads alias the source arrays (no copy), scalar stack entries live
	// in sval, intermediate chunks in a per-worker pooled scratch arena,
	// and the root micro-op writes its chunk straight into the
	// destination. Element values are identical to per-element (and so
	// to serial) evaluation because elementwise ops are independent
	// across elements and each block is owned by exactly one worker —
	// writing in place stays safe in parallel because every micro-op
	// reads and writes only its own block's index range. On abort the
	// fallback discards the partial destination, so the abort point —
	// and which other workers' blocks completed — is immaterial; the
	// per-worker integrality flags AND-merge, which is order-
	// independent. Threads == 1 runs the block loop inline, exactly the
	// serial code path.
	nblocks := (n + fuseBlock - 1) / fuseBlock
	aborted := false
	if nblocks <= fuseGrainBlocks || parallel.DefaultThreads() == 1 {
		// Serial: interpret every block inline on this goroutine. This
		// branch must not touch the parallel dispatch — its closure
		// captures would heap-allocate per statement, and the fused alloc
		// budget is one pool draw.
		var abort atomic.Bool
		fuseRunRange(c, prog, nops, n, 0, nblocks, &data, &stride, slots, &needAcc, &allInt, outRe, &abort)
		aborted = abort.Load()
	} else {
		aborted = fuseRunParallel(c, prog, nops, n, nblocks, data, stride, *slots, needAcc, &allInt, outRe)
	}
	if aborted {
		// out is either a fresh draw or the (dead) displaced old value;
		// either way no live value aliases it, so recycle and redo the
		// whole statement over boxed values.
		if out != old {
			mat.Recycle(out)
		}
		return fusedBoxed(c, ctx, prog, ops[:nv], slots, dst, V)
	}

	// Kind replay: apply each operator's exact promotion rule, using
	// the integrality accumulators where the generic elementwise loop
	// would have scanned.
	var ks [ir.MaxFuseOps]mat.Kind
	sp = 0
	for j := 0; j < nops; j++ {
		switch prog[2*j] {
		case ir.FuseLoadV:
			ks[sp] = ops[prog[2*j+1]].Kind()
			sp++
		case ir.FuseLoadSF:
			ks[sp] = mat.Real
			sp++
		case ir.FuseLoadSI:
			ks[sp] = mat.Int
			sp++
		case ir.FuseNeg:
			if ks[sp-1] == mat.Char || ks[sp-1] == mat.Bool {
				ks[sp-1] = mat.Real
			}
		case ir.FuseMath:
			ks[sp-1] = mat.Real
		default:
			k := mat.PromoteKind(ks[sp-2], ks[sp-1])
			if k == mat.Int || k == mat.Bool {
				if allInt[j] {
					k = mat.Int
				} else {
					k = mat.Real
				}
			}
			ks[sp-2] = k
			sp--
		}
	}
	out.SetNumericKind(ks[0])

	V[dst] = out
	if old != nil && old != out && !old.IsShared() {
		mat.Recycle(old)
	}
	return nil
}

// fuseRunRange interprets blocks [blo, bhi) of the fused micro-op
// program: the serial engine for one worker's contiguous block range.
// It mutates only localInt, abort, the scratch chunks it draws, and the
// [blo*fuseBlock, bhi*fuseBlock) range of outRe, so disjoint ranges run
// concurrently; none of the pointer arguments are retained.
func fuseRunRange(c *Compiled, prog []int32, nops, n, blo, bhi int, data *[ir.MaxFuseOperands][]float64, stride *[ir.MaxFuseOperands]int, slots *[ir.MaxFuseOperands]float64, needAcc, localInt *[ir.MaxFuseOps]bool, outRe []float64, abort *atomic.Bool) {
	scr := fuseScratchPool.Get().(*fuseScratch)
	var vbuf [ir.MaxFuseOperands][]float64 // nil => scalar entry in sval
	var sval [ir.MaxFuseOperands]float64
blocks:
	for bi := blo; bi < bhi; bi++ {
		if abort.Load() {
			break
		}
		base := bi * fuseBlock
		bs := n - base
		if bs > fuseBlock {
			bs = fuseBlock
		}
		sp := 0
		for j := 0; j < nops; j++ {
			arg := prog[2*j+1]
			switch prog[2*j] {
			case ir.FuseLoadV:
				if stride[arg] == 0 {
					vbuf[sp], sval[sp] = nil, data[arg][0]
				} else {
					vbuf[sp] = data[arg][base : base+bs]
				}
				sp++
				continue
			case ir.FuseLoadSF, ir.FuseLoadSI:
				vbuf[sp], sval[sp] = nil, slots[arg]
				sp++
				continue
			case ir.FuseNeg:
				x := vbuf[sp-1]
				if x == nil {
					sval[sp-1] = -sval[sp-1]
					continue
				}
				o := scr[sp-1][:bs]
				if j == nops-1 {
					o = outRe[base : base+bs]
				}
				for i := 0; i < bs; i++ {
					o[i] = -x[i]
				}
				vbuf[sp-1] = o
				continue
			case ir.FuseMath:
				fn := c.mathFns[arg]
				x := vbuf[sp-1]
				if x == nil {
					if c.fuseSqrt[arg] && sval[sp-1] < 0 {
						abort.Store(true)
						break blocks
					}
					sval[sp-1] = fn(sval[sp-1])
					continue
				}
				o := scr[sp-1][:bs]
				if j == nops-1 {
					o = outRe[base : base+bs]
				}
				if c.fuseSqrt[arg] {
					for i := 0; i < bs; i++ {
						if x[i] < 0 {
							abort.Store(true)
							break blocks
						}
						o[i] = fn(x[i])
					}
				} else {
					for i := 0; i < bs; i++ {
						o[i] = fn(x[i])
					}
				}
				vbuf[sp-1] = o
				continue
			}
			// binary micro-op: pop two, push one
			op := prog[2*j]
			x, y := vbuf[sp-2], vbuf[sp-1]
			xs, ys := sval[sp-2], sval[sp-1]
			sp--
			if x == nil && y == nil {
				var z float64
				switch op {
				case ir.FuseAdd:
					z = xs + ys
				case ir.FuseSub:
					z = xs - ys
				case ir.FuseMul:
					z = xs * ys
				case ir.FuseDiv:
					z = xs / ys
				case ir.FusePow:
					if xs < 0 && ys != math.Trunc(ys) {
						abort.Store(true)
						break blocks
					}
					z = math.Pow(xs, ys)
				}
				if needAcc[j] && localInt[j] && (z != math.Trunc(z) || math.IsInf(z, 0)) {
					localInt[j] = false
				}
				vbuf[sp-1], sval[sp-1] = nil, z
				continue
			}
			o := scr[sp-1][:bs]
			if j == nops-1 {
				o = outRe[base : base+bs]
			}
			switch op {
			case ir.FuseAdd:
				switch {
				case x == nil:
					for i := 0; i < bs; i++ {
						o[i] = xs + y[i]
					}
				case y == nil:
					for i := 0; i < bs; i++ {
						o[i] = x[i] + ys
					}
				default:
					for i := 0; i < bs; i++ {
						o[i] = x[i] + y[i]
					}
				}
			case ir.FuseSub:
				switch {
				case x == nil:
					for i := 0; i < bs; i++ {
						o[i] = xs - y[i]
					}
				case y == nil:
					for i := 0; i < bs; i++ {
						o[i] = x[i] - ys
					}
				default:
					for i := 0; i < bs; i++ {
						o[i] = x[i] - y[i]
					}
				}
			case ir.FuseMul:
				switch {
				case x == nil:
					for i := 0; i < bs; i++ {
						o[i] = xs * y[i]
					}
				case y == nil:
					for i := 0; i < bs; i++ {
						o[i] = x[i] * ys
					}
				default:
					for i := 0; i < bs; i++ {
						o[i] = x[i] * y[i]
					}
				}
			case ir.FuseDiv:
				switch {
				case x == nil:
					for i := 0; i < bs; i++ {
						o[i] = xs / y[i]
					}
				case y == nil:
					for i := 0; i < bs; i++ {
						o[i] = x[i] / ys
					}
				default:
					for i := 0; i < bs; i++ {
						o[i] = x[i] / y[i]
					}
				}
			case ir.FusePow:
				switch {
				case x == nil:
					if xs >= 0 {
						for i := 0; i < bs; i++ {
							o[i] = math.Pow(xs, y[i])
						}
					} else {
						for i := 0; i < bs; i++ {
							if y[i] != math.Trunc(y[i]) {
								abort.Store(true)
								break blocks
							}
							o[i] = math.Pow(xs, y[i])
						}
					}
				case y == nil:
					if ys == math.Trunc(ys) {
						for i := 0; i < bs; i++ {
							o[i] = math.Pow(x[i], ys)
						}
					} else {
						for i := 0; i < bs; i++ {
							if x[i] < 0 {
								abort.Store(true)
								break blocks
							}
							o[i] = math.Pow(x[i], ys)
						}
					}
				default:
					for i := 0; i < bs; i++ {
						if x[i] < 0 && y[i] != math.Trunc(y[i]) {
							abort.Store(true)
							break blocks
						}
						o[i] = math.Pow(x[i], y[i])
					}
				}
			}
			if needAcc[j] && localInt[j] && !chunkAllInt(o) {
				localInt[j] = false
			}
			vbuf[sp-1] = o
		}
		if vbuf[0] == nil {
			// all-scalar program: the result is 1x1
			outRe[base] = sval[0]
		}
	}
	fuseScratchPool.Put(scr)
}

// fuseRunParallel fans the block range out over the worker pool. State
// arrives by value so nothing in the caller's frame is captured by the
// worker closure — only this function's copies escape, and only on
// this large-kernel path (the serial path allocates nothing).
func fuseRunParallel(c *Compiled, prog []int32, nops, n, nblocks int, data [ir.MaxFuseOperands][]float64, stride [ir.MaxFuseOperands]int, slots [ir.MaxFuseOperands]float64, needAcc [ir.MaxFuseOps]bool, allInt *[ir.MaxFuseOps]bool, outRe []float64) bool {
	var abort atomic.Bool
	var intMu sync.Mutex
	merged := *allInt
	parallel.For(0, nblocks, fuseGrainBlocks, func(blo, bhi int) {
		var localInt [ir.MaxFuseOps]bool
		for j := 0; j < nops; j++ {
			localInt[j] = true
		}
		fuseRunRange(c, prog, nops, n, blo, bhi, &data, &stride, &slots, &needAcc, &localInt, outRe, &abort)
		intMu.Lock()
		for j := 0; j < nops; j++ {
			if !localInt[j] {
				merged[j] = false
			}
		}
		intMu.Unlock()
	})
	*allInt = merged
	return abort.Load()
}

// fusedBoxed interprets the micro-op program over boxed values through
// the same mat/builtins entry points the generic instruction chain
// calls, in the same order — the complex/undefined-operand fallback.
func fusedBoxed(c *Compiled, ctx *builtins.Context, prog []int32, ops []*mat.Value, slots *[ir.MaxFuseOperands]float64, dst int, V []*mat.Value) error {
	var stack [ir.MaxFuseOps]*mat.Value
	sp := 0
	for j := 0; j < len(prog)/2; j++ {
		arg := prog[2*j+1]
		switch prog[2*j] {
		case ir.FuseLoadV:
			stack[sp] = ops[arg]
			sp++
		case ir.FuseLoadSF:
			stack[sp] = mat.Scalar(slots[arg])
			sp++
		case ir.FuseLoadSI:
			stack[sp] = mat.IntScalar(slots[arg])
			sp++
		case ir.FuseNeg:
			x := stack[sp-1]
			if x == nil {
				return fmt.Errorf("use of undefined value")
			}
			v, err := mat.Neg(x)
			if err != nil {
				return err
			}
			stack[sp-1] = v
		case ir.FuseMath:
			x := stack[sp-1]
			b := c.fuseBs[arg]
			if b == nil {
				return fmt.Errorf("unknown builtin %q", c.P.MathFns[arg])
			}
			if x == nil {
				return fmt.Errorf("%s: undefined argument", b.Name)
			}
			outs, err := builtins.Call(ctx, b, []*mat.Value{x}, 1)
			if err != nil {
				return err
			}
			if len(outs) == 0 || outs[0] == nil {
				stack[sp-1] = mat.Empty()
			} else {
				stack[sp-1] = outs[0]
			}
		default:
			x, y := stack[sp-2], stack[sp-1]
			if x == nil || y == nil {
				return fmt.Errorf("use of undefined value")
			}
			var v *mat.Value
			var err error
			switch prog[2*j] {
			case ir.FuseAdd:
				v, err = mat.Add(x, y)
			case ir.FuseSub:
				v, err = mat.Sub(x, y)
			case ir.FuseMul:
				v, err = mat.ElemMul(x, y)
			case ir.FuseDiv:
				v, err = mat.ElemDiv(x, y)
			case ir.FusePow:
				v, err = mat.ElemPow(x, y)
			default:
				err = fmt.Errorf("bad fused micro-op %d", prog[2*j])
			}
			if err != nil {
				return err
			}
			stack[sp-2] = v
			sp--
		}
	}
	old := V[dst]
	V[dst] = stack[0]
	if old != nil && old != stack[0] && !old.IsShared() {
		mat.Recycle(old)
	}
	return nil
}
