package vm

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/builtins"
	"repro/internal/ir"
	"repro/internal/mat"
)

// evalUnOp dispatches the generic unary opcodes.
func evalUnOp(code int32, v *mat.Value) (*mat.Value, error) {
	if v == nil {
		return nil, fmt.Errorf("use of undefined value")
	}
	switch code {
	case 0: // neg
		return mat.Neg(v)
	case 1: // uplus
		return mat.UPlus(v)
	case 2: // not
		return mat.Not(v)
	case 3: // .'
		return mat.DotTranspose(v)
	case 4: // '
		return mat.Transpose(v)
	}
	return nil, fmt.Errorf("unknown unary op %d", code)
}

// decodeSubs resolves boxed subscript registers (colon markers and
// index vectors) into mat.Subscript values.
func decodeSubs(aux []int32, at int, V []*mat.Value) ([]mat.Subscript, error) {
	n := int(aux[at])
	subs := make([]mat.Subscript, n)
	for i := 0; i < n; i++ {
		v := V[aux[at+1+i]]
		if v == nil {
			return nil, fmt.Errorf("undefined subscript")
		}
		if v == colonMarker {
			subs[i] = mat.Subscript{Colon: true}
			continue
		}
		s, err := mat.ResolveSubscript(v)
		if err != nil {
			return nil, err
		}
		s.ShapeRows, s.ShapeCols = v.Rows(), v.Cols()
		subs[i] = s
	}
	return subs, nil
}

func genericIndex(base *mat.Value, aux []int32, at int, V []*mat.Value) (*mat.Value, error) {
	if base == nil {
		return nil, fmt.Errorf("indexing an undefined value")
	}
	subs, err := decodeSubs(aux, at, V)
	if err != nil {
		return nil, err
	}
	switch len(subs) {
	case 0:
		base.MarkShared()
		return base, nil
	case 1:
		return mat.Index1(base, subs[0])
	case 2:
		return mat.Index2(base, subs[0], subs[1])
	}
	return nil, fmt.Errorf("unsupported number of subscripts (%d)", len(subs))
}

func genericAssign(base *mat.Value, aux []int32, at int, V []*mat.Value, rhs *mat.Value) error {
	if rhs == nil {
		return fmt.Errorf("assignment from undefined value")
	}
	subs, err := decodeSubs(aux, at, V)
	if err != nil {
		return err
	}
	switch len(subs) {
	case 1:
		return mat.Assign1(base, subs[0], rhs)
	case 2:
		return mat.Assign2(base, subs[0], subs[1], rhs)
	}
	return fmt.Errorf("unsupported number of subscripts (%d)", len(subs))
}

func genericCat(aux []int32, at int, V []*mat.Value) (*mat.Value, error) {
	nrows := int(aux[at])
	at++
	parts := make([][]*mat.Value, nrows)
	for r := 0; r < nrows; r++ {
		ncols := int(aux[at])
		at++
		row := make([]*mat.Value, ncols)
		for c := 0; c < ncols; c++ {
			v := V[aux[at]]
			at++
			if v == nil {
				return nil, fmt.Errorf("undefined value in matrix literal")
			}
			row[c] = v
		}
		parts[r] = row
	}
	return mat.Cat(parts)
}

func genericBuiltin(c *Compiled, ctx *builtins.Context, aux []int32, at int, V []*mat.Value) error {
	b := c.builtins[aux[at]]
	nout := int(aux[at+1])
	dsts := aux[at+2 : at+2+nout]
	nargs := int(aux[at+2+nout])
	argRegs := aux[at+3+nout : at+3+nout+nargs]
	args := make([]*mat.Value, nargs)
	for i, r := range argRegs {
		v := V[r]
		if v == nil {
			return fmt.Errorf("%s: undefined argument", b.Name)
		}
		args[i] = v
	}
	outs, err := builtins.Call(ctx, b, args, nout)
	if err != nil {
		return err
	}
	for i, d := range dsts {
		if i < len(outs) {
			V[d] = outs[i]
		} else {
			V[d] = mat.Empty()
		}
	}
	return nil
}

func userCall(p *ir.Prog, host Host, aux []int32, at int, V []*mat.Value) error {
	name := p.Calls[aux[at]]
	nout := int(aux[at+1])
	dsts := aux[at+2 : at+2+nout]
	nargs := int(aux[at+2+nout])
	argRegs := aux[at+3+nout : at+3+nout+nargs]
	args := make([]*mat.Value, nargs)
	for i, r := range argRegs {
		v := V[r]
		if v == nil {
			return fmt.Errorf("%s: undefined argument", name)
		}
		args[i] = v
	}
	outs, err := host.CallFunction(name, args, nout)
	if err != nil {
		return err
	}
	if len(outs) < nout {
		return fmt.Errorf("%s: not enough output arguments", name)
	}
	for i, d := range dsts {
		V[d] = outs[i]
	}
	return nil
}

// gemv executes the fused dgemv instruction: dst = alpha*A*x + beta*y.
// Shape or kind mismatches fall back to the generic operators so the
// fusion is never observable semantically.
func gemv(aux []int32, at int, alpha float64, dst int, V []*mat.Value) error {
	a := V[aux[at]]
	x := V[aux[at+1]]
	var y *mat.Value
	if aux[at+2] >= 0 {
		y = V[aux[at+2]]
	}
	beta := float64(aux[at+3])
	if a == nil || x == nil {
		return fmt.Errorf("gemv: undefined operand")
	}

	fastOK := !x.IsSparse() &&
		a.Kind() != mat.Complex && a.Kind() != mat.Char &&
		x.Kind() != mat.Complex && x.Kind() != mat.Char &&
		x.Cols() == 1 && a.Cols() == x.Rows() && a.Rows() > 0
	if fastOK && y != nil {
		fastOK = !y.IsSparse() && y.Kind() != mat.Complex && y.Kind() != mat.Char &&
			y.Cols() == 1 && y.Rows() == a.Rows()
	}
	if fastOK {
		// Shared β prologue; the α*A*x accumulation then starts from the
		// staged y values with β=1 in both the dense and sparse kernels,
		// so per-element rounding order is identical across the two
		// representations (sparse SpMV mirrors Dgemv's ascending-column
		// accumulation exactly).
		out := mat.New(a.Rows(), 1)
		re := out.Re()
		if y != nil && beta != 0 {
			yre := y.Re()
			if beta == 1 {
				copy(re, yre)
			} else {
				for i := range re {
					re[i] = beta * yre[i]
				}
			}
		}
		if a.IsSparse() {
			mat.SparseSpMVInto(a, alpha, x.Re(), 1, re)
		} else {
			blas.Dgemv(false, a.Rows(), a.Cols(), alpha, a.Re(), a.Rows(), x.Re(), 1, re)
		}
		V[dst] = out
		return nil
	}

	// Semantic fallback through the boxed operators.
	prod, err := mat.Mul(a, x)
	if err != nil {
		return err
	}
	if alpha == -1 {
		prod, err = mat.Neg(prod)
		if err != nil {
			return err
		}
	} else if alpha != 1 {
		prod, err = mat.ElemMul(mat.Scalar(alpha), prod)
		if err != nil {
			return err
		}
	}
	if y == nil || beta == 0 {
		V[dst] = prod
		return nil
	}
	yTerm := y
	if beta == -1 {
		yTerm, err = mat.Neg(y)
		if err != nil {
			return err
		}
	} else if beta != 1 {
		yTerm, err = mat.ElemMul(mat.Scalar(beta), y)
		if err != nil {
			return err
		}
	}
	out, err := mat.Add(prod, yTerm)
	if err != nil {
		return err
	}
	V[dst] = out
	return nil
}
