package vm

import (
	"strings"
	"testing"

	"repro/internal/builtins"
	"repro/internal/ir"
	"repro/internal/mat"
)

// testHost satisfies Host without an engine.
type testHost struct {
	ctx   *builtins.Context
	calls map[string]func(args []*mat.Value, nout int) ([]*mat.Value, error)
}

func newTestHost() *testHost {
	return &testHost{ctx: builtins.NewContext(), calls: map[string]func([]*mat.Value, int) ([]*mat.Value, error){}}
}

func (h *testHost) Context() *builtins.Context { return h.ctx }
func (h *testHost) CallFunction(name string, args []*mat.Value, nout int) ([]*mat.Value, error) {
	f, ok := h.calls[name]
	if !ok {
		return nil, mat.Errorf("no function %q", name)
	}
	return f(args, nout)
}

// run builds a Compiled from raw instructions and executes it.
func run(t *testing.T, p *ir.Prog, args ...*mat.Value) []*mat.Value {
	t.Helper()
	p.Allocated = true // hand-written programs use physical registers
	c, err := Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := Run(c, newTestHost(), args)
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

func runErr(t *testing.T, p *ir.Prog, args ...*mat.Value) error {
	t.Helper()
	p.Allocated = true
	c, err := Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(c, newTestHost(), args)
	return err
}

func TestScalarArithmeticProgram(t *testing.T) {
	// f(x) = (x + 2) * 3 computed in F registers
	p := &ir.Prog{
		Name: "t",
		NumF: 4, NumV: 1,
		Params: []ir.ParamBinding{{Bank: ir.BankF, Reg: 0}},
		Ins: []ir.Instr{
			{Op: ir.OpFConst, A: 1, Imm: 2},
			{Op: ir.OpFAdd, A: 2, B: 0, C: 1},
			{Op: ir.OpFConst, A: 1, Imm: 3},
			{Op: ir.OpFMul, A: 3, B: 2, C: 1},
			{Op: ir.OpBoxF, A: 0, B: 3},
			{Op: ir.OpRet},
		},
		OutRegs: []int32{0},
	}
	outs := run(t, p, mat.Scalar(5))
	if got := outs[0].MustScalar(); got != 21 {
		t.Fatalf("got %g", got)
	}
}

func TestLoopProgram(t *testing.T) {
	// sum 1..n with I registers and a fused branch
	p := &ir.Prog{
		Name: "sum",
		NumI: 4, NumV: 1,
		Params: []ir.ParamBinding{{Bank: ir.BankI, Reg: 0}},
		Ins: []ir.Instr{
			{Op: ir.OpIConst, A: 1, Imm: 0}, // acc
			{Op: ir.OpIConst, A: 2, Imm: 1}, // i
			{Op: ir.OpIConst, A: 3, Imm: 1}, // one
			// head: if n < i goto exit(7)
			{Op: ir.OpBrILt, A: 0, B: 2, C: 7},
			{Op: ir.OpIAdd, A: 1, B: 1, C: 2},
			{Op: ir.OpIAdd, A: 2, B: 2, C: 3},
			{Op: ir.OpJmp, A: 3},
			{Op: ir.OpBoxI, A: 0, B: 1},
			{Op: ir.OpRet},
		},
		OutRegs: []int32{0},
	}
	outs := run(t, p, mat.Scalar(100))
	if got := outs[0].MustScalar(); got != 5050 {
		t.Fatalf("got %g", got)
	}
}

func TestCheckedLoadErrors(t *testing.T) {
	mk := func(idx float64) *ir.Prog {
		return &ir.Prog{
			Name: "ld",
			NumF: 2, NumV: 2,
			Params: []ir.ParamBinding{{Bank: ir.BankV, Reg: 0}},
			Ins: []ir.Instr{
				{Op: ir.OpFConst, A: 0, Imm: idx},
				{Op: ir.OpFLd1, A: 1, B: 0, C: 0},
				{Op: ir.OpBoxF, A: 1, B: 1},
				{Op: ir.OpRet},
			},
			OutRegs: []int32{1},
		}
	}
	v := mat.FromSlice(1, 3, []float64{10, 20, 30})
	outs := run(t, mk(2), v)
	if outs[0].MustScalar() != 20 {
		t.Fatal("checked load value")
	}
	for _, bad := range []float64{0, 4, 1.5, -1} {
		if err := runErr(t, mk(bad), v); err == nil {
			t.Errorf("index %g must fail", bad)
		}
	}
}

func TestCheckedStoreGrows(t *testing.T) {
	p := &ir.Prog{
		Name: "st",
		NumF: 2, NumV: 1,
		Params: []ir.ParamBinding{{Bank: ir.BankV, Reg: 0}},
		Ins: []ir.Instr{
			{Op: ir.OpVEnsureOwn, A: 0},
			{Op: ir.OpFConst, A: 0, Imm: 5},
			{Op: ir.OpFConst, A: 1, Imm: 42},
			{Op: ir.OpFSt1, A: 0, B: 0, C: 1},
			{Op: ir.OpRet},
		},
		OutRegs: []int32{0},
	}
	v := mat.FromSlice(1, 2, []float64{1, 2})
	outs := run(t, p, v)
	got := outs[0]
	if got.Cols() != 5 || got.Re()[4] != 42 {
		t.Fatalf("grown store: %v", got)
	}
	// the caller's value must be untouched (copy-on-write via shared flag)
	if v.Cols() != 2 {
		t.Fatalf("caller's array was mutated: %v", v)
	}
}

func TestUnboxErrors(t *testing.T) {
	p := &ir.Prog{
		Name: "ub",
		NumF: 1, NumV: 2,
		Params: []ir.ParamBinding{{Bank: ir.BankV, Reg: 0}},
		Ins: []ir.Instr{
			{Op: ir.OpUnboxF, A: 0, B: 0},
			{Op: ir.OpBoxF, A: 1, B: 0},
			{Op: ir.OpRet},
		},
		OutRegs: []int32{1},
	}
	if err := runErr(t, p, mat.New(2, 2)); err == nil {
		t.Error("unboxing a matrix must fail")
	}
	if err := runErr(t, p, mat.ComplexScalar(1i)); err == nil {
		t.Error("unboxing a complex scalar as real must fail")
	}
	outs := run(t, p, mat.Scalar(7))
	if outs[0].MustScalar() != 7 {
		t.Error("unbox value")
	}
}

func TestParamTypeMismatch(t *testing.T) {
	p := &ir.Prog{
		Name: "pm",
		NumI: 1, NumV: 1,
		Params: []ir.ParamBinding{{Bank: ir.BankI, Reg: 0}},
		Ins: []ir.Instr{
			{Op: ir.OpBoxI, A: 0, B: 0},
			{Op: ir.OpRet},
		},
		OutRegs: []int32{0},
	}
	if err := runErr(t, p, mat.Scalar(1.5)); err == nil {
		t.Error("fractional argument to int parameter must fail")
	}
	if err := runErr(t, p, mat.New(2, 2)); err == nil {
		t.Error("matrix argument to int parameter must fail")
	}
	// arity mismatch
	p2 := &ir.Prog{Name: "a", Params: []ir.ParamBinding{{Bank: ir.BankV, Reg: 0}}, NumV: 1,
		Ins: []ir.Instr{{Op: ir.OpRet}}}
	if err := runErr(t, p2); err == nil {
		t.Error("wrong arity must fail")
	}
}

func TestUserCallDispatch(t *testing.T) {
	p := &ir.Prog{
		Name:   "uc",
		NumV:   3,
		Params: []ir.ParamBinding{{Bank: ir.BankV, Reg: 0}},
		Calls:  []string{"double_it"},
		Ins: []ir.Instr{
			{Op: ir.OpCallUser, A: 0},
			{Op: ir.OpRet},
		},
		OutRegs: []int32{1},
	}
	p.AddAux(0 /*fn*/, 1 /*nout*/, 1 /*dst*/, 1 /*nargs*/, 0 /*arg reg*/)
	p.Allocated = true
	c, err := Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	h := newTestHost()
	h.calls["double_it"] = func(args []*mat.Value, nout int) ([]*mat.Value, error) {
		return []*mat.Value{mat.Scalar(2 * args[0].MustScalar())}, nil
	}
	outs, err := Run(c, h, []*mat.Value{mat.Scalar(21)})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].MustScalar() != 42 {
		t.Fatalf("got %v", outs[0])
	}
}

func TestPrepareRejectsUnknownNames(t *testing.T) {
	p := &ir.Prog{Name: "x", Builtins: []string{"not_a_builtin_xyz"}, Ins: []ir.Instr{{Op: ir.OpRet}}}
	if _, err := Prepare(p); err == nil {
		t.Error("unknown builtin must fail at Prepare")
	}
	p2 := &ir.Prog{Name: "y", MathFns: []string{"nope"}, Ins: []ir.Instr{{Op: ir.OpRet}}}
	if _, err := Prepare(p2); err == nil {
		t.Error("unknown math function must fail at Prepare")
	}
}

func TestRuntimeErrorCarriesLocation(t *testing.T) {
	p := &ir.Prog{
		Name: "boom",
		NumF: 1, NumV: 1,
		Params: []ir.ParamBinding{{Bank: ir.BankV, Reg: 0}},
		Ins: []ir.Instr{
			{Op: ir.OpFConst, A: 0, Imm: 99},
			{Op: ir.OpFLd1, A: 0, B: 0, C: 0},
			{Op: ir.OpRet},
		},
		OutRegs: []int32{0},
	}
	err := runErr(t, p, mat.Scalar(1))
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "boom+1") {
		t.Errorf("error lacks pc info: %v", err)
	}
}
