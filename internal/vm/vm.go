// Package vm executes allocated IR programs on a register machine: the
// stand-in for the native code MaJIC emitted through the vcode dynamic
// assembler. Typed instructions operate on unboxed float64 / int64 /
// complex128 registers; generic instructions dispatch into the boxed
// runtime of internal/mat and internal/builtins, exactly as the paper's
// generated code calls into the MATLAB C library for unspecialized
// operations.
package vm

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/ast"
	"repro/internal/builtins"
	"repro/internal/cancel"
	"repro/internal/ir"
	"repro/internal/mat"
)

// Host provides the services compiled code needs from the engine:
// dispatching calls to user functions (through the code repository) and
// the shared builtin context.
type Host interface {
	CallFunction(name string, args []*mat.Value, nout int) ([]*mat.Value, error)
	Context() *builtins.Context
}

// colonMarker is the distinguished boxed value representing a ':'
// subscript in generic indexing instructions.
var colonMarker = mat.Empty()

// Compiled wraps a Prog with resolved builtin/math-function tables so
// repeated invocations skip name resolution.
//
// Concurrency audit (async compilation service): a *Compiled is
// immutable after Prepare returns — the instruction stream, resolved
// function tables, and the vpool constants (which Prepare marks shared,
// so compiled code copy-on-writes instead of mutating them) are never
// written again. A Compiled published to the repository by one
// goroutine is therefore safe to execute from any other; the
// repository's mutex provides the happens-before edge between Prepare
// and Run.
type Compiled struct {
	P        *ir.Prog
	mathFns  []func(float64) float64
	cmathFns []func(complex128) complex128
	builtins []*builtins.Builtin
	vpool    []*mat.Value
	// Fused-kernel tables, indexed like mathFns: the boxed builtin each
	// FuseMath micro-op falls back to, and whether it is sqrt (the one
	// math builtin whose real path promotes negatives to complex).
	fuseBs   []*builtins.Builtin
	fuseSqrt []bool
}

// Prepare resolves the program's name tables.
func Prepare(p *ir.Prog) (*Compiled, error) {
	c := &Compiled{P: p}
	for _, name := range p.MathFns {
		f, ok := scalarMathFn(name)
		if !ok {
			return nil, fmt.Errorf("vm: unknown math function %q", name)
		}
		c.mathFns = append(c.mathFns, f)
		c.cmathFns = append(c.cmathFns, cmathFn(name))
		c.fuseBs = append(c.fuseBs, builtins.Lookup(name))
		c.fuseSqrt = append(c.fuseSqrt, name == "sqrt")
	}
	for _, name := range p.Builtins {
		b := builtins.Lookup(name)
		if b == nil {
			return nil, fmt.Errorf("vm: unknown builtin %q", name)
		}
		c.builtins = append(c.builtins, b)
	}
	for _, vc := range p.VPoolStrs {
		if vc.IsColon {
			c.vpool = append(c.vpool, colonMarker)
		} else {
			v := mat.FromString(vc.Str)
			v.MarkShared()
			c.vpool = append(c.vpool, v)
		}
	}
	return c, nil
}

func scalarMathFn(name string) (func(float64) float64, bool) {
	if f, ok := builtins.ScalarMathFunc(name); ok {
		return f, true
	}
	return nil, false
}

func cmathFn(name string) func(complex128) complex128 {
	switch name {
	case "sqrt":
		return cmplx.Sqrt
	case "exp":
		return cmplx.Exp
	case "log":
		return cmplx.Log
	case "sin":
		return cmplx.Sin
	case "cos":
		return cmplx.Cos
	case "tan":
		return cmplx.Tan
	case "sinh":
		return cmplx.Sinh
	case "cosh":
		return cmplx.Cosh
	case "tanh":
		return cmplx.Tanh
	default:
		return nil
	}
}

// Error wraps a runtime failure with the program and pc.
type Error struct {
	Fn  string
	PC  int
	Err error
}

func (e *Error) Error() string { return fmt.Sprintf("%s+%d: %v", e.Fn, e.PC, e.Err) }
func (e *Error) Unwrap() error { return e.Err }

// Run executes the compiled function with the given boxed arguments.
//
// Run is re-entrant and safe for concurrent use with the same
// *Compiled: every register bank is allocated per call, argument
// values are marked shared on entry (so in-place mutation inside the
// callee copy-on-writes rather than racing with a concurrent caller
// passing the same value), and the only cross-call state reached is
// the Host — whose Context (RNG, output writer) and CallFunction
// (repository dispatch) are concurrency-safe in async mode. mat.Value
// results returned by Run are fresh or marked shared, so publishing
// them across goroutines is safe.
func Run(c *Compiled, host Host, args []*mat.Value) ([]*mat.Value, error) {
	p := c.P
	if len(args) != len(p.Params) {
		return nil, fmt.Errorf("vm: %s called with %d args, compiled for %d", p.Name, len(args), len(p.Params))
	}
	fr := make([]float64, p.NumF+p.SlotsF)
	ir2 := make([]int64, p.NumI+p.SlotsI)
	cr := make([]complex128, p.NumC+p.SlotsC)
	vr := make([]*mat.Value, p.NumV+p.SlotsV)
	F := fr[:p.NumF]
	I := ir2[:p.NumI]
	C := cr[:p.NumC]
	V := vr[:p.NumV]
	SF := fr[p.NumF:]
	SI := ir2[p.NumI:]
	SC := cr[p.NumC:]
	SV := vr[p.NumV:]
	if p.NumF == 0 {
		F = nil
	}

	ctx := host.Context()

	for i, b := range p.Params {
		a := args[i]
		switch b.Bank {
		case ir.BankV:
			a.MarkShared()
			V[b.Reg] = a
		case ir.BankF:
			x, err := unboxF(a)
			if err != nil {
				return nil, fmt.Errorf("vm: %s parameter %d: %v", p.Name, i+1, err)
			}
			if b.Slot {
				SF[b.Reg] = x
			} else {
				F[b.Reg] = x
			}
		case ir.BankI:
			x, err := unboxF(a)
			if err != nil || x != math.Trunc(x) {
				return nil, fmt.Errorf("vm: %s parameter %d: expected integer scalar", p.Name, i+1)
			}
			if b.Slot {
				SI[b.Reg] = int64(x)
			} else {
				I[b.Reg] = int64(x)
			}
		case ir.BankC:
			if !a.IsScalar() {
				return nil, fmt.Errorf("vm: %s parameter %d: expected scalar", p.Name, i+1)
			}
			if b.Slot {
				SC[b.Reg] = a.ComplexAt(0)
			} else {
				C[b.Reg] = a.ComplexAt(0)
			}
		}
	}

	// The host's cancel flag (nil when it has none) is polled at
	// backward jumps. Every loop the code generator emits closes with a
	// backward OpJmp to its header, so this single site is a complete
	// set of back-edge safepoints: a raised flag aborts `while 1; end`
	// within one iteration, and forward control flow pays nothing.
	var cflag *cancel.Flag
	if c, ok := host.(cancel.Checker); ok {
		cflag = c.CancelFlag()
	}

	ins := p.Ins
	pc := 0
	var err error
	var fuseSlots [ir.MaxFuseOperands]float64
	for {
		in := &ins[pc]
		switch in.Op {
		case ir.OpNop:
		case ir.OpJmp:
			if t := int(in.A); t <= pc {
				if cflag != nil && cflag.Raised() {
					err = cancel.ErrInterrupted
					goto fail
				}
				pc = t
			} else {
				pc = t
			}
			continue
		case ir.OpRet:
			outs := make([]*mat.Value, len(p.OutRegs))
			for i, reg := range p.OutRegs {
				v := V[reg]
				if v == nil {
					v = mat.Empty()
				}
				v.MarkShared()
				outs[i] = v
			}
			return outs, nil

		case ir.OpBrTrueF:
			if F[in.A] != 0 {
				pc = int(in.C)
				continue
			}
		case ir.OpBrFalseF:
			if F[in.A] == 0 {
				pc = int(in.C)
				continue
			}
		case ir.OpBrFalseV:
			if V[in.A] == nil || !V[in.A].IsTrue() {
				pc = int(in.C)
				continue
			}
		case ir.OpBrTrueV:
			if V[in.A] != nil && V[in.A].IsTrue() {
				pc = int(in.C)
				continue
			}
		case ir.OpBrFLt:
			if F[in.A] < F[in.B] {
				pc = int(in.C)
				continue
			}
		case ir.OpBrFLe:
			if F[in.A] <= F[in.B] {
				pc = int(in.C)
				continue
			}
		case ir.OpBrFEq:
			if F[in.A] == F[in.B] {
				pc = int(in.C)
				continue
			}
		case ir.OpBrFNe:
			if F[in.A] != F[in.B] {
				pc = int(in.C)
				continue
			}
		case ir.OpBrFNLt:
			if !(F[in.A] < F[in.B]) {
				pc = int(in.C)
				continue
			}
		case ir.OpBrFNLe:
			if !(F[in.A] <= F[in.B]) {
				pc = int(in.C)
				continue
			}
		case ir.OpBrILt:
			if I[in.A] < I[in.B] {
				pc = int(in.C)
				continue
			}
		case ir.OpBrILe:
			if I[in.A] <= I[in.B] {
				pc = int(in.C)
				continue
			}
		case ir.OpBrIEq:
			if I[in.A] == I[in.B] {
				pc = int(in.C)
				continue
			}
		case ir.OpBrINe:
			if I[in.A] != I[in.B] {
				pc = int(in.C)
				continue
			}

		case ir.OpFMov:
			F[in.A] = F[in.B]
		case ir.OpIMov:
			I[in.A] = I[in.B]
		case ir.OpCMov:
			C[in.A] = C[in.B]
		case ir.OpVMov:
			V[in.A] = V[in.B]
		case ir.OpVMovSwap:
			V[in.A], V[in.B] = V[in.B], V[in.A]
		case ir.OpVClone:
			if V[in.B] == nil {
				V[in.A] = mat.Empty()
			} else {
				V[in.A] = V[in.B].Clone()
			}
		case ir.OpFConst:
			F[in.A] = in.Imm
		case ir.OpIConst:
			I[in.A] = int64(in.Imm)
		case ir.OpCConst:
			C[in.A] = p.CPool[in.B]

		case ir.OpItoF:
			F[in.A] = float64(I[in.B])
		case ir.OpFtoI:
			I[in.A] = int64(F[in.B])
		case ir.OpFtoC:
			C[in.A] = complex(F[in.B], 0)
		case ir.OpItoC:
			C[in.A] = complex(float64(I[in.B]), 0)
		case ir.OpBoxF:
			V[in.A] = mat.Scalar(F[in.B])
		case ir.OpBoxI:
			V[in.A] = mat.IntScalar(float64(I[in.B]))
		case ir.OpBoxC:
			V[in.A] = mat.ComplexScalar(C[in.B]).Demote()
		case ir.OpUnboxF:
			x, e := unboxF(V[in.B])
			if e != nil {
				err = e
				goto fail
			}
			F[in.A] = x
		case ir.OpUnboxI:
			x, e := unboxF(V[in.B])
			if e != nil {
				err = e
				goto fail
			}
			if x != math.Trunc(x) {
				err = fmt.Errorf("expected an integer value, got %g", x)
				goto fail
			}
			I[in.A] = int64(x)
		case ir.OpUnboxC:
			v := V[in.B]
			if v == nil || !v.IsScalar() {
				err = fmt.Errorf("expected a scalar")
				goto fail
			}
			C[in.A] = v.ComplexAt(0)

		case ir.OpFAdd:
			F[in.A] = F[in.B] + F[in.C]
		case ir.OpFSub:
			F[in.A] = F[in.B] - F[in.C]
		case ir.OpFMul:
			F[in.A] = F[in.B] * F[in.C]
		case ir.OpFDiv:
			F[in.A] = F[in.B] / F[in.C]
		case ir.OpFNeg:
			F[in.A] = -F[in.B]
		case ir.OpFPow:
			F[in.A] = math.Pow(F[in.B], F[in.C])
		case ir.OpFMod:
			F[in.A] = builtins.Mod(F[in.B], F[in.C])
		case ir.OpFRem:
			F[in.A] = builtins.Rem(F[in.B], F[in.C])
		case ir.OpFMath:
			F[in.A] = c.mathFns[in.C](F[in.B])
		case ir.OpFAnd:
			F[in.A] = b2f(F[in.B] != 0 && F[in.C] != 0)
		case ir.OpFOr:
			F[in.A] = b2f(F[in.B] != 0 || F[in.C] != 0)
		case ir.OpFNot:
			F[in.A] = b2f(F[in.B] == 0)

		case ir.OpFCmpEq:
			F[in.A] = b2f(F[in.B] == F[in.C])
		case ir.OpFCmpNe:
			F[in.A] = b2f(F[in.B] != F[in.C])
		case ir.OpFCmpLt:
			F[in.A] = b2f(F[in.B] < F[in.C])
		case ir.OpFCmpLe:
			F[in.A] = b2f(F[in.B] <= F[in.C])

		case ir.OpIAdd:
			I[in.A] = I[in.B] + I[in.C]
		case ir.OpISub:
			I[in.A] = I[in.B] - I[in.C]
		case ir.OpIMul:
			I[in.A] = I[in.B] * I[in.C]
		case ir.OpINeg:
			I[in.A] = -I[in.B]
		case ir.OpIMod:
			I[in.A] = imod(I[in.B], I[in.C])
		case ir.OpICmpEq:
			F[in.A] = b2f(I[in.B] == I[in.C])
		case ir.OpICmpNe:
			F[in.A] = b2f(I[in.B] != I[in.C])
		case ir.OpICmpLt:
			F[in.A] = b2f(I[in.B] < I[in.C])
		case ir.OpICmpLe:
			F[in.A] = b2f(I[in.B] <= I[in.C])

		case ir.OpCAdd:
			C[in.A] = C[in.B] + C[in.C]
		case ir.OpCSub:
			C[in.A] = C[in.B] - C[in.C]
		case ir.OpCMul:
			C[in.A] = C[in.B] * C[in.C]
		case ir.OpCDiv:
			C[in.A] = C[in.B] / C[in.C]
		case ir.OpCNeg:
			C[in.A] = -C[in.B]
		case ir.OpCPow:
			C[in.A] = cmplx.Pow(C[in.B], C[in.C])
		case ir.OpCAbs:
			F[in.A] = cmplx.Abs(C[in.B])
		case ir.OpCMath:
			f := c.cmathFns[in.C]
			if f == nil {
				err = fmt.Errorf("complex math function not supported")
				goto fail
			}
			C[in.A] = f(C[in.B])
		case ir.OpCCmpEq:
			F[in.A] = b2f(C[in.B] == C[in.C])
		case ir.OpCCmpNe:
			F[in.A] = b2f(C[in.B] != C[in.C])
		case ir.OpCReal:
			F[in.A] = real(C[in.B])
		case ir.OpCImag:
			F[in.A] = imag(C[in.B])
		case ir.OpCConj:
			C[in.A] = cmplx.Conj(C[in.B])

		case ir.OpFLd1:
			x, e := V[in.B].CheckedGet1(F[in.C])
			if e != nil {
				err = e
				goto fail
			}
			F[in.A] = x
		case ir.OpFLd1U:
			F[in.A] = V[in.B].FastGet1(int(I[in.C]) - 1)
		case ir.OpFLd2:
			x, e := V[in.B].CheckedGet2(F[in.C], F[in.D])
			if e != nil {
				err = e
				goto fail
			}
			F[in.A] = x
		case ir.OpFLd2U:
			F[in.A] = V[in.B].FastGet2(int(I[in.C])-1, int(I[in.D])-1)
		case ir.OpFSt1:
			if e := V[in.A].CheckedSet1(F[in.B], F[in.C]); e != nil {
				err = e
				goto fail
			}
		case ir.OpFSt1U:
			V[in.A].FastSet1(int(I[in.B])-1, F[in.C])
		case ir.OpFSt2:
			if e := V[in.A].CheckedSet2(F[in.B], F[in.C], F[in.D]); e != nil {
				err = e
				goto fail
			}
		case ir.OpFSt2U:
			V[in.A].FastSet2(int(I[in.B])-1, int(I[in.C])-1, F[in.D])

		case ir.OpVNewZeros:
			v := mat.New(int(I[in.B]), int(I[in.C]))
			if in.Imm != 0 {
				re := v.Re()
				for i := range re {
					re[i] = in.Imm
				}
			}
			V[in.A] = v
		case ir.OpVEnsure:
			v := V[in.A]
			r, cc := int(I[in.B]), int(I[in.C])
			if v == nil || v.IsShared() || v.IsSparse() || v.Rows() != r || v.Cols() != cc || v.Kind() != mat.Real {
				V[in.A] = mat.New(r, cc)
			}
		case ir.OpVEnsureOwn:
			v := V[in.A]
			if v == nil {
				V[in.A] = mat.Empty()
			} else if v.IsShared() {
				V[in.A] = v.Clone()
			}
		case ir.OpVRows:
			I[in.A] = int64(vOrEmpty(V[in.B]).Rows())
		case ir.OpVCols:
			I[in.A] = int64(vOrEmpty(V[in.B]).Cols())
		case ir.OpVNumel:
			I[in.A] = int64(vOrEmpty(V[in.B]).Numel())
		case ir.OpVMarkShared:
			if V[in.A] != nil {
				V[in.A].MarkShared()
			}
		case ir.OpVConst:
			V[in.A] = c.vpool[in.B]

		case ir.OpGBin:
			v, e := builtins.EvalBinOp(ast.BinOp(in.D), vOrErr(V[in.B], &err), vOrErr(V[in.C], &err))
			if err != nil {
				goto fail
			}
			if e != nil {
				err = e
				goto fail
			}
			V[in.A] = v
		case ir.OpGUn:
			v, e := evalUnOp(in.D, vOrErr(V[in.B], &err))
			if err != nil {
				goto fail
			}
			if e != nil {
				err = e
				goto fail
			}
			V[in.A] = v
		case ir.OpGIndex:
			v, e := genericIndex(vOrErr(V[in.B], &err), p.Aux, int(in.C), V)
			if err != nil {
				goto fail
			}
			if e != nil {
				err = e
				goto fail
			}
			V[in.A] = v
		case ir.OpGAssign:
			base := V[in.A]
			if base == nil {
				base = mat.Empty()
			} else if base.IsShared() {
				base = base.Clone()
			}
			if e := genericAssign(base, p.Aux, int(in.C), V, vOrErr(V[in.D], &err)); e != nil {
				err = e
				goto fail
			}
			if err != nil {
				goto fail
			}
			V[in.A] = base
		case ir.OpGColon:
			v, e := mat.Colon(vOrErr(V[in.B], &err), vOrErr(V[in.C], &err), vOrErr(V[in.D], &err))
			if err != nil {
				goto fail
			}
			if e != nil {
				err = e
				goto fail
			}
			V[in.A] = v
		case ir.OpGCat:
			v, e := genericCat(p.Aux, int(in.B), V)
			if e != nil {
				err = e
				goto fail
			}
			V[in.A] = v
		case ir.OpGBuiltin:
			if e := genericBuiltin(c, ctx, p.Aux, int(in.A), V); e != nil {
				err = e
				goto fail
			}
		case ir.OpCallUser:
			if e := userCall(p, host, p.Aux, int(in.A), V); e != nil {
				err = e
				goto fail
			}
		case ir.OpGEMV:
			if e := gemv(p.Aux, int(in.B), in.Imm, int(in.A), V); e != nil {
				err = e
				goto fail
			}
		case ir.OpVFuseArgF:
			fuseSlots[in.A] = F[in.B]
		case ir.OpVFused:
			if e := fusedExec(c, ctx, p.Aux, int(in.B), int(in.A), V, &fuseSlots); e != nil {
				err = e
				goto fail
			}

		case ir.OpFLdSlot:
			F[in.A] = SF[in.B]
		case ir.OpFStSlot:
			SF[in.A] = F[in.B]
		case ir.OpILdSlot:
			I[in.A] = SI[in.B]
		case ir.OpIStSlot:
			SI[in.A] = I[in.B]
		case ir.OpCLdSlot:
			C[in.A] = SC[in.B]
		case ir.OpCStSlot:
			SC[in.A] = C[in.B]
		case ir.OpVLdSlot:
			V[in.A] = SV[in.B]
		case ir.OpVStSlot:
			SV[in.A] = V[in.B]

		default:
			err = fmt.Errorf("unimplemented opcode %v", in.Op)
			goto fail
		}
		pc++
		continue
	fail:
		return nil, &Error{Fn: p.Name, PC: pc, Err: err}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func imod(x, y int64) int64 {
	if y == 0 {
		return x
	}
	r := x % y
	if r != 0 && (r < 0) != (y < 0) {
		r += y
	}
	return r
}

func vOrEmpty(v *mat.Value) *mat.Value {
	if v == nil {
		return mat.Empty()
	}
	return v
}

func vOrErr(v *mat.Value, err *error) *mat.Value {
	if v == nil && *err == nil {
		*err = fmt.Errorf("use of undefined value")
	}
	return v
}

func unboxF(v *mat.Value) (float64, error) {
	if v == nil {
		return 0, fmt.Errorf("use of undefined value")
	}
	if !v.IsScalar() {
		return 0, fmt.Errorf("expected a scalar, got %dx%d", v.Rows(), v.Cols())
	}
	if v.IsSparse() {
		return v.At(0, 0), nil
	}
	if v.Kind() == mat.Complex && v.Im()[0] != 0 {
		return 0, fmt.Errorf("expected a real value")
	}
	return v.Re()[0], nil
}
