package vm

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/mat"
)

// gemvProg builds dst = alpha*A*x + beta*y through OpGEMV.
func gemvProg(alpha float64, betaCode int32, withY bool) *ir.Prog {
	p := &ir.Prog{
		Name: "g",
		NumV: 4,
		Params: []ir.ParamBinding{
			{Bank: ir.BankV, Reg: 0},
			{Bank: ir.BankV, Reg: 1},
			{Bank: ir.BankV, Reg: 2},
		},
	}
	yReg := int32(2)
	if !withY {
		yReg = -1
	}
	aux := p.AddAux(0, 1, yReg, betaCode)
	p.Ins = []ir.Instr{
		{Op: ir.OpGEMV, A: 3, B: aux, Imm: alpha},
		{Op: ir.OpRet},
	}
	p.OutRegs = []int32{3}
	return p
}

func TestGEMVFastPath(t *testing.T) {
	a := mat.FromSlice(2, 2, []float64{1, 2, 3, 4})
	x := mat.FromSlice(2, 1, []float64{1, 1})
	y := mat.FromSlice(2, 1, []float64{10, 20})
	// dst = -1*A*x + 1*y = y - A*x; A*x = [3; 7]
	outs := run(t, gemvProg(-1, 1, true), a, x, y)
	if outs[0].Re()[0] != 7 || outs[0].Re()[1] != 13 {
		t.Fatalf("y - A*x = %v", outs[0])
	}
	// beta = 0 form
	outs = run(t, gemvProg(1, 0, false), a, x, y)
	if outs[0].Re()[0] != 3 || outs[0].Re()[1] != 7 {
		t.Fatalf("A*x = %v", outs[0])
	}
}

func TestGEMVSemanticFallback(t *testing.T) {
	// complex operands force the non-BLAS path; results must still be
	// exact
	a := mat.NewKind(mat.Complex, 2, 2)
	copy(a.Re(), []float64{1, 2, 3, 4})
	a.Im()[0] = 1 // A(1,1) = 1+1i
	x := mat.FromSlice(2, 1, []float64{1, 1})
	y := mat.FromSlice(2, 1, []float64{10, 20})
	outs := run(t, gemvProg(1, 1, true), a, x, y)
	got := outs[0]
	if got.Kind() != mat.Complex {
		t.Fatalf("fallback lost complex kind: %v", got)
	}
	// A*x = [(1+1i)+3; 2+4] = [4+1i; 6]; +y → [14+1i; 26]
	if got.ComplexAt(0) != 14+1i || got.ComplexAt(1) != 26 {
		t.Fatalf("fallback result %v", got)
	}
	// shape-mismatched y also falls back... to an error from Add
	badY := mat.FromSlice(3, 1, []float64{1, 2, 3})
	if err := runErr(t, gemvProg(1, 1, true), a, x, badY); err == nil {
		t.Fatal("mismatched y must error")
	}
}

func TestGColonAndGCat(t *testing.T) {
	p := &ir.Prog{
		Name: "c",
		NumF: 3,
		NumV: 6,
	}
	// v = 1:3; m = [v; v*0-1 rows]: build [1 2 3] then cat two rows
	catAux := p.AddAux(2 /*rows*/, 1, 4 /*row1: reg4*/, 1, 4 /*row2: reg4*/)
	p.Ins = []ir.Instr{
		{Op: ir.OpFConst, A: 0, Imm: 1},
		{Op: ir.OpFConst, A: 1, Imm: 1},
		{Op: ir.OpFConst, A: 2, Imm: 3},
		{Op: ir.OpBoxF, A: 0, B: 0},
		{Op: ir.OpBoxF, A: 1, B: 1},
		{Op: ir.OpBoxF, A: 2, B: 2},
		{Op: ir.OpGColon, A: 4, B: 0, C: 1, D: 2}, // V4 = 1:1:3
		{Op: ir.OpGCat, A: 5, B: catAux},          // V5 = [V4; V4]
		{Op: ir.OpRet},
	}
	p.OutRegs = []int32{5}
	outs := run(t, p)
	m := outs[0]
	if m.Rows() != 2 || m.Cols() != 3 || m.At(1, 2) != 3 {
		t.Fatalf("cat result %v (%dx%d)", m, m.Rows(), m.Cols())
	}
}

func TestGIndexColonMarker(t *testing.T) {
	p := &ir.Prog{
		Name:   "ix",
		NumI:   1,
		NumV:   4,
		Params: []ir.ParamBinding{{Bank: ir.BankV, Reg: 0}},
		VPoolStrs: []ir.VConstDesc{
			{IsColon: true},
		},
	}
	aux := p.AddAux(2, 1, 2) // args: V1 (colon), V2 (boxed column index)
	p.Ins = []ir.Instr{
		{Op: ir.OpVConst, A: 1, B: 0},
		{Op: ir.OpIConst, A: 0, Imm: 2},
		{Op: ir.OpBoxI, A: 2, B: 0},
		{Op: ir.OpGIndex, A: 3, B: 0, C: aux}, // V3 = A(:, 2)
		{Op: ir.OpRet},
	}
	p.OutRegs = []int32{3}
	a := mat.FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	outs := run(t, p, a)
	col := outs[0]
	if col.Rows() != 2 || col.Re()[0] != 2 || col.Re()[1] != 5 {
		t.Fatalf("A(:,2) = %v", col)
	}
}

func TestGAssignCopyOnWrite(t *testing.T) {
	p := &ir.Prog{
		Name:   "as",
		NumI:   1,
		NumV:   3,
		Params: []ir.ParamBinding{{Bank: ir.BankV, Reg: 0}},
	}
	aux := p.AddAux(1, 1) // one subscript in V1
	p.Ins = []ir.Instr{
		{Op: ir.OpIConst, A: 0, Imm: 1},
		{Op: ir.OpBoxI, A: 1, B: 0},
		{Op: ir.OpBoxI, A: 2, B: 0},            // rhs = 1
		{Op: ir.OpGAssign, A: 0, C: aux, D: 2}, // A(1) = 1
		{Op: ir.OpRet},
	}
	p.OutRegs = []int32{0}
	caller := mat.FromSlice(1, 3, []float64{7, 8, 9})
	outs := run(t, p, caller)
	if outs[0].Re()[0] != 1 {
		t.Fatalf("assignment lost: %v", outs[0])
	}
	if caller.Re()[0] != 7 {
		t.Fatalf("caller's array mutated through GAssign: %v", caller)
	}
}
