// Package repo implements MaJIC's code repository (paper §2): a
// database of compiled code keyed by type signatures. The function
// locator retrieves, for a given invocation, a semantically safe entry
// (every actual type a subtype of the assumed type) that is optimal
// performance-wise, ranking safe candidates by a Manhattan-like
// distance between signatures. Misses trigger JIT compilation; the
// repository also hosts speculatively compiled entries and re-compiled
// (better-optimized) replacements.
//
// Concurrency contract: the repository is safe for concurrent use. An
// *Entry is immutable once published except for its hit counter, which
// is maintained atomically, so entries handed out by Lookup/Entries can
// be read (and their code executed) from any goroutine. Upgrades never
// mutate a published entry's code in place — they swap in a replacement
// entry via Replace. Each function name carries a generation counter,
// bumped by Invalidate; asynchronous compile jobs capture the
// generation at enqueue time and publish through InsertAt, which drops
// the result if the generation moved (a stale job must not resurrect
// code for a source file that changed while it was compiling).
package repo

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
	"repro/internal/types"
	"repro/internal/vm"
)

// Quality grades how optimized an entry is; the locator prefers closer
// signatures first and higher quality second, and the engine may
// replace an entry with a higher-quality recompilation.
type Quality uint8

const (
	// QualityInterp marks a "compiled" entry that actually falls back
	// to interpretation (unsupported constructs).
	QualityInterp Quality = iota
	// QualityJIT is fast naive code from the JIT code generator.
	QualityJIT
	// QualityOpt is backend-optimized code (the speculative/batch path).
	QualityOpt
)

func (q Quality) String() string {
	return [...]string{"interp", "jit", "opt"}[q]
}

// Entry is one compiled version of a function. Sig, Code, Quality and
// Speculative are immutable after the entry is published to a
// repository; the hit counter is atomic.
type Entry struct {
	Sig     types.Signature
	Code    *vm.Compiled // nil for QualityInterp
	Quality Quality
	// Speculative marks entries produced ahead of time by the
	// speculator (for the harness's hit/miss statistics).
	Speculative bool
	// Replicated marks entries applied from a cluster peer rather than
	// compiled locally. A local compile publishing the same exact
	// signature replaces a replicated entry in place (local code wins),
	// so replication racing a local JIT keeps exactly one winner.
	Replicated bool
	hits       int64 // atomic
}

// Hits returns the number of Lookup hits this entry has served.
func (e *Entry) Hits() int64 { return atomic.LoadInt64(&e.hits) }

func (e *Entry) addHit() { atomic.AddInt64(&e.hits, 1) }

// Stats counts repository traffic.
type Stats struct {
	Lookups      int `json:"lookups"`
	Hits         int `json:"hits"`
	Misses       int `json:"misses"`
	Inserts      int `json:"inserts"`
	SpecHits     int `json:"spec_hits"` // hits on speculative entries
	Invalidation int `json:"invalidations"`
	StaleDrops   int `json:"stale_drops"` // async publishes dropped by a generation mismatch
	Evictions    int `json:"evictions"`   // entries evicted by the per-function cap
	Replaces     int `json:"replaces"`    // upgrade swaps (tier-ups and hot recompiles)
	Loaded       int `json:"loaded"`      // entries restored from a warm-start snapshot (not Inserts)
	// Replicated counts entries applied from cluster peers — code this
	// node serves but never compiled, distinct from both Inserts (local
	// compiles) and Loaded (warm-start restores). ReplicatedDrops counts
	// replicated applies discarded by the duplicate or generation guard.
	Replicated      int `json:"replicated"`
	ReplicatedDrops int `json:"replicated_drops"`
	Functions       int `json:"functions"` // functions with at least one live entry (snapshot)
	Entries         int `json:"entries"`   // live compiled entries across all functions (snapshot)
}

// Repository is the signature-keyed code database.
type Repository struct {
	mu    sync.Mutex
	funcs map[string][]*Entry
	gens  map[string]uint64
	stats Stats
	// maxPerFunc caps the live entries per function name; 0 means
	// unbounded (the single-session default). A long-lived daemon sets
	// a cap so pathological signature churn (one compiled version per
	// distinct constant argument, before widening kicks in) cannot grow
	// the repository without bound.
	maxPerFunc int
	// onChange callbacks are invoked (outside the repository lock) after
	// every mutation that changes what a snapshot of the repository
	// would contain: inserts, replaces, and invalidations. The
	// persistence layer hooks its write-behind snapshotter here; the
	// cluster replicator hooks its push loop.
	onChange []func()
	// journal, when set, receives one eviction event per capacity
	// eviction (nil-safe; evictions are already a slow path).
	journal *telemetry.Journal
}

// New returns an empty, unbounded repository.
func New() *Repository {
	return &Repository{funcs: map[string][]*Entry{}, gens: map[string]uint64{}}
}

// NewBounded returns a repository that keeps at most maxPerFunc entries
// per function, evicting the least-hit (oldest on ties) entry when an
// insert would exceed the cap. maxPerFunc <= 0 means unbounded.
func NewBounded(maxPerFunc int) *Repository {
	r := New()
	r.maxPerFunc = maxPerFunc
	return r
}

// MaxEntriesPerFunction returns the per-function entry cap (0 =
// unbounded).
func (r *Repository) MaxEntriesPerFunction() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.maxPerFunc
}

// Lookup returns the best safe entry for an invocation signature, or
// nil. Best = minimal Manhattan distance, ties broken by quality.
func (r *Repository) Lookup(name string, q types.Signature) *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Lookups++
	var best *Entry
	bestDist := 0
	for _, e := range r.funcs[name] {
		if !e.Sig.Safe(q) {
			continue
		}
		d := e.Sig.Distance(q)
		if best == nil || d < bestDist || (d == bestDist && e.Quality > best.Quality) {
			best, bestDist = e, d
		}
	}
	if best != nil {
		r.stats.Hits++
		best.addHit()
		if best.Speculative {
			r.stats.SpecHits++
		}
	} else {
		r.stats.Misses++
	}
	return best
}

// Covered reports whether some entry already safely serves signature q
// (without touching the lookup statistics). Asynchronous compile jobs
// use it to skip publishing a duplicate when an equivalent entry landed
// between the miss and the job's execution.
func (r *Repository) Covered(name string, q types.Signature) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.funcs[name] {
		if e.Sig.Safe(q) {
			return true
		}
	}
	return false
}

// Entries returns the compiled versions of a function (for majicc -dump
// and tests).
func (r *Repository) Entries(name string) []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Entry(nil), r.funcs[name]...)
}

// SetOnChange registers the snapshot-dirtying callback, invoked after
// every insert, replace, and invalidation (outside the repository
// lock, so the callback may call Entries/Stats/FunctionNames),
// replacing any callbacks registered so far. Set it before the
// repository sees concurrent traffic — the warm-start sequence
// installs it right after loading, before the daemon listens.
func (r *Repository) SetOnChange(fn func()) {
	r.mu.Lock()
	r.onChange = []func(){fn}
	r.mu.Unlock()
}

// AddOnChange appends a mutation callback without displacing the ones
// already registered — the persistence snapshotter and the cluster
// replicator both observe the same repository this way. Like
// SetOnChange, register before concurrent traffic starts.
func (r *Repository) AddOnChange(fn func()) {
	r.mu.Lock()
	r.onChange = append(r.onChange, fn)
	r.mu.Unlock()
}

// notify runs the registered onChange callbacks; call it only outside
// the repository lock, with the slice captured under it.
func notify(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}

// SetJournal attaches the tiering event journal; capacity evictions are
// recorded with the victim's signature and hit count. Set it before the
// repository sees concurrent traffic, like SetOnChange.
func (r *Repository) SetJournal(j *telemetry.Journal) {
	r.mu.Lock()
	r.journal = j
	r.mu.Unlock()
}

// FunctionNames returns every function name with at least one live
// entry (snapshot export order is the caller's concern).
func (r *Repository) FunctionNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.funcs))
	for name := range r.funcs {
		out = append(out, name)
	}
	return out
}

// Generation returns the current generation of a function name. The
// counter advances on every Invalidate; an asynchronous compile job
// captures it before compiling and passes it back to InsertAt.
func (r *Repository) Generation(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gens[name]
}

// Insert adds an entry at the current generation.
func (r *Repository) Insert(name string, e *Entry) {
	r.mu.Lock()
	r.insertLocked(name, e)
	onChange := r.onChange
	r.mu.Unlock()
	notify(onChange)
}

// InsertAt adds an entry if the function's generation still equals gen.
// It returns false — and drops the entry — when an Invalidate happened
// after the compile job was enqueued, so stale code never resurrects.
func (r *Repository) InsertAt(name string, e *Entry, gen uint64) bool {
	r.mu.Lock()
	if r.gens[name] != gen {
		r.stats.StaleDrops++
		r.mu.Unlock()
		return false
	}
	r.insertLocked(name, e)
	onChange := r.onChange
	r.mu.Unlock()
	notify(onChange)
	return true
}

// Restored builds an entry recovered from a warm-start snapshot,
// carrying the persisted hit count over so least-hit eviction keeps
// ranking the working set correctly across restarts.
func Restored(sig types.Signature, code *vm.Compiled, q Quality, speculative bool, hits int64) *Entry {
	return &Entry{Sig: sig, Code: code, Quality: q, Speculative: speculative, hits: hits}
}

// InsertLoaded publishes a warm-start entry. It counts under
// stats.Loaded instead of stats.Inserts, so "inserts" keeps meaning
// "compiles published this lifetime" — the warm-start CI gate asserts
// a snapshot replay performs zero of those. Loading happens before the
// write-behind snapshotter attaches, so no onChange fires (a loaded
// entry is by definition already in the snapshot).
func (r *Repository) InsertLoaded(name string, e *Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Loaded++
	r.funcs[name] = append(r.funcs[name], e)
	if r.maxPerFunc > 0 && len(r.funcs[name]) > r.maxPerFunc {
		r.evictLocked(name, e)
	}
}

func (r *Repository) insertLocked(name string, e *Entry) {
	r.stats.Inserts++
	// A local compile for a signature already served by a replicated
	// entry replaces it in place instead of appending a duplicate: the
	// locally compiled code wins (it is at least as fresh), and exactly
	// one entry per exact signature survives the replication-vs-JIT
	// race in either arrival order.
	for i, old := range r.funcs[name] {
		if old.Replicated && old.Sig.Key() == e.Sig.Key() {
			atomic.StoreInt64(&e.hits, old.Hits())
			r.funcs[name][i] = e
			return
		}
	}
	r.funcs[name] = append(r.funcs[name], e)
	if r.maxPerFunc > 0 && len(r.funcs[name]) > r.maxPerFunc {
		r.evictLocked(name, e)
	}
}

// InsertReplicated publishes an entry received from a cluster peer, at
// generation gen (captured when the record's source text was validated
// against the live registration). It returns false — counting a
// ReplicatedDrop — when the generation moved (a local redefinition
// landed meanwhile; replicated code must not resurrect it) or when an
// entry with the identical exact signature already exists at equal or
// better quality (the local JIT or an earlier replica won the race). A
// strictly better-quality replica upgrades the duplicate in place.
// Applied entries count under stats.Replicated, never Inserts or
// Loaded, and are journaled under telemetry.EventReplication.
func (r *Repository) InsertReplicated(name string, e *Entry, gen uint64, origin string) bool {
	e.Replicated = true
	r.mu.Lock()
	if r.gens[name] != gen {
		r.stats.ReplicatedDrops++
		r.mu.Unlock()
		return false
	}
	for i, old := range r.funcs[name] {
		if old.Sig.Key() != e.Sig.Key() {
			continue
		}
		if e.Quality <= old.Quality {
			r.stats.ReplicatedDrops++
			r.mu.Unlock()
			return false
		}
		atomic.StoreInt64(&e.hits, old.Hits())
		r.funcs[name][i] = e
		r.replicatedLocked(name, e, origin)
		onChange := r.onChange
		r.mu.Unlock()
		notify(onChange)
		return true
	}
	r.funcs[name] = append(r.funcs[name], e)
	if r.maxPerFunc > 0 && len(r.funcs[name]) > r.maxPerFunc {
		r.evictLocked(name, e)
	}
	r.replicatedLocked(name, e, origin)
	onChange := r.onChange
	r.mu.Unlock()
	notify(onChange)
	return true
}

func (r *Repository) replicatedLocked(name string, e *Entry, origin string) {
	r.stats.Replicated++
	r.journal.Record(telemetry.Event{
		Kind:   telemetry.EventReplication,
		Func:   name,
		Sig:    e.Sig.Key(),
		Cause:  "peer-apply",
		Gen:    r.gens[name],
		Detail: fmt.Sprintf("origin=%s quality=%s", origin, e.Quality),
	})
}

// evictLocked drops the least-hit entry for name, sparing the
// just-inserted entry keep — a fresh entry always has zero hits, so
// without the exemption every insert at the cap would evict itself and
// the repository could never turn over its working set. At equal hit
// counts, lower-quality entries go first (an interpret-only marker is
// just a cached decision; compiled code cost a JIT or optimizing
// compile), and the oldest entry wins a full tie.
func (r *Repository) evictLocked(name string, keep *Entry) {
	entries := r.funcs[name]
	victim := -1
	var victimHits int64
	for i, e := range entries {
		if e == keep {
			continue
		}
		h := e.Hits()
		if victim == -1 || h < victimHits ||
			(h == victimHits && e.Quality < entries[victim].Quality) {
			victim, victimHits = i, h
		}
	}
	if victim == -1 {
		return
	}
	v := entries[victim]
	r.funcs[name] = append(entries[:victim], entries[victim+1:]...)
	r.stats.Evictions++
	r.journal.Record(telemetry.Event{
		Kind:   telemetry.EventEviction,
		Func:   name,
		Sig:    v.Sig.Key(),
		Cause:  "capacity",
		Gen:    r.gens[name],
		Detail: fmt.Sprintf("quality=%s hits=%d", v.Quality, v.Hits()),
	})
}

// Replace swaps a published entry for its recompiled upgrade, carrying
// the hit count over. It returns false if old is no longer present
// (the function was invalidated while the upgrade compiled), in which
// case the new entry is dropped — replacement must never resurrect an
// entry for stale source. Replace does not count as an Insert: the
// repository still holds one compiled version for the signature.
func (r *Repository) Replace(name string, old, repl *Entry) bool {
	r.mu.Lock()
	for i, e := range r.funcs[name] {
		if e == old {
			atomic.StoreInt64(&repl.hits, old.Hits())
			r.funcs[name][i] = repl
			r.stats.Replaces++
			onChange := r.onChange
			r.mu.Unlock()
			notify(onChange)
			return true
		}
	}
	r.stats.StaleDrops++
	r.mu.Unlock()
	return false
}

// Invalidate drops all entries for a function (source change detected
// by the snooper) and advances its generation so in-flight compile jobs
// for the old source publish into the void.
func (r *Repository) Invalidate(name string) {
	r.mu.Lock()
	r.gens[name]++
	if _, ok := r.funcs[name]; ok {
		delete(r.funcs, name)
		r.stats.Invalidation++
	}
	onChange := r.onChange
	r.mu.Unlock()
	// Notify even when no entries existed: the library publishes the new
	// source before invalidating, so the snapshot's source text for this
	// function is stale either way.
	notify(onChange)
}

// SameKindsDifferentDetail reports whether an existing entry matches
// the requested signature's intrinsic kinds and arity but not its
// ranges/shapes — the trigger for the widening policy that prevents
// compiling one version per distinct constant argument (recursive
// calls like fibonacci(n-1) would otherwise recompile for every n).
func (r *Repository) SameKindsDifferentDetail(name string, q types.Signature) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.funcs[name] {
		if len(e.Sig) != len(q) {
			continue
		}
		same := true
		for i := range q {
			if e.Sig[i].I != q[i].I {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// Stats returns a copy of the counters plus a snapshot of the live
// function and entry counts (the daemon's /metrics surface).
func (r *Repository) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Functions = len(r.funcs)
	for _, es := range r.funcs {
		s.Entries += len(es)
	}
	return s
}

// ResetStats clears the counters.
func (r *Repository) ResetStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = Stats{}
}
