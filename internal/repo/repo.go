// Package repo implements MaJIC's code repository (paper §2): a
// database of compiled code keyed by type signatures. The function
// locator retrieves, for a given invocation, a semantically safe entry
// (every actual type a subtype of the assumed type) that is optimal
// performance-wise, ranking safe candidates by a Manhattan-like
// distance between signatures. Misses trigger JIT compilation; the
// repository also hosts speculatively compiled entries and re-compiled
// (better-optimized) replacements.
package repo

import (
	"sync"

	"repro/internal/types"
	"repro/internal/vm"
)

// Quality grades how optimized an entry is; the locator prefers closer
// signatures first and higher quality second, and the engine may
// replace an entry with a higher-quality recompilation.
type Quality uint8

const (
	// QualityInterp marks a "compiled" entry that actually falls back
	// to interpretation (unsupported constructs).
	QualityInterp Quality = iota
	// QualityJIT is fast naive code from the JIT code generator.
	QualityJIT
	// QualityOpt is backend-optimized code (the speculative/batch path).
	QualityOpt
)

func (q Quality) String() string {
	return [...]string{"interp", "jit", "opt"}[q]
}

// Entry is one compiled version of a function.
type Entry struct {
	Sig     types.Signature
	Code    *vm.Compiled // nil for QualityInterp
	Quality Quality
	// Speculative marks entries produced ahead of time by the
	// speculator (for the harness's hit/miss statistics).
	Speculative bool
	Hits        int
}

// Stats counts repository traffic.
type Stats struct {
	Lookups      int
	Hits         int
	Misses       int
	Inserts      int
	SpecHits     int // hits on speculative entries
	Invalidation int
}

// Repository is the signature-keyed code database.
type Repository struct {
	mu    sync.Mutex
	funcs map[string][]*Entry
	stats Stats
}

// New returns an empty repository.
func New() *Repository {
	return &Repository{funcs: map[string][]*Entry{}}
}

// Lookup returns the best safe entry for an invocation signature, or
// nil. Best = minimal Manhattan distance, ties broken by quality.
func (r *Repository) Lookup(name string, q types.Signature) *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Lookups++
	var best *Entry
	bestDist := 0
	for _, e := range r.funcs[name] {
		if !e.Sig.Safe(q) {
			continue
		}
		d := e.Sig.Distance(q)
		if best == nil || d < bestDist || (d == bestDist && e.Quality > best.Quality) {
			best, bestDist = e, d
		}
	}
	if best != nil {
		r.stats.Hits++
		best.Hits++
		if best.Speculative {
			r.stats.SpecHits++
		}
	} else {
		r.stats.Misses++
	}
	return best
}

// Entries returns the compiled versions of a function (for majicc -dump
// and tests).
func (r *Repository) Entries(name string) []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Entry(nil), r.funcs[name]...)
}

// Insert adds an entry.
func (r *Repository) Insert(name string, e *Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Inserts++
	r.funcs[name] = append(r.funcs[name], e)
}

// Invalidate drops all entries for a function (source change detected
// by the snooper).
func (r *Repository) Invalidate(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[name]; ok {
		delete(r.funcs, name)
		r.stats.Invalidation++
	}
}

// SameKindsDifferentDetail reports whether an existing entry matches
// the requested signature's intrinsic kinds and arity but not its
// ranges/shapes — the trigger for the widening policy that prevents
// compiling one version per distinct constant argument (recursive
// calls like fibonacci(n-1) would otherwise recompile for every n).
func (r *Repository) SameKindsDifferentDetail(name string, q types.Signature) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.funcs[name] {
		if len(e.Sig) != len(q) {
			continue
		}
		same := true
		for i := range q {
			if e.Sig[i].I != q[i].I {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// Stats returns a copy of the counters.
func (r *Repository) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// ResetStats clears the counters.
func (r *Repository) ResetStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = Stats{}
}
