package repo

import (
	"sync"
	"testing"

	"repro/internal/types"
)

// TestInsertReplicatedCounts pins the stats contract: replicated
// applies count under Replicated — never Inserts or Loaded — and
// guard rejections count under ReplicatedDrops.
func TestInsertReplicatedCounts(t *testing.T) {
	r := New()
	sig := types.Signature{intScalar(20)}
	if !r.InsertReplicated("f", &Entry{Sig: sig, Quality: QualityJIT}, 0, "node-a") {
		t.Fatal("first replicated apply must succeed")
	}
	st := r.Stats()
	if st.Replicated != 1 || st.Inserts != 0 || st.Loaded != 0 {
		t.Fatalf("replicated apply miscounted: %+v", st)
	}
	es := r.Entries("f")
	if len(es) != 1 || !es[0].Replicated {
		t.Fatalf("entry not marked replicated: %+v", es)
	}

	// A duplicate at equal quality is dropped.
	if r.InsertReplicated("f", &Entry{Sig: sig, Quality: QualityJIT}, 0, "node-b") {
		t.Fatal("equal-quality duplicate must be dropped")
	}
	// A better-quality replica upgrades in place.
	if !r.InsertReplicated("f", &Entry{Sig: sig, Quality: QualityOpt}, 0, "node-b") {
		t.Fatal("better-quality replica must upgrade")
	}
	st = r.Stats()
	if st.Replicated != 2 || st.ReplicatedDrops != 1 || st.Entries != 1 {
		t.Fatalf("dedup accounting wrong: %+v", st)
	}
}

// TestInsertReplicatedGenerationGuard: a replicated entry captured
// against an old generation must not resurrect code for dead source.
func TestInsertReplicatedGenerationGuard(t *testing.T) {
	r := New()
	sig := types.Signature{intScalar(20)}
	gen := r.Generation("f")
	r.Invalidate("f") // a local redefinition lands meanwhile
	if r.InsertReplicated("f", &Entry{Sig: sig, Quality: QualityJIT}, gen, "node-a") {
		t.Fatal("stale-generation replica must be dropped")
	}
	if st := r.Stats(); st.ReplicatedDrops != 1 || st.Replicated != 0 || len(r.Entries("f")) != 0 {
		t.Fatalf("stale drop miscounted: %+v", st)
	}
}

// TestLocalCompileReplacesReplicated: a local compile publishing the
// exact signature a replicated entry serves replaces it in place —
// local code wins, and the repository never holds two entries for one
// exact signature across the replication-vs-JIT race.
func TestLocalCompileReplacesReplicated(t *testing.T) {
	r := New()
	sig := types.Signature{intScalar(20)}
	r.InsertReplicated("f", &Entry{Sig: sig, Quality: QualityJIT}, 0, "node-a")
	r.Entries("f")[0].addHit()
	local := &Entry{Sig: sig, Quality: QualityJIT}
	r.Insert("f", local)
	es := r.Entries("f")
	if len(es) != 1 || es[0] != local || es[0].Replicated {
		t.Fatalf("local compile must replace the replicated entry: %+v", es)
	}
	if es[0].Hits() != 1 {
		t.Fatalf("hit count must carry over the swap, got %d", es[0].Hits())
	}
}

// TestReplicatedVsLocalCompileRace is the exactly-one-winner invariant
// under -race: a peer apply and a local compile publish racing on the
// same (function, exact signature) leave exactly one live entry, in
// either arrival order, and a racing invalidation never lets the
// replica resurrect.
func TestReplicatedVsLocalCompileRace(t *testing.T) {
	sig := types.Signature{intScalar(20)}
	for i := 0; i < 200; i++ {
		r := New()
		gen := r.Generation("f")
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			r.Insert("f", &Entry{Sig: sig, Quality: QualityJIT})
		}()
		go func() {
			defer wg.Done()
			r.InsertReplicated("f", &Entry{Sig: sig, Quality: QualityJIT}, gen, "node-a")
		}()
		wg.Wait()
		n := 0
		for _, e := range r.Entries("f") {
			if e.Sig.Key() == sig.Key() {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("round %d: %d entries for one exact signature, want exactly 1", i, n)
		}
		st := r.Stats()
		if st.Inserts != 1 || st.Replicated+st.ReplicatedDrops != 1 {
			t.Fatalf("round %d: accounting lost an outcome: %+v", i, st)
		}
	}

	// With a redefinition in the race: the replica (captured at the old
	// generation) must either land before the invalidation (and be
	// dropped by it) or be rejected by the generation guard — the final
	// state never contains old-generation code.
	for i := 0; i < 200; i++ {
		r := New()
		gen := r.Generation("f")
		fresh := &Entry{Sig: sig, Quality: QualityJIT}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			r.Invalidate("f")
			r.InsertAt("f", fresh, gen+1)
		}()
		go func() {
			defer wg.Done()
			r.InsertReplicated("f", &Entry{Sig: sig, Quality: QualityOpt}, gen, "node-a")
		}()
		wg.Wait()
		es := r.Entries("f")
		if len(es) != 1 || es[0] != fresh {
			t.Fatalf("round %d: old-generation replica survived a redefinition: %+v", i, es)
		}
	}
}
