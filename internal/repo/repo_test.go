package repo

import (
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/types"
)

func intScalar(v float64) types.Type { return types.ScalarOf(types.IInt, types.Const(v)) }

func TestLookupSafety(t *testing.T) {
	r := New()
	exact := types.Signature{intScalar(20)}
	r.Insert("f", &Entry{Sig: exact, Quality: QualityJIT})

	// exact hit
	if e := r.Lookup("f", types.Signature{intScalar(20)}); e == nil {
		t.Fatal("exact signature must hit")
	}
	// different constant: unsafe, miss
	if e := r.Lookup("f", types.Signature{intScalar(19)}); e != nil {
		t.Fatal("f(19) must not match code specialized for 20")
	}
	// arity mismatch: miss
	if e := r.Lookup("f", types.Signature{intScalar(20), intScalar(1)}); e != nil {
		t.Fatal("arity mismatch must miss")
	}
	// unknown function: miss
	if e := r.Lookup("g", types.Signature{intScalar(20)}); e != nil {
		t.Fatal("unknown function must miss")
	}
}

func TestLocatorPrefersClosest(t *testing.T) {
	r := New()
	widened := types.Signature{types.ScalarOf(types.IInt, types.RangeTop)}
	generic := types.Signature{types.Top}
	exact := types.Signature{intScalar(20)}
	r.Insert("f", &Entry{Sig: generic, Quality: QualityJIT})
	r.Insert("f", &Entry{Sig: widened, Quality: QualityJIT})
	r.Insert("f", &Entry{Sig: exact, Quality: QualityJIT})

	got := r.Lookup("f", types.Signature{intScalar(20)})
	if got == nil || !got.Sig.Safe(types.Signature{intScalar(20)}) {
		t.Fatal("lookup failed")
	}
	if got.Sig.Key() != exact.Key() {
		t.Errorf("locator picked %s, want the exact entry", got.Sig)
	}
	// a different constant should pick the widened version over generic
	got = r.Lookup("f", types.Signature{intScalar(7)})
	if got == nil || got.Sig.Key() != widened.Key() {
		t.Errorf("locator picked %v, want widened int entry", got)
	}
	// a matrix argument only fits the generic entry
	got = r.Lookup("f", types.Signature{types.OfValue(mat.New(3, 3))})
	if got == nil || got.Sig.Key() != generic.Key() {
		t.Errorf("locator picked %v, want generic entry", got)
	}
}

func TestQualityBreaksTies(t *testing.T) {
	r := New()
	sig := types.Signature{types.ScalarOf(types.IInt, types.RangeTop)}
	r.Insert("f", &Entry{Sig: sig, Quality: QualityJIT})
	r.Insert("f", &Entry{Sig: sig, Quality: QualityOpt})
	got := r.Lookup("f", types.Signature{intScalar(5)})
	if got == nil || got.Quality != QualityOpt {
		t.Errorf("locator must prefer optimized code on signature ties, got %v", got)
	}
}

func TestInvalidate(t *testing.T) {
	r := New()
	sig := types.Signature{types.Top}
	r.Insert("f", &Entry{Sig: sig, Quality: QualityJIT})
	r.Invalidate("f")
	if e := r.Lookup("f", types.Signature{intScalar(1)}); e != nil {
		t.Fatal("entries must be dropped after invalidation")
	}
	st := r.Stats()
	if st.Invalidation != 1 {
		t.Errorf("invalidation count %d", st.Invalidation)
	}
}

func TestWideningTrigger(t *testing.T) {
	r := New()
	r.Insert("f", &Entry{Sig: types.Signature{intScalar(20)}, Quality: QualityJIT})
	if !r.SameKindsDifferentDetail("f", types.Signature{intScalar(19)}) {
		t.Error("same kinds, different constants must trigger widening")
	}
	if r.SameKindsDifferentDetail("f", types.Signature{types.ScalarOf(types.IReal, types.Const(19))}) {
		t.Error("different intrinsic kind must not trigger widening")
	}
	if r.SameKindsDifferentDetail("g", types.Signature{intScalar(19)}) {
		t.Error("unknown function must not trigger widening")
	}
}

func TestStatsCounting(t *testing.T) {
	r := New()
	sig := types.Signature{types.ScalarOf(types.IInt, types.RangeTop)}
	r.Insert("f", &Entry{Sig: sig, Quality: QualityOpt, Speculative: true})
	r.Lookup("f", types.Signature{intScalar(3)}) // hit, speculative
	r.Lookup("g", types.Signature{intScalar(3)}) // miss
	st := r.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 || st.SpecHits != 1 || st.Inserts != 1 {
		t.Errorf("stats: %+v", st)
	}
	r.ResetStats()
	if r.Stats().Lookups != 0 {
		t.Error("ResetStats")
	}
}

// TestGenerationDropsStaleInsert models the invalidation-vs-in-flight
// race of the async compilation service: a compile job that captured
// its generation before Invalidate must not resurrect old code by
// publishing after it.
func TestGenerationDropsStaleInsert(t *testing.T) {
	r := New()
	sig := types.Signature{intScalar(20)}
	gen := r.Generation("f")

	// Source changes while the job is (conceptually) compiling.
	r.Invalidate("f")

	if ok := r.InsertAt("f", &Entry{Sig: sig, Quality: QualityJIT}, gen); ok {
		t.Fatal("stale job publish must be dropped after Invalidate")
	}
	if e := r.Lookup("f", sig); e != nil {
		t.Fatal("stale entry resurrected")
	}
	st := r.Stats()
	if st.StaleDrops != 1 || st.Inserts != 0 {
		t.Errorf("stats: %+v, want StaleDrops=1 Inserts=0", st)
	}

	// A job enqueued at the new generation publishes normally.
	gen2 := r.Generation("f")
	if gen2 == gen {
		t.Fatal("Invalidate must advance the generation")
	}
	if ok := r.InsertAt("f", &Entry{Sig: sig, Quality: QualityJIT}, gen2); !ok {
		t.Fatal("current-generation publish must land")
	}
	if e := r.Lookup("f", sig); e == nil {
		t.Fatal("fresh entry missing")
	}
}

// TestInvalidateAdvancesGenerationWithoutEntries: the generation must
// move even before any entry exists — a job can be in flight for a
// function that was never compiled yet.
func TestInvalidateAdvancesGenerationWithoutEntries(t *testing.T) {
	r := New()
	gen := r.Generation("f")
	r.Invalidate("f")
	if r.Generation("f") == gen {
		t.Fatal("Invalidate on an empty function must still advance the generation")
	}
	if st := r.Stats(); st.Invalidation != 0 {
		t.Errorf("empty invalidate must not count as Invalidation: %+v", st)
	}
}

// TestReplace: the upgrade path swaps entries, carries hits over, and
// refuses to resurrect after invalidation.
func TestReplace(t *testing.T) {
	r := New()
	sig := types.Signature{types.ScalarOf(types.IInt, types.RangeTop)}
	old := &Entry{Sig: sig, Quality: QualityJIT}
	r.Insert("f", old)
	r.Lookup("f", types.Signature{intScalar(1)})
	r.Lookup("f", types.Signature{intScalar(2)})

	repl := &Entry{Sig: sig, Quality: QualityOpt}
	if !r.Replace("f", old, repl) {
		t.Fatal("Replace of a live entry must succeed")
	}
	got := r.Lookup("f", types.Signature{intScalar(3)})
	if got != repl || got.Quality != QualityOpt {
		t.Fatalf("lookup after Replace returned %+v", got)
	}
	if got.Hits() != 3 { // 2 carried over + this lookup
		t.Errorf("hits not carried over: %d", got.Hits())
	}
	if st := r.Stats(); st.Inserts != 1 || st.Replaces != 1 {
		t.Errorf("Replace must count under Replaces, not Inserts: %+v", st)
	}

	// Invalidation wins over a racing upgrade.
	r.Invalidate("f")
	if r.Replace("f", repl, &Entry{Sig: sig, Quality: QualityOpt}) {
		t.Fatal("Replace after Invalidate must fail")
	}
	if e := r.Lookup("f", types.Signature{intScalar(4)}); e != nil {
		t.Fatal("Replace resurrected an invalidated entry")
	}
	if st := r.Stats(); st.Replaces != 1 {
		t.Errorf("failed Replace must not count: %+v", st)
	}
}

// TestConcurrentLookupEntriesHits is the regression test for the latent
// race where Lookup mutated Entry.Hits under the repository lock while
// Entries handed out the same pointers to lock-free readers. Run with
// -race.
func TestConcurrentLookupEntriesHits(t *testing.T) {
	r := New()
	sig := types.Signature{types.ScalarOf(types.IInt, types.RangeTop)}
	r.Insert("f", &Entry{Sig: sig, Quality: QualityJIT})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Lookup("f", types.Signature{intScalar(float64(i))})
				for _, e := range r.Entries("f") {
					_ = e.Hits()
					_ = e.Quality
				}
			}
		}()
	}
	wg.Wait()
	entries := r.Entries("f")
	if len(entries) != 1 || entries[0].Hits() != 8*200 {
		t.Fatalf("hits = %d, want %d", entries[0].Hits(), 8*200)
	}
}

// TestBoundedEviction pins the daemon-safety cap: a bounded repository
// never holds more than maxPerFunc entries per function, evicting the
// least-hit entry (oldest on ties), and counts evictions.
func TestBoundedEviction(t *testing.T) {
	r := NewBounded(3)
	mk := func(v float64) *Entry {
		return &Entry{Sig: types.Signature{intScalar(v)}, Quality: QualityJIT}
	}
	hot := mk(1)
	r.Insert("f", hot)
	// Serve hits so the first entry is the most valuable.
	for i := 0; i < 5; i++ {
		if e := r.Lookup("f", types.Signature{intScalar(1)}); e != hot {
			t.Fatal("expected hit on the hot entry")
		}
	}
	warm := mk(2)
	r.Insert("f", warm)
	r.Lookup("f", types.Signature{intScalar(2)})
	cold := mk(3)
	r.Insert("f", cold) // at cap, zero hits
	// Next insert must evict cold (least hits), not the fresh entry.
	fresh := mk(4)
	r.Insert("f", fresh)
	entries := r.Entries("f")
	if len(entries) != 3 {
		t.Fatalf("want 3 entries at cap, got %d", len(entries))
	}
	for _, e := range entries {
		if e == cold {
			t.Fatal("least-hit entry survived eviction")
		}
	}
	for _, want := range []*Entry{hot, warm, fresh} {
		found := false
		for _, e := range entries {
			if e == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("entry %v missing after eviction", want.Sig)
		}
	}
	st := r.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Functions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Unbounded repositories never evict.
	u := New()
	for i := 0; i < 10; i++ {
		u.Insert("g", mk(float64(i)))
	}
	if st := u.Stats(); st.Evictions != 0 || st.Entries != 10 {
		t.Fatalf("unbounded stats = %+v", st)
	}
}

// TestEvictionPrefersInterpEntries pins the tiering-aware tie-break: at
// equal hit counts, a QualityInterp placeholder (an uncompilable
// signature the tiering pipeline parked) is evicted before compiled
// code — compiled entries are expensive to rebuild, placeholders are
// free.
func TestEvictionPrefersInterpEntries(t *testing.T) {
	r := NewBounded(3)
	mk := func(v float64, q Quality) *Entry {
		return &Entry{Sig: types.Signature{intScalar(v)}, Quality: q}
	}
	opt := mk(1, QualityOpt)
	interp := mk(2, QualityInterp)
	jit := mk(3, QualityJIT)
	r.Insert("f", opt)    // oldest
	r.Insert("f", interp) // same hits (zero) as its neighbours
	r.Insert("f", jit)
	r.Insert("f", mk(4, QualityOpt)) // forces one eviction
	for _, e := range r.Entries("f") {
		if e == interp {
			t.Fatal("QualityInterp entry survived over compiled code at equal hits")
		}
	}
	for _, want := range []*Entry{opt, jit} {
		found := false
		for _, e := range r.Entries("f") {
			if e == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("compiled entry %v was evicted instead of the placeholder", want.Sig)
		}
	}

	// Hit counts still dominate: a hot placeholder outlives cold
	// compiled code.
	r2 := NewBounded(2)
	hotInterp := mk(1, QualityInterp)
	r2.Insert("g", hotInterp)
	for i := 0; i < 5; i++ {
		r2.Lookup("g", types.Signature{intScalar(1)})
	}
	coldOpt := mk(2, QualityOpt)
	r2.Insert("g", coldOpt)
	r2.Insert("g", mk(3, QualityJIT))
	for _, e := range r2.Entries("g") {
		if e == coldOpt {
			t.Fatal("cold compiled entry survived over a hot placeholder")
		}
	}
}

// TestInsertLoadedCountsSeparately pins the stats contract the
// warm-start CI gate depends on: warm restores count under Loaded,
// never Inserts.
func TestInsertLoadedCountsSeparately(t *testing.T) {
	r := New()
	r.InsertLoaded("f", Restored(types.Signature{intScalar(1)}, nil, QualityJIT, false, 5))
	r.Insert("f", &Entry{Sig: types.Signature{intScalar(2)}, Quality: QualityJIT})
	st := r.Stats()
	if st.Loaded != 1 || st.Inserts != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// The restored hit count carries over for least-hit eviction.
	es := r.Entries("f")
	if len(es) != 2 || es[0].Hits() != 5 {
		t.Fatalf("restored hits lost: %+v", es)
	}
	// Loaded entries are live lookup targets.
	if e := r.Lookup("f", types.Signature{intScalar(1)}); e == nil {
		t.Fatal("loaded entry must hit")
	}
}

// TestInsertLoadedHonorsCap verifies warm loading cannot blow past the
// per-function entry cap.
func TestInsertLoadedHonorsCap(t *testing.T) {
	r := NewBounded(2)
	for i := 0; i < 5; i++ {
		r.InsertLoaded("f", Restored(types.Signature{intScalar(float64(i))}, nil, QualityJIT, false, int64(i)))
	}
	st := r.Stats()
	if st.Entries != 2 || st.Loaded != 5 || st.Evictions != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestOnChangeFiresOutsideLock verifies the snapshot-dirtying callback
// fires on insert, replace, and invalidate — and that it can reenter
// read methods, proving it runs outside the repository lock.
func TestOnChangeFiresOutsideLock(t *testing.T) {
	r := New()
	var fired int
	r.SetOnChange(func() {
		fired++
		r.Stats()         // would deadlock if called under r.mu
		r.FunctionNames() // ditto
	})
	e := &Entry{Sig: types.Signature{intScalar(1)}, Quality: QualityJIT}
	r.Insert("f", e)
	if fired != 1 {
		t.Fatalf("insert: fired %d", fired)
	}
	r.InsertAt("f", &Entry{Sig: types.Signature{intScalar(2)}, Quality: QualityJIT}, r.Generation("f"))
	if fired != 2 {
		t.Fatalf("insertAt: fired %d", fired)
	}
	r.Replace("f", e, &Entry{Sig: e.Sig, Quality: QualityOpt})
	if fired != 3 {
		t.Fatalf("replace: fired %d", fired)
	}
	r.Invalidate("f")
	if fired != 4 {
		t.Fatalf("invalidate: fired %d", fired)
	}
	// A stale InsertAt publishes nothing — and must not dirty.
	if r.InsertAt("f", &Entry{Sig: e.Sig, Quality: QualityJIT}, 0) {
		t.Fatal("stale insert published")
	}
	if fired != 4 {
		t.Fatalf("stale insertAt dirtied the snapshot: fired %d", fired)
	}
	// Invalidating a function with no entries still notifies: source
	// changed, so a persisted snapshot of it is stale.
	r.Invalidate("never-compiled")
	if fired != 5 {
		t.Fatalf("empty invalidate: fired %d", fired)
	}
}
