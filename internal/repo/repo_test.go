package repo

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/types"
)

func intScalar(v float64) types.Type { return types.ScalarOf(types.IInt, types.Const(v)) }

func TestLookupSafety(t *testing.T) {
	r := New()
	exact := types.Signature{intScalar(20)}
	r.Insert("f", &Entry{Sig: exact, Quality: QualityJIT})

	// exact hit
	if e := r.Lookup("f", types.Signature{intScalar(20)}); e == nil {
		t.Fatal("exact signature must hit")
	}
	// different constant: unsafe, miss
	if e := r.Lookup("f", types.Signature{intScalar(19)}); e != nil {
		t.Fatal("f(19) must not match code specialized for 20")
	}
	// arity mismatch: miss
	if e := r.Lookup("f", types.Signature{intScalar(20), intScalar(1)}); e != nil {
		t.Fatal("arity mismatch must miss")
	}
	// unknown function: miss
	if e := r.Lookup("g", types.Signature{intScalar(20)}); e != nil {
		t.Fatal("unknown function must miss")
	}
}

func TestLocatorPrefersClosest(t *testing.T) {
	r := New()
	widened := types.Signature{types.ScalarOf(types.IInt, types.RangeTop)}
	generic := types.Signature{types.Top}
	exact := types.Signature{intScalar(20)}
	r.Insert("f", &Entry{Sig: generic, Quality: QualityJIT})
	r.Insert("f", &Entry{Sig: widened, Quality: QualityJIT})
	r.Insert("f", &Entry{Sig: exact, Quality: QualityJIT})

	got := r.Lookup("f", types.Signature{intScalar(20)})
	if got == nil || !got.Sig.Safe(types.Signature{intScalar(20)}) {
		t.Fatal("lookup failed")
	}
	if got.Sig.Key() != exact.Key() {
		t.Errorf("locator picked %s, want the exact entry", got.Sig)
	}
	// a different constant should pick the widened version over generic
	got = r.Lookup("f", types.Signature{intScalar(7)})
	if got == nil || got.Sig.Key() != widened.Key() {
		t.Errorf("locator picked %v, want widened int entry", got)
	}
	// a matrix argument only fits the generic entry
	got = r.Lookup("f", types.Signature{types.OfValue(mat.New(3, 3))})
	if got == nil || got.Sig.Key() != generic.Key() {
		t.Errorf("locator picked %v, want generic entry", got)
	}
}

func TestQualityBreaksTies(t *testing.T) {
	r := New()
	sig := types.Signature{types.ScalarOf(types.IInt, types.RangeTop)}
	r.Insert("f", &Entry{Sig: sig, Quality: QualityJIT})
	r.Insert("f", &Entry{Sig: sig, Quality: QualityOpt})
	got := r.Lookup("f", types.Signature{intScalar(5)})
	if got == nil || got.Quality != QualityOpt {
		t.Errorf("locator must prefer optimized code on signature ties, got %v", got)
	}
}

func TestInvalidate(t *testing.T) {
	r := New()
	sig := types.Signature{types.Top}
	r.Insert("f", &Entry{Sig: sig, Quality: QualityJIT})
	r.Invalidate("f")
	if e := r.Lookup("f", types.Signature{intScalar(1)}); e != nil {
		t.Fatal("entries must be dropped after invalidation")
	}
	st := r.Stats()
	if st.Invalidation != 1 {
		t.Errorf("invalidation count %d", st.Invalidation)
	}
}

func TestWideningTrigger(t *testing.T) {
	r := New()
	r.Insert("f", &Entry{Sig: types.Signature{intScalar(20)}, Quality: QualityJIT})
	if !r.SameKindsDifferentDetail("f", types.Signature{intScalar(19)}) {
		t.Error("same kinds, different constants must trigger widening")
	}
	if r.SameKindsDifferentDetail("f", types.Signature{types.ScalarOf(types.IReal, types.Const(19))}) {
		t.Error("different intrinsic kind must not trigger widening")
	}
	if r.SameKindsDifferentDetail("g", types.Signature{intScalar(19)}) {
		t.Error("unknown function must not trigger widening")
	}
}

func TestStatsCounting(t *testing.T) {
	r := New()
	sig := types.Signature{types.ScalarOf(types.IInt, types.RangeTop)}
	r.Insert("f", &Entry{Sig: sig, Quality: QualityOpt, Speculative: true})
	r.Lookup("f", types.Signature{intScalar(3)}) // hit, speculative
	r.Lookup("g", types.Signature{intScalar(3)}) // miss
	st := r.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 || st.SpecHits != 1 || st.Inserts != 1 {
		t.Errorf("stats: %+v", st)
	}
	r.ResetStats()
	if r.Stats().Lookups != 0 {
		t.Error("ResetStats")
	}
}
