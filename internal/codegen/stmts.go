package codegen

import (
	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/types"
)

func (g *gen) stmts(list []ast.Stmt) {
	for _, s := range list {
		g.stmt(s)
	}
}

func (g *gen) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		b, r := g.expr(x.X)
		if ans, ok := g.vars["ans"]; ok {
			if b == ir.BankV && g.isVarReg(r) {
				// ans aliases a variable: mark shared so indexed writes
				// through either binding copy first.
				g.emit(ir.Instr{Op: ir.OpVMarkShared, A: r})
			}
			g.move(ans, b, r)
		}

	case *ast.Assign:
		g.assign(x)

	case *ast.If:
		g.ifStmt(x)

	case *ast.While:
		g.whileStmt(x)

	case *ast.For:
		g.forStmt(x)

	case *ast.Switch:
		g.switchStmt(x)

	case *ast.Break:
		if len(g.breakPatches) == 0 {
			panic(unsupported("break outside a loop"))
		}
		at := g.emit(ir.Instr{Op: ir.OpJmp})
		top := len(g.breakPatches) - 1
		g.breakPatches[top] = append(g.breakPatches[top], at)

	case *ast.Continue:
		if len(g.continuePatches) == 0 {
			panic(unsupported("continue outside a loop"))
		}
		at := g.emit(ir.Instr{Op: ir.OpJmp})
		top := len(g.continuePatches) - 1
		g.continuePatches[top] = append(g.continuePatches[top], at)

	case *ast.Return:
		at := g.emit(ir.Instr{Op: ir.OpJmp})
		g.returnPatches = append(g.returnPatches, at)

	case *ast.Global:
		panic(unsupported("global in compiled function"))
	case *ast.Clear:
		panic(unsupported("clear in compiled function"))
	default:
		panic(unsupported("statement %T", s))
	}
}

// move stores a value into a variable slot with conversion. For V-class
// targets the value is moved by reference; callers that need value
// semantics (B = A) emit OpVClone instead. A V-class move from a fresh
// temporary uses swap semantics: the temp register inherits the
// variable's old buffer so OpVEnsure can recycle it on the next loop
// iteration (the paper's pre-allocated temporaries).
func (g *gen) move(dst slot, b ir.Bank, r int32) {
	cv := g.to(dst.bank, b, r)
	if cv == dst.reg {
		return
	}
	switch dst.bank {
	case ir.BankF:
		g.emit(ir.Instr{Op: ir.OpFMov, A: dst.reg, B: cv})
	case ir.BankI:
		g.emit(ir.Instr{Op: ir.OpIMov, A: dst.reg, B: cv})
	case ir.BankC:
		g.emit(ir.Instr{Op: ir.OpCMov, A: dst.reg, B: cv})
	default:
		if g.isVarReg(cv) {
			g.emit(ir.Instr{Op: ir.OpVMov, A: dst.reg, B: cv})
		} else {
			g.emit(ir.Instr{Op: ir.OpVMovSwap, A: dst.reg, B: cv})
		}
	}
}

// isVarReg reports whether a V register is a variable's home slot (as
// opposed to an expression temporary).
func (g *gen) isVarReg(r int32) bool {
	for _, s := range g.vars {
		if s.bank == ir.BankV && s.reg == r {
			return true
		}
	}
	return false
}

func (g *gen) assign(x *ast.Assign) {
	if len(x.LHS) > 1 {
		g.multiAssign(x)
		return
	}
	switch lhs := x.LHS[0].(type) {
	case *ast.Ident:
		dst, ok := g.vars[lhs.Name]
		if !ok {
			panic(unsupported("assignment to unknown variable %s", lhs.Name))
		}
		b, r := g.expr(x.RHS)
		if dst.bank == ir.BankV && b == ir.BankV {
			// Value semantics: copying a variable must not alias it.
			if _, isVar := x.RHS.(*ast.Ident); isVar {
				g.emit(ir.Instr{Op: ir.OpVClone, A: dst.reg, B: r})
				return
			}
		}
		g.move(dst, b, r)

	case *ast.Call:
		g.indexedAssign(lhs, x.RHS)

	default:
		panic(unsupported("assignment target %T", lhs))
	}
}

func (g *gen) multiAssign(x *ast.Assign) {
	call, ok := x.RHS.(*ast.Call)
	if !ok {
		panic(unsupported("multi-assignment from non-call"))
	}
	nout := len(x.LHS)
	var outs []int32
	switch call.Kind {
	case ast.CallBuiltin:
		outs = g.emitBuiltin(call, nout)
	case ast.CallUser:
		outs = g.emitUserCall(call, nout)
	default:
		panic(unsupported("multi-assignment from %v", call.Kind))
	}
	for i, l := range x.LHS {
		switch lhs := l.(type) {
		case *ast.Ident:
			dst, ok := g.vars[lhs.Name]
			if !ok {
				panic(unsupported("assignment to unknown variable %s", lhs.Name))
			}
			g.move(dst, ir.BankV, outs[i])
		case *ast.Call:
			g.indexedAssignFromReg(lhs, ir.BankV, outs[i])
		default:
			panic(unsupported("multi-assignment target %T", l))
		}
	}
}

// indexedAssign compiles A(subs...) = rhs.
func (g *gen) indexedAssign(lhs *ast.Call, rhs ast.Expr) {
	base, ok := g.vars[lhs.Name]
	if !ok || base.bank != ir.BankV {
		panic(unsupported("indexed assignment to non-array %s", lhs.Name))
	}
	baseT := g.baseTypeOf(lhs)

	// Typed store path: scalar rhs, scalar subscripts, real data.
	if g.typedStorePossible(lhs, rhs, baseT) {
		rb, rr := g.expr(rhs)
		fr := g.toF(rb, rr)
		g.emit(ir.Instr{Op: ir.OpVEnsureOwn, A: base.reg})
		g.emitTypedStore(lhs, base, baseT, fr)
		return
	}
	rb, rr := g.expr(rhs)
	g.indexedAssignFromReg(lhs, rb, rr)
}

func (g *gen) indexedAssignFromReg(lhs *ast.Call, rb ir.Bank, rr int32) {
	base, ok := g.vars[lhs.Name]
	if !ok || base.bank != ir.BankV {
		panic(unsupported("indexed assignment to non-array %s", lhs.Name))
	}
	rv := g.toV(rb, rr)
	args := g.boxedSubscripts(lhs)
	aux := make([]int32, 0, len(args)+1)
	aux = append(aux, int32(len(args)))
	aux = append(aux, args...)
	at := g.prog.AddAux(aux...)
	g.emit(ir.Instr{Op: ir.OpGAssign, A: base.reg, C: at, D: rv})
}

// boxedSubscripts compiles each subscript into a V register; colons
// load the colon marker constant.
func (g *gen) boxedSubscripts(call *ast.Call) []int32 {
	out := make([]int32, len(call.Args))
	for i, a := range call.Args {
		if _, isColon := a.(*ast.Colon); isColon {
			d := g.newReg(ir.BankV)
			g.emit(ir.Instr{Op: ir.OpVConst, A: d, B: g.vconst(VConst{IsColon: true})})
			out[i] = d
			continue
		}
		b, r := g.exprWithEnd(a, call)
		out[i] = g.toV(b, r)
	}
	return out
}

// --- control flow -------------------------------------------------------------

// condFalsePatches compiles a branch that jumps when cond is false,
// returning instruction indices whose C field needs the target.
func (g *gen) condFalsePatches(cond ast.Expr) []int {
	// Fused relational compare-and-branch on typed scalars.
	if bin, ok := cond.(*ast.Binary); ok && bin.Op.IsRelational() {
		lt, rt := g.annOf(bin.L), g.annOf(bin.R)
		if lt.IsScalar() && rt.IsScalar() &&
			types.LeqI(lt.I, types.IReal) && types.LeqI(rt.I, types.IReal) {
			lb, lr := g.expr(bin.L)
			rb, rr := g.expr(bin.R)
			useI := lb == ir.BankI && rb == ir.BankI
			var a, b int32
			if useI {
				a, b = g.toI(lb, lr), g.toI(rb, rr)
			} else {
				a, b = g.toF(lb, lr), g.toF(rb, rr)
			}
			// Branch on the NEGATION of the condition. Floats use the
			// dedicated negated ops so NaN comparisons behave like
			// MATLAB (any comparison with NaN is false).
			var op ir.Op
			swap := false
			if useI {
				switch bin.Op {
				case ast.OpLt: // !(a<b) == b<=a on integers
					op, swap = ir.OpBrILe, true
				case ast.OpLe:
					op, swap = ir.OpBrILt, true
				case ast.OpGt:
					op, swap = ir.OpBrILe, false
				case ast.OpGe:
					op, swap = ir.OpBrILt, false
				case ast.OpEq:
					op = ir.OpBrINe
				case ast.OpNe:
					op = ir.OpBrIEq
				}
			} else {
				switch bin.Op {
				case ast.OpLt:
					op = ir.OpBrFNLt
				case ast.OpLe:
					op = ir.OpBrFNLe
				case ast.OpGt: // !(a>b) == !(b<a)
					op, swap = ir.OpBrFNLt, true
				case ast.OpGe:
					op, swap = ir.OpBrFNLe, true
				case ast.OpEq:
					op = ir.OpBrFNe
				case ast.OpNe:
					op = ir.OpBrFEq
				}
			}
			if swap {
				a, b = b, a
			}
			at := g.emit(ir.Instr{Op: op, A: a, B: b})
			return []int{at}
		}
	}
	// Short-circuit && splits into two branches.
	if bin, ok := cond.(*ast.Binary); ok && bin.Op == ast.OpAndAnd {
		p1 := g.condFalsePatches(bin.L)
		p2 := g.condFalsePatches(bin.R)
		return append(p1, p2...)
	}
	if bin, ok := cond.(*ast.Binary); ok && bin.Op == ast.OpOrOr {
		// if either true → fall through: jump over the second test.
		truePatches := g.condTruePatches(bin.L)
		falsePatches := g.condFalsePatches(bin.R)
		g.patch(truePatches, g.here())
		return falsePatches
	}
	b, r := g.expr(cond)
	if b == ir.BankV {
		at := g.emit(ir.Instr{Op: ir.OpBrFalseV, A: r})
		return []int{at}
	}
	fr := g.toF(b, r)
	at := g.emit(ir.Instr{Op: ir.OpBrFalseF, A: fr})
	return []int{at}
}

// condTruePatches emits a jump taken when cond is true.
func (g *gen) condTruePatches(cond ast.Expr) []int {
	b, r := g.expr(cond)
	if b == ir.BankV {
		at := g.emit(ir.Instr{Op: ir.OpBrTrueV, A: r})
		return []int{at}
	}
	fr := g.toF(b, r)
	at := g.emit(ir.Instr{Op: ir.OpBrTrueF, A: fr})
	return []int{at}
}

func (g *gen) patch(patches []int, target int) {
	for _, at := range patches {
		in := &g.prog.Ins[at]
		if in.Op == ir.OpJmp {
			in.A = int32(target)
		} else {
			in.C = int32(target)
		}
	}
}

func (g *gen) ifStmt(x *ast.If) {
	var endPatches []int
	for i, cond := range x.Conds {
		falseP := g.condFalsePatches(cond)
		g.stmts(x.Blocks[i])
		at := g.emit(ir.Instr{Op: ir.OpJmp})
		endPatches = append(endPatches, at)
		g.patch(falseP, g.here())
	}
	if x.Else != nil {
		g.stmts(x.Else)
	}
	g.patch(endPatches, g.here())
}

func (g *gen) whileStmt(x *ast.While) {
	head := g.here()
	falseP := g.condFalsePatches(x.Cond)
	g.pushLoop()
	g.stmts(x.Body)
	contP, brkP := g.popLoop()
	g.patch(contP, g.here())
	g.emit(ir.Instr{Op: ir.OpJmp, A: int32(head)})
	end := g.here()
	g.patch(falseP, end)
	g.patch(brkP, end)
}

func (g *gen) pushLoop() {
	g.breakPatches = append(g.breakPatches, nil)
	g.continuePatches = append(g.continuePatches, nil)
}

func (g *gen) popLoop() (contP, brkP []int) {
	top := len(g.breakPatches) - 1
	brkP = g.breakPatches[top]
	contP = g.continuePatches[top]
	g.breakPatches = g.breakPatches[:top]
	g.continuePatches = g.continuePatches[:top]
	return contP, brkP
}

func (g *gen) switchStmt(x *ast.Switch) {
	subjT := g.annOf(x.Subject)
	if !subjT.IsScalar() || !types.LeqI(subjT.I, types.IReal) {
		panic(unsupported("switch on non-scalar subject"))
	}
	sb, sr := g.expr(x.Subject)
	sf := g.toF(sb, sr)
	var endPatches []int
	for i, cv := range x.CaseVals {
		cb, cr := g.expr(cv)
		cf := g.toF(cb, cr)
		at := g.emit(ir.Instr{Op: ir.OpBrFNe, A: sf, B: cf})
		g.stmts(x.CaseBlks[i])
		j := g.emit(ir.Instr{Op: ir.OpJmp})
		endPatches = append(endPatches, j)
		g.patch([]int{at}, g.here())
	}
	if x.Otherwise != nil {
		g.stmts(x.Otherwise)
	}
	g.patch(endPatches, g.here())
}

func (g *gen) forStmt(x *ast.For) {
	dst, ok := g.vars[x.Var]
	if !ok {
		panic(unsupported("loop variable %s has no slot", x.Var))
	}
	r, isRange := x.Iter.(*ast.Range)
	if isRange {
		loT := g.annOf(r.Lo)
		hiT := g.annOf(r.Hi)
		stepT := types.ScalarOf(types.IInt, types.Const(1))
		if r.Step != nil {
			stepT = g.annOf(r.Step)
		}
		scalarBounds := loT.IsScalar() && hiT.IsScalar() && stepT.IsScalar() &&
			types.LeqI(loT.I, types.IReal) && types.LeqI(hiT.I, types.IReal) && types.LeqI(stepT.I, types.IReal)
		if scalarBounds {
			g.forRange(x, r, loT, stepT, hiT, dst)
			return
		}
	}
	// General form: iterate the columns of a materialized iterand.
	ib, ir0 := g.expr(x.Iter)
	iter := g.toV(ib, ir0)
	cols := g.newReg(ir.BankI)
	g.emit(ir.Instr{Op: ir.OpVCols, A: cols, B: iter})
	k := g.newReg(ir.BankI)
	one := g.newReg(ir.BankI)
	g.emit(ir.Instr{Op: ir.OpIConst, A: one, Imm: 1})
	g.emit(ir.Instr{Op: ir.OpIConst, A: k, Imm: 1})
	head := g.here()
	exit := g.emit(ir.Instr{Op: ir.OpBrILt, A: cols, B: k}) // cols < k → done
	// var = iter(:, k)
	colonReg := g.newReg(ir.BankV)
	g.emit(ir.Instr{Op: ir.OpVConst, A: colonReg, B: g.vconst(VConst{IsColon: true})})
	kBox := g.newReg(ir.BankV)
	g.emit(ir.Instr{Op: ir.OpBoxI, A: kBox, B: k})
	col := g.newReg(ir.BankV)
	aux := g.prog.AddAux(2, colonReg, kBox)
	g.emit(ir.Instr{Op: ir.OpGIndex, A: col, B: iter, C: aux})
	g.move(dst, ir.BankV, col)
	g.pushLoop()
	g.stmts(x.Body)
	contP, brkP := g.popLoop()
	g.patch(contP, g.here())
	g.emit(ir.Instr{Op: ir.OpIAdd, A: k, B: k, C: one})
	g.emit(ir.Instr{Op: ir.OpJmp, A: int32(head)})
	end := g.here()
	g.patch([]int{exit}, end)
	g.patch(brkP, end)
}

// forRange compiles for v = lo:step:hi over typed scalars. Iteration
// count and values follow the same formula as mat.Colon so compiled and
// interpreted runs agree bit for bit: v_k = lo + k*step for k = 0..n.
func (g *gen) forRange(x *ast.For, r *ast.Range, loT, stepT, hiT types.Type, dst slot) {
	intMode := types.LeqI(loT.I, types.IInt) && types.LeqI(stepT.I, types.IInt) &&
		types.LeqI(hiT.I, types.IInt) && dst.bank == ir.BankI

	lb, lr := g.expr(r.Lo)
	loF := g.toF(lb, lr)
	var stepF int32
	if r.Step != nil {
		sb, sr := g.expr(r.Step)
		stepF = g.toF(sb, sr)
	} else {
		stepF = g.newReg(ir.BankF)
		g.emit(ir.Instr{Op: ir.OpFConst, A: stepF, Imm: 1})
	}
	hb, hr := g.expr(r.Hi)
	hiF := g.toF(hb, hr)

	zero := g.newReg(ir.BankF)
	g.emit(ir.Instr{Op: ir.OpFConst, A: zero, Imm: 0})

	var skips []int
	// step == 0 → empty
	skips = append(skips, g.emit(ir.Instr{Op: ir.OpBrFEq, A: stepF, B: zero}))
	// step > 0 && lo > hi → empty: encoded as two tests
	posTest := g.emit(ir.Instr{Op: ir.OpBrFLe, A: stepF, B: zero}) // step <= 0 → check negative case
	skips = append(skips, g.emit(ir.Instr{Op: ir.OpBrFLt, A: hiF, B: loF}))
	skipNeg := g.emit(ir.Instr{Op: ir.OpJmp})
	g.patch([]int{posTest}, g.here())
	skips = append(skips, g.emit(ir.Instr{Op: ir.OpBrFLt, A: loF, B: hiF}))
	g.patch([]int{skipNeg}, g.here())

	// n = floor((hi-lo)/step + 1e-10); k = 0..n
	diff := g.newReg(ir.BankF)
	g.emit(ir.Instr{Op: ir.OpFSub, A: diff, B: hiF, C: loF})
	quot := g.newReg(ir.BankF)
	g.emit(ir.Instr{Op: ir.OpFDiv, A: quot, B: diff, C: stepF})
	epsc := g.newReg(ir.BankF)
	g.emit(ir.Instr{Op: ir.OpFConst, A: epsc, Imm: 1e-10})
	sum := g.newReg(ir.BankF)
	g.emit(ir.Instr{Op: ir.OpFAdd, A: sum, B: quot, C: epsc})
	fl := g.newReg(ir.BankF)
	g.emit(ir.Instr{Op: ir.OpFMath, A: fl, B: sum, C: g.mathID("floor")})
	n := g.newReg(ir.BankI)
	g.emit(ir.Instr{Op: ir.OpFtoI, A: n, B: fl})

	k := g.newReg(ir.BankI)
	g.emit(ir.Instr{Op: ir.OpIConst, A: k, Imm: 0})
	one := g.newReg(ir.BankI)
	g.emit(ir.Instr{Op: ir.OpIConst, A: one, Imm: 1})

	var loI, stepI int32
	if intMode {
		loI = g.toI(ir.BankF, loF)
		stepI = g.toI(ir.BankF, stepF)
	}

	// One iteration chunk: v = lo + k*step; body; k++.
	iteration := func() (contP, brkP []int) {
		if intMode {
			t := g.newReg(ir.BankI)
			g.emit(ir.Instr{Op: ir.OpIMul, A: t, B: k, C: stepI})
			g.emit(ir.Instr{Op: ir.OpIAdd, A: dst.reg, B: loI, C: t})
		} else {
			kf := g.newReg(ir.BankF)
			g.emit(ir.Instr{Op: ir.OpItoF, A: kf, B: k})
			t := g.newReg(ir.BankF)
			g.emit(ir.Instr{Op: ir.OpFMul, A: t, B: kf, C: stepF})
			v := g.newReg(ir.BankF)
			g.emit(ir.Instr{Op: ir.OpFAdd, A: v, B: loF, C: t})
			g.move(dst, ir.BankF, v)
		}
		g.pushLoop()
		g.stmts(x.Body)
		contP, brkP = g.popLoop()
		g.patch(contP, g.here())
		g.emit(ir.Instr{Op: ir.OpIAdd, A: k, B: k, C: one})
		return contP, brkP
	}

	// Unrolled main loop for the optimizing backend: replicate the body
	// U times per trip-count check. Bodies with break/continue keep the
	// simple form.
	unroll := g.cfg.UnrollLoops
	if unroll > 1 && !bodyHasJumps(x.Body) {
		uLim := g.newReg(ir.BankI)
		g.emit(ir.Instr{Op: ir.OpIConst, A: uLim, Imm: float64(unroll - 1)})
		mainHead := g.here()
		t := g.newReg(ir.BankI)
		g.emit(ir.Instr{Op: ir.OpIAdd, A: t, B: k, C: uLim})
		toRem := g.emit(ir.Instr{Op: ir.OpBrILt, A: n, B: t}) // n < k+U-1 → remainder
		for u := 0; u < unroll; u++ {
			iteration()
		}
		g.emit(ir.Instr{Op: ir.OpJmp, A: int32(mainHead)})
		g.patch([]int{toRem}, g.here())
		// remainder loop
		remHead := g.here()
		exit := g.emit(ir.Instr{Op: ir.OpBrILt, A: n, B: k})
		iteration()
		g.emit(ir.Instr{Op: ir.OpJmp, A: int32(remHead)})
		end := g.here()
		g.patch([]int{exit}, end)
		g.patch(skips, end)
		return
	}

	head := g.here()
	exit := g.emit(ir.Instr{Op: ir.OpBrILt, A: n, B: k}) // n < k → done
	_, brkP := iteration()
	g.emit(ir.Instr{Op: ir.OpJmp, A: int32(head)})
	end := g.here()
	g.patch([]int{exit}, end)
	g.patch(skips, end)
	g.patch(brkP, end)
}

// bodyHasJumps reports whether a statement list contains break,
// continue or return anywhere (at any nesting depth within this
// function's loops — conservative but cheap).
func bodyHasJumps(body []ast.Stmt) bool {
	found := false
	ast.WalkStmts(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Break, *ast.Continue, *ast.Return:
			found = true
		}
		return !found
	})
	return found
}
