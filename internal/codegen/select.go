package codegen

import (
	"repro/internal/ast"
	"repro/internal/builtins"
	"repro/internal/ir"
	"repro/internal/types"
)

// baseTypeOf returns the inferred type of the base array at an indexing
// site, falling back to the variable's joined type.
func (g *gen) baseTypeOf(call *ast.Call) types.Type {
	if g.res.Bases != nil {
		if t, ok := g.res.Bases[call]; ok {
			return t
		}
	}
	if t, ok := g.res.Vars[call.Name]; ok {
		return t
	}
	return types.Top
}

// --- subscript-check removal (paper §2.4) ------------------------------------

// subInBounds reports whether a subscript annotation is provably an
// integer within [1, extent] — the condition for removing the check.
func subInBounds(sub types.Type, minExtent types.Extent) bool {
	if !types.LeqI(sub.I, types.IInt) || !sub.IsScalar() {
		return false
	}
	if sub.R.IsBot() || sub.R.Lo < 1 {
		return false
	}
	if minExtent.Inf {
		return true // guaranteed at least ∞ rows can't happen; defensive
	}
	return sub.R.Hi <= float64(minExtent.N)
}

// minNumel returns the guaranteed element count of a base type.
func minNumel(t types.Type) types.Extent {
	n, ok := t.MinShape.Numel()
	if !ok {
		return types.InfExt
	}
	return types.Fin(n)
}

// typedLoadPossible: base is a real (or narrower) array variable and
// every subscript is a scalar annotation.
func (g *gen) typedLoadPossible(call *ast.Call, baseT types.Type) bool {
	if s, ok := g.vars[call.Name]; !ok || s.bank != ir.BankV {
		return false
	}
	if !types.LeqI(baseT.I, types.IReal) || baseT.I == types.IBottom || baseT.Sp {
		// Possibly-sparse bases have no dense payload to load from.
		return false
	}
	if len(call.Args) != 1 && len(call.Args) != 2 {
		return false
	}
	for _, a := range call.Args {
		switch a.(type) {
		case *ast.Colon:
			return false
		}
		if !g.annOf(a).IsScalar() || !types.LeqI(g.annOf(a).I, types.IReal) {
			return false
		}
	}
	return true
}

// typedStorePossible mirrors typedLoadPossible for stores; the rhs must
// be a real scalar and the base must stay real.
func (g *gen) typedStorePossible(call *ast.Call, rhs ast.Expr, baseT types.Type) bool {
	rt := g.annOf(rhs)
	if !rt.IsScalar() || !types.LeqI(rt.I, types.IReal) || rt.Sp {
		return false
	}
	if baseT.Sp {
		// Storing into a possibly-sparse base goes through the generic
		// path, which densifies in place first.
		return false
	}
	if !types.LeqI(baseT.I, types.IReal) {
		// An undefined base (⊥) is fine: the store creates a real array.
		if baseT.I != types.IBottom {
			return false
		}
	}
	if len(call.Args) != 1 && len(call.Args) != 2 {
		return false
	}
	for _, a := range call.Args {
		switch a.(type) {
		case *ast.Colon:
			return false
		}
		if !g.annOf(a).IsScalar() || !types.LeqI(g.annOf(a).I, types.IReal) {
			return false
		}
	}
	return true
}

// compileSub compiles one subscript either as an unchecked I register
// (when provably in bounds) or a checked F register.
func (g *gen) compileSub(e ast.Expr, call *ast.Call, minExtent types.Extent) (reg int32, unchecked bool) {
	ann := g.annOf(e)
	b, r := g.exprWithEnd(e, call)
	if subInBounds(ann, minExtent) {
		return g.toI(b, r), true
	}
	return g.toF(b, r), false
}

// emitTypedLoad compiles A(i) / A(i,j) element reads.
func (g *gen) emitTypedLoad(call *ast.Call, base slot, baseT types.Type) (ir.Bank, int32) {
	d := g.newReg(ir.BankF)
	switch len(call.Args) {
	case 1:
		r, unchecked := g.compileSub(call.Args[0], call, minNumel(baseT))
		if unchecked {
			g.emit(ir.Instr{Op: ir.OpFLd1U, A: d, B: base.reg, C: r})
		} else {
			g.emit(ir.Instr{Op: ir.OpFLd1, A: d, B: base.reg, C: r})
		}
	case 2:
		r1, u1 := g.compileSub(call.Args[0], call, baseT.MinShape.R)
		r2, u2 := g.compileSub(call.Args[1], call, baseT.MinShape.C)
		if u1 && u2 {
			g.emit(ir.Instr{Op: ir.OpFLd2U, A: d, B: base.reg, C: r1, D: r2})
		} else {
			// mixed: re-materialize both as checked F operands
			f1, f2 := r1, r2
			if u1 {
				f1 = g.toF(ir.BankI, r1)
			}
			if u2 {
				f2 = g.toF(ir.BankI, r2)
			}
			g.emit(ir.Instr{Op: ir.OpFLd2, A: d, B: base.reg, C: f1, D: f2})
		}
	}
	return ir.BankF, d
}

// emitTypedStore compiles A(i) = f / A(i,j) = f stores; checked stores
// implement MATLAB's growth semantics.
func (g *gen) emitTypedStore(call *ast.Call, base slot, baseT types.Type, f int32) {
	switch len(call.Args) {
	case 1:
		r, unchecked := g.compileSub(call.Args[0], call, minNumel(baseT))
		if unchecked {
			g.emit(ir.Instr{Op: ir.OpFSt1U, A: base.reg, B: r, C: f})
		} else {
			g.emit(ir.Instr{Op: ir.OpFSt1, A: base.reg, B: r, C: f})
		}
	case 2:
		r1, u1 := g.compileSub(call.Args[0], call, baseT.MinShape.R)
		r2, u2 := g.compileSub(call.Args[1], call, baseT.MinShape.C)
		if u1 && u2 {
			g.emit(ir.Instr{Op: ir.OpFSt2U, A: base.reg, B: r1, C: r2, D: f})
		} else {
			f1, f2 := r1, r2
			if u1 {
				f1 = g.toF(ir.BankI, r1)
			}
			if u2 {
				f2 = g.toF(ir.BankI, r2)
			}
			g.emit(ir.Instr{Op: ir.OpFSt2, A: base.reg, B: f1, C: f2, D: f})
		}
	}
}

// --- calls ---------------------------------------------------------------------

func (g *gen) call(x *ast.Call) (ir.Bank, int32) {
	switch x.Kind {
	case ast.CallIndex:
		base := g.vars[x.Name]
		baseT := g.baseTypeOf(x)
		ann := g.annOf(x)
		if g.typedLoadPossible(x, baseT) && ann.IsScalar() && types.LeqI(ann.I, types.IReal) {
			return g.emitTypedLoad(x, base, baseT)
		}
		if base.bank != ir.BankV {
			panic(unsupported("indexing a scalar-classed variable %s", x.Name))
		}
		// Generic boxed indexing.
		args := g.boxedSubscripts(x)
		aux := make([]int32, 0, len(args)+1)
		aux = append(aux, int32(len(args)))
		aux = append(aux, args...)
		at := g.prog.AddAux(aux...)
		d := g.newReg(ir.BankV)
		g.emit(ir.Instr{Op: ir.OpGIndex, A: d, B: base.reg, C: at})
		return ir.BankV, d

	case ast.CallBuiltin:
		return g.builtinCall(x)

	case ast.CallUser:
		outs := g.emitUserCall(x, 1)
		return ir.BankV, outs[0]
	}
	panic(unsupported("call kind %v for %s", x.Kind, x.Name))
}

// builtinCall applies the scalar-inlining selection rules before
// falling back to the generic GBuiltin dispatch.
func (g *gen) builtinCall(x *ast.Call) (ir.Bank, int32) {
	ann := g.annOf(x)
	name := x.Name

	// A vector math builtin may root a fused elementwise tree
	// (exp(a + b) runs as one loop instead of two passes).
	if g.cfg.FuseElemwise && !ann.IsScalar() {
		if fb, fr, ok := g.tryFuseExpr(x); ok {
			return fb, fr
		}
	}

	// Inlined elementary math on typed scalars (§2.6.1: "MaJIC inlines
	// scalar arithmetic and logical operations, elementary math
	// functions...").
	if len(x.Args) == 1 {
		at := g.annOf(x.Args[0])
		if at.IsScalar() && ann.IsScalar() {
			if _, isMath := builtins.ScalarMathFunc(name); isMath || name == "sqrt" || name == "exp" || name == "log" {
				if types.LeqI(at.I, types.IReal) && types.LeqI(ann.I, types.IReal) {
					b, r := g.expr(x.Args[0])
					f := g.toF(b, r)
					d := g.newReg(ir.BankF)
					g.emit(ir.Instr{Op: ir.OpFMath, A: d, B: f, C: g.mathID(name)})
					if types.LeqI(ann.I, types.IInt) {
						di := g.newReg(ir.BankI)
						g.emit(ir.Instr{Op: ir.OpFtoI, A: di, B: d})
						return ir.BankI, di
					}
					return ir.BankF, d
				}
				if types.LeqI(at.I, types.ICplx) && cmathSupported(name) {
					b, r := g.expr(x.Args[0])
					c := g.toC(b, r)
					d := g.newReg(ir.BankC)
					g.emit(ir.Instr{Op: ir.OpCMath, A: d, B: c, C: g.mathID(name)})
					return ir.BankC, d
				}
			}
			// abs of a complex scalar → F
			if name == "abs" && types.LeqI(at.I, types.ICplx) {
				b, r := g.expr(x.Args[0])
				c := g.toC(b, r)
				d := g.newReg(ir.BankF)
				g.emit(ir.Instr{Op: ir.OpCAbs, A: d, B: c})
				return ir.BankF, d
			}
			switch name {
			case "real", "imag", "conj", "angle":
				b, r := g.expr(x.Args[0])
				if types.LeqI(at.I, types.IReal) && b != ir.BankV {
					switch name {
					case "real", "conj":
						return b, r
					case "imag":
						d := g.newReg(ir.BankF)
						g.emit(ir.Instr{Op: ir.OpFConst, A: d, Imm: 0})
						return ir.BankF, d
					}
				}
				if types.LeqI(at.I, types.ICplx) && b != ir.BankV {
					c := g.toC(b, r)
					switch name {
					case "real":
						d := g.newReg(ir.BankF)
						g.emit(ir.Instr{Op: ir.OpCReal, A: d, B: c})
						return ir.BankF, d
					case "imag":
						d := g.newReg(ir.BankF)
						g.emit(ir.Instr{Op: ir.OpCImag, A: d, B: c})
						return ir.BankF, d
					case "conj":
						d := g.newReg(ir.BankC)
						g.emit(ir.Instr{Op: ir.OpCConj, A: d, B: c})
						return ir.BankC, d
					}
				}
				// fall through to generic path with the value boxed
				v := g.toV(b, r)
				return ir.BankV, g.emitBuiltinRegs(name, []int32{v}, 1)[0]
			}
		}
	}

	// mod/rem on typed scalars.
	if (name == "mod" || name == "rem") && len(x.Args) == 2 {
		a0, a1 := g.annOf(x.Args[0]), g.annOf(x.Args[1])
		if a0.IsScalar() && a1.IsScalar() && types.LeqI(a0.I, types.IReal) && types.LeqI(a1.I, types.IReal) {
			b0, r0 := g.expr(x.Args[0])
			b1, r1 := g.expr(x.Args[1])
			if name == "mod" && b0 == ir.BankI && b1 == ir.BankI {
				d := g.newReg(ir.BankI)
				g.emit(ir.Instr{Op: ir.OpIMod, A: d, B: r0, C: r1})
				return ir.BankI, d
			}
			f0, f1 := g.toF(b0, r0), g.toF(b1, r1)
			d := g.newReg(ir.BankF)
			op := ir.OpFMod
			if name == "rem" {
				op = ir.OpFRem
			}
			g.emit(ir.Instr{Op: op, A: d, B: f0, C: f1})
			if types.LeqI(ann.I, types.IInt) && ann.IsScalar() {
				di := g.newReg(ir.BankI)
				g.emit(ir.Instr{Op: ir.OpFtoI, A: di, B: d})
				return ir.BankI, di
			}
			return ir.BankF, d
		}
	}

	// zeros/ones with typed scalar sizes → direct allocation.
	if (name == "zeros" || name == "ones") && len(x.Args) >= 1 && len(x.Args) <= 2 {
		allIntScalar := true
		for _, a := range x.Args {
			at := g.annOf(a)
			if !at.IsScalar() || !types.LeqI(at.I, types.IReal) {
				allIntScalar = false
			}
		}
		if allIntScalar {
			var r1, r2 int32
			b, r := g.expr(x.Args[0])
			r1 = g.toI(b, r)
			if len(x.Args) == 2 {
				b2, rr := g.expr(x.Args[1])
				r2 = g.toI(b2, rr)
			} else {
				r2 = r1
			}
			d := g.newReg(ir.BankV)
			fill := 0.0
			if name == "ones" {
				fill = 1.0
			}
			g.emit(ir.Instr{Op: ir.OpVNewZeros, A: d, B: r1, C: r2, Imm: fill})
			return ir.BankV, d
		}
	}

	// size/length/numel on array variables → direct dimension reads.
	if (name == "size" || name == "length" || name == "numel") && len(x.Args) >= 1 {
		if id, ok := x.Args[0].(*ast.Ident); ok && g.isVarUse(id) {
			if s, ok := g.vars[id.Name]; ok && s.bank == ir.BankV {
				switch {
				case name == "numel" && len(x.Args) == 1:
					d := g.newReg(ir.BankI)
					g.emit(ir.Instr{Op: ir.OpVNumel, A: d, B: s.reg})
					return ir.BankI, d
				case name == "size" && len(x.Args) == 2:
					if c, ok := g.annOf(x.Args[1]).R.IsConst(); ok && (c == 1 || c == 2) {
						d := g.newReg(ir.BankI)
						op := ir.OpVRows
						if c == 2 {
							op = ir.OpVCols
						}
						g.emit(ir.Instr{Op: op, A: d, B: s.reg})
						return ir.BankI, d
					}
				}
			}
		}
	}

	// Generic builtin dispatch.
	outs := g.emitBuiltin(x, 1)
	d := outs[0]
	// Unbox typed scalar results so downstream code stays unboxed — but
	// never a possibly-sparse scalar (e.g. sparse(1,1)), whose
	// representation must survive for issparse/nnz.
	if ann.IsScalar() && !ann.Sp {
		switch {
		case types.LeqI(ann.I, types.IInt):
			di := g.newReg(ir.BankI)
			g.emit(ir.Instr{Op: ir.OpUnboxI, A: di, B: d})
			return ir.BankI, di
		case types.LeqI(ann.I, types.IReal):
			df := g.newReg(ir.BankF)
			g.emit(ir.Instr{Op: ir.OpUnboxF, A: df, B: d})
			return ir.BankF, df
		}
	}
	return ir.BankV, d
}

func cmathSupported(name string) bool {
	switch name {
	case "sqrt", "exp", "log", "sin", "cos", "tan", "sinh", "cosh", "tanh":
		return true
	}
	return false
}

// emitBuiltin compiles a builtin call through the generic dispatcher.
func (g *gen) emitBuiltin(x *ast.Call, nout int) []int32 {
	args := make([]int32, len(x.Args))
	for i, a := range x.Args {
		if _, isColon := a.(*ast.Colon); isColon {
			panic(unsupported("':' argument to builtin %s", x.Name))
		}
		b, r := g.expr(a)
		args[i] = g.toV(b, r)
	}
	return g.emitBuiltinRegs(x.Name, args, nout)
}

func (g *gen) emitBuiltinByName(name string, args []int32, nout int) []int32 {
	return g.emitBuiltinRegs(name, args, nout)
}

func (g *gen) emitBuiltinRegs(name string, args []int32, nout int) []int32 {
	outs := make([]int32, nout)
	aux := make([]int32, 0, nout+len(args)+3)
	aux = append(aux, g.builtinID(name), int32(nout))
	for i := range outs {
		outs[i] = g.newReg(ir.BankV)
		aux = append(aux, outs[i])
	}
	aux = append(aux, int32(len(args)))
	aux = append(aux, args...)
	at := g.prog.AddAux(aux...)
	g.emit(ir.Instr{Op: ir.OpGBuiltin, A: at})
	return outs
}

// emitUserCall compiles a call to another user function: boxed
// arguments, dispatch through the engine's repository (which may run
// compiled code or fall back to the interpreter).
func (g *gen) emitUserCall(x *ast.Call, nout int) []int32 {
	args := make([]int32, len(x.Args))
	for i, a := range x.Args {
		if _, isColon := a.(*ast.Colon); isColon {
			panic(unsupported("':' argument to function %s", x.Name))
		}
		b, r := g.expr(a)
		args[i] = g.toV(b, r)
	}
	return g.emitUserCallRegs(x.Name, args, nout)
}

func (g *gen) emitUserCallByName(name string, args []int32, nout int) []int32 {
	return g.emitUserCallRegs(name, args, nout)
}

func (g *gen) emitUserCallRegs(name string, args []int32, nout int) []int32 {
	outs := make([]int32, nout)
	aux := make([]int32, 0, nout+len(args)+3)
	aux = append(aux, g.callID(name), int32(nout))
	for i := range outs {
		outs[i] = g.newReg(ir.BankV)
		aux = append(aux, outs[i])
	}
	aux = append(aux, int32(len(args)))
	aux = append(aux, args...)
	at := g.prog.AddAux(aux...)
	g.emit(ir.Instr{Op: ir.OpCallUser, A: at})
	return outs
}

// --- matrix literals --------------------------------------------------------------

func (g *gen) matrixLit(x *ast.Matrix) (ir.Bank, int32) {
	ann := g.annOf(x)
	// Fully unrolled construction for small exactly-shaped literals of
	// real scalars ("vector concatenation completely unrolled").
	if rows, cols, ok := ann.ExactShape(); ok && rows*cols <= g.cfg.MaxUnrollElems &&
		types.LeqI(ann.I, types.IReal) && rows == len(x.Rows) && rows*cols > 0 {
		allScalar := true
		for _, row := range x.Rows {
			if len(row) != cols {
				allScalar = false
				break
			}
			for _, e := range row {
				at := g.annOf(e)
				if !at.IsScalar() || !types.LeqI(at.I, types.IReal) {
					allScalar = false
					break
				}
			}
		}
		if allScalar {
			// Compute all elements first, then allocate and store, so a
			// literal like [v(2) v(1)] never reads a half-written dst.
			elems := make([]int32, 0, rows*cols)
			for _, row := range x.Rows {
				for _, e := range row {
					b, r := g.expr(e)
					elems = append(elems, g.toF(b, r))
				}
			}
			rr := g.newReg(ir.BankI)
			g.emit(ir.Instr{Op: ir.OpIConst, A: rr, Imm: float64(rows)})
			cr := g.newReg(ir.BankI)
			g.emit(ir.Instr{Op: ir.OpIConst, A: cr, Imm: float64(cols)})
			d := g.newReg(ir.BankV)
			// VEnsure recycles the buffer this temp inherited from the
			// previous iteration's swap (pre-allocated temporaries).
			g.emit(ir.Instr{Op: ir.OpVEnsure, A: d, B: rr, C: cr})
			k := 0
			for ri := 0; ri < rows; ri++ {
				for ci := 0; ci < cols; ci++ {
					idx := g.newReg(ir.BankI)
					g.emit(ir.Instr{Op: ir.OpIConst, A: idx, Imm: float64(ci*rows + ri + 1)})
					g.emit(ir.Instr{Op: ir.OpFSt1U, A: d, B: idx, C: elems[k]})
					k++
				}
			}
			return ir.BankV, d
		}
	}
	// Generic concatenation.
	aux := []int32{int32(len(x.Rows))}
	for _, row := range x.Rows {
		aux = append(aux, int32(len(row)))
		for _, e := range row {
			b, r := g.expr(e)
			aux = append(aux, g.toV(b, r))
		}
	}
	at := g.prog.AddAux(aux...)
	d := g.newReg(ir.BankV)
	g.emit(ir.Instr{Op: ir.OpGCat, A: d, B: at})
	return ir.BankV, d
}

// --- small-vector unrolling ---------------------------------------------------------

// tryUnrollElemwise unrolls elementwise binary operations on small
// exactly-shaped real operands into straight-line scalar code.
func (g *gen) tryUnrollElemwise(x *ast.Binary) (ir.Bank, int32, bool) {
	switch x.Op {
	case ast.OpAdd, ast.OpSub, ast.OpEMul, ast.OpEDiv:
	case ast.OpMul, ast.OpDiv:
		// * and / unroll only when one side is scalar (elementwise then).
		if !g.annOf(x.L).IsScalar() && !g.annOf(x.R).IsScalar() {
			return 0, 0, false
		}
	default:
		return 0, 0, false
	}
	ann := g.annOf(x)
	rows, cols, ok := ann.ExactShape()
	n := rows * cols
	if !ok || n == 0 || n > g.cfg.MaxUnrollElems || !types.LeqI(ann.I, types.IReal) || ann.Sp {
		return 0, 0, false
	}
	lt, rt := g.annOf(x.L), g.annOf(x.R)
	if !types.LeqI(lt.I, types.IReal) || !types.LeqI(rt.I, types.IReal) || lt.Sp || rt.Sp {
		return 0, 0, false
	}
	okShape := func(t types.Type) bool {
		if t.IsScalar() {
			return true
		}
		r, c, ok := t.ExactShape()
		return ok && r == rows && c == cols
	}
	if !okShape(lt) || !okShape(rt) {
		return 0, 0, false
	}

	lb, lr := g.expr(x.L)
	rb, rr := g.expr(x.R)

	// Element accessors: scalars broadcast, arrays load unchecked.
	loadElem := func(t types.Type, b ir.Bank, reg int32, k int) int32 {
		if t.IsScalar() {
			return g.toF(b, reg)
		}
		v := g.toV(b, reg)
		idx := g.newReg(ir.BankI)
		g.emit(ir.Instr{Op: ir.OpIConst, A: idx, Imm: float64(k + 1)})
		d := g.newReg(ir.BankF)
		g.emit(ir.Instr{Op: ir.OpFLd1U, A: d, B: v, C: idx})
		return d
	}
	// Broadcast scalars once.
	var lScalar, rScalar int32 = -1, -1
	if lt.IsScalar() {
		lScalar = g.toF(lb, lr)
	}
	if rt.IsScalar() {
		rScalar = g.toF(rb, rr)
	}
	results := make([]int32, n)
	for k := 0; k < n; k++ {
		var a, b int32
		if lScalar >= 0 {
			a = lScalar
		} else {
			a = loadElem(lt, lb, lr, k)
		}
		if rScalar >= 0 {
			b = rScalar
		} else {
			b = loadElem(rt, rb, rr, k)
		}
		_, res := g.scalarFloatOp(binOpNormalize(x.Op), a, b)
		results[k] = res
	}
	rrg := g.newReg(ir.BankI)
	g.emit(ir.Instr{Op: ir.OpIConst, A: rrg, Imm: float64(rows)})
	crg := g.newReg(ir.BankI)
	g.emit(ir.Instr{Op: ir.OpIConst, A: crg, Imm: float64(cols)})
	d := g.newReg(ir.BankV)
	// VEnsure recycles the previous iteration's buffer (swap semantics
	// in move) — the paper's pre-allocated small temporaries.
	g.emit(ir.Instr{Op: ir.OpVEnsure, A: d, B: rrg, C: crg})
	for k := 0; k < n; k++ {
		idx := g.newReg(ir.BankI)
		g.emit(ir.Instr{Op: ir.OpIConst, A: idx, Imm: float64(k + 1)})
		g.emit(ir.Instr{Op: ir.OpFSt1U, A: d, B: idx, C: results[k]})
	}
	return ir.BankV, d, true
}

// binOpNormalize maps * and / with a scalar operand onto their
// elementwise versions for the unrolled scalar kernel.
func binOpNormalize(op ast.BinOp) ast.BinOp {
	switch op {
	case ast.OpMul:
		return ast.OpEMul
	case ast.OpDiv:
		return ast.OpEDiv
	}
	return op
}

// --- dgemv fusion -----------------------------------------------------------------

// tryGEMV recognizes y ± A*x and A*x patterns over real matrices and
// vectors, emitting a single fused dgemv call (§2.6.1: "expressions
// like a*X+b*C*Y are transformed into a single call to dgemv").
func (g *gen) tryGEMV(x *ast.Binary) (ir.Bank, int32, bool) {
	mul, other, alpha, beta, ok := g.matchGEMV(x)
	if !ok {
		return 0, 0, false
	}
	// OpGEMV: A=dst, B=aux index; aux = [Areg, xreg, yreg|-1, betaCode];
	// Imm carries alpha. betaCode 0 → β=0, 1 → β=1, -1 → β=-1.
	ab, ar := g.expr(mul.L)
	av := g.toV(ab, ar)
	xb, xr := g.expr(mul.R)
	xv := g.toV(xb, xr)
	var yv int32 = -1
	if other != nil {
		yb, yr := g.expr(other)
		yv = g.toV(yb, yr)
	}
	d := g.newReg(ir.BankV)
	aux := g.prog.AddAux(av, xv, yv, int32(betaCode(beta)))
	g.emit(ir.Instr{Op: ir.OpGEMV, A: d, B: aux, Imm: alpha})
	return ir.BankV, d, true
}

// matchGEMV reports whether x matches one of the dgemv patterns and how
// (mul is the A*x product, other the ± y operand). It is also consulted
// by the elementwise fuser, which leaves matching subtrees alone so ±y
// keeps folding into dgemv's beta with the same accumulation order as
// the unfused pipeline.
func (g *gen) matchGEMV(x *ast.Binary) (mul *ast.Binary, other ast.Expr, alpha, beta float64, ok bool) {
	isMatVec := func(e ast.Expr) (*ast.Binary, bool) {
		bin, ok := e.(*ast.Binary)
		if !ok || bin.Op != ast.OpMul {
			return nil, false
		}
		at, xt := g.annOf(bin.L), g.annOf(bin.R)
		if at.MaybeScalar() || xt.MaybeScalar() {
			return nil, false
		}
		if !types.LeqI(at.I, types.IReal) || !types.LeqI(xt.I, types.IReal) {
			return nil, false
		}
		// x must be a column vector.
		if xt.MaxShape.C.Inf || xt.MaxShape.C.N != 1 {
			return nil, false
		}
		return bin, true
	}

	switch x.Op {
	case ast.OpMul:
		if m, k := isMatVec(x); k {
			return m, nil, 1, 0, true
		}
	case ast.OpAdd:
		if m, k := isMatVec(x.L); k && g.realVector(x.R) {
			return m, x.R, 1, 1, true
		}
		if m, k := isMatVec(x.R); k && g.realVector(x.L) {
			return m, x.L, 1, 1, true
		}
	case ast.OpSub:
		// y - A*x → -1*A*x + y
		if m, k := isMatVec(x.R); k && g.realVector(x.L) {
			return m, x.L, -1, 1, true
		}
		// A*x - y → 1*A*x + (-1)*y
		if m, k := isMatVec(x.L); k && g.realVector(x.R) {
			return m, x.R, 1, -1, true
		}
	}
	return nil, nil, 0, 0, false
}

func (g *gen) realVector(e ast.Expr) bool {
	t := g.annOf(e)
	if !types.LeqI(t.I, types.IReal) || t.MaybeScalar() {
		return false
	}
	return !t.MaxShape.C.Inf && t.MaxShape.C.N == 1
}

func betaCode(beta float64) int {
	switch beta {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return -1
	}
}
