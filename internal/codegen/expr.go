package codegen

import (
	"repro/internal/ast"
	"repro/internal/builtins"
	"repro/internal/disambig"
	"repro/internal/ir"
	"repro/internal/types"
)

// expr compiles an expression, returning the bank and register holding
// its value. The bank is chosen from the inference annotation: typed
// scalar results live unboxed in F/I/C registers (the paper's "replace
// MATLAB's polymorphic operations with single machine instructions"),
// everything else is a boxed V value.
func (g *gen) expr(e ast.Expr) (ir.Bank, int32) {
	switch x := e.(type) {
	case *ast.NumberLit:
		if x.Imag {
			d := g.newReg(ir.BankC)
			g.prog.CPool = append(g.prog.CPool, complex(0, x.Value))
			g.emit(ir.Instr{Op: ir.OpCConst, A: d, B: int32(len(g.prog.CPool) - 1)})
			return ir.BankC, d
		}
		if x.IsInt {
			d := g.newReg(ir.BankI)
			g.emit(ir.Instr{Op: ir.OpIConst, A: d, Imm: x.Value})
			return ir.BankI, d
		}
		d := g.newReg(ir.BankF)
		g.emit(ir.Instr{Op: ir.OpFConst, A: d, Imm: x.Value})
		return ir.BankF, d

	case *ast.StringLit:
		d := g.newReg(ir.BankV)
		g.emit(ir.Instr{Op: ir.OpVConst, A: d, B: g.vconst(VConst{Str: x.Value})})
		return ir.BankV, d

	case *ast.Ident:
		if g.isVarUse(x) {
			if s, ok := g.vars[x.Name]; ok {
				return s.bank, s.reg
			}
		}
		return g.nonVarIdent(x)

	case *ast.Binary:
		return g.binary(x)

	case *ast.Unary:
		return g.unary(x)

	case *ast.Transpose:
		return g.transpose(x)

	case *ast.Range:
		lb, lr := g.expr(x.Lo)
		lo := g.toV(lb, lr)
		var step int32
		if x.Step != nil {
			sb, sr := g.expr(x.Step)
			step = g.toV(sb, sr)
		} else {
			f := g.newReg(ir.BankF)
			g.emit(ir.Instr{Op: ir.OpFConst, A: f, Imm: 1})
			step = g.toV(ir.BankF, f)
		}
		hb, hr := g.expr(x.Hi)
		hi := g.toV(hb, hr)
		d := g.newReg(ir.BankV)
		g.emit(ir.Instr{Op: ir.OpGColon, A: d, B: lo, C: step, D: hi})
		return ir.BankV, d

	case *ast.End:
		return g.endValue(x)

	case *ast.Colon:
		panic(unsupported("':' outside a subscript"))

	case *ast.Call:
		return g.call(x)

	case *ast.Matrix:
		return g.matrixLit(x)
	}
	panic(unsupported("expression %T", e))
}

// isVarUse reports whether the disambiguator classified the identifier
// occurrence as a variable.
func (g *gen) isVarUse(x *ast.Ident) bool {
	m, ok := g.tbl.Uses[x]
	if !ok {
		_, isVar := g.vars[x.Name]
		return isVar
	}
	return m == disambig.Variable
}

// nonVarIdent compiles an identifier that names a builtin constant or a
// niladic function call.
func (g *gen) nonVarIdent(x *ast.Ident) (ir.Bank, int32) {
	ann := g.annOf(x)
	// Constant-folded builtin constants (pi, eps, true, ...).
	if c, ok := ann.R.IsConst(); ok && ann.IsScalar() && types.LeqI(ann.I, types.IReal) {
		if types.LeqI(ann.I, types.IInt) {
			d := g.newReg(ir.BankI)
			g.emit(ir.Instr{Op: ir.OpIConst, A: d, Imm: c})
			return ir.BankI, d
		}
		d := g.newReg(ir.BankF)
		g.emit(ir.Instr{Op: ir.OpFConst, A: d, Imm: c})
		return ir.BankF, d
	}
	if x.Name == "i" || x.Name == "j" {
		d := g.newReg(ir.BankC)
		g.prog.CPool = append(g.prog.CPool, complex(0, 1))
		g.emit(ir.Instr{Op: ir.OpCConst, A: d, B: int32(len(g.prog.CPool) - 1)})
		return ir.BankC, d
	}
	if builtins.Lookup(x.Name) != nil {
		return ir.BankV, g.emitBuiltinByName(x.Name, nil, 1)[0]
	}
	// Niladic user function call.
	return ir.BankV, g.emitUserCallByName(x.Name, nil, 1)[0]
}

// scalarArith reports whether a binary op on these annotations can use
// typed scalar instructions, and in which bank.
func (g *gen) scalarArith(res, l, r types.Type) (ir.Bank, bool) {
	if !res.IsScalar() || !l.IsScalar() || !r.IsScalar() {
		return ir.BankV, false
	}
	switch {
	case types.LeqI(res.I, types.IInt):
		return ir.BankI, true
	case types.LeqI(res.I, types.IReal):
		return ir.BankF, true
	case types.LeqI(res.I, types.ICplx):
		return ir.BankC, true
	}
	return ir.BankV, false
}

func (g *gen) binary(x *ast.Binary) (ir.Bank, int32) {
	ann := g.annOf(x)
	lt, rt := g.annOf(x.L), g.annOf(x.R)

	// Short-circuit logicals.
	if x.Op == ast.OpAndAnd || x.Op == ast.OpOrOr {
		return g.shortCircuit(x)
	}

	if bank, ok := g.scalarArith(ann, lt, rt); ok {
		return g.scalarBinary(x, bank)
	}

	// dgemv fusion: y ± A*x and A*x (real matrix × vector).
	if g.cfg.FuseGEMV {
		if b, r, ok := g.tryGEMV(x); ok {
			return b, r
		}
	}

	// Fully unrolled elementwise ops on small exactly-shaped operands.
	if g.cfg.UnrollSmallVectors {
		if b, r, ok := g.tryUnrollElemwise(x); ok {
			return b, r
		}
	}

	// Fused elementwise kernel for whole trees of vector operators.
	if g.cfg.FuseElemwise {
		if b, r, ok := g.tryFuseExpr(x); ok {
			return b, r
		}
	}

	// Generic fallback: boxed operands, polymorphic library call.
	lb, lr := g.expr(x.L)
	lv := g.toV(lb, lr)
	rb, rr := g.expr(x.R)
	rv := g.toV(rb, rr)
	d := g.newReg(ir.BankV)
	g.emit(ir.Instr{Op: ir.OpGBin, A: d, B: lv, C: rv, D: int32(x.Op)})
	return ir.BankV, d
}

// scalarBinary emits typed scalar instructions.
func (g *gen) scalarBinary(x *ast.Binary, bank ir.Bank) (ir.Bank, int32) {
	lb, lr := g.expr(x.L)
	rb, rr := g.expr(x.R)

	if x.Op.IsRelational() {
		// Complex equality uses C compares; ordering uses F.
		if lb == ir.BankC || rb == ir.BankC {
			if x.Op == ast.OpEq || x.Op == ast.OpNe {
				a, b := g.toC(lb, lr), g.toC(rb, rr)
				d := g.newReg(ir.BankF)
				op := ir.OpCCmpEq
				if x.Op == ast.OpNe {
					op = ir.OpCCmpNe
				}
				g.emit(ir.Instr{Op: op, A: d, B: a, C: b})
				return ir.BankF, d
			}
			lb, lr = ir.BankF, g.toF(lb, lr)
			rb, rr = ir.BankF, g.toF(rb, rr)
		}
		if lb == ir.BankI && rb == ir.BankI {
			d := g.newReg(ir.BankF)
			var op ir.Op
			a, b := lr, rr
			switch x.Op {
			case ast.OpEq:
				op = ir.OpICmpEq
			case ast.OpNe:
				op = ir.OpICmpNe
			case ast.OpLt:
				op = ir.OpICmpLt
			case ast.OpLe:
				op = ir.OpICmpLe
			case ast.OpGt:
				op, a, b = ir.OpICmpLt, rr, lr
			case ast.OpGe:
				op, a, b = ir.OpICmpLe, rr, lr
			}
			g.emit(ir.Instr{Op: op, A: d, B: a, C: b})
			return ir.BankF, d
		}
		a, b := g.toF(lb, lr), g.toF(rb, rr)
		d := g.newReg(ir.BankF)
		var op ir.Op
		switch x.Op {
		case ast.OpEq:
			op = ir.OpFCmpEq
		case ast.OpNe:
			op = ir.OpFCmpNe
		case ast.OpLt:
			op = ir.OpFCmpLt
		case ast.OpLe:
			op = ir.OpFCmpLe
		case ast.OpGt:
			op, a, b = ir.OpFCmpLt, b, a
		case ast.OpGe:
			op, a, b = ir.OpFCmpLe, b, a
		}
		g.emit(ir.Instr{Op: op, A: d, B: a, C: b})
		return ir.BankF, d
	}

	if x.Op == ast.OpAnd || x.Op == ast.OpOr {
		a, b := g.toF(lb, lr), g.toF(rb, rr)
		d := g.newReg(ir.BankF)
		op := ir.OpFAnd
		if x.Op == ast.OpOr {
			op = ir.OpFOr
		}
		g.emit(ir.Instr{Op: op, A: d, B: a, C: b})
		return ir.BankF, d
	}

	switch bank {
	case ir.BankI:
		a, b := g.toI(lb, lr), g.toI(rb, rr)
		d := g.newReg(ir.BankI)
		switch x.Op {
		case ast.OpAdd:
			g.emit(ir.Instr{Op: ir.OpIAdd, A: d, B: a, C: b})
		case ast.OpSub:
			g.emit(ir.Instr{Op: ir.OpISub, A: d, B: a, C: b})
		case ast.OpMul, ast.OpEMul:
			g.emit(ir.Instr{Op: ir.OpIMul, A: d, B: a, C: b})
		case ast.OpPow, ast.OpEPow:
			// int^int via float pow, result known integral
			fa, fb := g.toF(ir.BankI, a), g.toF(ir.BankI, b)
			fd := g.newReg(ir.BankF)
			g.emit(ir.Instr{Op: ir.OpFPow, A: fd, B: fa, C: fb})
			g.emit(ir.Instr{Op: ir.OpFtoI, A: d, B: fd})
		default:
			// int division etc. falls through to float
			fa, fb := g.toF(ir.BankI, a), g.toF(ir.BankI, b)
			return g.scalarFloatOp(x.Op, fa, fb)
		}
		return ir.BankI, d

	case ir.BankF:
		a, b := g.toF(lb, lr), g.toF(rb, rr)
		return g.scalarFloatOp(x.Op, a, b)

	case ir.BankC:
		a, b := g.toC(lb, lr), g.toC(rb, rr)
		d := g.newReg(ir.BankC)
		switch x.Op {
		case ast.OpAdd:
			g.emit(ir.Instr{Op: ir.OpCAdd, A: d, B: a, C: b})
		case ast.OpSub:
			g.emit(ir.Instr{Op: ir.OpCSub, A: d, B: a, C: b})
		case ast.OpMul, ast.OpEMul:
			g.emit(ir.Instr{Op: ir.OpCMul, A: d, B: a, C: b})
		case ast.OpDiv, ast.OpEDiv:
			g.emit(ir.Instr{Op: ir.OpCDiv, A: d, B: a, C: b})
		case ast.OpLDiv, ast.OpELDiv:
			g.emit(ir.Instr{Op: ir.OpCDiv, A: d, B: b, C: a})
		case ast.OpPow, ast.OpEPow:
			g.emit(ir.Instr{Op: ir.OpCPow, A: d, B: a, C: b})
		default:
			panic(unsupported("complex scalar op %v", x.Op))
		}
		return ir.BankC, d
	}
	panic(unsupported("scalar op %v", x.Op))
}

func (g *gen) scalarFloatOp(op ast.BinOp, a, b int32) (ir.Bank, int32) {
	d := g.newReg(ir.BankF)
	switch op {
	case ast.OpAdd:
		g.emit(ir.Instr{Op: ir.OpFAdd, A: d, B: a, C: b})
	case ast.OpSub:
		g.emit(ir.Instr{Op: ir.OpFSub, A: d, B: a, C: b})
	case ast.OpMul, ast.OpEMul:
		g.emit(ir.Instr{Op: ir.OpFMul, A: d, B: a, C: b})
	case ast.OpDiv, ast.OpEDiv:
		g.emit(ir.Instr{Op: ir.OpFDiv, A: d, B: a, C: b})
	case ast.OpLDiv, ast.OpELDiv:
		g.emit(ir.Instr{Op: ir.OpFDiv, A: d, B: b, C: a})
	case ast.OpPow, ast.OpEPow:
		g.emit(ir.Instr{Op: ir.OpFPow, A: d, B: a, C: b})
	default:
		panic(unsupported("float scalar op %v", op))
	}
	return ir.BankF, d
}

// shortCircuit compiles && and || with lazy right-operand evaluation.
func (g *gen) shortCircuit(x *ast.Binary) (ir.Bank, int32) {
	d := g.newReg(ir.BankF)
	if x.Op == ast.OpAndAnd {
		falseP := g.condFalsePatches(x.L)
		falseP = append(falseP, g.condFalsePatches(x.R)...)
		g.emit(ir.Instr{Op: ir.OpFConst, A: d, Imm: 1})
		over := g.emit(ir.Instr{Op: ir.OpJmp})
		g.patch(falseP, g.here())
		g.emit(ir.Instr{Op: ir.OpFConst, A: d, Imm: 0})
		g.patch([]int{over}, g.here())
		return ir.BankF, d
	}
	falseL := g.condFalsePatches(x.L)
	// L true:
	g.emit(ir.Instr{Op: ir.OpFConst, A: d, Imm: 1})
	overTrue := g.emit(ir.Instr{Op: ir.OpJmp})
	g.patch(falseL, g.here())
	falseR := g.condFalsePatches(x.R)
	g.emit(ir.Instr{Op: ir.OpFConst, A: d, Imm: 1})
	over2 := g.emit(ir.Instr{Op: ir.OpJmp})
	g.patch(falseR, g.here())
	g.emit(ir.Instr{Op: ir.OpFConst, A: d, Imm: 0})
	g.patch([]int{overTrue, over2}, g.here())
	return ir.BankF, d
}

func (g *gen) unary(x *ast.Unary) (ir.Bank, int32) {
	ann := g.annOf(x)
	// A vector negation may root a fused elementwise tree; try before
	// evaluating the operand so nothing is compiled twice.
	if g.cfg.FuseElemwise && x.Op == ast.OpNeg && !ann.IsScalar() {
		if fb, fr, ok := g.tryFuseExpr(x); ok {
			return fb, fr
		}
	}
	b, r := g.expr(x.X)
	switch x.Op {
	case ast.OpNeg:
		if ann.IsScalar() {
			switch {
			case types.LeqI(ann.I, types.IInt) && b == ir.BankI:
				d := g.newReg(ir.BankI)
				g.emit(ir.Instr{Op: ir.OpINeg, A: d, B: r})
				return ir.BankI, d
			case types.LeqI(ann.I, types.IReal):
				f := g.toF(b, r)
				d := g.newReg(ir.BankF)
				g.emit(ir.Instr{Op: ir.OpFNeg, A: d, B: f})
				return ir.BankF, d
			case types.LeqI(ann.I, types.ICplx):
				c := g.toC(b, r)
				d := g.newReg(ir.BankC)
				g.emit(ir.Instr{Op: ir.OpCNeg, A: d, B: c})
				return ir.BankC, d
			}
		}
		v := g.toV(b, r)
		d := g.newReg(ir.BankV)
		g.emit(ir.Instr{Op: ir.OpGUn, A: d, B: v, D: unNeg})
		return ir.BankV, d
	case ast.OpPos:
		if b != ir.BankV {
			return b, r
		}
		d := g.newReg(ir.BankV)
		g.emit(ir.Instr{Op: ir.OpGUn, A: d, B: r, D: unPos})
		return ir.BankV, d
	case ast.OpNot:
		if ann.IsScalar() && b != ir.BankV {
			f := g.toF(b, r)
			d := g.newReg(ir.BankF)
			g.emit(ir.Instr{Op: ir.OpFNot, A: d, B: f})
			return ir.BankF, d
		}
		v := g.toV(b, r)
		d := g.newReg(ir.BankV)
		g.emit(ir.Instr{Op: ir.OpGUn, A: d, B: v, D: unNot})
		return ir.BankV, d
	}
	panic(unsupported("unary %v", x.Op))
}

// Unary op codes for OpGUn.
const (
	unNeg int32 = iota
	unPos
	unNot
	unTrans  // .'
	unCTrans // '
)

func (g *gen) transpose(x *ast.Transpose) (ir.Bank, int32) {
	ann := g.annOf(x)
	b, r := g.expr(x.X)
	if ann.IsScalar() && b != ir.BankV {
		if b == ir.BankC && x.Conjugate {
			d := g.newReg(ir.BankC)
			g.emit(ir.Instr{Op: ir.OpCConj, A: d, B: r})
			return ir.BankC, d
		}
		return b, r // real scalar transpose is the identity
	}
	v := g.toV(b, r)
	d := g.newReg(ir.BankV)
	code := unTrans
	if x.Conjugate {
		code = unCTrans
	}
	g.emit(ir.Instr{Op: ir.OpGUn, A: d, B: v, D: code})
	return ir.BankV, d
}

// endValue compiles the 'end' keyword from the enclosing index context.
func (g *gen) endValue(x *ast.End) (ir.Bank, int32) {
	if len(g.endCtx) == 0 {
		panic(unsupported("'end' outside a subscript"))
	}
	ctx := g.endCtx[len(g.endCtx)-1]
	d := g.newReg(ir.BankI)
	switch {
	case ctx.ndims == 1:
		g.emit(ir.Instr{Op: ir.OpVNumel, A: d, B: ctx.baseReg})
	case x.Dim == 0:
		g.emit(ir.Instr{Op: ir.OpVRows, A: d, B: ctx.baseReg})
	default:
		g.emit(ir.Instr{Op: ir.OpVCols, A: d, B: ctx.baseReg})
	}
	return ir.BankI, d
}

type endCtx struct {
	baseReg int32
	ndims   int
}

// exprWithEnd compiles a subscript expression with 'end' bound to the
// base of call.
func (g *gen) exprWithEnd(e ast.Expr, call *ast.Call) (ir.Bank, int32) {
	base, ok := g.vars[call.Name]
	if !ok || base.bank != ir.BankV {
		return g.expr(e)
	}
	g.endCtx = append(g.endCtx, endCtx{baseReg: base.reg, ndims: len(call.Args)})
	defer func() { g.endCtx = g.endCtx[:len(g.endCtx)-1] }()
	return g.expr(e)
}
