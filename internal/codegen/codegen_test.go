package codegen

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/disambig"
	"repro/internal/infer"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/types"
)

func compileFn(t *testing.T, src string, params map[string]types.Type, cfg_ Config) *ir.Prog {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := file.Funcs[0]
	g := cfg.Build(fn.Body)
	tbl := disambig.Analyze(g, fn.Ins, nil)
	if params == nil {
		params = map[string]types.Type{}
	}
	res := infer.Forward(g, params, infer.Opts{})
	prog, err := Compile(fn, res, tbl, cfg_)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func count(p *ir.Prog, ops ...ir.Op) int {
	n := 0
	for _, in := range p.Ins {
		for _, op := range ops {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

// Subscript-check removal (paper §2.4): provably in-bounds accesses use
// unchecked loads/stores; unprovable ones keep the checks.
func TestSubscriptCheckRemoval(t *testing.T) {
	const src = `
function s = f()
  A = zeros(10, 10);
  s = 0;
  for i = 1:10
    for j = 1:10
      A(i,j) = i + j;
    end
  end
  for i = 1:10
    for j = 1:10
      s = s + A(i,j);
    end
  end
end`
	p := compileFn(t, src, nil, DefaultConfig())
	if n := count(p, ir.OpFLd2); n != 0 {
		t.Errorf("%d checked loads remain with provable bounds:\n%s", n, p.Disasm())
	}
	if n := count(p, ir.OpFLd2U); n == 0 {
		t.Error("no unchecked loads emitted")
	}
	if n := count(p, ir.OpFSt2); n != 0 {
		t.Errorf("%d checked stores remain with provable bounds", n)
	}
}

func TestChecksStayWithoutRanges(t *testing.T) {
	const src = `
function s = f(n)
  A = zeros(n, n);
  s = 0;
  for i = 1:n
    for j = 1:n
      s = s + A(i,j) + 1;
      A(i,j) = s;
    end
  end
end`
	// n has an unknown range → bounds unprovable → checked accesses
	p := compileFn(t, src, map[string]types.Type{
		"n": types.ScalarOf(types.IInt, types.RangeTop),
	}, DefaultConfig())
	if n := count(p, ir.OpFLd2U, ir.OpFSt2U); n != 0 {
		t.Errorf("%d unchecked accesses without provable bounds:\n%s", n, p.Disasm())
	}
	if n := count(p, ir.OpFLd2, ir.OpFSt2); n == 0 {
		t.Error("expected checked accesses")
	}
	// with a constant n the checks disappear
	p = compileFn(t, src, map[string]types.Type{
		"n": types.ScalarOf(types.IInt, types.Const(50)),
	}, DefaultConfig())
	if n := count(p, ir.OpFLd2); n != 0 {
		t.Errorf("constant-size matrix still has %d checked loads", n)
	}
}

// Small-vector unrolling (paper §2.6.1).
func TestSmallVectorUnrolling(t *testing.T) {
	const src = `
function s = f()
  a = [1 2 3];
  b = [4 5 6];
  c = a + b;
  s = c(1);
end`
	p := compileFn(t, src, nil, DefaultConfig())
	if n := count(p, ir.OpGBin); n != 0 {
		t.Errorf("generic op used for small exact-shape add:\n%s", p.Disasm())
	}
	// with unrolling disabled the generic path returns
	cfgNo := DefaultConfig()
	cfgNo.UnrollSmallVectors = false
	p = compileFn(t, src, nil, cfgNo)
	if n := count(p, ir.OpGBin); n == 0 {
		t.Error("expected a generic op with unrolling disabled")
	}
}

// dgemv fusion (paper §2.6.1).
func TestGEMVFusion(t *testing.T) {
	const src = `
function r = f(A, x, b)
  r = b - A*x;
end`
	params := map[string]types.Type{
		"A": types.Exact(types.IReal, 50, 50, types.RangeTop),
		"x": types.Exact(types.IReal, 50, 1, types.RangeTop),
		"b": types.Exact(types.IReal, 50, 1, types.RangeTop),
	}
	p := compileFn(t, src, params, DefaultConfig())
	if n := count(p, ir.OpGEMV); n != 1 {
		t.Errorf("expected one fused gemv, got %d:\n%s", n, p.Disasm())
	}
	if n := count(p, ir.OpGBin); n != 0 {
		t.Errorf("generic ops remain after fusion: %d", n)
	}
	cfgNo := DefaultConfig()
	cfgNo.FuseGEMV = false
	p = compileFn(t, src, params, cfgNo)
	if n := count(p, ir.OpGEMV); n != 0 {
		t.Error("gemv emitted with fusion disabled")
	}
}

// Elementwise fusion (§2.6.1 temporary elimination): a chain of k >= 2
// elementwise vector operators compiles to exactly one OpVFused kernel
// and no generic ops.
func TestElemwiseFusion(t *testing.T) {
	const src = `
function r = f(a, b, c, s)
  r = a + b .* c - a ./ s;
end`
	vec := types.Exact(types.IReal, 1, 10000, types.RangeTop)
	params := map[string]types.Type{
		"a": vec, "b": vec, "c": vec,
		"s": types.ScalarOf(types.IReal, types.RangeTop),
	}
	cfgFuse := DefaultConfig()
	cfgFuse.FuseElemwise = true
	p := compileFn(t, src, params, cfgFuse)
	if n := count(p, ir.OpVFused); n != 1 {
		t.Errorf("expected one fused kernel, got %d:\n%s", n, p.Disasm())
	}
	if n := count(p, ir.OpGBin); n != 0 {
		t.Errorf("%d generic ops remain beside the fused kernel:\n%s", n, p.Disasm())
	}
	// the scalar divisor is staged once, not loaded per element
	if n := count(p, ir.OpVFuseArgF); n != 1 {
		t.Errorf("expected one staged scalar, got %d:\n%s", n, p.Disasm())
	}
	// off by default
	p = compileFn(t, src, params, DefaultConfig())
	if n := count(p, ir.OpVFused); n != 0 {
		t.Errorf("fused kernel emitted with fusion disabled:\n%s", p.Disasm())
	}
}

// Math builtins and unary minus root fused trees too, and a subtree the
// dgemv matcher claims stays an unfused leaf so the beta-folding
// accumulation order (and bit pattern) is preserved.
func TestElemwiseFusionRootsAndGEMVLeaves(t *testing.T) {
	vec := types.Exact(types.IReal, 1, 5000, types.RangeTop)
	cfgFuse := DefaultConfig()
	cfgFuse.FuseElemwise = true

	p := compileFn(t, `
function r = f(a, b)
  r = exp(-(a + b));
end`, map[string]types.Type{"a": vec, "b": vec}, cfgFuse)
	if n := count(p, ir.OpVFused); n != 1 {
		t.Errorf("builtin-rooted tree: expected one fused kernel, got %d:\n%s", n, p.Disasm())
	}
	if n := count(p, ir.OpGBuiltin, ir.OpGBin, ir.OpGUn); n != 0 {
		t.Errorf("builtin-rooted tree left %d generic ops:\n%s", n, p.Disasm())
	}

	col := types.Exact(types.IReal, 40, 1, types.RangeTop)
	mtx := types.Exact(types.IReal, 40, 40, types.RangeTop)
	p = compileFn(t, `
function r = f(A, x, b, c)
  r = (b - A*x) .* c;
end`, map[string]types.Type{"A": mtx, "x": col, "b": col, "c": col}, cfgFuse)
	if n := count(p, ir.OpGEMV); n != 1 {
		t.Errorf("dgemv subtree not preserved as a leaf: %d gemv ops:\n%s", n, p.Disasm())
	}
}

// Storage classes: int scalars in I registers, real scalars in F,
// complex scalars in C, matrices boxed in V.
func TestStorageClasses(t *testing.T) {
	const src = `
function s = f(n)
  x = 1.5;
  z = 0*i;
  A = zeros(3, 3);
  s = 0;
  for k = 1:n
    z = z + x;
    s = s + k;
  end
  s = s + real(z) + A(1,1);
end`
	p := compileFn(t, src, map[string]types.Type{
		"n": types.ScalarOf(types.IInt, types.RangeTop),
	}, DefaultConfig())
	if count(p, ir.OpIAdd) == 0 {
		t.Error("integer loop arithmetic missing")
	}
	if count(p, ir.OpCAdd) == 0 {
		t.Error("complex scalar arithmetic missing")
	}
	if count(p, ir.OpFAdd) == 0 {
		t.Error("float arithmetic missing")
	}
}

// Scalar math inlining: sin on a real scalar is an FMath instruction,
// not a builtin dispatch.
func TestScalarMathInlined(t *testing.T) {
	const src = `
function y = f(x)
  y = sin(x) + sqrt(abs(x));
end`
	p := compileFn(t, src, map[string]types.Type{
		"x": types.ScalarOf(types.IReal, types.RangeTop),
	}, DefaultConfig())
	if count(p, ir.OpFMath) < 3 {
		t.Errorf("math functions not inlined:\n%s", p.Disasm())
	}
	if count(p, ir.OpGBuiltin) != 0 {
		t.Errorf("builtin dispatch used for inlinable math:\n%s", p.Disasm())
	}
}

// mcc-style generic compilation: everything through boxed ops.
func TestGenericCompilation(t *testing.T) {
	const src = `
function s = f(a, b)
  s = a*b + a - b;
end`
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := file.Funcs[0]
	g := cfg.Build(fn.Body)
	tbl := disambig.Analyze(g, fn.Ins, nil)
	res := infer.Forward(g, map[string]types.Type{"a": types.Top, "b": types.Top},
		infer.Opts{AllTop: true})
	cfgGen := DefaultConfig()
	cfgGen.UnrollSmallVectors = false
	cfgGen.FuseGEMV = false
	p, err := Compile(fn, res, tbl, cfgGen)
	if err != nil {
		t.Fatal(err)
	}
	if count(p, ir.OpGBin) != 3 {
		t.Errorf("generic compile should use 3 boxed ops, got %d:\n%s",
			count(p, ir.OpGBin), p.Disasm())
	}
	if count(p, ir.OpFAdd, ir.OpFMul, ir.OpFSub, ir.OpIAdd, ir.OpIMul) != 0 {
		t.Error("typed scalar ops in an all-⊤ compilation")
	}
}

// Unsupported constructs must fail with ErrUnsupported (the engine falls
// back to interpretation).
func TestUnsupportedFallsBack(t *testing.T) {
	for _, src := range []string{
		"function y = f(x)\n  global g\n  y = g;\nend",
		"function y = f(x)\n  clear x\n  y = 1;\nend",
	} {
		file, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		fn := file.Funcs[0]
		g := cfg.Build(fn.Body)
		tbl := disambig.Analyze(g, fn.Ins, nil)
		res := infer.Forward(g, map[string]types.Type{"x": types.Top}, infer.Opts{})
		_, err = Compile(fn, res, tbl, DefaultConfig())
		if err == nil {
			t.Errorf("%q must fail to compile", src)
			continue
		}
		if _, ok := err.(*ErrUnsupported); !ok {
			t.Errorf("%q: error %T, want *ErrUnsupported", src, err)
		}
	}
}

// Loop unrolling (the optimizing backend's flag) replicates the body.
func TestLoopUnrollGrowsBody(t *testing.T) {
	const src = `
function s = f()
  s = 0;
  for i = 1:100
    s = s + i*i;
  end
end`
	plain := compileFn(t, src, nil, DefaultConfig())
	cfgU := DefaultConfig()
	cfgU.UnrollLoops = 4
	unrolled := compileFn(t, src, nil, cfgU)
	if len(unrolled.Ins) <= len(plain.Ins) {
		t.Errorf("unrolled program not larger: %d vs %d", len(unrolled.Ins), len(plain.Ins))
	}
	// bodies with break must not unroll
	const withBreak = `
function s = f()
  s = 0;
  for i = 1:100
    if i > 50
      break;
    end
    s = s + i;
  end
end`
	a := compileFn(t, withBreak, nil, DefaultConfig())
	b := compileFn(t, withBreak, nil, cfgU)
	if len(a.Ins) != len(b.Ins) {
		t.Error("loop with break must not unroll")
	}
}
