package codegen

// Elementwise fusion (the temporary-elimination half of §2.6.1's code
// selection): a maximal tree of elementwise operators on proven-real
// operands compiles to a single OpVFused instruction carrying a postfix
// micro-op program, which the VM runs as one loop over the output with
// no intermediate arrays. The generic pipeline instead makes one full
// memory pass and one boxed allocation per operator.
//
// Legality rules:
//   - Interior nodes are + - .* ./ .^, * and / with a proven-scalar
//     side, unary -, and 1-argument real math builtins; each must be
//     annotated as a real (or narrower) non-scalar result.
//   - Leaves must be annotated real. Scalar leaves are evaluated once
//     and staged into the kernel's slot file by OpVFuseArgF; everything
//     else is loaded per element (1x1 values broadcast at runtime, just
//     as the generic operators broadcast).
//   - Subtrees the dgemv matcher claims stay leaves, so y ± A*x keeps
//     folding into dgemv's beta with the unfused accumulation order.
//   - \ and .\ never fuse (their operand order is swapped relative to
//     evaluation order), and matrix-matrix * / are not elementwise.
//
// Evaluation order, per-element arithmetic, error messages and result
// kinds are identical to the generic operator chain; the VM falls back
// to interpreting the micro-ops over boxed values whenever an operand
// is complex at runtime or an element would promote to complex.

import (
	"repro/internal/ast"
	"repro/internal/builtins"
	"repro/internal/ir"
	"repro/internal/types"
)

// fuseNode describes an interior node of a fusable elementwise tree.
type fuseNode struct {
	code int32      // ir.FuseAdd .. ir.FuseMath
	math string     // math-builtin name when code == ir.FuseMath
	kids []ast.Expr // operand subtrees in evaluation order
}

// fuseInterior classifies e as an interior node of a fused kernel.
// Anything that is not an interior node becomes a leaf: evaluated once
// by the ordinary expression compiler and fed to the kernel.
func (g *gen) fuseInterior(e ast.Expr) (fuseNode, bool) {
	ann := g.annOf(e)
	if ann.IsScalar() || !types.LeqI(ann.I, types.IReal) || ann.Sp {
		// Possibly-sparse results never fuse: the kernel's per-element
		// loads assume dense column-major payloads.
		return fuseNode{}, false
	}
	switch x := e.(type) {
	case *ast.Binary:
		kids := []ast.Expr{x.L, x.R}
		switch x.Op {
		case ast.OpAdd, ast.OpSub:
			if g.cfg.FuseGEMV {
				if _, _, _, _, ok := g.matchGEMV(x); ok {
					return fuseNode{}, false
				}
			}
			if x.Op == ast.OpAdd {
				return fuseNode{code: ir.FuseAdd, kids: kids}, true
			}
			return fuseNode{code: ir.FuseSub, kids: kids}, true
		case ast.OpEMul:
			return fuseNode{code: ir.FuseMul, kids: kids}, true
		case ast.OpEDiv:
			return fuseNode{code: ir.FuseDiv, kids: kids}, true
		case ast.OpEPow:
			return fuseNode{code: ir.FusePow, kids: kids}, true
		case ast.OpMul:
			// * is elementwise exactly when a side is a proven scalar.
			if g.annOf(x.L).IsScalar() || g.annOf(x.R).IsScalar() {
				return fuseNode{code: ir.FuseMul, kids: kids}, true
			}
		case ast.OpDiv:
			if g.annOf(x.R).IsScalar() {
				return fuseNode{code: ir.FuseDiv, kids: kids}, true
			}
		}
	case *ast.Unary:
		if x.Op == ast.OpNeg {
			return fuseNode{code: ir.FuseNeg, kids: []ast.Expr{x.X}}, true
		}
	case *ast.Call:
		if x.Kind == ast.CallBuiltin && len(x.Args) == 1 {
			if _, ok := builtins.ScalarMathFunc(x.Name); ok {
				return fuseNode{code: ir.FuseMath, math: x.Name, kids: []ast.Expr{x.Args[0]}}, true
			}
		}
	}
	return fuseNode{}, false
}

// tryFuseExpr compiles e as one fused elementwise kernel when it roots
// a tree of at least two fusable operators (a single generic op is
// already one memory pass). The first walk only counts — it evaluates
// nothing, so a declined fusion leaves no stray code behind.
func (g *gen) tryFuseExpr(e ast.Expr) (ir.Bank, int32, bool) {
	nops, nleaves := 0, 0
	legal := true
	var count func(e ast.Expr)
	count = func(e ast.Expr) {
		n, ok := g.fuseInterior(e)
		if !ok {
			if la := g.annOf(e); !types.LeqI(la.I, types.IReal) || la.Sp {
				legal = false
			}
			nleaves++
			return
		}
		nops++
		for _, k := range n.kids {
			count(k)
		}
	}
	count(e)
	if !legal || nops < 2 || nleaves > ir.MaxFuseOperands || nops+nleaves > ir.MaxFuseOps {
		return 0, 0, false
	}

	// Second walk: evaluate leaves depth-first left-to-right (the same
	// order the generic pipeline evaluates them) and record the postfix
	// micro-op program. Scalar staging is deferred so all OpVFuseArgF
	// instructions sit contiguously in front of the kernel — a nested
	// fusion inside a leaf would otherwise clobber this kernel's slots.
	var vRegs, slotRegs []int32
	var code []int32
	vIndex := func(r int32) int32 {
		for i, vr := range vRegs {
			if vr == r {
				return int32(i)
			}
		}
		vRegs = append(vRegs, r)
		return int32(len(vRegs) - 1)
	}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		n, ok := g.fuseInterior(e)
		if !ok {
			b, r := g.expr(e)
			switch b {
			case ir.BankV:
				code = append(code, ir.FuseLoadV, vIndex(r))
			case ir.BankI:
				code = append(code, ir.FuseLoadSI, int32(len(slotRegs)))
				slotRegs = append(slotRegs, g.toF(ir.BankI, r))
			default: // BankF; BankC cannot carry a real-annotated value
				code = append(code, ir.FuseLoadSF, int32(len(slotRegs)))
				slotRegs = append(slotRegs, g.toF(b, r))
			}
			return
		}
		for _, k := range n.kids {
			walk(k)
		}
		var arg int32
		if n.code == ir.FuseMath {
			arg = g.mathID(n.math)
		}
		code = append(code, n.code, arg)
	}
	walk(e)

	for i, f := range slotRegs {
		g.emit(ir.Instr{Op: ir.OpVFuseArgF, A: int32(i), B: f})
	}
	aux := make([]int32, 0, len(vRegs)+len(code)+3)
	aux = append(aux, int32(len(vRegs)))
	aux = append(aux, vRegs...)
	aux = append(aux, int32(len(slotRegs)), int32(len(code)/2))
	aux = append(aux, code...)
	at := g.prog.AddAux(aux...)
	d := g.newReg(ir.BankV)
	g.emit(ir.Instr{Op: ir.OpVFused, A: d, B: at})
	return ir.BankV, d, true
}
