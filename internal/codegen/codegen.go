// Package codegen lowers type-annotated ASTs to the IR of package ir,
// implementing the paper's code selection rules (§2.6.1): inlined
// scalar arithmetic and math functions, inlined scalar/F90 index
// operations with conservative subscript-check removal, full unrolling
// of small fixed-shape vector operations, pre-allocated temporaries,
// dgemv fusion, and the generic complex-matrix fallback for everything
// type inference left at ⊤.
//
// The same selection rules serve both of MaJIC's code generators: the
// JIT generator emits this IR directly (one fast pass, no backend
// optimization), while the "source" generator used by speculative and
// FALCON-style compilation runs the optimizing pass pipeline of
// internal/opt over the IR afterwards, standing in for the platform's
// native C/Fortran compiler.
package codegen

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/disambig"
	"repro/internal/infer"
	"repro/internal/ir"
	"repro/internal/types"
)

// Config controls code selection.
type Config struct {
	// UnrollSmallVectors enables full unrolling of elementwise ops on
	// small exactly-shaped operands.
	UnrollSmallVectors bool
	// FuseGEMV enables the a*A*x + b*y → dgemv pattern match.
	FuseGEMV bool
	// FuseElemwise collects maximal trees of elementwise operators on
	// proven-real operands into single OpVFused kernels that run as one
	// loop with no intermediate arrays. Off by default so the baseline
	// paper-mode measurements keep the one-library-call-per-operator
	// execution model.
	FuseElemwise bool
	// MaxUnrollElems caps the unrolled element count (paper: "very
	// effective on small (up to 3x3) matrices").
	MaxUnrollElems int
	// UnrollLoops replicates simple counted-loop bodies this many times
	// (1 = off). The JIT generator never unrolls ("no loop
	// optimizations are performed"); the optimizing backend does.
	UnrollLoops int
}

// DefaultConfig matches the JIT code generator.
func DefaultConfig() Config {
	return Config{UnrollSmallVectors: true, FuseGEMV: true, MaxUnrollElems: 9, UnrollLoops: 1}
}

// ErrUnsupported reports a construct the compiler does not handle;
// the engine falls back to interpretation (exactly how MaJIC defers
// ambiguous symbols and exotic features to runtime).
type ErrUnsupported struct{ Reason string }

func (e *ErrUnsupported) Error() string { return "codegen: " + e.Reason }

func unsupported(format string, args ...any) error {
	return &ErrUnsupported{Reason: fmt.Sprintf(format, args...)}
}

// slot is a variable's storage assignment.
type slot struct {
	bank ir.Bank
	reg  int32
}

type gen struct {
	cfg  Config
	res  *infer.Result
	tbl  *disambig.Table
	prog *ir.Prog

	vars map[string]slot

	nextF, nextI, nextC, nextV int32

	// patch lists for loops
	breakPatches    [][]int
	continuePatches [][]int
	returnPatches   []int

	mathIDs    map[string]int32
	builtinIDs map[string]int32
	callIDs    map[string]int32
	vpool      []VConst

	// endCtx is the stack of index contexts for 'end' compilation.
	endCtx []endCtx
}

// VConst is a boxed constant (strings, the colon marker).
type VConst struct {
	Str     string
	IsColon bool
}

// Compile lowers a function to IR. The result has virtual register
// numbers; run regalloc.Allocate before execution.
//
// Concurrency audit (async compilation service): Compile only reads
// its inputs and builds a fresh *ir.Prog; it keeps no package-level
// mutable state (the type-rule database and builtin registry are
// immutable after init). Concurrent compilations of the same function
// from worker-pool goroutines are therefore safe as long as each call
// gets its own inference Result and disambiguation Table, which the
// engine's pipeline guarantees (both are built per compile).
func Compile(fn *ast.Function, res *infer.Result, tbl *disambig.Table, cfg Config) (prog *ir.Prog, err error) {
	defer func() {
		if r := recover(); r != nil {
			if u, ok := r.(*ErrUnsupported); ok {
				prog, err = nil, u
				return
			}
			panic(r)
		}
	}()
	if tbl.HasAmbiguous {
		return nil, unsupported("function %s contains ambiguous or undefined symbols", fn.Name)
	}
	if cfg.MaxUnrollElems == 0 {
		cfg.MaxUnrollElems = 9
	}
	g := &gen{
		cfg:        cfg,
		res:        res,
		tbl:        tbl,
		prog:       &ir.Prog{Name: fn.Name},
		vars:       map[string]slot{},
		mathIDs:    map[string]int32{},
		builtinIDs: map[string]int32{},
		callIDs:    map[string]int32{},
	}

	// Variables used as indexing bases need boxed storage even when
	// their joined type is scalar-shaped.
	forceV := map[string]bool{}
	ast.WalkStmts(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Call:
			if x.Kind == ast.CallIndex {
				forceV[x.Name] = true
			}
		case *ast.Assign:
			for _, l := range x.LHS {
				if c, ok := l.(*ast.Call); ok {
					forceV[c.Name] = true
				}
			}
		}
		return true
	})

	// Assign storage classes to all variables from their joined types —
	// the FALCON-style "declaration" step driven by inference.
	for name := range tbl.Vars {
		t, ok := res.Vars[name]
		if !ok {
			t = types.Top
		}
		class := classOf(t)
		if forceV[name] {
			class = ir.BankV
		}
		g.vars[name] = g.newSlot(class)
	}

	// Parameter bindings.
	for _, p := range fn.Ins {
		s, ok := g.vars[p]
		if !ok {
			s = g.newSlot(ir.BankV)
			g.vars[p] = s
		}
		g.prog.Params = append(g.prog.Params, ir.ParamBinding{Bank: s.bank, Reg: s.reg})
	}

	g.stmts(fn.Body)

	// Epilogue: box outputs.
	epi := len(g.prog.Ins)
	for _, at := range g.returnPatches {
		g.prog.Ins[at].C = int32(epi)
		if g.prog.Ins[at].Op == ir.OpJmp {
			g.prog.Ins[at].A = int32(epi)
		}
	}
	for _, out := range fn.Outs {
		s, ok := g.vars[out]
		if !ok {
			s = g.newSlot(ir.BankV)
			g.vars[out] = s
		}
		v := g.toV(s.bank, s.reg)
		g.prog.OutRegs = append(g.prog.OutRegs, v)
	}
	g.emit(ir.Instr{Op: ir.OpRet})

	g.prog.NumF, g.prog.NumI, g.prog.NumC, g.prog.NumV = g.nextF, g.nextI, g.nextC, g.nextV
	finalizePools(g)
	return g.prog, nil
}

func finalizePools(g *gen) {
	g.prog.MathFns = make([]string, len(g.mathIDs))
	for name, id := range g.mathIDs {
		g.prog.MathFns[id] = name
	}
	g.prog.Builtins = make([]string, len(g.builtinIDs))
	for name, id := range g.builtinIDs {
		g.prog.Builtins[id] = name
	}
	g.prog.Calls = make([]string, len(g.callIDs))
	for name, id := range g.callIDs {
		g.prog.Calls[id] = name
	}
	g.prog.VPoolStrs = make([]ir.VConstDesc, len(g.vpool))
	for i, vc := range g.vpool {
		g.prog.VPoolStrs[i] = ir.VConstDesc{Str: vc.Str, IsColon: vc.IsColon}
	}
}

// classOf picks a register bank from a variable's joined type.
func classOf(t types.Type) ir.Bank {
	if t.Sp {
		// A possibly-sparse value keeps its CSR representation only in a
		// boxed register; unboxing would force densification.
		return ir.BankV
	}
	if t.IsScalar() {
		switch {
		case types.LeqI(t.I, types.IInt):
			return ir.BankI
		case types.LeqI(t.I, types.IReal):
			return ir.BankF
		case types.LeqI(t.I, types.ICplx):
			return ir.BankC
		}
	}
	return ir.BankV
}

func (g *gen) newSlot(b ir.Bank) slot {
	return slot{bank: b, reg: g.newReg(b)}
}

func (g *gen) newReg(b ir.Bank) int32 {
	switch b {
	case ir.BankF:
		g.nextF++
		return g.nextF - 1
	case ir.BankI:
		g.nextI++
		return g.nextI - 1
	case ir.BankC:
		g.nextC++
		return g.nextC - 1
	default:
		g.nextV++
		return g.nextV - 1
	}
}

func (g *gen) emit(in ir.Instr) int {
	g.prog.Ins = append(g.prog.Ins, in)
	return len(g.prog.Ins) - 1
}

func (g *gen) here() int { return len(g.prog.Ins) }

func (g *gen) mathID(name string) int32 {
	if id, ok := g.mathIDs[name]; ok {
		return id
	}
	id := int32(len(g.mathIDs))
	g.mathIDs[name] = id
	return id
}

func (g *gen) builtinID(name string) int32 {
	if id, ok := g.builtinIDs[name]; ok {
		return id
	}
	id := int32(len(g.builtinIDs))
	g.builtinIDs[name] = id
	return id
}

func (g *gen) callID(name string) int32 {
	if id, ok := g.callIDs[name]; ok {
		return id
	}
	id := int32(len(g.callIDs))
	g.callIDs[name] = id
	return id
}

func (g *gen) vconst(vc VConst) int32 {
	for i, existing := range g.vpool {
		if existing == vc {
			return int32(i)
		}
	}
	g.vpool = append(g.vpool, vc)
	return int32(len(g.vpool) - 1)
}

// annOf returns the inference annotation for an expression.
func (g *gen) annOf(e ast.Expr) types.Type { return g.res.TypeOf(e) }

// --- conversions --------------------------------------------------------------

// toF converts a (bank, reg) value to an F register.
func (g *gen) toF(b ir.Bank, r int32) int32 {
	switch b {
	case ir.BankF:
		return r
	case ir.BankI:
		d := g.newReg(ir.BankF)
		g.emit(ir.Instr{Op: ir.OpItoF, A: d, B: r})
		return d
	case ir.BankC:
		// real part (used only where inference proved realness)
		d := g.newReg(ir.BankF)
		g.emit(ir.Instr{Op: ir.OpCReal, A: d, B: r})
		return d
	default:
		d := g.newReg(ir.BankF)
		g.emit(ir.Instr{Op: ir.OpUnboxF, A: d, B: r})
		return d
	}
}

// toI converts to an I register (value must be provably integral).
func (g *gen) toI(b ir.Bank, r int32) int32 {
	switch b {
	case ir.BankI:
		return r
	case ir.BankF:
		d := g.newReg(ir.BankI)
		g.emit(ir.Instr{Op: ir.OpFtoI, A: d, B: r})
		return d
	case ir.BankC:
		f := g.toF(b, r)
		return g.toI(ir.BankF, f)
	default:
		d := g.newReg(ir.BankI)
		g.emit(ir.Instr{Op: ir.OpUnboxI, A: d, B: r})
		return d
	}
}

// toC converts to a C register.
func (g *gen) toC(b ir.Bank, r int32) int32 {
	switch b {
	case ir.BankC:
		return r
	case ir.BankF:
		d := g.newReg(ir.BankC)
		g.emit(ir.Instr{Op: ir.OpFtoC, A: d, B: r})
		return d
	case ir.BankI:
		d := g.newReg(ir.BankC)
		g.emit(ir.Instr{Op: ir.OpItoC, A: d, B: r})
		return d
	default:
		d := g.newReg(ir.BankC)
		g.emit(ir.Instr{Op: ir.OpUnboxC, A: d, B: r})
		return d
	}
}

// toV boxes a value into a V register.
func (g *gen) toV(b ir.Bank, r int32) int32 {
	switch b {
	case ir.BankV:
		return r
	case ir.BankF:
		d := g.newReg(ir.BankV)
		g.emit(ir.Instr{Op: ir.OpBoxF, A: d, B: r})
		return d
	case ir.BankI:
		d := g.newReg(ir.BankV)
		g.emit(ir.Instr{Op: ir.OpBoxI, A: d, B: r})
		return d
	default:
		d := g.newReg(ir.BankV)
		g.emit(ir.Instr{Op: ir.OpBoxC, A: d, B: r})
		return d
	}
}

// to converts a value to a target bank.
func (g *gen) to(target, b ir.Bank, r int32) int32 {
	switch target {
	case ir.BankF:
		return g.toF(b, r)
	case ir.BankI:
		return g.toI(b, r)
	case ir.BankC:
		return g.toC(b, r)
	default:
		return g.toV(b, r)
	}
}
