// Package regalloc implements linear-scan register allocation
// (Poletto & Sarkar, TOPLAS 1999) over the scalar banks of the IR — the
// same allocator MaJIC re-implemented from tcc for its JIT code
// generator. Spilled virtual registers are rewritten into slot
// loads/stores around each use; the SpillAll mode spills every virtual
// register, reproducing the paper's "no regalloc" ablation ("roughly
// equivalent to compiling with the -g flag").
//
// Only the F, I and C banks are allocated: V registers hold array
// pointers, which on the paper's target machines live in memory anyway.
package regalloc

import (
	"sort"

	"repro/internal/ir"
)

// Options configures allocation.
type Options struct {
	FRegs, IRegs, CRegs int // physical registers per bank
	SpillAll            bool
}

// DefaultOptions models a RISC register file (the UltraSPARC target of
// the paper has 32 integer and 32 floating-point registers): 24
// allocatable FP registers, 24 integer, 8 complex pairs.
func DefaultOptions() Options {
	return Options{FRegs: 24, IRegs: 24, CRegs: 8}
}

type opRef struct {
	field *int32
	bank  ir.Bank
	isDef bool
}

// refs enumerates the scalar register operands of an instruction.
func refs(in *ir.Instr, out []opRef) []opRef {
	add := func(f *int32, b ir.Bank, def bool) {
		out = append(out, opRef{field: f, bank: b, isDef: def})
	}
	switch in.Op {
	// --- branches (uses only) ---
	case ir.OpBrTrueF, ir.OpBrFalseF:
		add(&in.A, ir.BankF, false)
	case ir.OpBrFLt, ir.OpBrFLe, ir.OpBrFEq, ir.OpBrFNe, ir.OpBrFNLt, ir.OpBrFNLe:
		add(&in.A, ir.BankF, false)
		add(&in.B, ir.BankF, false)
	case ir.OpBrILt, ir.OpBrILe, ir.OpBrIEq, ir.OpBrINe:
		add(&in.A, ir.BankI, false)
		add(&in.B, ir.BankI, false)

	// --- moves/consts ---
	case ir.OpFMov:
		add(&in.A, ir.BankF, true)
		add(&in.B, ir.BankF, false)
	case ir.OpIMov:
		add(&in.A, ir.BankI, true)
		add(&in.B, ir.BankI, false)
	case ir.OpCMov:
		add(&in.A, ir.BankC, true)
		add(&in.B, ir.BankC, false)
	case ir.OpFConst:
		add(&in.A, ir.BankF, true)
	case ir.OpIConst:
		add(&in.A, ir.BankI, true)
	case ir.OpCConst:
		add(&in.A, ir.BankC, true)

	// --- conversions ---
	case ir.OpItoF:
		add(&in.A, ir.BankF, true)
		add(&in.B, ir.BankI, false)
	case ir.OpFtoI:
		add(&in.A, ir.BankI, true)
		add(&in.B, ir.BankF, false)
	case ir.OpFtoC:
		add(&in.A, ir.BankC, true)
		add(&in.B, ir.BankF, false)
	case ir.OpItoC:
		add(&in.A, ir.BankC, true)
		add(&in.B, ir.BankI, false)
	case ir.OpBoxF:
		add(&in.B, ir.BankF, false)
	case ir.OpBoxI:
		add(&in.B, ir.BankI, false)
	case ir.OpBoxC:
		add(&in.B, ir.BankC, false)
	case ir.OpUnboxF:
		add(&in.A, ir.BankF, true)
	case ir.OpUnboxI:
		add(&in.A, ir.BankI, true)
	case ir.OpUnboxC:
		add(&in.A, ir.BankC, true)

	// --- F arithmetic ---
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFPow, ir.OpFMod, ir.OpFRem,
		ir.OpFAnd, ir.OpFOr, ir.OpFCmpEq, ir.OpFCmpNe, ir.OpFCmpLt, ir.OpFCmpLe:
		add(&in.A, ir.BankF, true)
		add(&in.B, ir.BankF, false)
		add(&in.C, ir.BankF, false)
	case ir.OpFNeg, ir.OpFNot:
		add(&in.A, ir.BankF, true)
		add(&in.B, ir.BankF, false)
	case ir.OpFMath:
		add(&in.A, ir.BankF, true)
		add(&in.B, ir.BankF, false)
		// C is a function id, not a register

	// --- I arithmetic ---
	case ir.OpIAdd, ir.OpISub, ir.OpIMul, ir.OpIMod:
		add(&in.A, ir.BankI, true)
		add(&in.B, ir.BankI, false)
		add(&in.C, ir.BankI, false)
	case ir.OpINeg:
		add(&in.A, ir.BankI, true)
		add(&in.B, ir.BankI, false)
	case ir.OpICmpEq, ir.OpICmpNe, ir.OpICmpLt, ir.OpICmpLe:
		add(&in.A, ir.BankF, true)
		add(&in.B, ir.BankI, false)
		add(&in.C, ir.BankI, false)

	// --- C arithmetic ---
	case ir.OpCAdd, ir.OpCSub, ir.OpCMul, ir.OpCDiv, ir.OpCPow:
		add(&in.A, ir.BankC, true)
		add(&in.B, ir.BankC, false)
		add(&in.C, ir.BankC, false)
	case ir.OpCNeg, ir.OpCConj:
		add(&in.A, ir.BankC, true)
		add(&in.B, ir.BankC, false)
	case ir.OpCMath:
		add(&in.A, ir.BankC, true)
		add(&in.B, ir.BankC, false)
	case ir.OpCAbs, ir.OpCReal, ir.OpCImag:
		add(&in.A, ir.BankF, true)
		add(&in.B, ir.BankC, false)
	case ir.OpCCmpEq, ir.OpCCmpNe:
		add(&in.A, ir.BankF, true)
		add(&in.B, ir.BankC, false)
		add(&in.C, ir.BankC, false)

	// --- array access ---
	case ir.OpFLd1:
		add(&in.A, ir.BankF, true)
		add(&in.C, ir.BankF, false)
	case ir.OpFLd1U:
		add(&in.A, ir.BankF, true)
		add(&in.C, ir.BankI, false)
	case ir.OpFLd2:
		add(&in.A, ir.BankF, true)
		add(&in.C, ir.BankF, false)
		add(&in.D, ir.BankF, false)
	case ir.OpFLd2U:
		add(&in.A, ir.BankF, true)
		add(&in.C, ir.BankI, false)
		add(&in.D, ir.BankI, false)
	case ir.OpFSt1:
		add(&in.B, ir.BankF, false)
		add(&in.C, ir.BankF, false)
	case ir.OpFSt1U:
		add(&in.B, ir.BankI, false)
		add(&in.C, ir.BankF, false)
	case ir.OpFSt2:
		add(&in.B, ir.BankF, false)
		add(&in.C, ir.BankF, false)
		add(&in.D, ir.BankF, false)
	case ir.OpFSt2U:
		add(&in.B, ir.BankI, false)
		add(&in.C, ir.BankI, false)
		add(&in.D, ir.BankF, false)

	case ir.OpVNewZeros, ir.OpVEnsure:
		add(&in.B, ir.BankI, false)
		add(&in.C, ir.BankI, false)
	case ir.OpVFuseArgF:
		add(&in.B, ir.BankF, false)
	case ir.OpVRows, ir.OpVCols, ir.OpVNumel:
		add(&in.A, ir.BankI, true)
	}
	return out
}

type interval struct {
	vreg     int32
	start    int
	end      int
	phys     int32
	spilled  bool
	slot     int32
	hasSlot  bool
	isParam  bool
	assigned bool
}

// Allocate rewrites p in place from virtual to physical registers,
// inserting spill code. It must be called exactly once per program.
func Allocate(p *ir.Prog, opts Options) {
	if p.Allocated {
		return
	}
	p.Allocated = true
	for _, bank := range []ir.Bank{ir.BankF, ir.BankI, ir.BankC} {
		allocateBank(p, bank, opts)
	}
}

func bankCount(p *ir.Prog, b ir.Bank) *int32 {
	switch b {
	case ir.BankF:
		return &p.NumF
	case ir.BankI:
		return &p.NumI
	default:
		return &p.NumC
	}
}

func bankSlots(p *ir.Prog, b ir.Bank) *int32 {
	switch b {
	case ir.BankF:
		return &p.SlotsF
	case ir.BankI:
		return &p.SlotsI
	default:
		return &p.SlotsC
	}
}

func slotOps(b ir.Bank) (load, store ir.Op) {
	switch b {
	case ir.BankF:
		return ir.OpFLdSlot, ir.OpFStSlot
	case ir.BankI:
		return ir.OpILdSlot, ir.OpIStSlot
	default:
		return ir.OpCLdSlot, ir.OpCStSlot
	}
}

func physCount(opts Options, b ir.Bank) int {
	switch b {
	case ir.BankF:
		return opts.FRegs
	case ir.BankI:
		return opts.IRegs
	default:
		return opts.CRegs
	}
}

func allocateBank(p *ir.Prog, bank ir.Bank, opts Options) {
	nv := int(*bankCount(p, bank))
	if nv == 0 {
		return
	}
	// Build live intervals.
	ivs := make([]*interval, nv)
	touch := func(vreg int32, pos int) {
		iv := ivs[vreg]
		if iv == nil {
			iv = &interval{vreg: vreg, start: pos, end: pos}
			ivs[vreg] = iv
			return
		}
		if pos < iv.start {
			iv.start = pos
		}
		if pos > iv.end {
			iv.end = pos
		}
	}
	for _, b := range p.Params {
		if b.Bank == bank {
			touch(b.Reg, 0)
			// params are live from entry
		}
	}
	// Record the per-position events so loop extension can distinguish
	// iteration-local temporaries from loop-carried values.
	type event struct {
		pos   int
		vreg  int32
		isDef bool
	}
	var events []event
	var scratchRefs []opRef
	for pos := range p.Ins {
		scratchRefs = refs(&p.Ins[pos], scratchRefs[:0])
		// uses happen before defs within one instruction
		for _, r := range scratchRefs {
			if r.bank == bank && !r.isDef {
				touch(*r.field, pos)
				events = append(events, event{pos, *r.field, false})
			}
		}
		for _, r := range scratchRefs {
			if r.bank == bank && r.isDef {
				touch(*r.field, pos)
				events = append(events, event{pos, *r.field, true})
			}
		}
	}
	// Extend intervals across loops (backward branches): a value is live
	// around the backedge only when its first event inside the loop
	// region is a read — either it was defined before the loop, or the
	// previous iteration's value flows in (loop-carried). Temporaries
	// that are always written before being read stay iteration-local,
	// which keeps register pressure sane in unrolled loops.
	type loop struct{ lo, hi int }
	var loops []loop
	for pos, in := range p.Ins {
		var tgt int32 = -1
		switch in.Op {
		case ir.OpJmp:
			tgt = in.A
		case ir.OpBrTrueF, ir.OpBrFalseF, ir.OpBrFalseV, ir.OpBrTrueV,
			ir.OpBrFLt, ir.OpBrFLe, ir.OpBrFEq, ir.OpBrFNe, ir.OpBrFNLt, ir.OpBrFNLe,
			ir.OpBrILt, ir.OpBrILe, ir.OpBrIEq, ir.OpBrINe:
			tgt = in.C
		}
		if tgt >= 0 && int(tgt) <= pos {
			loops = append(loops, loop{lo: int(tgt), hi: pos})
		}
	}
	changed := true
	for changed {
		changed = false
		for _, l := range loops {
			// first event kind per vreg within [lo, hi]
			firstIsUse := map[int32]bool{}
			seen := map[int32]bool{}
			for _, ev := range events {
				if ev.pos < l.lo || ev.pos > l.hi || seen[ev.vreg] {
					continue
				}
				seen[ev.vreg] = true
				firstIsUse[ev.vreg] = !ev.isDef
			}
			for vreg, carried := range firstIsUse {
				iv := ivs[vreg]
				if iv == nil {
					continue
				}
				// Values used after the loop are live through the
				// backedge as well when defined before/inside it.
				usedAfter := iv.end > l.hi && iv.start <= l.hi
				if !carried && !usedAfter {
					continue
				}
				if iv.start > l.lo {
					iv.start = l.lo
					changed = true
				}
				if iv.end < l.hi {
					iv.end = l.hi
					changed = true
				}
			}
		}
	}

	// Linear scan.
	k := physCount(opts, bank)
	var sorted []*interval
	for _, iv := range ivs {
		if iv != nil {
			sorted = append(sorted, iv)
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].start != sorted[j].start {
			return sorted[i].start < sorted[j].start
		}
		return sorted[i].vreg < sorted[j].vreg
	})

	nextSlot := int32(0)
	assignSlot := func(iv *interval) {
		if !iv.hasSlot {
			iv.slot = nextSlot
			iv.hasSlot = true
			nextSlot++
		}
		iv.spilled = true
	}

	if opts.SpillAll {
		for _, iv := range sorted {
			assignSlot(iv)
		}
	} else {
		free := make([]int32, 0, k)
		for i := k - 1; i >= 0; i-- {
			free = append(free, int32(i))
		}
		var active []*interval // sorted by end
		insertActive := func(iv *interval) {
			at := sort.Search(len(active), func(i int) bool { return active[i].end > iv.end })
			active = append(active, nil)
			copy(active[at+1:], active[at:])
			active[at] = iv
		}
		for _, iv := range sorted {
			// expire old intervals
			live := active[:0]
			for _, a := range active {
				if a.end < iv.start {
					free = append(free, a.phys)
				} else {
					live = append(live, a)
				}
			}
			active = live
			if len(free) == 0 {
				// spill the interval with the furthest end
				last := active[len(active)-1]
				if last.end > iv.end {
					iv.phys = last.phys
					iv.assigned = true
					assignSlot(last)
					last.assigned = false
					active = active[:len(active)-1]
					insertActive(iv)
				} else {
					assignSlot(iv)
				}
				continue
			}
			iv.phys = free[len(free)-1]
			free = free[:len(free)-1]
			iv.assigned = true
			insertActive(iv)
		}
	}

	// Rewrite the instruction stream. Scratch registers live above the
	// allocatable set: k, k+1, k+2.
	load, store := slotOps(bank)
	var out []ir.Instr
	newPos := make([]int32, len(p.Ins)+1)
	for pos := range p.Ins {
		newPos[pos] = int32(len(out))
		in := p.Ins[pos]
		scratchRefs = refs(&in, scratchRefs[:0])
		scratchNext := int32(k)
		type defFix struct {
			scratch int32
			slot    int32
		}
		var defs []defFix
		seen := map[int32]int32{} // vreg → scratch already loaded for this instr
		// Sources first: a def of the same vreg must not shadow the load.
		for _, r := range scratchRefs {
			if r.bank != bank || r.isDef {
				continue
			}
			iv := ivs[*r.field]
			if iv == nil {
				continue
			}
			if !iv.spilled {
				*r.field = iv.phys
				continue
			}
			if s, ok := seen[iv.vreg]; ok {
				*r.field = s
				continue
			}
			s := scratchNext
			scratchNext++
			out = append(out, ir.Instr{Op: load, A: s, B: iv.slot})
			seen[iv.vreg] = s
			*r.field = s
		}
		for _, r := range scratchRefs {
			if r.bank != bank || !r.isDef {
				continue
			}
			iv := ivs[*r.field]
			if iv == nil {
				continue
			}
			if !iv.spilled {
				*r.field = iv.phys
				continue
			}
			s := scratchNext
			scratchNext++
			defs = append(defs, defFix{scratch: s, slot: iv.slot})
			*r.field = s
		}
		out = append(out, in)
		for _, d := range defs {
			out = append(out, ir.Instr{Op: store, A: d.slot, B: d.scratch})
		}
	}
	newPos[len(p.Ins)] = int32(len(out))

	// Fix branch targets.
	for i := range out {
		in := &out[i]
		switch in.Op {
		case ir.OpJmp:
			in.A = newPos[in.A]
		case ir.OpBrTrueF, ir.OpBrFalseF, ir.OpBrFalseV, ir.OpBrTrueV,
			ir.OpBrFLt, ir.OpBrFLe, ir.OpBrFEq, ir.OpBrFNe, ir.OpBrFNLt, ir.OpBrFNLe,
			ir.OpBrILt, ir.OpBrILe, ir.OpBrIEq, ir.OpBrINe:
			in.C = newPos[in.C]
		}
	}
	p.Ins = out

	// Fix parameter bindings.
	for i := range p.Params {
		b := &p.Params[i]
		if b.Bank != bank {
			continue
		}
		iv := ivs[b.Reg]
		if iv == nil {
			b.Reg = 0
			continue
		}
		if iv.spilled {
			b.Slot = true
			b.Reg = iv.slot
		} else {
			b.Reg = iv.phys
		}
	}

	*bankCount(p, bank) = int32(k + 3) // physical + 3 scratch
	*bankSlots(p, bank) = nextSlot
}
