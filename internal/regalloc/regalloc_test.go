package regalloc

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/codegen"
	"repro/internal/disambig"
	"repro/internal/infer"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/types"
)

func compileSrc(t *testing.T, src string) *ir.Prog {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := file.Funcs[0]
	g := cfg.Build(fn.Body)
	tbl := disambig.Analyze(g, fn.Ins, nil)
	params := map[string]types.Type{}
	for _, p := range fn.Ins {
		params[p] = types.ScalarOf(types.IReal, types.RangeTop)
	}
	res := infer.Forward(g, params, infer.Opts{})
	prog, err := codegen.Compile(fn, res, tbl, codegen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const manyVars = `
function y = f(a, b)
  c = a + b;
  d = a - b;
  e = a * b;
  g = a / (b + 1);
  h = c + d;
  k = e + g;
  m = h * k;
  n = c * d * e;
  p = m + n + a;
  q = p - h;
  r = q * 2;
  s = r + c;
  t = s - d;
  u = t * e;
  v = u + g;
  w = v - h;
  x = w + k;
  y = x + m + n + p + q + r + s + t + u + v + w;
end`

func TestAllocationBoundsRegisters(t *testing.T) {
	p := compileSrc(t, manyVars)
	virtBefore := p.NumF
	opts := Options{FRegs: 6, IRegs: 4, CRegs: 2}
	Allocate(p, opts)
	if !p.Allocated {
		t.Fatal("Allocated flag not set")
	}
	// every F register reference must now be < FRegs + 3 scratch
	limit := int32(6 + 3)
	for pos, in := range p.Ins {
		for _, r := range fRegsOf(&in) {
			if r >= limit {
				t.Fatalf("instr %d references f%d ≥ limit %d (had %d virtuals)\n%s",
					pos, r, limit, virtBefore, p.Disasm())
			}
		}
	}
	if p.NumF != limit {
		t.Errorf("NumF = %d, want %d", p.NumF, limit)
	}
}

// fRegsOf extracts F-bank register references using the shared metadata.
func fRegsOf(in *ir.Instr) []int32 {
	var out []int32
	for _, r := range refs(in, nil) {
		if r.bank == ir.BankF {
			out = append(out, *r.field)
		}
	}
	return out
}

func TestSpillAllRewritesEverything(t *testing.T) {
	p := compileSrc(t, manyVars)
	before := len(p.Ins)
	opts := DefaultOptions()
	opts.SpillAll = true
	Allocate(p, opts)
	if len(p.Ins) <= before {
		t.Fatalf("spill-all did not grow the program: %d → %d", before, len(p.Ins))
	}
	loads, stores := 0, 0
	for _, in := range p.Ins {
		switch in.Op {
		case ir.OpFLdSlot, ir.OpILdSlot, ir.OpCLdSlot:
			loads++
		case ir.OpFStSlot, ir.OpIStSlot, ir.OpCStSlot:
			stores++
		}
	}
	if loads == 0 || stores == 0 {
		t.Fatalf("spill code missing: %d loads, %d stores", loads, stores)
	}
	if p.SlotsF == 0 {
		t.Error("no F slots allocated")
	}
}

func TestAllocateIdempotent(t *testing.T) {
	p := compileSrc(t, manyVars)
	Allocate(p, DefaultOptions())
	n := len(p.Ins)
	Allocate(p, DefaultOptions()) // second call must be a no-op
	if len(p.Ins) != n {
		t.Error("double allocation modified the program")
	}
}

func TestBranchTargetsStayValid(t *testing.T) {
	p := compileSrc(t, `
function s = f(n)
  s = 0;
  for i = 1:n
    if s > 100
      s = s - 50;
    else
      s = s + i;
    end
  end
end`)
	opts := DefaultOptions()
	opts.SpillAll = true // maximal rewriting stress
	Allocate(p, opts)
	for pos, in := range p.Ins {
		var tgt int32 = -1
		switch in.Op {
		case ir.OpJmp:
			tgt = in.A
		case ir.OpBrTrueF, ir.OpBrFalseF, ir.OpBrFalseV, ir.OpBrTrueV,
			ir.OpBrFLt, ir.OpBrFLe, ir.OpBrFEq, ir.OpBrFNe, ir.OpBrFNLt, ir.OpBrFNLe,
			ir.OpBrILt, ir.OpBrILe, ir.OpBrIEq, ir.OpBrINe:
			tgt = in.C
		}
		if tgt >= 0 && int(tgt) > len(p.Ins) {
			t.Fatalf("instr %d branches to %d beyond end %d", pos, tgt, len(p.Ins))
		}
	}
}

// TestNoLiveIntervalConflict verifies the core allocation invariant: two
// simultaneously live virtual registers never share a physical register.
// We re-derive intervals from the pre-allocation program and simulate.
func TestNoLiveIntervalConflict(t *testing.T) {
	p := compileSrc(t, manyVars)
	// capture virtual→use positions before allocation
	type ref struct {
		pos  int
		vreg int32
		def  bool
	}
	var frefs []ref
	for pos := range p.Ins {
		for _, r := range refs(&p.Ins[pos], nil) {
			if r.bank == ir.BankF {
				frefs = append(frefs, ref{pos, *r.field, r.isDef})
			}
		}
	}
	intervals := map[int32][2]int{}
	for _, r := range frefs {
		iv, ok := intervals[r.vreg]
		if !ok {
			intervals[r.vreg] = [2]int{r.pos, r.pos}
			continue
		}
		if r.pos < iv[0] {
			iv[0] = r.pos
		}
		if r.pos > iv[1] {
			iv[1] = r.pos
		}
		intervals[r.vreg] = iv
	}

	// allocate a copy and read back the mapping through the rewritten
	// program: with no spills (plenty of registers) positions align.
	opts := Options{FRegs: 64, IRegs: 64, CRegs: 8}
	Allocate(p, opts)
	phys := map[int32]int32{}
	i := 0
	for pos := range p.Ins {
		for _, r := range refs(&p.Ins[pos], nil) {
			if r.bank != ir.BankF {
				continue
			}
			v := frefs[i].vreg
			if old, ok := phys[v]; ok && old != *r.field {
				t.Fatalf("vreg %d mapped to both f%d and f%d", v, old, *r.field)
			}
			phys[v] = *r.field
			i++
		}
	}
	// overlapping intervals must not share a register
	vregs := make([]int32, 0, len(intervals))
	for v := range intervals {
		vregs = append(vregs, v)
	}
	for i := 0; i < len(vregs); i++ {
		for j := i + 1; j < len(vregs); j++ {
			a, b := intervals[vregs[i]], intervals[vregs[j]]
			overlap := a[0] <= b[1] && b[0] <= a[1]
			if overlap && phys[vregs[i]] == phys[vregs[j]] {
				t.Fatalf("live ranges of v%d %v and v%d %v share f%d",
					vregs[i], a, vregs[j], b, phys[vregs[i]])
			}
		}
	}
}
