// Package profile aggregates the runtime profiles behind tiered
// recompilation: per-(function, widened-signature) hotness counters fed
// by the interpreter's existing safepoints (function entries and loop
// back-edges), plus the joined observed argument types. The paper's
// range/intrinsic lattice becomes strictly more precise when fed these
// observed profiles instead of static bounds alone — a promotion
// compiles with the join of every signature actually seen, so ranges
// and shapes are as narrow as the workload allows.
//
// The package also hosts the on-stack-replacement state: per loop site,
// one compiled continuation entry published by a background compile job
// and consumed by the interpreter at a back-edge safepoint. OSR entries
// never enter the code repository — they are keyed to one activation
// shape (the live-variable frame at a specific loop) and guarded by the
// function's generation, so redefinition makes them unreachable exactly
// like repository entries.
//
// Concurrency: counters are atomics (one atomic add per safepoint, no
// new branches anywhere hot); the joined signature and the site table
// are mutex-guarded and only touched on the slow paths (observation at
// call entry, promotion, OSR request/publish).
package profile

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/types"
	"repro/internal/vm"
)

// Store is the process-wide profile database, one per code library.
type Store struct {
	mu    sync.Mutex
	funcs map[string]*FuncProfile

	promotions   atomic.Int64
	osrRequests  atomic.Int64
	osrCompiles  atomic.Int64
	osrTransfers atomic.Int64
	// osrDeopts is indexed by DeoptCause, so every deopt is attributed
	// to the specific guard that rejected the transfer.
	osrDeopts     [deoptCauses]atomic.Int64
	budgetExhaust atomic.Int64
}

// DeoptCause names the guard that rejected an OSR transfer.
type DeoptCause uint8

const (
	// DeoptGeneration: the code generation advanced under the loop (the
	// function was redefined while the continuation was compiling).
	DeoptGeneration DeoptCause = iota
	// DeoptBinding: the live-variable frame didn't match the compiled
	// continuation (missing binding or counted/while loop mismatch).
	DeoptBinding
	// DeoptRange: a live value escaped the ranges the continuation was
	// specialised for (Sig.Safe failed).
	DeoptRange
	deoptCauses
)

func (c DeoptCause) String() string {
	switch c {
	case DeoptGeneration:
		return "generation-mismatch"
	case DeoptBinding:
		return "binding-guard"
	case DeoptRange:
		return "range-guard"
	}
	return "unknown"
}

// NewStore returns an empty profile store.
func NewStore() *Store {
	return &Store{funcs: make(map[string]*FuncProfile)}
}

// Func returns the profile for a function at the given repository
// generation, creating it on first sight. A generation change (the
// function was redefined) resets the profile: hotness observed against
// the old body must not promote or OSR-transfer the new one.
func (s *Store) Func(name string, gen uint64) *FuncProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	fp := s.funcs[name]
	if fp == nil || fp.gen != gen {
		fp = &FuncProfile{name: name, gen: gen, sigs: make(map[string]*SigProfile)}
		s.funcs[name] = fp
	}
	return fp
}

// CountPromotion, CountOSRRequest, CountOSRCompile, CountOSRTransfer
// and CountOSRDeopt record tiering events for Stats.
func (s *Store) CountPromotion() { s.promotions.Add(1) }

// CountOSRRequest records an OSR continuation compile being enqueued.
func (s *Store) CountOSRRequest() { s.osrRequests.Add(1) }

// CountOSRCompile records an OSR continuation landing.
func (s *Store) CountOSRCompile() { s.osrCompiles.Add(1) }

// CountOSRTransfer records a successful mid-loop transfer to compiled
// code.
func (s *Store) CountOSRTransfer() { s.osrTransfers.Add(1) }

// CountOSRDeopt records a guarded transfer attempt that fell back to
// the interpreter, attributed to the guard that rejected it.
func (s *Store) CountOSRDeopt(cause DeoptCause) {
	if cause < deoptCauses {
		s.osrDeopts[cause].Add(1)
	}
}

// CountDeoptBudgetExhausted records an OSR site hitting its deopt
// budget after its one adaptive recompile was already spent — the site
// is abandoned (marked Failed) rather than recompiled again.
func (s *Store) CountDeoptBudgetExhausted() { s.budgetExhaust.Add(1) }

// Stats is the tiering surface for /metrics and the benchmark JSON.
type Stats struct {
	Functions    int   `json:"functions"`
	Signatures   int   `json:"signatures"`
	Entries      int64 `json:"entries"`    // function-entry safepoint count
	BackEdges    int64 `json:"back_edges"` // loop back-edge safepoint count
	Promotions   int64 `json:"promotions"`
	OSRRequests  int64 `json:"osr_requests"`
	OSRCompiles  int64 `json:"osr_compiles"`
	OSRTransfers int64 `json:"osr_transfers"`
	OSRDeopts    int64 `json:"osr_deopts"` // sum of the per-cause counters below
	// Per-cause deopt attribution: which guard rejected the transfer.
	OSRDeoptsGeneration int64 `json:"osr_deopts_generation"`
	OSRDeoptsBinding    int64 `json:"osr_deopts_binding"`
	OSRDeoptsRange      int64 `json:"osr_deopts_range"`
	// DeoptBudgetExhausted counts OSR sites abandoned because they kept
	// deopting after their single adaptive recompile.
	DeoptBudgetExhausted int64 `json:"deopt_budget_exhausted"`
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Promotions:           s.promotions.Load(),
		OSRRequests:          s.osrRequests.Load(),
		OSRCompiles:          s.osrCompiles.Load(),
		OSRTransfers:         s.osrTransfers.Load(),
		OSRDeoptsGeneration:  s.osrDeopts[DeoptGeneration].Load(),
		OSRDeoptsBinding:     s.osrDeopts[DeoptBinding].Load(),
		OSRDeoptsRange:       s.osrDeopts[DeoptRange].Load(),
		DeoptBudgetExhausted: s.budgetExhaust.Load(),
	}
	st.OSRDeopts = st.OSRDeoptsGeneration + st.OSRDeoptsBinding + st.OSRDeoptsRange
	s.mu.Lock()
	defer s.mu.Unlock()
	st.Functions = len(s.funcs)
	for _, fp := range s.funcs {
		fp.mu.Lock()
		st.Signatures += len(fp.sigs)
		for _, sp := range fp.sigs {
			st.Entries += sp.entries.Load()
			st.BackEdges += sp.backEdges.Load()
		}
		fp.mu.Unlock()
	}
	return st
}

// FuncProfile aggregates one function's runtime behaviour, partitioned
// by widened signature (one SigProfile per intrinsic-kind tuple).
type FuncProfile struct {
	name string
	gen  uint64
	mu   sync.Mutex
	sigs map[string]*SigProfile
}

// Gen returns the repository generation this profile was built against.
func (fp *FuncProfile) Gen() uint64 { return fp.gen }

// Sig returns the profile bucket for a widened-signature key, creating
// it on first sight.
func (fp *FuncProfile) Sig(key string) *SigProfile {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	sp := fp.sigs[key]
	if sp == nil {
		sp = &SigProfile{key: key}
		fp.sigs[key] = sp
	}
	return sp
}

// SigProfile is the hotness and type record for one (function, widened
// signature) pair — the granularity at which promotion decisions are
// made.
type SigProfile struct {
	key       string
	entries   atomic.Int64 // function-entry count
	backEdges atomic.Int64 // loop back-edge count (all loops, all activations)

	mu       sync.Mutex
	observed types.Signature // join of every exact signature seen

	// promotion state: inflight is the single-flight latch for the
	// background recompile; promotions counts how many landed (each with
	// a wider joined signature than the last); unsupported latches when
	// the compiler rejected the function so promotion stops for good.
	inflight    atomic.Bool
	promotions  atomic.Int32
	unsupported atomic.Bool

	sitesMu sync.Mutex
	sites   map[ast.Stmt]*OSRState
}

// Key returns the widened-signature key this bucket aggregates.
func (sp *SigProfile) Key() string { return sp.key }

// Observe joins one exact call signature into the profile and counts a
// function entry.
func (sp *SigProfile) Observe(sig types.Signature) {
	sp.entries.Add(1)
	sp.mu.Lock()
	if sp.observed == nil {
		sp.observed = append(types.Signature(nil), sig...)
	} else if len(sp.observed) == len(sig) {
		for i := range sig {
			sp.observed[i] = types.Join(sp.observed[i], sig[i])
		}
	}
	sp.mu.Unlock()
}

// Observed returns a copy of the joined observed signature (nil before
// the first Observe).
func (sp *SigProfile) Observed() types.Signature {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return append(types.Signature(nil), sp.observed...)
}

// Entries returns the function-entry count.
func (sp *SigProfile) Entries() int64 { return sp.entries.Load() }

// BackEdges returns the loop back-edge count.
func (sp *SigProfile) BackEdges() int64 { return sp.backEdges.Load() }

// BackEdgeCounter exposes the back-edge counter for the interpreter's
// safepoint hook (one atomic add per back-edge).
func (sp *SigProfile) BackEdgeCounter() *atomic.Int64 { return &sp.backEdges }

// Seed restores persisted counts and the persisted joined signature
// (warm start): the restored hotness means a previously hot signature
// crosses its promotion threshold on the first call of the new
// lifetime.
func (sp *SigProfile) Seed(observed types.Signature, entries, backEdges int64) {
	sp.entries.Store(entries)
	sp.backEdges.Store(backEdges)
	sp.mu.Lock()
	sp.observed = append(types.Signature(nil), observed...)
	sp.mu.Unlock()
}

// MaxPromotions bounds re-promotion churn: each promotion compiles the
// joined signature seen so far, and a call outside that join re-arms
// promotion with a wider join. After this many rounds the signature has
// been widened enough that further narrowing attempts are noise.
const MaxPromotions = 3

// ShouldPromote reports whether this signature just became eligible for
// a background tier-up, and latches the in-flight state when it did.
// The caller must call PromotionDone (on publish) or PromotionFailed
// (on a compiler rejection) exactly once per true return.
func (sp *SigProfile) ShouldPromote(threshold int64) bool {
	if threshold <= 0 || sp.unsupported.Load() {
		return false
	}
	p := sp.promotions.Load()
	if int(p) >= MaxPromotions {
		return false
	}
	// Each round needs another threshold's worth of entries, so one
	// out-of-range call doesn't immediately burn a promotion slot.
	if sp.entries.Load() < threshold*int64(p+1) {
		return false
	}
	return sp.inflight.CompareAndSwap(false, true)
}

// PromotionRound returns how many promotions have landed for this
// signature (the current round number).
func (sp *SigProfile) PromotionRound() int { return int(sp.promotions.Load()) }

// PromotionDone records a landed promotion and re-arms the latch.
func (sp *SigProfile) PromotionDone() {
	sp.promotions.Add(1)
	sp.inflight.Store(false)
}

// PromotionFailed latches the signature as uncompilable; promotion and
// OSR stop trying (the interpreter keeps serving it).
func (sp *SigProfile) PromotionFailed() {
	sp.unsupported.Store(true)
	sp.inflight.Store(false)
}

// Unsupported reports whether the compiler rejected this signature.
func (sp *SigProfile) Unsupported() bool { return sp.unsupported.Load() }

// OSRSite returns the OSR state for a loop statement, creating it on
// first sight. Sites are keyed by AST node identity, which is stable
// for one generation (the library re-registers identical source as a
// no-op, and a real redefinition resets the whole FuncProfile).
func (sp *SigProfile) OSRSite(loop ast.Stmt) *OSRState {
	sp.sitesMu.Lock()
	defer sp.sitesMu.Unlock()
	if sp.sites == nil {
		sp.sites = make(map[ast.Stmt]*OSRState)
	}
	st := sp.sites[loop]
	if st == nil {
		st = &OSRState{}
		sp.sites[loop] = st
	}
	return st
}

// OSRState is the per-loop-site on-stack-replacement machinery: a
// request latch, the published continuation entry, and the failure
// latch that stops retrying sites the compiler rejected.
type OSRState struct {
	// Requested latches the single background compile request.
	Requested atomic.Bool
	// Failed latches sites that can never transfer (nested loop, global
	// variables, uncompilable continuation); the interpreter stops
	// offering them.
	Failed atomic.Bool
	// Deopts counts guarded transfer attempts that fell back; past a
	// small budget the site is recompiled once against the current
	// frame shape, then marked Failed to stop churn.
	Deopts atomic.Int32
	// Recompiles counts budget-triggered re-requests (at most one).
	Recompiles atomic.Int32
	entry      atomic.Pointer[OSREntry]
}

// Entry returns the published continuation (nil until the background
// compile lands).
func (st *OSRState) Entry() *OSREntry { return st.entry.Load() }

// Publish installs a compiled continuation.
func (st *OSRState) Publish(e *OSREntry) { st.entry.Store(e) }

// OSREntry is one compiled loop continuation: code that resumes the
// function from a loop safepoint, parameterized by the live interpreter
// frame (plus, for counted loops, the synthetic induction state).
type OSREntry struct {
	// Params is the formal order the frame is materialized in: the
	// sorted live variable names, then any synthetic loop-state names.
	Params []string
	// Sig is the (widened) signature the continuation was compiled
	// under; a transfer is guarded by Sig.Safe(live values).
	Sig types.Signature
	// Code runs from the loop header to the function's return.
	Code *vm.Compiled
	// Gen is the repository generation the continuation was compiled
	// at; a transfer into another generation's activation is refused.
	Gen uint64
	// ForLoop marks counted-loop continuations, which take the four
	// synthetic induction parameters.
	ForLoop bool
}

// --- persistence -------------------------------------------------------------

// SigDump is the serializable form of one SigProfile: the joined
// observed signature plus the hotness counters. Promotion latches and
// OSR sites are deliberately not persisted — they are re-derived (and
// re-validated) against the new lifetime's code.
type SigDump struct {
	Key       string
	Observed  types.Signature
	Entries   int64
	BackEdges int64
}

// FuncDump is one function's persisted profile.
type FuncDump struct {
	Name string
	Sigs []SigDump
}

// Export captures every function's profile in deterministic order (for
// the repository snapshot).
func (s *Store) Export() []FuncDump {
	s.mu.Lock()
	names := make([]string, 0, len(s.funcs))
	for name := range s.funcs {
		names = append(names, name)
	}
	fps := make([]*FuncProfile, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fps = append(fps, s.funcs[name])
	}
	s.mu.Unlock()

	out := make([]FuncDump, 0, len(fps))
	for i, fp := range fps {
		fd := FuncDump{Name: names[i]}
		fp.mu.Lock()
		keys := make([]string, 0, len(fp.sigs))
		for k := range fp.sigs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sp := fp.sigs[k]
			fd.Sigs = append(fd.Sigs, SigDump{
				Key:       k,
				Observed:  sp.Observed(),
				Entries:   sp.entries.Load(),
				BackEdges: sp.backEdges.Load(),
			})
		}
		fp.mu.Unlock()
		if len(fd.Sigs) > 0 {
			out = append(out, fd)
		}
	}
	return out
}

// Load seeds a function's profile from a snapshot (warm start), at the
// given generation. Existing in-memory state for the function wins —
// the store only seeds functions it has not yet observed.
func (s *Store) Load(name string, gen uint64, sigs []SigDump) {
	s.mu.Lock()
	if _, ok := s.funcs[name]; ok {
		s.mu.Unlock()
		return
	}
	fp := &FuncProfile{name: name, gen: gen, sigs: make(map[string]*SigProfile)}
	s.funcs[name] = fp
	s.mu.Unlock()
	for _, sd := range sigs {
		if sd.Key == "" || len(sd.Observed) == 0 {
			continue
		}
		fp.Sig(sd.Key).Seed(sd.Observed, sd.Entries, sd.BackEdges)
	}
}
