package profile

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/types"
)

func scalarSig(rs ...types.Range) types.Signature {
	sig := make(types.Signature, 0, len(rs))
	for _, r := range rs {
		sig = append(sig, types.ScalarOf(types.IReal, r))
	}
	return sig
}

func TestFuncGenerationReset(t *testing.T) {
	s := NewStore()
	fp := s.Func("f", 1)
	fp.Sig("k").Observe(scalarSig(types.Range{Lo: 1, Hi: 1}))
	if got := s.Func("f", 1); got != fp {
		t.Fatalf("same generation must return the same profile")
	}
	fp2 := s.Func("f", 2)
	if fp2 == fp {
		t.Fatalf("generation change must reset the profile")
	}
	if n := fp2.Sig("k").Entries(); n != 0 {
		t.Fatalf("reset profile has %d entries, want 0", n)
	}
}

func TestObserveJoins(t *testing.T) {
	sp := &SigProfile{key: "k"}
	sp.Observe(scalarSig(types.Range{Lo: 1, Hi: 1}))
	sp.Observe(scalarSig(types.Range{Lo: 5, Hi: 5}))
	obs := sp.Observed()
	if len(obs) != 1 {
		t.Fatalf("observed arity %d, want 1", len(obs))
	}
	want := types.Join(
		types.ScalarOf(types.IReal, types.Range{Lo: 1, Hi: 1}),
		types.ScalarOf(types.IReal, types.Range{Lo: 5, Hi: 5}))
	if obs[0] != want {
		t.Fatalf("observed = %v, want join %v", obs[0], want)
	}
	if sp.Entries() != 2 {
		t.Fatalf("entries = %d, want 2", sp.Entries())
	}
}

func TestShouldPromoteLatch(t *testing.T) {
	sp := &SigProfile{key: "k"}
	sig := scalarSig(types.RangeTop)
	for i := 0; i < 3; i++ {
		sp.Observe(sig)
	}
	if sp.ShouldPromote(4) {
		t.Fatalf("promoted below threshold")
	}
	sp.Observe(sig)
	if !sp.ShouldPromote(4) {
		t.Fatalf("did not promote at threshold")
	}
	// Latched in-flight: no double promotion while the compile runs.
	if sp.ShouldPromote(4) {
		t.Fatalf("promoted while in flight")
	}
	sp.PromotionDone()
	if sp.PromotionRound() != 1 {
		t.Fatalf("round = %d, want 1", sp.PromotionRound())
	}
	// Round 2 needs another threshold's worth of entries.
	if sp.ShouldPromote(4) {
		t.Fatalf("round 2 promoted without fresh entries")
	}
	for i := 0; i < 4; i++ {
		sp.Observe(sig)
	}
	if !sp.ShouldPromote(4) {
		t.Fatalf("round 2 did not promote")
	}
	sp.PromotionFailed()
	if !sp.Unsupported() {
		t.Fatalf("PromotionFailed did not latch unsupported")
	}
	for i := 0; i < 100; i++ {
		sp.Observe(sig)
	}
	if sp.ShouldPromote(4) {
		t.Fatalf("unsupported signature promoted")
	}
}

func TestShouldPromoteMaxRounds(t *testing.T) {
	sp := &SigProfile{key: "k"}
	sig := scalarSig(types.RangeTop)
	for round := 0; round < MaxPromotions; round++ {
		for i := 0; i < 2; i++ {
			sp.Observe(sig)
		}
		if !sp.ShouldPromote(2) {
			t.Fatalf("round %d did not promote", round)
		}
		sp.PromotionDone()
	}
	for i := 0; i < 100; i++ {
		sp.Observe(sig)
	}
	if sp.ShouldPromote(2) {
		t.Fatalf("promoted past MaxPromotions")
	}
	if sp.ShouldPromote(0) {
		t.Fatalf("threshold 0 must disable promotion")
	}
}

func TestShouldPromoteSingleWinner(t *testing.T) {
	sp := &SigProfile{key: "k"}
	sig := scalarSig(types.RangeTop)
	for i := 0; i < 64; i++ {
		sp.Observe(sig)
	}
	var wg sync.WaitGroup
	wins := make(chan bool, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if sp.ShouldPromote(1) {
				wins <- true
			}
		}()
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d concurrent winners, want exactly 1", n)
	}
}

func TestOSRSiteIdentity(t *testing.T) {
	sp := &SigProfile{key: "k"}
	a := ast.Stmt(&ast.While{})
	b := ast.Stmt(&ast.While{})
	if sp.OSRSite(a) != sp.OSRSite(a) {
		t.Fatalf("same loop node must map to the same site")
	}
	if sp.OSRSite(a) == sp.OSRSite(b) {
		t.Fatalf("distinct loop nodes must map to distinct sites")
	}
	st := sp.OSRSite(a)
	if st.Entry() != nil {
		t.Fatalf("fresh site has an entry")
	}
	e := &OSREntry{Gen: 7}
	st.Publish(e)
	if st.Entry() != e {
		t.Fatalf("published entry not visible")
	}
	st.Publish(nil)
	if st.Entry() != nil {
		t.Fatalf("nil publish did not clear the entry")
	}
}

func TestStatsAggregation(t *testing.T) {
	s := NewStore()
	sig := scalarSig(types.RangeTop)
	sp := s.Func("f", 1).Sig("a")
	sp.Observe(sig)
	sp.Observe(sig)
	sp.BackEdgeCounter().Add(10)
	s.Func("g", 1).Sig("b").Observe(sig)
	s.CountPromotion()
	s.CountOSRRequest()
	s.CountOSRCompile()
	s.CountOSRTransfer()
	s.CountOSRDeopt(DeoptGeneration)
	s.CountOSRDeopt(DeoptRange)
	s.CountOSRDeopt(DeoptRange)
	st := s.Stats()
	want := Stats{Functions: 2, Signatures: 2, Entries: 3, BackEdges: 10,
		Promotions: 1, OSRRequests: 1, OSRCompiles: 1, OSRTransfers: 1, OSRDeopts: 3,
		OSRDeoptsGeneration: 1, OSRDeoptsRange: 2}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

func TestExportLoadRoundTrip(t *testing.T) {
	s := NewStore()
	sig := scalarSig(types.Range{Lo: 2, Hi: 9})
	sp := s.Func("f", 3).Sig("key")
	sp.Observe(sig)
	sp.Observe(sig)
	sp.BackEdgeCounter().Add(42)
	// A bucket never observed exports nothing.
	s.Func("empty", 1)

	dump := s.Export()
	if len(dump) != 1 || dump[0].Name != "f" || len(dump[0].Sigs) != 1 {
		t.Fatalf("export = %+v", dump)
	}
	sd := dump[0].Sigs[0]
	if sd.Key != "key" || sd.Entries != 2 || sd.BackEdges != 42 {
		t.Fatalf("sig dump = %+v", sd)
	}

	s2 := NewStore()
	s2.Load("f", 3, dump[0].Sigs)
	got := s2.Func("f", 3).Sig("key")
	if got.Entries() != 2 || got.BackEdges() != 42 {
		t.Fatalf("loaded entries=%d backEdges=%d", got.Entries(), got.BackEdges())
	}
	if obs := got.Observed(); len(obs) != 1 || obs[0] != sig[0] {
		t.Fatalf("loaded observed = %v, want %v", obs, sig)
	}

	// Load never clobbers live in-memory state.
	s2.Load("f", 3, []SigDump{{Key: "key", Observed: sig, Entries: 999, BackEdges: 999}})
	if got.Entries() != 2 {
		t.Fatalf("Load overwrote a live profile")
	}
}

// TestDeoptBudgetExhaustedCounter pins the counter's plumbing: the
// store increments it, Stats carries it, and the JSON surface exposes
// it as deopt_budget_exhausted (the /metrics and BENCH_fig4.json
// field name).
func TestDeoptBudgetExhaustedCounter(t *testing.T) {
	s := NewStore()
	if s.Stats().DeoptBudgetExhausted != 0 {
		t.Fatal("fresh store must report zero budget exhaustions")
	}
	s.CountDeoptBudgetExhausted()
	s.CountDeoptBudgetExhausted()
	if got := s.Stats().DeoptBudgetExhausted; got != 2 {
		t.Fatalf("DeoptBudgetExhausted = %d, want 2", got)
	}
	b, err := json.Marshal(s.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"deopt_budget_exhausted":2`) {
		t.Fatalf("JSON surface missing deopt_budget_exhausted: %s", b)
	}
}
