package bench

import (
	"io"
	"testing"
)

// TestSparseTierSmall runs the whole solver tier at the small preset:
// every solver must complete, the SpMV comparator must agree bitwise
// with the sparse product, and the speedup floor must hold.
func TestSparseTierSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sparse tier takes seconds; skipped in -short")
	}
	rep, err := SparseConfig{Size: Small, Reps: 1, Out: io.Discard}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SpMV) == 0 || len(rep.Solvers) == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	for _, r := range rep.SpMV {
		if !r.Match {
			t.Errorf("spmv %s n=%d: sparse and densified products diverged", r.Operator, r.N)
		}
		if r.DensifiedUS > 0 && r.Speedup < 50 {
			t.Errorf("spmv %s n=%d: speedup %.1fx below the 50x floor", r.Operator, r.N, r.Speedup)
		}
	}
	for _, r := range rep.Solvers {
		if r.TimeUS <= 0 {
			t.Errorf("%s/%s n=%d: no time recorded", r.Solver, r.Operator, r.N)
		}
		if r.Residual != r.Residual {
			t.Errorf("%s/%s n=%d: NaN residual", r.Solver, r.Operator, r.N)
		}
	}
}
