// Sparse iterative-solver workload tier: cg, SOR-style, and QMR-style
// iterations over pentadiagonal and 2-D Poisson operators at sizes the
// dense benchmarks cannot touch (n up to 10^6 — a dense 10^6 x 10^6
// operand would need terabytes). The tier measures two things: the raw
// SpMV advantage over a densified execution of the same product, and
// end-to-end solver throughput through the engine's JIT with sparse
// operands flowing across the call boundary.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// SparseConfig drives the sparse solver tier.
type SparseConfig struct {
	Size Size
	Reps int // best-of repetitions
	Out  io.Writer
	// Threads sets the engine's kernel worker count (0 = process
	// default). Results are identical for every value.
	Threads int
}

// sparseSizes returns the operator dimensions per preset.
func sparseSizes(sz Size) []int {
	switch sz {
	case Small:
		return []int{10_000}
	case Medium:
		return []int{10_000, 100_000}
	default:
		return []int{10_000, 100_000, 1_000_000}
	}
}

// spmvDenseCap bounds the sizes the densified SpMV comparator runs at:
// it streams O(n) work per row (n^2 total), the cost a densified
// operand would force on every product.
const spmvDenseCap = 100_000

// SparseSolverRow is one (solver, operator, n) measurement.
type SparseSolverRow struct {
	Solver   string  `json:"solver"`
	Operator string  `json:"operator"`
	N        int     `json:"n"`
	NNZ      int     `json:"nnz"`
	Iters    int     `json:"iters"`
	TimeUS   int64   `json:"time_us"`
	Residual float64 `json:"residual"`
}

// SpMVRow is one SpMV-vs-densified comparison.
type SpMVRow struct {
	Operator    string  `json:"operator"`
	N           int     `json:"n"`
	NNZ         int     `json:"nnz"`
	SparseUS    int64   `json:"sparse_us"`
	DensifiedUS int64   `json:"densified_us"`
	Speedup     float64 `json:"speedup"`
	// Match records that the sparse product and the densified-path
	// product agreed bit-for-bit.
	Match bool `json:"match"`
}

// SparseReport is the BENCH_sparse.json payload.
type SparseReport struct {
	Size    string            `json:"size"`
	Reps    int               `json:"reps"`
	Threads int               `json:"threads"`
	SpMV    []SpMVRow         `json:"spmv"`
	Solvers []SparseSolverRow `json:"solvers"`
}

func (c SparseConfig) defaults() SparseConfig {
	if c.Reps <= 0 {
		c.Reps = 3
	}
	return c
}

// --- operators ---------------------------------------------------------------

// pentaOperator builds the pentadiagonal SPD operator
// [-1 -1 6 -1 -1] at offsets -2..2 (diagonally dominant).
func pentaOperator(n int) *mat.Value {
	e := make([]float64, n)
	d6 := make([]float64, n)
	for i := range e {
		e[i] = -1
		d6[i] = 6
	}
	a, err := mat.SparseFromDiags(n, n, [][]float64{e, e, d6, e, e}, []int{-2, -1, 0, 1, 2})
	if err != nil {
		panic(err)
	}
	return a
}

// poissonOperator builds the standard 5-point 2-D Poisson stencil on a
// k x k grid (n = k*k): 4 on the diagonal, -1 at offsets ±1 and ±k.
// The ±1 bands keep their grid-boundary zeros as stored entries, which
// also exercises stored-zero semantics at scale.
func poissonOperator(n int) (*mat.Value, int) {
	k := 1
	for (k+1)*(k+1) <= n {
		k++
	}
	n = k * k
	e := make([]float64, n)
	d4 := make([]float64, n)
	up := make([]float64, n)
	lo := make([]float64, n)
	for j := range e {
		e[j] = -1
		d4[j] = 4
		// spdiags convention: the value at A(i, j=i+d) is diags[][j],
		// indexed by column. A(i, i+1) has no east neighbor when column
		// i+1 starts a new grid row (j%k == 0); A(i, i-1) has no west
		// neighbor when row i starts one ((j+1)%k == 0 for j = i-1).
		up[j], lo[j] = -1, -1
		if j%k == 0 {
			up[j] = 0
		}
		if (j+1)%k == 0 {
			lo[j] = 0
		}
	}
	a, err := mat.SparseFromDiags(n, n, [][]float64{e, lo, d4, up, e}, []int{-k, -1, 0, 1, k})
	if err != nil {
		panic(err)
	}
	return a, n
}

// lowerSOROperator builds M = D/w + L for the pentadiagonal operator:
// the structurally lower-triangular preconditioner whose M \ r solve
// dispatches to the level-scheduled sparse triangular kernel.
func lowerSOROperator(n int, w float64) *mat.Value {
	e := make([]float64, n)
	dw := make([]float64, n)
	for i := range e {
		e[i] = -1
		dw[i] = 6 / w
	}
	m, err := mat.SparseFromDiags(n, n, [][]float64{e, e, dw}, []int{-2, -1, 0})
	if err != nil {
		panic(err)
	}
	return m
}

// --- solver programs ---------------------------------------------------------

const cgSparseSrc = `
function s = cgsp(A, b, iters)
  n = size(A, 1);
  x = zeros(n, 1);
  r = b - A*x;
  d = diag(A);
  z = r ./ d;
  p = z;
  rz = dot(r, z);
  for iter = 1:iters
    q = A*p;
    alpha = rz / dot(p, q);
    x = x + alpha*p;
    r = r - alpha*q;
    z = r ./ d;
    rznew = dot(r, z);
    beta = rznew / rz;
    rz = rznew;
    p = z + beta*p;
  end
  s = norm(b - A*x);
end`

const sorSparseSrc = `
function s = sorsp(A, M, b, iters)
  n = size(A, 1);
  x = zeros(n, 1);
  for iter = 1:iters
    r = b - A*x;
    x = x + M \ r;
  end
  s = norm(b - A*x);
end`

const qmrSparseSrc = `
function s = qmrsp(A, b, iters)
  n = size(A, 1);
  x = zeros(n, 1);
  r = b - A*x;
  vt = r;
  rho = norm(vt);
  wt = r;
  xi = norm(wt);
  gam = 1;
  eta = -1;
  ep = 1;
  theta = 0;
  v = zeros(n, 1);
  w = zeros(n, 1);
  p = zeros(n, 1);
  q = zeros(n, 1);
  d = zeros(n, 1);
  sv = zeros(n, 1);
  for iter = 1:iters
    if abs(rho) < 1e-14
      break;
    end
    if abs(xi) < 1e-14
      break;
    end
    v = vt/rho;
    w = wt/xi;
    delta = dot(w, v);
    if abs(delta) < 1e-14
      break;
    end
    if iter == 1
      p = v;
      q = w;
    else
      pcoef = xi*delta/ep;
      qcoef = rho*delta/ep;
      p = v - p*pcoef;
      q = w - q*qcoef;
    end
    pt = A*p;
    ep = dot(q, pt);
    if abs(ep) < 1e-14
      break;
    end
    beta = ep/delta;
    vt = pt - v*beta;
    rho1 = rho;
    rho = norm(vt);
    wt = A'*q - w*beta;
    xi = norm(wt);
    theta1 = theta;
    theta = rho/(gam*abs(beta));
    gam1 = gam;
    gam = 1/sqrt(1 + theta^2);
    eta = -eta*rho1*gam^2/(beta*gam1^2);
    if iter == 1
      d = p*eta;
      sv = pt*eta;
    else
      dc = (theta1*gam)^2;
      d = p*eta + d*dc;
      sv = pt*eta + sv*dc;
    end
    x = x + d;
    r = r - sv;
  end
  s = norm(b - A*x);
end`

// --- measurement -------------------------------------------------------------

// Run executes the sparse tier and returns the report.
func (c SparseConfig) Run() (*SparseReport, error) {
	c = c.defaults()
	threads := c.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	rep := &SparseReport{Size: c.Size.String(), Reps: c.Reps, Threads: threads}

	for _, n := range sparseSizes(c.Size) {
		row, err := c.spmvCompare(n)
		if err != nil {
			return nil, err
		}
		rep.SpMV = append(rep.SpMV, row)
	}

	type job struct {
		solver, operator, src, fn string
		iters                     int
		args                      func(n int) ([]*mat.Value, int)
	}
	jobs := []job{
		{"cg", "penta", cgSparseSrc, "cgsp", 50, func(n int) ([]*mat.Value, int) {
			a := pentaOperator(n)
			return []*mat.Value{a, rhsVector(n)}, n
		}},
		{"cg", "poisson2d", cgSparseSrc, "cgsp", 50, func(n int) ([]*mat.Value, int) {
			a, m := poissonOperator(n)
			return []*mat.Value{a, rhsVector(m)}, m
		}},
		{"sor", "penta", sorSparseSrc, "sorsp", 20, func(n int) ([]*mat.Value, int) {
			a := pentaOperator(n)
			return []*mat.Value{a, lowerSOROperator(n, 1.2), rhsVector(n)}, n
		}},
		{"qmr", "penta", qmrSparseSrc, "qmrsp", 30, func(n int) ([]*mat.Value, int) {
			a := pentaOperator(n)
			return []*mat.Value{a, rhsVector(n)}, n
		}},
	}
	for _, j := range jobs {
		for _, n := range sparseSizes(c.Size) {
			row, err := c.runSolver(j.solver, j.operator, j.src, j.fn, j.iters, n, j.args)
			if err != nil {
				return nil, fmt.Errorf("%s/%s n=%d: %w", j.solver, j.operator, n, err)
			}
			rep.Solvers = append(rep.Solvers, row)
		}
	}
	return rep, nil
}

func (c SparseConfig) runSolver(solver, operator, src, fn string, iters, n int, mkArgs func(int) ([]*mat.Value, int)) (SparseSolverRow, error) {
	e := core.New(core.Options{Tier: core.TierJIT, Seed: 1, Threads: c.Threads})
	defer e.Close()
	if err := e.Define(src); err != nil {
		return SparseSolverRow{}, err
	}
	args, m := mkArgs(n)
	args = append(args, mat.Scalar(float64(iters)))
	row := SparseSolverRow{Solver: solver, Operator: operator, N: m, NNZ: args[0].NNZ(), Iters: iters}

	var res *mat.Value
	best := time.Duration(0)
	for r := 0; r < c.Reps; r++ {
		t0 := time.Now()
		outs, err := e.Call(fn, args, 1)
		el := time.Since(t0)
		if err != nil {
			return row, err
		}
		if res == nil {
			res = outs[0]
		} else if !sameValues([]*mat.Value{res}, outs[:1]) {
			return row, fmt.Errorf("repetition %d diverged", r)
		}
		if best == 0 || el < best {
			best = el
		}
	}
	row.TimeUS = best.Microseconds()
	row.Residual = res.MustScalar()
	return row, nil
}

// spmvCompare times A*x through the sparse kernel against a densified
// execution of the same product (streamed one row at a time, so the
// comparison runs at sizes where materializing the dense operand is
// impossible), and bit-compares the two results.
func (c SparseConfig) spmvCompare(n int) (SpMVRow, error) {
	a := pentaOperator(n)
	x := rhsVector(n)
	row := SpMVRow{Operator: "penta", N: n, NNZ: a.NNZ()}

	var sp *mat.Value
	var err error
	best := time.Duration(0)
	for r := 0; r < c.Reps; r++ {
		t0 := time.Now()
		sp, err = mat.Mul(a, x)
		el := time.Since(t0)
		if err != nil {
			return row, err
		}
		if best == 0 || el < best {
			best = el
		}
	}
	row.SparseUS = best.Microseconds()
	if n > spmvDenseCap {
		row.Match = true // densified path not run at this size
		return row, nil
	}

	// Densified path: the per-row work a dense representation forces —
	// a full-length accumulation over all n columns, explicit zeros
	// included — without allocating the n x n operand. One rep: the
	// result decides correctness, the time only needs the right order
	// of magnitude.
	rows, _, rowPtr, colIdx, val := mat.SparseCSR(a)
	dense := mat.NewRealUninit(rows, 1)
	dre := dense.Re()
	xre := x.Re()
	scratch := make([]float64, n)
	t0 := time.Now()
	for i := 0; i < rows; i++ {
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			scratch[colIdx[k]] = val[k]
		}
		acc := 0.0
		for j := 0; j < n; j++ {
			t := xre[j]
			acc += t * scratch[j]
		}
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			scratch[colIdx[k]] = 0
		}
		dre[i] = acc
	}
	row.DensifiedUS = time.Since(t0).Microseconds()
	row.Match = sameValues([]*mat.Value{sp}, []*mat.Value{dense})
	if row.SparseUS > 0 {
		row.Speedup = float64(row.DensifiedUS) / float64(row.SparseUS)
	}
	return row, nil
}

// Report runs the tier and prints a results-table view.
func (c SparseConfig) Report() (*SparseReport, error) {
	c = c.defaults()
	rep, err := c.Run()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(c.Out, "Sparse solver tier: size %s, reps %d, kernel threads %d\n", rep.Size, rep.Reps, rep.Threads)
	fmt.Fprintln(c.Out, "==================================================================")
	fmt.Fprintf(c.Out, "%-10s %10s %10s %12s %12s %8s\n", "spmv", "n", "nnz", "sparse", "densified", "speedup")
	for _, r := range rep.SpMV {
		den, spd := "-", "-"
		if r.DensifiedUS > 0 {
			den = fmt.Sprintf("%dus", r.DensifiedUS)
			spd = fmt.Sprintf("%.0fx", r.Speedup)
		}
		match := ""
		if !r.Match {
			match = "  MISMATCH"
		}
		fmt.Fprintf(c.Out, "%-10s %10d %10d %11dus %12s %8s%s\n", r.Operator, r.N, r.NNZ, r.SparseUS, den, spd, match)
	}
	fmt.Fprintln(c.Out, "------------------------------------------------------------------")
	fmt.Fprintf(c.Out, "%-10s %-10s %10s %10s %7s %12s %14s\n", "solver", "operator", "n", "nnz", "iters", "time", "residual")
	for _, r := range rep.Solvers {
		fmt.Fprintf(c.Out, "%-10s %-10s %10d %10d %7d %11dus %14.6e\n",
			r.Solver, r.Operator, r.N, r.NNZ, r.Iters, r.TimeUS, r.Residual)
	}
	return rep, nil
}
