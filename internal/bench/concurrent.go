// Concurrent-clients benchmark: M goroutines firing paper workloads at
// one shared engine repository. This is the workload the async
// compilation service exists for — the ROADMAP's "heavy concurrent
// traffic" scenario — and it reports the two numbers that matter for
// it: first-call latency (how long a cold client stalls on the compile)
// and steady-state throughput (aggregate calls/sec once the repository
// is warm). With AsyncCompile, concurrent cold misses on one signature
// coalesce into a single-flight compile job; without it, the engine
// serializes compilation inline on the first caller.
package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// ConcurrentSet lists the Table 1 benchmarks used for the concurrent
// workload: deterministic, argument-taking programs with no globals and
// no output, so concurrent invocations are independent.
var ConcurrentSet = []string{"fibonacci", "adapt", "cgopt", "sor", "qmr"}

// ConcurrentConfig drives the concurrent-clients benchmark.
type ConcurrentConfig struct {
	Size    Size
	Clients int // M concurrent goroutines (default 8)
	// Async enables the background compilation service on the shared
	// engine; Workers bounds its pool (0 = GOMAXPROCS).
	Async   bool
	Workers int
	// CallsPerClient is the steady-state call count per client after
	// the timed first call (default 20).
	CallsPerClient int
	// Benchmarks selects a subset of ConcurrentSet (default: all).
	Benchmarks []string
	Out        io.Writer
	// Fuse enables elementwise fusion on the shared engine, which also
	// turns on the process-wide recycling buffer pool — the race
	// detector's stress case for pooled buffers crossing goroutines.
	Fuse bool
	// Threads sets the shared engine's dense-kernel worker count
	// (0 = process default): client goroutines then fan work out to the
	// internal/parallel pool from inside their calls, the nested-
	// parallelism stress case for the worker pool.
	Threads int
}

// ConcurrentRow is one benchmark's result.
type ConcurrentRow struct {
	Bench        string
	FirstCallMin time.Duration // best cold-start latency across clients
	FirstCallMax time.Duration // worst cold-start stall across clients
	Steady       time.Duration // wall time of the steady-state phase
	TotalCalls   int           // calls in the steady-state phase
	Throughput   float64       // steady-state calls/sec, all clients
	Inserts      int           // repository inserts (single-flight: 1 per signature)
	CompileJobs  int           // async compile jobs executed (0 in sync mode)
	Deduped      int           // async requests coalesced onto in-flight jobs
}

func (c ConcurrentConfig) defaults() ConcurrentConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.CallsPerClient <= 0 {
		c.CallsPerClient = 20
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = ConcurrentSet
	}
	return c
}

// Run executes the concurrent workload and returns one row per
// benchmark.
func (c ConcurrentConfig) Run() ([]ConcurrentRow, error) {
	c = c.defaults()
	rows := make([]ConcurrentRow, 0, len(c.Benchmarks))
	for _, name := range c.Benchmarks {
		b := ByName(name)
		if b == nil {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		row, err := c.runOne(b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (c ConcurrentConfig) runOne(b *Benchmark) (ConcurrentRow, error) {
	e := core.New(core.Options{
		Tier:           core.TierJIT,
		AsyncCompile:   c.Async,
		CompileWorkers: c.Workers,
		Seed:           1,
		FuseElemwise:   c.Fuse,
		Threads:        c.Threads,
	})
	defer e.Close()
	if err := e.Define(b.Source(c.Size)); err != nil {
		return ConcurrentRow{}, err
	}
	args := b.Args(c.Size)

	type clientResult struct {
		first time.Duration
		outs  []*mat.Value
		err   error
	}
	results := make([]clientResult, c.Clients)

	// Phase 1: cold start. Every client fires the same signature at an
	// empty repository simultaneously — the single-flight stress case.
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < c.Clients; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			t0 := time.Now()
			outs, err := e.Call(b.Fn, args, 1)
			results[i] = clientResult{first: time.Since(t0), outs: outs, err: err}
		}(i)
	}
	start.Done()
	done.Wait()
	row := ConcurrentRow{Bench: b.Name, FirstCallMin: time.Hour}
	for i, r := range results {
		if r.err != nil {
			return row, fmt.Errorf("client %d first call: %w", i, r.err)
		}
		if r.first < row.FirstCallMin {
			row.FirstCallMin = r.first
		}
		if r.first > row.FirstCallMax {
			row.FirstCallMax = r.first
		}
		// Concurrent clients running identical code on identical args
		// must agree exactly.
		if !sameValues(r.outs, results[0].outs) {
			return row, fmt.Errorf("client %d result diverged from client 0", i)
		}
	}
	e.Drain() // all background jobs published; steady state from here

	// Phase 2: steady state. Timed burst of warm calls from every
	// client against the now-populated repository.
	errs := make([]error, c.Clients)
	var start2, done2 sync.WaitGroup
	start2.Add(1)
	t0 := time.Now()
	for i := 0; i < c.Clients; i++ {
		done2.Add(1)
		go func(i int) {
			defer done2.Done()
			start2.Wait()
			for k := 0; k < c.CallsPerClient; k++ {
				if _, err := e.Call(b.Fn, args, 1); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	start2.Done()
	done2.Wait()
	row.Steady = time.Since(t0)
	for i, err := range errs {
		if err != nil {
			return row, fmt.Errorf("client %d steady state: %w", i, err)
		}
	}
	row.TotalCalls = c.Clients * c.CallsPerClient
	if row.Steady > 0 {
		row.Throughput = float64(row.TotalCalls) / row.Steady.Seconds()
	}
	st := e.Repo().Stats()
	row.Inserts = st.Inserts
	qs := e.QueueStats()
	row.CompileJobs = qs.Submitted
	row.Deduped = qs.Deduped
	return row, nil
}

// Report runs the workload and prints a results_medium.txt-style table.
func (c ConcurrentConfig) Report() error {
	c = c.defaults()
	mode := "sync (inline compile)"
	if c.Async {
		workers := c.Workers
		if workers <= 0 {
			mode = "async (workers=GOMAXPROCS)"
		} else {
			mode = fmt.Sprintf("async (workers=%d)", workers)
		}
	}
	threads := c.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	fmt.Fprintf(c.Out, "Concurrent clients: %d goroutines x shared JIT repository, %s, size %s, kernel threads %d\n",
		c.Clients, mode, c.Size, threads)
	fmt.Fprintln(c.Out, "=========================================================================================")
	fmt.Fprintf(c.Out, "%-10s %14s %14s %14s %12s %8s %6s %8s\n",
		"benchmark", "first(min)", "first(max)", "steady", "calls/s", "inserts", "jobs", "deduped")
	fmt.Fprintln(c.Out, "-----------------------------------------------------------------------------------------")
	rows, err := c.Run()
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(c.Out, "%-10s %14s %14s %14s %12.0f %8d %6d %8d\n",
			r.Bench,
			r.FirstCallMin.Round(time.Microsecond),
			r.FirstCallMax.Round(time.Microsecond),
			r.Steady.Round(time.Microsecond),
			r.Throughput, r.Inserts, r.CompileJobs, r.Deduped)
	}
	fmt.Fprintln(c.Out, `
first(min/max): cold-start latency across clients hitting an empty repository at once
  (async+single-flight: one compile serves all clients; sync: first caller compiles inline);
steady:         wall time for clients x calls-per-client warm calls through the locator;
inserts:        repository inserts (single-flight keeps this at one per compiled signature);
jobs/deduped:   background compile jobs executed / concurrent requests coalesced.`)
	return nil
}

// sameValues reports exact equality of two result lists (identical
// compiled code on identical deterministic args must agree bit-for-bit,
// whichever client computed it).
func sameValues(a, b []*mat.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Rows() != y.Rows() || x.Cols() != y.Cols() || x.Kind() != y.Kind() {
			return false
		}
		xr, yr := x.Re(), y.Re()
		for k := range xr {
			if xr[k] != yr[k] {
				return false
			}
		}
	}
	return true
}
