package bench_test

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/parser"
)

// TestSourcesParse checks every benchmark at every preset is valid in
// the supported subset.
func TestSourcesParse(t *testing.T) {
	for _, b := range bench.All() {
		for _, sz := range []bench.Size{bench.Small, bench.Medium, bench.Paper} {
			if _, err := parser.Parse(b.Source(sz)); err != nil {
				t.Errorf("%s/%s: parse: %v", b.Name, sz, err)
			}
		}
	}
}

// TestTable1Inventory checks the benchmark list matches Table 1.
func TestTable1Inventory(t *testing.T) {
	if got := len(bench.All()); got != 16 {
		t.Fatalf("have %d benchmarks, Table 1 lists 16", got)
	}
	for _, name := range []string{
		"adapt", "cgopt", "crnich", "dirich", "finedif", "galrkn", "icn",
		"mei", "orbec", "orbrk", "qmr", "sor", "ackermann", "fractal",
		"mandel", "fibonacci",
	} {
		if bench.ByName(name) == nil {
			t.Errorf("missing benchmark %q", name)
		}
	}
}

func runBench(t *testing.T, b *bench.Benchmark, opts core.Options, sz bench.Size) *mat.Value {
	t.Helper()
	opts.Seed = 424242
	e := core.New(opts)
	if err := e.Define(b.Source(sz)); err != nil {
		t.Fatalf("%s: define: %v", b.Name, err)
	}
	e.Precompile()
	outs, err := e.Call(b.Fn, b.Args(sz), 1)
	if err != nil {
		t.Fatalf("%s [%s]: %v", b.Name, opts.Tier, err)
	}
	return outs[0]
}

// TestBenchmarksAgreeAcrossTiers is the benchmark-level differential
// test: every tier (and both platform profiles) must reproduce the
// interpreter's checksum at the small preset.
func TestBenchmarksAgreeAcrossTiers(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			want := runBench(t, b, core.Options{Tier: core.TierInterp}, bench.Small)
			ws, err := want.Scalar()
			if err != nil {
				t.Fatalf("checksum is not scalar: %dx%d", want.Rows(), want.Cols())
			}
			if math.IsNaN(ws) || math.IsInf(ws, 0) {
				t.Fatalf("checksum is %g", ws)
			}
			for _, tier := range []core.Tier{core.TierMCC, core.TierFalcon, core.TierJIT, core.TierSpec} {
				for _, plat := range []core.Platform{core.PlatformSPARC, core.PlatformMIPS} {
					got := runBench(t, b, core.Options{Tier: tier, Platform: plat}, bench.Small)
					gs, err := got.Scalar()
					if err != nil {
						t.Fatalf("[%s/%s] non-scalar result", tier, plat)
					}
					if !close(ws, gs) {
						t.Errorf("[%s/%s] checksum %.15g, want %.15g", tier, plat, gs, ws)
					}
				}
			}
		})
	}
}

// TestBenchmarksUnderAblations runs the Figure 7 ablation switches over
// the full suite at the small preset.
func TestBenchmarksUnderAblations(t *testing.T) {
	ablations := []core.Options{
		{Tier: core.TierJIT, DisableRanges: true},
		{Tier: core.TierJIT, DisableMinShapes: true},
		{Tier: core.TierJIT, SpillAll: true},
		{Tier: core.TierJIT, DisableInlining: true},
		{Tier: core.TierJIT, FuseElemwise: true},
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			want := runBench(t, b, core.Options{Tier: core.TierInterp}, bench.Small)
			ws, _ := want.Scalar()
			for _, abl := range ablations {
				got := runBench(t, b, abl, bench.Small)
				gs, _ := got.Scalar()
				if !close(ws, gs) {
					t.Errorf("%+v: checksum %.15g, want %.15g", abl, gs, ws)
				}
			}
		})
	}
}

func close(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= 1e-6*(1+math.Max(math.Abs(a), math.Abs(b)))
}
