// Package bench defines the 16 MATLAB benchmarks of the paper's
// Table 1, with size presets: "paper" reproduces the published problem
// sizes, "medium" scales them to keep full harness runs in seconds, and
// "small" is for correctness tests. Each benchmark program is written
// from scratch in the supported MATLAB subset, following the cited
// origins (Mathews' and Garcia's numerical-methods texts, the Templates
// book, and the authors' own generators).
package bench

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Size selects a problem-size preset.
type Size int

const (
	Small Size = iota
	Medium
	Paper
)

// ParseSize converts a preset name.
func ParseSize(s string) (Size, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("unknown size preset %q (small|medium|paper)", s)
}

func (s Size) String() string {
	return [...]string{"small", "medium", "paper"}[s]
}

// Category groups benchmarks the way §3.1 does.
type Category int

const (
	CatScalar  Category = iota // Fortran-like scalar codes
	CatBuiltin                 // dominated by built-in library functions
	CatArray                   // small fixed-size vector/matrix codes
	CatRecursive
)

func (c Category) String() string {
	return [...]string{"scalar", "builtin", "array", "recursive"}[c]
}

// Benchmark is one Table 1 entry.
type Benchmark struct {
	Name     string
	Origin   string // source citation from Table 1
	Desc     string
	Category Category

	// Paper metadata (Table 1 columns).
	PaperSize    string
	PaperLines   int
	PaperRuntime float64 // seconds, MATLAB 6 on the 400MHz UltraSPARC

	// Fn is the entry function name; Source returns the program text
	// for a preset; Args returns the (deterministic) argument values.
	Fn     string
	Source func(sz Size) string
	Args   func(sz Size) []*mat.Value
}

// noArgs is the arg builder for niladic benchmarks.
func noArgs(Size) []*mat.Value { return nil }

// pick returns the preset-indexed value.
func pick[T any](sz Size, small, medium, paper T) T {
	switch sz {
	case Small:
		return small
	case Medium:
		return medium
	default:
		return paper
	}
}

// All returns the benchmark list in the paper's Table 1 order.
func All() []*Benchmark { return allBenchmarks }

// ByName returns a benchmark or nil.
func ByName(name string) *Benchmark {
	for _, b := range allBenchmarks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// --- deterministic matrix builders for parameterized benchmarks ---------------

// spdMatrix builds a symmetric positive-definite, diagonally dominant
// n x n matrix (the usual test system for the iterative solvers).
func spdMatrix(n int) *mat.Value {
	a := mat.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := 1.0 / float64(1+absInt(i-j))
			if i == j {
				v += float64(n) / 4
			}
			a.SetAt(i, j, v)
		}
	}
	return a
}

// rhsVector builds a deterministic right-hand side.
func rhsVector(n int) *mat.Value {
	b := mat.New(n, 1)
	for i := 0; i < n; i++ {
		b.Re()[i] = math.Sin(float64(i+1)) + 1.5
	}
	return b
}

// seedLandscape builds mei's n x m seed height field.
func seedLandscape(n, m int) *mat.Value {
	h := mat.New(n, m)
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			h.SetAt(i, j, math.Sin(float64(i+1)*0.7)+math.Cos(float64(j+1)*1.3))
		}
	}
	return h
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
