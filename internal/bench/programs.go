package bench

import (
	"fmt"
	"strings"

	"repro/internal/mat"
)

// withArgs substitutes each '@' placeholder in src with the
// corresponding value (the sources are full of '%' comments, which
// rules out Sprintf verbs).
func withArgs(src string, vals ...any) string {
	for _, v := range vals {
		src = strings.Replace(src, "@", fmt.Sprint(v), 1)
	}
	return src
}

// The benchmark programs. Niladic benchmarks carry their problem size
// as internal constants (filled per preset), matching how the original
// scripts fixed Table 1's problem sizes; solver-style benchmarks take
// their system as parameters, which is exactly where the paper's
// speculator loses to JIT inference (Table 2: qmr, mei, icn).
var allBenchmarks = []*Benchmark{
	{
		Name: "adapt", Origin: "Mathews [14]", Desc: "adaptive quadrature",
		Category: CatArray, PaperSize: "approx. 2500", PaperLines: 81, PaperRuntime: 5.24,
		Fn: "adapt",
		Source: func(sz Size) string {
			return `
function q = adapt(a0, b0, tol0)
  % Adaptive Simpson quadrature with an explicit, dynamically growing
  % interval stack (the paper's "large and dynamically growing array").
  sa = zeros(1, 1); sb = zeros(1, 1); st = zeros(1, 1);
  sa(1) = a0; sb(1) = b0; st(1) = tol0;
  top = 1;
  q = 0;
  while top > 0
    a = sa(top); b = sb(top); tol = st(top);
    top = top - 1;
    m = (a + b)/2;
    fa = fhump(a); fb = fhump(b); fm = fhump(m);
    whole = (b - a)*(fa + 4*fm + fb)/6;
    ml = (a + m)/2; mr = (m + b)/2;
    fml = fhump(ml); fmr = fhump(mr);
    left = (m - a)*(fa + 4*fml + fm)/6;
    rght = (b - m)*(fm + 4*fmr + fb)/6;
    if abs(left + rght - whole) < 15*tol
      q = q + left + rght;
    else
      top = top + 1; sa(top) = a; sb(top) = m; st(top) = tol/2;
      top = top + 1; sa(top) = m; sb(top) = b; st(top) = tol/2;
    end
  end
end
function y = fhump(x)
  y = 1/((x - 0.3)^2 + 0.01) + 1/((x - 0.9)^2 + 0.04) - 6;
end`
		},
		Args: func(sz Size) []*mat.Value {
			tol := pick(sz, 1e-4, 1e-8, 1e-10)
			return []*mat.Value{mat.Scalar(0), mat.Scalar(1), mat.Scalar(tol)}
		},
	},
	{
		Name: "cgopt", Origin: "Templates [3]", Desc: "conjugate gradient w. diagonal preconditioner",
		Category: CatBuiltin, PaperSize: "420 x 420", PaperLines: 38, PaperRuntime: 0.43,
		Fn: "cgopt",
		Source: func(sz Size) string {
			iters := pick(sz, 20, 120, 200)
			return withArgs(`
function s = cgopt(A, b)
  n = size(A, 1);
  x = zeros(n, 1);
  r = b - A*x;
  d = diag(A);
  z = r ./ d;
  p = z;
  rz = dot(r, z);
  for iter = 1:@
    q = A*p;
    alpha = rz / dot(p, q);
    x = x + alpha*p;
    r = r - alpha*q;
    if sqrt(dot(r, r)) < 1e-12
      break;
    end
    z = r ./ d;
    rznew = dot(r, z);
    beta = rznew / rz;
    rz = rznew;
    p = z + beta*p;
  end
  s = sum(x) + sqrt(dot(r, r));
end`, iters)
		},
		Args: func(sz Size) []*mat.Value {
			n := pick(sz, 60, 420, 420)
			return []*mat.Value{spdMatrix(n), rhsVector(n)}
		},
	},
	{
		Name: "crnich", Origin: "Mathews [14]", Desc: "Crank-Nicholson heat equation solver",
		Category: CatScalar, PaperSize: "321 x 321", PaperLines: 40, PaperRuntime: 16.33,
		Fn: "crnich",
		Source: func(sz Size) string {
			n := pick(sz, 41, 161, 321)
			m := pick(sz, 41, 161, 321)
			return withArgs(`
function s = crnich()
  % Crank-Nicholson for u_t = c^2 u_xx with a Thomas-algorithm
  % tridiagonal solve per time step (Mathews & Fink, program 10.2).
  n = @;
  m = @;
  c = 1;
  h = 1/(n - 1);
  k = 1/(m - 1);
  r = c^2*k/h^2;
  s1 = 2 + 2/r;
  s2 = 2/r - 2;
  U = zeros(n, m);
  for i = 2:n-1
    U(i,1) = sin(pi*h*(i-1)) + sin(3*pi*h*(i-1));
  end
  Vd = zeros(1, n);
  Va = zeros(1, n - 1);
  Vb = zeros(1, n);
  Vc = zeros(1, n - 1);
  X = zeros(1, n);
  for i = 1:n-1
    Va(i) = -1;
    Vc(i) = -1;
  end
  for i = 1:n
    Vb(i) = s1;
  end
  Vb(1) = 1; Vb(n) = 1;
  Va(n-1) = 0; Vc(1) = 0;
  for j = 2:m
    % right-hand side
    Vd(1) = 0;
    Vd(n) = 0;
    for i = 2:n-1
      Vd(i) = U(i-1,j-1) + U(i+1,j-1) + s2*U(i,j-1);
    end
    % Thomas algorithm
    for i = 2:n
      mult = Va(i-1)/Vb(i-1);
      Vb(i) = Vb(i) - mult*Vc(i-1);
      Vd(i) = Vd(i) - mult*Vd(i-1);
    end
    X(n) = Vd(n)/Vb(n);
    for i = n-1:-1:1
      X(i) = (Vd(i) - Vc(i)*X(i+1))/Vb(i);
    end
    for i = 1:n
      U(i,j) = X(i);
    end
    % restore the factored diagonal for the next step
    for i = 1:n
      Vb(i) = s1;
    end
    Vb(1) = 1; Vb(n) = 1;
  end
  s = 0;
  for i = 1:n
    s = s + U(i,m);
  end
end`, n, m)
		},
		Args: noArgs,
	},
	{
		Name: "dirich", Origin: "Mathews [14]", Desc: "Dirichlet solution to Laplace's equation",
		Category: CatScalar, PaperSize: "134 x 134", PaperLines: 34, PaperRuntime: 277.89,
		Fn: "dirich",
		Source: func(sz Size) string {
			n := pick(sz, 34, 80, 134)
			tol := pick(sz, 1.0, 0.2, 0.1)
			return withArgs(`
function s = dirich()
  % SOR iteration for Laplace's equation on a square (Mathews & Fink,
  % program 10.4: dirich).
  n = @;
  tol = @;
  f1 = 100; f2 = 0; f3 = 0; f4 = 0;
  U = zeros(n, n);
  ave = (f1 + f2 + f3 + f4)/4;
  for i = 2:n-1
    for j = 2:n-1
      U(i,j) = ave;
    end
  end
  for i = 1:n
    U(i,1) = f3;
    U(i,n) = f4;
  end
  for j = 1:n
    U(1,j) = f1;
    U(n,j) = f2;
  end
  w = 4/(2 + sqrt(4 - (cos(pi/(n-1)) + cos(pi/(n-1)))^2));
  err = 1;
  while err > tol
    err = 0;
    for j = 2:n-1
      for i = 2:n-1
        relx = w*(U(i,j+1) + U(i,j-1) + U(i+1,j) + U(i-1,j) - 4*U(i,j))/4;
        U(i,j) = U(i,j) + relx;
        if err <= abs(relx)
          err = abs(relx);
        end
      end
    end
  end
  s = 0;
  for i = 1:n
    for j = 1:n
      s = s + U(i,j);
    end
  end
end`, n, tol)
		},
		Args: noArgs,
	},
	{
		Name: "finedif", Origin: "Mathews [14]", Desc: "Finite difference solution to the wave equation",
		Category: CatScalar, PaperSize: "1000 x 1000", PaperLines: 21, PaperRuntime: 57.81,
		Fn: "finedif",
		Source: func(sz Size) string {
			n := pick(sz, 60, 400, 1000)
			m := pick(sz, 60, 400, 1000)
			return withArgs(`
function s = finedif()
  % Explicit finite differences for the wave equation (Mathews & Fink,
  % program 10.1: finedif).
  n = @;
  m = @;
  h = 1/(n - 1);
  k = 1/(m - 1);
  c = 1;
  r = c*k/h;
  r2 = r^2;
  r22 = r^2/2;
  s1 = 1 - r^2;
  s2 = 2 - 2*r^2;
  U = zeros(n, m);
  for i = 2:n-1
    x = h*(i - 1);
    U(i,1) = sin(pi*x);
    U(i,2) = s1*sin(pi*x) + r22*(sin(pi*h*i) + sin(pi*h*(i-2)));
  end
  for j = 3:m
    for i = 2:n-1
      U(i,j) = s2*U(i,j-1) + r2*(U(i-1,j-1) + U(i+1,j-1)) - U(i,j-2);
    end
  end
  s = 0;
  for i = 1:n
    s = s + U(i,m);
  end
end`, n, m)
		},
		Args: noArgs,
	},
	{
		Name: "galrkn", Origin: "Garcia [12]", Desc: "Galerkin's method (finite element method)",
		Category: CatScalar, PaperSize: "40 x 40", PaperLines: 43, PaperRuntime: 8.02,
		Fn: "galrkn",
		Source: func(sz Size) string {
			sweeps := pick(sz, 5, 60, 120)
			return withArgs(`
function s = galrkn(n)
  % Galerkin finite elements for -u'' = f on [0,1] with linear
  % elements: assembly by per-element quadrature loops, then a solve.
  nq = 8;
  K = zeros(n, n);
  F = zeros(n, 1);
  h = 1/(n + 1);
  s = 0;
  for sweep = 1:@
    for e = 1:n+1
      x0 = (e - 1)*h;
      k11 = 0; k12 = 0; k22 = 0;
      f1 = 0; f2 = 0;
      for qp = 1:nq
        xi = (qp - 0.5)/nq;
        x = x0 + xi*h;
        w = h/nq;
        d1 = -1/h;
        d2 = 1/h;
        b1 = 1 - xi;
        b2 = xi;
        fx = sin(pi*x)*(pi^2) + (sweep - 1)*0;
        k11 = k11 + w*d1*d1;
        k12 = k12 + w*d1*d2;
        k22 = k22 + w*d2*d2;
        f1 = f1 + w*fx*b1;
        f2 = f2 + w*fx*b2;
      end
      il = e - 1;
      ir = e;
      if il >= 1
        K(il,il) = K(il,il) + k11;
        F(il) = F(il) + f1;
      end
      if ir <= n
        K(ir,ir) = K(ir,ir) + k22;
        F(ir) = F(ir) + f2;
      end
      if il >= 1
        if ir <= n
          K(il,ir) = K(il,ir) + k12;
          K(ir,il) = K(ir,il) + k12;
        end
      end
    end
    u = K \ F;
    s = s + sum(u);
    for i = 1:n
      for j = 1:n
        K(i,j) = 0;
      end
      F(i) = 0;
    end
  end
end`, sweeps)
		},
		Args: func(sz Size) []*mat.Value {
			return []*mat.Value{mat.Scalar(40)}
		},
	},
	{
		Name: "icn", Origin: "R. Bramley", Desc: "Cholesky factorization",
		Category: CatScalar, PaperSize: "400 x 400", PaperLines: 29, PaperRuntime: 7.72,
		Fn: "icn",
		Source: func(sz Size) string {
			return `
function s = icn(A)
  % LDL' Cholesky-family factorization with Fortran-77-style loops.
  n = size(A, 1);
  L = zeros(n, n);
  D = zeros(1, n);
  for k = 1:n
    t = A(k,k);
    for p = 1:k-1
      t = t - L(k,p)^2*D(p);
    end
    D(k) = t;
    L(k,k) = 1;
    for i = k+1:n
      t = A(i,k);
      for p = 1:k-1
        t = t - L(i,p)*L(k,p)*D(p);
      end
      L(i,k) = t/D(k);
    end
  end
  s = 0;
  for k = 1:n
    s = s + D(k) + L(n,k);
  end
end`
		},
		Args: func(sz Size) []*mat.Value {
			n := pick(sz, 50, 250, 400)
			return []*mat.Value{spdMatrix(n)}
		},
	},
	{
		Name: "mei", Origin: "unknown", Desc: "fractal landscape generator",
		Category: CatBuiltin, PaperSize: "31 x 14", PaperLines: 24, PaperRuntime: 10.77,
		Fn: "mei",
		Source: func(sz Size) string {
			iters := pick(sz, 5, 60, 150)
			return withArgs(`
function s = mei(H)
  % Fractal landscape roughening by spectral synthesis: each pass
  % computes the eigenvalues of the height field's correlation (a
  % library call whose arguments the speculator cannot prove real).
  n = size(H, 1);
  m = size(H, 2);
  s = 0;
  for pass = 1:@
    C = H'*H/m;
    e = eig(C);
    t = 0;
    for p = 1:m
      t = t + abs(e(p))^0.5;
    end
    H = 0.9*H + rand(n, m)*(0.1*t/m);
    s = s + t;
  end
end`, iters)
		},
		Args: func(sz Size) []*mat.Value {
			return []*mat.Value{seedLandscape(31, 14)}
		},
	},
	{
		Name: "orbec", Origin: "Garcia [12]", Desc: "Euler-Cromer method for 1-body problem",
		Category: CatArray, PaperSize: "62400 points", PaperLines: 24, PaperRuntime: 19.10,
		Fn: "orbec",
		Source: func(sz Size) string {
			steps := pick(sz, 2000, 62400, 62400)
			return withArgs(`
function s = orbec()
  % Euler-Cromer integration of a comet orbit (Garcia, orbit.m):
  % everything happens on small fixed-size vectors.
  nStep = @;
  tau = 0.0005;
  GM = 4*pi^2;
  r = [1 0];
  v = [0 2*pi];
  s = 0;
  for iStep = 1:nStep
    normR = sqrt(r(1)^2 + r(2)^2);
    accel = r*(-GM/normR^3);
    v = v + accel*tau;
    r = r + v*tau;
    s = s + normR;
  end
  s = s/nStep;
end`, steps)
		},
		Args: noArgs,
	},
	{
		Name: "orbrk", Origin: "Garcia [12]", Desc: "Runge-Kutta method for 1-body problem",
		Category: CatArray, PaperSize: "5000 points", PaperLines: 52, PaperRuntime: 9.30,
		Fn: "orbrk",
		Source: func(sz Size) string {
			steps := pick(sz, 500, 5000, 5000)
			return withArgs(`
function s = orbrk()
  % Fourth-order Runge-Kutta comet orbit (Garcia): the derivative
  % helper is a prime inlining target.
  nStep = @;
  tau = 0.002;
  GM = 4*pi^2;
  x = [1 0 0 2*pi];
  s = 0;
  for iStep = 1:nStep
    k1 = gravrk(x, GM);
    xh = x + k1*(0.5*tau);
    k2 = gravrk(xh, GM);
    xh = x + k2*(0.5*tau);
    k3 = gravrk(xh, GM);
    xh = x + k3*tau;
    k4 = gravrk(xh, GM);
    x = x + (k1 + k4 + (k2 + k3)*2)*(tau/6);
    s = s + sqrt(x(1)^2 + x(2)^2);
  end
  s = s/nStep;
end
function deriv = gravrk(x, GM)
  r3 = (x(1)^2 + x(2)^2)^1.5;
  deriv = [x(3) x(4) -GM*x(1)/r3 -GM*x(2)/r3];
end`, steps)
		},
		Args: noArgs,
	},
	{
		Name: "qmr", Origin: "Garcia [12]", Desc: "linear equation system solver, QMR method",
		Category: CatBuiltin, PaperSize: "420 x 420", PaperLines: 119, PaperRuntime: 5.29,
		Fn: "qmr",
		Source: func(sz Size) string {
			iters := pick(sz, 10, 60, 100)
			return withArgs(`
function s = qmr(A, b)
  % Quasi-minimal residual iteration (Templates, alg. QMR without
  % look-ahead, identity preconditioners).
  n = size(A, 1);
  x = zeros(n, 1);
  r = b - A*x;
  vt = r;
  rho = norm(vt);
  wt = r;
  xi = norm(wt);
  gam = 1;
  eta = -1;
  ep = 1;
  theta = 0;
  v = zeros(n, 1);
  w = zeros(n, 1);
  p = zeros(n, 1);
  q = zeros(n, 1);
  d = zeros(n, 1);
  sv = zeros(n, 1);
  for iter = 1:@
    if abs(rho) < 1e-14
      break;
    end
    if abs(xi) < 1e-14
      break;
    end
    v = vt/rho;
    w = wt/xi;
    delta = dot(w, v);
    if abs(delta) < 1e-14
      break;
    end
    if iter == 1
      p = v;
      q = w;
    else
      pcoef = xi*delta/ep;
      qcoef = rho*delta/ep;
      p = v - p*pcoef;
      q = w - q*qcoef;
    end
    pt = A*p;
    ep = dot(q, pt);
    if abs(ep) < 1e-14
      break;
    end
    beta = ep/delta;
    vt = pt - v*beta;
    rho1 = rho;
    rho = norm(vt);
    wt = A'*q - w*beta;
    xi = norm(wt);
    theta1 = theta;
    theta = rho/(gam*abs(beta));
    gam1 = gam;
    gam = 1/sqrt(1 + theta^2);
    eta = -eta*rho1*gam^2/(beta*gam1^2);
    if iter == 1
      d = p*eta;
      sv = pt*eta;
    else
      dc = (theta1*gam)^2;
      d = p*eta + d*dc;
      sv = pt*eta + sv*dc;
    end
    x = x + d;
    r = r - sv;
    if norm(r) < 1e-12
      break;
    end
  end
  s = sum(x) + norm(r);
end`, iters)
		},
		Args: func(sz Size) []*mat.Value {
			n := pick(sz, 60, 420, 420)
			return []*mat.Value{spdMatrix(n), rhsVector(n)}
		},
	},
	{
		Name: "sor", Origin: "Templates [3]", Desc: "lin. eq. sys. solver, successive overrelaxation",
		Category: CatBuiltin, PaperSize: "420 x 420", PaperLines: 29, PaperRuntime: 4.77,
		Fn: "sor",
		Source: func(sz Size) string {
			iters := pick(sz, 3, 12, 20)
			return withArgs(`
function s = sor(A, b, w)
  % SOR by matrix splitting (Templates): M = D/w + L, entirely built
  % from library operations — compilation gains little here.
  n = size(A, 1);
  x = zeros(n, 1);
  D = diag(diag(A));
  L = tril(A, -1);
  U = triu(A, 1);
  M = D/w + L;
  N = D*(1/w - 1) - U;
  for iter = 1:@
    x = M \ (N*x + b);
  end
  s = sum(x) + norm(b - A*x);
end`, iters)
		},
		Args: func(sz Size) []*mat.Value {
			n := pick(sz, 60, 300, 420)
			return []*mat.Value{spdMatrix(n), rhsVector(n), mat.Scalar(1.2)}
		},
	},
	{
		Name: "ackermann", Origin: "authors", Desc: "Ackermann's function",
		Category: CatRecursive, PaperSize: "ackermann(3,5)", PaperLines: 15, PaperRuntime: 3.84,
		Fn: "ackermann",
		Source: func(sz Size) string {
			return `
function y = ackermann(m, n)
  if m == 0
    y = n + 1;
  elseif n == 0
    y = ackermann(m - 1, 1);
  else
    y = ackermann(m - 1, ackermann(m, n - 1));
  end
end`
		},
		Args: func(sz Size) []*mat.Value {
			n := pick(sz, 3, 4, 5)
			return []*mat.Value{mat.Scalar(3), mat.Scalar(float64(n))}
		},
	},
	{
		Name: "fractal", Origin: "authors", Desc: "Barnsley fern generator",
		Category: CatArray, PaperSize: "25000 points", PaperLines: 35, PaperRuntime: 26.55,
		Fn: "fractal",
		Source: func(sz Size) string {
			points := pick(sz, 2000, 25000, 25000)
			return withArgs(`
function s = fractal()
  % Barnsley fern: an iterated function system over 2-vectors and
  % 2x2 matrices — the classic small-array benchmark.
  n = @;
  p = [0.5; 0.5];
  s = 0;
  for k = 1:n
    t = rand;
    if t < 0.01
      B = [0 0; 0 0.16];
      c = [0; 0];
    elseif t < 0.86
      B = [0.85 0.04; -0.04 0.85];
      c = [0; 1.6];
    elseif t < 0.93
      B = [0.2 -0.26; 0.23 0.22];
      c = [0; 1.6];
    else
      B = [-0.15 0.28; 0.26 0.24];
      c = [0; 0.44];
    end
    p = B*p + c;
    s = s + p(1) + p(2);
  end
  s = s/n;
end`, points)
		},
		Args: noArgs,
	},
	{
		Name: "mandel", Origin: "authors", Desc: "Mandelbrot set generator",
		Category: CatScalar, PaperSize: "200 x 200", PaperLines: 16, PaperRuntime: 8.64,
		Fn: "mandel",
		Source: func(sz Size) string {
			return `
function s = mandel(n)
  % Escape-time Mandelbrot iteration; note the use of the builtin i,
  % which drags the speculator toward complex arithmetic (§3.6).
  maxit = 64;
  s = 0;
  for ix = 1:n
    for iy = 1:n
      cx = -2 + 3*(ix - 1)/(n - 1);
      cy = -1.25 + 2.5*(iy - 1)/(n - 1);
      c = cx + cy*i;
      z = 0*i;
      k = 0;
      while k < maxit && abs(z) <= 2
        z = z*z + c;
        k = k + 1;
      end
      s = s + k;
    end
  end
end`
		},
		Args: func(sz Size) []*mat.Value {
			n := pick(sz, 40, 200, 200)
			return []*mat.Value{mat.Scalar(float64(n))}
		},
	},
	{
		Name: "fibonacci", Origin: "authors", Desc: "recursive Fibonacci function",
		Category: CatRecursive, PaperSize: "fibonacci(20)", PaperLines: 10, PaperRuntime: 1.29,
		Fn: "fibonacci",
		Source: func(sz Size) string {
			return `
function f = fibonacci(n)
  if n < 2
    f = n;
  else
    f = fibonacci(n - 1) + fibonacci(n - 2);
  end
end`
		},
		Args: func(sz Size) []*mat.Value {
			n := pick(sz, 14, 20, 20)
			return []*mat.Value{mat.Scalar(float64(n))}
		},
	},
}
