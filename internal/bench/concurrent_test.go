package bench

import (
	"io"
	"strings"
	"testing"

	"repro/internal/parallel"
)

// TestConcurrentClientsAsync drives 8 concurrent clients through one
// shared async engine for every ConcurrentSet workload (run with -race:
// this exercises the full compiled-code path concurrently).
func TestConcurrentClientsAsync(t *testing.T) {
	cfg := ConcurrentConfig{
		Size:           Small,
		Clients:        8,
		Async:          true,
		Workers:        4,
		CallsPerClient: 3,
		Out:            io.Discard,
	}
	rows, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ConcurrentSet) {
		t.Fatalf("got %d rows, want %d", len(rows), len(ConcurrentSet))
	}
	for _, r := range rows {
		if r.TotalCalls != 8*3 {
			t.Errorf("%s: %d steady calls, want 24", r.Bench, r.TotalCalls)
		}
		if r.Throughput <= 0 {
			t.Errorf("%s: throughput %f", r.Bench, r.Throughput)
		}
		// Single-flight: concurrent cold misses on one signature must
		// not insert more than one entry per compiled signature. The
		// recursive/multi-function benchmarks compile several
		// signatures (callees, widening), but never one per client.
		if r.Inserts >= cfg.Clients {
			t.Errorf("%s: %d inserts for %d clients — single-flight failed", r.Bench, r.Inserts, cfg.Clients)
		}
	}
}

// TestConcurrentClientsSync: the sync engine must also survive
// concurrent clients (compiles inline, repository still shared).
func TestConcurrentClientsSync(t *testing.T) {
	cfg := ConcurrentConfig{
		Size:           Small,
		Clients:        4,
		CallsPerClient: 2,
		Benchmarks:     []string{"fibonacci", "cgopt"},
		Out:            io.Discard,
	}
	rows, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CompileJobs != 0 || r.Deduped != 0 {
			t.Errorf("%s: sync mode used the queue: %+v", r.Bench, r)
		}
	}
}

// TestConcurrentClientsThreaded layers kernel-level parallelism under
// client-level concurrency: every client call fans dense-kernel work
// out to the shared internal/parallel pool. Run with -race; the result
// cross-check in runOne doubles as a thread-count determinism check.
func TestConcurrentClientsThreaded(t *testing.T) {
	defer parallel.SetDefaultThreads(0)
	cfg := ConcurrentConfig{
		Size:           Small,
		Clients:        4,
		Async:          true,
		Workers:        2,
		CallsPerClient: 2,
		Benchmarks:     []string{"cgopt", "sor"},
		Threads:        4,
		Fuse:           true,
		Out:            io.Discard,
	}
	rows, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
}

// TestConcurrentReport smoke-tests the table writer.
func TestConcurrentReport(t *testing.T) {
	var sb strings.Builder
	cfg := ConcurrentConfig{
		Size:           Small,
		Clients:        2,
		Async:          true,
		CallsPerClient: 1,
		Benchmarks:     []string{"fibonacci"},
		Out:            &sb,
	}
	if err := cfg.Report(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Concurrent clients", "fibonacci", "first(min)", "calls/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkConcurrentClients is the CI bench-smoke anchor for the
// concurrent path: one async engine, 8 clients, fibonacci.
func BenchmarkConcurrentClients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ConcurrentConfig{
			Size:           Small,
			Clients:        8,
			Async:          true,
			CallsPerClient: 2,
			Benchmarks:     []string{"fibonacci"},
			Out:            io.Discard,
		}
		if _, err := cfg.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
