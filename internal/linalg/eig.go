package linalg

import "math"

// Eig returns the eigenvalues of the n x n column-major matrix a as
// (real, imag) slices. Symmetric matrices take a Jacobi sweep path that
// returns exactly real eigenvalues; general matrices go through
// Hessenberg reduction followed by the Francis double-shift QR iteration,
// which can produce complex conjugate pairs.
func Eig(a []float64, n int) (re, im []float64) {
	if n == 0 {
		return nil, nil
	}
	if isSymmetric(a, n) {
		return jacobiEig(a, n), make([]float64, n)
	}
	h := make([]float64, n*n)
	copy(h, a[:n*n])
	hessenberg(h, n)
	return francisQR(h, n)
}

func isSymmetric(a []float64, n int) bool {
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			if a[j*n+i] != a[i*n+j] {
				return false
			}
		}
	}
	return true
}

// jacobiEig runs cyclic Jacobi rotations on a symmetric matrix and
// returns the (ascending) eigenvalues.
func jacobiEig(a []float64, n int) []float64 {
	m := make([]float64, n*n)
	copy(m, a[:n*n])
	at := func(i, j int) float64 { return m[j*n+i] }
	set := func(i, j int, v float64) { m[j*n+i] = v }
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				off += at(i, j) * at(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := at(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				theta := (at(q, q) - at(p, p)) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := at(k, p), at(k, q)
					set(k, p, c*akp-s*akq)
					set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := at(p, k), at(q, k)
					set(p, k, c*apk-s*aqk)
					set(q, k, s*apk+c*aqk)
				}
			}
		}
	}
	ev := make([]float64, n)
	for i := 0; i < n; i++ {
		ev[i] = at(i, i)
	}
	// insertion sort ascending, as MATLAB's symmetric eig returns
	for i := 1; i < n; i++ {
		v := ev[i]
		j := i - 1
		for j >= 0 && ev[j] > v {
			ev[j+1] = ev[j]
			j--
		}
		ev[j+1] = v
	}
	return ev
}

// hessenberg reduces a (column-major, n x n) to upper Hessenberg form in
// place using Householder reflectors.
func hessenberg(a []float64, n int) {
	at := func(i, j int) float64 { return a[j*n+i] }
	set := func(i, j int, v float64) { a[j*n+i] = v }
	v := make([]float64, n)
	for k := 0; k < n-2; k++ {
		var norm float64
		for i := k + 1; i < n; i++ {
			norm += at(i, k) * at(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := -norm
		if at(k+1, k) < 0 {
			alpha = norm
		}
		vnorm2 := 0.0
		for i := k + 1; i < n; i++ {
			v[i] = at(i, k)
			if i == k+1 {
				v[i] -= alpha
			}
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			continue
		}
		// A ← H A
		for j := 0; j < n; j++ {
			var dot float64
			for i := k + 1; i < n; i++ {
				dot += v[i] * at(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k + 1; i < n; i++ {
				set(i, j, at(i, j)-f*v[i])
			}
		}
		// A ← A H
		for i := 0; i < n; i++ {
			var dot float64
			for j := k + 1; j < n; j++ {
				dot += v[j] * at(i, j)
			}
			f := 2 * dot / vnorm2
			for j := k + 1; j < n; j++ {
				set(i, j, at(i, j)-f*v[j])
			}
		}
	}
}

// francisQR runs the shifted QR iteration on an upper Hessenberg matrix
// and returns its eigenvalues. This is the classic deflation-based
// implementation (cf. Golub & Van Loan); 2x2 trailing blocks resolve to
// real pairs or complex conjugates directly.
func francisQR(h []float64, n int) (re, im []float64) {
	re = make([]float64, n)
	im = make([]float64, n)
	at := func(i, j int) float64 { return h[j*n+i] }
	set := func(i, j int, v float64) { h[j*n+i] = v }

	hi := n - 1
	iter := 0
	for hi >= 0 {
		if hi == 0 {
			re[0] = at(0, 0)
			hi--
			continue
		}
		// find the active block [lo..hi]
		lo := hi
		for lo > 0 {
			sub := math.Abs(at(lo, lo-1))
			if sub <= 1e-14*(math.Abs(at(lo-1, lo-1))+math.Abs(at(lo, lo))) {
				set(lo, lo-1, 0)
				break
			}
			lo--
		}
		if lo == hi {
			re[hi] = at(hi, hi)
			hi--
			iter = 0
			continue
		}
		if lo == hi-1 {
			// 2x2 block: solve the quadratic directly.
			a11, a12 := at(hi-1, hi-1), at(hi-1, hi)
			a21, a22 := at(hi, hi-1), at(hi, hi)
			tr := a11 + a22
			det := a11*a22 - a12*a21
			disc := tr*tr/4 - det
			if disc >= 0 {
				s := math.Sqrt(disc)
				re[hi-1], re[hi] = tr/2+s, tr/2-s
			} else {
				s := math.Sqrt(-disc)
				re[hi-1], re[hi] = tr/2, tr/2
				im[hi-1], im[hi] = s, -s
			}
			hi -= 2
			iter = 0
			continue
		}
		iter++
		if iter > 40*n {
			// Convergence failure: report the remaining diagonal as-is
			// rather than looping forever (mirrors LAPACK's max-iteration
			// bail-out).
			for i := lo; i <= hi; i++ {
				re[i] = at(i, i)
			}
			hi = lo - 1
			continue
		}
		// Wilkinson shift from the trailing 2x2.
		a11, a12 := at(hi-1, hi-1), at(hi-1, hi)
		a21, a22 := at(hi, hi-1), at(hi, hi)
		tr := a11 + a22
		det := a11*a22 - a12*a21
		disc := tr*tr/4 - det
		var mu float64
		if disc >= 0 {
			s := math.Sqrt(disc)
			l1, l2 := tr/2+s, tr/2-s
			if math.Abs(l1-a22) < math.Abs(l2-a22) {
				mu = l1
			} else {
				mu = l2
			}
		} else {
			mu = tr / 2
		}
		if iter%13 == 0 {
			// Exceptional shift to break symmetric stagnation.
			mu = math.Abs(at(hi, hi-1)) + math.Abs(at(hi-1, hi-2))
		}
		// Shifted QR step on the active block via Givens rotations.
		qrStepGivens(h, n, lo, hi, mu, at, set)
	}
	return re, im
}

func qrStepGivens(h []float64, n, lo, hi int, mu float64, at func(int, int) float64, set func(int, int, float64)) {
	type rot struct{ c, s float64 }
	rots := make([]rot, 0, hi-lo)
	// H - mu I = Q R as a sequence of Givens rotations on the subdiagonal.
	for i := lo; i <= hi; i++ {
		set(i, i, at(i, i)-mu)
	}
	for k := lo; k < hi; k++ {
		a, b := at(k, k), at(k+1, k)
		r := math.Hypot(a, b)
		if r == 0 {
			rots = append(rots, rot{1, 0})
			continue
		}
		c, s := a/r, b/r
		rots = append(rots, rot{c, s})
		for j := k; j <= hi && j < n; j++ {
			x, y := at(k, j), at(k+1, j)
			set(k, j, c*x+s*y)
			set(k+1, j, -s*x+c*y)
		}
	}
	// RQ: apply the transposed rotations on the right.
	for k := lo; k < hi; k++ {
		rt := rots[k-lo]
		for i := lo; i <= k+1; i++ {
			x, y := at(i, k), at(i, k+1)
			set(i, k, rt.c*x+rt.s*y)
			set(i, k+1, -rt.s*x+rt.c*y)
		}
	}
	for i := lo; i <= hi; i++ {
		set(i, i, at(i, i)+mu)
	}
}
