package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randSys(r *rand.Rand, n int) []float64 {
	a := make([]float64, n*n)
	for i := range a {
		a[i] = r.Float64()*2 - 1
	}
	// diagonal dominance keeps it comfortably nonsingular
	for i := 0; i < n; i++ {
		a[i*n+i] += float64(n)
	}
	return a
}

func matVec(a []float64, n int, x []float64) []float64 {
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			y[i] += a[j*n+i] * x[j]
		}
	}
	return y
}

func TestSolveRandomSystems(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(12)
		a := randSys(r, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = r.Float64()*4 - 2
		}
		b := matVec(a, n, want)
		got, err := Solve(a, n, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSolveMultipleRHS(t *testing.T) {
	a := []float64{4, 1, 1, 3} // column-major [[4,1],[1,3]]
	b := []float64{1, 0, 0, 1} // identity → X = inv(A)
	x, err := Solve(a, 2, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	det := 4*3 - 1*1
	want := []float64{3 / float64(det), -1 / float64(det), -1 / float64(det), 4 / float64(det)}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("inv: %v, want %v", x, want)
		}
	}
}

func TestSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4} // rank 1
	if _, err := Solve(a, 2, []float64{1, 1}, 1); err == nil {
		t.Fatal("singular system must error")
	}
	if d := Det(a, 2); d != 0 {
		t.Fatalf("det of singular = %g", d)
	}
}

func TestDet(t *testing.T) {
	a := []float64{4, 1, 2, 3} // [[4,2],[1,3]] det = 10
	if d := Det(a, 2); math.Abs(d-10) > 1e-12 {
		t.Fatalf("det = %g", d)
	}
	// det of a permutation-ish matrix picks up signs
	p := []float64{0, 1, 1, 0}
	if d := Det(p, 2); math.Abs(d+1) > 1e-12 {
		t.Fatalf("det(swap) = %g, want -1", d)
	}
}

func TestInv(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 6
	a := randSys(r, n)
	inv, err := Inv(a, n)
	if err != nil {
		t.Fatal(err)
	}
	// A * inv(A) ≈ I
	for col := 0; col < n; col++ {
		prod := matVec(a, n, inv[col*n:(col+1)*n])
		for i := 0; i < n; i++ {
			want := 0.0
			if i == col {
				want = 1
			}
			if math.Abs(prod[i]-want) > 1e-8 {
				t.Fatalf("A*inv(A)[%d,%d] = %g", i, col, prod[i])
			}
		}
	}
}

func TestChol(t *testing.T) {
	// A = R'R for SPD A
	a := []float64{4, 2, 2, 5} // [[4,2],[2,5]]
	r, err := Chol(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	// R stored column-major upper-triangular: verify R'R = A
	n := 2
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= i && k <= j; k++ {
				s += r[i*n+k] * r[j*n+k]
			}
			if math.Abs(s-a[j*n+i]) > 1e-12 {
				t.Fatalf("R'R[%d,%d] = %g, want %g", i, j, s, a[j*n+i])
			}
		}
	}
	// not positive definite
	bad := []float64{1, 2, 2, 1}
	if _, err := Chol(bad, 2); err == nil {
		t.Fatal("indefinite matrix must fail")
	}
}

func TestQR(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	m, n := 5, 3
	a := make([]float64, m*n)
	for i := range a {
		a[i] = r.Float64()*2 - 1
	}
	q, rr := QR(a, m, n)
	// Q orthogonal: QᵀQ = I
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var s float64
			for k := 0; k < m; k++ {
				s += q[i*m+k] * q[j*m+k]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-10 {
				t.Fatalf("QtQ[%d,%d] = %g", i, j, s)
			}
		}
	}
	// A = QR
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for k := 0; k < m; k++ {
				s += q[k*m+i] * rr[j*m+k]
			}
			if math.Abs(s-a[j*m+i]) > 1e-10 {
				t.Fatalf("QR[%d,%d] = %g, want %g", i, j, s, a[j*m+i])
			}
		}
	}
	// R upper triangular
	for j := 0; j < n; j++ {
		for i := j + 1; i < m; i++ {
			if math.Abs(rr[j*m+i]) > 1e-10 {
				t.Fatalf("R[%d,%d] = %g, not upper triangular", i, j, rr[j*m+i])
			}
		}
	}
}

func TestEigSymmetric(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3
	a := []float64{2, 1, 1, 2}
	re, im := Eig(a, 2)
	sort.Float64s(re)
	if math.Abs(re[0]-1) > 1e-9 || math.Abs(re[1]-3) > 1e-9 {
		t.Fatalf("eig = %v", re)
	}
	for _, x := range im {
		if x != 0 {
			t.Fatal("symmetric eigenvalues must be real")
		}
	}
}

func TestEigDiagonal(t *testing.T) {
	n := 5
	a := make([]float64, n*n)
	want := []float64{-3, -1, 0, 2, 7}
	for i, v := range want {
		a[i*n+i] = v
	}
	re, _ := Eig(a, n)
	sort.Float64s(re)
	for i := range want {
		if math.Abs(re[i]-want[i]) > 1e-9 {
			t.Fatalf("diag eig: %v", re)
		}
	}
}

func TestEigRotationComplexPair(t *testing.T) {
	// a rotation by 90° has eigenvalues ±i
	a := []float64{0, 1, -1, 0}
	re, im := Eig(a, 2)
	if math.Abs(re[0]) > 1e-9 || math.Abs(re[1]) > 1e-9 {
		t.Fatalf("re = %v", re)
	}
	mags := []float64{math.Abs(im[0]), math.Abs(im[1])}
	if math.Abs(mags[0]-1) > 1e-9 || math.Abs(mags[1]-1) > 1e-9 {
		t.Fatalf("im = %v", im)
	}
	if im[0]*im[1] >= 0 {
		t.Fatal("complex eigenvalues must come in conjugate pairs")
	}
}

func TestEigGeneralTrace(t *testing.T) {
	// Eigenvalues must sum to the trace and multiply to the determinant.
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(6)
		a := make([]float64, n*n)
		for i := range a {
			a[i] = r.Float64()*2 - 1
		}
		var trace float64
		for i := 0; i < n; i++ {
			trace += a[i*n+i]
		}
		re, im := Eig(a, n)
		var sumRe, sumIm float64
		for i := 0; i < n; i++ {
			sumRe += re[i]
			sumIm += im[i]
		}
		if math.Abs(sumRe-trace) > 1e-6*(1+math.Abs(trace)) {
			t.Fatalf("trial %d: sum(eig) = %g, trace = %g", trial, sumRe, trace)
		}
		if math.Abs(sumIm) > 1e-6 {
			t.Fatalf("trial %d: eigenvalue imag parts don't cancel: %g", trial, sumIm)
		}
	}
}

func TestLUPivoting(t *testing.T) {
	// requires pivoting: zero in the leading position
	a := []float64{0, 1, 1, 0} // [[0,1],[1,0]]
	x, err := Solve(a, 2, []float64{2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// [[0,1],[1,0]] x = [2,3] → x = [3,2]
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}
