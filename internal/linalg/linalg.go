// Package linalg implements the dense linear-algebra substrate MaJIC's
// built-in functions stand on: LU factorization with partial pivoting
// (mldivide), Cholesky factorization, QR decomposition, determinant,
// inverse, and eigenvalues via Hessenberg reduction plus the shifted QR
// iteration. It plays the LAPACK role of the original system: built-in
// library code whose speed is unaffected by compiling its callers.
package linalg

import (
	"errors"
	"math"
)

// ErrSingular reports an exactly singular system.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// ErrNotPosDef reports a Cholesky failure.
var ErrNotPosDef = errors.New("linalg: matrix is not positive definite")

// ErrShape reports incompatible dimensions.
var ErrShape = errors.New("linalg: dimension mismatch")

// LU computes an in-place LU factorization with partial pivoting of the
// n x n column-major matrix a (lda = n). It returns the pivot vector
// (piv[k] is the row swapped with row k) and whether a zero pivot was hit.
func LU(a []float64, n int) (piv []int, singular bool) {
	piv = make([]int, n)
	for k := 0; k < n; k++ {
		// find pivot
		p := k
		maxv := math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[k*n+i]); v > maxv {
				maxv, p = v, i
			}
		}
		piv[k] = p
		if maxv == 0 {
			singular = true
			continue
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[j*n+k], a[j*n+p] = a[j*n+p], a[j*n+k]
			}
		}
		pivot := a[k*n+k]
		for i := k + 1; i < n; i++ {
			a[k*n+i] /= pivot
		}
		for j := k + 1; j < n; j++ {
			f := a[j*n+k]
			if f == 0 {
				continue
			}
			col := a[j*n : j*n+n]
			lcol := a[k*n : k*n+n]
			for i := k + 1; i < n; i++ {
				col[i] -= lcol[i] * f
			}
		}
	}
	return piv, singular
}

// Solve solves A X = B for the n x n column-major A and n x m column-major
// B, returning X (column-major). A and B are not modified.
func Solve(a []float64, n int, b []float64, m int) ([]float64, error) {
	lu := make([]float64, n*n)
	copy(lu, a[:n*n])
	piv, singular := LU(lu, n)
	if singular {
		return nil, ErrSingular
	}
	x := make([]float64, n*m)
	copy(x, b[:n*m])
	for j := 0; j < m; j++ {
		col := x[j*n : (j+1)*n]
		// apply pivots
		for k := 0; k < n; k++ {
			if piv[k] != k {
				col[k], col[piv[k]] = col[piv[k]], col[k]
			}
		}
		// forward substitution (unit lower)
		for k := 0; k < n; k++ {
			for i := k + 1; i < n; i++ {
				col[i] -= lu[k*n+i] * col[k]
			}
		}
		// back substitution
		for k := n - 1; k >= 0; k-- {
			col[k] /= lu[k*n+k]
			for i := 0; i < k; i++ {
				col[i] -= lu[k*n+i] * col[k]
			}
		}
	}
	return x, nil
}

// Det returns the determinant of the n x n column-major matrix a.
func Det(a []float64, n int) float64 {
	lu := make([]float64, n*n)
	copy(lu, a[:n*n])
	piv, singular := LU(lu, n)
	if singular {
		return 0
	}
	det := 1.0
	for k := 0; k < n; k++ {
		det *= lu[k*n+k]
		if piv[k] != k {
			det = -det
		}
	}
	return det
}

// Inv returns the inverse of the n x n column-major matrix a.
func Inv(a []float64, n int) ([]float64, error) {
	eye := make([]float64, n*n)
	for i := 0; i < n; i++ {
		eye[i*n+i] = 1
	}
	return Solve(a, n, eye, n)
}

// Chol computes the upper-triangular Cholesky factor R (column-major)
// with A = RᵀR for a symmetric positive definite A.
func Chol(a []float64, n int) ([]float64, error) {
	r := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			s := a[j*n+i]
			for k := 0; k < i; k++ {
				s -= r[i*n+k] * r[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotPosDef
				}
				r[j*n+j] = math.Sqrt(s)
			} else {
				r[j*n+i] = s / r[i*n+i]
			}
		}
	}
	return r, nil
}

// QR computes a Householder QR decomposition of the m x n column-major
// matrix a, returning Q (m x m) and R (m x n).
func QR(a []float64, m, n int) (q, r []float64) {
	r = make([]float64, m*n)
	copy(r, a[:m*n])
	q = make([]float64, m*m)
	for i := 0; i < m; i++ {
		q[i*m+i] = 1
	}
	steps := n
	if m-1 < steps {
		steps = m - 1
	}
	v := make([]float64, m)
	for k := 0; k < steps; k++ {
		// Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm += r[k*m+i] * r[k*m+i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := -norm
		if r[k*m+k] < 0 {
			alpha = norm
		}
		vnorm2 := 0.0
		for i := k; i < m; i++ {
			v[i] = r[k*m+i]
			if i == k {
				v[i] -= alpha
			}
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			continue
		}
		// Apply H = I - 2vvᵀ/vᵀv to R (columns k..n-1) and Q.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * r[j*m+i]
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				r[j*m+i] -= f * v[i]
			}
		}
		for j := 0; j < m; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * q[j*m+i]
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				q[j*m+i] -= f * v[i]
			}
		}
	}
	// Q accumulated as the product of reflectors applied to I gives Qᵀ in
	// the columns; transpose in place to return Q with A = Q R.
	for j := 0; j < m; j++ {
		for i := 0; i < j; i++ {
			q[j*m+i], q[i*m+j] = q[i*m+j], q[j*m+i]
		}
	}
	return q, r
}
