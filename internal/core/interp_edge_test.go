package core

import (
	"strings"
	"testing"

	"repro/internal/mat"
)

// Edge-case interpreter semantics that the benchmarks rely on.

func TestAnsBinding(t *testing.T) {
	e := newTestEngine(t)
	if err := e.EvalString("3 + 4;"); err != nil {
		t.Fatal(err)
	}
	v, ok := e.Workspace("ans")
	if !ok {
		t.Fatal("ans not bound")
	}
	wantScalar(t, v, 7)
	// ans is usable as a variable
	if err := e.EvalString("x = ans * 2;"); err != nil {
		t.Fatal(err)
	}
	v, _ = e.Workspace("x")
	wantScalar(t, v, 14)
}

func TestDisplayOutput(t *testing.T) {
	var b strings.Builder
	e := New(Options{Tier: TierInterp, Out: &b})
	if err := e.EvalString("x = 5"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x =") || !strings.Contains(b.String(), "5") {
		t.Errorf("display output %q", b.String())
	}
	b.Reset()
	if err := e.EvalString("y = 6;"); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Errorf("suppressed assignment printed %q", b.String())
	}
	// disp output has no ans echo
	b.Reset()
	if err := e.EvalString("disp(42)"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "ans") {
		t.Errorf("disp echoed ans: %q", b.String())
	}
}

func TestNarginNargout(t *testing.T) {
	e := newTestEngine(t)
	err := e.Define(`
function [a, b] = f(x, y, z)
  a = nargin;
  b = nargout;
end`)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.Call("f", []*mat.Value{mat.Scalar(1), mat.Scalar(2)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantScalar(t, outs[0], 2)
	wantScalar(t, outs[1], 2)
}

func TestForOverMatrixColumns(t *testing.T) {
	wantScalar(t, evalVar(t, `
A = [1 2 3; 4 5 6];
s = 0;
for col = A
  s = s + col(1)*10 + col(2);
end
`, "s"), (10+4)+(20+5)+(30+6))
}

func TestWhileWithMatrixCondition(t *testing.T) {
	// a matrix condition is true iff all elements are nonzero
	wantScalar(t, evalVar(t, `
v = [1 1 1];
n = 0;
while v
  n = n + 1;
  v(n) = 0;
end
`, "n"), 1)
}

func TestEmptyLoopLeavesVarUnset(t *testing.T) {
	e := newTestEngine(t)
	if err := e.EvalString("for q = 1:0\n  x = q;\nend"); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Workspace("q"); ok {
		t.Error("loop variable must stay unset for an empty range")
	}
}

func TestLoopVarSurvivesReassignment(t *testing.T) {
	// the header reassigns the loop variable each iteration, and the
	// body's last write survives the loop
	wantScalar(t, evalVar(t, `
for i = 1:3
  i = i * 10;
end
`, "i"), 30)
}

func TestCallByValueFunctionArgs(t *testing.T) {
	e := newTestEngine(t)
	err := e.Define(`
function y = clobber(v)
  v(1) = 999;
  y = v(1);
end`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EvalString("a = [1 2 3]; r = clobber(a); keep = a(1);"); err != nil {
		t.Fatal(err)
	}
	r, _ := e.Workspace("r")
	keep, _ := e.Workspace("keep")
	wantScalar(t, r, 999)
	wantScalar(t, keep, 1) // caller's array untouched
}

func TestStringComparisonInSwitch(t *testing.T) {
	wantScalar(t, evalVar(t, `
mode = 'fast';
switch mode
case 'slow'
  x = 1;
case 'fast'
  x = 2;
otherwise
  x = 3;
end
`, "x"), 2)
}

func TestNestedFunctionCalls(t *testing.T) {
	e := newTestEngine(t)
	err := e.Define(`
function y = outer(x)
  y = middle(x) + 1;
end
function y = middle(x)
  y = inner(x) * 2;
end
function y = inner(x)
  y = x + 10;
end`)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.Call("outer", []*mat.Value{mat.Scalar(5)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantScalar(t, outs[0], 31)
}

func TestErrorBuiltinAborts(t *testing.T) {
	e := newTestEngine(t)
	err := e.Define(`
function y = f(x)
  if x < 0
    error('negative input %d', x);
  end
  y = sqrt(x);
end`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("f", []*mat.Value{mat.Scalar(-4)}, 1); err == nil ||
		!strings.Contains(err.Error(), "negative input -4") {
		t.Errorf("error() not propagated: %v", err)
	}
	outs, err := e.Call("f", []*mat.Value{mat.Scalar(9)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantScalar(t, outs[0], 3)
}

func TestColonAssignPreservesShape(t *testing.T) {
	v := evalVar(t, "A = zeros(2,3); A(:) = 7;", "A")
	if v.Rows() != 2 || v.Cols() != 3 {
		t.Fatalf("A(:) = x reshaped to %dx%d", v.Rows(), v.Cols())
	}
	for _, x := range v.Re() {
		if x != 7 {
			t.Fatal("fill failed")
		}
	}
}

func TestVectorIndexAssignment(t *testing.T) {
	wantScalar(t, evalVar(t, "v = 1:10; v(2:4) = 0; x = sum(v);", "x"), 55-2-3-4)
	wantScalar(t, evalVar(t, "v = 1:5; w = v([1 3 5]); x = sum(w);", "x"), 9)
	wantScalar(t, evalVar(t, "A = zeros(3); A(2,:) = [7 8 9]; x = A(2,2);", "x"), 8)
}

func TestChainedComparisonsAndLogic(t *testing.T) {
	// MATLAB evaluates (1 < 2) < 3 → 1 < 3 → 1
	wantScalar(t, evalVar(t, "x = 1 < 2 < 3;", "x"), 1)
	wantScalar(t, evalVar(t, "x = 3 > 2 == 1;", "x"), 1)
}

func TestGrowthFromUndefinedInFunction(t *testing.T) {
	e := newTestEngine(t)
	err := e.Define(`
function s = f(n)
  for i = 1:n
    acc(i) = i*i;
  end
  s = sum(acc);
end`)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.Call("f", []*mat.Value{mat.Scalar(4)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantScalar(t, outs[0], 1+4+9+16)
}

func TestCompiledCallsInterpretedFallback(t *testing.T) {
	// a compiled caller invoking a function that cannot compile (uses
	// global) must still work through the interpreter fallback
	e := New(Options{Tier: TierJIT})
	err := e.Define(`
function s = top(n)
  s = 0;
  for i = 1:n
    s = s + helper(i);
  end
end
function y = helper(x)
  global bias
  y = x + bias;
end`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EvalString("global bias\nbias = 100;"); err != nil {
		t.Fatal(err)
	}
	outs, err := e.Call("top", []*mat.Value{mat.Scalar(3)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantScalar(t, outs[0], 1+2+3+300)
}
