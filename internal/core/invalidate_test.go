package core

import (
	"testing"

	"repro/internal/mat"
)

// TestRedefinitionInvalidatesRepository: the paper's repository snoops
// source and "trigger[s] recompilations when the source code changes".
// Redefining a function must drop stale compiled entries.
func TestRedefinitionInvalidatesRepository(t *testing.T) {
	e := New(Options{Tier: TierJIT, Seed: 2})
	if err := e.Define("function y = f(x)\n  y = x + 1;\nend"); err != nil {
		t.Fatal(err)
	}
	out, err := e.Call("f", []*mat.Value{mat.Scalar(10)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantScalar(t, out[0], 11)
	if len(e.Repo().Entries("f")) == 0 {
		t.Fatal("no compiled entry after first call")
	}

	// redefine: the compiled version for the old body must not survive
	if err := e.Define("function y = f(x)\n  y = x * 100;\nend"); err != nil {
		t.Fatal(err)
	}
	if n := len(e.Repo().Entries("f")); n != 0 {
		t.Fatalf("%d stale entries survived redefinition", n)
	}
	out, err = e.Call("f", []*mat.Value{mat.Scalar(10)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantScalar(t, out[0], 1000)
}

// TestSpeculativeEntriesRefreshAfterRedefinition mirrors the snooping
// scenario in speculative mode.
func TestSpeculativeEntriesRefreshAfterRedefinition(t *testing.T) {
	e := New(Options{Tier: TierSpec, Seed: 2})
	if err := e.Define("function y = g(n)\n  y = 0;\n  for i = 1:n\n    y = y + i;\n  end\nend"); err != nil {
		t.Fatal(err)
	}
	e.Precompile()
	out, err := e.Call("g", []*mat.Value{mat.Scalar(10)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantScalar(t, out[0], 55)

	if err := e.Define("function y = g(n)\n  y = 0;\n  for i = 1:n\n    y = y + i*i;\n  end\nend"); err != nil {
		t.Fatal(err)
	}
	e.Precompile()
	out, err = e.Call("g", []*mat.Value{mat.Scalar(10)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantScalar(t, out[0], 385)
}

// TestInterpFallbackCached: an uncompilable function (here: it uses
// nargin, which the disambiguator cannot classify) must fall back to
// interpretation under every tier, and the fallback decision must be
// cached as a repository entry rather than retried per call.
func TestInterpFallbackCached(t *testing.T) {
	src := `
function y = h(a, b)
  y = nargin * 10;
end`
	e := New(Options{Tier: TierJIT, Seed: 2})
	if err := e.Define(src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		out, err := e.Call("h", []*mat.Value{mat.Scalar(1), mat.Scalar(2)}, 1)
		if err != nil {
			t.Fatal(err)
		}
		wantScalar(t, out[0], 20)
	}
	entries := e.Repo().Entries("h")
	if len(entries) != 1 {
		t.Fatalf("fallback should cache one entry, have %d", len(entries))
	}
	if entries[0].Code != nil {
		t.Error("fallback entry must not carry compiled code")
	}
	if entries[0].Hits() < 2 {
		t.Errorf("fallback entry not reused: hits=%d", entries[0].Hits())
	}
}
