package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cancel"
	"repro/internal/mat"
	"repro/internal/repo"
)

// interruptAfter raises the engine's flag after d and returns a stopper.
func interruptAfter(e *Engine, d time.Duration) *time.Timer {
	return time.AfterFunc(d, e.Interrupt)
}

// TestDeadlineAbortsInterpLoop pins the satellite requirement: a
// deadline kills `while 1; end` in the interactive interpreter in well
// under a second.
func TestDeadlineAbortsInterpLoop(t *testing.T) {
	e := New(Options{Tier: TierJIT})
	defer e.Close()
	timer := interruptAfter(e, 50*time.Millisecond)
	defer timer.Stop()
	t0 := time.Now()
	err := e.EvalString("while 1; end")
	elapsed := time.Since(t0)
	if !errors.Is(err, cancel.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("interrupt took %v, want < 1s", elapsed)
	}
	// The engine keeps serving after the flag is cleared.
	e.ResetInterrupt()
	if err := e.EvalString("x = 1 + 1;"); err != nil {
		t.Fatalf("eval after interrupt: %v", err)
	}
}

// TestDeadlineAbortsCompiledLoop pins the VM back-edge safepoint: an
// effectively infinite loop in JIT-compiled code dies on Interrupt.
func TestDeadlineAbortsCompiledLoop(t *testing.T) {
	e := New(Options{Tier: TierJIT})
	defer e.Close()
	src := `function y = spin(n)
y = 0;
while y < n
  y = y + 1;
end
`
	if err := e.Define(src); err != nil {
		t.Fatal(err)
	}
	timer := interruptAfter(e, 50*time.Millisecond)
	defer timer.Stop()
	t0 := time.Now()
	_, err := e.Call("spin", []*mat.Value{mat.Scalar(1e18)}, 1)
	elapsed := time.Since(t0)
	if !errors.Is(err, cancel.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("interrupt took %v, want < 1s", elapsed)
	}
	// The loop must actually have been JIT-compiled, or this test
	// silently degrades to the interpreter safepoint.
	compiled := false
	for _, en := range e.Repo().Entries("spin") {
		if en.Quality != repo.QualityInterp {
			compiled = true
		}
	}
	if !compiled {
		t.Fatal("spin fell back to the interpreter; VM back-edge not exercised")
	}
	e.ResetInterrupt()
	outs, err := e.Call("spin", []*mat.Value{mat.Scalar(3)}, 1)
	if err != nil || outs[0].Re()[0] != 3 {
		t.Fatalf("call after interrupt: %v %v", outs, err)
	}
}

// TestInterruptAbortsRecursion covers loop-free divergence: the
// call-entry safepoint kills infinite recursion.
func TestInterruptAbortsRecursion(t *testing.T) {
	e := New(Options{Tier: TierInterp})
	defer e.Close()
	if err := e.Define("function y = rec(n)\ny = rec(n + 1);\n"); err != nil {
		t.Fatal(err)
	}
	timer := interruptAfter(e, 50*time.Millisecond)
	defer timer.Stop()
	t0 := time.Now()
	_, err := e.Call("rec", []*mat.Value{mat.Scalar(0)}, 1)
	if !errors.Is(err, cancel.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Fatalf("interrupt took %v, want < 1s", elapsed)
	}
}
