package core

import (
	"time"

	"repro/internal/ast"
	"repro/internal/codegen"
	"repro/internal/mat"
	"repro/internal/repo"
	"repro/internal/types"
	"repro/internal/vm"
)

// repoState adapts the code repository to the engine: it implements the
// paper's invocation protocol — the front end passes (function name,
// argument values) to the repository, the function locator retrieves
// safe compiled code by type-signature matching, and a miss triggers
// JIT compilation (or, in speculative mode, usually hits ahead-of-time
// compiled code).
type repoState struct {
	e *Engine
	r *repo.Repository
	// callDepth tracks nesting so execution time is only accumulated at
	// the outermost invocation (Figure 6 decomposition).
	callDepth int
}

func newRepoState(e *Engine) *repoState {
	return &repoState{e: e, r: repo.New()}
}

// Repo exposes the repository (stats for the harness and majicc).
func (e *Engine) Repo() *repo.Repository { return e.repo.r }

func (r *repoState) invalidate(name string) {
	r.r.Invalidate(name)
}

// precompile performs the speculative ahead-of-time compilation the
// repository does while "snooping the source code directories".
func (r *repoState) precompile(fn *ast.Function) {
	sig, err := r.e.speculate(fn)
	if err != nil {
		return
	}
	code, err := r.e.compile(fn, sig, pipelineOpts{optimize: true})
	if err != nil {
		return
	}
	r.r.Insert(fn.Name, &repo.Entry{Sig: sig, Code: code, Quality: repo.QualityOpt, Speculative: true})
}

func (r *repoState) invoke(fn *ast.Function, args []*mat.Value, nout int) ([]*mat.Value, error) {
	e := r.e
	sig := types.SignatureOf(args)
	if entry := r.r.Lookup(fn.Name, sig); entry != nil {
		r.maybeUpgrade(fn, entry)
		return r.runEntry(entry, fn, args, nout)
	}

	// Miss → compile. The signature is widened when the repository has
	// already compiled this function for the same intrinsic kinds:
	// without widening, recursive calls such as fibonacci(n-1) would
	// compile one version per distinct constant argument.
	csig := sig
	if r.r.SameKindsDifferentDetail(fn.Name, sig) {
		csig = widen(sig)
	}

	var po pipelineOpts
	switch e.opts.Tier {
	case TierMCC:
		// Generic batch compilation: every parameter typed ⊤.
		csig = topSignature(len(sig))
		po = pipelineOpts{generic: true}
	case TierFalcon:
		po = pipelineOpts{optimize: true}
	default: // TierJIT, and TierSpec's runtime fallback
		po = pipelineOpts{optimize: e.opts.JITBackendOpts}
	}

	code, err := e.compile(fn, csig, po)
	if err != nil {
		if _, unsupported := err.(*codegen.ErrUnsupported); unsupported {
			// Defer to runtime, like MaJIC does for ambiguous symbols:
			// record an interpret-only entry so the decision is cached.
			entry := &repo.Entry{Sig: topSignature(len(sig)), Quality: repo.QualityInterp}
			r.r.Insert(fn.Name, entry)
			return r.runEntry(entry, fn, args, nout)
		}
		return nil, err
	}
	quality := repo.QualityJIT
	if po.optimize {
		quality = repo.QualityOpt
	}
	entry := &repo.Entry{Sig: csig, Code: code, Quality: quality}
	r.r.Insert(fn.Name, entry)
	return r.runEntry(entry, fn, args, nout)
}

func (r *repoState) runEntry(entry *repo.Entry, fn *ast.Function, args []*mat.Value, nout int) ([]*mat.Value, error) {
	r.callDepth++
	var t0 time.Time
	if r.callDepth == 1 {
		t0 = time.Now()
	}
	var outs []*mat.Value
	var err error
	if entry.Quality == repo.QualityInterp {
		outs, err = r.e.in.CallFunction(fn, args, nout, r.e.globals)
	} else {
		outs, err = vm.Run(entry.Code, r.e, args)
	}
	if r.callDepth == 1 {
		r.e.timing.Exec += time.Since(t0).Nanoseconds()
	}
	r.callDepth--
	if err != nil {
		return nil, err
	}
	if len(outs) > nout {
		outs = outs[:nout]
	}
	return outs, nil
}

// maybeUpgrade recompiles a hot JIT entry with the optimizing backend,
// replacing the code in place so every later lookup of this entry runs
// the better version (paper §2: "The generated code can later be
// recompiled (and replaced in the repository) using a better
// compiler").
func (r *repoState) maybeUpgrade(fn *ast.Function, entry *repo.Entry) {
	threshold := r.e.opts.RecompileThreshold
	if threshold <= 0 || entry.Quality != repo.QualityJIT || entry.Hits < threshold {
		return
	}
	code, err := r.e.compile(fn, entry.Sig, pipelineOpts{optimize: true})
	if err != nil {
		// Upgrade failure is harmless; keep the JIT code and stop trying.
		entry.Quality = repo.QualityOpt
		return
	}
	entry.Code = code
	entry.Quality = repo.QualityOpt
}

// widen relaxes ranges (and, where bounds differ across calls, shapes
// would already differ in kind handling) so one compiled version covers
// a family of invocations.
func widen(sig types.Signature) types.Signature {
	out := make(types.Signature, len(sig))
	for i, t := range sig {
		t.R = types.RangeTop
		if !t.IsScalar() {
			// Non-scalar parameters widen their shape bounds too: the
			// same matrix-kind signature should serve all sizes.
			t.MinShape = types.ShapeBot
			t.MaxShape = types.ShapeTop
		}
		out[i] = t
	}
	return out
}

func topSignature(n int) types.Signature {
	sig := make(types.Signature, n)
	for i := range sig {
		sig[i] = types.Top
	}
	return sig
}
