package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/codegen"
	"repro/internal/interp"
	"repro/internal/mat"
	"repro/internal/profile"
	"repro/internal/repo"
	"repro/internal/telemetry"
	"repro/internal/types"
	"repro/internal/vm"
)

// repoState adapts the code repository to the engine: it implements the
// paper's invocation protocol — the front end passes (function name,
// argument values) to the repository, the function locator retrieves
// safe compiled code by type-signature matching, and a miss triggers
// JIT compilation (or, in speculative mode, usually hits ahead-of-time
// compiled code).
//
// With Options.AsyncCompile, misses do not compile on the caller's
// goroutine: they enqueue a job on the engine's worker pool, keyed by
// (function, widened signature, generation) so concurrent misses on the
// same key coalesce into a single compile (single flight). The tier
// decides what the caller does while the job runs — see invokeAsync.
type repoState struct {
	e *Engine
	r *repo.Repository
	// callDepth tracks nesting so execution time is only accumulated at
	// the outermost invocation (Figure 6 decomposition). It is atomic
	// because async mode allows concurrent callers; under concurrency
	// the "outermost" attribution becomes approximate (only the first
	// in-flight call times itself), which keeps the counter meaningful
	// without a per-goroutine side table.
	callDepth int32
}

func newRepoState(e *Engine) *repoState {
	return &repoState{e: e, r: e.lib.repo}
}

// Repo exposes the repository (stats for the harness and majicc). With
// a shared Library this is the library's process-wide repository.
func (e *Engine) Repo() *repo.Repository { return e.repo.r }

func (r *repoState) invalidate(name string) {
	r.r.Invalidate(name)
}

// precompile performs the speculative ahead-of-time compilation the
// repository does while "snooping the source code directories". In
// async mode the job runs on the worker pool — the paper's behind-the-
// scenes story — and publishes its entry when it lands; the single-
// flight key prevents duplicate speculative jobs for one source
// generation.
func (r *repoState) precompile(fn *ast.Function) {
	if r.e.lib.queue == nil {
		r.precompileSync(fn)
		return
	}
	name := fn.Name
	gen := r.r.Generation(name)
	key := fmt.Sprintf("spec\x00%s\x00%d", name, gen)
	r.e.lib.queue.Do(key, func() error {
		fn := r.e.LookupFunction(name)
		if fn == nil {
			return nil
		}
		sig, err := r.e.speculate(fn)
		if err != nil {
			return nil // speculation failure is not an error; JIT covers it
		}
		if r.r.Covered(name, sig) {
			return nil
		}
		code, err := r.e.compile(fn, sig, pipelineOpts{optimize: true})
		if err != nil {
			return nil
		}
		r.r.InsertAt(name, &repo.Entry{Sig: sig, Code: code, Quality: repo.QualityOpt, Speculative: true}, gen)
		return nil
	})
}

func (r *repoState) precompileSync(fn *ast.Function) {
	sig, err := r.e.speculate(fn)
	if err != nil {
		return
	}
	code, err := r.e.compile(fn, sig, pipelineOpts{optimize: true})
	if err != nil {
		return
	}
	r.r.Insert(fn.Name, &repo.Entry{Sig: sig, Code: code, Quality: repo.QualityOpt, Speculative: true})
}

func (r *repoState) invoke(fn *ast.Function, args []*mat.Value, nout int) ([]*mat.Value, error) {
	e := r.e
	if e.opts.Tiered && e.opts.Tier == TierJIT {
		return r.invokeTiered(fn, args, nout)
	}
	sig := types.SignatureOf(args)
	if entry := r.r.Lookup(fn.Name, sig); entry != nil {
		r.maybeUpgrade(fn, entry)
		return r.runEntry(entry, fn, args, nout)
	}

	// Miss → compile. The signature is widened when the repository has
	// already compiled this function for the same intrinsic kinds:
	// without widening, recursive calls such as fibonacci(n-1) would
	// compile one version per distinct constant argument.
	csig := sig
	if r.r.SameKindsDifferentDetail(fn.Name, sig) {
		csig = widen(sig)
	}

	var po pipelineOpts
	switch e.opts.Tier {
	case TierMCC:
		// Generic batch compilation: every parameter typed ⊤.
		csig = topSignature(len(sig))
		po = pipelineOpts{generic: true}
	case TierFalcon:
		po = pipelineOpts{optimize: true}
	default: // TierJIT, and TierSpec's runtime fallback
		po = pipelineOpts{optimize: e.opts.JITBackendOpts}
	}

	if e.lib.queue != nil {
		return r.invokeAsync(fn, sig, csig, po, args, nout)
	}
	return r.invokeSync(fn, sig, csig, po, args, nout)
}

// invokeSync is the original inline-compile miss path: the default, so
// single-threaded behaviour (and the paper's Figure 4/6 reproductions)
// is unchanged when async mode is off.
func (r *repoState) invokeSync(fn *ast.Function, sig, csig types.Signature, po pipelineOpts, args []*mat.Value, nout int) ([]*mat.Value, error) {
	e := r.e
	code, err := e.compile(fn, csig, po)
	if err != nil {
		if _, unsupported := err.(*codegen.ErrUnsupported); unsupported {
			// Defer to runtime, like MaJIC does for ambiguous symbols:
			// record an interpret-only entry so the decision is cached.
			entry := &repo.Entry{Sig: topSignature(len(sig)), Quality: repo.QualityInterp}
			r.r.Insert(fn.Name, entry)
			return r.runEntry(entry, fn, args, nout)
		}
		return nil, err
	}
	quality := repo.QualityJIT
	if po.optimize {
		quality = repo.QualityOpt
	}
	entry := &repo.Entry{Sig: csig, Code: code, Quality: quality}
	r.r.Insert(fn.Name, entry)
	return r.runEntry(entry, fn, args, nout)
}

// invokeAsync enqueues the miss's compile job and applies the per-tier
// responsiveness policy:
//
//   - TierJIT (and the batch tiers mcc/falcon): block on the job. The
//     first caller pays the compile latency exactly once; concurrent
//     callers coalesce on the single-flight ticket, so N simultaneous
//     misses cost one compile.
//   - TierSpec: never block. The caller interprets this invocation (the
//     paper's Figure 6 responsiveness story: speculative mode trades
//     first-call speed for zero perceived compile pauses) and the
//     compiled entry serves later calls once the job lands.
func (r *repoState) invokeAsync(fn *ast.Function, sig, csig types.Signature, po pipelineOpts, args []*mat.Value, nout int) ([]*mat.Value, error) {
	e := r.e
	name := fn.Name
	// Order matters: read the generation before re-resolving the
	// function inside the job. If a redefinition lands in between, the
	// job compiles the new body but publishes at the old generation and
	// is dropped — conservative, never wrong.
	gen := r.r.Generation(name)
	key := fmt.Sprintf("jit\x00%s\x00%s\x00%d", name, csig.Key(), gen)
	arity := len(sig)
	ticket, _ := e.lib.queue.Do(key, func() error {
		return r.compileJob(name, csig, po, arity, gen)
	})

	if e.opts.Tier == TierSpec {
		// Non-blocking fallback: interpret now, hit compiled code later.
		// The fallback entry is transient — not inserted — so the
		// repository keeps exactly one (compiled) entry per key.
		return r.runEntry(&repo.Entry{Quality: repo.QualityInterp}, fn, args, nout)
	}

	if e.tracer != nil {
		// Queue-wait span: how long this caller blocked on the compile
		// ticket (zero when the job already landed).
		tw := time.Now()
		err := ticket.Wait()
		e.tracer.Span(telemetry.CatQueue, name, e.id, tw, time.Since(tw))
		if err != nil {
			return nil, err
		}
	} else if err := ticket.Wait(); err != nil {
		return nil, err
	}
	if entry := r.r.Lookup(name, sig); entry != nil {
		return r.runEntry(entry, fn, args, nout)
	}
	// The generation moved while the job was in flight (source
	// redefined) and the publish was dropped. Interpret this call with
	// the function the caller resolved; the next call recompiles fresh.
	return r.runEntry(&repo.Entry{Quality: repo.QualityInterp}, fn, args, nout)
}

// compileJob is the worker-side body of a miss job. It re-resolves the
// function by name (see the ordering note in invokeAsync), compiles,
// and publishes through InsertAt so stale generations are dropped.
func (r *repoState) compileJob(name string, csig types.Signature, po pipelineOpts, arity int, gen uint64) error {
	e := r.e
	fn := e.LookupFunction(name)
	if fn == nil {
		return nil // deleted while queued; nothing to publish
	}
	if r.r.Covered(name, csig) {
		// An equivalent entry landed between the miss and this job
		// (single-flight only spans a job's lifetime); don't duplicate.
		return nil
	}
	code, err := e.compile(fn, csig, po)
	if err != nil {
		if _, unsupported := err.(*codegen.ErrUnsupported); unsupported {
			r.r.InsertAt(name, &repo.Entry{Sig: topSignature(arity), Quality: repo.QualityInterp}, gen)
			return nil
		}
		return err
	}
	quality := repo.QualityJIT
	if po.optimize {
		quality = repo.QualityOpt
	}
	r.r.InsertAt(name, &repo.Entry{Sig: csig, Code: code, Quality: quality}, gen)
	return nil
}

func (r *repoState) runEntry(entry *repo.Entry, fn *ast.Function, args []*mat.Value, nout int) ([]*mat.Value, error) {
	depth := atomic.AddInt32(&r.callDepth, 1)
	var t0 time.Time
	if depth == 1 {
		t0 = time.Now()
	}
	var outs []*mat.Value
	var err error
	if entry.Quality == repo.QualityInterp {
		outs, err = r.e.in.CallFunction(fn, args, nout, r.e.globals)
	} else {
		outs, err = vm.Run(entry.Code, r.e, args)
	}
	if depth == 1 {
		d := time.Since(t0)
		atomic.AddInt64(&r.e.timing.Exec, d.Nanoseconds())
		r.e.tracer.Span(telemetry.CatExec, fn.Name, r.e.id, t0, d)
	}
	atomic.AddInt32(&r.callDepth, -1)
	if err != nil {
		return nil, err
	}
	if len(outs) > nout {
		outs = outs[:nout]
	}
	return outs, nil
}

// invokeTiered is the profile-guided execution path (Options.Tiered,
// TierJIT only). Calls start in the interpreter — a repository miss
// never compiles on the caller's goroutine, so first-eval latency stays
// interpreter-fast — while every call feeds the hotness profile for its
// (function, widened signature) bucket. A bucket that crosses the
// threshold enqueues a background recompile at QualityOpt with the
// profile-narrowed joined signature (maybePromote), and the published
// entry serves all later calls. While a call is still interpreting, the
// activation carries a tiered Frame: loop back-edges count toward the
// same bucket, and a hot loop transfers mid-run into compiled code via
// on-stack replacement (see osr.go).
func (r *repoState) invokeTiered(fn *ast.Function, args []*mat.Value, nout int) ([]*mat.Value, error) {
	e := r.e
	sig := types.SignatureOf(args)
	if entry := r.r.Lookup(fn.Name, sig); entry != nil && entry.Code != nil {
		return r.runEntry(entry, fn, args, nout)
	}
	// Interpret-only lookup hits (cached unsupported decisions) fall
	// through: the interpreter serves them, and the profile keeps
	// counting in case a narrower profiled signature compiles where the
	// widened one could not.
	gen := r.r.Generation(fn.Name)
	sp := e.lib.profiles.Func(fn.Name, gen).Sig(widen(sig).Key())
	sp.Observe(sig)
	r.maybePromote(fn.Name, sp, gen, len(sig))

	fr := &interp.Frame{
		Fn:        fn,
		Nout:      nout,
		Host:      e,
		Gen:       gen,
		Threshold: int64(e.tierThreshold()),
		BackEdges: sp.BackEdgeCounter(),
		Prof:      sp,
	}
	depth := atomic.AddInt32(&r.callDepth, 1)
	var t0 time.Time
	if depth == 1 {
		t0 = time.Now()
	}
	outs, err := e.in.CallFunctionTiered(fn, args, nout, e.globals, fr)
	if depth == 1 {
		d := time.Since(t0)
		atomic.AddInt64(&e.timing.Exec, d.Nanoseconds())
		e.tracer.Span(telemetry.CatExec, fn.Name, e.id, t0, d)
	}
	atomic.AddInt32(&r.callDepth, -1)
	if err != nil {
		return nil, err
	}
	if len(outs) > nout {
		outs = outs[:nout]
	}
	return outs, nil
}

// maybePromote enqueues the background tier-up once a signature bucket
// crosses the hotness threshold. The compile signature is the join of
// every exact signature observed — strictly narrower than the widened
// lookup key, so ranges and shapes the workload never exceeds stay
// available to the optimizer — except on the final promotion round,
// which compiles the fully widened form so the entry stops churning.
func (r *repoState) maybePromote(name string, sp *profile.SigProfile, gen uint64, arity int) {
	e := r.e
	if !sp.ShouldPromote(int64(e.tierThreshold())) {
		return
	}
	csig := sp.Observed()
	if len(csig) == 0 {
		csig = topSignature(arity)
	}
	if sp.PromotionRound() >= profile.MaxPromotions-1 {
		csig = widen(csig)
	}
	job := func() error {
		if e.LookupFunction(name) == nil || r.r.Generation(name) != gen {
			sp.PromotionDone()
			return nil
		}
		if r.r.Covered(name, csig) {
			sp.PromotionDone()
			return nil
		}
		t0 := time.Now()
		code, err := e.compile(e.LookupFunction(name), csig, pipelineOpts{optimize: true})
		e.tracer.Span(telemetry.CatTierUp, name, e.id, t0, time.Since(t0))
		if err != nil {
			if _, unsupported := err.(*codegen.ErrUnsupported); unsupported {
				// Cache the decision so plain lookups stop missing, and
				// stop promoting this bucket.
				r.r.InsertAt(name, &repo.Entry{Sig: topSignature(arity), Quality: repo.QualityInterp}, gen)
			}
			sp.PromotionFailed()
			return nil
		}
		if r.r.InsertAt(name, &repo.Entry{Sig: csig, Code: code, Quality: repo.QualityOpt}, gen) {
			e.lib.profiles.CountPromotion()
			e.lib.journal.Record(telemetry.Event{
				Kind:   telemetry.EventPromotion,
				Func:   name,
				Sig:    csig.Key(),
				Cause:  "hot-signature",
				Gen:    gen,
				Detail: fmt.Sprintf("entries=%d round=%d", sp.Entries(), sp.PromotionRound()+1),
			})
		}
		sp.PromotionDone()
		return nil
	}
	if e.lib.queue != nil {
		key := fmt.Sprintf("tier\x00%s\x00%s\x00%d", name, csig.Key(), gen)
		e.lib.queue.Do(key, job)
	} else {
		job()
	}
}

// maybeUpgrade recompiles a hot JIT entry with the optimizing backend,
// replacing the entry in the repository so every later lookup runs the
// better version (paper §2: "The generated code can later be
// recompiled (and replaced in the repository) using a better
// compiler"). The published entry is never mutated in place — a
// replacement entry is swapped in via Replace, which keeps concurrent
// executors of the old code safe and refuses to resurrect invalidated
// functions. In async mode the upgrade compiles on the worker pool.
func (r *repoState) maybeUpgrade(fn *ast.Function, entry *repo.Entry) {
	threshold := r.e.opts.RecompileThreshold
	if threshold <= 0 || entry.Quality != repo.QualityJIT || entry.Hits() < int64(threshold) {
		return
	}
	name := fn.Name
	if r.e.lib.queue != nil {
		gen := r.r.Generation(name)
		key := fmt.Sprintf("up\x00%s\x00%s\x00%d", name, entry.Sig.Key(), gen)
		r.e.lib.queue.Do(key, func() error {
			r.upgrade(name, entry)
			return nil
		})
		return
	}
	r.upgrade(name, entry)
}

func (r *repoState) upgrade(name string, entry *repo.Entry) {
	fn := r.e.LookupFunction(name)
	if fn == nil {
		return
	}
	repl := &repo.Entry{Sig: entry.Sig, Quality: repo.QualityOpt, Speculative: entry.Speculative}
	code, err := r.e.compile(fn, entry.Sig, pipelineOpts{optimize: true})
	if err != nil {
		// Upgrade failure is harmless; keep the JIT code and stop trying
		// (the replacement carries QualityOpt so the threshold check
		// never fires again for this entry).
		repl.Code = entry.Code
	} else {
		repl.Code = code
	}
	r.r.Replace(name, entry, repl)
}

// widen relaxes ranges (and, where bounds differ across calls, shapes
// would already differ in kind handling) so one compiled version covers
// a family of invocations.
func widen(sig types.Signature) types.Signature {
	out := make(types.Signature, len(sig))
	for i, t := range sig {
		t.R = types.RangeTop
		if !t.IsScalar() {
			// Non-scalar parameters widen their shape bounds too: the
			// same matrix-kind signature should serve all sizes.
			t.MinShape = types.ShapeBot
			t.MaxShape = types.ShapeTop
		}
		out[i] = t
	}
	return out
}

func topSignature(n int) types.Signature {
	sig := make(types.Signature, n)
	for i := range sig {
		sig[i] = types.Top
	}
	return sig
}
