package core

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/compilequeue"
	"repro/internal/parser"
	"repro/internal/persist"
	"repro/internal/profile"
	"repro/internal/repo"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Library is the shared code store behind one or more engines: the
// registered function sources, the compiled-code repository, and
// (optionally) the asynchronous compile pool. A single-session engine
// owns a private library; the evaluation daemon creates one process-
// wide Library and hands it to every session engine via
// Options.Library, so one session's JIT compile of qmr(A,b) warms every
// other session.
//
// Sharing contract: the library models one snooped source directory,
// exactly like the paper's repository. Function definitions are global
// to the library — when any engine (re)defines f, the new body is
// published to all engines and the repository generation for f advances,
// so in-flight compile jobs against the old body publish into the void
// (repo.InsertAt drops them) and no engine can ever run code compiled
// from another generation's source. Workspaces remain per-engine; only
// code is shared.
type Library struct {
	fmu   sync.RWMutex
	funcs map[string]*ast.Function
	// defTimes stamps each function's last source change (unix nanos).
	// Cluster replication uses it as a last-writer-wins tiebreak: a
	// replicated redefinition is adopted only when strictly newer than
	// the live one, so a delayed replica of an old source can never
	// clobber a newer definition. Locally registered functions are
	// stamped with the local clock; replica-applied ones carry the
	// origin's stamp; snapshot-restored ones are left at zero (the
	// snapshot format predates clustering, and "any explicit definition
	// beats a restored one" is the safe default).
	defTimes map[string]int64
	repo     *repo.Repository
	// queue is the async compile pool (nil in synchronous mode). It is
	// owned by the library: engines submit jobs but never close it.
	queue *compilequeue.Pool
	// profiles is the tiering hotness store: per-(function, widened
	// signature) call counts, back-edge counts, and observed-type joins.
	// Always present (so /metrics can read it unconditionally); it only
	// accumulates when an attached engine runs with Options.Tiered.
	profiles *profile.Store

	// writer is the write-behind snapshotter (nil unless
	// EnablePersistence attached one) and loadStats the record of the
	// warm-start attempt; pmu guards both.
	pmu       sync.Mutex
	writer    *persist.Writer
	loadStats persist.LoadStats

	// journal is the tiering event journal (may be nil — every Record
	// call is nil-safe): promotions, evictions, snapshot load/flush, and
	// cause-attributed deopts, shared by everything attached to this
	// library.
	journal *telemetry.Journal
}

// LibraryOptions configure a shared library.
type LibraryOptions struct {
	// AsyncCompile starts a background compile pool; every engine
	// attached to the library then compiles repository misses on the
	// pool (single-flight deduplicated across all of them) instead of
	// inline on the calling goroutine.
	AsyncCompile bool
	// CompileWorkers bounds the pool (0 = GOMAXPROCS). Ignored unless
	// AsyncCompile.
	CompileWorkers int
	// RepoMaxEntries caps the live compiled entries per function name,
	// evicting the least-hit entry on overflow. 0 = unbounded. A
	// long-lived daemon sets a cap so signature churn cannot grow the
	// repository without bound.
	RepoMaxEntries int
	// Tiered starts the compile pool even without AsyncCompile: tiered
	// execution promotes hot signatures and compiles OSR continuations
	// in the background, which needs workers.
	Tiered bool
	// Tracer, when set, records queue-wait and job-run spans for every
	// background compile job on the library's pool.
	Tracer *telemetry.Tracer
	// Journal, when set, receives the library's tiering events
	// (promotions, evictions, snapshot load/flush, deopts with causes).
	Journal *telemetry.Journal
}

// NewLibrary creates a shared code library.
func NewLibrary(opts LibraryOptions) *Library {
	l := &Library{
		funcs:    make(map[string]*ast.Function),
		defTimes: make(map[string]int64),
		repo:     repo.NewBounded(opts.RepoMaxEntries),
		profiles: profile.NewStore(),
		journal:  opts.Journal,
	}
	l.repo.SetJournal(opts.Journal)
	if opts.AsyncCompile || opts.Tiered {
		workers := opts.CompileWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		l.queue = compilequeue.New(workers)
		l.queue.SetTracer(opts.Tracer)
	}
	return l
}

// Journal returns the library's tiering event journal (nil when none
// was attached).
func (l *Library) Journal() *telemetry.Journal { return l.journal }

// Close shuts down the library's compile pool (no-op in sync mode) and
// then flushes and closes the persistence writer, so the final snapshot
// includes every entry the draining compile queue published. Queued
// jobs finish first; jobs submitted later run inline, so attached
// engines keep working synchronously.
func (l *Library) Close() {
	if l.queue != nil {
		l.queue.Close()
	}
	l.pmu.Lock()
	w := l.writer
	l.pmu.Unlock()
	if w != nil {
		w.Close()
	}
}

// Drain blocks until all in-flight background compile jobs have
// published (or been dropped as stale). A no-op in synchronous mode.
func (l *Library) Drain() {
	if l.queue != nil {
		l.queue.Drain()
	}
}

// Repo exposes the shared repository (stats, dumps, tests).
func (l *Library) Repo() *repo.Repository { return l.repo }

// QueueStats returns the compile pool's counters (zero in sync mode).
func (l *Library) QueueStats() compilequeue.Stats {
	if l.queue == nil {
		return compilequeue.Stats{}
	}
	return l.queue.Stats()
}

// Profiles exposes the tiering hotness store.
func (l *Library) Profiles() *profile.Store { return l.profiles }

// ProfileStats returns the tiering profile's counters for /metrics.
func (l *Library) ProfileStats() profile.Stats { return l.profiles.Stats() }

// Lookup resolves a registered function by name (nil if absent). Safe
// from any goroutine.
func (l *Library) Lookup(name string) *ast.Function {
	l.fmu.RLock()
	defer l.fmu.RUnlock()
	return l.funcs[name]
}

// Names returns the registered function names, sorted.
func (l *Library) Names() []string {
	l.fmu.RLock()
	out := make([]string, 0, len(l.funcs))
	for n := range l.funcs {
		out = append(out, n)
	}
	l.fmu.RUnlock()
	sort.Strings(out)
	return out
}

// snapshot returns the registered functions (for Precompile sweeps).
func (l *Library) snapshot() []*ast.Function {
	l.fmu.RLock()
	defer l.fmu.RUnlock()
	out := make([]*ast.Function, 0, len(l.funcs))
	for _, fn := range l.funcs {
		out = append(out, fn)
	}
	return out
}

// register publishes a (re)definition. The new body is published before
// the repository generation advances: an async job that observes the
// new generation is then guaranteed to resolve the new body (see
// invokeAsync's ordering note).
//
// A redefinition whose source text is byte-identical to the registered
// one is a no-op — the paper's snooper invalidates on *change*, not on
// every sighting of a .m file. This is what lets a warm-started daemon
// keep its loaded entries when sessions re-send the same definitions:
// without it, every replayed definition would advance the generation
// and drop the code the snapshot just restored.
//
// Publish and invalidation happen under the function-map lock, so a
// snapshot export (which reads sources and entries under the same
// lock) can never pair one generation's source text with another
// generation's compiled entries.
func (l *Library) register(fn *ast.Function) {
	l.fmu.Lock()
	if old, ok := l.funcs[fn.Name]; ok && old.Source != "" && old.Source == fn.Source {
		l.fmu.Unlock()
		return
	}
	l.funcs[fn.Name] = fn
	l.defTimes[fn.Name] = time.Now().UnixNano()
	l.repo.Invalidate(fn.Name)
	l.fmu.Unlock()
}

// DefTime returns the last-writer-wins stamp of a function's current
// definition (0 when unknown — never registered, or restored from a
// pre-cluster snapshot).
func (l *Library) DefTime(name string) int64 {
	l.fmu.RLock()
	defer l.fmu.RUnlock()
	return l.defTimes[name]
}

// --- persistence -------------------------------------------------------------

// ExportSnapshot captures the library's serializable state: every
// registered function source plus its live compiled entries. The
// function-map lock is held across the whole export (register takes the
// same lock for publish+invalidate), so sources and entries are always
// from the same generation. Safe from any goroutine; the write-behind
// snapshotter is the main caller.
func (l *Library) ExportSnapshot() *persist.Snapshot {
	l.fmu.RLock()
	defer l.fmu.RUnlock()
	names := make([]string, 0, len(l.funcs))
	for name := range l.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	snap := &persist.Snapshot{Funcs: make([]persist.FuncState, 0, len(names))}
	profs := make(map[string][]profile.SigDump)
	for _, fd := range l.profiles.Export() {
		profs[fd.Name] = fd.Sigs
	}
	for _, name := range names {
		fn := l.funcs[name]
		h := persist.HashSource(fn.Source)
		fs := persist.FuncState{Name: name, Source: fn.Source, SrcHash: h}
		for _, sd := range profs[name] {
			fs.Profile = append(fs.Profile, persist.ProfileSig{
				Key:       sd.Key,
				Observed:  sd.Observed,
				Entries:   sd.Entries,
				BackEdges: sd.BackEdges,
			})
		}
		for _, e := range l.repo.Entries(name) {
			es := persist.EntryState{
				SrcHash:     h,
				Sig:         e.Sig,
				Quality:     uint8(e.Quality),
				Speculative: e.Speculative,
				Hits:        e.Hits(),
			}
			if e.Code != nil {
				es.Prog = e.Code.P
			}
			fs.Entries = append(fs.Entries, es)
		}
		snap.Funcs = append(snap.Funcs, fs)
	}
	return snap
}

// LoadSnapshot warm-starts the library from a decoded snapshot:
// function sources are registered (without invalidation — the library
// is expected to be empty or to already hold identical sources) and
// their entries re-prepared and published under stats.Loaded. Content
// that fails validation is dropped, never trusted:
//
//   - a function whose recorded source hash does not match its source
//     text, or whose source no longer parses, is skipped entirely;
//   - a function already registered with *different* source keeps the
//     live definition and the snapshot's entries are dropped (the
//     cross-lifetime form of "a redefinition must not resurrect stale
//     code");
//   - an entry whose source hash disagrees with its function's, or
//     whose program the current build cannot prepare, is dropped.
func (l *Library) LoadSnapshot(snap *persist.Snapshot) persist.LoadStats {
	var st persist.LoadStats
	st.Attempted = true
	for _, fs := range snap.Funcs {
		if persist.HashSource(fs.Source) != fs.SrcHash {
			st.RejectedFunctions++
			st.RejectedEntries += len(fs.Entries)
			continue
		}
		file, err := parser.Parse(fs.Source)
		if err != nil || len(file.Stmts) > 0 {
			st.RejectedFunctions++
			st.RejectedEntries += len(fs.Entries)
			continue
		}
		var fn *ast.Function
		for _, f := range file.Funcs {
			if f.Name == fs.Name {
				fn = f
				break
			}
		}
		if fn == nil {
			st.RejectedFunctions++
			st.RejectedEntries += len(fs.Entries)
			continue
		}

		l.fmu.Lock()
		if old, ok := l.funcs[fs.Name]; ok {
			if old.Source != fn.Source {
				// A live definition with different source wins over the
				// snapshot unconditionally.
				l.fmu.Unlock()
				st.RejectedFunctions++
				st.RejectedEntries += len(fs.Entries)
				continue
			}
		} else {
			l.funcs[fs.Name] = fn
		}
		l.fmu.Unlock()
		st.LoadedFunctions++

		if len(fs.Profile) > 0 {
			// Seed the hotness profile so a previously hot signature tiers
			// up on its first call of the new lifetime (warm starts skip
			// the warm-up period entirely).
			sigs := make([]profile.SigDump, 0, len(fs.Profile))
			for _, ps := range fs.Profile {
				sigs = append(sigs, profile.SigDump{
					Key:       ps.Key,
					Observed:  ps.Observed,
					Entries:   ps.Entries,
					BackEdges: ps.BackEdges,
				})
			}
			l.profiles.Load(fs.Name, l.repo.Generation(fs.Name), sigs)
		}

		for _, es := range fs.Entries {
			if es.SrcHash != fs.SrcHash {
				st.RejectedEntries++
				continue
			}
			q := repo.Quality(es.Quality)
			if q > repo.QualityOpt {
				st.RejectedEntries++
				continue
			}
			var code *vm.Compiled
			if es.Prog != nil {
				code, err = vm.Prepare(es.Prog)
				if err != nil {
					st.RejectedEntries++
					continue
				}
			} else if q != repo.QualityInterp {
				// A compiled-quality entry with no program is snapshot
				// damage the codec cannot see; drop it.
				st.RejectedEntries++
				continue
			}
			l.repo.InsertLoaded(fs.Name, repo.Restored(es.Sig, code, q, es.Speculative, es.Hits))
			st.LoadedEntries++
		}
	}
	return st
}

// EnablePersistence warm-starts the library from the snapshot at path
// (when one exists) and attaches a write-behind snapshotter that keeps
// the file current from then on. Stale, corrupt, truncated, or
// foreign-build snapshots are rejected as a whole and the library cold
// starts — the returned LoadStats records what happened; persistence
// failures are never fatal. debounce <= 0 selects the writer default.
func (l *Library) EnablePersistence(path string, debounce time.Duration) persist.LoadStats {
	var st persist.LoadStats
	if data, err := os.ReadFile(path); err == nil {
		st.Attempted = true
		if snap, derr := persist.Decode(data); derr != nil {
			st.Error = derr.Error()
		} else {
			st = l.LoadSnapshot(snap)
		}
	} else if !os.IsNotExist(err) {
		st.Attempted = true
		st.Error = err.Error()
	}
	w := persist.NewWriter(path, l.ExportSnapshot, debounce)
	w.SetJournal(l.journal)
	l.pmu.Lock()
	l.writer = w
	l.loadStats = st
	l.pmu.Unlock()
	l.repo.AddOnChange(w.Notify)
	if st.Attempted {
		cause := "warm-start"
		if st.Error != "" {
			cause = "rejected"
		}
		l.journal.Record(telemetry.Event{
			Kind:  telemetry.EventSnapshotLoad,
			Cause: cause,
			Detail: fmt.Sprintf("loaded %d entries/%d functions, rejected %d/%d, path=%s",
				st.LoadedEntries, st.LoadedFunctions, st.RejectedEntries, st.RejectedFunctions, path),
		})
	}
	return st
}

// FlushPersistence synchronously writes any unsaved repository state (a
// no-op when persistence is disabled or the snapshot is current).
func (l *Library) FlushPersistence() error {
	l.pmu.Lock()
	w := l.writer
	l.pmu.Unlock()
	if w == nil {
		return nil
	}
	return w.Flush()
}

// --- cluster replication -----------------------------------------------------

// ApplyReplicated applies one replication record received from a
// cluster peer: the function source (adopted under last-writer-wins
// when it differs from the live definition) and, when the record
// carries one, a compiled entry published via repo.InsertReplicated.
// The bool reports whether anything was applied; the string names the
// outcome for the ingest counters and is stable enough to assert on:
//
//	"source"            source adopted or already current, no entry in the record
//	"applied"           the compiled entry was published
//	"duplicate"         an equal-or-better entry (or a racing local compile) already serves the signature
//	"stale-definition"  the record's source is older than the live definition
//	"source-hash-mismatch", "source-parse", "entry-hash-mismatch",
//	"bad-quality", "missing-program", "prepare-failed"
//	                    validation failures; the record is dropped whole
//
// The staleness contract matches the warm-start loader: a record is
// never trusted past its guards, an old definition can never clobber a
// newer one (DefTime strictly-greater wins; an exact-stamp tie between
// differing sources breaks deterministically on the source hash so the
// fleet converges on one definition), and the repository generation is
// captured under the
// function-map lock so a local redefinition racing the apply drops the
// entry rather than resurrecting code for dead source.
func (l *Library) ApplyReplicated(rec *persist.EntryRecord) (bool, string) {
	if persist.HashSource(rec.Source) != rec.SrcHash {
		return false, "source-hash-mismatch"
	}
	file, err := parser.Parse(rec.Source)
	if err != nil || len(file.Stmts) > 0 {
		return false, "source-parse"
	}
	var fn *ast.Function
	for _, f := range file.Funcs {
		if f.Name == rec.Func {
			fn = f
			break
		}
	}
	if fn == nil {
		return false, "source-parse"
	}

	l.fmu.Lock()
	if old, ok := l.funcs[rec.Func]; !ok {
		l.funcs[rec.Func] = fn
		l.defTimes[rec.Func] = rec.DefTime
	} else if old.Source == rec.Source {
		// Same definition; adopt the newer stamp so peer digests
		// converge instead of ping-ponging in anti-entropy rounds.
		if rec.DefTime > l.defTimes[rec.Func] {
			l.defTimes[rec.Func] = rec.DefTime
		}
	} else if rec.DefTime > l.defTimes[rec.Func] ||
		(rec.DefTime == l.defTimes[rec.Func] && rec.SrcHash > persist.HashSource(old.Source)) {
		// Genuine remote redefinition: publish then invalidate, in the
		// same order (and under the same lock) as a local register, so
		// no engine can pair the new source with old-generation code.
		// An exact DefTime tie between *different* sources (two nodes
		// registering independently within clock granularity) breaks on
		// the source hash — higher hash wins on every node, so the fleet
		// converges on one definition instead of diverging permanently.
		l.funcs[rec.Func] = fn
		l.defTimes[rec.Func] = rec.DefTime
		l.repo.Invalidate(rec.Func)
	} else {
		l.fmu.Unlock()
		return false, "stale-definition"
	}
	gen := l.repo.Generation(rec.Func)
	l.fmu.Unlock()

	if rec.Entry == nil {
		return true, "source"
	}
	es := rec.Entry
	if es.SrcHash != rec.SrcHash {
		return false, "entry-hash-mismatch"
	}
	q := repo.Quality(es.Quality)
	if q > repo.QualityOpt {
		return false, "bad-quality"
	}
	var code *vm.Compiled
	if es.Prog != nil {
		if code, err = vm.Prepare(es.Prog); err != nil {
			return false, "prepare-failed"
		}
	} else if q != repo.QualityInterp {
		return false, "missing-program"
	}
	// Hits start at zero: the origin's hit counts rank *its* working
	// set, and seeding them here would shield never-used replicas from
	// least-hit eviction.
	e := repo.Restored(es.Sig, code, q, es.Speculative, 0)
	if !l.repo.InsertReplicated(rec.Func, e, gen, rec.Origin) {
		return false, "duplicate"
	}
	return true, "applied"
}

// ExportRecords renders the library's current state as replication
// records: for every registered function, one record per live compiled
// entry (each carrying the full source), or a single source-only record
// when no entries exist yet. origin is stamped on every record. When
// includeReplicated is false, entries that were themselves applied from
// a peer are skipped — the push path uses this so replicas don't echo
// around the cluster; anti-entropy repair passes true so any node can
// heal any other. The function-map lock is held across the export, so
// sources, stamps, and entries are always from the same generation.
func (l *Library) ExportRecords(origin string, includeReplicated bool) []persist.EntryRecord {
	l.fmu.RLock()
	defer l.fmu.RUnlock()
	names := make([]string, 0, len(l.funcs))
	for name := range l.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []persist.EntryRecord
	for _, name := range names {
		fn := l.funcs[name]
		base := persist.EntryRecord{
			Origin:  origin,
			Func:    name,
			Source:  fn.Source,
			SrcHash: persist.HashSource(fn.Source),
			DefTime: l.defTimes[name],
		}
		n := 0
		for _, e := range l.repo.Entries(name) {
			if e.Replicated && !includeReplicated {
				continue
			}
			rec := base
			es := persist.EntryState{
				SrcHash:     base.SrcHash,
				Sig:         e.Sig,
				Quality:     uint8(e.Quality),
				Speculative: e.Speculative,
				Hits:        e.Hits(),
			}
			if e.Code != nil {
				es.Prog = e.Code.P
			}
			rec.Entry = &es
			out = append(out, rec)
			n++
		}
		if n == 0 {
			out = append(out, base)
		}
	}
	return out
}

// ExportDigest summarizes the library for anti-entropy reconciliation:
// per function, the source hash, definition stamp, and sorted exact-
// signature keys of every live entry (replicated ones included — a
// digest describes what this node *has*, not what it compiled). Peers
// compare digests and push only what the other side lacks.
func (l *Library) ExportDigest() map[string]persist.FuncDigest {
	l.fmu.RLock()
	defer l.fmu.RUnlock()
	out := make(map[string]persist.FuncDigest, len(l.funcs))
	for name, fn := range l.funcs {
		d := persist.FuncDigest{
			SrcHash: persist.HashSource(fn.Source),
			DefTime: l.defTimes[name],
		}
		for _, e := range l.repo.Entries(name) {
			d.Entries = append(d.Entries, e.Sig.Key())
		}
		sort.Strings(d.Entries)
		out[name] = d
	}
	return out
}

// PersistMetrics returns the persistence surface for /metrics: the
// warm-start load stats plus the write-behind writer counters. The
// zero value (Enabled false) means persistence is off.
func (l *Library) PersistMetrics() persist.Metrics {
	l.pmu.Lock()
	defer l.pmu.Unlock()
	if l.writer == nil {
		return persist.Metrics{}
	}
	return persist.Metrics{
		Enabled: true,
		Path:    l.writer.Path(),
		Load:    l.loadStats,
		Writer:  l.writer.Stats(),
	}
}
