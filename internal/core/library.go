package core

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/compilequeue"
	"repro/internal/parser"
	"repro/internal/persist"
	"repro/internal/profile"
	"repro/internal/repo"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Library is the shared code store behind one or more engines: the
// registered function sources, the compiled-code repository, and
// (optionally) the asynchronous compile pool. A single-session engine
// owns a private library; the evaluation daemon creates one process-
// wide Library and hands it to every session engine via
// Options.Library, so one session's JIT compile of qmr(A,b) warms every
// other session.
//
// Sharing contract: the library models one snooped source directory,
// exactly like the paper's repository. Function definitions are global
// to the library — when any engine (re)defines f, the new body is
// published to all engines and the repository generation for f advances,
// so in-flight compile jobs against the old body publish into the void
// (repo.InsertAt drops them) and no engine can ever run code compiled
// from another generation's source. Workspaces remain per-engine; only
// code is shared.
type Library struct {
	fmu   sync.RWMutex
	funcs map[string]*ast.Function
	repo  *repo.Repository
	// queue is the async compile pool (nil in synchronous mode). It is
	// owned by the library: engines submit jobs but never close it.
	queue *compilequeue.Pool
	// profiles is the tiering hotness store: per-(function, widened
	// signature) call counts, back-edge counts, and observed-type joins.
	// Always present (so /metrics can read it unconditionally); it only
	// accumulates when an attached engine runs with Options.Tiered.
	profiles *profile.Store

	// writer is the write-behind snapshotter (nil unless
	// EnablePersistence attached one) and loadStats the record of the
	// warm-start attempt; pmu guards both.
	pmu       sync.Mutex
	writer    *persist.Writer
	loadStats persist.LoadStats

	// journal is the tiering event journal (may be nil — every Record
	// call is nil-safe): promotions, evictions, snapshot load/flush, and
	// cause-attributed deopts, shared by everything attached to this
	// library.
	journal *telemetry.Journal
}

// LibraryOptions configure a shared library.
type LibraryOptions struct {
	// AsyncCompile starts a background compile pool; every engine
	// attached to the library then compiles repository misses on the
	// pool (single-flight deduplicated across all of them) instead of
	// inline on the calling goroutine.
	AsyncCompile bool
	// CompileWorkers bounds the pool (0 = GOMAXPROCS). Ignored unless
	// AsyncCompile.
	CompileWorkers int
	// RepoMaxEntries caps the live compiled entries per function name,
	// evicting the least-hit entry on overflow. 0 = unbounded. A
	// long-lived daemon sets a cap so signature churn cannot grow the
	// repository without bound.
	RepoMaxEntries int
	// Tiered starts the compile pool even without AsyncCompile: tiered
	// execution promotes hot signatures and compiles OSR continuations
	// in the background, which needs workers.
	Tiered bool
	// Tracer, when set, records queue-wait and job-run spans for every
	// background compile job on the library's pool.
	Tracer *telemetry.Tracer
	// Journal, when set, receives the library's tiering events
	// (promotions, evictions, snapshot load/flush, deopts with causes).
	Journal *telemetry.Journal
}

// NewLibrary creates a shared code library.
func NewLibrary(opts LibraryOptions) *Library {
	l := &Library{
		funcs:    make(map[string]*ast.Function),
		repo:     repo.NewBounded(opts.RepoMaxEntries),
		profiles: profile.NewStore(),
		journal:  opts.Journal,
	}
	l.repo.SetJournal(opts.Journal)
	if opts.AsyncCompile || opts.Tiered {
		workers := opts.CompileWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		l.queue = compilequeue.New(workers)
		l.queue.SetTracer(opts.Tracer)
	}
	return l
}

// Journal returns the library's tiering event journal (nil when none
// was attached).
func (l *Library) Journal() *telemetry.Journal { return l.journal }

// Close shuts down the library's compile pool (no-op in sync mode) and
// then flushes and closes the persistence writer, so the final snapshot
// includes every entry the draining compile queue published. Queued
// jobs finish first; jobs submitted later run inline, so attached
// engines keep working synchronously.
func (l *Library) Close() {
	if l.queue != nil {
		l.queue.Close()
	}
	l.pmu.Lock()
	w := l.writer
	l.pmu.Unlock()
	if w != nil {
		w.Close()
	}
}

// Drain blocks until all in-flight background compile jobs have
// published (or been dropped as stale). A no-op in synchronous mode.
func (l *Library) Drain() {
	if l.queue != nil {
		l.queue.Drain()
	}
}

// Repo exposes the shared repository (stats, dumps, tests).
func (l *Library) Repo() *repo.Repository { return l.repo }

// QueueStats returns the compile pool's counters (zero in sync mode).
func (l *Library) QueueStats() compilequeue.Stats {
	if l.queue == nil {
		return compilequeue.Stats{}
	}
	return l.queue.Stats()
}

// Profiles exposes the tiering hotness store.
func (l *Library) Profiles() *profile.Store { return l.profiles }

// ProfileStats returns the tiering profile's counters for /metrics.
func (l *Library) ProfileStats() profile.Stats { return l.profiles.Stats() }

// Lookup resolves a registered function by name (nil if absent). Safe
// from any goroutine.
func (l *Library) Lookup(name string) *ast.Function {
	l.fmu.RLock()
	defer l.fmu.RUnlock()
	return l.funcs[name]
}

// Names returns the registered function names, sorted.
func (l *Library) Names() []string {
	l.fmu.RLock()
	out := make([]string, 0, len(l.funcs))
	for n := range l.funcs {
		out = append(out, n)
	}
	l.fmu.RUnlock()
	sort.Strings(out)
	return out
}

// snapshot returns the registered functions (for Precompile sweeps).
func (l *Library) snapshot() []*ast.Function {
	l.fmu.RLock()
	defer l.fmu.RUnlock()
	out := make([]*ast.Function, 0, len(l.funcs))
	for _, fn := range l.funcs {
		out = append(out, fn)
	}
	return out
}

// register publishes a (re)definition. The new body is published before
// the repository generation advances: an async job that observes the
// new generation is then guaranteed to resolve the new body (see
// invokeAsync's ordering note).
//
// A redefinition whose source text is byte-identical to the registered
// one is a no-op — the paper's snooper invalidates on *change*, not on
// every sighting of a .m file. This is what lets a warm-started daemon
// keep its loaded entries when sessions re-send the same definitions:
// without it, every replayed definition would advance the generation
// and drop the code the snapshot just restored.
//
// Publish and invalidation happen under the function-map lock, so a
// snapshot export (which reads sources and entries under the same
// lock) can never pair one generation's source text with another
// generation's compiled entries.
func (l *Library) register(fn *ast.Function) {
	l.fmu.Lock()
	if old, ok := l.funcs[fn.Name]; ok && old.Source != "" && old.Source == fn.Source {
		l.fmu.Unlock()
		return
	}
	l.funcs[fn.Name] = fn
	l.repo.Invalidate(fn.Name)
	l.fmu.Unlock()
}

// --- persistence -------------------------------------------------------------

// ExportSnapshot captures the library's serializable state: every
// registered function source plus its live compiled entries. The
// function-map lock is held across the whole export (register takes the
// same lock for publish+invalidate), so sources and entries are always
// from the same generation. Safe from any goroutine; the write-behind
// snapshotter is the main caller.
func (l *Library) ExportSnapshot() *persist.Snapshot {
	l.fmu.RLock()
	defer l.fmu.RUnlock()
	names := make([]string, 0, len(l.funcs))
	for name := range l.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	snap := &persist.Snapshot{Funcs: make([]persist.FuncState, 0, len(names))}
	profs := make(map[string][]profile.SigDump)
	for _, fd := range l.profiles.Export() {
		profs[fd.Name] = fd.Sigs
	}
	for _, name := range names {
		fn := l.funcs[name]
		h := persist.HashSource(fn.Source)
		fs := persist.FuncState{Name: name, Source: fn.Source, SrcHash: h}
		for _, sd := range profs[name] {
			fs.Profile = append(fs.Profile, persist.ProfileSig{
				Key:       sd.Key,
				Observed:  sd.Observed,
				Entries:   sd.Entries,
				BackEdges: sd.BackEdges,
			})
		}
		for _, e := range l.repo.Entries(name) {
			es := persist.EntryState{
				SrcHash:     h,
				Sig:         e.Sig,
				Quality:     uint8(e.Quality),
				Speculative: e.Speculative,
				Hits:        e.Hits(),
			}
			if e.Code != nil {
				es.Prog = e.Code.P
			}
			fs.Entries = append(fs.Entries, es)
		}
		snap.Funcs = append(snap.Funcs, fs)
	}
	return snap
}

// LoadSnapshot warm-starts the library from a decoded snapshot:
// function sources are registered (without invalidation — the library
// is expected to be empty or to already hold identical sources) and
// their entries re-prepared and published under stats.Loaded. Content
// that fails validation is dropped, never trusted:
//
//   - a function whose recorded source hash does not match its source
//     text, or whose source no longer parses, is skipped entirely;
//   - a function already registered with *different* source keeps the
//     live definition and the snapshot's entries are dropped (the
//     cross-lifetime form of "a redefinition must not resurrect stale
//     code");
//   - an entry whose source hash disagrees with its function's, or
//     whose program the current build cannot prepare, is dropped.
func (l *Library) LoadSnapshot(snap *persist.Snapshot) persist.LoadStats {
	var st persist.LoadStats
	st.Attempted = true
	for _, fs := range snap.Funcs {
		if persist.HashSource(fs.Source) != fs.SrcHash {
			st.RejectedFunctions++
			st.RejectedEntries += len(fs.Entries)
			continue
		}
		file, err := parser.Parse(fs.Source)
		if err != nil || len(file.Stmts) > 0 {
			st.RejectedFunctions++
			st.RejectedEntries += len(fs.Entries)
			continue
		}
		var fn *ast.Function
		for _, f := range file.Funcs {
			if f.Name == fs.Name {
				fn = f
				break
			}
		}
		if fn == nil {
			st.RejectedFunctions++
			st.RejectedEntries += len(fs.Entries)
			continue
		}

		l.fmu.Lock()
		if old, ok := l.funcs[fs.Name]; ok {
			if old.Source != fn.Source {
				// A live definition with different source wins over the
				// snapshot unconditionally.
				l.fmu.Unlock()
				st.RejectedFunctions++
				st.RejectedEntries += len(fs.Entries)
				continue
			}
		} else {
			l.funcs[fs.Name] = fn
		}
		l.fmu.Unlock()
		st.LoadedFunctions++

		if len(fs.Profile) > 0 {
			// Seed the hotness profile so a previously hot signature tiers
			// up on its first call of the new lifetime (warm starts skip
			// the warm-up period entirely).
			sigs := make([]profile.SigDump, 0, len(fs.Profile))
			for _, ps := range fs.Profile {
				sigs = append(sigs, profile.SigDump{
					Key:       ps.Key,
					Observed:  ps.Observed,
					Entries:   ps.Entries,
					BackEdges: ps.BackEdges,
				})
			}
			l.profiles.Load(fs.Name, l.repo.Generation(fs.Name), sigs)
		}

		for _, es := range fs.Entries {
			if es.SrcHash != fs.SrcHash {
				st.RejectedEntries++
				continue
			}
			q := repo.Quality(es.Quality)
			if q > repo.QualityOpt {
				st.RejectedEntries++
				continue
			}
			var code *vm.Compiled
			if es.Prog != nil {
				code, err = vm.Prepare(es.Prog)
				if err != nil {
					st.RejectedEntries++
					continue
				}
			} else if q != repo.QualityInterp {
				// A compiled-quality entry with no program is snapshot
				// damage the codec cannot see; drop it.
				st.RejectedEntries++
				continue
			}
			l.repo.InsertLoaded(fs.Name, repo.Restored(es.Sig, code, q, es.Speculative, es.Hits))
			st.LoadedEntries++
		}
	}
	return st
}

// EnablePersistence warm-starts the library from the snapshot at path
// (when one exists) and attaches a write-behind snapshotter that keeps
// the file current from then on. Stale, corrupt, truncated, or
// foreign-build snapshots are rejected as a whole and the library cold
// starts — the returned LoadStats records what happened; persistence
// failures are never fatal. debounce <= 0 selects the writer default.
func (l *Library) EnablePersistence(path string, debounce time.Duration) persist.LoadStats {
	var st persist.LoadStats
	if data, err := os.ReadFile(path); err == nil {
		st.Attempted = true
		if snap, derr := persist.Decode(data); derr != nil {
			st.Error = derr.Error()
		} else {
			st = l.LoadSnapshot(snap)
		}
	} else if !os.IsNotExist(err) {
		st.Attempted = true
		st.Error = err.Error()
	}
	w := persist.NewWriter(path, l.ExportSnapshot, debounce)
	w.SetJournal(l.journal)
	l.pmu.Lock()
	l.writer = w
	l.loadStats = st
	l.pmu.Unlock()
	l.repo.SetOnChange(w.Notify)
	if st.Attempted {
		cause := "warm-start"
		if st.Error != "" {
			cause = "rejected"
		}
		l.journal.Record(telemetry.Event{
			Kind:  telemetry.EventSnapshotLoad,
			Cause: cause,
			Detail: fmt.Sprintf("loaded %d entries/%d functions, rejected %d/%d, path=%s",
				st.LoadedEntries, st.LoadedFunctions, st.RejectedEntries, st.RejectedFunctions, path),
		})
	}
	return st
}

// FlushPersistence synchronously writes any unsaved repository state (a
// no-op when persistence is disabled or the snapshot is current).
func (l *Library) FlushPersistence() error {
	l.pmu.Lock()
	w := l.writer
	l.pmu.Unlock()
	if w == nil {
		return nil
	}
	return w.Flush()
}

// PersistMetrics returns the persistence surface for /metrics: the
// warm-start load stats plus the write-behind writer counters. The
// zero value (Enabled false) means persistence is off.
func (l *Library) PersistMetrics() persist.Metrics {
	l.pmu.Lock()
	defer l.pmu.Unlock()
	if l.writer == nil {
		return persist.Metrics{}
	}
	return persist.Metrics{
		Enabled: true,
		Path:    l.writer.Path(),
		Load:    l.loadStats,
		Writer:  l.writer.Stats(),
	}
}
