package core

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/ast"
	"repro/internal/compilequeue"
	"repro/internal/repo"
)

// Library is the shared code store behind one or more engines: the
// registered function sources, the compiled-code repository, and
// (optionally) the asynchronous compile pool. A single-session engine
// owns a private library; the evaluation daemon creates one process-
// wide Library and hands it to every session engine via
// Options.Library, so one session's JIT compile of qmr(A,b) warms every
// other session.
//
// Sharing contract: the library models one snooped source directory,
// exactly like the paper's repository. Function definitions are global
// to the library — when any engine (re)defines f, the new body is
// published to all engines and the repository generation for f advances,
// so in-flight compile jobs against the old body publish into the void
// (repo.InsertAt drops them) and no engine can ever run code compiled
// from another generation's source. Workspaces remain per-engine; only
// code is shared.
type Library struct {
	fmu   sync.RWMutex
	funcs map[string]*ast.Function
	repo  *repo.Repository
	// queue is the async compile pool (nil in synchronous mode). It is
	// owned by the library: engines submit jobs but never close it.
	queue *compilequeue.Pool
}

// LibraryOptions configure a shared library.
type LibraryOptions struct {
	// AsyncCompile starts a background compile pool; every engine
	// attached to the library then compiles repository misses on the
	// pool (single-flight deduplicated across all of them) instead of
	// inline on the calling goroutine.
	AsyncCompile bool
	// CompileWorkers bounds the pool (0 = GOMAXPROCS). Ignored unless
	// AsyncCompile.
	CompileWorkers int
	// RepoMaxEntries caps the live compiled entries per function name,
	// evicting the least-hit entry on overflow. 0 = unbounded. A
	// long-lived daemon sets a cap so signature churn cannot grow the
	// repository without bound.
	RepoMaxEntries int
}

// NewLibrary creates a shared code library.
func NewLibrary(opts LibraryOptions) *Library {
	l := &Library{
		funcs: make(map[string]*ast.Function),
		repo:  repo.NewBounded(opts.RepoMaxEntries),
	}
	if opts.AsyncCompile {
		workers := opts.CompileWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		l.queue = compilequeue.New(workers)
	}
	return l
}

// Close shuts down the library's compile pool (no-op in sync mode).
// Queued jobs finish first; jobs submitted later run inline, so
// attached engines keep working synchronously.
func (l *Library) Close() {
	if l.queue != nil {
		l.queue.Close()
	}
}

// Drain blocks until all in-flight background compile jobs have
// published (or been dropped as stale). A no-op in synchronous mode.
func (l *Library) Drain() {
	if l.queue != nil {
		l.queue.Drain()
	}
}

// Repo exposes the shared repository (stats, dumps, tests).
func (l *Library) Repo() *repo.Repository { return l.repo }

// QueueStats returns the compile pool's counters (zero in sync mode).
func (l *Library) QueueStats() compilequeue.Stats {
	if l.queue == nil {
		return compilequeue.Stats{}
	}
	return l.queue.Stats()
}

// Lookup resolves a registered function by name (nil if absent). Safe
// from any goroutine.
func (l *Library) Lookup(name string) *ast.Function {
	l.fmu.RLock()
	defer l.fmu.RUnlock()
	return l.funcs[name]
}

// Names returns the registered function names, sorted.
func (l *Library) Names() []string {
	l.fmu.RLock()
	out := make([]string, 0, len(l.funcs))
	for n := range l.funcs {
		out = append(out, n)
	}
	l.fmu.RUnlock()
	sort.Strings(out)
	return out
}

// snapshot returns the registered functions (for Precompile sweeps).
func (l *Library) snapshot() []*ast.Function {
	l.fmu.RLock()
	defer l.fmu.RUnlock()
	out := make([]*ast.Function, 0, len(l.funcs))
	for _, fn := range l.funcs {
		out = append(out, fn)
	}
	return out
}

// register publishes a (re)definition. The new body is published before
// the repository generation advances: an async job that observes the
// new generation is then guaranteed to resolve the new body (see
// invokeAsync's ordering note).
func (l *Library) register(fn *ast.Function) {
	l.fmu.Lock()
	l.funcs[fn.Name] = fn
	l.fmu.Unlock()
	l.repo.Invalidate(fn.Name)
}
