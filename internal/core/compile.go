package core

import (
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/codegen"
	"repro/internal/disambig"
	"repro/internal/infer"
	"repro/internal/inline"
	"repro/internal/opt"
	"repro/internal/regalloc"
	"repro/internal/telemetry"
	"repro/internal/types"
	"repro/internal/vm"
)

// LookupFunction also serves the inliner.
var _ inline.Resolver = (*Engine)(nil)

// pipelineOpts selects the code generation pipeline variant.
type pipelineOpts struct {
	// optimize runs the backend optimization passes — the stand-in for
	// the native C/Fortran compiler behind the "source" code generator.
	optimize bool
	// generic disables type-driven code selection extras (mcc tier).
	generic bool
}

// compile runs the full compiler (Figure 1 of the paper): inliner →
// disambiguator → type inference → code generation, accumulating
// per-phase times for the Figure 6 decomposition.
func (e *Engine) compile(fn *ast.Function, sig types.Signature, po pipelineOpts) (*vm.Compiled, error) {
	if len(sig) != len(fn.Ins) {
		return nil, &codegen.ErrUnsupported{Reason: "arity mismatch between signature and formals"}
	}

	// Pass 1+2: inlining and disambiguation.
	t0 := time.Now()
	work := fn
	if !e.opts.DisableInlining && !po.generic {
		work = inline.Expand(fn, e)
	}
	g := cfg.Build(work.Body)
	tbl := disambig.Analyze(g, work.Ins, disambig.ResolverFunc(func(name string) bool {
		return e.LookupFunction(name) != nil
	}))
	// Each phase duration is measured once and fed to both the
	// PhaseTimes atomic and the trace span, so span-category totals
	// reconcile with the Figure 6 decomposition exactly (modulo the
	// trace format's microsecond granularity).
	d0 := time.Since(t0)
	atomic.AddInt64(&e.timing.Disambig, d0.Nanoseconds())
	e.tracer.Span(telemetry.CatDisambig, fn.Name, e.id, t0, d0)
	if tbl.HasAmbiguous {
		return nil, &codegen.ErrUnsupported{Reason: "ambiguous or undefined symbols"}
	}

	// Pass 3: type inference.
	t1 := time.Now()
	params := make(map[string]types.Type, len(work.Ins))
	for i, p := range work.Ins {
		params[p] = sig[i]
	}
	res := infer.Forward(g, params, e.inferOptsFor(po))
	d1 := time.Since(t1)
	atomic.AddInt64(&e.timing.TypeInf, d1.Nanoseconds())
	e.tracer.Span(telemetry.CatTypeInf, fn.Name, e.id, t1, d1)

	// Pass 4: code generation (+ backend optimization + regalloc).
	t2 := time.Now()
	ccfg := e.codegenConfig(po)
	prog, err := codegen.Compile(work, res, tbl, ccfg)
	if err != nil {
		d2 := time.Since(t2)
		atomic.AddInt64(&e.timing.Codegen, d2.Nanoseconds())
		e.tracer.Span(telemetry.CatCodegen, fn.Name, e.id, t2, d2)
		return nil, err
	}
	if po.optimize {
		opt.Run(prog, e.optConfig())
	}
	if ccfg.FuseElemwise {
		// Redirect fused kernels to write into the assigned variable's
		// register so the VM can reuse its displaced buffer in place.
		// Runs in the JIT pipeline too (which skips opt.Run): the pass
		// is a single peephole, cheap enough for compile-latency mode.
		opt.FuseDst(prog)
	}
	ra := regalloc.DefaultOptions()
	ra.SpillAll = e.opts.SpillAll
	regalloc.Allocate(prog, ra)
	code, err := vm.Prepare(prog)
	d2 := time.Since(t2)
	atomic.AddInt64(&e.timing.Codegen, d2.Nanoseconds())
	e.tracer.Span(telemetry.CatCodegen, fn.Name, e.id, t2, d2)
	if err != nil {
		return nil, err
	}
	return code, nil
}

func (e *Engine) inferOpts() infer.Opts {
	return infer.Opts{
		NoRanges:    e.opts.DisableRanges,
		NoMinShapes: e.opts.DisableMinShapes,
	}
}

func (e *Engine) inferOptsFor(po pipelineOpts) infer.Opts {
	o := e.inferOpts()
	o.AllTop = po.generic
	return o
}

// codegenConfig models the platform- and tier-specific code selection
// behaviour (DESIGN.md §2): the mcc tier compiles generically; on the
// MIPS platform the JIT code generator is immature (the paper: "The
// JIT compiler on this platform is not yet completely implemented",
// with benchmarks running "at reduced performance due to the poor
// quality of the generated code"), so it loses its vector unrolling
// and dgemv fusion there.
func (e *Engine) codegenConfig(po pipelineOpts) codegen.Config {
	cfg := codegen.DefaultConfig()
	cfg.FuseElemwise = e.opts.FuseElemwise
	if po.generic {
		cfg.UnrollSmallVectors = false
		cfg.FuseGEMV = false
		cfg.FuseElemwise = false
	}
	if e.opts.Platform == PlatformMIPS && !po.optimize {
		cfg.UnrollSmallVectors = false
		cfg.FuseGEMV = false
		cfg.FuseElemwise = false
	}
	if po.optimize {
		cfg.UnrollLoops = e.optConfig().UnrollFactor
	}
	if e.opts.DisableGEMV {
		cfg.FuseGEMV = false
	}
	return cfg
}

// optConfig grades the simulated native backend: the MIPS compiler is
// "excellent" (deeper unrolling), the SPARC one mediocre.
func (e *Engine) optConfig() opt.Config {
	c := opt.DefaultConfig()
	if e.opts.Platform == PlatformMIPS {
		c.UnrollFactor = 4
	} else {
		c.UnrollFactor = 2
	}
	return c
}

// speculate derives the speculative signature for a function (paper
// §2.5): backward hint propagation alternating with forward passes.
func (e *Engine) speculate(fn *ast.Function) (types.Signature, error) {
	work := fn
	if !e.opts.DisableInlining {
		work = inline.Expand(fn, e)
	}
	g := cfg.Build(work.Body)
	tbl := disambig.Analyze(g, work.Ins, disambig.ResolverFunc(func(name string) bool {
		return e.LookupFunction(name) != nil
	}))
	if tbl.HasAmbiguous {
		return nil, &codegen.ErrUnsupported{Reason: "ambiguous or undefined symbols"}
	}
	// The speculator needs the same formals the compile step will see;
	// speculation maps guesses back onto the original formal list.
	sig := infer.Speculate(work, g, e.inferOpts())
	if len(sig) != len(fn.Ins) {
		return nil, &codegen.ErrUnsupported{Reason: "speculation arity mismatch"}
	}
	return sig, nil
}
