// Package core implements the MaJIC engine: the MATLAB-like front end
// that interprets interactive code, defers function calls to the code
// repository, and coordinates the compilation tiers the paper evaluates
// (mcc-style generic compilation, FALCON-style batch compilation, JIT
// compilation, and speculative ahead-of-time compilation).
package core

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/builtins"
	"repro/internal/cancel"
	"repro/internal/compilequeue"
	"repro/internal/interp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/parser"
	"repro/internal/profile"
	"repro/internal/telemetry"
)

// Tier selects how function calls are executed.
type Tier uint8

const (
	// TierInterp interprets everything: the MATLAB baseline (ti).
	TierInterp Tier = iota
	// TierMCC compiles with all parameter types forced to ⊤ — generic
	// boxed library calls, no type specialization (the mcc comparator).
	TierMCC
	// TierFalcon compiles with exact runtime type signatures and the
	// full optimizing backend, batch style (the FALCON comparator;
	// compile time is excluded by the harness).
	TierFalcon
	// TierJIT compiles at call time with the fast JIT pipeline: exact
	// signatures, fast type inference, naive code generation.
	TierJIT
	// TierSpec uses speculative ahead-of-time compilation: type
	// signatures guessed by the speculator, optimizing backend; the JIT
	// covers speculation misses at run time.
	TierSpec
)

// String names the tier as the paper's figures do.
func (t Tier) String() string {
	switch t {
	case TierInterp:
		return "interp"
	case TierMCC:
		return "mcc"
	case TierFalcon:
		return "falcon"
	case TierJIT:
		return "jit"
	case TierSpec:
		return "spec"
	}
	return fmt.Sprintf("Tier(%d)", uint8(t))
}

// ParseTier maps a tier name (as printed by String) back to a Tier.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "interp":
		return TierInterp, nil
	case "mcc":
		return TierMCC, nil
	case "falcon":
		return TierFalcon, nil
	case "jit":
		return TierJIT, nil
	case "spec":
		return TierSpec, nil
	}
	return 0, fmt.Errorf("unknown tier %q (interp|mcc|falcon|jit|spec)", s)
}

// Platform selects the simulated backend-quality profile used to
// reproduce the paper's SPARC vs MIPS contrast (see DESIGN.md §2).
type Platform uint8

const (
	// PlatformSPARC models the development platform: a mediocre native
	// compiler, so the optimizing (spec/falcon) backend gains less over
	// the JIT code generator.
	PlatformSPARC Platform = iota
	// PlatformMIPS models an excellent native compiler: the optimizing
	// backend applies its full pass pipeline plus deeper unrolling.
	PlatformMIPS
)

func (p Platform) String() string {
	if p == PlatformMIPS {
		return "mips"
	}
	return "sparc"
}

// Options configure an Engine.
type Options struct {
	Tier     Tier
	Platform Platform
	Out      io.Writer
	Seed     uint64

	// Optimization switches for the Figure 7 ablations. They affect the
	// JIT pipeline (and, where meaningful, the optimizing backend).
	DisableRanges    bool // no range propagation → subscript checks stay
	DisableMinShapes bool // no minimum-shape propagation → no unrolling
	SpillAll         bool // register allocator spills every variable
	DisableInlining  bool // no function inlining
	// DisableGEMV turns off the a*A*x + b*y → dgemv code selection
	// (ablation for the fusion rule of §2.6.1).
	DisableGEMV bool
	// FuseElemwise turns on elementwise fusion (§2.6.1's
	// temporary-elimination, extended to whole operator trees): maximal
	// trees of elementwise operators compile to single fused kernels
	// that run as one loop with no intermediate arrays, and the mat
	// buffer pool recycles displaced destination buffers. Off by default
	// so the baseline paper-mode measurements keep the
	// one-library-call-per-operator execution model.
	FuseElemwise bool
	// Library attaches the engine to a shared code library (function
	// sources + compiled-code repository + compile pool) instead of
	// constructing a private one. Engines sharing a Library share
	// compiled code: one engine's JIT miss populates entries every
	// other engine's locator can hit, and a redefinition by any engine
	// invalidates for all of them (generation-counted, so stale
	// in-flight compiles never resurrect). The evaluation daemon uses
	// this to amortize compilation across sessions. When nil (the
	// default), the engine builds a private library from AsyncCompile /
	// CompileWorkers / RepoMaxEntries and closes it on Close.
	Library *Library

	// RepoMaxEntries caps the live compiled entries per function in the
	// engine's private repository (least-hit eviction; 0 = unbounded).
	// Ignored when Library is set — the shared library's own cap rules.
	RepoMaxEntries int

	// JITBackendOpts runs the backend optimization passes inside the JIT
	// pipeline too — the paper's §5 what-if experiment ("room for future
	// enhancements of the JIT compiler"): compile time is still counted,
	// so the trade-off between optimization effort and compile latency
	// becomes measurable.
	JITBackendOpts bool

	// RecompileThreshold enables the repository's upgrade path ("the
	// generated code can later be recompiled — and replaced in the
	// repository — using a better compiler"): once a JIT-compiled entry
	// has served this many calls, it is recompiled with the optimizing
	// backend and the better version takes over. 0 disables upgrades
	// (the default, so the harness's JIT measurements stay pure).
	RecompileThreshold int

	// Tiered enables profile-guided tiered recompilation for TierJIT:
	// function calls start in the interpreter (first-eval latency stays
	// interpreter-fast), cheap counters at call entries and loop
	// back-edges feed a hotness profile per (function, widened
	// signature), and hot signatures are recompiled in the background at
	// QualityOpt with profile-narrowed types. Hot interpreter loops
	// transfer mid-run into compiled code via on-stack replacement; a
	// generation-checked guard deopts back to the interpreter on
	// redefinition or range violation, so results are bit-identical with
	// tiering on or off. Ignored by the other tiers (the paper-mode
	// measurements are untouched).
	Tiered bool
	// TierThreshold is the hotness threshold: a signature whose call
	// count reaches it is promoted, and an activation whose back-edge
	// count reaches it offers OSR. 0 means DefaultTierThreshold.
	TierThreshold int

	// AsyncCompile turns the repository into a background compilation
	// service (the paper's front end "defers function calls" while the
	// repository compiles "behind the scenes"): speculative jobs and
	// miss-triggered compiles run on a bounded worker pool instead of
	// the caller's goroutine, with single-flight deduplication so N
	// concurrent misses on one (function, widened signature) key
	// trigger exactly one compile. Off by default: the synchronous
	// inline-compile path is unchanged, so the paper reproductions and
	// single-threaded measurements are unaffected.
	AsyncCompile bool
	// CompileWorkers bounds the async pool's concurrently executing
	// compile jobs. 0 means GOMAXPROCS. Ignored unless AsyncCompile.
	CompileWorkers int

	// Threads sets the dense-kernel worker count (internal/parallel):
	// blocked dgemm/dgemv, fused elementwise kernels, and the generic
	// elementwise loops partition their work across this many threads.
	// 0 inherits the process default (GOMAXPROCS unless some engine
	// already set it); 1 forces the serial code paths. Because every
	// parallel kernel preserves per-element operation order, results
	// are byte-for-byte identical for every Threads value. The setting
	// is process-wide (the worker pool is shared), so the last engine
	// to set a non-zero value wins — mirroring mat.EnablePool.
	Threads int

	// Tracer, when set, receives per-eval trace spans: parse,
	// disambiguation, type inference, code generation, compile-queue
	// wait, execution, tier-up, and OSR transfer — each recorded with
	// the very same duration the engine adds to PhaseTimes, so a trace's
	// per-category totals reconcile with the Figure 6 decomposition. Nil
	// (the default) records nothing and adds no timing calls beyond the
	// ones PhaseTimes already makes.
	Tracer *telemetry.Tracer

	// Journal, when set (and Library is nil), attaches the tiering
	// event journal to the engine's private library: promotions,
	// evictions, snapshot load/flush, and cause-attributed deopts. With
	// a shared Library, the library's own journal rules.
	Journal *telemetry.Journal
}

// Engine is the public entry point: a MATLAB workspace plus the code
// library (function sources, compiled-code repository, compilation
// machinery) behind it.
type Engine struct {
	ctx  *builtins.Context
	opts Options
	// lib is the code library: private by default, shared across
	// engines when Options.Library is set. ownLib records ownership so
	// Close never shuts down a shared library's compile pool.
	lib       *Library
	ownLib    bool
	globals   map[string]*mat.Value
	workspace *interp.Env
	in        *interp.Interp
	repo      *repoState
	// cancelFlag is the cooperative-interruption flag polled at
	// interpreter and VM loop back-edges; Interrupt raises it.
	cancelFlag cancel.Flag
	// phase timing for Figure 6; accumulated with atomics because async
	// mode compiles on worker goroutines.
	timing PhaseTimes
	// tracer is Options.Tracer (nil-safe everywhere it is used); id is
	// the engine's trace lane (tid), distinct per engine so a daemon's
	// sessions separate in chrome://tracing.
	tracer *telemetry.Tracer
	id     int
}

// engineIDs hands out trace lanes.
var engineIDs atomic.Int64

// New creates an Engine.
func New(opts Options) *Engine {
	ctx := builtins.NewContext()
	if opts.Out != nil {
		ctx.Out = opts.Out
	}
	if opts.Seed != 0 {
		ctx.RNG.Seed(opts.Seed)
	}
	e := &Engine{
		ctx:     ctx,
		opts:    opts,
		globals: make(map[string]*mat.Value),
		tracer:  opts.Tracer,
		id:      int(engineIDs.Add(1)),
	}
	if opts.Library != nil {
		e.lib = opts.Library
	} else {
		e.lib = NewLibrary(LibraryOptions{
			AsyncCompile:   opts.AsyncCompile,
			CompileWorkers: opts.CompileWorkers,
			RepoMaxEntries: opts.RepoMaxEntries,
			Tiered:         opts.Tiered,
			Tracer:         opts.Tracer,
			Journal:        opts.Journal,
		})
		e.ownLib = true
	}
	e.workspace = interp.NewEnv(e.globals)
	e.in = interp.New(e)
	e.repo = newRepoState(e)
	if opts.FuseElemwise {
		mat.EnablePool()
	}
	if opts.Threads > 0 {
		parallel.SetDefaultThreads(opts.Threads)
	}
	return e
}

// Close shuts down the engine's private background compilation pool (a
// no-op in synchronous mode, or when the engine is attached to a shared
// Library — closing that is the library owner's job). Queued jobs
// finish first; calls made after Close compile inline, so the engine
// stays usable.
func (e *Engine) Close() {
	if e.ownLib {
		e.lib.Close()
	}
}

// Drain blocks until all in-flight background compile jobs have
// published (or been dropped as stale). A no-op in synchronous mode.
// Benchmarks use it to separate first-call latency from steady state.
func (e *Engine) Drain() {
	e.lib.Drain()
}

// QueueStats returns the async pool's counters (zero in sync mode).
func (e *Engine) QueueStats() compilequeue.Stats {
	return e.lib.QueueStats()
}

// DefaultTierThreshold is the hotness threshold used when Options.Tiered
// is set without an explicit TierThreshold: promotion after 8 calls of a
// widened signature, OSR offer after 8 loop back-edges in one
// activation. Low enough that a hot loop tiers up within its first eval,
// high enough that one-shot scripts never pay a compile.
const DefaultTierThreshold = 8

// tierThreshold resolves the engine's hotness threshold.
func (e *Engine) tierThreshold() int {
	if e.opts.TierThreshold > 0 {
		return e.opts.TierThreshold
	}
	return DefaultTierThreshold
}

// ProfileStats returns the tiering profile's counters (all zero when
// tiered execution never ran on this library).
func (e *Engine) ProfileStats() profile.Stats {
	return e.lib.ProfileStats()
}

// Library returns the engine's code library (shared or private).
func (e *Engine) Library() *Library { return e.lib }

// CancelFlag exposes the engine's interruption flag; the interpreter
// and VM discover it through the cancel.Checker interface and poll it
// at loop back-edges.
func (e *Engine) CancelFlag() *cancel.Flag { return &e.cancelFlag }

// Interrupt requests cooperative cancellation of whatever the engine is
// executing: the current evaluation aborts with cancel.ErrInterrupted
// at its next loop back-edge or function call. Safe from any goroutine
// (deadline timers, signal handlers). The flag stays raised until
// ResetInterrupt, so an eval that races the raise still aborts.
func (e *Engine) Interrupt() { e.cancelFlag.Raise() }

// ResetInterrupt lowers the interruption flag so the engine can run
// again.
func (e *Engine) ResetInterrupt() { e.cancelFlag.Clear() }

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// EffectiveThreads returns the dense-kernel thread count this engine's
// kernels actually run with: its Threads option if set, otherwise the
// process default (which another engine or SetDefaultThreads may have
// configured).
func (e *Engine) EffectiveThreads() int {
	if e.opts.Threads > 0 {
		return e.opts.Threads
	}
	return parallel.DefaultThreads()
}

// Context implements interp.Host.
func (e *Engine) Context() *builtins.Context { return e.ctx }

// LookupFunction implements interp.Host. It is safe to call from any
// goroutine (compile jobs resolve functions from the worker pool).
func (e *Engine) LookupFunction(name string) *ast.Function {
	return e.lib.Lookup(name)
}

// Functions returns the names of all registered user functions.
func (e *Engine) Functions() []string {
	return e.lib.Names()
}

// Define registers the functions found in src with the repository (the
// analog of dropping a .m file into a snooped source directory). Script
// statements in src are rejected here; use EvalString for those.
func (e *Engine) Define(src string) error {
	file, err := parser.Parse(src)
	if err != nil {
		return err
	}
	if len(file.Stmts) > 0 {
		return fmt.Errorf("Define: source contains script statements; use EvalString")
	}
	for _, fn := range file.Funcs {
		e.registerFunction(fn)
	}
	return nil
}

func (e *Engine) registerFunction(fn *ast.Function) {
	e.lib.register(fn)
}

// Precompile runs the repository's speculative ahead-of-time
// compilation over every registered function — the paper's scenario
// where "MaJIC's repository had ample time to find them and compile
// them speculatively". It is a no-op unless the engine runs TierSpec.
func (e *Engine) Precompile() {
	if e.opts.Tier != TierSpec {
		return
	}
	for _, fn := range e.lib.snapshot() {
		has := false
		for _, entry := range e.repo.r.Entries(fn.Name) {
			if entry.Speculative {
				has = true
				break
			}
		}
		if !has {
			e.repo.precompile(fn)
		}
	}
}

// EvalString parses and executes src in the engine workspace. Function
// definitions in src are registered; script statements execute in the
// interactive front end (interpreted, with calls deferred per the tier).
func (e *Engine) EvalString(src string) error {
	if e.tracer == nil {
		file, err := parser.Parse(src)
		if err != nil {
			return err
		}
		for _, fn := range file.Funcs {
			e.registerFunction(fn)
		}
		return e.in.ExecStmts(file.Stmts, e.workspace)
	}

	// Traced path: one eval span enclosing a parse span (the compile and
	// exec spans inside are emitted where PhaseTimes is accumulated).
	t0 := time.Now()
	file, err := parser.Parse(src)
	e.tracer.Span(telemetry.CatParse, "parse", e.id, t0, time.Since(t0))
	if err != nil {
		e.tracer.Span(telemetry.CatEval, "eval", e.id, t0, time.Since(t0))
		return err
	}
	for _, fn := range file.Funcs {
		e.registerFunction(fn)
	}
	err = e.in.ExecStmts(file.Stmts, e.workspace)
	e.tracer.Span(telemetry.CatEval, "eval", e.id, t0, time.Since(t0))
	return err
}

// Workspace returns the value of a workspace variable.
func (e *Engine) Workspace(name string) (*mat.Value, bool) {
	return e.workspace.Lookup(name)
}

// WorkspaceNames returns the names bound in the interactive workspace
// (the REPL's who command).
func (e *Engine) WorkspaceNames() []string {
	names := e.workspace.Names()
	sort.Strings(names)
	return names
}

// SetWorkspace binds a workspace variable.
func (e *Engine) SetWorkspace(name string, v *mat.Value) {
	v.MarkShared()
	e.workspace.Bind(name, v)
}

// Call invokes the named user function with the given arguments through
// the engine's execution tier. This is the "invocation" protocol of the
// paper's front end: the interpreter builds the function name plus
// parameter values and passes the work to the code repository.
func (e *Engine) Call(name string, args []*mat.Value, nout int) ([]*mat.Value, error) {
	return e.CallFunction(name, args, nout)
}

// CallFunction implements interp.Host: route a function call through
// the configured tier.
//
// Concurrency: with AsyncCompile enabled, CallFunction (and Call) may
// be used from multiple goroutines against one shared engine — the
// repository, compile pool, and compiled code are concurrency-safe.
// Functions that touch `global` variables remain single-client-only,
// as do EvalString and the workspace accessors (one MATLAB workspace,
// like one MATLAB session).
func (e *Engine) CallFunction(name string, args []*mat.Value, nout int) ([]*mat.Value, error) {
	// Call-entry safepoint: loops poll the flag at back-edges, and this
	// check covers loop-free infinite recursion (every recursive cycle
	// contains a call).
	if e.cancelFlag.Raised() {
		return nil, cancel.ErrInterrupted
	}
	fn := e.LookupFunction(name)
	if fn == nil {
		return nil, fmt.Errorf("undefined function %q", name)
	}
	if nout < 1 {
		nout = 1
	}
	if e.opts.Tier == TierInterp {
		return e.in.CallFunction(fn, args, nout, e.globals)
	}
	return e.repo.invoke(fn, args, nout)
}

// Interpret runs the function through the interpreter regardless of
// tier (used by differential tests and the harness baseline).
func (e *Engine) Interpret(name string, args []*mat.Value, nout int) ([]*mat.Value, error) {
	fn := e.LookupFunction(name)
	if fn == nil {
		return nil, fmt.Errorf("undefined function %q", name)
	}
	return e.in.CallFunction(fn, args, nout, e.globals)
}

// PhaseTimes accumulates per-phase compilation time, reproducing the
// decomposition of Figure 6 (disambiguation, type inference, code
// generation) plus execution.
type PhaseTimes struct {
	Disambig int64 // nanoseconds
	TypeInf  int64
	Codegen  int64
	Exec     int64
}

// Timing returns the accumulated phase times (atomic snapshot: async
// compile jobs accumulate from worker goroutines).
func (e *Engine) Timing() PhaseTimes {
	return PhaseTimes{
		Disambig: atomic.LoadInt64(&e.timing.Disambig),
		TypeInf:  atomic.LoadInt64(&e.timing.TypeInf),
		Codegen:  atomic.LoadInt64(&e.timing.Codegen),
		Exec:     atomic.LoadInt64(&e.timing.Exec),
	}
}

// ResetTiming clears accumulated phase times.
func (e *Engine) ResetTiming() {
	atomic.StoreInt64(&e.timing.Disambig, 0)
	atomic.StoreInt64(&e.timing.TypeInf, 0)
	atomic.StoreInt64(&e.timing.Codegen, 0)
	atomic.StoreInt64(&e.timing.Exec, 0)
}
