// Package core implements the MaJIC engine: the MATLAB-like front end
// that interprets interactive code, defers function calls to the code
// repository, and coordinates the compilation tiers the paper evaluates
// (mcc-style generic compilation, FALCON-style batch compilation, JIT
// compilation, and speculative ahead-of-time compilation).
package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/ast"
	"repro/internal/builtins"
	"repro/internal/interp"
	"repro/internal/mat"
	"repro/internal/parser"
)

// Tier selects how function calls are executed.
type Tier uint8

const (
	// TierInterp interprets everything: the MATLAB baseline (ti).
	TierInterp Tier = iota
	// TierMCC compiles with all parameter types forced to ⊤ — generic
	// boxed library calls, no type specialization (the mcc comparator).
	TierMCC
	// TierFalcon compiles with exact runtime type signatures and the
	// full optimizing backend, batch style (the FALCON comparator;
	// compile time is excluded by the harness).
	TierFalcon
	// TierJIT compiles at call time with the fast JIT pipeline: exact
	// signatures, fast type inference, naive code generation.
	TierJIT
	// TierSpec uses speculative ahead-of-time compilation: type
	// signatures guessed by the speculator, optimizing backend; the JIT
	// covers speculation misses at run time.
	TierSpec
)

// String names the tier as the paper's figures do.
func (t Tier) String() string {
	switch t {
	case TierInterp:
		return "interp"
	case TierMCC:
		return "mcc"
	case TierFalcon:
		return "falcon"
	case TierJIT:
		return "jit"
	case TierSpec:
		return "spec"
	}
	return fmt.Sprintf("Tier(%d)", uint8(t))
}

// Platform selects the simulated backend-quality profile used to
// reproduce the paper's SPARC vs MIPS contrast (see DESIGN.md §2).
type Platform uint8

const (
	// PlatformSPARC models the development platform: a mediocre native
	// compiler, so the optimizing (spec/falcon) backend gains less over
	// the JIT code generator.
	PlatformSPARC Platform = iota
	// PlatformMIPS models an excellent native compiler: the optimizing
	// backend applies its full pass pipeline plus deeper unrolling.
	PlatformMIPS
)

func (p Platform) String() string {
	if p == PlatformMIPS {
		return "mips"
	}
	return "sparc"
}

// Options configure an Engine.
type Options struct {
	Tier     Tier
	Platform Platform
	Out      io.Writer
	Seed     uint64

	// Optimization switches for the Figure 7 ablations. They affect the
	// JIT pipeline (and, where meaningful, the optimizing backend).
	DisableRanges    bool // no range propagation → subscript checks stay
	DisableMinShapes bool // no minimum-shape propagation → no unrolling
	SpillAll         bool // register allocator spills every variable
	DisableInlining  bool // no function inlining
	// DisableGEMV turns off the a*A*x + b*y → dgemv code selection
	// (ablation for the fusion rule of §2.6.1).
	DisableGEMV bool
	// JITBackendOpts runs the backend optimization passes inside the JIT
	// pipeline too — the paper's §5 what-if experiment ("room for future
	// enhancements of the JIT compiler"): compile time is still counted,
	// so the trade-off between optimization effort and compile latency
	// becomes measurable.
	JITBackendOpts bool

	// RecompileThreshold enables the repository's upgrade path ("the
	// generated code can later be recompiled — and replaced in the
	// repository — using a better compiler"): once a JIT-compiled entry
	// has served this many calls, it is recompiled with the optimizing
	// backend and the better version takes over. 0 disables upgrades
	// (the default, so the harness's JIT measurements stay pure).
	RecompileThreshold int
}

// Engine is the public entry point: a MATLAB workspace plus the code
// repository and compilation machinery behind it.
type Engine struct {
	ctx       *builtins.Context
	opts      Options
	funcs     map[string]*ast.Function
	globals   map[string]*mat.Value
	workspace *interp.Env
	in        *interp.Interp
	repo      *repoState
	// phase timing for Figure 6
	timing PhaseTimes
}

// New creates an Engine.
func New(opts Options) *Engine {
	ctx := builtins.NewContext()
	if opts.Out != nil {
		ctx.Out = opts.Out
	}
	if opts.Seed != 0 {
		ctx.RNG.Seed(opts.Seed)
	}
	e := &Engine{
		ctx:     ctx,
		opts:    opts,
		funcs:   make(map[string]*ast.Function),
		globals: make(map[string]*mat.Value),
	}
	e.workspace = interp.NewEnv(e.globals)
	e.in = interp.New(e)
	e.repo = newRepoState(e)
	return e
}

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// Context implements interp.Host.
func (e *Engine) Context() *builtins.Context { return e.ctx }

// LookupFunction implements interp.Host.
func (e *Engine) LookupFunction(name string) *ast.Function { return e.funcs[name] }

// Functions returns the names of all registered user functions.
func (e *Engine) Functions() []string {
	out := make([]string, 0, len(e.funcs))
	for n := range e.funcs {
		out = append(out, n)
	}
	return out
}

// Define registers the functions found in src with the repository (the
// analog of dropping a .m file into a snooped source directory). Script
// statements in src are rejected here; use EvalString for those.
func (e *Engine) Define(src string) error {
	file, err := parser.Parse(src)
	if err != nil {
		return err
	}
	if len(file.Stmts) > 0 {
		return fmt.Errorf("Define: source contains script statements; use EvalString")
	}
	for _, fn := range file.Funcs {
		e.registerFunction(fn)
	}
	return nil
}

func (e *Engine) registerFunction(fn *ast.Function) {
	e.funcs[fn.Name] = fn
	e.repo.invalidate(fn.Name)
}

// Precompile runs the repository's speculative ahead-of-time
// compilation over every registered function — the paper's scenario
// where "MaJIC's repository had ample time to find them and compile
// them speculatively". It is a no-op unless the engine runs TierSpec.
func (e *Engine) Precompile() {
	if e.opts.Tier != TierSpec {
		return
	}
	for _, fn := range e.funcs {
		has := false
		for _, entry := range e.repo.r.Entries(fn.Name) {
			if entry.Speculative {
				has = true
				break
			}
		}
		if !has {
			e.repo.precompile(fn)
		}
	}
}

// EvalString parses and executes src in the engine workspace. Function
// definitions in src are registered; script statements execute in the
// interactive front end (interpreted, with calls deferred per the tier).
func (e *Engine) EvalString(src string) error {
	file, err := parser.Parse(src)
	if err != nil {
		return err
	}
	for _, fn := range file.Funcs {
		e.registerFunction(fn)
	}
	return e.in.ExecStmts(file.Stmts, e.workspace)
}

// Workspace returns the value of a workspace variable.
func (e *Engine) Workspace(name string) (*mat.Value, bool) {
	return e.workspace.Lookup(name)
}

// WorkspaceNames returns the names bound in the interactive workspace
// (the REPL's who command).
func (e *Engine) WorkspaceNames() []string {
	names := e.workspace.Names()
	sort.Strings(names)
	return names
}

// SetWorkspace binds a workspace variable.
func (e *Engine) SetWorkspace(name string, v *mat.Value) {
	v.MarkShared()
	e.workspace.Bind(name, v)
}

// Call invokes the named user function with the given arguments through
// the engine's execution tier. This is the "invocation" protocol of the
// paper's front end: the interpreter builds the function name plus
// parameter values and passes the work to the code repository.
func (e *Engine) Call(name string, args []*mat.Value, nout int) ([]*mat.Value, error) {
	return e.CallFunction(name, args, nout)
}

// CallFunction implements interp.Host: route a function call through
// the configured tier.
func (e *Engine) CallFunction(name string, args []*mat.Value, nout int) ([]*mat.Value, error) {
	fn := e.funcs[name]
	if fn == nil {
		return nil, fmt.Errorf("undefined function %q", name)
	}
	if nout < 1 {
		nout = 1
	}
	if e.opts.Tier == TierInterp {
		return e.in.CallFunction(fn, args, nout, e.globals)
	}
	return e.repo.invoke(fn, args, nout)
}

// Interpret runs the function through the interpreter regardless of
// tier (used by differential tests and the harness baseline).
func (e *Engine) Interpret(name string, args []*mat.Value, nout int) ([]*mat.Value, error) {
	fn := e.funcs[name]
	if fn == nil {
		return nil, fmt.Errorf("undefined function %q", name)
	}
	return e.in.CallFunction(fn, args, nout, e.globals)
}

// PhaseTimes accumulates per-phase compilation time, reproducing the
// decomposition of Figure 6 (disambiguation, type inference, code
// generation) plus execution.
type PhaseTimes struct {
	Disambig int64 // nanoseconds
	TypeInf  int64
	Codegen  int64
	Exec     int64
}

// Timing returns the accumulated phase times.
func (e *Engine) Timing() PhaseTimes { return e.timing }

// ResetTiming clears accumulated phase times.
func (e *Engine) ResetTiming() { e.timing = PhaseTimes{} }
