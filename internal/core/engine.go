// Package core implements the MaJIC engine: the MATLAB-like front end
// that interprets interactive code, defers function calls to the code
// repository, and coordinates the compilation tiers the paper evaluates
// (mcc-style generic compilation, FALCON-style batch compilation, JIT
// compilation, and speculative ahead-of-time compilation).
package core

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/builtins"
	"repro/internal/compilequeue"
	"repro/internal/interp"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/parser"
)

// Tier selects how function calls are executed.
type Tier uint8

const (
	// TierInterp interprets everything: the MATLAB baseline (ti).
	TierInterp Tier = iota
	// TierMCC compiles with all parameter types forced to ⊤ — generic
	// boxed library calls, no type specialization (the mcc comparator).
	TierMCC
	// TierFalcon compiles with exact runtime type signatures and the
	// full optimizing backend, batch style (the FALCON comparator;
	// compile time is excluded by the harness).
	TierFalcon
	// TierJIT compiles at call time with the fast JIT pipeline: exact
	// signatures, fast type inference, naive code generation.
	TierJIT
	// TierSpec uses speculative ahead-of-time compilation: type
	// signatures guessed by the speculator, optimizing backend; the JIT
	// covers speculation misses at run time.
	TierSpec
)

// String names the tier as the paper's figures do.
func (t Tier) String() string {
	switch t {
	case TierInterp:
		return "interp"
	case TierMCC:
		return "mcc"
	case TierFalcon:
		return "falcon"
	case TierJIT:
		return "jit"
	case TierSpec:
		return "spec"
	}
	return fmt.Sprintf("Tier(%d)", uint8(t))
}

// Platform selects the simulated backend-quality profile used to
// reproduce the paper's SPARC vs MIPS contrast (see DESIGN.md §2).
type Platform uint8

const (
	// PlatformSPARC models the development platform: a mediocre native
	// compiler, so the optimizing (spec/falcon) backend gains less over
	// the JIT code generator.
	PlatformSPARC Platform = iota
	// PlatformMIPS models an excellent native compiler: the optimizing
	// backend applies its full pass pipeline plus deeper unrolling.
	PlatformMIPS
)

func (p Platform) String() string {
	if p == PlatformMIPS {
		return "mips"
	}
	return "sparc"
}

// Options configure an Engine.
type Options struct {
	Tier     Tier
	Platform Platform
	Out      io.Writer
	Seed     uint64

	// Optimization switches for the Figure 7 ablations. They affect the
	// JIT pipeline (and, where meaningful, the optimizing backend).
	DisableRanges    bool // no range propagation → subscript checks stay
	DisableMinShapes bool // no minimum-shape propagation → no unrolling
	SpillAll         bool // register allocator spills every variable
	DisableInlining  bool // no function inlining
	// DisableGEMV turns off the a*A*x + b*y → dgemv code selection
	// (ablation for the fusion rule of §2.6.1).
	DisableGEMV bool
	// FuseElemwise turns on elementwise fusion (§2.6.1's
	// temporary-elimination, extended to whole operator trees): maximal
	// trees of elementwise operators compile to single fused kernels
	// that run as one loop with no intermediate arrays, and the mat
	// buffer pool recycles displaced destination buffers. Off by default
	// so the baseline paper-mode measurements keep the
	// one-library-call-per-operator execution model.
	FuseElemwise bool
	// JITBackendOpts runs the backend optimization passes inside the JIT
	// pipeline too — the paper's §5 what-if experiment ("room for future
	// enhancements of the JIT compiler"): compile time is still counted,
	// so the trade-off between optimization effort and compile latency
	// becomes measurable.
	JITBackendOpts bool

	// RecompileThreshold enables the repository's upgrade path ("the
	// generated code can later be recompiled — and replaced in the
	// repository — using a better compiler"): once a JIT-compiled entry
	// has served this many calls, it is recompiled with the optimizing
	// backend and the better version takes over. 0 disables upgrades
	// (the default, so the harness's JIT measurements stay pure).
	RecompileThreshold int

	// AsyncCompile turns the repository into a background compilation
	// service (the paper's front end "defers function calls" while the
	// repository compiles "behind the scenes"): speculative jobs and
	// miss-triggered compiles run on a bounded worker pool instead of
	// the caller's goroutine, with single-flight deduplication so N
	// concurrent misses on one (function, widened signature) key
	// trigger exactly one compile. Off by default: the synchronous
	// inline-compile path is unchanged, so the paper reproductions and
	// single-threaded measurements are unaffected.
	AsyncCompile bool
	// CompileWorkers bounds the async pool's concurrently executing
	// compile jobs. 0 means GOMAXPROCS. Ignored unless AsyncCompile.
	CompileWorkers int

	// Threads sets the dense-kernel worker count (internal/parallel):
	// blocked dgemm/dgemv, fused elementwise kernels, and the generic
	// elementwise loops partition their work across this many threads.
	// 0 inherits the process default (GOMAXPROCS unless some engine
	// already set it); 1 forces the serial code paths. Because every
	// parallel kernel preserves per-element operation order, results
	// are byte-for-byte identical for every Threads value. The setting
	// is process-wide (the worker pool is shared), so the last engine
	// to set a non-zero value wins — mirroring mat.EnablePool.
	Threads int
}

// Engine is the public entry point: a MATLAB workspace plus the code
// repository and compilation machinery behind it.
type Engine struct {
	ctx  *builtins.Context
	opts Options
	// fmu guards funcs: with AsyncCompile, compile jobs resolve
	// functions from worker goroutines while the front end registers
	// redefinitions.
	fmu       sync.RWMutex
	funcs     map[string]*ast.Function
	globals   map[string]*mat.Value
	workspace *interp.Env
	in        *interp.Interp
	repo      *repoState
	// queue is the async compilation pool (nil in synchronous mode).
	queue *compilequeue.Pool
	// phase timing for Figure 6; accumulated with atomics because async
	// mode compiles on worker goroutines.
	timing PhaseTimes
}

// New creates an Engine.
func New(opts Options) *Engine {
	ctx := builtins.NewContext()
	if opts.Out != nil {
		ctx.Out = opts.Out
	}
	if opts.Seed != 0 {
		ctx.RNG.Seed(opts.Seed)
	}
	e := &Engine{
		ctx:     ctx,
		opts:    opts,
		funcs:   make(map[string]*ast.Function),
		globals: make(map[string]*mat.Value),
	}
	e.workspace = interp.NewEnv(e.globals)
	e.in = interp.New(e)
	e.repo = newRepoState(e)
	if opts.FuseElemwise {
		mat.EnablePool()
	}
	if opts.Threads > 0 {
		parallel.SetDefaultThreads(opts.Threads)
	}
	if opts.AsyncCompile {
		workers := opts.CompileWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		e.queue = compilequeue.New(workers)
	}
	return e
}

// Close shuts down the engine's background compilation pool (a no-op
// in synchronous mode). Queued jobs finish first; calls made after
// Close compile inline, so the engine stays usable.
func (e *Engine) Close() {
	if e.queue != nil {
		e.queue.Close()
	}
}

// Drain blocks until all in-flight background compile jobs have
// published (or been dropped as stale). A no-op in synchronous mode.
// Benchmarks use it to separate first-call latency from steady state.
func (e *Engine) Drain() {
	if e.queue != nil {
		e.queue.Drain()
	}
}

// QueueStats returns the async pool's counters (zero in sync mode).
func (e *Engine) QueueStats() compilequeue.Stats {
	if e.queue == nil {
		return compilequeue.Stats{}
	}
	return e.queue.Stats()
}

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// EffectiveThreads returns the dense-kernel thread count this engine's
// kernels actually run with: its Threads option if set, otherwise the
// process default (which another engine or SetDefaultThreads may have
// configured).
func (e *Engine) EffectiveThreads() int {
	if e.opts.Threads > 0 {
		return e.opts.Threads
	}
	return parallel.DefaultThreads()
}

// Context implements interp.Host.
func (e *Engine) Context() *builtins.Context { return e.ctx }

// LookupFunction implements interp.Host. It is safe to call from any
// goroutine (compile jobs resolve functions from the worker pool).
func (e *Engine) LookupFunction(name string) *ast.Function {
	e.fmu.RLock()
	defer e.fmu.RUnlock()
	return e.funcs[name]
}

// Functions returns the names of all registered user functions.
func (e *Engine) Functions() []string {
	e.fmu.RLock()
	defer e.fmu.RUnlock()
	out := make([]string, 0, len(e.funcs))
	for n := range e.funcs {
		out = append(out, n)
	}
	return out
}

// Define registers the functions found in src with the repository (the
// analog of dropping a .m file into a snooped source directory). Script
// statements in src are rejected here; use EvalString for those.
func (e *Engine) Define(src string) error {
	file, err := parser.Parse(src)
	if err != nil {
		return err
	}
	if len(file.Stmts) > 0 {
		return fmt.Errorf("Define: source contains script statements; use EvalString")
	}
	for _, fn := range file.Funcs {
		e.registerFunction(fn)
	}
	return nil
}

func (e *Engine) registerFunction(fn *ast.Function) {
	// Publish the new body before advancing the repository generation:
	// an async job that observes the new generation is then guaranteed
	// to resolve the new body (see invokeAsync's ordering note).
	e.fmu.Lock()
	e.funcs[fn.Name] = fn
	e.fmu.Unlock()
	e.repo.invalidate(fn.Name)
}

// Precompile runs the repository's speculative ahead-of-time
// compilation over every registered function — the paper's scenario
// where "MaJIC's repository had ample time to find them and compile
// them speculatively". It is a no-op unless the engine runs TierSpec.
func (e *Engine) Precompile() {
	if e.opts.Tier != TierSpec {
		return
	}
	e.fmu.RLock()
	fns := make([]*ast.Function, 0, len(e.funcs))
	for _, fn := range e.funcs {
		fns = append(fns, fn)
	}
	e.fmu.RUnlock()
	for _, fn := range fns {
		has := false
		for _, entry := range e.repo.r.Entries(fn.Name) {
			if entry.Speculative {
				has = true
				break
			}
		}
		if !has {
			e.repo.precompile(fn)
		}
	}
}

// EvalString parses and executes src in the engine workspace. Function
// definitions in src are registered; script statements execute in the
// interactive front end (interpreted, with calls deferred per the tier).
func (e *Engine) EvalString(src string) error {
	file, err := parser.Parse(src)
	if err != nil {
		return err
	}
	for _, fn := range file.Funcs {
		e.registerFunction(fn)
	}
	return e.in.ExecStmts(file.Stmts, e.workspace)
}

// Workspace returns the value of a workspace variable.
func (e *Engine) Workspace(name string) (*mat.Value, bool) {
	return e.workspace.Lookup(name)
}

// WorkspaceNames returns the names bound in the interactive workspace
// (the REPL's who command).
func (e *Engine) WorkspaceNames() []string {
	names := e.workspace.Names()
	sort.Strings(names)
	return names
}

// SetWorkspace binds a workspace variable.
func (e *Engine) SetWorkspace(name string, v *mat.Value) {
	v.MarkShared()
	e.workspace.Bind(name, v)
}

// Call invokes the named user function with the given arguments through
// the engine's execution tier. This is the "invocation" protocol of the
// paper's front end: the interpreter builds the function name plus
// parameter values and passes the work to the code repository.
func (e *Engine) Call(name string, args []*mat.Value, nout int) ([]*mat.Value, error) {
	return e.CallFunction(name, args, nout)
}

// CallFunction implements interp.Host: route a function call through
// the configured tier.
//
// Concurrency: with AsyncCompile enabled, CallFunction (and Call) may
// be used from multiple goroutines against one shared engine — the
// repository, compile pool, and compiled code are concurrency-safe.
// Functions that touch `global` variables remain single-client-only,
// as do EvalString and the workspace accessors (one MATLAB workspace,
// like one MATLAB session).
func (e *Engine) CallFunction(name string, args []*mat.Value, nout int) ([]*mat.Value, error) {
	fn := e.LookupFunction(name)
	if fn == nil {
		return nil, fmt.Errorf("undefined function %q", name)
	}
	if nout < 1 {
		nout = 1
	}
	if e.opts.Tier == TierInterp {
		return e.in.CallFunction(fn, args, nout, e.globals)
	}
	return e.repo.invoke(fn, args, nout)
}

// Interpret runs the function through the interpreter regardless of
// tier (used by differential tests and the harness baseline).
func (e *Engine) Interpret(name string, args []*mat.Value, nout int) ([]*mat.Value, error) {
	fn := e.LookupFunction(name)
	if fn == nil {
		return nil, fmt.Errorf("undefined function %q", name)
	}
	return e.in.CallFunction(fn, args, nout, e.globals)
}

// PhaseTimes accumulates per-phase compilation time, reproducing the
// decomposition of Figure 6 (disambiguation, type inference, code
// generation) plus execution.
type PhaseTimes struct {
	Disambig int64 // nanoseconds
	TypeInf  int64
	Codegen  int64
	Exec     int64
}

// Timing returns the accumulated phase times (atomic snapshot: async
// compile jobs accumulate from worker goroutines).
func (e *Engine) Timing() PhaseTimes {
	return PhaseTimes{
		Disambig: atomic.LoadInt64(&e.timing.Disambig),
		TypeInf:  atomic.LoadInt64(&e.timing.TypeInf),
		Codegen:  atomic.LoadInt64(&e.timing.Codegen),
		Exec:     atomic.LoadInt64(&e.timing.Exec),
	}
}

// ResetTiming clears accumulated phase times.
func (e *Engine) ResetTiming() {
	atomic.StoreInt64(&e.timing.Disambig, 0)
	atomic.StoreInt64(&e.timing.TypeInf, 0)
	atomic.StoreInt64(&e.timing.Codegen, 0)
	atomic.StoreInt64(&e.timing.Exec, 0)
}
