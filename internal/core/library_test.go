package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mat"
)

// TestSharedLibraryWarmsOtherEngines pins the daemon's amortization
// story: a function JIT-compiled through one engine serves another
// engine's call as a repository hit, with no second compile.
func TestSharedLibraryWarmsOtherEngines(t *testing.T) {
	lib := NewLibrary(LibraryOptions{})
	defer lib.Close()
	a := New(Options{Tier: TierJIT, Library: lib})
	b := New(Options{Tier: TierJIT, Library: lib})
	if err := a.Define("function y = add2(x)\ny = x + 2;\n"); err != nil {
		t.Fatal(err)
	}
	// The definition is visible to b without a Define of its own.
	if b.LookupFunction("add2") == nil {
		t.Fatal("shared definition not visible to second engine")
	}
	if outs, err := a.Call("add2", []*mat.Value{mat.Scalar(1)}, 1); err != nil || outs[0].Re()[0] != 3 {
		t.Fatalf("a.Call: %v %v", outs, err)
	}
	st := lib.Repo().Stats()
	if st.Inserts != 1 {
		t.Fatalf("want 1 insert after first call, got %+v", st)
	}
	// Same signature from the second engine (sessions replaying one
	// workload present identical signatures) → locator hit, no compile.
	if outs, err := b.Call("add2", []*mat.Value{mat.Scalar(1)}, 1); err != nil || outs[0].Re()[0] != 3 {
		t.Fatalf("b.Call: %v %v", outs, err)
	}
	st = lib.Repo().Stats()
	if st.Inserts != 1 || st.Hits < 1 {
		t.Fatalf("second engine should hit the shared entry, got %+v", st)
	}
}

// TestSharedLibraryRedefinition checks the generation contract across
// engines: b's redefinition invalidates the entry a compiled, and a's
// next call sees the new semantics.
func TestSharedLibraryRedefinition(t *testing.T) {
	lib := NewLibrary(LibraryOptions{})
	defer lib.Close()
	a := New(Options{Tier: TierJIT, Library: lib})
	b := New(Options{Tier: TierJIT, Library: lib})
	if err := a.Define("function y = f(x)\ny = x + 1;\n"); err != nil {
		t.Fatal(err)
	}
	if outs, _ := a.Call("f", []*mat.Value{mat.Scalar(1)}, 1); outs[0].Re()[0] != 2 {
		t.Fatalf("old body: got %g", outs[0].Re()[0])
	}
	if err := b.Define("function y = f(x)\ny = x + 10;\n"); err != nil {
		t.Fatal(err)
	}
	outs, err := a.Call("f", []*mat.Value{mat.Scalar(1)}, 1)
	if err != nil || outs[0].Re()[0] != 11 {
		t.Fatalf("a must see b's redefinition, got %v %v", outs, err)
	}
}

// TestSharedLibraryConcurrentEngines stresses the shared repository and
// compile pool from many engines at once (run under -race): concurrent
// misses on one signature coalesce and every engine computes the same
// answer.
func TestSharedLibraryConcurrentEngines(t *testing.T) {
	lib := NewLibrary(LibraryOptions{AsyncCompile: true, CompileWorkers: 2})
	defer lib.Close()
	seedEng := New(Options{Tier: TierJIT, Library: lib})
	if err := seedEng.Define("function y = sq(x)\ny = x * x;\n"); err != nil {
		t.Fatal(err)
	}
	const engines = 8
	var wg sync.WaitGroup
	errs := make([]error, engines)
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := New(Options{Tier: TierJIT, Library: lib})
			for k := 1; k <= 20; k++ {
				outs, err := e.Call("sq", []*mat.Value{mat.Scalar(float64(k))}, 1)
				if err != nil {
					errs[i] = err
					return
				}
				if got, want := outs[0].Re()[0], float64(k*k); got != want {
					errs[i] = fmt.Errorf("sq(%d) = %g, want %g", k, got, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
	}
}
