package core

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// differential programs: each defines a function f taking no arguments
// (or specified args) and returning one value; every execution tier
// must agree with the interpreter.
type diffProg struct {
	name string
	src  string
	args []float64 // scalar args for f
}

var diffPrograms = []diffProg{
	{name: "scalar_loop", src: `
function s = f()
  s = 0;
  for i = 1:100
    s = s + i*i;
  end
end`},
	{name: "nested_loops_array", src: `
function s = f()
  A = zeros(20, 20);
  for i = 1:20
    for j = 1:20
      A(i,j) = i*10 + j;
    end
  end
  s = 0;
  for i = 1:20
    for j = 1:20
      s = s + A(i,j);
    end
  end
end`},
	{name: "while_loop", src: `
function s = f()
  s = 1;
  k = 0;
  while k < 30
    k = k + 1;
    s = s + 1/k;
  end
end`},
	{name: "if_chain", src: `
function s = f()
  s = 0;
  for i = 1:50
    if mod(i, 3) == 0
      s = s + i;
    elseif mod(i, 5) == 0
      s = s - i;
    else
      s = s + 1;
    end
  end
end`},
	{name: "break_continue", src: `
function s = f()
  s = 0;
  for i = 1:100
    if i > 40
      break;
    end
    if mod(i, 2) == 0
      continue;
    end
    s = s + i;
  end
end`},
	{name: "vector_ops", src: `
function s = f()
  v = [1 2 3];
  w = [4 5 6];
  u = v + w;
  z = v .* w;
  s = sum(u) + sum(z) + dot(v, w);
end`},
	{name: "growth", src: `
function s = f()
  v = [];
  for i = 1:50
    v(i) = i*i;
  end
  s = sum(v) + length(v);
end`},
	{name: "growth_2d", src: `
function s = f()
  A = zeros(2,2);
  A(5, 7) = 3;
  s = numel(A) + A(5,7) + size(A,1)*100 + size(A,2);
end`},
	{name: "range_index", src: `
function s = f()
  v = 1:100;
  w = v(10:20);
  s = sum(w) + v(end) + w(end-3);
end`},
	{name: "colon_index", src: `
function s = f()
  A = zeros(5,5);
  for i = 1:5
    for j = 1:5
      A(i,j) = i + j*j;
    end
  end
  c = A(:,3);
  r = A(2,:);
  s = sum(c) + sum(r) + sum(A(:));
end`},
	{name: "matmul", src: `
function s = f()
  A = [1 2; 3 4];
  B = [5 6; 7 8];
  C = A*B;
  s = C(1,1) + C(1,2) + C(2,1) + C(2,2) + det(A);
end`},
	{name: "matvec_gemv", src: `
function s = f()
  n = 30;
  A = zeros(n, n);
  for i = 1:n
    for j = 1:n
      A(i,j) = 1/(i+j);
    end
  end
  x = ones(n, 1);
  b = A*x;
  r = b - A*x;
  q = b + A*x;
  s = norm(r) + sum(b) + sum(q);
end`},
	{name: "complex_scalar", src: `
function s = f()
  z = 0;
  c = -0.4 + 0.6i;
  k = 0;
  for iter = 1:50
    z = z*z + c;
    if abs(z) > 2
      break;
    end
    k = k + 1;
  end
  s = k + real(z) + imag(z);
end`},
	{name: "complex_funcs", src: `
function s = f()
  z = exp(i*pi/4);
  w = sqrt(-9);
  s = real(z)*1000 + imag(z)*100 + imag(w) + abs(z');
end`},
	{name: "recursion", src: `
function s = f()
  s = fib(15);
end
function y = fib(n)
  if n < 2
    y = n;
  else
    y = fib(n-1) + fib(n-2);
  end
end`},
	{name: "helper_inline", src: `
function s = f()
  s = 0;
  for k = 1:20
    s = s + sq(k) - cube(k)/10;
  end
end
function y = sq(x)
  y = x*x;
end
function y = cube(x)
  y = x*x*x;
end`},
	{name: "multiout", src: `
function s = f()
  [m, idx] = max([3 1 4 1 5 9 2 6]);
  [r, c] = size(zeros(3, 7));
  s = m*1000 + idx*100 + r*10 + c;
end`},
	{name: "builtins_mix", src: `
function s = f()
  v = linspace(0, pi, 21);
  s = 0;
  for k = 1:21
    s = s + sin(v(k)) * cos(v(k)/2);
  end
  s = s + floor(2.7) + ceil(-1.2) + round(0.5) + fix(-3.9) + sign(-7);
end`},
	{name: "transpose_ops", src: `
function s = f()
  A = [1 2 3; 4 5 6];
  B = A';
  v = [1; 2; 3];
  w = v'*v;
  s = B(3,2) + w + sum(sum(A*B));
end`},
	{name: "logical_ops", src: `
function s = f()
  s = 0;
  for a = 0:1
    for b = 0:1
      s = s + (a & b) + 2*(a | b) + 4*xorlike(a, b) + 8*(~a);
    end
  end
end
function y = xorlike(a, b)
  y = (a | b) & ~(a & b);
end`},
	{name: "strings", src: `
function s = f()
  msg = 'hello';
  s = length(msg) + double_first(msg);
end
function y = double_first(m)
  y = m(1) + 0;
end`},
	{name: "rand_stream", src: `
function s = f()
  s = 0;
  for k = 1:100
    r = rand;
    if r < 0.5
      s = s + r;
    else
      s = s - r/2;
    end
  end
end`},
	{name: "small_vec_unroll", src: `
function s = f()
  p = [1 2];
  v = [0.5 -0.5];
  s = 0;
  for k = 1:100
    p = p + v;
    v = v * 0.99;
    s = s + p(1) - p(2);
  end
end`},
	{name: "linear_solve", src: `
function s = f()
  A = [4 1 0; 1 4 1; 0 1 4];
  b = [6; 12; 14];
  x = A \ b;
  s = x(1)*100 + x(2)*10 + x(3) + norm(A*x - b);
end`},
	{name: "eig_sym", src: `
function s = f()
  A = [2 1; 1 2];
  e = eig(A);
  s = e(1)*10 + e(2);
end`},
	{name: "negative_step", src: `
function s = f()
  s = 0;
  for i = 10:-2:1
    s = s*10 + i;
  end
end`},
	{name: "float_step", src: `
function s = f()
  s = 0;
  for t = 0:0.1:1
    s = s + t;
  end
end`},
	{name: "switch_stmt", src: `
function s = f()
  s = 0;
  for i = 1:10
    switch mod(i, 3)
    case 0
      s = s + 100;
    case 1
      s = s + 10;
    otherwise
      s = s + 1;
    end
  end
end`},
	{name: "args_scalar", src: `
function y = f(a, b)
  y = 0;
  for i = 1:50
    y = y + a*i + b;
  end
end`, args: []float64{3, 7}},
	{name: "args_shape_growth", src: `
function y = f(n)
  A = zeros(n, n);
  for i = 1:n
    for j = 1:n
      A(i,j) = i - j;
    end
  end
  y = sum(A(:)) + A(n,n) + A(1,n);
end`, args: []float64{12}},
	{name: "end_arith", src: `
function s = f()
  v = 1:20;
  s = v(end) + v(end-1) + v(end-18);
  A = [1 2 3; 4 5 6];
  s = s + A(end, end) + A(1, end-1);
end`},
	{name: "shortcircuit", src: `
function s = f()
  s = 0;
  v = [1 2 3];
  for i = 1:5
    if i <= 3 && v(min(i,3)) > 1
      s = s + 1;
    end
    if i > 4 || i < 2
      s = s + 10;
    end
  end
end`},
	{name: "oversize_growth", src: `
function s = f()
  v = zeros(1, 1);
  for i = 1:200
    v(i) = mod(i, 7);
  end
  s = sum(v) + length(v);
end`},
	{name: "ack_like", src: `
function s = f()
  s = ack(2, 3);
end
function y = ack(m, n)
  if m == 0
    y = n + 1;
  elseif n == 0
    y = ack(m-1, 1);
  else
    y = ack(m-1, ack(m, n-1));
  end
end`},
	{name: "matrix_literal_rows", src: `
function s = f()
  a = 1; b = 2;
  M = [a b; b a];
  N = [M; 2*M];
  s = sum(N(:)) + N(4,2) + size(N,1);
end`},
	{name: "elem_pow", src: `
function s = f()
  v = [1 2 3 4];
  w = v.^2;
  u = 2.^v;
  s = sum(w) + sum(u) + 2^10 + (-2)^3;
end`},
	{name: "complex_vectors", src: `
function s = f()
  v = [1+2i, 3-1i, 2i];
  w = v * 2;
  u = v + w;
  t = v .* w;
  s = real(sum(u)) + imag(sum(t)) + abs(v(2));
end`},
	{name: "string_ops", src: `
function s = f()
  msg = sprintf('%d-%d', 4, 2);
  s = length(msg) + (msg(2) - msg(1));
end`},
	{name: "reshape_repmat_find", src: `
function s = f()
  A = reshape(1:12, 3, 4);
  B = repmat([1 2], 2, 2);
  idx = find(A > 6);
  s = A(2,3) + sum(B(:)) + sum(idx) + numel(idx);
end`},
	{name: "nargin_fallback", src: `
function s = f()
  s = h(1, 2) + h(1, 2);
end
function y = h(a, b)
  y = nargin * 10 + a + b;
end`},
	{name: "sort_multiout", src: `
function s = f()
  [v, idx] = sort([3 1 2]);
  s = v(1)*100 + idx(1)*10 + v(3);
end`},
	{name: "triangular", src: `
function s = f()
  A = reshape(1:9, 3, 3);
  L = tril(A);
  U = triu(A, 1);
  s = sum(L(:)) * 100 + sum(U(:)) + det(eye(3));
end`},
	{name: "dotops_vectors", src: `
function s = f()
  v = 1:6;
  w = v ./ (v + 1);
  u = (v + 1) .\ v;
  z = v .^ 0.5;
  s = sum(w) + sum(u) + sum(z);
end`},
	{name: "while_matrix_update", src: `
function s = f()
  A = eye(3);
  k = 0;
  while sum(A(:)) < 30
    A = A + A';
    k = k + 1;
  end
  s = k + sum(A(:));
end`},
}

var allTiers = []Tier{TierMCC, TierFalcon, TierJIT, TierSpec}

func runTier(t *testing.T, p diffProg, tier Tier, platform Platform) *mat.Value {
	t.Helper()
	e := New(Options{Tier: tier, Platform: platform, Seed: 12345})
	if err := e.Define(p.src); err != nil {
		t.Fatalf("[%s/%s] define: %v", p.name, tier, err)
	}
	e.Precompile()
	args := make([]*mat.Value, len(p.args))
	for i, a := range p.args {
		args[i] = mat.Scalar(a)
	}
	outs, err := e.Call("f", args, 1)
	if err != nil {
		t.Fatalf("[%s/%s] call: %v", p.name, tier, err)
	}
	if len(outs) == 0 {
		t.Fatalf("[%s/%s] no output", p.name, tier)
	}
	return outs[0]
}

func valuesClose(a, b *mat.Value) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	ar, br := a.Re(), b.Re()
	for i := range ar {
		if !scalarClose(ar[i], br[i]) {
			return false
		}
	}
	ai, bi := a.Im(), b.Im()
	for i := 0; i < a.Numel(); i++ {
		var x, y float64
		if ai != nil {
			x = ai[i]
		}
		if bi != nil {
			y = bi[i]
		}
		if !scalarClose(x, y) {
			return false
		}
	}
	return true
}

func scalarClose(x, y float64) bool {
	if math.IsNaN(x) && math.IsNaN(y) {
		return true
	}
	diff := math.Abs(x - y)
	return diff <= 1e-9*(1+math.Max(math.Abs(x), math.Abs(y)))
}

// TestTiersMatchInterpreter is the central differential test: every
// compilation tier must produce the interpreter's results on every
// program, on both platform profiles.
func TestTiersMatchInterpreter(t *testing.T) {
	for _, p := range diffPrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			want := runTier(t, p, TierInterp, PlatformSPARC)
			for _, tier := range allTiers {
				for _, platform := range []Platform{PlatformSPARC, PlatformMIPS} {
					got := runTier(t, p, tier, platform)
					if !valuesClose(want, got) {
						t.Errorf("tier %s/%s: got %s, want %s", tier, platform, got, want)
					}
				}
			}
		})
	}
}

// TestAblationsPreserveSemantics checks that the Figure 7 ablation
// switches never change results, only performance.
func TestAblationsPreserveSemantics(t *testing.T) {
	ablations := []Options{
		{Tier: TierJIT, DisableRanges: true},
		{Tier: TierJIT, DisableMinShapes: true},
		{Tier: TierJIT, SpillAll: true},
		{Tier: TierJIT, DisableRanges: true, DisableMinShapes: true, SpillAll: true},
		{Tier: TierJIT, DisableInlining: true},
		{Tier: TierSpec, DisableRanges: true, SpillAll: true},
		{Tier: TierJIT, FuseElemwise: true},
		{Tier: TierSpec, FuseElemwise: true, DisableMinShapes: true},
	}
	for _, p := range diffPrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			want := runTier(t, p, TierInterp, PlatformSPARC)
			for i, abl := range ablations {
				abl.Seed = 12345
				e := New(abl)
				if err := e.Define(p.src); err != nil {
					t.Fatalf("ablation %d define: %v", i, err)
				}
				e.Precompile()
				args := make([]*mat.Value, len(p.args))
				for j, a := range p.args {
					args[j] = mat.Scalar(a)
				}
				outs, err := e.Call("f", args, 1)
				if err != nil {
					t.Fatalf("ablation %d: %v", i, err)
				}
				if !valuesClose(want, outs[0]) {
					t.Errorf("ablation %+v: got %s, want %s", abl, outs[0], want)
				}
			}
		})
	}
}

// TestRepeatedCallsStable exercises the repository: repeated calls with
// identical and with varying signatures must stay correct (widening).
func TestRepeatedCallsStable(t *testing.T) {
	e := New(Options{Tier: TierJIT, Seed: 7})
	err := e.Define(`
function y = g(n)
  y = 0;
  for i = 1:n
    y = y + i;
  end
end`)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 20; n++ {
		outs, err := e.Call("g", []*mat.Value{mat.Scalar(float64(n))}, 1)
		if err != nil {
			t.Fatalf("g(%d): %v", n, err)
		}
		want := float64(n * (n + 1) / 2)
		if got := outs[0].MustScalar(); got != want {
			t.Fatalf("g(%d) = %g, want %g", n, got, want)
		}
	}
	// Widening must have kicked in: far fewer compiles than calls.
	entries := e.Repo().Entries("g")
	if len(entries) > 3 {
		t.Errorf("repository holds %d versions of g; widening failed", len(entries))
	}
}
