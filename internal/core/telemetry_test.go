package core

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/telemetry"
)

// valueBits compares two values bit-for-bit (not approximately): the
// telemetry layer must be a pure observer, so enabling it may not
// perturb a single mantissa bit.
func valueBits(t *testing.T, name string, a, b *mat.Value) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	ar, br := a.Re(), b.Re()
	for i := range ar {
		if math.Float64bits(ar[i]) != math.Float64bits(br[i]) {
			t.Fatalf("%s: re[%d] = %x vs %x", name, i, math.Float64bits(ar[i]), math.Float64bits(br[i]))
		}
	}
	ai, bi := a.Im(), b.Im()
	if (ai == nil) != (bi == nil) {
		t.Fatalf("%s: one result is complex, the other not", name)
	}
	for i := range ai {
		if math.Float64bits(ai[i]) != math.Float64bits(bi[i]) {
			t.Fatalf("%s: im[%d] differs", name, i)
		}
	}
}

// TestTelemetryNeutralResults is the bit-identity guard: every
// differential program produces byte-for-byte identical results with
// the flight recorder fully enabled (tracer + journal) and disabled.
func TestTelemetryNeutralResults(t *testing.T) {
	for _, p := range diffPrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			plain := runTier(t, p, TierJIT, PlatformSPARC)

			tr := telemetry.NewTracer(0)
			j := telemetry.NewJournal(0)
			e := New(Options{Tier: TierJIT, Platform: PlatformSPARC, Seed: 12345,
				Tracer: tr, Journal: j})
			if err := e.Define(p.src); err != nil {
				t.Fatalf("define: %v", err)
			}
			e.Precompile()
			args := make([]*mat.Value, len(p.args))
			for i, a := range p.args {
				args[i] = mat.Scalar(a)
			}
			outs, err := e.Call("f", args, 1)
			if err != nil {
				t.Fatalf("traced call: %v", err)
			}
			valueBits(t, p.name, plain, outs[0])
			if len(tr.Events()) == 0 {
				t.Fatal("tracer saw no spans — telemetry was not actually on")
			}
		})
	}
}

// TestSpanTotalsReconcileWithPhaseTimes pins the acceptance criterion:
// the trace's per-category span totals reconcile with the engine's
// PhaseTimes decomposition. Both sides are fed the very same
// time.Since measurement, so the only slack is the trace format's
// microsecond truncation — strictly less than 1µs per span, always
// downward.
func TestSpanTotalsReconcileWithPhaseTimes(t *testing.T) {
	tr := telemetry.NewTracer(0)
	e := New(Options{Tier: TierJIT, Seed: 7, Tracer: tr})
	defer e.Close()
	if err := e.Define(`
function s = f(n)
  s = 0;
  for i = 1:n
    s = s + i * i;
  end
end`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Call("f", []*mat.Value{mat.Scalar(2000)}, 1); err != nil {
			t.Fatal(err)
		}
	}

	pt := e.Timing()
	totals := tr.CatTotals()
	spans := map[string]int64{}
	for _, ev := range tr.Events() {
		spans[ev.Cat]++
	}
	for cat, atomicNS := range map[string]int64{
		telemetry.CatDisambig: pt.Disambig,
		telemetry.CatTypeInf:  pt.TypeInf,
		telemetry.CatCodegen:  pt.Codegen,
		telemetry.CatExec:     pt.Exec,
	} {
		if spans[cat] == 0 {
			t.Errorf("no %s spans recorded", cat)
			continue
		}
		spanNS := totals[cat].Nanoseconds()
		if spanNS > atomicNS {
			t.Errorf("%s: span total %dns exceeds PhaseTimes %dns (truncation can only lose time)",
				cat, spanNS, atomicNS)
		}
		if slack := atomicNS - spanNS; slack >= spans[cat]*1000 {
			t.Errorf("%s: span total %dns vs PhaseTimes %dns — slack %dns over %d spans breaks the <1µs/span bound",
				cat, spanNS, atomicNS, slack, spans[cat])
		}
	}
}

// Steady-state overhead pair: the same hot call with the flight
// recorder off and on. EXPERIMENTS.md records the measured delta; the
// acceptance bound is <2%.
func benchSteadyState(b *testing.B, tr *telemetry.Tracer, j *telemetry.Journal) {
	e := New(Options{Tier: TierJIT, Seed: 1, Tracer: tr, Journal: j})
	defer e.Close()
	if err := e.Define(`
function s = f(n)
  s = 0;
  for i = 1:n
    s = s + i * 2;
  end
end`); err != nil {
		b.Fatal(err)
	}
	args := []*mat.Value{mat.Scalar(10000)}
	if _, err := e.Call("f", args, 1); err != nil {
		b.Fatal(err) // compile outside the timed window
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Call("f", args, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyStateTelemetryOff(b *testing.B) {
	benchSteadyState(b, nil, nil)
}

func BenchmarkSteadyStateTelemetryOn(b *testing.B) {
	benchSteadyState(b, telemetry.NewTracer(0), telemetry.NewJournal(0))
}
