package core

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// The serial-vs-parallel differential suite: the same program, seed,
// and tier must produce byte-for-byte identical results for every
// Threads value, across the blocked dgemm (a*b), dgemv (a*v), the
// fused elementwise kernels, and the generic elementwise loops. The
// vector length is chosen above the elementwise and fused grain
// thresholds and the matrix above the blocked-dgemm cutoff, so the
// parallel code paths genuinely run when threads > 1.
const parWorkSrc = `
function [c, s, g] = parwork(n, m)
  a = rand(n, n);
  b = rand(n, n);
  c = a * b;
  v = rand(n, 1);
  g = a * v + 0.5 * v;
  x = rand(m, 1);
  y = x .* 2 + 1;
  z = y .^ 2 - x ./ 7 + exp(-y);
  s = sum(z) + sum(y .* x);
end`

func runParWork(t *testing.T, tier Tier, fuse bool, threads int) []*mat.Value {
	t.Helper()
	parallel.SetDefaultThreads(threads)
	e := New(Options{Tier: tier, Seed: 7, FuseElemwise: fuse})
	defer e.Close()
	if err := e.Define(parWorkSrc); err != nil {
		t.Fatal(err)
	}
	e.Precompile()
	outs, err := e.Call("parwork", []*mat.Value{mat.Scalar(72), mat.Scalar(50000)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

func bitsEqual(t *testing.T, label string, want, got []*mat.Value) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Rows() != g.Rows() || w.Cols() != g.Cols() || w.Kind() != g.Kind() {
			t.Fatalf("%s: output %d shape/kind %dx%d %v, want %dx%d %v",
				label, i, g.Rows(), g.Cols(), g.Kind(), w.Rows(), w.Cols(), w.Kind())
		}
		wr, gr := w.Re(), g.Re()
		for k := range wr {
			if math.Float64bits(wr[k]) != math.Float64bits(gr[k]) {
				t.Fatalf("%s: output %d element %d = %x, want %x (values %v vs %v)",
					label, i, k, math.Float64bits(gr[k]), math.Float64bits(wr[k]), gr[k], wr[k])
			}
		}
	}
}

// TestSerialParallelBitIdentity pins the bit-identity contract at the
// engine level: Threads ∈ {2, 8} against the Threads = 1 serial
// reference, for both compiled tiers and with fusion on and off.
func TestSerialParallelBitIdentity(t *testing.T) {
	defer parallel.SetDefaultThreads(0)
	for _, tier := range []Tier{TierFalcon, TierJIT} {
		for _, fuse := range []bool{false, true} {
			ref := runParWork(t, tier, fuse, 1)
			for _, threads := range []int{2, 8} {
				got := runParWork(t, tier, fuse, threads)
				label := tier.String()
				if fuse {
					label += "+fuse"
				}
				bitsEqual(t, label, ref, got)
			}
		}
	}
}

// TestEngineThreadsOption checks the Options.Threads wiring: a non-zero
// value becomes the process default and EffectiveThreads reports it;
// zero inherits whatever the process default is.
func TestEngineThreadsOption(t *testing.T) {
	defer parallel.SetDefaultThreads(0)
	e := New(Options{Tier: TierJIT, Threads: 3})
	defer e.Close()
	if got := e.EffectiveThreads(); got != 3 {
		t.Errorf("EffectiveThreads = %d, want 3", got)
	}
	if got := parallel.DefaultThreads(); got != 3 {
		t.Errorf("DefaultThreads after New = %d, want 3", got)
	}
	e2 := New(Options{Tier: TierJIT})
	defer e2.Close()
	if got := e2.EffectiveThreads(); got != 3 {
		t.Errorf("inheriting engine EffectiveThreads = %d, want 3", got)
	}
}
