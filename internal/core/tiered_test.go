package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/cancel"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/repo"
)

// The tiered-execution suite: profile-guided promotion, on-stack
// replacement, and the invariants the tiering pipeline must preserve —
// results bit-identical with tiering on or off, deopts never wrong, and
// interrupted requests never leaking half-built state.

const hotForSrc = `
function s = hotfor(n)
  s = 0;
  for i = 1:n
    s = s + i * 0.5;
  end
  s = s * 2 + 1;
end`

const hotWhileSrc = `
function s = hotwhile(n)
  s = 0;
  i = 0;
  while i < n
    i = i + 1;
    s = s + i;
  end
  s = s - n;
end`

func newTiered(t *testing.T, threshold int) *Engine {
	t.Helper()
	e := New(Options{Tier: TierJIT, Tiered: true, TierThreshold: threshold, Seed: 12345})
	t.Cleanup(e.Close)
	return e
}

// payloadEqual is the tiered bit-identity check: identical shapes and
// identical element bits (real and imaginary). The int/double kind tag
// may differ — type inference refines integral doubles to int, so
// compiled code has always tagged such results int where the
// interpreter says double (the plain JIT tier does the same); the
// numeric payload must still match bit for bit.
func payloadEqual(t *testing.T, label string, want, got []*mat.Value) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	realKind := func(k mat.Kind) bool { return k == mat.Int || k == mat.Real }
	for i := range want {
		w, g := want[i], got[i]
		if w.Rows() != g.Rows() || w.Cols() != g.Cols() {
			t.Fatalf("%s: output %d shape %dx%d, want %dx%d",
				label, i, g.Rows(), g.Cols(), w.Rows(), w.Cols())
		}
		if w.Kind() != g.Kind() && !(realKind(w.Kind()) && realKind(g.Kind())) {
			t.Fatalf("%s: output %d kind %v, want %v", label, i, g.Kind(), w.Kind())
		}
		wr, gr := w.Re(), g.Re()
		for k := range wr {
			if math.Float64bits(wr[k]) != math.Float64bits(gr[k]) {
				t.Fatalf("%s: output %d element %d = %x, want %x (values %v vs %v)",
					label, i, k, math.Float64bits(gr[k]), math.Float64bits(wr[k]), gr[k], wr[k])
			}
		}
		wi, gi := w.Im(), g.Im()
		for k := 0; k < w.Numel(); k++ {
			var x, y float64
			if wi != nil {
				x = wi[k]
			}
			if gi != nil {
				y = gi[k]
			}
			if math.Float64bits(x) != math.Float64bits(y) {
				t.Fatalf("%s: output %d imag element %d differs (%v vs %v)", label, i, k, y, x)
			}
		}
	}
}

func callScalar(t *testing.T, e *Engine, name string, arg float64) *mat.Value {
	t.Helper()
	outs, err := e.Call(name, []*mat.Value{mat.Scalar(arg)}, 1)
	if err != nil {
		t.Fatalf("%s(%v): %v", name, arg, err)
	}
	if len(outs) != 1 {
		t.Fatalf("%s(%v): %d outputs", name, arg, len(outs))
	}
	return outs[0]
}

// TestTieredFirstCallInterpreted pins the responsiveness half of the
// contract: under the threshold, tiered calls run in the interpreter
// and the repository holds no compiled entry — first-eval latency never
// pays a compile.
func TestTieredFirstCallInterpreted(t *testing.T) {
	e := newTiered(t, 8)
	if err := e.Define(hotForSrc); err != nil {
		t.Fatal(err)
	}
	got := callScalar(t, e, "hotfor", 3)
	e.Drain()
	want := mustInterp(t, e, "hotfor", 3)
	payloadEqual(t, "first call", []*mat.Value{want}, []*mat.Value{got})
	for _, en := range e.Repo().Entries("hotfor") {
		if en.Code != nil {
			t.Fatalf("compiled entry published after one cold call: quality %v", en.Quality)
		}
	}
	if st := e.ProfileStats(); st.Entries != 1 {
		t.Fatalf("profile entries = %d, want 1", st.Entries)
	}
}

// TestTieredPromotion drives a signature past the threshold and checks
// the background tier-up: a QualityOpt entry appears, the promotion is
// counted, and later calls hit it.
func TestTieredPromotion(t *testing.T) {
	e := newTiered(t, 4)
	if err := e.Define(hotForSrc); err != nil {
		t.Fatal(err)
	}
	want := mustInterp(t, e, "hotfor", 5)
	for i := 0; i < 4; i++ {
		got := callScalar(t, e, "hotfor", 5)
		payloadEqual(t, "warming call", []*mat.Value{want}, []*mat.Value{got})
	}
	e.Drain()
	var opt bool
	for _, en := range e.Repo().Entries("hotfor") {
		if en.Quality == repo.QualityOpt && en.Code != nil {
			opt = true
		}
	}
	if !opt {
		t.Fatal("no QualityOpt entry after crossing the promotion threshold")
	}
	if st := e.ProfileStats(); st.Promotions < 1 {
		t.Fatalf("promotions = %d, want >= 1", st.Promotions)
	}
	hitsBefore := e.Repo().Stats().Hits
	got := callScalar(t, e, "hotfor", 5)
	payloadEqual(t, "post-promotion call", []*mat.Value{want}, []*mat.Value{got})
	if hits := e.Repo().Stats().Hits; hits <= hitsBefore {
		t.Fatalf("post-promotion call did not hit the compiled entry (hits %d -> %d)", hitsBefore, hits)
	}
}

// osrOnce drives the deterministic OSR sequence for one function: the
// first call's back-edges cross the threshold and enqueue the
// continuation compile, Drain lands it, and the second call transfers
// mid-loop. Returns the second call's result.
func osrOnce(t *testing.T, e *Engine, name string, n float64) *mat.Value {
	t.Helper()
	callScalar(t, e, name, n)
	e.Drain()
	if st := e.ProfileStats(); st.OSRCompiles < 1 {
		t.Fatalf("%s: no OSR continuation compiled after first hot call (requests %d, failed compile?)",
			name, st.OSRRequests)
	}
	before := e.ProfileStats().OSRTransfers
	out := callScalar(t, e, name, n)
	if after := e.ProfileStats().OSRTransfers; after <= before {
		t.Fatalf("%s: second hot call did not OSR-transfer (transfers %d -> %d, deopts %d)",
			name, before, after, e.ProfileStats().OSRDeopts)
	}
	return out
}

// TestTieredOSRForLoop checks the counted-loop transfer: a hot for
// range activation resumes in compiled code mid-run and produces the
// interpreter's bits, including the post-loop tail.
func TestTieredOSRForLoop(t *testing.T) {
	e := newTiered(t, 8)
	if err := e.Define(hotForSrc); err != nil {
		t.Fatal(err)
	}
	want := mustInterp(t, e, "hotfor", 500)
	got := osrOnce(t, e, "hotfor", 500)
	payloadEqual(t, "for OSR", []*mat.Value{want}, []*mat.Value{got})
}

// TestTieredOSRWhileLoop checks the while transfer: the continuation
// starts at the loop header and re-evaluates the condition.
func TestTieredOSRWhileLoop(t *testing.T) {
	e := newTiered(t, 8)
	if err := e.Define(hotWhileSrc); err != nil {
		t.Fatal(err)
	}
	want := mustInterp(t, e, "hotwhile", 400)
	got := osrOnce(t, e, "hotwhile", 400)
	payloadEqual(t, "while OSR", []*mat.Value{want}, []*mat.Value{got})
}

// TestTieredRedefinitionNeverResurrects: after a continuation is
// published, redefining the function must make it unreachable — the new
// body's results, never the old code's.
func TestTieredRedefinitionNeverResurrects(t *testing.T) {
	e := newTiered(t, 8)
	if err := e.Define(hotForSrc); err != nil {
		t.Fatal(err)
	}
	callScalar(t, e, "hotfor", 500)
	e.Drain()

	redefined := `
function s = hotfor(n)
  s = 1;
  for i = 1:n
    s = s + i;
  end
end`
	if err := e.Define(redefined); err != nil {
		t.Fatal(err)
	}
	want := mustInterp(t, e, "hotfor", 500)
	got := callScalar(t, e, "hotfor", 500)
	e.Drain()
	payloadEqual(t, "redefined", []*mat.Value{want}, []*mat.Value{got})
}

// TestTieredMatchesInterpreter is the corpus-wide correctness gate: the
// differential programs run tiered — through warm-up, promotion, and
// any OSR transfers — must match the plain interpreter to the same
// standard the repo holds every compiled tier to (valuesClose; the
// optimizing backend's fused/selected kernels such as dgemv are allowed
// ULP-level divergence from the interpreter's per-operator order).
// Strict payload bit-identity through a mid-run OSR transfer is pinned
// separately by the hot-loop tests above, and bit-identity across
// thread counts by TestTieredThreadCountBitIdentity below.
func TestTieredMatchesInterpreter(t *testing.T) {
	for _, p := range diffPrograms {
		ref := New(Options{Tier: TierInterp, Seed: 12345})
		if err := ref.Define(p.src); err != nil {
			ref.Close()
			t.Fatalf("[%s] define: %v", p.name, err)
		}
		args := make([]*mat.Value, len(p.args))
		for i, a := range p.args {
			args[i] = mat.Scalar(a)
		}
		want, err := ref.Call("f", args, 1)
		ref.Close()
		if err != nil {
			t.Fatalf("[%s] interp: %v", p.name, err)
		}

		e := New(Options{Tier: TierJIT, Tiered: true, TierThreshold: 2, Seed: 12345})
		if err := e.Define(p.src); err != nil {
			e.Close()
			t.Fatalf("[%s] define tiered: %v", p.name, err)
		}
		// Enough calls to cross promotion (and, on loopy programs, OSR)
		// thresholds, draining in between so every execution mode runs:
		// cold interpret, mid-run transfer, compiled steady state.
		for rep := 0; rep < 6; rep++ {
			// The RNG is engine-global: re-seed so every rep replays the
			// same stream the reference consumed.
			e.Context().RNG.Seed(12345)
			got, err := e.Call("f", args, 1)
			if err != nil {
				e.Close()
				t.Fatalf("[%s] tiered rep %d: %v", p.name, rep, err)
			}
			if len(got) != 1 || !valuesClose(want[0], got[0]) {
				e.Close()
				t.Fatalf("[%s] tiered rep %d diverged from interpreter", p.name, rep)
			}
			if rep == 1 {
				e.Drain()
			}
		}
		e.Drain()
		e.Close()
	}
}

// TestTieredKillAtOSRSafepoint is the deadline-kill × background-
// recompile interaction: a request interrupted while interpreting a hot
// loop (i.e. at the very safepoints that offer OSR) must abort promptly,
// leak no pending tier-up past Drain, publish no half-built entry, and
// leave the engine able to tier up normally afterwards.
func TestTieredKillAtOSRSafepoint(t *testing.T) {
	e := newTiered(t, 8)
	if err := e.Define(hotWhileSrc); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		// Effectively unbounded: only the interrupt ends it.
		_, err := e.Call("hotwhile", []*mat.Value{mat.Scalar(1e15)}, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	e.Interrupt()
	select {
	case err := <-done:
		if !errors.Is(err, cancel.ErrInterrupted) {
			t.Fatalf("killed call returned %v, want ErrInterrupted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("killed call did not return")
	}
	e.ResetInterrupt()

	// Any tier-up or OSR compile the killed request enqueued must be
	// fully resolved by Drain — published whole or dropped, never
	// pending, never partial.
	e.Drain()
	for _, en := range e.Repo().Entries("hotwhile") {
		if en.Quality != repo.QualityInterp && en.Code == nil {
			t.Fatalf("half-built entry published: quality %v with nil code", en.Quality)
		}
	}
	if qs := e.QueueStats(); qs.Submitted != qs.Completed+qs.Deduped {
		t.Fatalf("leaked pending compile after Drain: %+v", qs)
	}

	// The engine must recover: the same workload tiers up and agrees
	// with the interpreter.
	want := mustInterp(t, e, "hotwhile", 400)
	got := osrOnce(t, e, "hotwhile", 400)
	payloadEqual(t, "post-kill OSR", []*mat.Value{want}, []*mat.Value{got})
}

// TestTieredThreadCountBitIdentity runs the parallel-kernel workload
// tiered at several thread counts against the serial interpreter
// reference: tiering must not perturb the parallel kernels' bit-
// identity contract.
func TestTieredThreadCountBitIdentity(t *testing.T) {
	defer parallel.SetDefaultThreads(0)
	run := func(threads int) []*mat.Value {
		t.Helper()
		e := New(Options{Tier: TierJIT, Tiered: true, TierThreshold: 2, Seed: 7, Threads: threads})
		defer e.Close()
		if err := e.Define(parWorkSrc); err != nil {
			t.Fatal(err)
		}
		var outs []*mat.Value
		for rep := 0; rep < 4; rep++ {
			e.Context().RNG.Seed(7)
			var err error
			outs, err = e.Call("parwork", []*mat.Value{mat.Scalar(72), mat.Scalar(50000)}, 3)
			if err != nil {
				t.Fatal(err)
			}
			e.Drain()
		}
		return outs
	}
	ref := run(1)
	for _, threads := range []int{2, 8} {
		payloadEqual(t, "tiered parwork", ref, run(threads))
	}
}

func mustInterp(t *testing.T, e *Engine, name string, arg float64) *mat.Value {
	t.Helper()
	outs, err := e.Interpret(name, []*mat.Value{mat.Scalar(arg)}, 1)
	if err != nil {
		t.Fatalf("interpret %s(%v): %v", name, arg, err)
	}
	return outs[0]
}
