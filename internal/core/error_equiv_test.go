package core

import (
	"testing"

	"repro/internal/mat"
)

// Programs that fail at runtime must fail under every execution tier —
// the paper's safety guarantee ("a wrong guess ... never affects
// program correctness") includes error behaviour.
func TestRuntimeErrorsInAllTiers(t *testing.T) {
	cases := []struct {
		name string
		src  string
		args []float64
	}{
		{name: "oob_read", src: `
function y = f(n)
  v = zeros(1, 10);
  y = v(n);
end`, args: []float64{11}},
		{name: "oob_zero", src: `
function y = f(n)
  v = zeros(1, 10);
  y = v(n);
end`, args: []float64{0}},
		{name: "fractional_subscript", src: `
function y = f(n)
  v = zeros(1, 10);
  y = v(n + 0.5);
end`, args: []float64{1}},
		{name: "dim_mismatch_add", src: `
function y = f(n)
  a = zeros(2, n);
  b = zeros(3, n);
  c = a + b;
  y = c(1,1);
end`, args: []float64{4}},
		{name: "inner_dim_mismatch", src: `
function y = f(n)
  a = zeros(2, 3);
  b = zeros(2, n);
  c = a * b;
  y = c(1,1);
end`, args: []float64{2}},
		{name: "error_builtin", src: `
function y = f(n)
  if n > 0
    error('bad n');
  end
  y = n;
end`, args: []float64{5}},
		{name: "matrix_linear_growth", src: `
function y = f(n)
  A = zeros(2, 2);
  A(n) = 1;
  y = A(1);
end`, args: []float64{9}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, tier := range []Tier{TierInterp, TierMCC, TierFalcon, TierJIT, TierSpec} {
				e := New(Options{Tier: tier, Seed: 5})
				if err := e.Define(c.src); err != nil {
					t.Fatalf("[%s] define: %v", tier, err)
				}
				e.Precompile()
				args := make([]*mat.Value, len(c.args))
				for i, a := range c.args {
					args[i] = mat.Scalar(a)
				}
				if _, err := e.Call("f", args, 1); err == nil {
					t.Errorf("[%s] expected a runtime error", tier)
				}
			}
		})
	}
}

// Programs that are fine at the boundary must succeed everywhere (the
// mirror image of the above: checks are removed only when provably
// safe, never beyond).
func TestBoundaryAccessesSucceed(t *testing.T) {
	src := `
function y = f(n)
  v = zeros(1, 10);
  for i = 1:10
    v(i) = i;
  end
  y = v(1) + v(10) + v(n);
end`
	for _, tier := range []Tier{TierInterp, TierJIT, TierFalcon, TierSpec} {
		e := New(Options{Tier: tier, Seed: 5})
		if err := e.Define(src); err != nil {
			t.Fatal(err)
		}
		e.Precompile()
		outs, err := e.Call("f", []*mat.Value{mat.Scalar(10)}, 1)
		if err != nil {
			t.Fatalf("[%s] %v", tier, err)
		}
		wantScalar(t, outs[0], 1+10+10)
	}
}

// end-arithmetic inside ranges must compile and agree with the
// interpreter (v(2:end), v(end-2:end), A(1, 2:end)).
func TestEndInRangesAllTiers(t *testing.T) {
	src := `
function s = f()
  v = 1:10;
  a = v(2:end);
  b = v(end-2:end);
  A = [1 2 3; 4 5 6];
  c = A(1, 2:end);
  d = A(2, end);
  s = sum(a)*1000 + sum(b)*100 + sum(c)*10 + d;
end`
	want := float64((54)*1000 + (27)*100 + 5*10 + 6)
	for _, tier := range []Tier{TierInterp, TierMCC, TierJIT, TierFalcon, TierSpec} {
		e := New(Options{Tier: tier, Seed: 5})
		if err := e.Define(src); err != nil {
			t.Fatal(err)
		}
		e.Precompile()
		outs, err := e.Call("f", nil, 1)
		if err != nil {
			t.Fatalf("[%s] %v", tier, err)
		}
		wantScalar(t, outs[0], want)
	}
}
