package core

import (
	"repro/internal/compilequeue"
	"repro/internal/persist"
	"repro/internal/profile"
	"repro/internal/repo"
	"repro/internal/telemetry"
)

// RegisterTelemetry installs the library's metric collectors on a
// registry: repository, compile queue, tiering profile, and persistence
// counters, all adapted at scrape time from the same atomic Stats
// structs the JSON /metrics surface reads — recording stays exactly as
// cheap as before. Safe to call with a nil registry.
func (l *Library) RegisterTelemetry(reg *telemetry.Registry) {
	reg.RegisterFunc("library", l.collectTelemetry)
}

func (l *Library) collectTelemetry(emit func(telemetry.Sample)) {
	EmitLibrarySamples(emit, l.repo.Stats(), l.QueueStats(), l.ProfileStats(), l.PersistMetrics(), l.journal)
}

// EmitLibrarySamples renders one library's worth of stats as telemetry
// samples under the canonical majic_* names. The daemon reuses it for
// its isolated-mode aggregate (where stats are summed across private
// session libraries before emission), so both modes expose the same
// metric families.
func EmitLibrarySamples(emit func(telemetry.Sample), rs repo.Stats, qs compilequeue.Stats, ps profile.Stats, pm persist.Metrics, journal *telemetry.Journal) {
	counter := telemetry.EmitCounter
	gauge := telemetry.EmitGauge
	counter(emit, "majic_repo_lookups_total", "Repository locator lookups.", float64(rs.Lookups))
	counter(emit, "majic_repo_hits_total", "Lookups served by a safe compiled entry.", float64(rs.Hits))
	counter(emit, "majic_repo_misses_total", "Lookups that found no safe entry.", float64(rs.Misses))
	counter(emit, "majic_repo_spec_hits_total", "Hits on speculatively compiled entries.", float64(rs.SpecHits))
	counter(emit, "majic_repo_inserts_total", "Compiled entries published this lifetime.", float64(rs.Inserts))
	counter(emit, "majic_repo_invalidations_total", "Function redefinitions that dropped entries.", float64(rs.Invalidation))
	counter(emit, "majic_repo_stale_drops_total", "Async publishes dropped by a generation mismatch.", float64(rs.StaleDrops))
	counter(emit, "majic_repo_evictions_total", "Entries evicted by the per-function cap.", float64(rs.Evictions))
	counter(emit, "majic_repo_replaces_total", "Upgrade swaps (tier-ups and hot recompiles).", float64(rs.Replaces))
	counter(emit, "majic_repo_loaded_total", "Entries restored from a warm-start snapshot.", float64(rs.Loaded))
	counter(emit, "majic_repo_replicated_total", "Entries applied from cluster peers (never compiled here).", float64(rs.Replicated))
	counter(emit, "majic_repo_replicated_drops_total", "Replicated applies dropped by the duplicate or generation guard.", float64(rs.ReplicatedDrops))
	gauge(emit, "majic_repo_functions", "Functions with at least one live compiled entry.", float64(rs.Functions))
	gauge(emit, "majic_repo_entries", "Live compiled entries across all functions.", float64(rs.Entries))

	counter(emit, "majic_queue_submitted_total", "Unique compile jobs accepted by the pool.", float64(qs.Submitted))
	counter(emit, "majic_queue_deduped_total", "Requests coalesced onto an in-flight job.", float64(qs.Deduped))
	counter(emit, "majic_queue_completed_total", "Compile jobs finished.", float64(qs.Completed))
	counter(emit, "majic_queue_errors_total", "Compile jobs that returned an error.", float64(qs.Errors))
	counter(emit, "majic_queue_inline_total", "Jobs run inline after pool shutdown.", float64(qs.Inline))

	gauge(emit, "majic_profile_functions", "Functions with a tiering profile.", float64(ps.Functions))
	gauge(emit, "majic_profile_signatures", "Widened signatures being profiled.", float64(ps.Signatures))
	counter(emit, "majic_profile_entries_total", "Function-entry safepoints observed.", float64(ps.Entries))
	counter(emit, "majic_profile_back_edges_total", "Loop back-edge safepoints observed.", float64(ps.BackEdges))
	counter(emit, "majic_tier_promotions_total", "Hot signatures promoted to compiled code.", float64(ps.Promotions))
	counter(emit, "majic_osr_requests_total", "OSR continuation compiles requested.", float64(ps.OSRRequests))
	counter(emit, "majic_osr_compiles_total", "OSR continuations compiled and published.", float64(ps.OSRCompiles))
	counter(emit, "majic_osr_transfers_total", "Mid-loop transfers into compiled code.", float64(ps.OSRTransfers))
	deoptHelp := "OSR transfers rejected by a guard, by cause."
	telemetry.EmitCounterL(emit, "majic_osr_deopts_total", deoptHelp, float64(ps.OSRDeoptsGeneration),
		telemetry.Label{Key: "cause", Value: telemetry.CauseGeneration})
	telemetry.EmitCounterL(emit, "majic_osr_deopts_total", deoptHelp, float64(ps.OSRDeoptsBinding),
		telemetry.Label{Key: "cause", Value: telemetry.CauseBindingGuard})
	telemetry.EmitCounterL(emit, "majic_osr_deopts_total", deoptHelp, float64(ps.OSRDeoptsRange),
		telemetry.Label{Key: "cause", Value: telemetry.CauseRangeGuard})
	counter(emit, "majic_osr_budget_exhausted_total", "OSR sites abandoned after the deopt budget.", float64(ps.DeoptBudgetExhausted))

	enabled := 0.0
	if pm.Enabled {
		enabled = 1
	}
	gauge(emit, "majic_persist_enabled", "1 when write-behind persistence is attached.", enabled)
	if pm.Enabled {
		counter(emit, "majic_persist_notifies_total", "Repository mutations notified to the snapshotter.", float64(pm.Writer.Notifies))
		counter(emit, "majic_persist_saves_total", "Snapshots written.", float64(pm.Writer.Saves))
		counter(emit, "majic_persist_save_errors_total", "Snapshot writes that failed.", float64(pm.Writer.SaveErrors))
		gauge(emit, "majic_persist_snapshot_bytes", "Size of the last written snapshot.", float64(pm.Writer.SnapshotBytes))
		gauge(emit, "majic_persist_snapshot_entries", "Compiled entries in the last written snapshot.", float64(pm.Writer.SnapshotEntries))
		gauge(emit, "majic_persist_loaded_entries", "Entries restored by the warm start.", float64(pm.Load.LoadedEntries))
		gauge(emit, "majic_persist_rejected_entries", "Snapshot entries dropped by validation.", float64(pm.Load.RejectedEntries))
	}

	if journal != nil {
		counter(emit, "majic_journal_events_total", "Tiering events ever recorded.", float64(journal.Total()))
		gauge(emit, "majic_journal_retained", "Tiering events currently retained.", float64(journal.Len()))
	}
}
