package core

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/repo"
)

// TestHotRecompilation exercises the repository's upgrade path: after
// RecompileThreshold calls, a JIT entry is replaced by an optimized
// recompilation of the same signature.
func TestHotRecompilation(t *testing.T) {
	e := New(Options{Tier: TierJIT, RecompileThreshold: 5, Seed: 3})
	err := e.Define(`
function s = work(n)
  s = 0;
  for i = 1:n
    s = s + i*i - i;
  end
end`)
	if err != nil {
		t.Fatal(err)
	}
	arg := []*mat.Value{mat.Scalar(500)}
	want := 0.0
	for i := 1; i <= 500; i++ {
		want += float64(i*i - i)
	}
	for call := 1; call <= 10; call++ {
		outs, err := e.Call("work", arg, 1)
		if err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
		if got := outs[0].MustScalar(); got != want {
			t.Fatalf("call %d: %g, want %g", call, got, want)
		}
	}
	entries := e.Repo().Entries("work")
	if len(entries) == 0 {
		t.Fatal("no entries")
	}
	upgraded := false
	for _, en := range entries {
		if en.Quality == repo.QualityOpt {
			upgraded = true
		}
	}
	if !upgraded {
		t.Errorf("hot entry was never upgraded: %+v", entries)
	}
}

// TestRecompileDisabledByDefault keeps the harness's JIT measurements
// pure: without the option, entries stay at JIT quality forever.
func TestRecompileDisabledByDefault(t *testing.T) {
	e := New(Options{Tier: TierJIT, Seed: 3})
	if err := e.Define("function y = f(x)\n  y = x + 1;\nend"); err != nil {
		t.Fatal(err)
	}
	arg := []*mat.Value{mat.Scalar(1)}
	for i := 0; i < 30; i++ {
		if _, err := e.Call("f", arg, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, en := range e.Repo().Entries("f") {
		if en.Quality != repo.QualityJIT {
			t.Errorf("entry upgraded without opt-in: %v", en.Quality)
		}
	}
}
