package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mat"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	return New(Options{Tier: TierInterp})
}

func evalVar(t *testing.T, src, name string) *mat.Value {
	t.Helper()
	e := newTestEngine(t)
	if err := e.EvalString(src); err != nil {
		t.Fatalf("EvalString(%q): %v", src, err)
	}
	v, ok := e.Workspace(name)
	if !ok {
		t.Fatalf("variable %q not set after %q", name, src)
	}
	return v
}

func wantScalar(t *testing.T, v *mat.Value, want float64) {
	t.Helper()
	got, err := v.Scalar()
	if err != nil {
		t.Fatalf("want scalar %g, got %dx%d matrix", want, v.Rows(), v.Cols())
	}
	if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
		t.Fatalf("got %g, want %g", got, want)
	}
}

func TestScalarArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"x = 1 + 2;", 3},
		{"x = 2 * 3 + 4;", 10},
		{"x = 2 + 3 * 4;", 14},
		{"x = (2 + 3) * 4;", 20},
		{"x = 2^3;", 8},
		{"x = -2^2;", -4},
		{"x = 2^-2;", 0.25},
		{"x = 10 / 4;", 2.5},
		{"x = 7 - 3 - 2;", 2},
		{"x = 2^3^2;", 64}, // MATLAB: left-assoc => (2^3)^2
		{"x = mod(7, 3);", 1},
		{"x = mod(-1, 3);", 2},
		{"x = rem(-1, 3);", -1},
		{"x = abs(-5);", 5},
		{"x = floor(2.7);", 2},
		{"x = 1e3;", 1000},
		{"x = .5 * 4;", 2},
		{"x = 1.5e-2;", 0.015},
	}
	for _, c := range cases {
		wantScalar(t, evalVar(t, c.src, "x"), c.want)
	}
}

func TestRelationalAndLogical(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"x = 1 < 2;", 1},
		{"x = 2 <= 1;", 0},
		{"x = 3 == 3;", 1},
		{"x = 3 ~= 3;", 0},
		{"x = 1 & 0;", 0},
		{"x = 1 | 0;", 1},
		{"x = ~0;", 1},
		{"x = 1 && 0;", 0},
		{"x = 0 || 1;", 1},
		{"x = 1 < 2 & 2 < 3;", 1},
	}
	for _, c := range cases {
		wantScalar(t, evalVar(t, c.src, "x"), c.want)
	}
}

func TestMatrixLiteralsAndIndexing(t *testing.T) {
	v := evalVar(t, "A = [1 2 3; 4 5 6];", "A")
	if v.Rows() != 2 || v.Cols() != 3 {
		t.Fatalf("A is %dx%d, want 2x3", v.Rows(), v.Cols())
	}
	if v.At(1, 2) != 6 {
		t.Fatalf("A(2,3) = %g, want 6", v.At(1, 2))
	}

	wantScalar(t, evalVar(t, "A = [1 2 3; 4 5 6]; x = A(2,3);", "x"), 6)
	wantScalar(t, evalVar(t, "A = [1 2 3; 4 5 6]; x = A(4);", "x"), 5) // column-major linear
	wantScalar(t, evalVar(t, "A = [1 2 3]; x = A(end);", "x"), 3)
	wantScalar(t, evalVar(t, "A = [1 2 3; 4 5 6]; x = A(end,end);", "x"), 6)
	wantScalar(t, evalVar(t, "A = [1 2 3; 4 5 6]; B = A(:,2); x = B(1) + B(2);", "x"), 7)
	wantScalar(t, evalVar(t, "A = [1 2 3; 4 5 6]; B = A(1,:); x = B(3);", "x"), 3)
	wantScalar(t, evalVar(t, "v = 1:5; x = sum(v(2:4));", "x"), 9)

	// space-sensitivity in literals
	v = evalVar(t, "A = [1 -2];", "A")
	if v.Numel() != 2 {
		t.Fatalf("[1 -2] has %d elements, want 2", v.Numel())
	}
	v = evalVar(t, "A = [1 - 2];", "A")
	if v.Numel() != 1 || v.Re()[0] != -1 {
		t.Fatalf("[1 - 2] = %v, want scalar -1", v)
	}
}

func TestIndexedAssignmentAndGrowth(t *testing.T) {
	wantScalar(t, evalVar(t, "A = zeros(2,2); A(1,2) = 7; x = A(1,2);", "x"), 7)
	// growth by 2-D store
	v := evalVar(t, "A = zeros(2,2); A(3,4) = 1;", "A")
	if v.Rows() != 3 || v.Cols() != 4 {
		t.Fatalf("A grew to %dx%d, want 3x4", v.Rows(), v.Cols())
	}
	// growth by linear store on a vector
	v = evalVar(t, "v = [1 2]; v(5) = 9;", "v")
	if v.Rows() != 1 || v.Cols() != 5 || v.Re()[4] != 9 || v.Re()[2] != 0 {
		t.Fatalf("v = %v, want 1x5 [1 2 0 0 9]", v)
	}
	// undefined variable springs into existence
	v = evalVar(t, "clear; B(2,2) = 5;", "B")
	if v.Rows() != 2 || v.Cols() != 2 || v.At(1, 1) != 5 {
		t.Fatalf("B = %v, want 2x2 with B(2,2)=5", v)
	}
}

func TestCopyOnWriteAliasing(t *testing.T) {
	// B = A must behave as a value copy even though we alias internally.
	src := "A = [1 2 3]; B = A; A(1) = 99; x = B(1); y = A(1);"
	e := newTestEngine(t)
	if err := e.EvalString(src); err != nil {
		t.Fatal(err)
	}
	x, _ := e.Workspace("x")
	y, _ := e.Workspace("y")
	wantScalar(t, x, 1)
	wantScalar(t, y, 99)
}

func TestControlFlow(t *testing.T) {
	wantScalar(t, evalVar(t, `
s = 0;
for i = 1:10
  s = s + i;
end
`, "s"), 55)
	wantScalar(t, evalVar(t, `
s = 0;
k = 0;
while k < 5
  k = k + 1;
  s = s + k*k;
end
`, "s"), 55)
	wantScalar(t, evalVar(t, `
x = 3;
if x > 2
  y = 1;
elseif x > 1
  y = 2;
else
  y = 3;
end
`, "y"), 1)
	wantScalar(t, evalVar(t, `
s = 0;
for i = 1:10
  if i == 4
    break;
  end
  s = s + i;
end
`, "s"), 6)
	wantScalar(t, evalVar(t, `
s = 0;
for i = 1:5
  if mod(i,2) == 0
    continue;
  end
  s = s + i;
end
`, "s"), 9)
	wantScalar(t, evalVar(t, `
for p = 1:2:9
  q = p;
end
`, "q"), 9)
}

func TestFunctions(t *testing.T) {
	e := newTestEngine(t)
	err := e.Define(`
function y = sq(x)
  y = x * x;
end

function [a, b] = divmod(x, y)
  a = floor(x / y);
  b = x - a*y;
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EvalString("r = sq(7);"); err != nil {
		t.Fatal(err)
	}
	v, _ := e.Workspace("r")
	wantScalar(t, v, 49)

	if err := e.EvalString("[q, m] = divmod(17, 5);"); err != nil {
		t.Fatal(err)
	}
	q, _ := e.Workspace("q")
	m, _ := e.Workspace("m")
	wantScalar(t, q, 3)
	wantScalar(t, m, 2)
}

func TestRecursion(t *testing.T) {
	e := newTestEngine(t)
	err := e.Define(`
function f = fib(n)
  if n < 2
    f = n;
  else
    f = fib(n-1) + fib(n-2);
  end
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EvalString("x = fib(10);"); err != nil {
		t.Fatal(err)
	}
	v, _ := e.Workspace("x")
	wantScalar(t, v, 55)
}

func TestComplexArithmetic(t *testing.T) {
	v := evalVar(t, "z = 3 + 4i; x = abs(z);", "x")
	wantScalar(t, v, 5)
	v = evalVar(t, "z = i * i; x = real(z);", "x")
	wantScalar(t, v, -1)
	v = evalVar(t, "z = (1+2i) * (3-1i); x = imag(z);", "x")
	wantScalar(t, v, 5)
	v = evalVar(t, "x = real(exp(i*pi));", "x")
	wantScalar(t, v, -1)
	v = evalVar(t, "z = sqrt(-4); x = imag(z);", "x")
	wantScalar(t, v, 2)
}

func TestStringsAndDisplay(t *testing.T) {
	var b strings.Builder
	e := New(Options{Tier: TierInterp, Out: &b})
	if err := e.EvalString(`fprintf('n=%d v=%.2f %s\n', 42, 3.14159, 'ok');`); err != nil {
		t.Fatal(err)
	}
	want := "n=42 v=3.14 ok\n"
	if b.String() != want {
		t.Fatalf("fprintf output %q, want %q", b.String(), want)
	}
}

func TestBuiltinsBasics(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"x = sum([1 2 3 4]);", 10},
		{"x = prod([1 2 3 4]);", 24},
		{"x = max([3 1 4 1 5]);", 5},
		{"x = min([3 1 4 1 5]);", 1},
		{"x = length(zeros(3, 7));", 7},
		{"x = numel(ones(3, 7));", 21},
		{"x = size(zeros(3, 7), 1);", 3},
		{"x = size(zeros(3, 7), 2);", 7},
		{"x = norm([3 4]);", 5},
		{"x = dot([1 2 3], [4 5 6]);", 32},
		{"A = eye(3); x = sum(A(:));", 3},
		{"x = mean([2 4 6]);", 4},
		{"A = [4 2; 1 3]; v = A*[1;1]; x = v(1);", 6},
		{"A = [4 2; 1 3]; x = det(A);", 10},
		{"A = [4 2; 1 3]; b = [6; 4]; y = A\\b; x = y(1);", 1},
		{"x = any([0 0 1]);", 1},
		{"x = all([1 0 1]);", 0},
		{"v = find([0 3 0 7]); x = v(2);", 4},
		{"v = linspace(0, 1, 5); x = v(2);", 0.25},
		{"[m, k] = max([3 9 2]); x = k;", 2},
	}
	for _, c := range cases {
		wantScalar(t, evalVar(t, c.src, "x"), c.want)
	}
}

func TestMultiReturnSize(t *testing.T) {
	e := newTestEngine(t)
	if err := e.EvalString("[r, c] = size(zeros(3, 7));"); err != nil {
		t.Fatal(err)
	}
	r, _ := e.Workspace("r")
	c, _ := e.Workspace("c")
	wantScalar(t, r, 3)
	wantScalar(t, c, 7)
}

func TestSwitch(t *testing.T) {
	wantScalar(t, evalVar(t, `
x = 2;
switch x
case 1
  y = 10;
case 2
  y = 20;
otherwise
  y = 30;
end
`, "y"), 20)
}

func TestGlobals(t *testing.T) {
	e := newTestEngine(t)
	err := e.Define(`
function bump()
  global counter
  counter = counter + 1;
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EvalString("global counter\ncounter = 10;\nbump();\nbump();\nx = counter;"); err != nil {
		t.Fatal(err)
	}
	v, _ := e.Workspace("x")
	wantScalar(t, v, 12)
}

func TestTranspose(t *testing.T) {
	wantScalar(t, evalVar(t, "A = [1 2; 3 4]; B = A'; x = B(1,2);", "x"), 3)
	wantScalar(t, evalVar(t, "z = (1+2i)'; x = imag(z);", "x"), -2)
	wantScalar(t, evalVar(t, "z = (1+2i).'; x = imag(z);", "x"), 2)
	// string vs transpose ambiguity
	wantScalar(t, evalVar(t, "x = length('abc');", "x"), 3)
	wantScalar(t, evalVar(t, "A = [1 2]; B = A'; x = B(2,1);", "x"), 2)
}

func TestRangeSemantics(t *testing.T) {
	wantScalar(t, evalVar(t, "v = 1:0; x = isempty(v);", "x"), 1)
	wantScalar(t, evalVar(t, "v = 5:-1:1; x = v(1) - v(5);", "x"), 4)
	wantScalar(t, evalVar(t, "v = 0:0.25:1; x = length(v);", "x"), 5)
	wantScalar(t, evalVar(t, "v = 1:3; x = v(end) + length(v);", "x"), 6)
}

func TestErrorsSurface(t *testing.T) {
	e := newTestEngine(t)
	for _, src := range []string{
		"x = undefined_thing_xyz;",
		"A = [1 2]; x = A(3);",
		"A = [1 2]; x = A(0);",
		"A = [1 2]; x = A(1.5);",
		"A = [1 2; 3 4]; B = [1 2 3]; C = A * B;",
		"A = [1 2]; B = [1 2 3]; C = A + B;",
		"error('boom %d', 3);",
	} {
		if err := e.EvalString(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}
