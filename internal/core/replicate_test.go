package core

import (
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/persist"
)

// donorRecords compiles src's function on a throwaway library and
// returns its replication records — the same bytes a peer would push.
func donorRecords(t *testing.T, src, fn string, arg float64) []persist.EntryRecord {
	t.Helper()
	lib := NewLibrary(LibraryOptions{})
	defer lib.Close()
	a := New(Options{Tier: TierJIT, Library: lib})
	if err := a.Define(src); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(fn, []*mat.Value{mat.Scalar(arg)}, 1); err != nil {
		t.Fatal(err)
	}
	recs := lib.ExportRecords("node-a", false)
	if len(recs) == 0 {
		t.Fatal("donor exported no records")
	}
	return recs
}

// TestApplyReplicatedWarmsColdNode is the fleet warm-up story end to
// end in-process: records exported from a node that compiled serve a
// cold node's first call as a repository hit — zero local compiles.
func TestApplyReplicatedWarmsColdNode(t *testing.T) {
	src := "function y = add2(x)\ny = x + 2;\n"
	recs := donorRecords(t, src, "add2", 1)

	lib := NewLibrary(LibraryOptions{})
	defer lib.Close()
	for i := range recs {
		if ok, why := lib.ApplyReplicated(&recs[i]); !ok {
			t.Fatalf("apply record %d: %s", i, why)
		}
	}
	st := lib.Repo().Stats()
	if st.Replicated != 1 || st.Inserts != 0 || st.Loaded != 0 {
		t.Fatalf("replica accounting after apply: %+v", st)
	}

	// The source arrived with the record: an engine on the cold node can
	// call without ever defining, and the call is a warm hit.
	b := New(Options{Tier: TierJIT, Library: lib})
	outs, err := b.Call("add2", []*mat.Value{mat.Scalar(1)}, 1)
	if err != nil || outs[0].Re()[0] != 3 {
		t.Fatalf("cold-node call: %v %v", outs, err)
	}
	st = lib.Repo().Stats()
	if st.Inserts != 0 || st.Hits < 1 {
		t.Fatalf("cold-node call should hit the replica, not compile: %+v", st)
	}
}

func TestApplyReplicatedGuards(t *testing.T) {
	src := "function y = add2(x)\ny = x + 2;\n"
	recs := donorRecords(t, src, "add2", 1)
	var withEntry *persist.EntryRecord
	for i := range recs {
		if recs[i].Entry != nil {
			withEntry = &recs[i]
		}
	}
	if withEntry == nil {
		t.Fatal("donor exported no compiled entry")
	}

	lib := NewLibrary(LibraryOptions{})
	defer lib.Close()

	bad := *withEntry
	bad.SrcHash++
	if ok, why := lib.ApplyReplicated(&bad); ok || why != "source-hash-mismatch" {
		t.Fatalf("tampered hash: ok=%v why=%s", ok, why)
	}

	if ok, why := lib.ApplyReplicated(withEntry); !ok || why != "applied" {
		t.Fatalf("first apply: ok=%v why=%s", ok, why)
	}
	// The same record again: source is current, entry already served.
	if ok, why := lib.ApplyReplicated(withEntry); ok || why != "duplicate" {
		t.Fatalf("second apply: ok=%v why=%s", ok, why)
	}
	if st := lib.Repo().Stats(); st.Replicated != 1 || st.ReplicatedDrops != 1 {
		t.Fatalf("guard accounting: %+v", st)
	}
}

// TestApplyReplicatedLastWriterWins pins the redefinition contract:
// an older remote definition never clobbers a newer local one, and a
// newer remote definition replaces source *and* invalidates local
// compiled code in the same motion.
func TestApplyReplicatedLastWriterWins(t *testing.T) {
	oldRecs := donorRecords(t, "function y = f(x)\ny = x + 1;\n", "f", 1)

	lib := NewLibrary(LibraryOptions{})
	defer lib.Close()
	b := New(Options{Tier: TierJIT, Library: lib})
	// Local definition registered *after* the donor's records were
	// stamped → local is the last writer.
	if err := b.Define("function y = f(x)\ny = x + 10;\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Call("f", []*mat.Value{mat.Scalar(1)}, 1); err != nil {
		t.Fatal(err)
	}
	for i := range oldRecs {
		if ok, why := lib.ApplyReplicated(&oldRecs[i]); ok || why != "stale-definition" {
			t.Fatalf("old record must lose LWW: ok=%v why=%s", ok, why)
		}
	}
	if outs, _ := b.Call("f", []*mat.Value{mat.Scalar(1)}, 1); outs[0].Re()[0] != 11 {
		t.Fatalf("local definition clobbered by stale record: got %g", outs[0].Re()[0])
	}

	// Now the reverse: a genuinely newer remote definition wins and the
	// old compiled entry cannot serve the new source.
	newRecs := donorRecords(t, "function y = f(x)\ny = x + 100;\n", "f", 1)
	applied := false
	for i := range newRecs {
		ok, why := lib.ApplyReplicated(&newRecs[i])
		if ok && (why == "applied" || why == "source") {
			applied = true
		}
	}
	if !applied {
		t.Fatal("newer remote definition was not adopted")
	}
	if outs, _ := b.Call("f", []*mat.Value{mat.Scalar(1)}, 1); outs[0].Re()[0] != 101 {
		t.Fatalf("remote redefinition not live: got %g", outs[0].Re()[0])
	}
}

// TestApplyReplicatedDefTimeTieBreaks: two nodes registering different
// sources with identical DefTime stamps (clock granularity, skewed
// clocks) must still converge — the higher source hash wins
// deterministically on every node, and the loser can never claw back.
func TestApplyReplicatedDefTimeTieBreaks(t *testing.T) {
	srcA := "function y = f(x)\ny = x + 1;\n"
	srcB := "function y = f(x)\ny = x + 2;\n"
	win, lose := srcA, srcB
	if persist.HashSource(srcB) > persist.HashSource(srcA) {
		win, lose = srcB, srcA
	}
	mkRec := func(src string) persist.EntryRecord {
		return persist.EntryRecord{
			Origin: "tie", Func: "f", Source: src,
			SrcHash: persist.HashSource(src), DefTime: 42,
		}
	}

	lib := NewLibrary(LibraryOptions{})
	defer lib.Close()
	loseRec, winRec := mkRec(lose), mkRec(win)
	if ok, why := lib.ApplyReplicated(&loseRec); !ok || why != "source" {
		t.Fatalf("seed loser: ok=%v why=%s", ok, why)
	}
	if ok, why := lib.ApplyReplicated(&winRec); !ok || why != "source" {
		t.Fatalf("tie-stamped winner must be adopted: ok=%v why=%s", ok, why)
	}
	if ok, why := lib.ApplyReplicated(&loseRec); ok || why != "stale-definition" {
		t.Fatalf("tie-stamped loser must stay refused: ok=%v why=%s", ok, why)
	}
	if d := lib.ExportDigest()["f"]; d.SrcHash != persist.HashSource(win) {
		t.Fatalf("live source is not the tie-break winner: %+v", d)
	}
}

// TestExportDigestConverges: after replication both nodes describe the
// same state — the anti-entropy fixed point.
func TestExportDigestConverges(t *testing.T) {
	src := "function y = add2(x)\ny = x + 2;\n"
	libA := NewLibrary(LibraryOptions{})
	defer libA.Close()
	a := New(Options{Tier: TierJIT, Library: libA})
	if err := a.Define(src); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call("add2", []*mat.Value{mat.Scalar(1)}, 1); err != nil {
		t.Fatal(err)
	}

	libB := NewLibrary(LibraryOptions{})
	defer libB.Close()
	recs := libA.ExportRecords("node-a", false)
	for i := range recs {
		if ok, why := libB.ApplyReplicated(&recs[i]); !ok {
			t.Fatalf("apply: %s", why)
		}
	}
	da, db := libA.ExportDigest()["add2"], libB.ExportDigest()["add2"]
	if da.SrcHash != db.SrcHash || da.DefTime != db.DefTime {
		t.Fatalf("digests diverge: %+v vs %+v", da, db)
	}
	if len(da.Entries) != len(db.Entries) || da.Entries[0] != db.Entries[0] {
		t.Fatalf("entry keys diverge: %v vs %v", da.Entries, db.Entries)
	}
	// Echo suppression: B must not offer the replica back on the push
	// path, but must offer it for anti-entropy repair.
	for _, rec := range libB.ExportRecords("node-b", false) {
		if rec.Entry != nil {
			t.Fatalf("push-path export echoes a replicated entry: %+v", rec)
		}
	}
	repaired := false
	for _, rec := range libB.ExportRecords("node-b", true) {
		if rec.Entry != nil {
			repaired = true
		}
	}
	if !repaired {
		t.Fatal("anti-entropy export must include replicated entries")
	}
}

// TestApplyReplicatedVsCompileRace races a peer apply against a live
// engine compiling the same (function, signature) under -race: the
// repository must end with exactly one entry for the exact signature
// and keep answering correctly, in either interleaving.
func TestApplyReplicatedVsCompileRace(t *testing.T) {
	src := "function y = add2(x)\ny = x + 2;\n"
	recs := donorRecords(t, src, "add2", 1)
	var rec *persist.EntryRecord
	for i := range recs {
		if recs[i].Entry != nil {
			rec = &recs[i]
		}
	}
	if rec == nil {
		t.Fatal("donor exported no compiled entry")
	}
	key := rec.Entry.Sig.Key()

	for i := 0; i < 50; i++ {
		lib := NewLibrary(LibraryOptions{})
		b := New(Options{Tier: TierJIT, Library: lib})
		if err := b.Define(src); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if outs, err := b.Call("add2", []*mat.Value{mat.Scalar(1)}, 1); err != nil || outs[0].Re()[0] != 3 {
				t.Errorf("round %d: racing call: %v %v", i, outs, err)
			}
		}()
		go func() {
			defer wg.Done()
			lib.ApplyReplicated(rec)
		}()
		wg.Wait()
		n := 0
		for _, e := range lib.Repo().Entries("add2") {
			if e.Sig.Key() == key {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("round %d: %d entries for one exact signature, want 1", i, n)
		}
		if outs, err := b.Call("add2", []*mat.Value{mat.Scalar(1)}, 1); err != nil || outs[0].Re()[0] != 3 {
			t.Fatalf("round %d: post-race call: %v %v", i, outs, err)
		}
		lib.Close()
	}
}
