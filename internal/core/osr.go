package core

// On-stack replacement: the engine side of the tiering pipeline's
// mid-loop transfer. A hot interpreter loop (detected by the back-edge
// counters in internal/interp) asks the engine for a compiled
// continuation; the engine synthesizes one — a function whose body is
// the remainder of the activation from the loop safepoint — compiles it
// in the background at QualityOpt, and on a later back-edge
// materializes the interpreter frame into VM registers and resumes in
// compiled code. Every transfer is guarded: the repository generation
// must not have moved (redefinition deopts), every compiled-in live
// variable must still be bound, and the live values must satisfy the
// compiled signature (a range violation deopts). A deopt simply keeps
// interpreting — never a wrong answer.
//
// Frame mapping. The continuation's formals are the activation's live
// variable names in sorted order, so "materializing the frame" is
// nothing more than an argument list built by environment lookup;
// vm.Run's ordinary parameter binding then scatters the values into
// F/I/C/V registers per the register allocator's decisions.
//
// Counted loops re-derive the loop variable instead of resuming a
// float range mid-stream: the continuation
//
//	for __osr_iv = __osr_iv0 : __osr_n
//	    v = __osr_lo + __osr_iv .* __osr_step;
//	    <original body>
//	end
//	<rest of the function>
//
// computes v = lo + k*step with an exact integer induction variable —
// the same expression, in the same evaluation order, as both the
// interpreter's range fast path and the code generator's forRange
// lowering, so a run that transfers mid-loop is bit-identical to one
// that never does. (Resuming a synthesized range lo+k*step : step : hi
// would not be: (lo+k*step)+j*step differs from lo+(k+j)*step in
// floating point.)

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/mat"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/types"
	"repro/internal/vm"
)

// Synthetic parameter names for counted-loop continuations. User code
// whose frame contains names with this prefix never transfers.
const (
	osrPrefix = "__osr_"
	osrIv     = "__osr_iv"
	osrIv0    = "__osr_iv0"
	osrN      = "__osr_n"
	osrLo     = "__osr_lo"
	osrStep   = "__osr_step"
)

// osrDeoptBudget bounds guarded-transfer failures per site: past it the
// site recompiles once against the current frame shape, and past that
// it stops trying.
const osrDeoptBudget = 16

var _ interp.OSRHost = (*Engine)(nil)

// TryOSR implements interp.OSRHost: the interpreter offers a hot
// activation at a loop back-edge safepoint.
func (e *Engine) TryOSR(fr *interp.Frame, loop ast.Stmt, env *interp.Env, fs *interp.ForOSR) ([]*mat.Value, interp.OSRResult, error) {
	sp, ok := fr.Prof.(*profile.SigProfile)
	if !ok || sp == nil {
		return nil, interp.OSRNever, nil
	}
	st := sp.OSRSite(loop)
	if st.Failed.Load() {
		return nil, interp.OSRNever, nil
	}
	if entry := st.Entry(); entry != nil {
		return e.repo.osrTransfer(fr, st, entry, env, fs)
	}
	if st.Requested.CompareAndSwap(false, true) {
		if !e.repo.requestOSR(fr, loop, st, env, fs) {
			st.Failed.Store(true)
			return nil, interp.OSRNever, nil
		}
	}
	return nil, interp.OSRNo, nil
}

// requestOSR checks a loop site's eligibility and enqueues the
// background continuation compile. It returns false when the site can
// never transfer (the caller latches Failed).
func (r *repoState) requestOSR(fr *interp.Frame, loop ast.Stmt, st *profile.OSRState, env *interp.Env, fs *interp.ForOSR) bool {
	e := r.e
	fn := fr.Fn
	// Eligibility: the loop must be a direct child of the function body
	// (the continuation is simply the body's tail), and the frame must
	// not touch the global workspace (compiled code has none).
	idx := -1
	for i, s := range fn.Body {
		if s == loop {
			idx = i
			break
		}
	}
	if idx < 0 || env.HasGlobals() {
		return false
	}
	live := env.LiveVars()
	for _, n := range live {
		if strings.HasPrefix(n, osrPrefix) {
			return false
		}
	}

	var synth *ast.Function
	params := append([]string(nil), live...)
	forLoop := fs != nil
	if forLoop {
		x, ok := loop.(*ast.For)
		if !ok {
			return false
		}
		synth = synthForContinuation(fn, x, idx, live)
		params = append(params, osrIv0, osrN, osrLo, osrStep)
	} else {
		if _, ok := loop.(*ast.While); !ok {
			return false
		}
		synth = synthWhileContinuation(fn, idx, live)
	}

	// The compile signature is the widened frame signature: ranges and
	// non-scalar shapes open, so one continuation serves every later
	// activation of the same kind tuple (transfer points vary, so exact
	// ranges would deopt constantly).
	vals := make([]*mat.Value, 0, len(live))
	for _, n := range live {
		v, ok := env.Lookup(n)
		if !ok {
			return false
		}
		vals = append(vals, v)
	}
	sig := widen(types.SignatureOf(vals))
	if forLoop {
		sig = append(sig, intScalarType(), intScalarType(), realScalarType(), realScalarType())
	}

	name := fn.Name
	gen := fr.Gen
	e.lib.profiles.CountOSRRequest()
	job := func() error {
		if r.r.Generation(name) != gen {
			// Redefined while queued: the continuation would belong to
			// a dead body.
			st.Failed.Store(true)
			return nil
		}
		t0 := time.Now()
		code, err := e.compile(synth, sig, pipelineOpts{optimize: true})
		e.tracer.Span(telemetry.CatOSR, name+" compile", e.id, t0, time.Since(t0))
		if err != nil {
			st.Failed.Store(true)
			return nil
		}
		st.Publish(&profile.OSREntry{Params: params, Sig: sig, Code: code, Gen: gen, ForLoop: forLoop})
		e.lib.profiles.CountOSRCompile()
		e.lib.journal.Record(telemetry.Event{
			Kind:   telemetry.EventOSRCompile,
			Func:   name,
			Sig:    sig.Key(),
			Cause:  "hot-loop",
			Gen:    gen,
			Detail: fmt.Sprintf("loop=%d live=%d", idx, len(live)),
		})
		return nil
	}
	if e.lib.queue != nil {
		key := fmt.Sprintf("osr\x00%s\x00%d\x00%d\x00%s", name, gen, idx, sig.Key())
		e.lib.queue.Do(key, job)
	} else {
		job()
	}
	return true
}

// osrTransfer attempts the guarded transfer into a published
// continuation. Guard failures deopt — the interpreter keeps running —
// and a deopt streak recompiles the site once before giving up on it.
func (r *repoState) osrTransfer(fr *interp.Frame, st *profile.OSRState, entry *profile.OSREntry, env *interp.Env, fs *interp.ForOSR) ([]*mat.Value, interp.OSRResult, error) {
	e := r.e
	deopt := func(cause profile.DeoptCause) ([]*mat.Value, interp.OSRResult, error) {
		e.lib.profiles.CountOSRDeopt(cause)
		e.lib.journal.Record(telemetry.Event{
			Kind:  telemetry.EventDeopt,
			Func:  fr.Fn.Name,
			Sig:   entry.Sig.Key(),
			Cause: cause.String(),
			Gen:   entry.Gen,
		})
		if st.Deopts.Add(1) >= osrDeoptBudget {
			if st.Recompiles.CompareAndSwap(0, 1) {
				// One fresh request against the current frame shape.
				st.Publish(nil)
				st.Deopts.Store(0)
				st.Requested.Store(false)
			} else {
				// The adaptive recompile was already spent and the site
				// still churns: give up on it for good.
				e.lib.profiles.CountDeoptBudgetExhausted()
				e.lib.journal.Record(telemetry.Event{
					Kind:   telemetry.EventDeopt,
					Func:   fr.Fn.Name,
					Sig:    entry.Sig.Key(),
					Cause:  telemetry.CauseBudgetExhausted,
					Gen:    entry.Gen,
					Detail: fmt.Sprintf("site abandoned after %d deopts", osrDeoptBudget),
				})
				st.Failed.Store(true)
				return nil, interp.OSRNever, nil
			}
		}
		return nil, interp.OSRNo, nil
	}

	// Generation guard: a redefinition (even mid-activation) deopts —
	// the continuation must never outlive its source.
	if entry.Gen != fr.Gen || r.r.Generation(fr.Fn.Name) != entry.Gen {
		return deopt(profile.DeoptGeneration)
	}
	if entry.ForLoop != (fs != nil) {
		return deopt(profile.DeoptBinding)
	}

	// Materialize the frame: live values in compiled formal order. A
	// compiled-in name that is no longer bound deopts — except the
	// counted loop's own variable, whose value at this safepoint is by
	// definition lo + k*step (the continuation rebinds it before the
	// body runs either way).
	nlive := len(entry.Params)
	if entry.ForLoop {
		nlive -= 4
	}
	vals := make([]*mat.Value, 0, len(entry.Params))
	for _, n := range entry.Params[:nlive] {
		v, ok := env.Lookup(n)
		if !ok {
			if entry.ForLoop && n == fs.Var {
				v = mat.Scalar(fs.Lo + float64(fs.K)*fs.Step)
			} else {
				return deopt(profile.DeoptBinding)
			}
		}
		vals = append(vals, v)
	}
	if entry.ForLoop {
		vals = append(vals,
			mat.IntScalar(float64(fs.K)), mat.IntScalar(float64(fs.N)),
			mat.Scalar(fs.Lo), mat.Scalar(fs.Step))
	}

	// Range/shape guard: every live value must satisfy the compiled
	// assumptions, or the transfer would compute with the wrong
	// specialization.
	if !entry.Sig.Safe(types.SignatureOf(vals)) {
		return deopt(profile.DeoptRange)
	}

	var t0 time.Time
	if e.tracer != nil {
		t0 = time.Now()
	}
	outs, err := vm.Run(entry.Code, e, vals)
	if e.tracer != nil {
		e.tracer.Span(telemetry.CatOSR, fr.Fn.Name+" transfer", e.id, t0, time.Since(t0))
	}
	if err != nil {
		// Not a deopt: the continuation may have performed side
		// effects, so re-interpreting could double them. The error is
		// the program's own (the same operation would fail interpreted
		// too — or it is a deadline kill, which must propagate). Rewrap
		// under the user's function name so the synthetic continuation
		// never leaks into error messages.
		if ve, ok := err.(*vm.Error); ok {
			ve.Fn = fr.Fn.Name
		}
		return nil, interp.OSRNo, err
	}
	e.lib.profiles.CountOSRTransfer()
	e.lib.journal.Record(telemetry.Event{
		Kind:  telemetry.EventOSRTransfer,
		Func:  fr.Fn.Name,
		Sig:   entry.Sig.Key(),
		Cause: "guards-passed",
		Gen:   entry.Gen,
	})
	return outs, interp.OSRDone, nil
}

// synthWhileContinuation builds the continuation for a while-loop
// safepoint: the safepoint sits at the loop header, so the continuation
// is simply the function body's tail starting at the loop — the
// compiled while re-evaluates the condition exactly where the
// interpreter stopped.
func synthWhileContinuation(fn *ast.Function, idx int, live []string) *ast.Function {
	return &ast.Function{
		P:    fn.P,
		Name: fn.Name + "__osr",
		Ins:  append([]string(nil), live...),
		Outs: fn.Outs,
		Body: fn.Body[idx:],
	}
}

// synthForContinuation builds the counted-loop continuation (see the
// package comment for the bit-identity argument).
func synthForContinuation(fn *ast.Function, x *ast.For, idx int, live []string) *ast.Function {
	p := x.P
	rebind := &ast.Assign{
		P:   p,
		LHS: []ast.Expr{&ast.Ident{P: p, Name: x.Var}},
		RHS: &ast.Binary{P: p, Op: ast.OpAdd,
			L: &ast.Ident{P: p, Name: osrLo},
			R: &ast.Binary{P: p, Op: ast.OpEMul,
				L: &ast.Ident{P: p, Name: osrIv},
				R: &ast.Ident{P: p, Name: osrStep}}},
	}
	loop := &ast.For{
		P:   p,
		Var: osrIv,
		Iter: &ast.Range{P: p,
			Lo:   &ast.Ident{P: p, Name: osrIv0},
			Step: &ast.NumberLit{P: p, Value: 1, IsInt: true},
			Hi:   &ast.Ident{P: p, Name: osrN}},
		Body: append([]ast.Stmt{ast.Stmt(rebind)}, x.Body...),
	}
	body := make([]ast.Stmt, 0, 1+len(fn.Body)-idx-1)
	body = append(body, loop)
	body = append(body, fn.Body[idx+1:]...)
	ins := append(append([]string(nil), live...), osrIv0, osrN, osrLo, osrStep)
	return &ast.Function{P: fn.P, Name: fn.Name + "__osr", Ins: ins, Outs: fn.Outs, Body: body}
}

func intScalarType() types.Type { return types.ScalarOf(types.IInt, types.RangeTop) }

func realScalarType() types.Type { return types.ScalarOf(types.IReal, types.RangeTop) }
