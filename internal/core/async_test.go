package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/repo"
)

const asyncWorkSrc = `
function s = work(n)
  s = 0;
  for i = 1:n
    s = s + i*i - i;
  end
end`

func asyncWorkWant(n int) float64 {
	want := 0.0
	for i := 1; i <= n; i++ {
		want += float64(i*i - i)
	}
	return want
}

// TestAsyncSingleFlight is the acceptance test for the single-flight
// layer: 8 goroutines missing on the same (function, widened signature)
// key against one shared engine repository must trigger exactly one
// compile — stats assert Inserts == 1.
func TestAsyncSingleFlight(t *testing.T) {
	e := New(Options{Tier: TierJIT, AsyncCompile: true, CompileWorkers: 4, Seed: 2})
	defer e.Close()
	if err := e.Define(asyncWorkSrc); err != nil {
		t.Fatal(err)
	}
	const callers = 8
	want := asyncWorkWant(300)
	var wg sync.WaitGroup
	errs := make([]error, callers)
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait() // line all callers up on the same cold miss
			outs, err := e.Call("work", []*mat.Value{mat.Scalar(300)}, 1)
			if err != nil {
				errs[i] = err
				return
			}
			if got := outs[0].MustScalar(); got != want {
				errs[i] = fmt.Errorf("caller %d: got %g, want %g", i, got, want)
			}
		}(i)
	}
	start.Done()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.Repo().Stats()
	if st.Inserts != 1 {
		t.Fatalf("8 concurrent misses produced %d repository inserts, want exactly 1 (stats %+v)", st.Inserts, st)
	}
	// Exactly one job ran. (How many callers coalesced on its ticket vs
	// arrived after the entry published is timing-dependent; the
	// deterministic coalescing behaviour is pinned by the gated job in
	// compilequeue's TestSingleFlight.)
	qs := e.QueueStats()
	if qs.Submitted != 1 {
		t.Fatalf("queue ran %d jobs, want 1 (stats %+v)", qs.Submitted, qs)
	}
}

// TestAsyncBlockingJITCorrectness: under the blocking policy the first
// caller waits for the job and runs compiled code — results must match
// the synchronous engine for many distinct signatures and concurrent
// callers (run with -race: this is the correctness gate).
func TestAsyncBlockingJITCorrectness(t *testing.T) {
	e := New(Options{Tier: TierJIT, AsyncCompile: true, Seed: 2})
	defer e.Close()
	if err := e.Define(asyncWorkSrc); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 1; n <= 8; n++ {
				outs, err := e.Call("work", []*mat.Value{mat.Scalar(float64(100 + n))}, 1)
				if err != nil {
					errCh <- err
					return
				}
				if got, want := outs[0].MustScalar(), asyncWorkWant(100+n); got != want {
					errCh <- fmt.Errorf("work(%d) = %g, want %g", 100+n, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Widening must still collapse same-kind signatures: far fewer
	// compiled versions than distinct constants.
	if n := len(e.Repo().Entries("work")); n > 2 {
		t.Errorf("widening failed under async: %d entries", n)
	}
}

// TestAsyncSpecNonBlocking: TierSpec's policy is interp-fallback, never
// blocking — a miss returns (interpreted) immediately and the compiled
// entry serves later calls once the background job lands.
func TestAsyncSpecNonBlocking(t *testing.T) {
	e := New(Options{Tier: TierSpec, AsyncCompile: true, Seed: 2})
	defer e.Close()
	if err := e.Define(asyncWorkSrc); err != nil {
		t.Fatal(err)
	}
	want := asyncWorkWant(50)
	// Cold call: no entry yet; must still return the right answer
	// (interpreted) without waiting for the compile job.
	outs, err := e.Call("work", []*mat.Value{mat.Scalar(50)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].MustScalar(); got != want {
		t.Fatalf("cold call: %g, want %g", got, want)
	}
	// The fallback must not have polluted the repository.
	for _, en := range e.Repo().Entries("work") {
		if en.Quality == repo.QualityInterp {
			t.Fatal("non-blocking fallback must not insert an interp entry")
		}
	}
	e.Drain()
	entries := e.Repo().Entries("work")
	if len(entries) != 1 || entries[0].Code == nil {
		t.Fatalf("background job did not publish a compiled entry: %v", entries)
	}
	pre := e.Repo().Stats().Hits
	outs, err = e.Call("work", []*mat.Value{mat.Scalar(50)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].MustScalar(); got != want {
		t.Fatalf("warm call: %g, want %g", got, want)
	}
	if e.Repo().Stats().Hits != pre+1 {
		t.Fatal("warm call should hit the compiled entry")
	}
}

// TestAsyncPrecompileBehindTheScenes: Precompile in async+spec mode
// enqueues speculative jobs and returns immediately; after Drain the
// speculative entries have landed and calls hit them.
func TestAsyncPrecompileBehindTheScenes(t *testing.T) {
	e := New(Options{Tier: TierSpec, AsyncCompile: true, Seed: 2})
	defer e.Close()
	if err := e.Define(asyncWorkSrc); err != nil {
		t.Fatal(err)
	}
	e.Precompile()
	e.Drain()
	entries := e.Repo().Entries("work")
	if len(entries) != 1 || !entries[0].Speculative {
		t.Fatalf("speculative entry missing after Drain: %v", entries)
	}
	outs, err := e.Call("work", []*mat.Value{mat.Scalar(40)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := outs[0].MustScalar(), asyncWorkWant(40); got != want {
		t.Fatalf("got %g, want %g", got, want)
	}
	if st := e.Repo().Stats(); st.SpecHits == 0 {
		t.Errorf("call did not hit the speculative entry: %+v", st)
	}
	// Precompile again: covered, no duplicate speculative job output.
	e.Precompile()
	e.Drain()
	if n := len(e.Repo().Entries("work")); n != 1 {
		t.Errorf("re-Precompile duplicated entries: %d", n)
	}
}

// TestAsyncInvalidationDropsStaleJob: a redefinition racing with
// in-flight compiles must never resurrect old code. Redefining
// concurrently with 8 callers is the stress half; the deterministic
// generation check lives in internal/repo.
func TestAsyncInvalidationDropsStaleJob(t *testing.T) {
	e := New(Options{Tier: TierJIT, AsyncCompile: true, Seed: 2})
	defer e.Close()
	if err := e.Define("function y = f(x)\n  y = x + 1;\nend"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				outs, err := e.Call("f", []*mat.Value{mat.Scalar(float64(i))}, 1)
				if err != nil {
					continue // transient: fn mid-redefinition
				}
				got := outs[0].MustScalar()
				if got != float64(i)+1 && got != float64(i)*100 {
					panic(fmt.Sprintf("f(%d) = %g: neither old nor new semantics", i, got))
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		src := "function y = f(x)\n  y = x + 1;\nend"
		if i%2 == 0 {
			src = "function y = f(x)\n  y = x * 100;\nend"
		}
		if err := e.Define(src); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// Final state: last definition was i=49 → "x + 1". Every surviving
	// entry must implement the new semantics.
	if err := e.Define("function y = f(x)\n  y = x * 100;\nend"); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	outs, err := e.Call("f", []*mat.Value{mat.Scalar(7)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].MustScalar(); got != 700 {
		t.Fatalf("stale code resurrected: f(7) = %g, want 700", got)
	}
	e.Drain()
	for _, en := range e.Repo().Entries("f") {
		if en.Code == nil {
			continue
		}
		// Execute each surviving compiled entry via a fresh call: the
		// repository must only hold current-generation code.
		outs, err := e.Call("f", []*mat.Value{mat.Scalar(3)}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := outs[0].MustScalar(); got != 300 {
			t.Fatalf("surviving entry has stale semantics: %g", got)
		}
	}
}

// TestAsyncUnsupportedFallsBackToInterp: uncompilable functions (nargin
// defeats the disambiguator) still work in async mode, and the cached
// interp decision is a single entry.
func TestAsyncUnsupportedFallsBackToInterp(t *testing.T) {
	e := New(Options{Tier: TierJIT, AsyncCompile: true, Seed: 2})
	defer e.Close()
	if err := e.Define("function y = h(a, b)\n  y = nargin * 10;\nend"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		outs, err := e.Call("h", []*mat.Value{mat.Scalar(1), mat.Scalar(2)}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := outs[0].MustScalar(); got != 20 {
			t.Fatalf("h = %g, want 20", got)
		}
	}
	e.Drain()
	entries := e.Repo().Entries("h")
	if len(entries) != 1 || entries[0].Code != nil {
		t.Fatalf("interp fallback should cache exactly one code-less entry: %v", entries)
	}
}

// TestAsyncRecompileUpgrade: the hot-entry upgrade path works through
// the worker pool and replaces (not mutates) the published entry.
func TestAsyncRecompileUpgrade(t *testing.T) {
	e := New(Options{Tier: TierJIT, AsyncCompile: true, RecompileThreshold: 5, Seed: 3})
	defer e.Close()
	if err := e.Define(asyncWorkSrc); err != nil {
		t.Fatal(err)
	}
	want := asyncWorkWant(500)
	arg := []*mat.Value{mat.Scalar(500)}
	for call := 1; call <= 10; call++ {
		outs, err := e.Call("work", arg, 1)
		if err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
		if got := outs[0].MustScalar(); got != want {
			t.Fatalf("call %d: %g, want %g", call, got, want)
		}
	}
	e.Drain()
	upgraded := false
	for _, en := range e.Repo().Entries("work") {
		if en.Quality == repo.QualityOpt {
			upgraded = true
		}
	}
	if !upgraded {
		t.Error("hot entry was never upgraded through the async pool")
	}
}

// TestCloseThenCallStaysUsable: after Close the engine compiles inline.
func TestCloseThenCallStaysUsable(t *testing.T) {
	e := New(Options{Tier: TierJIT, AsyncCompile: true, Seed: 2})
	if err := e.Define(asyncWorkSrc); err != nil {
		t.Fatal(err)
	}
	e.Close()
	outs, err := e.Call("work", []*mat.Value{mat.Scalar(20)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := outs[0].MustScalar(), asyncWorkWant(20); got != want {
		t.Fatalf("got %g, want %g", got, want)
	}
	e.Close() // idempotent
}

// TestSyncDefaultUnchanged: without AsyncCompile no pool exists and the
// repository behaves exactly as the seed (inline compile on miss).
func TestSyncDefaultUnchanged(t *testing.T) {
	e := New(Options{Tier: TierJIT, Seed: 2})
	if err := e.Define(asyncWorkSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Call("work", []*mat.Value{mat.Scalar(10)}, 1); err != nil {
		t.Fatal(err)
	}
	if qs := e.QueueStats(); qs.Submitted != 0 {
		t.Fatalf("sync engine used the pool: %+v", qs)
	}
	st := e.Repo().Stats()
	if st.Inserts != 1 || st.Misses != 1 {
		t.Fatalf("sync miss path changed: %+v", st)
	}
}
