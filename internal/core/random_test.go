package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/disambig"
	"repro/internal/infer"
	"repro/internal/parser"
	"repro/internal/types"
)

// progGen generates random MATLAB programs in the supported subset.
// Every variable is defined before use, so the programs always pass the
// disambiguator; value magnitudes are kept tame so float comparisons
// stay meaningful.
type progGen struct {
	r          *rand.Rand
	scalars    []string
	vectors    map[string]int // name → fixed length
	buf        strings.Builder
	depth      int
	loopVar    int
	nextScalar int
}

func newProgGen(seed int64) *progGen {
	return &progGen{r: rand.New(rand.NewSource(seed)), vectors: map[string]int{}}
}

func (g *progGen) line(format string, args ...any) {
	g.buf.WriteString(strings.Repeat("  ", g.depth))
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteString("\n")
}

// scalarExpr produces an expression over defined scalars.
func (g *progGen) scalarExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(9)-4)
		case 1:
			return fmt.Sprintf("%.2f", g.r.Float64()*4-2)
		default:
			if len(g.scalars) == 0 {
				return fmt.Sprintf("%d", g.r.Intn(5))
			}
			return g.scalars[g.r.Intn(len(g.scalars))]
		}
	}
	switch g.r.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.scalarExpr(depth-1), g.scalarExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.scalarExpr(depth-1), g.scalarExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.scalarExpr(depth-1), g.scalarExpr(depth-1))
	case 3:
		return fmt.Sprintf("abs(%s)", g.scalarExpr(depth-1))
	case 4:
		return fmt.Sprintf("floor(%s)", g.scalarExpr(depth-1))
	case 5:
		return fmt.Sprintf("sin(%s)", g.scalarExpr(depth-1))
	default:
		if len(g.vectors) > 0 {
			// read a vector element with a safe literal index
			for name, n := range g.vectors {
				return fmt.Sprintf("%s(%d)", name, 1+g.r.Intn(n))
			}
		}
		return fmt.Sprintf("(%s / 2)", g.scalarExpr(depth-1))
	}
}

func (g *progGen) stmt(budget int) {
	switch g.r.Intn(10) {
	case 0, 1, 2, 3:
		// scalar assignment; fresh names only at top level so every
		// variable is defined on all paths. The RHS is generated before
		// the name enters scope so it never references itself undefined.
		rhs := g.scalarExpr(2)
		var name string
		if (len(g.scalars) > 0 && g.r.Intn(2) == 0) || g.depth > 0 {
			name = g.scalars[g.r.Intn(len(g.scalars))]
		} else {
			name = fmt.Sprintf("s%d", g.nextScalar)
			g.nextScalar++
			g.scalars = append(g.scalars, name)
		}
		g.line("%s = %s;", name, rhs)
	case 4:
		// new vector (top level only)
		if g.depth > 0 {
			g.stmt(0)
			return
		}
		name := fmt.Sprintf("v%d", len(g.vectors))
		n := 2 + g.r.Intn(5)
		g.vectors[name] = n
		g.line("%s = zeros(1, %d);", name, n)
	case 5:
		// vector element store with literal index (always in bounds)
		for name, n := range g.vectors {
			g.line("%s(%d) = %s;", name, 1+g.r.Intn(n), g.scalarExpr(1))
			return
		}
		g.stmt(budget)
	case 6:
		if budget > 0 && g.depth < 2 {
			n := 1 + g.r.Intn(4)
			v := fmt.Sprintf("k%d", g.loopVar)
			g.loopVar++
			g.line("for %s = 1:%d", v, n)
			conditional := g.depth > 0
			g.scalars = append(g.scalars, v)
			g.depth++
			for i := 0; i < 1+g.r.Intn(3); i++ {
				g.stmt(budget - 1)
			}
			g.depth--
			g.line("end")
			if conditional {
				// a loop nested in a branch may never run its header;
				// drop its variable from the visible scope
				g.scalars = g.scalars[:len(g.scalars)-1]
			}
		} else {
			g.stmt(0)
		}
	case 7:
		if budget > 0 && g.depth < 2 {
			g.line("if %s > 0", g.scalarExpr(1))
			g.depth++
			g.stmt(budget - 1)
			g.depth--
			if g.r.Intn(2) == 0 {
				g.line("else")
				g.depth++
				g.stmt(budget - 1)
				g.depth--
			}
			g.line("end")
		} else {
			g.stmt(0)
		}
	case 8:
		if g.r.Intn(2) == 0 {
			// bounded while loop with a dedicated counter; the counter
			// stays out of the generator's scope inside the body so no
			// generated statement can reassign it (which would loop
			// forever at run time)
			if budget > 0 && g.depth < 2 {
				w := fmt.Sprintf("w%d", g.loopVar)
				g.loopVar++
				n := 1 + g.r.Intn(5)
				g.line("%s = 0;", w)
				g.line("while %s < %d", w, n)
				g.depth++
				g.stmt(budget - 1)
				g.line("%s = %s + 1;", w, w)
				g.depth--
				g.line("end")
				if g.depth == 0 {
					// counters born inside branches stay out of scope
					g.scalars = append(g.scalars, w)
				}
				return
			}
			g.stmt(0)
			return
		}
		if g.r.Intn(2) == 0 {
			// sweep a vector with a variable index (in-bounds by
			// construction): reads and writes through the loop variable
			for name, n := range g.vectors {
				if g.depth >= 2 {
					break
				}
				v := fmt.Sprintf("k%d", g.loopVar)
				g.loopVar++
				g.line("for %s = 1:%d", v, n)
				g.depth++
				g.line("%s(%s) = %s(%s) + %s;", name, v, name, v, g.scalarExpr(1))
				g.depth--
				g.line("end")
				return
			}
		}
		// vector arithmetic between same-length vectors
		var names []string
		var length int
		for name, n := range g.vectors {
			if length == 0 {
				length = n
			}
			if n == length {
				names = append(names, name)
			}
		}
		if len(names) >= 2 {
			g.line("%s = %s + %s;", names[0], names[0], names[1])
		} else {
			g.stmt(0)
		}
	default:
		// scalar update through min/max/mod
		if len(g.scalars) > 0 {
			s := g.scalars[g.r.Intn(len(g.scalars))]
			g.line("%s = max(min(%s, 100), -100);", s, s)
		} else {
			g.stmt(0)
		}
	}
}

// generate returns a random script plus the names of its variables.
func (g *progGen) generate(stmts int) string {
	g.line("s0 = 1;")
	g.scalars = append(g.scalars, "s0")
	g.nextScalar = 1
	for i := 0; i < stmts; i++ {
		g.stmt(2)
	}
	return g.buf.String()
}

// TestInferenceSoundnessRandom: for random programs, the dynamic type
// of every variable observed after interpretation must be a subtype of
// its inferred static annotation — the central soundness property of
// the paper's "conservative estimate" claim.
func TestInferenceSoundnessRandom(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		g := newProgGen(seed)
		src := g.generate(12)

		file, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		graph := cfg.Build(file.Stmts)
		tbl := disambig.Analyze(graph, nil, nil)
		if tbl.HasAmbiguous {
			continue // generator shouldn't produce these, but skip safely
		}
		res := infer.Forward(graph, map[string]types.Type{}, infer.Opts{})

		e := New(Options{Tier: TierInterp, Seed: uint64(seed) + 1})
		if err := e.EvalString(src); err != nil {
			t.Fatalf("seed %d: eval: %v\n%s", seed, err, src)
		}
		for name := range tbl.Vars {
			v, ok := e.Workspace(name)
			if !ok {
				continue // e.g. loop over empty range left it unset
			}
			static, ok := res.Vars[name]
			if !ok {
				t.Errorf("seed %d: %s has no static type\n%s", seed, name, src)
				continue
			}
			dynamic := types.OfValue(v)
			if !types.Leq(dynamic, static) {
				t.Errorf("seed %d: %s: dynamic %v ⊄ static %v\n%s",
					seed, name, dynamic, static, src)
			}
		}
	}
}

// TestTierEquivalenceRandom: random programs wrapped into functions must
// produce identical results under every execution tier.
func TestTierEquivalenceRandom(t *testing.T) {
	for seed := int64(200); seed < 280; seed++ {
		g := newProgGen(seed)
		body := g.generate(12)
		// checksum over all scalars and vectors
		var sum strings.Builder
		sum.WriteString("  out = 0;\n")
		for _, s := range g.scalars {
			fmt.Fprintf(&sum, "  out = out + %s;\n", s)
		}
		for v := range g.vectors {
			fmt.Fprintf(&sum, "  out = out + sum(%s);\n", v)
		}
		src := "function out = f()\n" + body + sum.String() + "end\n"

		run := func(tier Tier) (float64, error) {
			e := New(Options{Tier: tier, Seed: 99})
			if err := e.Define(src); err != nil {
				return 0, err
			}
			e.Precompile()
			outs, err := e.Call("f", nil, 1)
			if err != nil {
				return 0, err
			}
			return outs[0].Scalar()
		}
		want, err := run(TierInterp)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		for _, tier := range []Tier{TierMCC, TierFalcon, TierJIT, TierSpec} {
			got, err := run(tier)
			if err != nil {
				t.Fatalf("seed %d [%s]: %v\n%s", seed, tier, err, src)
			}
			if !scalarClose(want, got) {
				t.Errorf("seed %d [%s]: %g != %g\n%s", seed, tier, got, want, src)
			}
		}
	}
}
