package core

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// Programs exercising the fused elementwise kernel's edge cases: kind
// refinement, runtime broadcasting, complex promotion aborts, NaN/Inf
// propagation, in-place destination reuse, and coexistence with the
// dgemv fusion rule.
var fusionPrograms = []diffProg{
	{name: "chain_inplace", src: `
function s = f()
  n = 300;
  a = (1:n) ./ n;
  b = a + 0.5;
  c = a .* 2;
  x = zeros(1, n);
  for i = 1:20
    x = x + a .* b - c ./ 2;
    x = 2 * x + exp(-b);
  end
  s = sum(x);
end`},
	{name: "int_kinds", src: `
function s = f()
  v = 1:50;
  w = v .* 3 + 1;
  u = w - v .* 2;
  s = sum(w) + sum(u) + u(50);
end`},
	{name: "int_to_real_div", src: `
function s = f()
  v = 1:40;
  w = v ./ 4 + v .* 2;
  s = sum(w);
end`},
	{name: "pow_abort", src: `
function s = f()
  v = -4:1:20;
  a = v .^ 2 + v;
  b = (v - 0.5) .^ 0.5;
  s = sum(a) + sum(real(b)) + sum(imag(b));
end`},
	{name: "sqrt_abort", src: `
function s = f()
  v = -3:0.5:8;
  w = sqrt(v + 1) .* 2;
  s = sum(real(w)) + sum(imag(w));
end`},
	{name: "nan_inf", src: `
function s = f()
  v = [0 1 2 3];
  w = v ./ 0 - v .* 2;
  u = (v - 1) ./ (v - 1) + v;
  s = [w u];
end`},
	{name: "broadcast_scalar_value", src: `
function s = f()
  v = 1:30;
  one = ones(1, 1);
  w = v .* one + v ./ one;
  s = sum(w);
end`},
	{name: "neg_root", src: `
function s = f()
  v = linspace(0, 2, 41);
  w = -(v .* v - v);
  s = sum(w) + w(41);
end`},
	{name: "math_chain", src: `
function s = f()
  t = linspace(0, 1, 101);
  y = sin(t .* 3) + cos(t ./ 2) .* exp(-t);
  s = sum(y);
end`},
	{name: "gemv_plus_elemwise", src: `
function s = f()
  n = 25;
  A = zeros(n, n);
  for i = 1:n
    for j = 1:n
      A(i,j) = 1/(i+j);
    end
  end
  x = ones(n, 1);
  b = A*x;
  r = (b - A*x) .* b + b ./ 2;
  s = sum(r) + norm(b - A*x);
end`},
	{name: "shared_operand_dst", src: `
function s = f()
  a = 1:100;
  a = a + a .* 2 - a ./ 4;
  a = a .* a + a;
  s = sum(a);
end`},
	{name: "empty_vectors", src: `
function s = f()
  e = [];
  w = e + e .* 2;
  s = numel(w) + size(w, 1) + size(w, 2);
end`},
}

// valuesExact demands bit-for-bit identity including the kind tag: the
// fused kernel must reproduce the generic chain exactly, not merely to
// within rounding.
func valuesExact(a, b *mat.Value) bool {
	if a.Kind() != b.Kind() || a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	ar, br := a.Re(), b.Re()
	for i := range ar {
		if math.Float64bits(ar[i]) != math.Float64bits(br[i]) {
			return false
		}
	}
	ai, bi := a.Im(), b.Im()
	if (ai == nil) != (bi == nil) {
		return false
	}
	for i := range ai {
		if math.Float64bits(ai[i]) != math.Float64bits(bi[i]) {
			return false
		}
	}
	return true
}

func runWithOpts(t *testing.T, p diffProg, opts Options) *mat.Value {
	t.Helper()
	opts.Seed = 12345
	e := New(opts)
	if err := e.Define(p.src); err != nil {
		t.Fatalf("[%s] define: %v", p.name, err)
	}
	e.Precompile()
	args := make([]*mat.Value, len(p.args))
	for i, a := range p.args {
		args[i] = mat.Scalar(a)
	}
	outs, err := e.Call("f", args, 1)
	if err != nil {
		t.Fatalf("[%s %+v] call: %v", p.name, opts, err)
	}
	return outs[0]
}

// TestFusionBitIdentical: enabling elementwise fusion must not change a
// single bit of any result — on the fusion edge cases above and on the
// whole differential program suite, across every compiling tier.
func TestFusionBitIdentical(t *testing.T) {
	progs := append(append([]diffProg{}, fusionPrograms...), diffPrograms...)
	for _, p := range progs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for _, tier := range allTiers {
				want := runWithOpts(t, p, Options{Tier: tier})
				got := runWithOpts(t, p, Options{Tier: tier, FuseElemwise: true})
				if !valuesExact(want, got) {
					t.Errorf("tier %s: fused result diverged: got %s, want %s", tier, got, want)
				}
			}
			// and fused results still agree with the interpreter
			ref := runWithOpts(t, p, Options{Tier: TierInterp})
			got := runWithOpts(t, p, Options{Tier: TierFalcon, FuseElemwise: true})
			if !valuesExact(ref, got) && !valuesClose(ref, got) {
				t.Errorf("fused falcon diverged from interpreter: got %s, want %s", got, ref)
			}
		})
	}
}
