package core

import "testing"

func TestAnsDoesNotAliasVariable(t *testing.T) {
	src := `
function y = f()
  x = [1 2 3];
  x;
  x(1) = 99;
  y = ans(1)*100 + x(1);
end`
	for _, tier := range []Tier{TierInterp, TierJIT, TierFalcon} {
		e := New(Options{Tier: tier, Seed: 1})
		if err := e.Define(src); err != nil {
			t.Fatal(err)
		}
		outs, err := e.Call("f", nil, 1)
		if err != nil {
			t.Fatalf("[%s] %v", tier, err)
		}
		// ans must keep the pre-mutation value 1
		wantScalar(t, outs[0], 1*100+99)
	}
}
