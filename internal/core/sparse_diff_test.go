package core

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// Sparse-vs-dense differential oracle: the iterative-solver programs
// run with a sparse operator must produce bit-for-bit the dense-operand
// interpreter's results, at every tier and every thread count. The
// operators here are fully stored CSR (sparse() of an all-nonzero
// matrix), so SpMV reproduces Dgemv's accumulation order exactly and
// "close" is not good enough — the comparison is on float64 bits.

const cgDiffSrc = `
function s = f(A, b)
  n = size(A, 1);
  x = zeros(n, 1);
  r = b - A*x;
  d = diag(A);
  z = r ./ d;
  p = z;
  rz = dot(r, z);
  for iter = 1:25
    q = A*p;
    alpha = rz / dot(p, q);
    x = x + alpha*p;
    r = r - alpha*q;
    z = r ./ d;
    rznew = dot(r, z);
    beta = rznew / rz;
    rz = rznew;
    p = z + beta*p;
  end
  s = sum(x) + norm(b - A*x);
end`

const qmrDiffSrc = `
function s = f(A, b)
  n = size(A, 1);
  x = zeros(n, 1);
  r = b - A*x;
  p = r;
  q = r;
  s = 0;
  for iter = 1:20
    pt = A*p;
    qt = A'*q;
    alpha = dot(r, r) / dot(q, pt);
    x = x + alpha*p;
    r = r - alpha*pt;
    p = r + 0.5*p;
    q = r + 0.25*qt/norm(qt);
    s = s + norm(r);
  end
  s = s + sum(x);
end`

const sorDiffSrc = `
function s = f(A, b, w)
  n = size(A, 1);
  D = diag(diag(A));
  L = tril(A, -1);
  U = triu(A, 1);
  M = D/w + L;
  N = D*(1/w - 1) - U;
  x = zeros(n, 1);
  for iter = 1:12
    x = M \ (N*x + b);
  end
  s = sum(x) + norm(b - A*x);
end`

const dirichDiffSrc = `
function s = f(U)
  n = size(U, 1);
  for i = 1:n
    U(i, 1) = 1;
    U(i, n) = 1;
  end
  for sweep = 1:8
    for i = 2:n-1
      for j = 2:n-1
        U(i, j) = 0.25*(U(i-1, j) + U(i+1, j) + U(i, j-1) + U(i, j+1));
      end
    end
  end
  s = sum(U(:));
end`

// spdDense builds the bench suite's SPD operator: fully nonzero, so its
// sparse form stores every element.
func spdDense(n int) *mat.Value {
	a := mat.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := 1 / (1 + math.Abs(float64(i-j)))
			if i == j {
				v += float64(n) / 4
			}
			a.SetAt(i, j, v)
		}
	}
	return a
}

func rhsDense(n int) *mat.Value {
	b := mat.New(n, 1)
	for i := 0; i < n; i++ {
		b.SetAt(i, 0, math.Sin(float64(i+1))+1.5)
	}
	return b
}

func bitsSame(a, b *mat.Value) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.IsSparse() || b.IsSparse() {
		return false
	}
	ar, br := a.Re(), b.Re()
	for i := range ar {
		if math.Float64bits(ar[i]) != math.Float64bits(br[i]) {
			return false
		}
	}
	return true
}

func runSparseDiff(t *testing.T, opts Options, src string, args []*mat.Value, calls int) *mat.Value {
	t.Helper()
	e := New(opts)
	defer e.Close()
	if err := e.Define(src); err != nil {
		t.Fatalf("define: %v", err)
	}
	var res *mat.Value
	for c := 0; c < calls; c++ {
		outs, err := e.Call("f", args, 1)
		if err != nil {
			t.Fatalf("call %d: %v", c, err)
		}
		if res == nil {
			res = outs[0]
		} else if !bitsSame(res, outs[0]) {
			t.Fatalf("call %d diverged from call 0", c)
		}
	}
	return res
}

func TestSparseDenseOracleSolvers(t *testing.T) {
	const n = 40
	ad := spdDense(n)
	as, err := ad.Sparse()
	if err != nil {
		t.Fatal(err)
	}
	b := rhsDense(n)

	cases := []struct {
		name      string
		src       string
		dense, sp []*mat.Value
	}{
		{"cg", cgDiffSrc, []*mat.Value{ad, b}, []*mat.Value{as, b}},
		{"qmr", qmrDiffSrc, []*mat.Value{ad, b}, []*mat.Value{as, b}},
		{"sor", sorDiffSrc, []*mat.Value{ad, b, mat.Scalar(1.2)}, []*mat.Value{as, b, mat.Scalar(1.2)}},
		{"dirich", dirichDiffSrc, []*mat.Value{mat.New(12, 12)}, []*mat.Value{mat.SparseZeros(12, 12)}},
	}
	tiers := []Options{
		{Tier: TierInterp},
		{Tier: TierJIT},
		{Tier: TierJIT, Tiered: true, TierThreshold: 2},
	}
	oldThreads := parallel.DefaultThreads()
	defer parallel.SetDefaultThreads(oldThreads)

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			parallel.SetDefaultThreads(1)
			want := runSparseDiff(t, Options{Tier: TierInterp, Seed: 1}, c.src, c.dense, 1)
			for _, th := range []int{1, 4} {
				parallel.SetDefaultThreads(th)
				for _, opt := range tiers {
					opt.Seed = 1
					opt.Threads = th
					// Tiered engines interpret the first calls and promote
					// in the background; extra calls reach compiled code.
					calls := 1
					if opt.Tier == TierJIT {
						calls = 4
					}
					gotDense := runSparseDiff(t, opt, c.src, c.dense, calls)
					if !bitsSame(want, gotDense) {
						t.Errorf("threads=%d tier=%v: dense diverged from interpreter", th, opt.Tier)
					}
					gotSparse := runSparseDiff(t, opt, c.src, c.sp, calls)
					if !bitsSame(want, gotSparse) {
						t.Errorf("threads=%d tier=%v tiered=%v: sparse diverged from dense oracle", th, opt.Tier, opt.Tiered)
					}
				}
			}
		})
	}
}

// TestSparseNaNInfOracle pins NaN/Inf propagation through explicit
// zeros: a *stored* zero (spdiags keeps band zeros) contributes 0*NaN =
// NaN exactly as a dense element would, while an *implicit* (unstored)
// zero contributes nothing — MATLAB's sparse semantics and the one
// documented divergence from a densified operand, which stores zeros
// everywhere and therefore poisons every row. Both behaviors are
// asserted, and the sparse arm must be bit-identical across tiers.
func TestSparseNaNInfOracle(t *testing.T) {
	const n = 6
	// Bidiagonal with a stored zero band: sub-diagonal all zeros.
	sub := make([]float64, n)
	d := make([]float64, n)
	for i := range d {
		d[i] = 2
	}
	as, err := mat.SparseFromDiags(n, n, [][]float64{sub, d}, []int{-1, 0})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := as.Dense()
	if err != nil {
		t.Fatal(err)
	}
	src := `
function y = f(A, x)
  y = A*x + (x - A*x);
end`
	for _, special := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		x := mat.New(n, 1)
		for i := 0; i < n; i++ {
			x.SetAt(i, 0, 1)
		}
		x.SetAt(2, 0, special) // column 2 feeds row 3's stored zero
		var ref *mat.Value
		for _, opt := range []Options{{Tier: TierInterp, Seed: 1}, {Tier: TierJIT, Seed: 1}} {
			got := runSparseDiff(t, opt, src, []*mat.Value{as, x}, 2)
			if ref == nil {
				ref = got
			} else if !bitsSame(ref, got) {
				t.Errorf("special=%v tier=%v: sparse result diverged across tiers", special, opt.Tier)
			}
			// Row 4 (stored zero at the special column) and row 3 (the
			// diagonal multiplies the special directly) are poisoned;
			// rows with no stored entry in column 3 stay finite.
			if !math.IsNaN(got.At(3, 0)) {
				t.Errorf("special=%v tier=%v: stored zero must poison row 4, got %v", special, opt.Tier, got.At(3, 0))
			}
			for _, clean := range []int{0, 1, 4, 5} {
				if v := got.At(clean, 0); math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("special=%v tier=%v: implicit zero leaked into row %d: %v", special, opt.Tier, clean+1, v)
				}
			}
			// The densified operand stores zeros in every row of the
			// special's column, so every row is poisoned there.
			dres := runSparseDiff(t, opt, src, []*mat.Value{ad, x}, 2)
			for i := 0; i < n; i++ {
				if !math.IsNaN(dres.At(i, 0)) {
					t.Errorf("special=%v tier=%v: densified operand row %d = %v, want NaN", special, opt.Tier, i+1, dres.At(i, 0))
				}
			}
		}
	}
}
