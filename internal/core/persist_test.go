package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/persist"
	"repro/internal/repo"
)

const persistSrc = "function y = padd(x)\ny = x + 1;\n"

// compileOnce defines src on a fresh engine over lib and calls fn once
// so the repository holds a JIT entry for it.
func compileOnce(t *testing.T, lib *Library, src, fn string) *mat.Value {
	t.Helper()
	e := New(Options{Tier: TierJIT, Library: lib})
	defer e.Close()
	if err := e.Define(src); err != nil {
		t.Fatal(err)
	}
	out, err := e.Call(fn, []*mat.Value{mat.Scalar(41)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return out[0]
}

// TestRegisterIdenticalSourceKeepsEntries pins the registration
// semantics warm restarts depend on: redefining a function with
// byte-identical source must NOT invalidate its compiled entries
// (the paper's snooper invalidates on change, and a replayed session
// re-sends the same definitions it sent last lifetime).
func TestRegisterIdenticalSourceKeepsEntries(t *testing.T) {
	lib := NewLibrary(LibraryOptions{})
	defer lib.Close()
	compileOnce(t, lib, persistSrc, "padd")
	if st := lib.Repo().Stats(); st.Inserts != 1 {
		t.Fatalf("setup: %+v", st)
	}

	compileOnce(t, lib, persistSrc, "padd") // identical redefinition
	st := lib.Repo().Stats()
	if st.Invalidation != 0 {
		t.Fatalf("identical redefinition invalidated: %+v", st)
	}
	if st.Inserts != 1 || st.Hits == 0 {
		t.Fatalf("identical redefinition recompiled: %+v", st)
	}

	// A changed body must still invalidate and recompile.
	compileOnce(t, lib, "function y = padd(x)\ny = x + 2;\n", "padd")
	st = lib.Repo().Stats()
	if st.Invalidation != 1 || st.Inserts != 2 {
		t.Fatalf("changed redefinition did not invalidate: %+v", st)
	}
}

// TestPersistenceWarmRestart is the in-process version of the CI
// warm-start smoke: compile, flush, build a second library on the same
// path, replay — zero misses, zero compiles, identical results.
func TestPersistenceWarmRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.bin")

	lib := NewLibrary(LibraryOptions{})
	if st := lib.EnablePersistence(path, time.Hour); st.Attempted {
		t.Fatalf("first boot found a snapshot: %+v", st)
	}
	want := compileOnce(t, lib, persistSrc, "padd")
	lib.Close() // drain + flush on the way out
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Close did not flush the snapshot: %v", err)
	}

	warm := NewLibrary(LibraryOptions{})
	defer warm.Close()
	ls := warm.EnablePersistence(path, time.Hour)
	if !ls.Attempted || ls.Error != "" || ls.LoadedEntries == 0 || ls.RejectedEntries != 0 {
		t.Fatalf("warm boot: %+v", ls)
	}
	got := compileOnce(t, warm, persistSrc, "padd")
	st := warm.Repo().Stats()
	if st.Misses != 0 || st.Inserts != 0 {
		t.Fatalf("warm replay compiled: %+v", st)
	}
	if want.Re()[0] != got.Re()[0] {
		t.Fatalf("warm result %v != cold result %v", got.Re()[0], want.Re()[0])
	}
	m := warm.PersistMetrics()
	if !m.Enabled || m.Path != path || m.Load.LoadedEntries != ls.LoadedEntries {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestPersistenceDropsRedefinedFunction pins the bugfix satellite: a
// function whose source changed between lifetimes must not resurrect
// its old compiled code from the snapshot.
func TestPersistenceDropsRedefinedFunction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.bin")

	lib := NewLibrary(LibraryOptions{})
	lib.EnablePersistence(path, time.Hour)
	compileOnce(t, lib, persistSrc, "padd")
	lib.Close()

	// Tamper with the snapshot the way a source change does: keep the
	// entries but swap in new source for the function. Entries now
	// carry the OLD hash and must be dropped at load.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := persist.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	newSrc := "function y = padd(x)\ny = x + 100;\n"
	for i := range snap.Funcs {
		if snap.Funcs[i].Name == "padd" {
			snap.Funcs[i].Source = newSrc
			snap.Funcs[i].SrcHash = persist.HashSource(newSrc)
		}
	}
	if err := os.WriteFile(path, persist.Encode(snap), 0o644); err != nil {
		t.Fatal(err)
	}

	warm := NewLibrary(LibraryOptions{})
	defer warm.Close()
	ls := warm.EnablePersistence(path, time.Hour)
	if ls.LoadedEntries != 0 || ls.RejectedEntries == 0 {
		t.Fatalf("stale entries survived the load: %+v", ls)
	}
	// The replay must compute with the NEW source, freshly compiled.
	out := compileOnce(t, warm, newSrc, "padd")
	if out.Re()[0] != 141 {
		t.Fatalf("got %v, want 141 (new source must win)", out.Re()[0])
	}
	if st := warm.Repo().Stats(); st.Inserts == 0 {
		t.Fatalf("redefined function was not recompiled: %+v", st)
	}
}

// TestPersistenceLiveDefinitionBeatsSnapshot: when a function is
// already defined (with different source) before the snapshot loads,
// the live definition wins and the snapshot's version is rejected.
func TestPersistenceLiveDefinitionBeatsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.bin")
	lib := NewLibrary(LibraryOptions{})
	lib.EnablePersistence(path, time.Hour)
	compileOnce(t, lib, persistSrc, "padd")
	lib.Close()

	warm := NewLibrary(LibraryOptions{})
	defer warm.Close()
	// Define padd differently BEFORE enabling persistence.
	compileOnce(t, warm, "function y = padd(x)\ny = x * 2;\n", "padd")
	ls := warm.EnablePersistence(path, time.Hour)
	if ls.LoadedEntries != 0 || ls.RejectedFunctions == 0 {
		t.Fatalf("snapshot overrode a live definition: %+v", ls)
	}
	out := compileOnce(t, warm, "function y = padd(x)\ny = x * 2;\n", "padd")
	if out.Re()[0] != 82 {
		t.Fatalf("got %v, want 82 (live definition must win)", out.Re()[0])
	}
}

// TestPersistenceCorruptSnapshotColdStarts: a damaged snapshot file
// must never crash the boot — the library cold starts and the next
// flush overwrites the damage.
func TestPersistenceCorruptSnapshotColdStarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.bin")
	if err := os.WriteFile(path, []byte("MJRPnot really a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary(LibraryOptions{})
	ls := lib.EnablePersistence(path, time.Hour)
	if !ls.Attempted || ls.Error == "" || ls.LoadedEntries != 0 {
		t.Fatalf("corrupt snapshot not rejected: %+v", ls)
	}
	compileOnce(t, lib, persistSrc, "padd")
	lib.Close()

	// The rewritten snapshot is healthy again.
	warm := NewLibrary(LibraryOptions{})
	defer warm.Close()
	if ls := warm.EnablePersistence(path, time.Hour); ls.Error != "" || ls.LoadedEntries == 0 {
		t.Fatalf("snapshot not repaired by flush: %+v", ls)
	}
}

// TestPersistenceInterpEntriesRoundTrip: interpret-only decisions
// (Quality 0, no code) persist too, so a warm start does not re-probe
// functions the compiler already declined.
func TestPersistenceInterpEntriesRoundTrip(t *testing.T) {
	lib := NewLibrary(LibraryOptions{})
	defer lib.Close()
	e := New(Options{Tier: TierJIT, Library: lib})
	defer e.Close()
	if err := e.Define(persistSrc); err != nil {
		t.Fatal(err)
	}
	// Hand-insert an interp-quality entry as the compile path would.
	lib.Repo().Insert("padd", &repo.Entry{Quality: repo.QualityInterp})

	snap := lib.ExportSnapshot()
	warm := NewLibrary(LibraryOptions{})
	defer warm.Close()
	ls := warm.LoadSnapshot(snap)
	if ls.RejectedEntries != 0 || ls.LoadedEntries == 0 {
		t.Fatalf("interp entry rejected: %+v", ls)
	}
}

// TestPersistenceColdStartsOnPreSparsitySnapshot: a snapshot written by
// the pre-sparsity codec (v2) encoded types without the sparsity bit,
// so none of its compiled entries can be trusted under the current
// lattice. The warm start must reject the whole file and cold start —
// and the next flush must overwrite it with a current-version snapshot.
func TestPersistenceColdStartsOnPreSparsitySnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.bin")

	lib := NewLibrary(LibraryOptions{})
	lib.EnablePersistence(path, time.Hour)
	compileOnce(t, lib, persistSrc, "padd")
	lib.Close()

	// Forge the snapshot's version down to 2 (header is not covered by
	// the payload CRC, so only the version gate can reject it).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[4], data[5] = 2, 0 // little-endian uint16 version field
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	warm := NewLibrary(LibraryOptions{})
	ls := warm.EnablePersistence(path, time.Hour)
	if !ls.Attempted || ls.Error == "" || ls.LoadedEntries != 0 {
		t.Fatalf("pre-sparsity snapshot must cold start: %+v", ls)
	}
	// Cold start means the replay compiles again.
	compileOnce(t, warm, persistSrc, "padd")
	if st := warm.Repo().Stats(); st.Inserts == 0 {
		t.Fatalf("cold start should recompile: %+v", st)
	}
	warm.Close()

	// The rewritten snapshot is current-version and warm-starts cleanly.
	again := NewLibrary(LibraryOptions{})
	defer again.Close()
	if ls := again.EnablePersistence(path, time.Hour); ls.Error != "" || ls.LoadedEntries == 0 {
		t.Fatalf("flush after cold start left a bad snapshot: %+v", ls)
	}
}
