// Package inline implements MaJIC's function inliner (paper §2.6.1):
// calls to small user functions (fewer than 200 lines) are expanded in
// place, preserving MATLAB's call-by-value semantics by copying actual
// parameters — except read-only formal parameters, which are not
// copied. Recursive calls inline at most 3 levels deep to avoid code
// explosion.
package inline

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/builtins"
	"repro/internal/cfg"
	"repro/internal/disambig"
)

// MaxLines is the callee size cap.
const MaxLines = 200

// MaxRecursion is the recursive inlining depth cap.
const MaxRecursion = 3

// Resolver provides callee lookup.
type Resolver interface {
	LookupFunction(name string) *ast.Function
}

type inliner struct {
	res      Resolver
	depth    map[string]int // per-callee inline nesting depth
	tmpCount int
	// callee analysis cache
	info map[string]*calleeInfo
}

type calleeInfo struct {
	fn       *ast.Function
	vars     map[string]bool // callee-local variable names
	writes   map[string]bool // names (re)assigned in the body
	ok       bool            // inlinable at all
	analyzed bool
}

// Expand returns a copy of fn with eligible calls inlined. The input is
// never modified. The returned function needs a fresh disambiguation
// pass (the paper: inlining "necessitates the re-building of the
// symbol table").
func Expand(fn *ast.Function, res Resolver) *ast.Function {
	in := &inliner{res: res, depth: map[string]int{}, info: map[string]*calleeInfo{}}
	out := ast.CloneFunction(fn)
	// The expander needs to know which names are variables in fn itself
	// so it only treats true user calls as candidates.
	g := cfg.Build(out.Body)
	tbl := disambig.Analyze(g, out.Ins, disambig.ResolverFunc(func(name string) bool {
		return res.LookupFunction(name) != nil
	}))
	if tbl.HasAmbiguous {
		return out
	}
	out.Body = in.stmts(out.Body, tbl)
	return out
}

// analyze classifies a callee for inlinability.
func (in *inliner) analyze(name string) *calleeInfo {
	if ci, ok := in.info[name]; ok {
		return ci
	}
	ci := &calleeInfo{analyzed: true}
	in.info[name] = ci
	fn := in.res.LookupFunction(name)
	if fn == nil || fn.LineCount >= MaxLines || len(fn.Outs) == 0 {
		return ci
	}
	// Reject bodies whose control flow cannot splice cleanly.
	clean := true
	ast.WalkStmts(fn.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Return, *ast.Global, *ast.Clear:
			clean = false
		}
		return clean
	})
	if !clean {
		return ci
	}
	g := cfg.Build(fn.Body)
	tbl := disambig.Analyze(g, fn.Ins, disambig.ResolverFunc(func(nm string) bool {
		return in.res.LookupFunction(nm) != nil
	}))
	if tbl.HasAmbiguous {
		return ci
	}
	ci.fn = fn
	ci.vars = tbl.Vars
	ci.writes = map[string]bool{}
	ast.WalkStmts(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Assign:
			for _, l := range x.LHS {
				switch lhs := l.(type) {
				case *ast.Ident:
					ci.writes[lhs.Name] = true
				case *ast.Call:
					ci.writes[lhs.Name] = true
				}
			}
		case *ast.For:
			ci.writes[x.Var] = true
		}
		return true
	})
	ci.ok = true
	return ci
}

// stmts expands calls in a statement list.
func (in *inliner) stmts(list []ast.Stmt, tbl *disambig.Table) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range list {
		out = append(out, in.stmt(s, tbl)...)
	}
	return out
}

// stmt expands one statement, possibly into several.
func (in *inliner) stmt(s ast.Stmt, tbl *disambig.Table) []ast.Stmt {
	switch x := s.(type) {
	case *ast.ExprStmt:
		pre, e := in.expr(x.X, tbl, true)
		x.X = e
		return append(pre, x)
	case *ast.Assign:
		// Whole-call multi-assignment [a,b] = f(...) inlines specially.
		if call, ok := x.RHS.(*ast.Call); ok && in.isInlinableCall(call, tbl) && len(x.LHS) >= 1 {
			if pre, outs, ok := in.expandCall(call, tbl, len(x.LHS)); ok {
				stmts := pre
				for i, l := range x.LHS {
					stmts = append(stmts, &ast.Assign{P: x.P, LHS: []ast.Expr{l}, RHS: outs[i]})
				}
				return stmts
			}
		}
		var pre []ast.Stmt
		for _, l := range x.LHS {
			if call, ok := l.(*ast.Call); ok {
				// subscripts of an indexed assignment target
				for i, a := range call.Args {
					p, e := in.expr(a, tbl, true)
					pre = append(pre, p...)
					call.Args[i] = e
				}
			}
		}
		p, e := in.expr(x.RHS, tbl, true)
		pre = append(pre, p...)
		x.RHS = e
		return append(pre, x)
	case *ast.If:
		var result []ast.Stmt
		var pre []ast.Stmt
		for i, c := range x.Conds {
			p, e := in.expr(c, tbl, true)
			if i == 0 {
				pre = append(pre, p...)
			} else if len(p) > 0 {
				// Hoisting from elseif conditions would evaluate them
				// unconditionally; skip inlining there.
				e = c
			}
			x.Conds[i] = e
			x.Blocks[i] = in.stmts(x.Blocks[i], tbl)
		}
		if x.Else != nil {
			x.Else = in.stmts(x.Else, tbl)
		}
		result = append(pre, x)
		return result
	case *ast.While:
		// Never hoist out of a while condition (re-evaluated per
		// iteration); only the body is expanded.
		x.Body = in.stmts(x.Body, tbl)
		return []ast.Stmt{x}
	case *ast.For:
		pre, e := in.expr(x.Iter, tbl, true)
		x.Iter = e
		x.Body = in.stmts(x.Body, tbl)
		return append(pre, x)
	case *ast.Switch:
		pre, e := in.expr(x.Subject, tbl, true)
		x.Subject = e
		for i := range x.CaseBlks {
			x.CaseBlks[i] = in.stmts(x.CaseBlks[i], tbl)
		}
		if x.Otherwise != nil {
			x.Otherwise = in.stmts(x.Otherwise, tbl)
		}
		return append(pre, x)
	}
	return []ast.Stmt{s}
}

// expr rewrites an expression, hoisting inlined calls into pre. hoist
// is false inside contexts where unconditional evaluation would change
// semantics (short-circuit right operands).
func (in *inliner) expr(e ast.Expr, tbl *disambig.Table, hoist bool) ([]ast.Stmt, ast.Expr) {
	switch x := e.(type) {
	case *ast.Binary:
		if x.Op == ast.OpAndAnd || x.Op == ast.OpOrOr {
			pre, l := in.expr(x.L, tbl, hoist)
			_, r := in.expr(x.R, tbl, false)
			x.L, x.R = l, r
			return pre, x
		}
		p1, l := in.expr(x.L, tbl, hoist)
		p2, r := in.expr(x.R, tbl, hoist)
		x.L, x.R = l, r
		return append(p1, p2...), x
	case *ast.Unary:
		p, v := in.expr(x.X, tbl, hoist)
		x.X = v
		return p, x
	case *ast.Transpose:
		p, v := in.expr(x.X, tbl, hoist)
		x.X = v
		return p, x
	case *ast.Range:
		p1, lo := in.expr(x.Lo, tbl, hoist)
		x.Lo = lo
		var p2 []ast.Stmt
		if x.Step != nil {
			var st ast.Expr
			p2, st = in.expr(x.Step, tbl, hoist)
			x.Step = st
		}
		p3, hi := in.expr(x.Hi, tbl, hoist)
		x.Hi = hi
		return append(append(p1, p2...), p3...), x
	case *ast.Call:
		var pre []ast.Stmt
		for i, a := range x.Args {
			p, v := in.expr(a, tbl, hoist)
			pre = append(pre, p...)
			x.Args[i] = v
		}
		if hoist && in.isInlinableCall(x, tbl) {
			if p, outs, ok := in.expandCall(x, tbl, 1); ok {
				pre = append(pre, p...)
				return pre, outs[0]
			}
		}
		return pre, x
	case *ast.Matrix:
		var pre []ast.Stmt
		for _, row := range x.Rows {
			for i, el := range row {
				p, v := in.expr(el, tbl, hoist)
				pre = append(pre, p...)
				row[i] = v
			}
		}
		return pre, x
	}
	return nil, e
}

// isInlinableCall checks the call site: a user call with matching arity.
func (in *inliner) isInlinableCall(call *ast.Call, tbl *disambig.Table) bool {
	if m, ok := tbl.Uses[call]; ok {
		if m != disambig.UserFunc {
			return false
		}
	} else {
		// Cloned node from an already-inlined body: reclassify by name.
		// Renamed locals carry the inlN_ prefix; caller variables are in
		// tbl.Vars; otherwise a known user function name is a call.
		if tbl.Vars[call.Name] || strings.HasPrefix(call.Name, "inl") {
			return false
		}
		if builtins.Lookup(call.Name) != nil {
			return false
		}
		if in.res.LookupFunction(call.Name) == nil {
			return false
		}
	}
	ci := in.analyze(call.Name)
	if !ci.ok || len(call.Args) != len(ci.fn.Ins) {
		return false
	}
	return in.depth[call.Name] < MaxRecursion
}

// expandCall splices the callee body, returning the prelude statements
// and the expressions holding the outputs.
func (in *inliner) expandCall(call *ast.Call, tbl *disambig.Table, nout int) ([]ast.Stmt, []ast.Expr, bool) {
	ci := in.analyze(call.Name)
	if !ci.ok || nout > len(ci.fn.Outs) {
		return nil, nil, false
	}
	in.depth[call.Name]++
	defer func() { in.depth[call.Name]-- }()

	in.tmpCount++
	pfx := fmt.Sprintf("inl%d_", in.tmpCount)

	rename := map[string]string{}
	for v := range ci.vars {
		rename[v] = pfx + v
	}

	var pre []ast.Stmt
	// Bind parameters. Read-only identifier arguments substitute
	// directly (the paper's copy elision for read-only formals);
	// everything else binds through a renamed temporary.
	subst := map[string]ast.Expr{}
	for i, formal := range ci.fn.Ins {
		arg := call.Args[i]
		argIdent, argIsIdent := arg.(*ast.Ident)
		if !ci.writes[formal] && argIsIdent && tbl.Uses[argIdent] == disambig.Variable {
			subst[formal] = argIdent
			delete(rename, formal)
			continue
		}
		pre = append(pre, &ast.Assign{
			P:   call.P,
			LHS: []ast.Expr{&ast.Ident{P: call.P, Name: rename[formal]}},
			RHS: arg,
		})
	}

	// Splice the renamed body.
	body := ast.CloneStmts(ci.fn.Body)
	renameStmts(body, rename, subst)
	// Recursively expand calls inside the inlined body.
	body = in.stmts(body, tbl)
	pre = append(pre, body...)

	outs := make([]ast.Expr, nout)
	for i := 0; i < nout; i++ {
		name := ci.fn.Outs[i]
		if nn, ok := rename[name]; ok {
			name = nn
		}
		outs[i] = &ast.Ident{P: call.P, Name: name}
	}
	return pre, outs, true
}

// renameStmts rewrites identifier and call-base names per the rename
// map, substituting read-only parameters.
func renameStmts(body []ast.Stmt, rename map[string]string, subst map[string]ast.Expr) {
	var rewriteExpr func(e ast.Expr) ast.Expr
	rewriteExpr = func(e ast.Expr) ast.Expr {
		switch x := e.(type) {
		case *ast.Ident:
			if repl, ok := subst[x.Name]; ok {
				return ast.CloneExpr(repl)
			}
			if nn, ok := rename[x.Name]; ok {
				x.Name = nn
			}
			return x
		case *ast.Binary:
			x.L = rewriteExpr(x.L)
			x.R = rewriteExpr(x.R)
			return x
		case *ast.Unary:
			x.X = rewriteExpr(x.X)
			return x
		case *ast.Transpose:
			x.X = rewriteExpr(x.X)
			return x
		case *ast.Range:
			x.Lo = rewriteExpr(x.Lo)
			if x.Step != nil {
				x.Step = rewriteExpr(x.Step)
			}
			x.Hi = rewriteExpr(x.Hi)
			return x
		case *ast.Call:
			if repl, ok := subst[x.Name]; ok {
				// Indexing a substituted read-only parameter: the
				// substitute is an Ident, so re-point the base name.
				if id, isIdent := repl.(*ast.Ident); isIdent {
					x.Name = id.Name
				}
			} else if nn, ok := rename[x.Name]; ok {
				x.Name = nn
			}
			for i, a := range x.Args {
				x.Args[i] = rewriteExpr(a)
			}
			return x
		case *ast.Matrix:
			for _, row := range x.Rows {
				for i, el := range row {
					row[i] = rewriteExpr(el)
				}
			}
			return x
		}
		return e
	}
	var rewriteStmt func(s ast.Stmt)
	rewriteStmt = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.ExprStmt:
			x.X = rewriteExpr(x.X)
		case *ast.Assign:
			for i, l := range x.LHS {
				x.LHS[i] = rewriteExpr(l)
			}
			x.RHS = rewriteExpr(x.RHS)
		case *ast.If:
			for i, c := range x.Conds {
				x.Conds[i] = rewriteExpr(c)
				for _, s2 := range x.Blocks[i] {
					rewriteStmt(s2)
				}
			}
			for _, s2 := range x.Else {
				rewriteStmt(s2)
			}
		case *ast.While:
			x.Cond = rewriteExpr(x.Cond)
			for _, s2 := range x.Body {
				rewriteStmt(s2)
			}
		case *ast.For:
			if nn, ok := rename[x.Var]; ok {
				x.Var = nn
			}
			x.Iter = rewriteExpr(x.Iter)
			for _, s2 := range x.Body {
				rewriteStmt(s2)
			}
		case *ast.Switch:
			x.Subject = rewriteExpr(x.Subject)
			for i, c := range x.CaseVals {
				x.CaseVals[i] = rewriteExpr(c)
				for _, s2 := range x.CaseBlks[i] {
					rewriteStmt(s2)
				}
			}
			for _, s2 := range x.Otherwise {
				rewriteStmt(s2)
			}
		}
	}
	for _, s := range body {
		rewriteStmt(s)
	}
}
