package inline

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

type mapResolver map[string]*ast.Function

func (m mapResolver) LookupFunction(name string) *ast.Function { return m[name] }

func parseAll(t *testing.T, src string) (mapResolver, *ast.Function) {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := mapResolver{}
	for _, f := range file.Funcs {
		res[f.Name] = f
	}
	return res, file.Funcs[0]
}

// countCalls counts remaining user-call sites to name.
func countCalls(fn *ast.Function, name string) int {
	n := 0
	ast.WalkStmts(fn.Body, func(node ast.Node) bool {
		if c, ok := node.(*ast.Call); ok && c.Name == name {
			n++
		}
		return true
	})
	return n
}

func TestSimpleInline(t *testing.T) {
	res, fn := parseAll(t, `
function y = f(x)
  y = sq(x) + 1;
end
function y = sq(a)
  y = a*a;
end`)
	out := Expand(fn, res)
	if countCalls(out, "sq") != 0 {
		t.Errorf("sq not inlined:\n%s", ast.Print(out))
	}
	// the original function is untouched
	if countCalls(fn, "sq") != 1 {
		t.Error("Expand mutated its input")
	}
	// read-only parameter: substituted directly, no copy assignment
	printed := ast.Print(out)
	if strings.Contains(printed, "= x;") && strings.Contains(printed, "inl") {
		// a temp copy of x would look like "inlN_a = x;"
		t.Errorf("read-only arg should substitute, not copy:\n%s", printed)
	}
}

func TestWrittenParamGetsCopy(t *testing.T) {
	res, fn := parseAll(t, `
function y = f(x)
  y = bump(x) + x;
end
function y = bump(a)
  a = a + 1;
  y = a;
end`)
	out := Expand(fn, res)
	if countCalls(out, "bump") != 0 {
		t.Fatal("bump not inlined")
	}
	printed := ast.Print(out)
	// the written formal must bind through a renamed temp, preserving
	// call-by-value (x unchanged in the caller)
	if !strings.Contains(printed, "_a = x") {
		t.Errorf("written parameter must copy:\n%s", printed)
	}
}

func TestRecursionDepthCap(t *testing.T) {
	res, fn := parseAll(t, `
function y = f(n)
  if n < 1
    y = 0;
  else
    y = f(n-1) + 1;
  end
end`)
	out := Expand(fn, res)
	// after 3 levels the recursive call must remain
	if countCalls(out, "f") == 0 {
		t.Error("recursion fully unrolled; depth cap missing")
	}
	// expansion happened at all
	printed := ast.Print(out)
	if !strings.Contains(printed, "inl") {
		t.Errorf("no inlining happened:\n%s", printed)
	}
}

func TestNoInlineBigFunction(t *testing.T) {
	var b strings.Builder
	b.WriteString("function y = f(x)\n  y = big(x);\nend\n")
	b.WriteString("function y = big(a)\n  y = 0;\n")
	for i := 0; i < MaxLines+10; i++ {
		b.WriteString("  y = y + a;\n")
	}
	b.WriteString("end\n")
	res, fn := parseAll(t, b.String())
	out := Expand(fn, res)
	if countCalls(out, "big") != 1 {
		t.Error("oversized callee must not inline")
	}
}

func TestNoInlineReturnBody(t *testing.T) {
	res, fn := parseAll(t, `
function y = f(x)
  y = early(x);
end
function y = early(a)
  y = 0;
  if a > 0
    y = 1;
    return;
  end
  y = 2;
end`)
	out := Expand(fn, res)
	if countCalls(out, "early") != 1 {
		t.Error("bodies with return must not inline")
	}
}

func TestNoHoistFromWhileCond(t *testing.T) {
	res, fn := parseAll(t, `
function y = f(x)
  y = 0;
  while check(y) < x
    y = y + 1;
  end
end
function c = check(v)
  c = v * 2;
end`)
	out := Expand(fn, res)
	if countCalls(out, "check") != 1 {
		t.Error("calls in while conditions must stay (re-evaluated per iteration)")
	}
}

func TestNoHoistFromShortCircuitRHS(t *testing.T) {
	res, fn := parseAll(t, `
function y = f(x)
  y = 0;
  if x > 0 && helper(x) > 0
    y = 1;
  end
end
function h = helper(v)
  h = v - 1;
end`)
	out := Expand(fn, res)
	if countCalls(out, "helper") != 1 {
		t.Error("calls in && right operands must stay lazy")
	}
}

func TestMultiOutputInline(t *testing.T) {
	res, fn := parseAll(t, `
function s = f(x)
  [a, b] = divmod(x, 3);
  s = a*10 + b;
end
function [q, r] = divmod(x, y)
  q = floor(x/y);
  r = x - q*y;
end`)
	out := Expand(fn, res)
	if countCalls(out, "divmod") != 0 {
		t.Errorf("multi-output call not inlined:\n%s", ast.Print(out))
	}
}

func TestNestedHelperChain(t *testing.T) {
	res, fn := parseAll(t, `
function y = f(x)
  y = outer(x);
end
function y = outer(a)
  y = inner(a) + 1;
end
function y = inner(b)
  y = b * 2;
end`)
	out := Expand(fn, res)
	if countCalls(out, "outer") != 0 || countCalls(out, "inner") != 0 {
		t.Errorf("chain not fully inlined:\n%s", ast.Print(out))
	}
}

func TestRenamingAvoidsCapture(t *testing.T) {
	// callee local 'tmp' must not collide with caller's 'tmp'
	res, fn := parseAll(t, `
function y = f(x)
  tmp = 100;
  y = g(x) + tmp;
end
function y = g(a)
  tmp = a * 2;
  y = tmp + 1;
end`)
	out := Expand(fn, res)
	printed := ast.Print(out)
	if countCalls(out, "g") != 0 {
		t.Fatal("g not inlined")
	}
	// the callee's tmp must appear renamed
	if !strings.Contains(printed, "_tmp") {
		t.Errorf("callee local not renamed:\n%s", printed)
	}
}
