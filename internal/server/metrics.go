package server

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// latBounds are the latency histogram bucket upper bounds in
// microseconds (roughly log-spaced, 50µs … 5s, plus +Inf). Fixed
// buckets keep recording allocation-free and lock-free.
var latBounds = []uint64{
	50, 100, 200, 500,
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000,
}

// hist is a lock-free latency histogram: counts per bucket plus a
// running sum and the observed maximum, all atomics. One final bucket
// catches > 5s.
type hist struct {
	count   atomic.Uint64
	sumUS   atomic.Uint64
	maxUS   atomic.Uint64
	buckets [17]atomic.Uint64 // len(latBounds) + overflow
}

func (h *hist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	h.count.Add(1)
	h.sumUS.Add(us)
	for m := h.maxUS.Load(); us > m; m = h.maxUS.Load() {
		if h.maxUS.CompareAndSwap(m, us) {
			break
		}
	}
	for i, b := range latBounds {
		if us <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(latBounds)].Add(1)
}

// quantile estimates the q-quantile (0 < q < 1) as the upper bound of
// the bucket where the cumulative count crosses q — the standard
// bucketed-histogram estimate, biased at most one bucket upward. The
// estimate is clamped to the observed maximum, which removes the
// pathological bias for sparse histograms (a single 60µs request must
// not report p99 = 100µs), and makes the overflow bucket report the
// real tail value instead of a made-up "beyond the table" constant.
func (h *hist) quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	max := h.maxUS.Load()
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range latBounds {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if latBounds[i] > max {
				return max
			}
			return latBounds[i]
		}
	}
	return max // crossing in the overflow bucket: the max is the only bound we have
}

// RouteMetrics is one route's latency summary in the /metrics payload.
type RouteMetrics struct {
	Count  uint64 `json:"count"`
	MeanUS uint64 `json:"mean_us"`
	MaxUS  uint64 `json:"max_us"`
	P50US  uint64 `json:"p50_us"`
	P95US  uint64 `json:"p95_us"`
	P99US  uint64 `json:"p99_us"`
}

func (h *hist) snapshot() RouteMetrics {
	n := h.count.Load()
	m := RouteMetrics{
		Count: n,
		MaxUS: h.maxUS.Load(),
		P50US: h.quantile(0.50),
		P95US: h.quantile(0.95),
		P99US: h.quantile(0.99),
	}
	if n > 0 {
		m.MeanUS = h.sumUS.Load() / n
	}
	return m
}

// sample renders the histogram as one Prometheus histogram sample
// (cumulative buckets, seconds).
func (h *hist) sample(name, help string, labels ...telemetry.Label) telemetry.Sample {
	s := telemetry.Sample{
		Name:   name,
		Help:   help,
		Kind:   telemetry.KindHistogram,
		Labels: labels,
		Sum:    float64(h.sumUS.Load()) / 1e6,
		Count:  h.count.Load(),
	}
	var cum uint64
	for i, b := range latBounds {
		cum += h.buckets[i].Load()
		s.Buckets = append(s.Buckets, telemetry.Bucket{UpperBound: float64(b) / 1e6, Count: cum})
	}
	cum += h.buckets[len(latBounds)].Load()
	s.Buckets = append(s.Buckets, telemetry.Bucket{UpperBound: math.Inf(1), Count: cum})
	return s
}

// serverMetrics aggregates the daemon's counters. Route histograms are
// fixed at construction so recording needs no map lock.
type serverMetrics struct {
	sessionsCreated  atomic.Uint64
	sessionsEvicted  atomic.Uint64 // idle-TTL reaps
	sessionsRejected atomic.Uint64 // table full
	evalsTotal       atomic.Uint64
	evalsErrors      atomic.Uint64 // program errors
	evalsTimeouts    atomic.Uint64 // deadline kills
	evalsRejected    atomic.Uint64 // admission-control bounces
	evalsInflight    atomic.Int64

	// /cluster/ingest outcomes (see server.IngestStats).
	ingestApplied  atomic.Uint64
	ingestDropped  atomic.Uint64
	ingestRejected atomic.Uint64

	routes map[string]*hist
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{routes: map[string]*hist{
		"create":    {},
		"eval":      {},
		"workspace": {},
		"destroy":   {},
		"ingest":    {},
	}}
}

func (m *serverMetrics) observe(route string, d time.Duration) {
	if h, ok := m.routes[route]; ok {
		h.observe(d)
	}
}
