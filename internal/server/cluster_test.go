package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/persist"
)

// TestReadyzSplitsFromHealthz pins the liveness/readiness split: a
// draining node keeps answering /healthz 200 (the process is alive)
// while /readyz flips to 503 with the "draining" reason a gateway keys
// failover on.
func TestReadyzSplitsFromHealthz(t *testing.T) {
	srv, tc := startServer(t, Options{Engine: core.Options{Tier: core.TierJIT}, NodeID: "node-a"})
	code, body := tc.do("GET", "/readyz", nil)
	if code != http.StatusOK {
		t.Fatalf("ready node: /readyz = %d %s", code, body)
	}
	var rr readyResponse
	if err := json.Unmarshal(body, &rr); err != nil || !rr.Ready || rr.Node != "node-a" {
		t.Fatalf("readyz body: %s (%v)", body, err)
	}

	srv.StartDraining()
	code, body = tc.do("GET", "/readyz", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining node: /readyz = %d %s", code, body)
	}
	if err := json.Unmarshal(body, &rr); err != nil || rr.Ready || rr.Reason != "draining" {
		t.Fatalf("draining readyz body: %s (%v)", body, err)
	}
	if code, _ = tc.do("GET", "/healthz", nil); code != http.StatusOK {
		t.Fatalf("draining node must stay live: /healthz = %d", code)
	}
}

// donorRecord compiles src on a scratch library and returns the wire
// bytes of its compiled-entry record — exactly what a peer would push.
func donorRecord(t *testing.T, src, fn string) []byte {
	t.Helper()
	lib := core.NewLibrary(core.LibraryOptions{})
	defer lib.Close()
	eng := core.New(core.Options{Tier: core.TierJIT, Library: lib})
	if err := eng.Define(src); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Call(fn, []*mat.Value{mat.Scalar(1)}, 1); err != nil {
		t.Fatal(err)
	}
	for _, rec := range lib.ExportRecords("donor", false) {
		if rec.Entry != nil {
			return persist.EncodeRecord(&rec)
		}
	}
	t.Fatal("donor produced no compiled entry")
	return nil
}

func TestClusterIngest(t *testing.T) {
	wire := donorRecord(t, "function y = add2(x)\ny = x + 2;\n", "add2")
	srv, tc := startServer(t, Options{Engine: core.Options{Tier: core.TierJIT}, NodeID: "node-b"})

	post := func(body []byte) (int, ingestResponse, []byte) {
		t.Helper()
		resp, err := http.Post(tc.base+"/cluster/ingest", "application/octet-stream", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ir ingestResponse
		raw := make([]byte, 0)
		dec := json.NewDecoder(resp.Body)
		_ = dec.Decode(&ir)
		return resp.StatusCode, ir, raw
	}

	if code, ir, _ := post(wire); code != http.StatusOK || !ir.Applied || ir.Outcome != "applied" {
		t.Fatalf("ingest: %d %+v", code, ir)
	}
	// The same record again is a normal race outcome, not an error.
	if code, ir, _ := post(wire); code != http.StatusOK || ir.Applied || ir.Outcome != "duplicate" {
		t.Fatalf("duplicate ingest: %d %+v", code, ir)
	}
	// Undecodable bytes are rejected outright.
	if code, _, _ := post([]byte("not a record")); code != http.StatusBadRequest {
		t.Fatalf("garbage ingest must 400, got %d", code)
	}

	m := srv.Metrics()
	if m.Ingest.Applied != 1 || m.Ingest.Dropped != 1 || m.Ingest.Rejected != 1 {
		t.Fatalf("ingest counters: %+v", m.Ingest)
	}
	if m.Repo.Replicated != 1 || m.Repo.Inserts != 0 {
		t.Fatalf("repo counters after ingest: %+v", m.Repo)
	}

	// The replicated entry serves a live session's call with no local
	// compile — the cross-node warm hit the cluster exists for.
	id := tc.createSession()
	if code, ev, eb := tc.eval(id, "y = add2(1);"); code != http.StatusOK {
		t.Fatalf("eval after ingest: %d %+v %+v", code, ev, eb)
	}
	m = srv.Metrics()
	if m.Repo.Inserts != 0 || m.Repo.Hits < 1 {
		t.Fatalf("eval should hit the replica: %+v", m.Repo)
	}
}

func TestClusterIngestIsolated(t *testing.T) {
	wire := donorRecord(t, "function y = add2(x)\ny = x + 2;\n", "add2")
	_, tc := startServer(t, Options{Engine: core.Options{Tier: core.TierJIT}, Isolated: true})
	resp, err := http.Post(tc.base+"/cluster/ingest", "application/octet-stream", strings.NewReader(string(wire)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("isolated ingest must 409, got %d", resp.StatusCode)
	}
	if resp, err = http.Get(tc.base + "/cluster/digest"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("isolated digest must 409, got %d", resp.StatusCode)
	}
}

func TestClusterDigest(t *testing.T) {
	wire := donorRecord(t, "function y = add2(x)\ny = x + 2;\n", "add2")
	_, tc := startServer(t, Options{Engine: core.Options{Tier: core.TierJIT}, NodeID: "node-b"})
	if resp, err := http.Post(tc.base+"/cluster/ingest", "application/octet-stream", strings.NewReader(string(wire))); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	code, body := tc.do("GET", "/cluster/digest", nil)
	if code != http.StatusOK {
		t.Fatalf("digest: %d %s", code, body)
	}
	var dr digestResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	d, ok := dr.Funcs["add2"]
	if dr.Node != "node-b" || !ok || len(d.Entries) != 1 {
		t.Fatalf("digest body: %s", body)
	}
}
