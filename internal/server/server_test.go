package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// testClient wraps an httptest server with the daemon's JSON protocol.
type testClient struct {
	t    *testing.T
	base string
	c    *http.Client
}

func startServer(t *testing.T, opts Options) (*Server, *testClient) {
	t.Helper()
	srv := New(opts)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, &testClient{t: t, base: hs.URL, c: hs.Client()}
}

func (tc *testClient) do(method, path string, body any) (int, []byte) {
	tc.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			tc.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, tc.base+path, rd)
	if err != nil {
		tc.t.Fatal(err)
	}
	resp, err := tc.c.Do(req)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		tc.t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (tc *testClient) createSession() string {
	tc.t.Helper()
	code, body := tc.do("POST", "/sessions", nil)
	if code != http.StatusCreated {
		tc.t.Fatalf("create: %d %s", code, body)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		tc.t.Fatal(err)
	}
	return v.ID
}

func (tc *testClient) eval(id, src string) (int, evalResponse, errorBody) {
	tc.t.Helper()
	code, body := tc.do("POST", "/sessions/"+id+"/eval", evalRequest{Src: src})
	var ok evalResponse
	var bad errorBody
	json.Unmarshal(body, &ok)
	json.Unmarshal(body, &bad)
	return code, ok, bad
}

func (tc *testClient) metrics() MetricsSnapshot {
	tc.t.Helper()
	code, body := tc.do("GET", "/metrics", nil)
	if code != http.StatusOK {
		tc.t.Fatalf("metrics: %d %s", code, body)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(body, &m); err != nil {
		tc.t.Fatal(err)
	}
	return m
}

func TestSessionLifecycle(t *testing.T) {
	_, tc := startServer(t, Options{Engine: core.Options{Tier: core.TierJIT}})
	id := tc.createSession()

	code, ok, _ := tc.eval(id, "x = 6 * 7")
	if code != http.StatusOK {
		t.Fatalf("eval: %d", code)
	}
	if !strings.Contains(ok.Output, "42") {
		t.Fatalf("output %q does not echo x = 42", ok.Output)
	}

	// Workspace get sees the binding.
	code, body := tc.do("GET", "/sessions/"+id+"/workspace/x", nil)
	if code != http.StatusOK {
		t.Fatalf("workspace: %d %s", code, body)
	}
	var wv workspaceValue
	if err := json.Unmarshal(body, &wv); err != nil {
		t.Fatal(err)
	}
	if wv.Rows != 1 || wv.Cols != 1 || len(wv.Re) != 1 || wv.Re[0] != 42 {
		t.Fatalf("workspace value = %+v", wv)
	}

	// Program errors are 422 with the message, not 500.
	code, _, bad := tc.eval(id, "y = undefined_thing(3)")
	if code != http.StatusUnprocessableEntity || bad.Error == "" {
		t.Fatalf("error eval: %d %+v", code, bad)
	}

	// Destroy; the session is gone.
	if code, body := tc.do("DELETE", "/sessions/"+id, nil); code != http.StatusNoContent {
		t.Fatalf("destroy: %d %s", code, body)
	}
	if code, _, _ := tc.eval(id, "x"); code != http.StatusNotFound {
		t.Fatalf("eval after destroy: %d", code)
	}
}

// TestDeadlineKillsInfiniteLoop pins the acceptance criterion: a 500ms
// deadline against `while 1; end` returns a timeout error quickly and
// the daemon keeps serving other sessions.
func TestDeadlineKillsInfiniteLoop(t *testing.T) {
	_, tc := startServer(t, Options{Engine: core.Options{Tier: core.TierJIT}})
	spinner := tc.createSession()
	other := tc.createSession()

	t0 := time.Now()
	code, body := tc.do("POST", "/sessions/"+spinner+"/eval",
		evalRequest{Src: "while 1; end", DeadlineMS: 500})
	elapsed := time.Since(t0)
	if code != http.StatusRequestTimeout {
		t.Fatalf("want 408, got %d %s", code, body)
	}
	var bad errorBody
	json.Unmarshal(body, &bad)
	if bad.Kind != "timeout" {
		t.Fatalf("want timeout kind, got %+v", bad)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}

	// The daemon still serves: the other session and the killed one.
	if code, ok, _ := tc.eval(other, "a = 1 + 1"); code != http.StatusOK || !strings.Contains(ok.Output, "2") {
		t.Fatalf("other session broken after kill: %d %+v", code, ok)
	}
	if code, _, _ := tc.eval(spinner, "b = 2 + 2;"); code != http.StatusOK {
		t.Fatalf("killed session cannot eval again: %d", code)
	}
	if m := tc.metrics(); m.Evals.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", m.Evals.Timeouts)
	}
}

// TestSharedRepositoryAcrossSessions: one session defines and JIT-
// compiles a function; a second session's call hits the shared entry
// without recompiling.
func TestSharedRepositoryAcrossSessions(t *testing.T) {
	_, tc := startServer(t, Options{Engine: core.Options{Tier: core.TierJIT}})
	a := tc.createSession()
	b := tc.createSession()

	if code, _, bad := tc.eval(a, "function y = cube(x)\ny = x * x * x;\n"); code != http.StatusOK {
		t.Fatalf("define: %+v", bad)
	}
	if code, _, bad := tc.eval(a, "r = cube(3);"); code != http.StatusOK {
		t.Fatalf("a call: %+v", bad)
	}
	inserts := tc.metrics().Repo.Inserts
	if inserts == 0 {
		t.Fatal("no repository insert after first call")
	}
	// b calls the function it never defined: shared library resolves
	// it, shared repository serves the compiled entry.
	code, _, bad := tc.eval(b, "r = cube(3);")
	if code != http.StatusOK {
		t.Fatalf("b call: %+v", bad)
	}
	m := tc.metrics()
	if m.Repo.Inserts != inserts {
		t.Fatalf("second session recompiled: inserts %d -> %d", inserts, m.Repo.Inserts)
	}
	if m.Repo.Hits == 0 {
		t.Fatal("second session's call did not hit the shared repository")
	}
	if !m.SharedRepo {
		t.Fatal("metrics must report shared_repo=true")
	}
	code, body := tc.do("GET", "/sessions/"+b+"/workspace/r", nil)
	var wv workspaceValue
	json.Unmarshal(body, &wv)
	if code != http.StatusOK || len(wv.Re) != 1 || wv.Re[0] != 27 {
		t.Fatalf("b result = %+v (%d)", wv, code)
	}
}

// TestGenerationSafeRedefinition: session b redefines a function while
// session a uses it; a's next call must see the new semantics (shared
// source directory), never stale code.
func TestGenerationSafeRedefinition(t *testing.T) {
	_, tc := startServer(t, Options{Engine: core.Options{Tier: core.TierJIT}})
	a := tc.createSession()
	b := tc.createSession()

	tc.eval(a, "function y = g(x)\ny = x + 1;\n")
	if _, ok, _ := tc.eval(a, "r = g(1)"); !strings.Contains(ok.Output, "2") {
		t.Fatalf("old body: %q", ok.Output)
	}
	tc.eval(b, "function y = g(x)\ny = x + 100;\n")
	if _, ok, _ := tc.eval(a, "r = g(1)"); !strings.Contains(ok.Output, "101") {
		t.Fatalf("a did not see b's redefinition: %q", ok.Output)
	}
}

// TestConcurrentSessionLifecycle is the -race workout: goroutines
// create, eval against, and destroy sessions concurrently while two of
// them redefine a shared function.
func TestConcurrentSessionLifecycle(t *testing.T) {
	_, tc := startServer(t, Options{
		Engine:  core.Options{Tier: core.TierJIT},
		Library: core.LibraryOptions{AsyncCompile: true, CompileWorkers: 2, RepoMaxEntries: 8},
	})
	seed := tc.createSession()
	if code, _, bad := tc.eval(seed, "function y = inc(x)\ny = x + 1;\n"); code != http.StatusOK {
		t.Fatalf("seed define: %+v", bad)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				id := tc.createSession()
				if i%4 == 0 {
					// Redefiners: generation churn against in-flight
					// compiles (the body stays semantically identical
					// so other sessions' results stay stable).
					code, _, bad := tc.eval(id, "function y = inc(x)\ny = x + 1;\n")
					if code != http.StatusOK {
						errs[i] = fmt.Errorf("redefine: %+v", bad)
						return
					}
				}
				code, ok, bad := tc.eval(id, fmt.Sprintf("r = inc(%d)", k))
				if code != http.StatusOK {
					errs[i] = fmt.Errorf("eval: %d %+v", code, bad)
					return
				}
				if !strings.Contains(ok.Output, fmt.Sprintf("%d", k+1)) {
					errs[i] = fmt.Errorf("inc(%d) output %q", k, ok.Output)
					return
				}
				if code, _ := tc.do("DELETE", "/sessions/"+id, nil); code != http.StatusNoContent {
					errs[i] = fmt.Errorf("destroy: %d", code)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	m := tc.metrics()
	if m.Sessions.Active != 1 {
		t.Fatalf("active sessions = %d, want 1 (the seed)", m.Sessions.Active)
	}
	if m.Repo.Lookups == 0 || m.Evals.Total == 0 {
		t.Fatalf("metrics look dead: %+v", m)
	}
}

// TestSessionTableBound: creates beyond MaxSessions bounce with 503.
func TestSessionTableBound(t *testing.T) {
	_, tc := startServer(t, Options{
		Engine:      core.Options{Tier: core.TierJIT},
		MaxSessions: 2,
	})
	tc.createSession()
	tc.createSession()
	code, body := tc.do("POST", "/sessions", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("third create: %d %s", code, body)
	}
	if m := tc.metrics(); m.Sessions.Rejected != 1 {
		t.Fatalf("rejected = %d", m.Sessions.Rejected)
	}
}

// TestIdleTTLEviction: a session idle past the TTL is reaped.
func TestIdleTTLEviction(t *testing.T) {
	srv, tc := startServer(t, Options{
		Engine:  core.Options{Tier: core.TierJIT},
		IdleTTL: 50 * time.Millisecond,
	})
	id := tc.createSession()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.Metrics().Sessions.Active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, _, _ := tc.eval(id, "x = 1"); code != http.StatusNotFound {
		t.Fatalf("eval on evicted session: %d", code)
	}
	if m := tc.metrics(); m.Sessions.Evicted == 0 {
		t.Fatal("eviction not counted")
	}
}

// TestGracefulShutdown: Shutdown drains and returns nil with no evals
// in flight, and the shared queue closes without wedging.
func TestGracefulShutdown(t *testing.T) {
	srv, tc := startServer(t, Options{
		Engine:  core.Options{Tier: core.TierJIT},
		Library: core.LibraryOptions{AsyncCompile: true},
	})
	id := tc.createSession()
	tc.eval(id, "function y = s2(x)\ny = x * 2;\n")
	tc.eval(id, "r = s2(21);")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After shutdown the handler refuses new sessions.
	code, _ := tc.do("POST", "/sessions", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("create after shutdown: %d", code)
	}
}

// TestShutdownInterruptsRunaway: a runaway eval with no deadline is
// force-interrupted when the drain grace expires, and Shutdown still
// completes.
func TestShutdownInterruptsRunaway(t *testing.T) {
	srv, tc := startServer(t, Options{
		Engine:      core.Options{Tier: core.TierJIT},
		MaxDeadline: -1, // no implicit deadline: the eval really runs away
	})
	id := tc.createSession()
	evalDone := make(chan int, 1)
	go func() {
		code, _, _ := tc.eval(id, "while 1; end")
		evalDone <- code
	}()
	// Wait until the eval is actually executing.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Evals.Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("runaway eval never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not recover from runaway: %v", err)
	}
	select {
	case code := <-evalDone:
		if code != http.StatusUnprocessableEntity {
			t.Logf("runaway eval returned %d", code) // interrupted, not a timeout
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runaway eval never returned")
	}
}

// TestFlightRecorderEndpoints drives a tiered session hot enough to
// promote, then checks the three flight-recorder surfaces: the
// Prometheus exposition parses and covers the library families, the
// Chrome trace has eval/exec spans, and the journal attributes events.
func TestFlightRecorderEndpoints(t *testing.T) {
	_, tc := startServer(t, Options{
		Engine: core.Options{Tier: core.TierJIT, Tiered: true, TierThreshold: 3},
	})
	id := tc.createSession()
	tc.eval(id, "function y = fr(x)\ny = x + 1;\n")
	for i := 0; i < 12; i++ {
		if code, _, bad := tc.eval(id, "r = fr(2);"); code != http.StatusOK {
			t.Fatalf("eval %d: %+v", i, bad)
		}
	}

	// Prometheus exposition: valid 0.0.4 text covering every subsystem.
	code, body := tc.do("GET", "/metrics.prom", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics.prom: %d", code)
	}
	n, err := telemetry.ValidatePrometheus(string(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	if n == 0 {
		t.Fatal("empty exposition")
	}
	for _, want := range []string{
		"majic_repo_lookups_total", "majic_queue_submitted_total",
		"majic_profile_entries_total", "majic_osr_deopts_total",
		"majic_persist_enabled", "majic_evals_total",
		"majic_route_latency_seconds_bucket", "majic_sessions_active",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("exposition missing %s:\n%s", want, body)
		}
	}

	// Chrome trace: loadable JSON with at least eval and exec spans.
	code, body = tc.do("GET", "/debug/trace", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/trace: %d", code)
	}
	var trace struct {
		TraceEvents []telemetry.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	cats := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		cats[ev.Cat] = true
	}
	if !cats[telemetry.CatEval] || !cats[telemetry.CatExec] {
		t.Fatalf("trace categories = %v, want eval and exec", cats)
	}

	// Journal: the hot function's promotion is recorded with its cause.
	code, body = tc.do("GET", "/debug/events", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/events: %d", code)
	}
	var ev struct {
		Total  uint64            `json:"total"`
		Events []telemetry.Event `json:"events"`
	}
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatalf("events not JSON: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		promoted := false
		for _, e := range ev.Events {
			if e.Kind == telemetry.EventPromotion && e.Func == "fr" && e.Cause != "" {
				promoted = true
			}
		}
		if promoted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no promotion journaled for fr: %+v", ev.Events)
		}
		time.Sleep(20 * time.Millisecond)
		_, body = tc.do("GET", "/debug/events", nil)
		json.Unmarshal(body, &ev)
	}
}

// TestLoadGeneratorSmoke runs the -exp=server experiment at toy scale:
// both arms complete, the shared arm compiles no more than the
// isolated arm, and its hit rate is at least as high.
func TestLoadGeneratorSmoke(t *testing.T) {
	rep, err := LoadConfig{
		Clients:           2,
		SessionsPerClient: 2,
		CallsPerSession:   3,
		Benchmarks:        []string{"fibonacci"},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Arms) != 2 {
		t.Fatalf("arms = %d", len(rep.Arms))
	}
	shared, isolated := rep.Arms[0], rep.Arms[1]
	if shared.Mode != "shared" || isolated.Mode != "isolated" {
		t.Fatalf("arm order: %+v", rep.Arms)
	}
	for _, a := range rep.Arms {
		if a.Errors != 0 || a.Requests != 2*2*3 {
			t.Fatalf("%s arm: %+v", a.Mode, a)
		}
	}
	if shared.RepoInsert > isolated.RepoInsert {
		t.Fatalf("shared compiled more than isolated: %d > %d", shared.RepoInsert, isolated.RepoInsert)
	}
	if shared.HitRate < isolated.HitRate {
		t.Fatalf("shared hit rate %f < isolated %f", shared.HitRate, isolated.HitRate)
	}
}
